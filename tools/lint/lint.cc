#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace hmcsim::lint
{

namespace
{

/**
 * Shim files exempt from specific rules by design. The exemption
 * lives here, next to the rule table, so adding one is a reviewed
 * change to the linter -- not a pragma someone can quietly drop into
 * a model file. Matching is by normalized path suffix.
 */
const std::vector<std::pair<std::string, std::string>> kFileAllowlist = {
    // The one audited wall-clock source (timing metadata only).
    {"src/sim/wallclock.hh", "nondeterminism"},
    // The deprecated standalone DDR baseline entry points live (and
    // may reference themselves) in these four files; the rule exists
    // to flag *new* callers elsewhere.
    {"src/baseline/ddr_channel.cc", "deprecated-ddr-entry"},
    {"src/baseline/ddr_channel.hh", "deprecated-ddr-entry"},
    {"src/host/experiment.cc", "deprecated-ddr-entry"},
    {"src/host/experiment.hh", "deprecated-ddr-entry"},
};

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> rules = {
        {"nondeterminism", "",
         "wall-clock, rand()/srand(), random_device, or *_clock::now() "
         "in model code",
         "simulated results must be a pure function of config and "
         "seed; host time or unseeded randomness bends digests "
         "(docs/correctness.md)",
         "derive randomness from the experiment seed via "
         "sim/random.hh; take host time only through the "
         "sim/wallclock.hh shim (timing metadata, never simulated "
         "behavior)"},
        {"unordered-iteration", "",
         "range-for over a container declared std::unordered_*",
         "unordered iteration order varies across libstdc++ versions "
         "and hash seeds, so anything it feeds (stats, digests, "
         "sinks) loses byte-stability",
         "iterate a sorted snapshot of the keys, keep a parallel "
         "std::vector/std::list in insertion order (see ResultCache), "
         "or switch to an ordered container"},
        {"pointer-keyed-order", "",
         "std::map/std::set keyed by a raw pointer",
         "pointer values depend on allocation order and ASLR, so the "
         "container's iteration order is nondeterministic "
         "run-to-run even though it is 'sorted'",
         "key by a stable id (component name, index, config digest) "
         "instead of the object's address"},
        {"hot-std-function", "hot-path",
         "std::function in a file tagged lint:file(hot-path)",
         "std::function heap-allocates beyond its tiny inline buffer; "
         "the event core's inline-capture Event exists precisely to "
         "keep callables allocation-free (docs/performance.md)",
         "capture into hmcsim::Event (sim/event.hh) or a plain "
         "function pointer + context pointer; hoist big state into "
         "the owning component"},
        {"hot-check", "hot-path",
         "HMCSIM_CHECK in a file tagged lint:file(hot-path)",
         "HMCSIM_CHECK branches in release builds; hot-path "
         "invariants belong in HMCSIM_DCHECK, which compiles out "
         "unless checks are enabled (docs/correctness.md)",
         "use HMCSIM_DCHECK, or keep HMCSIM_CHECK with a per-line "
         "lint:allow(hot-check) and a comment naming why the check "
         "must stay in release builds"},
        {"hexfloat-persistence", "persistence",
         "%e/%f/%g formatting in a file tagged lint:file(persistence)",
         "decimal float formatting rounds; persisted results must "
         "round-trip bit-exactly or a cache hit diverges from the "
         "original measurement (docs/runner.md)",
         "print doubles with %a (C99 hexfloat) and parse with "
         "strtod, as ResultCache::serialize does"},
        {"deprecated-ddr-entry", "",
         "call to a deprecated standalone DDR baseline entry point "
         "(measureDdrPattern / runDdrBaselineExperiment)",
         "the DDR4 organization is a vault storage backend now "
         "(mem/backend.hh); the standalone entry points survive only "
         "as compatibility shims for the existing baseline analyses "
         "(docs/backends.md)",
         "select the backend through the config instead: set "
         "device.vault.backend.kind = BackendKind::Ddr4, or sweep "
         "--axis backend=ddr4, and run the unified experiment path"},
        {"backend-hot-path", "",
         "a *_backend.cc storage-engine implementation missing the "
         "lint:file(hot-path) tag",
         "backend accept() runs once per packet on the model path; "
         "the hot-path tag arms the std::function and HMCSIM_CHECK "
         "rules that keep that path allocation- and branch-free "
         "(docs/performance.md)",
         "start the backend implementation with a "
         "'// lint:file(hot-path) -- <why>' comment and keep its "
         "accept() path free of std::function and release-mode "
         "checks"},
        {"snapshot-safe", "",
         "a raw-pointer or iterator member in a struct tagged "
         "lint:snapshot-state without lint:allow(snapshot-safe)",
         "snapshot-participating state is byte-copied into the forked "
         "simulator; an address or iterator into the source survives "
         "the copy and silently reads the *source* simulator unless "
         "the fork path relocates it (docs/performance.md)",
         "translate the member through the fork's SnapshotFixup map "
         "in the struct's relocate() hook and record how with "
         "lint:allow(snapshot-safe, <how it is restored>); where "
         "possible store an index or pool-relative offset instead of "
         "an address"},
        {"mutex-unguarded", "",
         "a mutex member with no GUARDED_BY(name) anywhere in the "
         "file",
         "a mutex nothing is annotated against is invisible to the "
         "Clang thread-safety analysis, so the lock discipline it "
         "implements is unchecked (hmcsim/annotations.hh)",
         "annotate the members the mutex protects with "
         "GUARDED_BY(<mutex>); if it guards non-member state (a "
         "stream, a wake handshake), add lint:allow(mutex-unguarded) "
         "with a comment naming that state"},
    };
    return rules;
}

/** One comment's text and position, captured while scrubbing. */
struct CommentSpan
{
    std::string text;
    int startLine = 0;
    int endLine = 0;
};

struct ScrubResult
{
    std::string code;
    std::vector<CommentSpan> comments;
};

/**
 * Blank comments and string/char literals (newlines preserved so
 * line numbers survive), collecting comment text for pragma parsing.
 * Handles escapes and raw strings.
 */
ScrubResult
scrub(const std::string &in)
{
    ScrubResult out;
    out.code.reserve(in.size());

    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State state = State::Code;
    int line = 1;
    CommentSpan current;
    std::string rawDelim; // for )delim" termination

    const auto emit = [&](char c) { out.code.push_back(c); };
    const auto blank = [&](char c) {
        out.code.push_back(c == '\n' ? '\n' : ' ');
    };

    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char next = i + 1 < in.size() ? in[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                current = {"", line, line};
                blank(c);
                blank(next);
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                current = {"", line, line};
                blank(c);
                blank(next);
                ++i;
            } else if (c == '"' && i >= 1 && in[i - 1] == 'R') {
                state = State::RawString;
                rawDelim.clear();
                std::size_t j = i + 1;
                while (j < in.size() && in[j] != '(')
                    rawDelim.push_back(in[j++]);
                blank(c);
            } else if (c == '"') {
                state = State::String;
                emit(c); // keep the quotes: rules can spot literals
            } else if (c == '\'') {
                state = State::Char;
                emit(c);
            } else {
                emit(c);
            }
            break;
          case State::LineComment:
            if (c == '\n') {
                state = State::Code;
                current.endLine = line;
                out.comments.push_back(current);
                emit('\n');
            } else {
                current.text.push_back(c);
                blank(c);
            }
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                current.endLine = line;
                out.comments.push_back(current);
                blank(c);
                blank(next);
                ++i;
            } else {
                current.text.push_back(c);
                blank(c);
            }
            break;
          case State::String:
            if (c == '\\' && next != '\0') {
                blank(c);
                blank(next);
                ++i;
            } else if (c == '"') {
                state = State::Code;
                emit(c);
            } else {
                blank(c);
            }
            break;
          case State::Char:
            if (c == '\\' && next != '\0') {
                blank(c);
                blank(next);
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                emit(c);
            } else {
                blank(c);
            }
            break;
          case State::RawString:
            if (c == ')' &&
                in.compare(i + 1, rawDelim.size(), rawDelim) == 0 &&
                i + 1 + rawDelim.size() < in.size() &&
                in[i + 1 + rawDelim.size()] == '"') {
                for (std::size_t k = 0; k < rawDelim.size() + 1; ++k)
                    blank(in[i + k]);
                i += rawDelim.size() + 1;
                blank('"');
                state = State::Code;
            } else {
                blank(c);
            }
            break;
        }
        if (c == '\n')
            ++line;
    }
    if (state == State::LineComment || state == State::BlockComment) {
        current.endLine = line;
        out.comments.push_back(current);
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    lines.push_back(cur);
    return lines;
}

std::string
trim(const std::string &s)
{
    std::size_t a = 0;
    std::size_t b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])))
        ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])))
        --b;
    return s.substr(a, b - a);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream stream(s);
    std::string item;
    while (std::getline(stream, item, ',')) {
        item = trim(item);
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

bool
blankCode(const std::string &code_line)
{
    return trim(code_line).empty();
}

std::string
normalizePath(std::string path)
{
    std::replace(path.begin(), path.end(), '\\', '/');
    return path;
}

bool
lineAllowed(const FileContext &ctx, int line, const std::string &rule)
{
    if (ctx.fileAllows.count(rule))
        return true;
    const auto it = ctx.lineAllows.find(line);
    return it != ctx.lineAllows.end() && it->second.count(rule) != 0;
}

void
addFinding(const FileContext &ctx, std::vector<Finding> &out, int line,
           const std::string &rule, const std::string &message)
{
    if (lineAllowed(ctx, line, rule))
        return;
    out.push_back({ctx.path, line, rule, message, ""});
}

// --------------------------------------------------------------------------
// Rule implementations. Each walks the scrubbed (or raw, where string
// literals matter) lines of one FileContext.
// --------------------------------------------------------------------------

void
checkNondeterminism(const FileContext &ctx, std::vector<Finding> &out)
{
    static const std::vector<std::pair<std::regex, const char *>>
        patterns = {
            {std::regex(R"(\brandom_device\b)"),
             "std::random_device is unseeded hardware entropy"},
            {std::regex(R"(\bs?rand\s*\()"),
             "rand()/srand() draw from hidden global state"},
            {std::regex(
                 R"(\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b)"),
             "host clock read in model code"},
            {std::regex(R"(\btime\s*\(\s*(NULL|nullptr|0)?\s*\))"),
             "time() reads the wall clock"},
            {std::regex(R"(\bclock\s*\(\s*\))"),
             "clock() reads host CPU time"},
            {std::regex(R"(\b(gettimeofday|clock_gettime)\s*\()"),
             "POSIX clock read in model code"},
        };
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        for (const auto &[re, what] : patterns) {
            if (std::regex_search(ctx.code[i], re)) {
                addFinding(ctx, out, static_cast<int>(i) + 1,
                           "nondeterminism", what);
                break; // one finding per line is enough
            }
        }
    }
}

void
checkUnorderedIteration(const FileContext &ctx,
                        std::vector<Finding> &out)
{
    // Pass 1: names declared (or returned) as unordered containers.
    static const std::regex decl(R"(\bunordered_(map|set|multimap|multiset)\s*<)");
    std::set<std::string> names;
    for (const std::string &line : ctx.code) {
        auto begin =
            std::sregex_iterator(line.begin(), line.end(), decl);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            // Bracket-match the template args, then take the next
            // identifier as the declared name.
            std::size_t pos =
                static_cast<std::size_t>(it->position()) + it->length();
            int depth = 1;
            while (pos < line.size() && depth > 0) {
                if (line[pos] == '<')
                    ++depth;
                else if (line[pos] == '>')
                    --depth;
                ++pos;
            }
            if (depth != 0)
                continue; // declaration spans lines; heuristic bails
            while (pos < line.size() &&
                   (std::isspace(static_cast<unsigned char>(line[pos])) ||
                    line[pos] == '&'))
                ++pos;
            std::string name;
            while (pos < line.size() &&
                   (std::isalnum(static_cast<unsigned char>(line[pos])) ||
                    line[pos] == '_'))
                name.push_back(line[pos++]);
            if (!name.empty())
                names.insert(name);
        }
    }
    if (names.empty())
        return;

    // Pass 2: range-for statements whose range names one of them.
    static const std::regex rangeFor(R"(\bfor\s*\(([^;)]*):([^)]*)\))");
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(ctx.code[i], m, rangeFor))
            continue;
        const std::string range = m[2].str();
        for (const std::string &name : names) {
            const std::regex word("\\b" + name + "\\b");
            if (std::regex_search(range, word)) {
                addFinding(ctx, out, static_cast<int>(i) + 1,
                           "unordered-iteration",
                           "iterates '" + name +
                               "', an unordered container");
                break;
            }
        }
    }
}

void
checkPointerKeyedOrder(const FileContext &ctx,
                       std::vector<Finding> &out)
{
    // [^\w] guard keeps unordered_map/set from matching here; those
    // are the unordered-iteration rule's concern.
    static const std::regex re(
        R"((^|[^\w_])(std\s*::\s*)?(map|set|multimap|multiset)\s*<\s*[^<>,]*\*\s*[,>])");
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        if (std::regex_search(ctx.code[i], re)) {
            addFinding(ctx, out, static_cast<int>(i) + 1,
                       "pointer-keyed-order",
                       "ordered container keyed by a raw pointer");
        }
    }
}

void
checkHotStdFunction(const FileContext &ctx, std::vector<Finding> &out)
{
    static const std::regex re(R"(\bstd\s*::\s*function\b)");
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        if (std::regex_search(ctx.code[i], re)) {
            addFinding(ctx, out, static_cast<int>(i) + 1,
                       "hot-std-function",
                       "std::function in an event-hot file");
        }
    }
}

void
checkHotCheck(const FileContext &ctx, std::vector<Finding> &out)
{
    static const std::regex re(R"(\bHMCSIM_CHECK\s*\()");
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        if (std::regex_search(ctx.code[i], re)) {
            addFinding(ctx, out, static_cast<int>(i) + 1, "hot-check",
                       "HMCSIM_CHECK branches in release builds; "
                       "hot-path files use HMCSIM_DCHECK");
        }
    }
}

void
checkHexfloatPersistence(const FileContext &ctx,
                         std::vector<Finding> &out)
{
    // Scan string literals on the *raw* lines: the scrubber blanks
    // literal contents, but format strings are exactly what this
    // rule is about.
    static const std::regex literal(R"("(?:[^"\\]|\\.)*")");
    static const std::regex decimalFloat(
        R"(%[-+ #0-9.*]*(?:hh|h|ll|l|L)?[efgEFG])");
    for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
        const std::string &line = ctx.raw[i];
        auto begin =
            std::sregex_iterator(line.begin(), line.end(), literal);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::string lit = it->str();
            if (std::regex_search(lit, decimalFloat)) {
                addFinding(ctx, out, static_cast<int>(i) + 1,
                           "hexfloat-persistence",
                           "decimal float format in persisted "
                           "output; use %a");
                break;
            }
        }
    }
}

void
checkMutexUnguarded(const FileContext &ctx, std::vector<Finding> &out)
{
    static const std::regex decl(
        R"(^\s*(mutable\s+)?((hmcsim\s*::\s*)?Mutex|std\s*::\s*mutex)\s+([A-Za-z_]\w*)\s*;)");
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(ctx.code[i], m, decl))
            continue;
        const std::string name = m[4].str();
        const std::regex guarded("GUARDED_BY\\(\\s*" + name +
                                 "\\s*\\)");
        bool found = false;
        for (const std::string &line : ctx.code) {
            if (std::regex_search(line, guarded)) {
                found = true;
                break;
            }
        }
        if (!found) {
            addFinding(ctx, out, static_cast<int>(i) + 1,
                       "mutex-unguarded",
                       "no member is GUARDED_BY(" + name + ")");
        }
    }
}

void
checkDeprecatedDdrEntry(const FileContext &ctx,
                        std::vector<Finding> &out)
{
    static const std::regex re(
        R"(\b(measureDdrPattern|runDdrBaselineExperiment)\s*\()");
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
        if (std::regex_search(ctx.code[i], re)) {
            addFinding(ctx, out, static_cast<int>(i) + 1,
                       "deprecated-ddr-entry",
                       "deprecated standalone DDR baseline entry "
                       "point; select the ddr4 backend via the "
                       "config");
        }
    }
}

void
checkSnapshotSafe(const FileContext &ctx, std::vector<Finding> &out)
{
    // Structs tagged `// lint:snapshot-state` participate in the
    // copy-on-write snapshot/fork. Scan each tagged struct's body
    // (depth-1 lines only, so statements inside member functions are
    // exempt) for raw-pointer and iterator members. The marker lives
    // in a comment, so match against the raw lines; the body walk
    // uses the scrubbed code.
    static const std::regex marker(R"(lint:snapshot-state\b)");
    static const std::regex pointerMember(
        R"(\*\s*[A-Za-z_]\w*\s*(=[^;]*)?;)");
    static const std::regex iteratorMember(
        R"(\biterator\s+[A-Za-z_]\w*\s*(=[^;]*)?;)");
    for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
        if (!std::regex_search(ctx.raw[i], marker))
            continue;
        int depth = 0;
        bool opened = false;
        for (std::size_t j = i; j < ctx.code.size(); ++j) {
            const int start_depth = depth;
            for (const char c : ctx.code[j]) {
                if (c == '{') {
                    ++depth;
                    opened = true;
                } else if (c == '}') {
                    --depth;
                }
            }
            if (opened && start_depth == 1) {
                const std::string &line = ctx.code[j];
                // Lines with parens are member-function machinery
                // (declarations, defaulted ctors), not data members.
                const bool function_line =
                    line.find('(') != std::string::npos;
                if (!function_line &&
                    (std::regex_search(line, pointerMember) ||
                     std::regex_search(line, iteratorMember))) {
                    addFinding(ctx, out, static_cast<int>(j) + 1,
                               "snapshot-safe",
                               "raw-pointer/iterator member of a "
                               "snapshot-participating struct without "
                               "a relocation note");
                }
            }
            if (opened && depth == 0)
                break;
        }
    }
}

void
checkBackendHotPath(const FileContext &ctx, std::vector<Finding> &out)
{
    // Path-gated rather than tag-gated: the point is to catch the
    // *absence* of the tag on storage-engine implementations.
    static const std::string suffix = "_backend.cc";
    const std::string &p = ctx.path;
    if (p.size() < suffix.size() ||
        p.compare(p.size() - suffix.size(), suffix.size(), suffix) != 0)
        return;
    if (ctx.tags.count("hot-path") == 0) {
        addFinding(ctx, out, 1, "backend-hot-path",
                   "storage-engine implementation without "
                   "lint:file(hot-path)");
    }
}

using CheckFn = void (*)(const FileContext &, std::vector<Finding> &);

const std::vector<std::pair<std::string, CheckFn>> &
checkTable()
{
    static const std::vector<std::pair<std::string, CheckFn>> checks = {
        {"nondeterminism", &checkNondeterminism},
        {"unordered-iteration", &checkUnorderedIteration},
        {"pointer-keyed-order", &checkPointerKeyedOrder},
        {"hot-std-function", &checkHotStdFunction},
        {"hot-check", &checkHotCheck},
        {"hexfloat-persistence", &checkHexfloatPersistence},
        {"deprecated-ddr-entry", &checkDeprecatedDdrEntry},
        {"snapshot-safe", &checkSnapshotSafe},
        {"backend-hot-path", &checkBackendHotPath},
        {"mutex-unguarded", &checkMutexUnguarded},
    };
    return checks;
}

const RuleInfo *
ruleInfo(const std::string &id)
{
    for (const RuleInfo &rule : listRules())
        if (rule.id == id)
            return &rule;
    return nullptr;
}

} // namespace

const std::vector<RuleInfo> &
listRules()
{
    return ruleTable();
}

FileContext
prepareFile(const std::string &path, const std::string &content)
{
    FileContext ctx;
    ctx.path = normalizePath(path);
    ctx.raw = splitLines(content);
    ScrubResult scrubbed = scrub(content);
    ctx.code = splitLines(scrubbed.code);

    static const std::regex fileTag(R"(lint:file\(([^)]*)\))");
    static const std::regex allowFile(R"(lint:allow-file\(([^)]*)\))");
    static const std::regex allowLine(R"(lint:allow\(([^)]*)\))");

    for (const CommentSpan &comment : scrubbed.comments) {
        for (auto it = std::sregex_iterator(comment.text.begin(),
                                            comment.text.end(), fileTag);
             it != std::sregex_iterator(); ++it) {
            for (const std::string &tag : splitCsv((*it)[1].str()))
                ctx.tags.insert(tag);
        }
        for (auto it =
                 std::sregex_iterator(comment.text.begin(),
                                      comment.text.end(), allowFile);
             it != std::sregex_iterator(); ++it) {
            for (const std::string &rule : splitCsv((*it)[1].str()))
                ctx.fileAllows.insert(rule);
        }
        for (auto it =
                 std::sregex_iterator(comment.text.begin(),
                                      comment.text.end(), allowLine);
             it != std::sregex_iterator(); ++it) {
            std::vector<int> lines = {comment.startLine};
            // A comment with no code on its first line excuses the
            // line after the comment ends, so suppressions can sit
            // above the code they explain.
            const std::size_t idx =
                static_cast<std::size_t>(comment.startLine) - 1;
            if (idx < ctx.code.size() && blankCode(ctx.code[idx]))
                lines.push_back(comment.endLine + 1);
            for (const std::string &rule : splitCsv((*it)[1].str()))
                for (const int line : lines)
                    ctx.lineAllows[line].insert(rule);
        }
    }

    for (const auto &[suffix, rule] : kFileAllowlist) {
        const std::string &p = ctx.path;
        if (p.size() >= suffix.size() &&
            p.compare(p.size() - suffix.size(), suffix.size(),
                      suffix) == 0) {
            ctx.fileAllows.insert(rule);
        }
    }
    return ctx;
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &content)
{
    const FileContext ctx = prepareFile(path, content);
    std::vector<Finding> findings;
    for (const auto &[id, fn] : checkTable()) {
        const RuleInfo *info = ruleInfo(id);
        if (!info->requiresTag.empty() &&
            ctx.tags.count(info->requiresTag) == 0)
            continue;
        fn(ctx, findings);
    }
    for (Finding &f : findings)
        if (const RuleInfo *info = ruleInfo(f.rule))
            f.suggestion = info->suggestion;
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding &a, const Finding &b) {
                                   return a.file == b.file &&
                                          a.line == b.line &&
                                          a.rule == b.rule;
                               }),
                   findings.end());
    return findings;
}

std::vector<Finding>
lintPath(const std::string &path)
{
    namespace fs = std::filesystem;
    std::vector<Finding> findings;
    std::vector<std::string> files;

    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (auto it = fs::recursive_directory_iterator(path, ec);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                it->path().filename().string().front() == '.') {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
                ext == ".h")
                files.push_back(it->path().string());
        }
        std::sort(files.begin(), files.end());
    } else {
        files.push_back(path);
    }

    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            findings.push_back({normalizePath(file), 0, "io-error",
                                "cannot read file", ""});
            continue;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::vector<Finding> fileFindings = lintFile(file, text.str());
        findings.insert(findings.end(), fileFindings.begin(),
                        fileFindings.end());
    }
    return findings;
}

std::string
formatFindings(const std::vector<Finding> &findings, bool machine,
               bool fix_suggestions)
{
    std::ostringstream out;
    for (const Finding &f : findings) {
        if (machine) {
            out << f.file << ':' << f.line << ':' << f.rule << '\n';
            continue;
        }
        out << f.file << ':' << f.line << ": " << f.rule << ": "
            << f.message << '\n';
        if (fix_suggestions && !f.suggestion.empty())
            out << "    fix: " << f.suggestion << '\n';
    }
    return out.str();
}

std::string
formatRuleTable()
{
    std::ostringstream out;
    for (const RuleInfo &rule : listRules()) {
        out << rule.id;
        if (!rule.requiresTag.empty())
            out << "  [files tagged lint:file(" << rule.requiresTag
                << ")]";
        out << '\n';
        out << "    catches:  " << rule.summary << '\n';
        out << "    why:      " << rule.rationale << '\n';
        out << "    fix:      " << rule.suggestion << '\n';
    }
    return out.str();
}

} // namespace hmcsim::lint
