/**
 * @file
 * hmcsim-lint CLI. Exit status 0 = clean, 1 = findings, 2 = usage.
 *
 *   hmcsim-lint [options] <path>...      lint files or directories
 *   hmcsim-lint --list-rules             print the rule table
 *
 * Options:
 *   --machine           one `file:line:rule` per finding (the stable
 *                       format CI and the fixture tests parse)
 *   --fix-suggestions   append a fix hint per finding
 *
 * CI runs `hmcsim-lint src` from the repository root on every push;
 * see docs/correctness.md for the rule table and the suppression
 * pragmas.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "lint.hh"

int
main(int argc, char **argv)
{
    using namespace hmcsim::lint;

    bool machine = false;
    bool fixSuggestions = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--machine") {
            machine = true;
        } else if (arg == "--fix-suggestions") {
            fixSuggestions = true;
        } else if (arg == "--list-rules") {
            std::fputs(formatRuleTable().c_str(), stdout);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::fputs(
                "usage: hmcsim-lint [--machine] [--fix-suggestions] "
                "<path>...\n"
                "       hmcsim-lint --list-rules\n",
                stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "hmcsim-lint: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::fputs("usage: hmcsim-lint [--machine] "
                   "[--fix-suggestions] <path>...\n",
                   stderr);
        return 2;
    }

    std::vector<Finding> findings;
    for (const std::string &path : paths) {
        std::vector<Finding> f = lintPath(path);
        findings.insert(findings.end(), f.begin(), f.end());
    }

    std::fputs(formatFindings(findings, machine, fixSuggestions).c_str(),
               stdout);
    if (!findings.empty()) {
        std::fprintf(stderr,
                     "hmcsim-lint: %zu finding%s (see --list-rules "
                     "for the rule table, docs/correctness.md for "
                     "suppression pragmas)\n",
                     findings.size(),
                     findings.size() == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
