/**
 * @file
 * hmcsim-lint: a token/regex-level rule engine for the repo's domain
 * rules -- the determinism and hot-path disciplines no off-the-shelf
 * analyzer knows about (docs/correctness.md, "Static analysis").
 *
 * The engine scrubs each source file (comments and string/char
 * literals blanked, line structure preserved), collects lint pragmas
 * from the comments, and runs a table of rules over the scrubbed
 * text. Rules can be gated on a per-file tag so e.g. the hot-path
 * discipline applies only to event-hot files.
 *
 * Pragmas (in comments, anywhere on the line):
 *   lint:file(<tag>)        Tag the whole file (hot-path, persistence).
 *   lint:allow(<r1,r2>)     Suppress the named rules on this line; a
 *                           comment-only line also covers the next
 *                           line, so suppressions can sit above the
 *                           code they excuse. Pair with a reason.
 *   lint:allow-file(<rule>) Suppress the named rule for the file.
 *
 * A small built-in allowlist exempts designated shim files (e.g. the
 * wall-clock shim) from specific rules, so the exemption lives next
 * to the rule table instead of in the shim.
 */

#ifndef HMCSIM_TOOLS_LINT_LINT_HH
#define HMCSIM_TOOLS_LINT_LINT_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace hmcsim::lint
{

/** One rule violation. */
struct Finding
{
    std::string file;
    int line = 0; // 1-based
    std::string rule;
    std::string message;
    /** Set by --fix-suggestions formatting from the rule table. */
    std::string suggestion;
};

/** One entry of the rule table (listRules() exposes it). */
struct RuleInfo
{
    std::string id;
    /** Tag gating the rule; empty = applies to every file. */
    std::string requiresTag;
    /** What the rule catches. */
    std::string summary;
    /** Why the repo forbids it. */
    std::string rationale;
    /** How to fix (or how to suppress when intentional). */
    std::string suggestion;
};

/** A source file prepared for rule evaluation. */
struct FileContext
{
    std::string path;
    /** Verbatim lines (for rules that must see string literals). */
    std::vector<std::string> raw;
    /** Comment/string-scrubbed lines, same numbering as raw. */
    std::vector<std::string> code;
    /** lint:file(...) tags. */
    std::set<std::string> tags;
    /** Rules disabled for the whole file. */
    std::set<std::string> fileAllows;
    /** line (1-based) -> rules allowed on that line. */
    std::map<int, std::set<std::string>> lineAllows;
};

/** The static rule table, in evaluation order. */
const std::vector<RuleInfo> &listRules();

/**
 * Scrub @p content and parse pragmas into a FileContext for @p path
 * (exposed for tests; lintFile calls it internally).
 */
FileContext prepareFile(const std::string &path,
                        const std::string &content);

/** Run every applicable rule over one file's content. */
std::vector<Finding> lintFile(const std::string &path,
                              const std::string &content);

/**
 * Lint @p path (file, or directory walked recursively for
 * .cc/.hh/.cpp/.h sources). Findings come back sorted by
 * (file, line, rule). Missing paths produce a synthetic finding
 * under the pseudo-rule "io-error".
 */
std::vector<Finding> lintPath(const std::string &path);

/**
 * Render findings one per line.
 * @param machine  `file:line:rule` only (the stable CI/test format).
 * @param fix_suggestions Append an indented "fix:" line per finding.
 */
std::string formatFindings(const std::vector<Finding> &findings,
                           bool machine, bool fix_suggestions);

/** Human-readable rule table (the --list-rules output). */
std::string formatRuleTable();

} // namespace hmcsim::lint

#endif // HMCSIM_TOOLS_LINT_LINT_HH
