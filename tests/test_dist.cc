/**
 * @file
 * Tests for the distributed sweep execution layer (src/dist/): wire
 * codec fidelity (digest-preserving round trips), frame plumbing, the
 * shared content-addressed result store (atomic writes, legacy-format
 * migration, claim arbitration incl. crashed- and expired-owner
 * steals), cross-process work division via fork, and the headline
 * contract -- a coordinator + workers session emits byte-identical
 * JSONL to a local serial sweep, including across a client that leases
 * points and dies without resulting them.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "dist/coordinator.hh"
#include "dist/net.hh"
#include "dist/protocol.hh"
#include "dist/store.hh"
#include "dist/wire.hh"
#include "dist/worker.hh"
#include "runner/config_digest.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"

namespace
{

using namespace hmcsim;

std::filesystem::path
freshDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    return dir;
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

/** A config with digest-visible fields pushed off their defaults, so
 *  a codec that drops or bends any of them cannot round-trip the
 *  digest. */
ExperimentConfig
wireTestConfig()
{
    ExperimentConfig cfg;
    cfg.pattern.name = "wire 100% tricky\nname";
    cfg.pattern.mask ^= 0x80;
    cfg.mix = RequestMix::Atomic;
    cfg.requestSize = 48;
    cfg.mode = AddressingMode::Linear;
    cfg.numPorts = 3;
    cfg.warmup = 7 * tickUs;
    cfg.measure = 33 * tickUs;
    cfg.seed = 0x123456789ABCDEFull;
    cfg.device.mapping = MappingScheme::BankFirst;
    cfg.device.vault.timings.tRcd += 1;
    cfg.device.vault.backend.kind = BackendKind::Nvm;
    cfg.device.vault.backend.nvmWriteLatency += 3;
    cfg.controller.bitErrorRate = 1e-12;
    return cfg;
}

TEST(WireCodec, RoundTripPreservesDigestAndSeed)
{
    const ExperimentConfig cfg = wireTestConfig();
    ExperimentConfig back;
    ASSERT_TRUE(decodeExperimentConfig(encodeExperimentConfig(cfg),
                                       back));
    // Digest equality is the completeness proof: every field the
    // canonical digest hashes survived the trip (the escaped pattern
    // name included), and the resolved seed rode along.
    EXPECT_EQ(configDigest(back), configDigest(cfg));
    EXPECT_EQ(back.seed, cfg.seed);
    EXPECT_EQ(back.pattern.name, cfg.pattern.name);
}

TEST(WireCodec, RejectsTruncationAndGarbage)
{
    const std::string blob =
        encodeExperimentConfig(wireTestConfig());
    ExperimentConfig out;
    // Drop the last line: strict ordered parsing must fail, never
    // fill the tail with defaults.
    const std::size_t cut = blob.rfind('\n', blob.size() - 2);
    EXPECT_FALSE(
        decodeExperimentConfig(blob.substr(0, cut + 1), out));
    EXPECT_FALSE(decodeExperimentConfig("nonsense", out));
    EXPECT_FALSE(decodeExperimentConfig("", out));
}

// ---------------------------------------------------------------------
// Frames and protocol verbs
// ---------------------------------------------------------------------

TEST(Frames, ExtractIncrementallyFromBytePieces)
{
    const std::string wire =
        frameBytes("first payload") + frameBytes(std::string(1, '\0'));
    std::string buffer;
    std::vector<std::string> got;
    std::string payload;
    // Worst-case delivery: one byte at a time.
    for (const char byte : wire) {
        buffer.push_back(byte);
        while (extractFrame(buffer, payload))
            got.push_back(payload);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], "first payload");
    EXPECT_EQ(got[1], std::string(1, '\0'));
    EXPECT_TRUE(buffer.empty());
}

TEST(Frames, SocketRoundTrip)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string payload = "hello v1 jobs 4";
    EXPECT_TRUE(writeFrame(fds[0], payload));
    std::string back;
    EXPECT_TRUE(readFrame(fds[1], back));
    EXPECT_EQ(back, payload);
    ::close(fds[0]);
    // EOF is a clean false, not a hang.
    EXPECT_FALSE(readFrame(fds[1], back));
    ::close(fds[1]);
}

TEST(Protocol, VerbsRoundTrip)
{
    unsigned jobs = 0;
    EXPECT_TRUE(parseHello(formatHello(8), jobs));
    EXPECT_EQ(jobs, 8u);

    bool warm = false;
    std::size_t total = 0;
    EXPECT_TRUE(parseWelcome(formatWelcome(true, 12), warm, total));
    EXPECT_TRUE(warm);
    EXPECT_EQ(total, 12u);

    unsigned want = 0;
    EXPECT_TRUE(parseWant(formatWant(3), want));
    EXPECT_EQ(want, 3u);

    std::size_t count = 0;
    EXPECT_TRUE(parseGranted(formatGranted(5), count));
    EXPECT_EQ(count, 5u);

    EXPECT_TRUE(isDrain(formatDrain()));
    EXPECT_FALSE(isDrain(formatWant(1)));

    std::string header, body;
    splitFrame(formatPoint(7, 0xABCDEF0011223344ull, "cfg blob"),
               header, body);
    std::size_t index = 0;
    std::uint64_t digest = 0;
    EXPECT_TRUE(parsePointHeader(header, index, digest));
    EXPECT_EQ(index, 7u);
    EXPECT_EQ(digest, 0xABCDEF0011223344ull);
    EXPECT_EQ(body, "cfg blob");

    splitFrame(formatResult(9, true, "fields"), header, body);
    bool simulated = false;
    EXPECT_TRUE(parseResultHeader(header, index, simulated));
    EXPECT_EQ(index, 9u);
    EXPECT_TRUE(simulated);
    EXPECT_EQ(body, "fields");

    EXPECT_FALSE(parseHello("hello v999 jobs 1", jobs));
    EXPECT_FALSE(parseWant("want", want));
}

// ---------------------------------------------------------------------
// Shared result store
// ---------------------------------------------------------------------

CachedResult
storedResult(double gbps)
{
    CachedResult value;
    value.result.patternName = "16 vaults";
    value.result.requestSize = 64;
    value.result.rawGBps = gbps;
    value.result.readLatencyP99Ns = 123.4567890123;
    value.statDigest = 0xFEEDFACE12345678ull;
    return value;
}

TEST(SharedStore, SaveLoadRoundTripsShardedAndAtomic)
{
    const std::filesystem::path dir = freshDir("hmcsim_test_store_rt");
    SharedResultStore store({dir.string(), 300});
    const std::uint64_t key = 0xAB00000000000042ull;

    EXPECT_FALSE(store.load(key).has_value());
    store.save(key, storedResult(31.5));

    const auto hit = store.load(key);
    ASSERT_TRUE(hit.has_value());
    const CachedResult expect = storedResult(31.5);
    EXPECT_EQ(std::memcmp(&hit->result.rawGBps,
                          &expect.result.rawGBps, sizeof(double)),
              0);
    EXPECT_EQ(hit->statDigest, 0xFEEDFACE12345678ull);

    // Sharded under the first two digest hex digits.
    EXPECT_NE(store.objectPath(key).find("/objects/ab/"),
              std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(store.objectPath(key)));

    // Atomic publish: no temp files survive a completed save.
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(dir))
        EXPECT_EQ(entry.path().string().find(".tmp."),
                  std::string::npos)
            << entry.path();

    const auto counters = store.counters();
    EXPECT_EQ(counters.saved, 1u);
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_EQ(counters.misses, 1u);
    std::filesystem::remove_all(dir);
}

TEST(SharedStore, LegacyAndCorruptEntriesAreCleanMisses)
{
    const std::filesystem::path dir =
        freshDir("hmcsim_test_store_legacy");
    SharedResultStore store({dir.string(), 300});

    const auto plant = [&store](std::uint64_t key,
                                const std::string &text) {
        const std::filesystem::path path = store.objectPath(key);
        std::filesystem::create_directories(path.parent_path());
        std::ofstream(path) << text;
    };

    // Every pre-v4 cache generation: digests from older config
    // serializations must never poison a hit.
    plant(1, "hmcsim-result v1\npattern x\n");
    plant(2, "hmcsim-result v2\npattern x\n");
    plant(3, "hmcsim-result v3\npattern x\n");
    // Truncated v4 (crash mid-write without the atomic rename) and
    // outright garbage: skipped, counted, re-simulated.
    plant(4, "hmcsim-result v4\npattern x\n");
    plant(5, "not a result at all\n");

    for (std::uint64_t key = 1; key <= 5; ++key)
        EXPECT_FALSE(store.load(key).has_value()) << key;

    const auto counters = store.counters();
    EXPECT_EQ(counters.legacy, 3u);
    EXPECT_EQ(counters.corrupt, 2u);
    EXPECT_EQ(counters.hits, 0u);

    // A rewritten entry is served normally afterwards.
    store.save(3, storedResult(9.0));
    EXPECT_TRUE(store.load(3).has_value());
    std::filesystem::remove_all(dir);
}

TEST(SharedStore, ClaimsConflictAcrossInstancesAndRelease)
{
    const std::filesystem::path dir =
        freshDir("hmcsim_test_store_claims");
    SharedResultStore a({dir.string(), 300});
    SharedResultStore b({dir.string(), 300});

    EXPECT_EQ(a.tryClaim(7), SharedResultStore::ClaimOutcome::Acquired);
    // flock conflicts across open file descriptions, so a second
    // store -- same or different process -- sees Busy.
    EXPECT_EQ(b.tryClaim(7), SharedResultStore::ClaimOutcome::Busy);

    a.releaseClaim(7);
    EXPECT_FALSE(std::filesystem::exists(a.claimPath(7)));
    EXPECT_EQ(b.tryClaim(7), SharedResultStore::ClaimOutcome::Acquired);
    b.releaseClaim(7);

    // save() releases the claim as part of publishing.
    EXPECT_EQ(a.tryClaim(8), SharedResultStore::ClaimOutcome::Acquired);
    a.save(8, storedResult(1.0));
    EXPECT_EQ(b.tryClaim(8), SharedResultStore::ClaimOutcome::Acquired);
    b.releaseClaim(8);
    std::filesystem::remove_all(dir);
}

TEST(SharedStore, StealsClaimOfCrashedProcess)
{
    const std::filesystem::path dir =
        freshDir("hmcsim_test_store_crash");
    {
        // Scope the parent's store so the fork sees no claims.
        SharedResultStore init({dir.string(), 300});
    }

    int claimedPipe[2];
    int diePipe[2];
    ASSERT_EQ(::pipe(claimedPipe), 0);
    ASSERT_EQ(::pipe(diePipe), 0);

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: claim, tell the parent, wait for permission to
        // "crash" -- _exit() skips destructors, so the claim file
        // stays behind with its record while the kernel releases the
        // flock.
        SharedResultStore mine({dir.string(), 300});
        char byte = 'c';
        if (mine.tryClaim(21) !=
            SharedResultStore::ClaimOutcome::Acquired)
            byte = 'f';
        (void)!::write(claimedPipe[1], &byte, 1);
        (void)!::read(diePipe[0], &byte, 1);
        ::_exit(0);
    }

    char byte = 0;
    ASSERT_EQ(::read(claimedPipe[0], &byte, 1), 1);
    ASSERT_EQ(byte, 'c');

    SharedResultStore store({dir.string(), 300});
    // The child is alive and holds the flock: Busy.
    EXPECT_EQ(store.tryClaim(21),
              SharedResultStore::ClaimOutcome::Busy);

    ASSERT_EQ(::write(diePipe[1], &byte, 1), 1);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);

    // Dead owner: the kernel released the flock; taking the lock over
    // the stale record counts as a steal.
    EXPECT_EQ(store.tryClaim(21),
              SharedResultStore::ClaimOutcome::Acquired);
    EXPECT_EQ(store.counters().claimsStolen, 1u);
    store.releaseClaim(21);

    ::close(claimedPipe[0]);
    ::close(claimedPipe[1]);
    ::close(diePipe[0]);
    ::close(diePipe[1]);
    std::filesystem::remove_all(dir);
}

TEST(SharedStore, EvictsExpiredClaimOfWedgedOwner)
{
    const std::filesystem::path dir =
        freshDir("hmcsim_test_store_expiry");
    // The wedged owner: lease already expired at claim time, flock
    // still held (the instance stays alive).
    SharedResultStore wedged({dir.string(), -1});
    ASSERT_EQ(wedged.tryClaim(33),
              SharedResultStore::ClaimOutcome::Acquired);

    SharedResultStore store({dir.string(), 300});
    EXPECT_EQ(store.tryClaim(33),
              SharedResultStore::ClaimOutcome::Acquired);
    EXPECT_EQ(store.counters().claimsStolen, 1u);
    store.releaseClaim(33);
    std::filesystem::remove_all(dir);
}

TEST(ClaimedStorage, WaitsOutLiveClaimantAndReturnsTheirResult)
{
    const std::filesystem::path dir =
        freshDir("hmcsim_test_store_wait");
    SharedResultStore owner({dir.string(), 300});
    SharedResultStore other({dir.string(), 300});
    ASSERT_EQ(owner.tryClaim(55),
              SharedResultStore::ClaimOutcome::Acquired);

    std::optional<CachedResult> got;
    std::thread waiter([&other, &got] {
        ClaimedResultStorage storage(other, 1);
        got = storage.load(55);
    });

    // The waiter polls Busy until the owner publishes; then it must
    // return the owner's result instead of asking us to simulate.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    owner.save(55, storedResult(77.0));
    waiter.join();

    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->statDigest, storedResult(77.0).statDigest);
    std::filesystem::remove_all(dir);
}

TEST(ClaimedStorage, NulloptMeansCallerOwnsThePoint)
{
    const std::filesystem::path dir =
        freshDir("hmcsim_test_store_own");
    SharedResultStore store({dir.string(), 300});
    SharedResultStore probe({dir.string(), 300});
    ClaimedResultStorage storage(store, 1);

    // Cold point: load() returns nullopt AND holds the claim.
    EXPECT_FALSE(storage.load(66).has_value());
    EXPECT_EQ(probe.tryClaim(66),
              SharedResultStore::ClaimOutcome::Busy);

    // save() publishes and releases.
    storage.save(66, storedResult(5.0));
    EXPECT_TRUE(probe.load(66).has_value());
    EXPECT_EQ(probe.tryClaim(66),
              SharedResultStore::ClaimOutcome::Acquired);
    probe.releaseClaim(66);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Cache-dir crash safety (ResultCache satellite)
// ---------------------------------------------------------------------

TEST(ResultCacheDir, SkipsCorruptAndLegacyEntriesCleanly)
{
    const std::filesystem::path dir =
        freshDir("hmcsim_test_cache_corrupt");
    std::filesystem::create_directories(dir);

    char name[32];
    const auto plant = [&dir, &name](std::uint64_t key,
                                     const std::string &text) {
        std::snprintf(name, sizeof(name), "%016llx.result",
                      static_cast<unsigned long long>(key));
        std::ofstream(dir / name) << text;
    };
    plant(2, "hmcsim-result v2\npattern x\n");       // legacy
    plant(3, "hmcsim-result v3\npattern only\n");    // truncated
    plant(4, "garbage that is not an entry\n");      // corrupt

    ResultCache cache(dir.string());
    cache.store(1, storedResult(4.0));
    EXPECT_TRUE(cache.lookup(1).has_value());

    // Bad entries are misses -- the sweep re-simulates -- never
    // aborts, never hits.
    EXPECT_FALSE(cache.lookup(2).has_value());
    EXPECT_FALSE(cache.lookup(3).has_value());
    EXPECT_FALSE(cache.lookup(4).has_value());
    EXPECT_GE(cache.corruptEntries(), 2u);

    // No temp droppings from the atomic-rename write path.
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        EXPECT_EQ(entry.path().string().find(".tmp."),
                  std::string::npos)
            << entry.path();
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Cross-process division and the distributed determinism contract
// ---------------------------------------------------------------------

/** 12 points, short windows -- the same grid test_runner uses. */
SweepAxes
distAxes()
{
    static const AddressMapper mapper(HmcConfig::gen2_4GB(),
                                      MaxBlockSize::B128);
    SweepAxes axes;
    axes.patterns = {vaultPattern(mapper, 16), vaultPattern(mapper, 4),
                     vaultPattern(mapper, 1), bankPattern(mapper, 2)};
    axes.mixes = {RequestMix::ReadOnly};
    axes.sizes = {128, 64, 32};
    axes.base.warmup = 10 * tickUs;
    axes.base.measure = 50 * tickUs;
    return axes;
}

std::string
localJsonl(unsigned jobs)
{
    std::ostringstream out;
    JsonLinesSink sink(out);
    SweepOptions opts;
    opts.jobs = jobs;
    opts.sinks = {&sink};
    SweepRunner(opts).run(distAxes());
    return out.str();
}

TEST(TwoProcessStore, DividesAGridWithoutLossOrDuplication)
{
    const std::filesystem::path dir =
        freshDir("hmcsim_test_store_fork");
    {
        SharedResultStore init({dir.string(), 300});
    }

    const auto sweepOverStore = [&dir](unsigned jobs) {
        SharedResultStore store({dir.string(), 300});
        ClaimedResultStorage storage(store, 1);
        ResultCache cache(storage);
        SweepOptions opts;
        opts.jobs = jobs;
        opts.cache = &cache;
        return SweepRunner(opts).run(distAxes());
    };

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child process: race the parent over the same 12 points.
        // Claims make the two processes partition the grid; each
        // point is simulated by exactly one of them.
        sweepOverStore(1);
        ::_exit(0);
    }
    const std::vector<SweepPointResult> mine = sweepOverStore(1);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    // Both processes hold complete, identical result sets...
    ASSERT_EQ(mine.size(), 12u);
    const std::vector<SweepPointResult> reference =
        SweepRunner(SweepOptions{}).run(distAxes());
    for (std::size_t i = 0; i < mine.size(); ++i) {
        EXPECT_EQ(mine[i].digest, reference[i].digest);
        EXPECT_EQ(mine[i].statDigest, reference[i].statDigest);
    }

    // ...and the store holds exactly one object per point: nothing
    // lost, nothing duplicated, no claims or temp files left behind.
    std::size_t objects = 0;
    for (const auto &entry : std::filesystem::recursive_directory_iterator(
             dir / "objects"))
        objects += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(objects, 12u);
    std::size_t claims = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir / "claims"))
        claims += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(claims, 0u);

    // A third, cold process is served entirely from the store.
    SharedResultStore store({dir.string(), 300});
    ClaimedResultStorage storage(store, 1);
    ResultCache cache(storage);
    SweepOptions warm;
    warm.jobs = 2;
    warm.cache = &cache;
    for (const SweepPointResult &point :
         SweepRunner(warm).run(distAxes()))
        EXPECT_TRUE(point.fromCache);
    std::filesystem::remove_all(dir);
}

TEST(Distributed, CoordinatorAndWorkersMatchLocalByteForByte)
{
    const std::filesystem::path sock =
        std::filesystem::temp_directory_path() / "hmcsim_dist_e2e.sock";
    std::filesystem::remove(sock);

    std::ostringstream out;
    JsonLinesSink sink(out);
    DistSweepOptions opts;
    opts.listenSpec = "unix:" + sock.string();
    opts.sweep.sinks = {&sink};

    DistSweepStats stats;
    std::thread coordinator([&opts, &stats] {
        runDistributedSweep(distAxes(), opts, &stats);
    });

    // Workers retry until the coordinator is listening.
    const auto workUntilDrained = [&sock] {
        WorkerOptions w;
        w.connectSpec = "unix:" + sock.string();
        w.jobs = 2;
        for (int tries = 0; tries < 300; ++tries) {
            if (runWorker(w) == 0)
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    };
    std::thread workerA(workUntilDrained);
    std::thread workerB(workUntilDrained);

    coordinator.join();
    workerA.join();
    workerB.join();

    EXPECT_EQ(out.str(), localJsonl(1));
    EXPECT_EQ(stats.points, 12u);
    EXPECT_EQ(stats.simulated, 12u);
    EXPECT_GE(stats.workersSeen, 1u);
}

TEST(Distributed, ReclaimsLeasesOfAClientThatDiesSilently)
{
    const std::filesystem::path sock =
        std::filesystem::temp_directory_path() /
        "hmcsim_dist_flaky.sock";
    std::filesystem::remove(sock);

    std::ostringstream out;
    JsonLinesSink sink(out);
    DistSweepOptions opts;
    opts.listenSpec = "unix:" + sock.string();
    opts.sweep.sinks = {&sink};

    DistSweepStats stats;
    std::thread coordinator([&opts, &stats] {
        runDistributedSweep(distAxes(), opts, &stats);
    });

    // A flaky client: lease three points, read them, vanish without
    // resulting a single one.
    NetAddress addr;
    std::string error;
    ASSERT_TRUE(
        parseNetAddress("unix:" + sock.string(), addr, error));
    int fd = -1;
    for (int tries = 0; tries < 300 && fd < 0; ++tries) {
        fd = netConnect(addr, error);
        if (fd < 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(writeFrame(fd, formatHello(1)));
    std::string payload;
    ASSERT_TRUE(readFrame(fd, payload));
    ASSERT_TRUE(writeFrame(fd, formatWant(3)));
    ASSERT_TRUE(readFrame(fd, payload));
    std::string header, body;
    splitFrame(payload, header, body);
    std::size_t granted = 0;
    ASSERT_TRUE(parseGranted(header, granted));
    ASSERT_EQ(granted, 3u);
    for (std::size_t i = 0; i < granted; ++i)
        ASSERT_TRUE(readFrame(fd, payload));
    ::close(fd); // Silent death, three leases outstanding.

    // An honest worker finishes the whole grid, reclaimed points
    // included.
    WorkerOptions w;
    w.connectSpec = "unix:" + sock.string();
    w.jobs = 2;
    std::thread worker([&w] {
        for (int tries = 0; tries < 300; ++tries) {
            if (runWorker(w) == 0)
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    });

    coordinator.join();
    worker.join();

    // Reclaim changed scheduling only -- never bytes.
    EXPECT_EQ(out.str(), localJsonl(1));
    EXPECT_EQ(stats.reclaimed, 3u);
    EXPECT_EQ(stats.simulated, 12u);
}

} // namespace
