/**
 * @file
 * Unit tests for the DDR baseline channel and the analysis helpers
 * (regression, Little's law, knee detection, table formatting).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/regression.hh"
#include "analysis/table.hh"
#include "baseline/ddr_channel.hh"

namespace hmcsim
{
namespace
{

// ---- DDR channel ------------------------------------------------------

TEST(DdrChannel, LinearTrafficHitsRows)
{
    const DdrChannelConfig cfg;
    const DdrMeasurement m = measureDdrPattern(cfg, true, 64, 8, 20000);
    // 1 KB rows, 64 B requests: 15 of 16 accesses hit.
    EXPECT_GT(m.rowHitRate, 0.85);
}

TEST(DdrChannel, RandomTrafficMissesRows)
{
    const DdrChannelConfig cfg;
    const DdrMeasurement m = measureDdrPattern(cfg, false, 64, 8, 20000);
    EXPECT_LT(m.rowHitRate, 0.05);
}

TEST(DdrChannel, LinearBeatsRandomAtModestConcurrency)
{
    const DdrChannelConfig cfg;
    const DdrMeasurement lin = measureDdrPattern(cfg, true, 64, 8, 50000);
    const DdrMeasurement rnd =
        measureDdrPattern(cfg, false, 64, 8, 50000);
    EXPECT_GT(lin.gbps, rnd.gbps);
    EXPECT_LT(lin.avgLatencyNs, rnd.avgLatencyNs);
}

TEST(DdrChannel, ClosedPagePolicyRemovesTheLinearAdvantage)
{
    DdrChannelConfig cfg;
    cfg.policy = PagePolicy::Closed;
    const DdrMeasurement lin = measureDdrPattern(cfg, true, 64, 8, 30000);
    const DdrMeasurement rnd =
        measureDdrPattern(cfg, false, 64, 8, 30000);
    EXPECT_DOUBLE_EQ(lin.rowHitRate, 0.0);
    // Linear no longer wins big; random's bank spread can even win.
    EXPECT_LT(lin.gbps / rnd.gbps, 1.15);
}

TEST(DdrChannel, BandwidthBoundedByBus)
{
    DdrChannelConfig cfg;
    const DdrMeasurement m = measureDdrPattern(cfg, true, 64, 64, 50000);
    EXPECT_LE(m.gbps, cfg.busBytesPerSecond / 1e9 * 1.01);
}

TEST(DdrChannel, TfawCapsRandomActivationRate)
{
    // Random 64 B misses need one ACT each: the 4-per-30ns window
    // caps the channel near 133 MRPS x 64 B = 8.5 GB/s even though
    // the bus could carry 19.2.
    const DdrChannelConfig cfg;
    const DdrMeasurement m =
        measureDdrPattern(cfg, false, 64, 64, 100000);
    EXPECT_LT(m.gbps, 9.0);
    EXPECT_GT(m.gbps, 7.5);
    // Row hits do not activate: linear traffic still reaches the bus.
    const DdrMeasurement lin =
        measureDdrPattern(cfg, true, 64, 64, 100000);
    EXPECT_GT(lin.gbps, 18.0);
}

TEST(DdrChannel, StatsAccumulate)
{
    DdrChannelConfig cfg;
    DdrChannel channel(cfg);
    channel.access(0, 64, false, 0);
    channel.access(64, 64, true, 0);
    EXPECT_EQ(channel.stats().accesses, 2u);
    EXPECT_EQ(channel.stats().payloadBytes, 128u);
    channel.reset();
    EXPECT_EQ(channel.stats().accesses, 0u);
}

TEST(DdrChannel, RowInterleavedMapping)
{
    // Consecutive rows land on consecutive banks: with 16 banks and
    // 1 KB rows, addresses 0 and 1024 use different banks and can
    // overlap, addresses 0 and 16 KB share a bank.
    DdrChannelConfig cfg;
    DdrChannel a(cfg), b(cfg);
    const Tick t_overlap_0 = a.access(0, 64, false, 0);
    (void)t_overlap_0;
    const Tick overlap = a.access(1024, 64, false, 0);
    DdrChannel c(cfg);
    c.access(0, 64, false, 0);
    const Tick conflict = c.access(16 * 1024, 64, false, 0);
    EXPECT_LT(overlap, conflict);
}

// ---- Regression -------------------------------------------------------

TEST(LinearFitTest, ExactLine)
{
    const LinearFit fit =
        linearFit({1.0, 2.0, 3.0, 4.0}, {3.0, 5.0, 7.0, 9.0});
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
    EXPECT_NEAR(fit.at(10.0), 21.0, 1e-12);
}

TEST(LinearFitTest, NoisyDataStillCloseAndR2Sane)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 100; ++i) {
        xs.push_back(i);
        ys.push_back(0.5 * i + 3.0 + ((i % 2) ? 0.2 : -0.2));
    }
    const LinearFit fit = linearFit(xs, ys);
    EXPECT_NEAR(fit.slope, 0.5, 0.01);
    EXPECT_GT(fit.r2, 0.99);
    EXPECT_LT(fit.r2, 1.0);
}

TEST(LinearFitTest, DegenerateInputs)
{
    EXPECT_EQ(linearFit({}, {}).n, 0u);
    EXPECT_DOUBLE_EQ(linearFit({1.0}, {2.0}).slope, 0.0);
    // Vertical line (all x equal) must not blow up.
    const LinearFit fit = linearFit({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(LittlesLaw, Arithmetic)
{
    // 10 us in system at 50 Mreq/s = 500 requests in flight.
    EXPECT_DOUBLE_EQ(littlesLawOccupancy(10.0, 50.0), 500.0);
    EXPECT_DOUBLE_EQ(littlesLawOccupancy(0.0, 50.0), 0.0);
}

TEST(SaturationKnee, FindsFirstDoubling)
{
    const std::vector<LatencyBandwidthPoint> curve = {
        {1.0, 1.0}, {2.0, 1.1}, {3.0, 1.3}, {3.5, 2.5}, {3.6, 5.0}};
    EXPECT_EQ(saturationKnee(curve, 2.0), 3u);
}

TEST(SaturationKnee, NeverSaturatingReturnsLastPoint)
{
    const std::vector<LatencyBandwidthPoint> curve = {
        {1.0, 1.0}, {2.0, 1.1}, {3.0, 1.2}};
    EXPECT_EQ(saturationKnee(curve, 2.0), 2u);
}

TEST(SaturationKnee, EmptyCurve)
{
    EXPECT_EQ(saturationKnee({}, 2.0), 0u);
}

// ---- Table formatting --------------------------------------------------

TEST(TextTableTest, AlignsColumns)
{
    TextTable table({"a", "long-header"});
    table.addRow({"xxxxxx", "1"});
    const std::string out = table.render();
    EXPECT_NE(out.find("a       long-header"), std::string::npos);
    EXPECT_NE(out.find("xxxxxx  1"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTableTest, RejectsWrongArity)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "arity");
}

TEST(TextTableTest, CsvRenderingAndQuoting)
{
    TextTable table({"name", "value"});
    table.addRow({"plain", "1"});
    table.addRow({"with,comma", "2"});
    table.addRow({"with\"quote", "3"});
    const std::string csv = table.renderCsv();
    EXPECT_NE(csv.find("name,value\n"), std::string::npos);
    EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\",2"), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\",3"), std::string::npos);
}

TEST(StrFmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
}

} // namespace
} // namespace hmcsim
