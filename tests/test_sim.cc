/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, clock
 * domains, RNG determinism, and statistics primitives.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/clocked.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace hmcsim
{
namespace
{

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    q.runToCompletion();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&]() {
        ++count;
        if (count < 5)
            q.scheduleIn(10, [&] {
                ++count;
                if (count < 5)
                    q.scheduleIn(10, [&] { count = 5; });
            });
    };
    q.schedule(0, chain);
    q.runToCompletion();
    EXPECT_EQ(count, 5);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 17; ++i)
        q.schedule(i, [] {});
    q.runToCompletion();
    EXPECT_EQ(q.executed(), 17u);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runToCompletion();
    q.reset();
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(ClockDomain, FpgaClockIs187MHz)
{
    const ClockDomain clk = fpgaClock();
    EXPECT_NEAR(clk.frequencyHz(), 187.5e6, 0.5e6);
    EXPECT_EQ(clk.period(), 5333u);
}

TEST(ClockDomain, CyclesToTicks)
{
    const ClockDomain clk(1000);
    EXPECT_EQ(clk.cycles(5), 5000u);
    EXPECT_EQ(clk.cycleCount(5999), 5u);
}

TEST(ClockDomain, NextEdgeRoundsUp)
{
    const ClockDomain clk(1000);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(0), 0u);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(1), 1000u);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(1000), 1000u);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(1001), 2000u);
}

TEST(ClockDomain, FromFrequency)
{
    const ClockDomain clk = ClockDomain::fromFrequencyHz(1e9);
    EXPECT_EQ(clk.period(), 1000u);
}

TEST(TickConversion, RoundTrips)
{
    EXPECT_EQ(nsToTicks(1.0), tickNs);
    EXPECT_DOUBLE_EQ(ticksToNs(1500), 1.5);
    EXPECT_DOUBLE_EQ(ticksToUs(2 * tickUs), 2.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(tickS), 1.0);
}

TEST(TickConversion, BandwidthMath)
{
    // 1e9 bytes over one second = 1 GB/s.
    EXPECT_DOUBLE_EQ(toGBps(bytesPerSecond(1000000000ULL, tickS)), 1.0);
}

TEST(Random, Deterministic)
{
    Xoshiro256StarStar a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Xoshiro256StarStar a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Random, BoundedStaysInRange)
{
    Xoshiro256StarStar rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(97), 97u);
}

TEST(Random, BoundedCoversRange)
{
    Xoshiro256StarStar rng(11);
    std::vector<int> histogram(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++histogram[rng.nextBounded(8)];
    for (int count : histogram)
        EXPECT_GT(count, 800); // each bucket within ~20% of fair share
}

TEST(Random, DoubleInUnitInterval)
{
    Xoshiro256StarStar rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SampleStats, BasicMoments)
{
    SampleStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(SampleStats, MergeMatchesCombined)
{
    SampleStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.77;
        (i % 2 ? a : b).sample(v);
        all.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleStats, MergeWithEmpty)
{
    SampleStats a, empty;
    a.sample(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Histogram, BinsAndBounds)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.0);
    h.sample(5.5);
    h.sample(9.999);
    h.sample(10.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.totalSamples(), 5u);
}

TEST(Histogram, QuantileApproximation)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, MergeCombinesCounts)
{
    Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
    a.sample(1.0);
    b.sample(1.5);
    b.sample(9.5);
    b.sample(-1.0);
    a.merge(b);
    EXPECT_EQ(a.totalSamples(), 4u);
    EXPECT_EQ(a.binCount(1), 2u);
    EXPECT_EQ(a.binCount(9), 1u);
    EXPECT_EQ(a.underflow(), 1u);
}

TEST(Histogram, MergeRejectsDifferentBinning)
{
    Histogram a(0.0, 10.0, 10), b(0.0, 20.0, 10);
    EXPECT_DEATH(a.merge(b), "different binning");
}

TEST(BandwidthMeter, MeasuresWindowOnly)
{
    BandwidthMeter m;
    m.add(1000); // before start: ignored
    m.start(0);
    m.add(500);
    m.stop(tickS);
    m.add(500); // after stop: ignored
    EXPECT_EQ(m.totalBytes(), 500u);
    EXPECT_NEAR(m.gbps(), 500.0 / 1e9, 1e-12);
}

} // namespace
} // namespace hmcsim
