/**
 * @file
 * Unit tests for the power model: traffic decomposition, the coupled
 * power/thermal solve, the paper's failure set, and the cooling-power
 * inversion used by Fig. 12.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/power_model.hh"

namespace hmcsim
{
namespace
{

TrafficSummary
roTraffic(double raw_gbps)
{
    // 128 B reads: payload is 128/160 of raw; 160 B per request.
    TrafficSummary t;
    t.rawGBps = raw_gbps;
    t.readPayloadGBps = raw_gbps * 128.0 / 160.0;
    t.readMrps = raw_gbps * 1000.0 / 160.0;
    return t;
}

TrafficSummary
woTraffic(double raw_gbps)
{
    TrafficSummary t;
    t.rawGBps = raw_gbps;
    t.writePayloadGBps = raw_gbps * 128.0 / 160.0;
    t.writeMrps = raw_gbps * 1000.0 / 160.0;
    return t;
}

TEST(PowerModel, ZeroTrafficZeroDynamicPower)
{
    const PowerModel model;
    EXPECT_DOUBLE_EQ(model.hmcDynamicPower(TrafficSummary{}), 0.0);
}

TEST(PowerModel, DynamicPowerMonotonicInBandwidth)
{
    const PowerModel model;
    double prev = -1.0;
    for (double bw = 0.0; bw <= 25.0; bw += 5.0) {
        const double p = model.hmcDynamicPower(roTraffic(bw));
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(PowerModel, WriteTrafficCostsMoreThanReadAtHighBandwidth)
{
    const PowerModel model;
    EXPECT_GT(model.hmcDynamicPower(woTraffic(15.0)),
              model.hmcDynamicPower(roTraffic(15.0)));
}

TEST(PowerModel, WritePowerIsSuperlinear)
{
    const PowerModel model;
    const double p1 = model.hmcDynamicPower(woTraffic(5.0));
    const double p2 = model.hmcDynamicPower(woTraffic(10.0));
    EXPECT_GT(p2, 2.0 * p1);
}

TEST(PowerModel, SystemPowerIncludesIdleAndFpga)
{
    const PowerModel model;
    const PowerThermalResult r = model.solve(
        TrafficSummary{}, RequestMix::ReadOnly, coolingConfig(1));
    // Idle: baseline plus the tiny metered leakage of sitting 0.1 C
    // above the global leakage reference.
    EXPECT_NEAR(r.systemW,
                model.params().systemIdleW + model.params().fpgaActiveW,
                0.05);
    EXPECT_DOUBLE_EQ(r.hmcDynamicW, 0.0);
}

TEST(PowerModel, SolveCouplesPowerAndTemperature)
{
    const PowerModel model;
    const TrafficSummary t = roTraffic(20.0);
    const PowerThermalResult strong =
        model.solve(t, RequestMix::ReadOnly, coolingConfig(1));
    const PowerThermalResult weak =
        model.solve(t, RequestMix::ReadOnly, coolingConfig(4));
    // Same workload: weaker cooling -> hotter -> more leakage ->
    // more wall power (Fig. 10's second observation).
    EXPECT_GT(weak.temperatureC, strong.temperatureC);
    EXPECT_GT(weak.leakageW, strong.leakageW);
    EXPECT_GT(weak.systemW, strong.systemW);
    EXPECT_DOUBLE_EQ(weak.hmcDynamicW, strong.hmcDynamicW);
}

TEST(PowerModel, PaperFailureSet)
{
    // The headline Sec. IV-C result: at full distributed load,
    // read-only survives all four cooling configs, write-only fails
    // Cfg3 and Cfg4, read-modify-write fails only Cfg4.
    const PowerModel model;
    const TrafficSummary ro = roTraffic(20.0);
    TrafficSummary wo = woTraffic(15.8);
    // rw at ~27 GB/s raw: both directions carry ~10.9 GB/s payload.
    TrafficSummary rw;
    rw.rawGBps = 27.3;
    rw.readPayloadGBps = 10.9;
    rw.writePayloadGBps = 10.9;
    rw.readMrps = 85.0;
    rw.writeMrps = 85.0;

    for (unsigned c = 1; c <= 4; ++c) {
        EXPECT_FALSE(model.solve(ro, RequestMix::ReadOnly,
                                 coolingConfig(c))
                         .failure)
            << "ro Cfg" << c;
    }
    EXPECT_FALSE(
        model.solve(wo, RequestMix::WriteOnly, coolingConfig(2)).failure);
    EXPECT_TRUE(
        model.solve(wo, RequestMix::WriteOnly, coolingConfig(3)).failure);
    EXPECT_TRUE(
        model.solve(wo, RequestMix::WriteOnly, coolingConfig(4)).failure);
    EXPECT_FALSE(model.solve(rw, RequestMix::ReadModifyWrite,
                             coolingConfig(3))
                     .failure);
    EXPECT_TRUE(model.solve(rw, RequestMix::ReadModifyWrite,
                            coolingConfig(4))
                    .failure);
}

TEST(PowerModel, ReadOnlyNearsButStaysUnder85InCfg4)
{
    const PowerModel model;
    const PowerThermalResult r = model.solve(
        roTraffic(20.0), RequestMix::ReadOnly, coolingConfig(4));
    // Paper: temperature "reaches 80 C" without failure.
    EXPECT_GT(r.temperatureC, 74.0);
    EXPECT_LT(r.temperatureC, 85.0);
}

TEST(InterpolateCooling, ReproducesAnchorsAtTablePoints)
{
    for (const CoolingConfig &cfg : coolingConfigs()) {
        const CoolingConfig interp =
            interpolateCooling(cfg.coolingPowerW);
        EXPECT_NEAR(interp.idleTemperatureC, cfg.idleTemperatureC, 1e-9)
            << cfg.name;
        EXPECT_NEAR(interp.thermalResistance, cfg.thermalResistance,
                    1e-9)
            << cfg.name;
    }
}

TEST(InterpolateCooling, MonotonicBetweenAnchors)
{
    double prev_t = 1e9;
    for (double w = 11.0; w <= 19.0; w += 0.5) {
        const CoolingConfig c = interpolateCooling(w);
        EXPECT_LT(c.idleTemperatureC, prev_t); // more cooling, cooler
        prev_t = c.idleTemperatureC;
    }
}

TEST(RequiredCoolingPower, MoreBandwidthNeedsMoreCooling)
{
    const PowerModel model;
    const double w_low =
        model.requiredCoolingPower(roTraffic(5.0), 60.0);
    const double w_high =
        model.requiredCoolingPower(roTraffic(20.0), 60.0);
    ASSERT_FALSE(std::isnan(w_low));
    ASSERT_FALSE(std::isnan(w_high));
    EXPECT_GT(w_high, w_low);
}

TEST(RequiredCoolingPower, LowerTargetNeedsMoreCooling)
{
    const PowerModel model;
    const double w55 = model.requiredCoolingPower(roTraffic(15.0), 55.0);
    const double w65 = model.requiredCoolingPower(roTraffic(15.0), 65.0);
    ASSERT_FALSE(std::isnan(w55));
    ASSERT_FALSE(std::isnan(w65));
    EXPECT_GT(w55, w65);
}

TEST(RequiredCoolingPower, UnreachableTargetIsNaN)
{
    const PowerModel model;
    // 28 C is below what even the extrapolated strongest cooling can
    // hold under load.
    EXPECT_TRUE(std::isnan(
        model.requiredCoolingPower(woTraffic(15.0), 28.0)));
}

TEST(RequiredCoolingPower, SolutionHoldsTheTarget)
{
    const PowerModel model;
    const TrafficSummary t = roTraffic(18.0);
    const double target = 58.0;
    const double w = model.requiredCoolingPower(t, target);
    ASSERT_FALSE(std::isnan(w));
    const ThermalModel check(interpolateCooling(w));
    const double achieved =
        check.steadyState(model.hmcDynamicPower(t), RequestMix::ReadOnly)
            .temperatureC;
    EXPECT_NEAR(achieved, target, 0.05);
}

} // namespace
} // namespace hmcsim
