/**
 * @file
 * Tests for the temperature-coupled co-simulation loop.
 */

#include <gtest/gtest.h>

#include "host/cosim.hh"

namespace hmcsim
{
namespace
{

CoSimConfig
baseConfig(RequestMix mix, unsigned cooling)
{
    CoSimConfig cfg;
    cfg.experiment.mix = mix;
    cfg.experiment.warmup = 50 * tickUs;
    cfg.cooling = coolingConfig(cooling);
    cfg.sliceSimTime = 100 * tickUs;
    return cfg;
}

TEST(CoSim, ConvergesToTheSteadyStateSolve)
{
    // Read-only in Cfg2: the transient must settle at (about) the
    // closed-form fixed point used by the Fig. 9-11 benches.
    const CoSimConfig cfg = baseConfig(RequestMix::ReadOnly, 2);
    const CoSimResult r = runCoSimulation(cfg);
    ASSERT_FALSE(r.failed);
    ASSERT_GE(r.series.size(), 30u);

    const PowerModel power;
    const double dynamic =
        power.hmcDynamicPower(TrafficSummary{
            r.series.back().rawGBps,
            r.series.back().rawGBps * 128.0 / 160.0, 0.0,
            r.series.back().rawGBps * 1000.0 / 160.0, 0.0});
    const ThermalModel thermal(cfg.cooling);
    const double target =
        thermal.steadyState(dynamic, RequestMix::ReadOnly).temperatureC;
    EXPECT_NEAR(r.finalTemperatureC, target, 0.4);
}

TEST(CoSim, TemperatureRisesMonotonicallyFromIdle)
{
    const CoSimResult r =
        runCoSimulation(baseConfig(RequestMix::ReadOnly, 3));
    double prev = 0.0;
    for (const CoSimSample &s : r.series) {
        EXPECT_GE(s.temperatureC, prev - 1e-9);
        prev = s.temperatureC;
    }
    EXPECT_GT(r.finalTemperatureC, coolingConfig(3).idleTemperatureC);
}

TEST(CoSim, WriteOnlyFailsInCfg3MidRun)
{
    // The paper's wo failure case: temperature must cross 75 C well
    // inside the 200 s window, after which the run stops.
    const CoSimResult r =
        runCoSimulation(baseConfig(RequestMix::WriteOnly, 3));
    ASSERT_TRUE(r.failed);
    EXPECT_GT(r.failureTimeSeconds, 10.0);
    EXPECT_LT(r.failureTimeSeconds, 200.0);
    EXPECT_GT(r.finalTemperatureC, 75.0);
}

TEST(CoSim, ReadOnlySurvivesEverywhere)
{
    for (unsigned c = 1; c <= 4; ++c) {
        const CoSimResult r =
            runCoSimulation(baseConfig(RequestMix::ReadOnly, c));
        EXPECT_FALSE(r.failed) << "Cfg" << c;
        EXPECT_LT(r.finalTemperatureC, 85.0) << "Cfg" << c;
    }
}

TEST(CoSim, StrongerCoolingFailsLaterOrNotAtAll)
{
    const CoSimResult weak =
        runCoSimulation(baseConfig(RequestMix::WriteOnly, 4));
    const CoSimResult mid =
        runCoSimulation(baseConfig(RequestMix::WriteOnly, 3));
    const CoSimResult strong =
        runCoSimulation(baseConfig(RequestMix::WriteOnly, 1));
    ASSERT_TRUE(weak.failed);
    ASSERT_TRUE(mid.failed);
    EXPECT_FALSE(strong.failed);
    EXPECT_LT(weak.failureTimeSeconds, mid.failureTimeSeconds);
}

TEST(CoSim, BandwidthHoldsWhileHealthy)
{
    // Until the bound is crossed, the workload's bandwidth must not
    // degrade (temperature does not throttle the links in our model).
    const CoSimResult r =
        runCoSimulation(baseConfig(RequestMix::ReadOnly, 2));
    const double first = r.series.front().rawGBps;
    for (const CoSimSample &s : r.series)
        EXPECT_NEAR(s.rawGBps, first, first * 0.02);
}

TEST(CoSim, SeriesTimestampsAdvanceUniformly)
{
    CoSimConfig cfg = baseConfig(RequestMix::ReadOnly, 1);
    cfg.wallStepSeconds = 2.5;
    cfg.wallDurationSeconds = 50.0;
    const CoSimResult r = runCoSimulation(cfg);
    ASSERT_EQ(r.series.size(), 20u);
    for (std::size_t i = 0; i < r.series.size(); ++i)
        EXPECT_DOUBLE_EQ(r.series[i].timeSeconds, 2.5 * (i + 1));
}

TEST(CoSim, HotRefreshEngagesAboveThreshold)
{
    // An extrapolated ultra-weak cooling point pushes read-only past
    // 85 C (but below its 85 C failure bound it fails... exactly at
    // the bound reads fail too, so disable stopping to observe the
    // refresh flag).
    CoSimConfig cfg = baseConfig(RequestMix::ReadOnly, 4);
    // A hypothetical no-airflow enclosure, weaker than any Table III
    // point: hot enough that read-only crosses 85 C.
    cfg.cooling = CoolingConfig{"enclosed", 5.0,  0.1, 200.0,
                                80.0,       8.0,  2.6};
    cfg.stopOnFailure = false;
    cfg.wallDurationSeconds = 150.0;
    const CoSimResult r = runCoSimulation(cfg);
    bool saw_hot = false;
    for (const CoSimSample &s : r.series)
        saw_hot = saw_hot || s.hotRefresh;
    EXPECT_TRUE(saw_hot);
    // The refresh engine actually doubled its rate.
    EXPECT_GT(r.finalTemperatureC, HmcDevice::hotRefreshThresholdC);
}

} // namespace
} // namespace hmcsim
