/**
 * @file
 * MemoryBackend interface tests (mem/backend.hh, docs/backends.md).
 *
 * The load-bearing suite is the HMC parity differential: the vault
 * controller refactored onto the backend interface must reproduce the
 * pre-refactor analytic math tick for tick, request for request --
 * the byte-identity rule of docs/performance.md, checked here against
 * an embedded replica of the legacy arithmetic rather than a golden
 * file. The rest covers the DDR4 backend's row locality, the NVM
 * tier's asymmetric timing / write-queue drain / endurance counters,
 * and the backend sweep axis's determinism and cache stability.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "dram/bank.hh"
#include "gups/patterns.hh"
#include "hmc/address_mapper.hh"
#include "hmc/config.hh"
#include "hmc/vault_controller.hh"
#include "host/experiment.hh"
#include "link/link.hh"
#include "mem/backend.hh"
#include "mem/ddr4_backend.hh"
#include "mem/nvm_backend.hh"
#include "runner/config_digest.hh"
#include "runner/sweep.hh"
#include "sim/random.hh"

namespace
{

using namespace hmcsim;

Packet
makePacket(Command cmd, Addr addr, unsigned bank, std::uint32_t row,
           Bytes payload)
{
    Packet pkt{};
    pkt.cmd = cmd;
    pkt.addr = addr;
    pkt.payload = payload;
    pkt.bank = static_cast<std::uint8_t>(bank);
    pkt.row = row;
    return pkt;
}

// ---------------------------------------------------------------------
// Factory and naming
// ---------------------------------------------------------------------

TEST(BackendFactory, MakesEverySelectedKind)
{
    BackendEnvironment env;
    MemoryBackendConfig cfg;
    for (const BackendKind kind :
         {BackendKind::HmcDram, BackendKind::Ddr4, BackendKind::Nvm}) {
        cfg.kind = kind;
        const auto backend = makeMemoryBackend(env, cfg);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->kind(), kind);
        EXPECT_EQ(backend->numBanks(), env.numBanks);
        EXPECT_GT(backend->busBytesPerSecond(), 0.0);
    }
}

TEST(BackendFactory, NamesRoundTripThroughTheParser)
{
    for (const BackendKind kind :
         {BackendKind::HmcDram, BackendKind::Ddr4, BackendKind::Nvm}) {
        BackendKind parsed;
        ASSERT_TRUE(parseBackendKind(backendName(kind), parsed))
            << backendName(kind);
        EXPECT_EQ(parsed, kind);
    }
    BackendKind parsed;
    EXPECT_TRUE(parseBackendKind("pcm", parsed));
    EXPECT_EQ(parsed, BackendKind::Nvm);
    EXPECT_TRUE(parseBackendKind("dram", parsed));
    EXPECT_EQ(parsed, BackendKind::HmcDram);
    EXPECT_FALSE(parseBackendKind("flash", parsed));
}

// ---------------------------------------------------------------------
// HMC parity: the interface must not change a single tick
// ---------------------------------------------------------------------

/**
 * The analytic vault exactly as it was before the MemoryBackend
 * extraction: banks, staggered refresh bookkeeping, and the TSV bus
 * regulator inline. Any divergence between this and VaultController
 * is a parity break in the refactor.
 */
class LegacyVaultReplica
{
  public:
    explicit LegacyVaultReplica(const VaultConfig &cfg)
        : cfg(cfg), banks(cfg.numBanks), nextRefresh(cfg.numBanks, 0),
          dataBus(static_cast<double>(cfg.timings.beatBytes) * 1e12 /
                  static_cast<double>(cfg.timings.tBeat))
    {
        const Tick interval = refreshInterval();
        if (interval != 0)
            for (unsigned i = 0; i < cfg.numBanks; ++i)
                nextRefresh[i] = interval * (i + 1) / cfg.numBanks;
    }

    Tick
    refreshInterval() const
    {
        if (!cfg.refreshEnabled || cfg.refreshMultiplier <= 0.0)
            return 0;
        return static_cast<Tick>(
            static_cast<double>(cfg.timings.tRefi) /
            cfg.refreshMultiplier);
    }

    Tick
    service(const Packet &pkt, Tick arrival)
    {
        const Tick start = arrival + cfg.controllerLatency;
        const bool is_write = pkt.cmd != Command::Read;
        refreshDue(pkt.bank, start);
        BankAccessResult res =
            banks.at(pkt.bank).access(cfg.timings, cfg.policy, start,
                                      pkt.row, pkt.payload, is_write);
        if (pkt.cmd == Command::Atomic)
            res.dataReady += cfg.atomicLatency;
        const Bytes beat_span =
            (pkt.addr % cfg.timings.beatBytes) + pkt.payload;
        const Bytes bus_bytes =
            (cfg.timings.beats(beat_span) + cfg.commandBeats) *
            cfg.timings.beatBytes;
        return dataBus.admit(res.dataReady,
                             static_cast<double>(bus_bytes));
    }

    std::uint64_t refreshes() const { return numRefreshes; }

  private:
    void
    refreshDue(unsigned bank_idx, Tick now)
    {
        const Tick interval = refreshInterval();
        if (interval == 0)
            return;
        while (nextRefresh[bank_idx] <= now) {
            banks[bank_idx].refresh(cfg.timings,
                                    nextRefresh[bank_idx]);
            nextRefresh[bank_idx] += interval;
            ++numRefreshes;
        }
    }

    VaultConfig cfg;
    std::vector<Bank> banks;
    std::vector<Tick> nextRefresh;
    ThroughputRegulator dataBus;
    std::uint64_t numRefreshes = 0;
};

/** Drive both models with one pseudo-random request stream. */
void
expectParity(const VaultConfig &cfg, std::uint64_t seed)
{
    VaultController vault(cfg);
    LegacyVaultReplica replica(cfg);
    Xoshiro256StarStar rng(seed);

    Tick arrival = 0;
    for (unsigned i = 0; i < 4000; ++i) {
        const unsigned bank = static_cast<unsigned>(
            rng.nextBounded(cfg.numBanks));
        const auto row =
            static_cast<std::uint32_t>(rng.nextBounded(1024));
        const Bytes payload = 16u << rng.nextBounded(4); // 16..128
        const Addr addr = rng.nextBounded(1u << 30);
        const std::uint64_t pick = rng.nextBounded(4);
        const Command cmd = pick == 0   ? Command::Write
                            : pick == 1 ? Command::Atomic
                                        : Command::Read;
        const Packet pkt = makePacket(cmd, addr, bank, row, payload);
        ASSERT_EQ(vault.service(pkt, arrival),
                  replica.service(pkt, arrival))
            << "request " << i << " at arrival " << arrival;
        arrival += rng.nextBounded(200);
    }
    EXPECT_EQ(vault.stats().refreshes, replica.refreshes());
}

TEST(HmcParity, InterfaceIsTickIdenticalToLegacyMath)
{
    expectParity(VaultConfig{}, 7);
}

TEST(HmcParity, ParityHoldsWithRefreshEnabled)
{
    VaultConfig cfg;
    cfg.refreshEnabled = true;
    cfg.refreshMultiplier = 2.0; // hot-device rate, more refreshes
    expectParity(cfg, 11);
}

TEST(HmcParity, ParityHoldsUnderOpenPagePolicy)
{
    VaultConfig cfg;
    cfg.policy = PagePolicy::Open;
    expectParity(cfg, 13);
}

// ---------------------------------------------------------------------
// DDR4 backend
// ---------------------------------------------------------------------

TEST(Ddr4Backend, RowInterleavedMappingGivesLinearTrafficRowHits)
{
    BackendEnvironment env;
    MemoryBackendConfig cfg;
    cfg.kind = BackendKind::Ddr4;
    Ddr4Backend backend(env, cfg);

    // A cold access pays one metered activation slot (tFAW / 4).
    const Tick act_slot = cfg.ddrTFaw / cfg.ddrActivatesPerFaw;
    const BankAccessResult first =
        backend.accept(makePacket(Command::Read, 0, 0, 0, 64), 0);
    EXPECT_FALSE(first.rowHit);
    EXPECT_EQ(first.start, act_slot);

    // The next 64 B address shares the first 1 KB row: a row hit that
    // skips the activation regulator and starts as soon as the bank
    // frees, with a shorter array occupancy.
    const BankAccessResult second =
        backend.accept(makePacket(Command::Read, 64, 0, 0, 64),
                       first.bankFree);
    EXPECT_TRUE(second.rowHit);
    EXPECT_EQ(second.start, first.bankFree);
    EXPECT_LT(second.dataReady - second.start,
              first.dataReady - first.start);

    // 1 KB away is the next row, mapped to the next bank: a miss that
    // pays the second activation slot rather than waiting for bank 0.
    const BankAccessResult other =
        backend.accept(makePacket(Command::Read, 1024, 0, 0, 64), 0);
    EXPECT_FALSE(other.rowHit);
    EXPECT_EQ(other.start, 2 * act_slot);
    EXPECT_LT(other.start, first.bankFree);
}

TEST(Ddr4Backend, HonorsTheConfiguredClosedPagePolicy)
{
    BackendEnvironment env;
    MemoryBackendConfig cfg;
    cfg.kind = BackendKind::Ddr4;
    cfg.ddrPolicy = PagePolicy::Closed;
    Ddr4Backend backend(env, cfg);
    const BankAccessResult first =
        backend.accept(makePacket(Command::Read, 0, 0, 0, 64), 0);
    const BankAccessResult second = backend.accept(
        makePacket(Command::Read, 64, 0, 0, 64), first.bankFree);
    EXPECT_FALSE(second.rowHit);
}

// ---------------------------------------------------------------------
// NVM backend
// ---------------------------------------------------------------------

MemoryBackendConfig
nvmConfig()
{
    MemoryBackendConfig cfg;
    cfg.kind = BackendKind::Nvm;
    return cfg;
}

TEST(NvmBackend, ReadWriteTimingIsAsymmetric)
{
    BackendEnvironment env;
    const MemoryBackendConfig cfg = nvmConfig();
    NvmBackend backend(env, cfg);

    // A buffered write acknowledges after the short writeAck...
    const BankAccessResult wr =
        backend.accept(makePacket(Command::Write, 0, 0, 0, 64), 0);
    EXPECT_EQ(wr.start, 0u);
    EXPECT_EQ(wr.dataReady, cfg.nvmWriteAck);
    EXPECT_FALSE(wr.rowHit);

    // ...while an array read takes the long read latency, and a read
    // issued behind the write's drain waits the full write occupancy.
    const BankAccessResult rd =
        backend.accept(makePacket(Command::Read, 0, 0, 0, 64), 0);
    EXPECT_EQ(rd.start, cfg.nvmWriteLatency);
    EXPECT_EQ(rd.dataReady, cfg.nvmWriteLatency + cfg.nvmReadLatency);

    // A different bank's array is idle: reads there start at once.
    const BankAccessResult other =
        backend.accept(makePacket(Command::Read, 0, 1, 0, 64), 0);
    EXPECT_EQ(other.start, 0u);
    EXPECT_EQ(other.dataReady, cfg.nvmReadLatency);
}

TEST(NvmBackend, WriteQueueFullStallsAdmission)
{
    BackendEnvironment env;
    MemoryBackendConfig cfg = nvmConfig();
    cfg.nvmWriteQueueDepth = 2;
    NvmBackend backend(env, cfg);

    // Two writes buffer instantly; the third reuses the first write's
    // queue slot and must wait for its drain (one writeLatency).
    const BankAccessResult w1 =
        backend.accept(makePacket(Command::Write, 0, 0, 0, 64), 0);
    const BankAccessResult w2 =
        backend.accept(makePacket(Command::Write, 0, 0, 0, 64), 0);
    const BankAccessResult w3 =
        backend.accept(makePacket(Command::Write, 0, 0, 0, 64), 0);
    EXPECT_EQ(w1.start, 0u);
    EXPECT_EQ(w2.start, 0u);
    EXPECT_EQ(w3.start, cfg.nvmWriteLatency);
    EXPECT_EQ(w3.dataReady, cfg.nvmWriteLatency + cfg.nvmWriteAck);
}

TEST(NvmBackend, UnboundedQueueNeverStallsWrites)
{
    BackendEnvironment env;
    MemoryBackendConfig cfg = nvmConfig();
    cfg.nvmWriteQueueDepth = 0;
    NvmBackend backend(env, cfg);
    for (unsigned i = 0; i < 64; ++i) {
        const BankAccessResult w =
            backend.accept(makePacket(Command::Write, 0, 0, 0, 64), 0);
        EXPECT_EQ(w.start, 0u);
    }
}

TEST(NvmBackend, EndurancePerBankCountsWritesAndAtomicsOnly)
{
    BackendEnvironment env;
    NvmBackend backend(env, nvmConfig());

    backend.accept(makePacket(Command::Write, 0, 0, 0, 64), 0);
    backend.accept(makePacket(Command::Write, 0, 0, 0, 64), 0);
    backend.accept(makePacket(Command::Atomic, 0, 3, 0, 16), 0);
    backend.accept(makePacket(Command::Read, 0, 0, 0, 64), 0);
    backend.accept(makePacket(Command::Read, 0, 5, 0, 64), 0);

    EXPECT_EQ(backend.bankWrites(0), 2u);
    EXPECT_EQ(backend.bankWrites(3), 1u); // atomics wear the cell
    EXPECT_EQ(backend.bankWrites(5), 0u);

    CheckerRegistry checkers;
    backend.registerCheckers(checkers, "nvm");
    checkers.setFailureHandler([](const std::string &report) {
        ADD_FAILURE() << report;
    });
    checkers.runAll(0);
    EXPECT_EQ(checkers.violations(), 0u);

    backend.reset();
    EXPECT_EQ(backend.bankWrites(0), 0u);
    EXPECT_EQ(backend.bankWrites(3), 0u);
}

TEST(NvmBackend, EnduranceCountersAreRegisteredStats)
{
    BackendEnvironment env;
    NvmBackend backend(env, nvmConfig());
    backend.accept(makePacket(Command::Write, 0, 2, 0, 64), 0);

    StatRegistry registry;
    backend.registerStats(registry, StatPath("vault0"));
    ASSERT_TRUE(registry.has("vault0.endurance_bank2"));
    EXPECT_EQ(registry.value("vault0.endurance_bank2"), 1.0);
    EXPECT_EQ(registry.value("vault0.nvm_writes"), 1.0);
    EXPECT_EQ(registry.value("vault0.nvm_reads"), 0.0);
}

// ---------------------------------------------------------------------
// The three backends through the unified experiment path
// ---------------------------------------------------------------------

/** Write-heavy single-bank config: array timing dominates, so the
 *  three storage engines must separate clearly. */
ExperimentConfig
backendProbeConfig(BackendKind kind)
{
    static const AddressMapper mapper(HmcConfig::gen2_4GB(),
                                      MaxBlockSize::B128);
    ExperimentConfig cfg;
    cfg.pattern = bankPattern(mapper, 1);
    cfg.mix = RequestMix::WriteOnly;
    cfg.requestSize = 64;
    cfg.warmup = 10 * tickUs;
    cfg.measure = 50 * tickUs;
    cfg.device.vault.backend.kind = kind;
    return cfg;
}

TEST(BackendExperiment, ThreeBackendsProduceDistinctResults)
{
    std::set<std::uint64_t> digests;
    std::set<double> bandwidths;
    for (const BackendKind kind :
         {BackendKind::HmcDram, BackendKind::Ddr4, BackendKind::Nvm}) {
        const ExperimentConfig cfg = backendProbeConfig(kind);
        digests.insert(configDigest(cfg));
        const MeasurementResult res = runExperiment(cfg);
        EXPECT_GT(res.rawGBps, 0.0) << backendName(kind);
        bandwidths.insert(res.rawGBps);
    }
    EXPECT_EQ(digests.size(), 3u);
    EXPECT_EQ(bandwidths.size(), 3u);
}

TEST(BackendExperiment, NvmWriteDrainThrottlesABoundBank)
{
    // One bank, write-only: HMC cycles the bank in tens of ns; the
    // NVM tier drains one write per 400 ns once its queue fills.
    const MeasurementResult dram =
        runExperiment(backendProbeConfig(BackendKind::HmcDram));
    const MeasurementResult nvm =
        runExperiment(backendProbeConfig(BackendKind::Nvm));
    EXPECT_LT(nvm.mrps, dram.mrps * 0.5);
}

TEST(BackendExperiment, DeprecatedDdrShimMatchesExplicitSelection)
{
    const ExperimentConfig hmc =
        backendProbeConfig(BackendKind::HmcDram);
    const ExperimentConfig ddr = backendProbeConfig(BackendKind::Ddr4);
    RunArtifacts viaShim;
    RunArtifacts viaConfig;
    // lint:allow(deprecated-ddr-entry) -- the shim's own test.
    runDdrBaselineExperiment(hmc, RunOptions{}, &viaShim);
    runExperiment(ddr, RunOptions{}, &viaConfig);
    EXPECT_EQ(viaShim.statDigest, viaConfig.statDigest);
}

TEST(BackendExperiment, SelfCheckPassesOnEveryBackend)
{
    for (const BackendKind kind :
         {BackendKind::HmcDram, BackendKind::Ddr4, BackendKind::Nvm}) {
        ExperimentConfig cfg = backendProbeConfig(kind);
        cfg.measure = 20 * tickUs;
        const SelfCheckResult check = runSelfCheck(cfg);
        EXPECT_TRUE(check.identical())
            << backendName(kind) << " first mismatch: "
            << check.firstMismatch;
    }
}

// ---------------------------------------------------------------------
// Backend sweep axis
// ---------------------------------------------------------------------

SweepAxes
backendAxes()
{
    static const AddressMapper mapper(HmcConfig::gen2_4GB(),
                                      MaxBlockSize::B128);
    SweepAxes axes;
    axes.patterns = {vaultPattern(mapper, 4), bankPattern(mapper, 1)};
    axes.mixes = {RequestMix::ReadModifyWrite};
    axes.backends = {BackendKind::HmcDram, BackendKind::Ddr4,
                     BackendKind::Nvm};
    axes.base.warmup = 10 * tickUs;
    axes.base.measure = 30 * tickUs;
    return axes;
}

TEST(BackendSweep, AxisExpandsInnermostInCanonicalOrder)
{
    const std::vector<ExperimentConfig> points =
        backendAxes().expand();
    ASSERT_EQ(points.size(), 6u);
    EXPECT_EQ(points[0].device.vault.backend.kind,
              BackendKind::HmcDram);
    EXPECT_EQ(points[1].device.vault.backend.kind, BackendKind::Ddr4);
    EXPECT_EQ(points[2].device.vault.backend.kind, BackendKind::Nvm);
    EXPECT_EQ(points[0].pattern.name, points[2].pattern.name);
    EXPECT_NE(points[0].pattern.name, points[3].pattern.name);
}

TEST(BackendSweep, ParallelBitIdenticalToSerialAcrossBackends)
{
    const auto bits = [](const MeasurementResult &m) {
        std::uint64_t out;
        std::memcpy(&out, &m.rawGBps, sizeof(out));
        return out;
    };
    SweepOptions serial;
    serial.jobs = 1;
    const auto one = SweepRunner(serial).run(backendAxes());
    SweepOptions parallel;
    parallel.jobs = 8;
    const auto eight = SweepRunner(parallel).run(backendAxes());
    ASSERT_EQ(one.size(), 6u);
    ASSERT_EQ(eight.size(), 6u);
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].digest, eight[i].digest);
        EXPECT_EQ(one[i].statDigest, eight[i].statDigest);
        EXPECT_EQ(bits(one[i].result), bits(eight[i].result));
    }
}

TEST(BackendSweep, CacheServesEveryBackendStably)
{
    ResultCache cache;
    SweepOptions opts;
    opts.jobs = 4;
    opts.cache = &cache;
    const auto first = SweepRunner(opts).run(backendAxes());
    const auto second = SweepRunner(opts).run(backendAxes());
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < second.size(); ++i) {
        EXPECT_FALSE(first[i].fromCache);
        EXPECT_TRUE(second[i].fromCache);
        EXPECT_EQ(second[i].statDigest, first[i].statDigest);
    }
}

} // namespace
