/**
 * @file
 * Tests for the calendar event queue and the allocation-free event
 * core (docs/performance.md): same-tick FIFO within and across the
 * wheel/overflow boundary, runUntil boundary semantics, reset,
 * checker drain-point cadence, far-future overflow migration, Event
 * small-buffer semantics, packet-pool reuse, and an
 * allocation-counting guard over the steady-state scheduling path.
 */

#include <gtest/gtest.h>

#include <cstdlib>

// GCC pairs the replaced operator new with the library operator
// delete across inlining and misreports the malloc/free replacement
// pattern below as mismatched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
#include <functional>
#include <memory>
#include <new>
#include <vector>

#include "protocol/packet_pool.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"

// ---------------------------------------------------------------------
// Global allocation counter: every operator new in this binary is
// counted so tests can assert that a steady-state region performs no
// heap allocation at all. Single-threaded by the test contract.
// ---------------------------------------------------------------------

namespace
{
std::size_t g_allocations = 0;
}

void *
operator new(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hmcsim
{
namespace
{

/** Ticks covered by the wheel before entries spill to overflow. */
constexpr Tick wheelHorizon =
    EventQueue::bucketTicks * EventQueue::numBuckets;

TEST(CalendarQueue, SameTickFifoAcrossManyEvents)
{
    EventQueue q;
    std::vector<int> order;
    // Same tick, scheduled from several buckets' worth of "now"
    // distance: all land in one bucket and must pop in seq order.
    for (int i = 0; i < 1000; ++i)
        q.schedule(5000, [&order, i] { order.push_back(i); });
    q.runToCompletion();
    ASSERT_EQ(order.size(), 1000u);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(order[i], i);
}

TEST(CalendarQueue, SameTickFifoAcrossWheelAndOverflow)
{
    EventQueue q;
    std::vector<int> order;
    // First event targets a tick beyond the wheel horizon, so it
    // starts life in the overflow heap; by the time the second event
    // is scheduled at the *same* tick the cursor has advanced and the
    // tick is wheel-resident. Seq order must still win.
    const Tick when = 2 * wheelHorizon + 123;
    q.schedule(when, [&order] { order.push_back(0); });
    EXPECT_EQ(q.overflowPending(), 1u);
    q.runUntil(when - 10);
    q.schedule(when, [&order] { order.push_back(1); });
    q.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(CalendarQueue, InterleavedTicksExecuteInTimeOrder)
{
    EventQueue q;
    std::vector<Tick> fired;
    // Scatter schedules across buckets, laps, and the overflow in a
    // deliberately shuffled order.
    std::vector<Tick> when;
    for (Tick t = 0; t < 64; ++t)
        when.push_back((t * 7919) % (3 * wheelHorizon));
    for (const Tick t : when)
        q.schedule(t, [&fired, &q] { fired.push_back(q.now()); });
    q.runToCompletion();
    ASSERT_EQ(fired.size(), when.size());
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.overflowPending(), 0u);
}

TEST(CalendarQueue, OverflowMigratesIntoWheel)
{
    EventQueue q;
    int fired = 0;
    // Refresh-style far-future deadlines (7.8 us out) overflow, then
    // migrate as the window slides over them.
    for (int i = 0; i < 8; ++i)
        q.schedule(7800 * tickNs + static_cast<Tick>(i), [&] { ++fired; });
    EXPECT_EQ(q.overflowPending(), 8u);
    EXPECT_EQ(q.pending(), 8u);
    q.runToCompletion();
    EXPECT_EQ(fired, 8);
    EXPECT_EQ(q.overflowPending(), 0u);
}

TEST(CalendarQueue, CursorRewindsForNearSchedulesAfterFarPeek)
{
    EventQueue q;
    std::vector<int> order;
    // A far-only queue makes the cursor jump toward the overflow
    // entry during the (idle) runUntil peek; a subsequent near-future
    // schedule must pull it back and still fire first.
    const Tick far = 10 * wheelHorizon;
    q.schedule(far, [&order] { order.push_back(2); });
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100u);
    q.schedule(200, [&order] { order.push_back(1); });
    q.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), far);
}

TEST(CalendarQueue, RunUntilExecutesEventsExactlyAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(999, [&] { ++fired; });
    q.schedule(1000, [&] { ++fired; });
    q.schedule(1000, [&] { ++fired; });
    q.schedule(1001, [&] { ++fired; });
    const Tick stopped = q.runUntil(1000);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(stopped, 1000u);
    EXPECT_EQ(q.now(), 1000u);
    EXPECT_EQ(q.pending(), 1u);
    q.runToCompletion();
    EXPECT_EQ(fired, 4);
}

TEST(CalendarQueue, RunUntilAdvancesIdleTimeToLimit)
{
    EventQueue q;
    EXPECT_EQ(q.runUntil(5 * wheelHorizon), 5 * wheelHorizon);
    EXPECT_EQ(q.now(), 5 * wheelHorizon);
    // And the queue still accepts/executes later work correctly.
    int fired = 0;
    q.scheduleIn(10, [&] { ++fired; });
    q.runToCompletion();
    EXPECT_EQ(fired, 1);
}

TEST(CalendarQueue, ResetClearsWheelOverflowAndClock)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.schedule(5 * wheelHorizon, [] {});
    q.runUntil(20);
    q.reset();
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.overflowPending(), 0u);
    EXPECT_EQ(q.executed(), 0u);
    // Post-reset scheduling starts from tick zero again.
    std::vector<int> order;
    q.schedule(1, [&order] { order.push_back(1); });
    q.schedule(0, [&order] { order.push_back(0); });
    q.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(CalendarQueue, CheckerCadenceFollowsEveryN)
{
    EventQueue q;
    CheckerRegistry registry;
    std::vector<Tick> checkedAt;
    registry.addLambda("probe", [&checkedAt](Tick now) -> std::string {
        checkedAt.push_back(now);
        return {};
    });
    q.setCheckers(&registry, 4);
    for (Tick i = 1; i <= 10; ++i)
        q.schedule(i * 100, [] {});
    q.runToCompletion();
    // Drain points: after events 4 and 8, plus the final drain of
    // runToCompletion.
    ASSERT_EQ(checkedAt.size(), 3u);
    EXPECT_EQ(checkedAt[0], 400u);
    EXPECT_EQ(checkedAt[1], 800u);
    EXPECT_EQ(checkedAt[2], 1000u);
    EXPECT_EQ(registry.checksRun(), 3u);
}

TEST(CalendarQueue, StepExecutesOneEventAtATime)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10u);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
    EXPECT_EQ(fired, 2);
}

TEST(SboEvent, NonTrivialCapturesDestructOnce)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    {
        EventQueue q;
        int seen = 0;
        q.schedule(5, [token, &seen] { seen = *token; });
        token.reset();
        EXPECT_FALSE(watch.expired()); // queue keeps the capture alive
        q.runToCompletion();
        EXPECT_EQ(seen, 7);
    }
    EXPECT_TRUE(watch.expired());
}

TEST(SboEvent, UnexecutedNonTrivialCapturesReleaseOnReset)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    EventQueue q;
    q.schedule(5, [token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());
    q.reset(); // dropped without executing: capture must still die
    EXPECT_TRUE(watch.expired());
}

TEST(SboEvent, StdFunctionFitsViaManagerPath)
{
    // A std::function callable (the test-scaffolding case) rides the
    // manager path and survives queue-internal relocation.
    EventQueue q;
    int fired = 0;
    std::function<void()> fn = [&fired] { ++fired; };
    q.schedule(3 * wheelHorizon, fn); // overflow -> migrate -> wheel
    q.runToCompletion();
    EXPECT_EQ(fired, 1);
}

TEST(SboEvent, MoveTransfersOwnership)
{
    int fired = 0;
    Event a = [&fired] { ++fired; };
    Event b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(fired, 1);
    Event c;
    EXPECT_FALSE(static_cast<bool>(c));
    c = std::move(b);
    c();
    EXPECT_EQ(fired, 2);
}

TEST(PacketPool, ReusesReleasedSlots)
{
    PacketPool pool(4);
    Packet *a = pool.acquire();
    a->id = 42;
    pool.release(a);
    Packet *b = pool.acquire();
    EXPECT_EQ(a, b);       // LIFO free list hands the hot slot back
    EXPECT_EQ(b->id, 0u);  // ...reset to a fresh Packet
    EXPECT_EQ(pool.live(), 1u);
    EXPECT_EQ(pool.highWater(), 1u);
    pool.release(b);
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.blocksAllocated(), 1u);
}

TEST(PacketPool, GrowsByBlocksUnderLoad)
{
    PacketPool pool(4);
    std::vector<Packet *> live;
    for (int i = 0; i < 9; ++i)
        live.push_back(pool.acquire());
    EXPECT_EQ(pool.blocksAllocated(), 3u);
    EXPECT_EQ(pool.capacity(), 12u);
    EXPECT_EQ(pool.highWater(), 9u);
    for (Packet *p : live)
        pool.release(p);
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.capacity(), 12u); // blocks stay for reuse
}

TEST(AllocationGuard, SteadyStateEventLoopIsAllocationFree)
{
    EventQueue q;
    // 64 interleaved self-scheduling chains, mimicking the port/vault
    // pipelines: warm one full wheel revolution so every bucket slot
    // and the drain vector reach their steady capacity...
    std::uint64_t executed = 0;
    struct Chain
    {
        EventQueue *q;
        std::uint64_t *executed;
        Tick period;

        void
        operator()() const
        {
            ++*executed;
            q->scheduleIn(period, *this);
        }
    };
    for (int i = 0; i < 64; ++i)
        q.schedule(static_cast<Tick>(i),
                   Chain{&q, &executed, Tick{97} + Tick(i % 7)});
    q.runUntil(2 * wheelHorizon);
    const std::uint64_t warmed = executed;
    ASSERT_GT(warmed, 100000u);

    // ...then the measured region must not allocate at all: no heap
    // traffic per schedule or per fire (the acceptance criterion of
    // docs/performance.md).
    const std::size_t before = g_allocations;
    q.runUntil(4 * wheelHorizon);
    const std::size_t during = g_allocations - before;
    EXPECT_GE(executed, 2 * warmed - 64);
    EXPECT_EQ(during, 0u);
}

TEST(AllocationGuard, PoolAcquireReleaseCycleIsAllocationFree)
{
    PacketPool pool(256);
    // Warm: force the first block(s) into existence at a realistic
    // in-flight depth.
    std::vector<Packet *> live;
    live.reserve(128);
    for (int i = 0; i < 128; ++i)
        live.push_back(pool.acquire());
    for (Packet *p : live)
        pool.release(p);

    const std::size_t before = g_allocations;
    for (int round = 0; round < 1000; ++round) {
        live.clear();
        for (int i = 0; i < 128; ++i)
            live.push_back(pool.acquire());
        for (Packet *p : live)
            pool.release(p);
    }
    EXPECT_EQ(g_allocations - before, 0u);
    EXPECT_EQ(pool.blocksAllocated(), 1u);
}

} // namespace
} // namespace hmcsim
