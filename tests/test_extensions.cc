/**
 * @file
 * Tests for the extension features: temperature-dependent refresh,
 * atomic commands, link error injection + retry, alternative mapping
 * schemes, and multi-link configurations.
 */

#include <gtest/gtest.h>

#include <set>

#include "gups/patterns.hh"
#include "host/experiment.hh"

namespace hmcsim
{
namespace
{

// ---- Refresh engine ----------------------------------------------------

TEST(Refresh, DisabledByDefault)
{
    VaultConfig cfg;
    VaultController vault(cfg);
    EXPECT_EQ(vault.refreshInterval(), 0u);
    Packet pkt;
    pkt.cmd = Command::Read;
    pkt.payload = 128;
    pkt.bank = 0;
    vault.service(pkt, 10 * tickMs);
    EXPECT_EQ(vault.stats().refreshes, 0u);
}

TEST(Refresh, FiresOncePerIntervalPerBank)
{
    VaultConfig cfg;
    cfg.refreshEnabled = true;
    VaultController vault(cfg);
    const Tick interval = vault.refreshInterval();
    EXPECT_EQ(interval, cfg.timings.tRefi);
    // Touch bank 0 after 10 intervals: 10 catch-up refreshes.
    Packet pkt;
    pkt.cmd = Command::Read;
    pkt.payload = 128;
    pkt.bank = 0;
    vault.service(pkt, interval * 10);
    EXPECT_GE(vault.stats().refreshes, 9u);
    EXPECT_LE(vault.stats().refreshes, 11u);
}

TEST(Refresh, MultiplierShortensInterval)
{
    VaultConfig cfg;
    cfg.refreshEnabled = true;
    cfg.refreshMultiplier = 2.0;
    VaultController vault(cfg);
    EXPECT_EQ(vault.refreshInterval(), cfg.timings.tRefi / 2);
}

TEST(Refresh, HotDeviceDoublesRate)
{
    HmcDeviceConfig cfg;
    HmcDevice device(cfg);
    device.applyTemperature(90.0);
    EXPECT_EQ(device.vault(0).refreshInterval(),
              cfg.vault.timings.tRefi / 2);
    device.applyTemperature(60.0);
    EXPECT_EQ(device.vault(0).refreshInterval(),
              cfg.vault.timings.tRefi);
}

TEST(Refresh, CostsBandwidthOnABankBoundPattern)
{
    const AddressMapper mapper(HmcConfig::gen2_4GB(),
                               MaxBlockSize::B128);
    ExperimentConfig cfg;
    cfg.pattern = bankPattern(mapper, 1);
    cfg.measure = 300 * tickUs;
    const double off = runExperiment(cfg).rawGBps;
    cfg.device.vault.refreshEnabled = true;
    cfg.device.vault.refreshMultiplier = 4.0;
    const double hot = runExperiment(cfg).rawGBps;
    EXPECT_LT(hot, off * 0.97);
    EXPECT_GT(hot, off * 0.80);
}

// ---- Atomics -------------------------------------------------------------

TEST(Atomics, PacketSizes)
{
    // 2-flit request (command + 16 B immediate), 1-flit response.
    EXPECT_EQ(requestFlits(Command::Atomic, 16), 2u);
    EXPECT_EQ(responseFlits(Command::Atomic, 16), 1u);
    EXPECT_EQ(transactionBytes(Command::Atomic, 16), 48u);
}

TEST(Atomics, VaultTreatsThemAsWritesPlusAluTime)
{
    VaultConfig cfg;
    VaultController rd(cfg), at(cfg);
    Packet r;
    r.cmd = Command::Read;
    r.payload = 16;
    Packet a;
    a.cmd = Command::Atomic;
    a.payload = 16;
    EXPECT_GT(at.service(a, 0), rd.service(r, 0));
    EXPECT_EQ(at.stats().atomics, 1u);
}

TEST(Atomics, MixRunsEndToEnd)
{
    ExperimentConfig cfg;
    cfg.mix = RequestMix::Atomic;
    cfg.measure = 300 * tickUs;
    const MeasurementResult m = runExperiment(cfg);
    EXPECT_GT(m.mrps, 100.0); // small packets: high update rate
    // Each atomic moves 48 raw bytes.
    EXPECT_NEAR(m.rawGBps * 1000.0 / m.mrps, 48.0, 1.0);
}

TEST(Atomics, HigherUpdateRateThanHostRmw)
{
    ExperimentConfig atomic_cfg;
    atomic_cfg.mix = RequestMix::Atomic;
    atomic_cfg.measure = 300 * tickUs;
    ExperimentConfig rmw_cfg;
    rmw_cfg.mix = RequestMix::ReadModifyWrite;
    rmw_cfg.requestSize = 16;
    rmw_cfg.measure = 300 * tickUs;
    const double atomic_rate = runExperiment(atomic_cfg).readMrps;
    const double rmw_rate = runExperiment(rmw_cfg).writeMrps;
    EXPECT_GT(atomic_rate, rmw_rate * 1.3);
}

TEST(Atomics, CountAgainstWriteThermalBound)
{
    EXPECT_DOUBLE_EQ(ThermalModel::temperatureLimit(RequestMix::Atomic),
                     writeTemperatureLimitC);
}

// ---- Link errors + retry ---------------------------------------------------

TEST(LinkErrors, CleanLinkNeverRetries)
{
    LinkConfig cfg;
    LinkDirection dir(cfg, 0, 42);
    for (int i = 0; i < 1000; ++i)
        dir.transmit(0, 160);
    EXPECT_EQ(dir.retries(), 0u);
}

TEST(LinkErrors, HighBerRetriesAndDelays)
{
    LinkConfig clean;
    LinkConfig noisy = clean;
    noisy.bitErrorRate = 1e-4; // ~12 % packet error at 160 B
    LinkDirection a(clean, 0, 7), b(noisy, 0, 7);
    Tick clean_done = 0, noisy_done = 0;
    for (int i = 0; i < 5000; ++i) {
        clean_done = a.transmit(0, 160);
        noisy_done = b.transmit(0, 160);
    }
    EXPECT_GT(b.retries(), 100u);
    EXPECT_GT(noisy_done, clean_done);
}

TEST(LinkErrors, RetryProbabilityMatchesBer)
{
    LinkConfig cfg;
    cfg.bitErrorRate = 1e-4;
    LinkDirection dir(cfg, 0, 11);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        dir.transmit(0, 160);
    // p_err = 1 - (1 - 1e-4)^(168*8) ~= 12.6 %.
    const double observed =
        static_cast<double>(dir.retries()) / n;
    EXPECT_NEAR(observed, 0.126, 0.02);
}

TEST(LinkErrors, EndToEndBandwidthDegradesGracefully)
{
    Ac510Config clean_sys;
    Ac510Config noisy_sys;
    noisy_sys.controller.bitErrorRate = 5e-6;
    Ac510Module clean(clean_sys), noisy(noisy_sys);
    clean.start();
    noisy.start();
    clean.runUntil(400 * tickUs);
    noisy.runUntil(400 * tickUs);
    const auto c = clean.aggregateStats();
    const auto n = noisy.aggregateStats();
    EXPECT_GT(noisy.controller().linkRetries(), 0u);
    EXPECT_LT(n.rawBytes, c.rawBytes);
    EXPECT_GT(n.rawBytes, c.rawBytes / 2); // graceful, not collapse
    // No losses: every issued read completes after draining.
    noisy.stop();
    noisy.runToCompletion();
    const auto drained = noisy.aggregateStats();
    EXPECT_EQ(drained.readsIssued, drained.readsCompleted);
}

// ---- Mapping schemes -------------------------------------------------------

TEST(MappingSchemes, BankFirstSwapsFields)
{
    const HmcConfig cfg = HmcConfig::gen2_4GB();
    const AddressMapper m(cfg, MaxBlockSize::B128, 256,
                          MappingScheme::BankFirst);
    EXPECT_EQ(m.bankShift(), 7u);
    EXPECT_EQ(m.vaultShift(), 11u);
    // Sequential 128 B blocks now spread across banks first.
    std::set<unsigned> banks;
    for (Addr block = 0; block < 16; ++block) {
        const DecodedAddress d = m.decode(block * 128);
        banks.insert(d.bank);
        EXPECT_EQ(d.vault, 0u);
    }
    EXPECT_EQ(banks.size(), 16u);
}

TEST(MappingSchemes, ContiguousVaultUsesTopBits)
{
    const HmcConfig cfg = HmcConfig::gen2_4GB();
    const AddressMapper m(cfg, MaxBlockSize::B128, 256,
                          MappingScheme::ContiguousVault);
    EXPECT_EQ(m.vaultShift(), 28u);
    // A 256 MB array sits entirely in vault 0.
    EXPECT_EQ(m.decode(0).vault, 0u);
    EXPECT_EQ(m.decode(256 * mib - 128).vault, 0u);
    EXPECT_EQ(m.decode(256 * mib).vault, 1u);
}

TEST(MappingSchemes, ContiguousVaultRowsAreContiguous)
{
    const HmcConfig cfg = HmcConfig::gen2_4GB();
    const AddressMapper m(cfg, MaxBlockSize::B128, 256,
                          MappingScheme::ContiguousVault);
    const DecodedAddress a = m.decode(0);
    const DecodedAddress b = m.decode(255);
    const DecodedAddress c = m.decode(256);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(c.row, a.row + 1);
}

TEST(MappingSchemes, AllSchemesCoverAllBanksUniformly)
{
    const HmcConfig cfg = HmcConfig::gen2_4GB();
    for (MappingScheme scheme :
         {MappingScheme::VaultFirst, MappingScheme::BankFirst,
          MappingScheme::ContiguousVault}) {
        const AddressMapper m(cfg, MaxBlockSize::B128, 256, scheme);
        Xoshiro256StarStar rng(3);
        std::set<std::pair<unsigned, unsigned>> seen;
        for (int i = 0; i < 60000; ++i) {
            const DecodedAddress d =
                m.decode(rng.nextBounded(cfg.capacity));
            seen.emplace(d.vault, d.bank);
        }
        EXPECT_EQ(seen.size(), 256u) << mappingSchemeName(scheme);
    }
}

// ---- Controller flow control ------------------------------------------------

TEST(FlowControl, TokenStarvedThroughputIsTokensOverRtt)
{
    ExperimentConfig cfg;
    cfg.controller.inputBufferFlits = 16; // per link -> 32 reads max
    cfg.measure = 300 * tickUs;
    const MeasurementResult m = runExperiment(cfg);
    // Only 2 links x 16 tokens = 32 one-flit reads live past the stop
    // signal; the other tagged requests wait parked, so the measured
    // latency balloons while throughput collapses to roughly
    // 32 / (in-cube round trip ~0.7 us) ~ 45 MRPS.
    EXPECT_LT(m.mrps, 60.0);
    EXPECT_GT(m.mrps, 30.0);
    EXPECT_LT(m.rawGBps, 10.0); // far below the unthrottled 20 GB/s
    // Little's law over the whole pipe (576 tags incl. parked time)
    // still holds exactly.
    const double expected_mrps =
        576.0 / (m.readLatencyNs.mean() / 1000.0);
    EXPECT_NEAR(m.mrps, expected_mrps, expected_mrps * 0.10);
}

TEST(FlowControl, WritesStallHarderThanReads)
{
    ExperimentConfig ro;
    ro.controller.inputBufferFlits = 16;
    ro.measure = 300 * tickUs;
    ExperimentConfig wo = ro;
    wo.mix = RequestMix::WriteOnly;
    // A write request needs 9 tokens, a read 1: reads keep ~9x the
    // requests in flight.
    EXPECT_GT(runExperiment(ro).rawGBps,
              runExperiment(wo).rawGBps * 3.0);
}

TEST(FlowControl, UnlimitedBufferNeverStalls)
{
    Ac510Config sys;
    Ac510Module module(sys);
    module.start();
    module.runUntil(300 * tickUs);
    EXPECT_EQ(module.controller().stats().flowControlStalls, 0u);
}

TEST(FlowControl, StallsCountedAndDrainCompletely)
{
    Ac510Config sys;
    sys.controller.inputBufferFlits = 8;
    Ac510Module module(sys);
    module.start();
    module.runUntil(300 * tickUs);
    EXPECT_GT(module.controller().stats().flowControlStalls, 0u);
    module.stop();
    module.runToCompletion();
    const GupsPortStats agg = module.aggregateStats();
    EXPECT_EQ(agg.readsIssued, agg.readsCompleted);
    EXPECT_TRUE(module.allPortsIdle());
}

// ---- Multi-link -------------------------------------------------------------

TEST(MultiLink, FourLinksDoubleReadBandwidth)
{
    ExperimentConfig two;
    two.measure = 300 * tickUs;
    ExperimentConfig four = two;
    four.controller.numLinks = 4;
    const double bw2 = runExperiment(two).rawGBps;
    const double bw4 = runExperiment(four).rawGBps;
    EXPECT_NEAR(bw4 / bw2, 2.0, 0.15);
}

TEST(MultiLink, PortsSpreadAcrossLinks)
{
    GupsPortConfig cfg;
    cfg.numLinks = 4;
    EventQueue queue;
    std::set<unsigned> links;
    for (unsigned id = 0; id < 8; ++id) {
        GupsPort port(
            id, cfg, 4 * gib, queue,
            [&links](Packet &&pkt) { links.insert(pkt.link); }, 1);
        port.start();
        queue.runUntil(queue.now() + 10 * tickUs);
        port.stop();
    }
    EXPECT_EQ(links.size(), 4u);
}

} // namespace
} // namespace hmcsim
