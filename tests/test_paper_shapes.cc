/**
 * @file
 * Regression locks on the paper-shape headlines.
 *
 * EXPERIMENTS.md records, per figure, the headline quantities our
 * calibrated model produces and how they compare to the paper. This
 * suite pins each of those headlines with a tolerance, so a future
 * model change that silently drifts the reproduction fails loudly
 * here rather than in a bench nobody re-reads. Tolerances are
 * deliberately tight around the recorded values, not around the
 * paper's (EXPERIMENTS.md documents the paper-vs-ours gaps).
 */

#include <gtest/gtest.h>

#include "analysis/regression.hh"
#include "gups/patterns.hh"
#include "host/experiment.hh"

namespace hmcsim
{
namespace
{

const AddressMapper &
mapper()
{
    static const AddressMapper m(HmcConfig::gen2_4GB(),
                                 MaxBlockSize::B128);
    return m;
}

MeasurementResult
run(const AccessPattern &p, RequestMix mix, Bytes size,
    AddressingMode mode = AddressingMode::Random)
{
    ExperimentConfig cfg;
    cfg.pattern = p;
    cfg.mix = mix;
    cfg.requestSize = size;
    cfg.mode = mode;
    return runExperiment(cfg);
}

// ---- Fig. 6/7 bandwidth headlines -----------------------------------------

TEST(PaperShapes, Fig7DistributedBandwidths)
{
    const AccessPattern p = vaultPattern(mapper(), 16);
    EXPECT_NEAR(run(p, RequestMix::ReadOnly, 128).rawGBps, 20.0, 0.6);
    EXPECT_NEAR(run(p, RequestMix::ReadModifyWrite, 128).rawGBps, 27.3,
                0.8);
    EXPECT_NEAR(run(p, RequestMix::WriteOnly, 128).rawGBps, 15.8, 0.6);
}

TEST(PaperShapes, Fig7VaultCapAndSingleBank)
{
    EXPECT_NEAR(
        run(vaultPattern(mapper(), 1), RequestMix::ReadOnly, 128).rawGBps,
        10.0, 0.3);
    EXPECT_NEAR(
        run(bankPattern(mapper(), 1), RequestMix::ReadOnly, 128).rawGBps,
        3.1, 0.2);
}

TEST(PaperShapes, Fig6SingleVaultDrop)
{
    // The mask 2-9 -> 3-10 drop: 2 vaults at ~20, 1 vault at ~10.
    const auto sweep = fig6MaskSweep(mapper());
    EXPECT_NEAR(run(sweep[4], RequestMix::ReadOnly, 128).rawGBps, 20.0,
                0.6); // 2-9
    EXPECT_NEAR(run(sweep[3], RequestMix::ReadOnly, 128).rawGBps, 10.0,
                0.3); // 3-10
}

// ---- Fig. 8 ------------------------------------------------------------------

TEST(PaperShapes, Fig8MrpsScaling)
{
    const AccessPattern p = vaultPattern(mapper(), 16);
    const double m128 = run(p, RequestMix::ReadOnly, 128).mrps;
    const double m32 = run(p, RequestMix::ReadOnly, 32).mrps;
    EXPECT_NEAR(m128, 125.0, 4.0);
    EXPECT_NEAR(m32 / m128, 2.33, 0.1);
}

// ---- Fig. 9/10/11 thermal + power headlines -----------------------------------

TEST(PaperShapes, Fig9FailureSetLock)
{
    const PowerModel power;
    const AccessPattern p = vaultPattern(mapper(), 16);
    const TrafficSummary ro =
        run(p, RequestMix::ReadOnly, 128).traffic();
    const TrafficSummary wo =
        run(p, RequestMix::WriteOnly, 128).traffic();
    const TrafficSummary rw =
        run(p, RequestMix::ReadModifyWrite, 128).traffic();
    // ro: survives all; peak 77-78 C in Cfg4.
    const PowerThermalResult ro4 =
        power.solve(ro, RequestMix::ReadOnly, coolingConfig(4));
    EXPECT_FALSE(ro4.failure);
    EXPECT_NEAR(ro4.temperatureC, 77.4, 1.0);
    // wo: fails Cfg3 (at ~76 C), survives Cfg2.
    const PowerThermalResult wo3 =
        power.solve(wo, RequestMix::WriteOnly, coolingConfig(3));
    EXPECT_TRUE(wo3.failure);
    EXPECT_NEAR(wo3.temperatureC, 76.0, 1.0);
    EXPECT_FALSE(
        power.solve(wo, RequestMix::WriteOnly, coolingConfig(2)).failure);
    // rw: survives Cfg3 (74-74.5 C), fails Cfg4.
    const PowerThermalResult rw3 =
        power.solve(rw, RequestMix::ReadModifyWrite, coolingConfig(3));
    EXPECT_FALSE(rw3.failure);
    EXPECT_NEAR(rw3.temperatureC, 74.2, 0.8);
    EXPECT_TRUE(power.solve(rw, RequestMix::ReadModifyWrite,
                            coolingConfig(4))
                    .failure);
}

TEST(PaperShapes, Fig11RegressionSlopes)
{
    const PowerModel power;
    std::vector<double> bw, temps, watts;
    for (const AccessPattern &p : paperPatternAxis(mapper())) {
        const MeasurementResult m = run(p, RequestMix::ReadOnly, 128);
        const PowerThermalResult pt = power.solve(
            m.traffic(), RequestMix::ReadOnly, coolingConfig(2));
        bw.push_back(m.rawGBps);
        temps.push_back(pt.temperatureC);
        watts.push_back(pt.systemW);
    }
    const LinearFit t = linearFit(bw, temps);
    const LinearFit p = linearFit(bw, watts);
    // Paper: ~3 C and ~2 W over 5->20 GB/s for read-only in Cfg2.
    EXPECT_NEAR(15.0 * t.slope, 3.0, 0.5);
    EXPECT_NEAR(15.0 * p.slope, 1.9, 0.4);
}

// ---- Fig. 14/15/16 latency headlines -------------------------------------------

TEST(PaperShapes, Fig14InfrastructureLatency)
{
    Ac510Config sys;
    Ac510Module module(sys);
    const double infra = module.controller().infrastructureLatencyNs(
        requestBytes(Command::Read, 128),
        responseBytes(Command::Read, 128));
    EXPECT_NEAR(infra, 531.0, 10.0); // paper ~547
}

TEST(PaperShapes, Fig15MinimumRoundTrips)
{
    StreamExperimentConfig one;
    one.requestsPerStream = 1;
    one.repetitions = 32;
    one.requestSize = 128;
    const double min128 = runStreamExperiment(one).min();
    one.requestSize = 16;
    const double min16 = runStreamExperiment(one).min();
    EXPECT_NEAR(min128, 646.0, 15.0); // paper 711
    EXPECT_NEAR(min128 - min16, 55.0, 8.0); // paper ~56
}

TEST(PaperShapes, Fig16LatencyEndpoints)
{
    const double fast =
        run(vaultPattern(mapper(), 16), RequestMix::ReadOnly, 32)
            .readLatencyNs.mean();
    const double slow =
        run(bankPattern(mapper(), 1), RequestMix::ReadOnly, 128)
            .readLatencyNs.mean();
    EXPECT_NEAR(fast, 1975.0, 60.0);  // paper 1,966 ns
    EXPECT_NEAR(slow, 29840.0, 900.0); // paper 24,233 ns
}

// ---- Fig. 18 saturation points ----------------------------------------------

TEST(PaperShapes, Fig18SaturationBandwidths)
{
    EXPECT_NEAR(
        run(vaultPattern(mapper(), 1), RequestMix::ReadOnly, 128).rawGBps,
        10.0, 0.3); // paper ~10
    EXPECT_NEAR(
        run(vaultPattern(mapper(), 2), RequestMix::ReadOnly, 128).rawGBps,
        20.0, 0.7); // paper ~19
}

// ---- Fig. 13 closed-page equivalence -------------------------------------------

TEST(PaperShapes, Fig13LinearRandomEquivalence)
{
    const AccessPattern p = vaultPattern(mapper(), 16);
    const double lin =
        run(p, RequestMix::ReadOnly, 128, AddressingMode::Linear).rawGBps;
    const double rnd =
        run(p, RequestMix::ReadOnly, 128, AddressingMode::Random).rawGBps;
    EXPECT_NEAR(lin / rnd, 1.0, 0.02);
}

} // namespace
} // namespace hmcsim
