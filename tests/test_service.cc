/**
 * @file
 * Tests for the fleet traffic service (src/service/, docs/service.md):
 *
 *  - arrival streams are pure functions of (config, seed): identical
 *    draws on re-generation, decorrelated under seed or config
 *    changes, non-decreasing always;
 *  - Poisson and MMPP empirical rates match the configured rates
 *    within statistical tolerance, and MMPP at equal rates degenerates
 *    to Poisson exactly;
 *  - the diurnal trace text form round-trips bit-identically
 *    (format -> parse -> format);
 *  - routing is a pure function (shard stability): a key's node never
 *    depends on fleet traffic around it;
 *  - the shared nearest-rank quantile helper is bit-identical to the
 *    loop Histogram::quantile used before the extraction, and
 *    TickQuantiles answers are merge-order independent;
 *  - a 4-node fleet run is byte-identical at --jobs 1 and --jobs 8:
 *    same per-node digests, same aggregate digest, same JSONL bytes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "service/arrival.hh"
#include "service/fleet.hh"
#include "service/service_stats.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

using namespace hmcsim;

namespace
{

std::vector<Tick>
drawStream(const ArrivalConfig &cfg, std::uint64_t seed, std::size_t n)
{
    const std::unique_ptr<ArrivalModel> model =
        makeArrivalModel(cfg, deriveStreamSeed(seed, cfg));
    std::vector<Tick> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(model->next());
    return out;
}

/** Empirical mean arrival rate of a stream, in arrivals/second. */
double
empiricalRate(const std::vector<Tick> &stream)
{
    EXPECT_GE(stream.size(), 2u);
    const Tick span = stream.back() - stream.front();
    EXPECT_GT(span, 0u);
    return static_cast<double>(stream.size() - 1) /
           ticksToSeconds(span);
}

} // namespace

// ---------------------------------------------------------------------
// Arrival streams: determinism and statistics.
// ---------------------------------------------------------------------

TEST(Arrival, StreamIsDeterministicPerSeed)
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 1e6;
    const std::vector<Tick> a = drawStream(cfg, 42, 5000);
    const std::vector<Tick> b = drawStream(cfg, 42, 5000);
    EXPECT_EQ(a, b);

    const std::vector<Tick> c = drawStream(cfg, 43, 5000);
    EXPECT_NE(a, c);
}

TEST(Arrival, StreamSeedIsContentAddressed)
{
    ArrivalConfig poisson;
    ArrivalConfig faster = poisson;
    faster.ratePerSec *= 2.0;
    // Same campaign seed, different config -> different stream seed.
    EXPECT_NE(deriveStreamSeed(7, poisson), deriveStreamSeed(7, faster));
    // And the derived seed is never the degenerate 0.
    EXPECT_NE(deriveStreamSeed(7, poisson), 0u);

    ArrivalConfig mmpp = poisson;
    mmpp.kind = ArrivalKind::Mmpp;
    EXPECT_NE(arrivalConfigDigest(poisson), arrivalConfigDigest(mmpp));
}

TEST(Arrival, ArrivalsAreNonDecreasing)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Mmpp, ArrivalKind::Diurnal}) {
        ArrivalConfig cfg;
        cfg.kind = kind;
        cfg.ratePerSec = 5e6;
        cfg.trace = {{100 * tickUs, 1.0}, {50 * tickUs, 0.25}};
        const std::vector<Tick> stream = drawStream(cfg, 1, 20000);
        for (std::size_t i = 1; i < stream.size(); ++i)
            ASSERT_GE(stream[i], stream[i - 1]) << "at index " << i;
    }
}

TEST(Arrival, PoissonEmpiricalRateMatchesConfig)
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 2e6;
    const std::vector<Tick> stream = drawStream(cfg, 11, 100000);
    // Relative error of the mean gap over n exponential draws is
    // ~1/sqrt(n) = 0.3%; 2% absorbs the tick rounding as well.
    EXPECT_NEAR(empiricalRate(stream) / cfg.ratePerSec, 1.0, 0.02);
}

TEST(Arrival, MmppEmpiricalRateMatchesTimeWeightedMean)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Mmpp;
    cfg.ratePerSec = 1e6;
    cfg.burstRatePerSec = 8e6;
    cfg.meanCalmTicks = 50 * tickUs;
    cfg.meanBurstTicks = 10 * tickUs;
    const std::vector<Tick> stream = drawStream(cfg, 3, 200000);
    // Long-run mean rate = time-weighted average of the two states.
    const double calm = ticksToSeconds(cfg.meanCalmTicks);
    const double burst = ticksToSeconds(cfg.meanBurstTicks);
    const double expected =
        (cfg.ratePerSec * calm + cfg.burstRatePerSec * burst) /
        (calm + burst);
    // Dwell-time variance dominates; 200k arrivals span ~hundreds of
    // calm/burst cycles, so 10% is a comfortable 3-sigma bound.
    EXPECT_NEAR(empiricalRate(stream) / expected, 1.0, 0.10);
}

TEST(Arrival, MmppBurstsDetachTailFromPoisson)
{
    // The burst state must actually concentrate arrivals: the minimum
    // observed gap under MMPP at 8x burst rate is smaller than the
    // Poisson mean gap at the calm rate.
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Mmpp;
    cfg.ratePerSec = 1e6;
    cfg.burstRatePerSec = 8e6;
    const std::vector<Tick> stream = drawStream(cfg, 9, 50000);
    Tick minGap = maxTick;
    for (std::size_t i = 1; i < stream.size(); ++i)
        minGap = std::min(minGap, stream[i] - stream[i - 1]);
    const Tick calmMeanGap =
        static_cast<Tick>(static_cast<double>(tickS) / cfg.ratePerSec);
    EXPECT_LT(minGap, calmMeanGap / 4);
}

TEST(Arrival, DiurnalEmpiricalRateMatchesTraceAverage)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Diurnal;
    cfg.ratePerSec = 4e6;
    cfg.trace = {{100 * tickUs, 1.0}, {100 * tickUs, 0.5}};
    const std::vector<Tick> stream = drawStream(cfg, 5, 100000);
    const double expected = cfg.ratePerSec * 0.75;
    EXPECT_NEAR(empiricalRate(stream) / expected, 1.0, 0.05);
}

TEST(Arrival, DiurnalTraceTextRoundTripsBitIdentically)
{
    std::vector<DiurnalSegment> trace = {
        {100 * tickUs, 1.0},
        {50 * tickUs, 0.3333333333333333},
        {1, 7.25e-3},
    };
    const std::string text = formatDiurnalTrace(trace);
    std::vector<DiurnalSegment> parsed;
    ASSERT_TRUE(parseDiurnalTrace(text, parsed));
    ASSERT_EQ(parsed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(parsed[i].duration, trace[i].duration);
        // Bit-identity, not approximate equality: %a hexfloat.
        EXPECT_EQ(parsed[i].rateScale, trace[i].rateScale);
    }
    EXPECT_EQ(formatDiurnalTrace(parsed), text);
}

TEST(Arrival, DiurnalTraceParserRejectsMalformedInput)
{
    std::vector<DiurnalSegment> out;
    EXPECT_FALSE(parseDiurnalTrace("", out));
    EXPECT_FALSE(parseDiurnalTrace("100", out));
    EXPECT_FALSE(parseDiurnalTrace("0:1.0", out));
    EXPECT_FALSE(parseDiurnalTrace("100:-1.0", out));
    EXPECT_FALSE(parseDiurnalTrace("100:1.0junk", out));
    // Hand-written decimal scales are accepted.
    EXPECT_TRUE(parseDiurnalTrace("100:1.5,200:0.5", out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].duration, 100u);
    EXPECT_EQ(out[0].rateScale, 1.5);
}

TEST(Arrival, NegLogUnitMatchesLibmClosely)
{
    // negLogUnit exists for cross-platform bit-identity, but it must
    // still be an accurate -log: compare against libm over a sweep.
    EXPECT_EQ(negLogUnit(1.0), 0.0);
    double u = 1.0;
    for (int i = 0; i < 200; ++i) {
        u *= 0.93;
        const double got = negLogUnit(u);
        const double want = -std::log(u);
        EXPECT_NEAR(got, want, want * 1e-12 + 1e-12) << "u=" << u;
    }
}

// ---------------------------------------------------------------------
// Routing: pure-function shard stability.
// ---------------------------------------------------------------------

TEST(Router, KeyedRoutingIsShardStable)
{
    // A key's node is a pure function of (key, fleet size): no other
    // request, ordinal, or call history can move it.
    for (std::uint64_t key = 0; key < 512; ++key) {
        const unsigned first =
            routeRequest(RouterPolicy::Keyed, 8, 0.0, key, 0);
        const unsigned again =
            routeRequest(RouterPolicy::Keyed, 8, 0.0, key, 99999);
        EXPECT_EQ(first, again) << "key " << key;
        EXPECT_LT(first, 8u);
    }
}

TEST(Router, UniformRoutingCoversAllNodes)
{
    std::vector<std::uint64_t> counts(8, 0);
    for (std::uint64_t i = 0; i < 8000; ++i)
        ++counts[routeRequest(RouterPolicy::Uniform, 8, 0.0, 0, i)];
    for (unsigned n = 0; n < 8; ++n) {
        // Expected 1000 per node; 3-sigma of binomial(8000, 1/8) ~ 89.
        EXPECT_GT(counts[n], 700u) << "node " << n;
        EXPECT_LT(counts[n], 1300u) << "node " << n;
    }
}

TEST(Router, HotSpotPinsTheConfiguredFraction)
{
    std::uint64_t hot = 0;
    const std::uint64_t total = 20000;
    for (std::uint64_t i = 0; i < total; ++i)
        hot += routeRequest(RouterPolicy::HotSpot, 8, 0.5, 0, i) == 0;
    // Node 0 gets the pinned 50% plus 1/8 of the spread half ~ 56%.
    const double share =
        static_cast<double>(hot) / static_cast<double>(total);
    EXPECT_NEAR(share, 0.5 + 0.5 / 8.0, 0.03);
}

TEST(Router, SingleNodeFleetTakesEverything)
{
    for (const RouterPolicy policy :
         {RouterPolicy::Uniform, RouterPolicy::Keyed,
          RouterPolicy::HotSpot})
        EXPECT_EQ(routeRequest(policy, 1, 0.25, 123, 456), 0u);
}

// ---------------------------------------------------------------------
// Shared quantile helper: migration bit-identity.
// ---------------------------------------------------------------------

namespace
{

/** The pre-extraction Histogram::quantile, verbatim: walk bins until
 *  the cumulative count exceeds floor(p * total). */
double
legacyHistogramQuantile(const Histogram &h, double lo, double hi,
                        double p)
{
    if (h.totalSamples() == 0)
        return 0.0;
    const std::uint64_t target = static_cast<std::uint64_t>(
        p * static_cast<double>(h.totalSamples()));
    std::uint64_t seen = h.underflow();
    if (seen > target)
        return lo;
    for (std::size_t i = 0; i < h.numBins(); ++i) {
        seen += h.binCount(i);
        if (seen > target)
            return h.binCenter(i);
    }
    return hi;
}

} // namespace

TEST(Quantiles, HistogramQuantileMatchesLegacyLoopBitExactly)
{
    Histogram h(0.0, 1000.0, 64);
    std::uint64_t x = 0x243f6a8885a308d3ULL;
    for (int i = 0; i < 10000; ++i)
        h.sample(static_cast<double>(splitMix64(x) % 1100));
    for (const double p : {0.0, 0.01, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        const double got = h.quantile(p);
        const double want = legacyHistogramQuantile(h, 0.0, 1000.0, p);
        // Bit-exact: the extraction must not have changed a single
        // returned value.
        EXPECT_EQ(got, want) << "p=" << p;
    }
}

TEST(Quantiles, TickQuantilesNamesTheNearestRankSample)
{
    TickQuantiles q;
    // Samples 100, 200, ..., 1000 inserted out of order.
    for (const Tick t : {700, 100, 1000, 300, 900, 200, 500, 400, 800,
                         600})
        q.add(static_cast<Tick>(t));
    ASSERT_EQ(q.count(), 10u);
    // rank floor(0.5 * 10) = 5 -> sixth smallest = 600.
    EXPECT_EQ(q.quantileTicks(0.5), 600u);
    // rank floor(0.99 * 10) = 9 -> largest.
    EXPECT_EQ(q.quantileTicks(0.99), 1000u);
    EXPECT_EQ(q.maxTicks(), 1000u);
    // Ranks clamp to the largest sample.
    EXPECT_EQ(q.quantileTicks(1.0), 1000u);
    // Empty accumulator answers 0.
    EXPECT_EQ(TickQuantiles().quantileTicks(0.5), 0u);
}

TEST(Quantiles, DigestAndAnswersAreMergeOrderIndependent)
{
    std::uint64_t x = 0x13198a2e03707344ULL;
    TickQuantiles whole, partA, partB;
    for (int i = 0; i < 5000; ++i) {
        const Tick t = splitMix64(x) % 1000000;
        whole.add(t);
        (i % 3 ? partA : partB).add(t);
    }
    TickQuantiles mergedAB = partA;
    mergedAB.merge(partB);
    TickQuantiles mergedBA = partB;
    mergedBA.merge(partA);
    EXPECT_EQ(mergedAB.digest(), whole.digest());
    EXPECT_EQ(mergedBA.digest(), whole.digest());
    EXPECT_EQ(mergedAB.quantileTicks(0.999), whole.quantileTicks(0.999));
    EXPECT_EQ(mergedBA.quantileTicks(0.999), whole.quantileTicks(0.999));
}

TEST(Quantiles, ServiceStatsMergeIsOrderIndependent)
{
    ServiceStats a, b;
    a.record(100, 600);
    a.record(200, 900);
    b.record(50, 1000);
    ServiceStats ab = a;
    ab.merge(b);
    ServiceStats ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.digest(), ba.digest());
    EXPECT_EQ(ab.requests, 3u);
    EXPECT_EQ(ab.firstArrival, 50u);
    EXPECT_EQ(ab.lastCompletion, 1000u);
    EXPECT_EQ(ab.sumSojournTicks, 500u + 700u + 950u);
}

// ---------------------------------------------------------------------
// Fleet determinism: --jobs 1 vs --jobs 8 byte identity.
// ---------------------------------------------------------------------

namespace
{

FleetConfig
smallFleetConfig()
{
    FleetConfig cfg;
    cfg.numNodes = 4;
    cfg.requests = 4000;
    cfg.arrival.kind = ArrivalKind::Mmpp;
    cfg.arrival.ratePerSec = 1e6;
    cfg.arrival.burstRatePerSec = 4e6;
    cfg.router = RouterPolicy::Keyed;
    cfg.seed = 12345;
    return cfg;
}

} // namespace

TEST(Fleet, JobsOneAndJobsEightAreByteIdentical)
{
    FleetConfig serial = smallFleetConfig();
    serial.jobs = 1;
    FleetConfig parallel = smallFleetConfig();
    parallel.jobs = 8;

    const FleetResult a = runFleet(serial);
    const FleetResult b = runFleet(parallel);

    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
        EXPECT_EQ(a.nodes[n].digest(), b.nodes[n].digest())
            << "node " << n;
        // The streamed JSONL bytes, not just the digests.
        EXPECT_EQ(serviceNodeJsonl(static_cast<unsigned>(n), a.nodes[n]),
                  serviceNodeJsonl(static_cast<unsigned>(n), b.nodes[n]));
    }
    EXPECT_EQ(a.aggregate.digest(), b.aggregate.digest());
    EXPECT_EQ(serviceAggregateJsonl(4, a.aggregate),
              serviceAggregateJsonl(4, b.aggregate));
    // The fleet actually served the whole stream.
    EXPECT_EQ(a.aggregate.requests, serial.requests);
    EXPECT_GT(a.aggregate.throughputMrps(), 0.0);
    EXPECT_GT(a.aggregate.sojournP999Ns(),
              a.aggregate.sojournP50Ns() * 0.999);
}

TEST(Fleet, NodeSeedsAreContentAddressedAndDistinct)
{
    const FleetConfig cfg = smallFleetConfig();
    for (unsigned n = 0; n < 4; ++n) {
        EXPECT_NE(fleetNodeSeed(cfg, n), 0u);
        for (unsigned m = n + 1; m < 4; ++m)
            EXPECT_NE(fleetNodeSeed(cfg, n), fleetNodeSeed(cfg, m));
    }
    FleetConfig other = cfg;
    other.arrival.ratePerSec *= 2.0;
    EXPECT_NE(fleetNodeSeed(cfg, 0), fleetNodeSeed(other, 0));
}

TEST(Fleet, GeneratedStreamRespectsRouterAndArrivalOrder)
{
    FleetConfig cfg = smallFleetConfig();
    cfg.requests = 2000;
    const std::vector<FleetRequest> stream = generateFleetRequests(cfg);
    ASSERT_EQ(stream.size(), cfg.requests);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        if (i) {
            EXPECT_GE(stream[i].arrival, stream[i - 1].arrival);
        }
        EXPECT_LT(stream[i].node, cfg.numNodes);
        EXPECT_LT(stream[i].key, cfg.numKeys);
        // Routing re-derives to the same node: shard stability.
        EXPECT_EQ(stream[i].node,
                  routeRequest(cfg.router, cfg.numNodes, cfg.hotFraction,
                               stream[i].key, i));
    }
}
