/**
 * @file
 * Unit tests for the thermal model: Table III anchoring, steady-state
 * fixed point, leakage coupling, transient convergence, and the
 * failure bounds of Sec. IV-C.
 */

#include <gtest/gtest.h>

#include "thermal/cooling.hh"
#include "thermal/thermal_model.hh"

namespace hmcsim
{
namespace
{

TEST(Cooling, TableIIIValues)
{
    const auto &cfgs = coolingConfigs();
    ASSERT_EQ(cfgs.size(), 4u);
    EXPECT_EQ(cfgs[0].name, "Cfg1");
    EXPECT_DOUBLE_EQ(cfgs[0].idleTemperatureC, 43.1);
    EXPECT_DOUBLE_EQ(cfgs[1].idleTemperatureC, 51.7);
    EXPECT_DOUBLE_EQ(cfgs[2].idleTemperatureC, 62.3);
    EXPECT_DOUBLE_EQ(cfgs[3].idleTemperatureC, 71.6);
    EXPECT_DOUBLE_EQ(cfgs[0].coolingPowerW, 19.32);
    EXPECT_DOUBLE_EQ(cfgs[3].coolingPowerW, 10.78);
    EXPECT_DOUBLE_EQ(cfgs[0].fanVoltage, 12.0);
    EXPECT_DOUBLE_EQ(cfgs[3].fanDistanceCm, 135.0);
}

TEST(Cooling, WeakerCoolingMeansHigherResistanceAndIdleTemp)
{
    const auto &cfgs = coolingConfigs();
    for (std::size_t i = 1; i < cfgs.size(); ++i) {
        EXPECT_GT(cfgs[i].thermalResistance,
                  cfgs[i - 1].thermalResistance);
        EXPECT_GT(cfgs[i].idleTemperatureC, cfgs[i - 1].idleTemperatureC);
        EXPECT_LT(cfgs[i].coolingPowerW, cfgs[i - 1].coolingPowerW);
    }
}

TEST(Cooling, OneBasedAccessor)
{
    EXPECT_EQ(coolingConfig(1).name, "Cfg1");
    EXPECT_EQ(coolingConfig(4).name, "Cfg4");
}

TEST(ThermalModel, IdleReproducesTableIII)
{
    for (const CoolingConfig &cfg : coolingConfigs()) {
        const ThermalModel model(cfg);
        const ThermalResult r =
            model.steadyState(0.0, RequestMix::ReadOnly);
        EXPECT_DOUBLE_EQ(r.temperatureC, cfg.idleTemperatureC)
            << cfg.name;
        EXPECT_DOUBLE_EQ(r.leakagePowerW, 0.0);
        EXPECT_FALSE(r.failure);
    }
}

TEST(ThermalModel, TemperatureMonotonicInPower)
{
    const ThermalModel model(coolingConfig(2));
    double prev = 0.0;
    for (double p = 0.0; p <= 10.0; p += 1.0) {
        const double t =
            model.steadyState(p, RequestMix::ReadOnly).temperatureC;
        EXPECT_GT(t, prev - 1e-9);
        prev = t;
    }
}

TEST(ThermalModel, LeakageAmplifiesBeyondRTimesP)
{
    // With positive leakage feedback, dT > R * P.
    const CoolingConfig &cfg = coolingConfig(3);
    const ThermalModel model(cfg);
    const double p = 5.0;
    const double t =
        model.steadyState(p, RequestMix::ReadOnly).temperatureC;
    EXPECT_GT(t - cfg.idleTemperatureC, cfg.thermalResistance * p);
}

TEST(ThermalModel, SteadyStateIsSelfConsistent)
{
    // T must satisfy T = T_idle + R (P + leak(T)) exactly.
    const CoolingConfig &cfg = coolingConfig(4);
    const ThermalModel model(cfg);
    const double p = 6.0;
    const ThermalResult r = model.steadyState(p, RequestMix::WriteOnly);
    const double reconstructed =
        cfg.idleTemperatureC +
        cfg.thermalResistance * (p + model.leakagePower(r.temperatureC));
    EXPECT_NEAR(r.temperatureC, reconstructed, 1e-9);
}

TEST(ThermalModel, FailureBoundsDependOnMix)
{
    EXPECT_DOUBLE_EQ(ThermalModel::temperatureLimit(RequestMix::ReadOnly),
                     85.0);
    EXPECT_DOUBLE_EQ(
        ThermalModel::temperatureLimit(RequestMix::WriteOnly), 75.0);
    EXPECT_DOUBLE_EQ(
        ThermalModel::temperatureLimit(RequestMix::ReadModifyWrite),
        75.0);
}

TEST(ThermalModel, WritesFailBeforeReadsAtTheSameTemperature)
{
    const ThermalModel model(coolingConfig(4));
    // Find a power that lands between the two bounds.
    const double p =
        (80.0 - coolingConfig(4).idleTemperatureC) /
        coolingConfig(4).thermalResistance;
    const ThermalResult rd = model.steadyState(p, RequestMix::ReadOnly);
    const ThermalResult wr = model.steadyState(p, RequestMix::WriteOnly);
    EXPECT_DOUBLE_EQ(rd.temperatureC, wr.temperatureC);
    EXPECT_FALSE(rd.failure);
    EXPECT_TRUE(wr.failure);
}

TEST(ThermalModel, TransientConvergesToSteadyState)
{
    const ThermalModel model(coolingConfig(2));
    const double p = 4.0;
    const double target =
        model.steadyState(p, RequestMix::ReadOnly).temperatureC;
    double t = coolingConfig(2).idleTemperatureC;
    // The paper runs 200 s and observes stability; so do we.
    for (int s = 0; s < 200; ++s)
        t = model.step(t, p, 1.0);
    EXPECT_NEAR(t, target, 0.05);
}

TEST(ThermalModel, TransientMonotonicApproachFromBothSides)
{
    const ThermalModel model(coolingConfig(1));
    const double p = 3.0;
    const double target =
        model.steadyState(p, RequestMix::ReadOnly).temperatureC;
    // From below.
    double low = coolingConfig(1).idleTemperatureC;
    double prev = low;
    for (int s = 0; s < 50; ++s) {
        low = model.step(low, p, 1.0);
        EXPECT_GE(low, prev - 1e-9);
        prev = low;
    }
    EXPECT_LE(low, target + 1e-6);
    // From above.
    double high = target + 20.0;
    prev = high;
    for (int s = 0; s < 50; ++s) {
        high = model.step(high, p, 1.0);
        EXPECT_LE(high, prev + 1e-9);
        prev = high;
    }
    EXPECT_GE(high, target - 1e-6);
}

TEST(ThermalModel, TimeConstantIsTensOfSeconds)
{
    // The paper waits 200 s for stability; our R*C should be in the
    // tens of seconds so that 200 s is comfortably settled.
    for (const CoolingConfig &cfg : coolingConfigs()) {
        const double tau = cfg.thermalResistance * ThermalParams{}.capacitance;
        EXPECT_GT(tau, 10.0);
        EXPECT_LT(tau, 200.0);
    }
}

TEST(ThermalModel, HeatsinkOffsetConstantIsInPaperRange)
{
    // Sec. III-A: heatsink surface is 5-10 C below the junction.
    EXPECT_GE(heatsinkToJunctionOffsetC, 5.0);
    EXPECT_LE(heatsinkToJunctionOffsetC, 10.0);
}

} // namespace
} // namespace hmcsim
