/**
 * @file
 * Unit tests for the DRAM substrate: timing derivations, closed-page
 * and open-page bank behavior, refresh, and the row-hit contrast the
 * paper's Sec. IV-D builds on.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/timings.hh"

namespace hmcsim
{
namespace
{

TEST(DramTimings, HmcRowIs256Bytes)
{
    EXPECT_EQ(hmcGen2Timings().rowBytes, 256u);
    // DDR4 rows are larger (512-2048 B per the paper; we use 1 KB).
    EXPECT_GT(ddr4Timings().rowBytes, hmcGen2Timings().rowBytes);
}

TEST(DramTimings, BeatsRoundUp)
{
    const DramTimings t = hmcGen2Timings();
    EXPECT_EQ(t.beats(16), 1u);
    EXPECT_EQ(t.beats(32), 1u);
    EXPECT_EQ(t.beats(33), 2u);
    EXPECT_EQ(t.beats(128), 4u);
}

TEST(DramTimings, VaultBusRateIsTenGBps)
{
    const DramTimings t = hmcGen2Timings();
    const double bytes_per_sec =
        static_cast<double>(t.beatBytes) * 1e12 /
        static_cast<double>(t.tBeat);
    EXPECT_NEAR(bytes_per_sec, 10e9, 0.1e9);
}

TEST(DramTimings, RowCycleRespectsTras)
{
    DramTimings t;
    t.tRcd = nsToTicks(5.0);
    t.tCl = nsToTicks(5.0);
    t.tRas = nsToTicks(30.0);
    t.tRp = nsToTicks(10.0);
    EXPECT_EQ(t.rowCycle(), nsToTicks(40.0)); // tRAS-bound
    t.tRas = nsToTicks(5.0);
    EXPECT_EQ(t.rowCycle(), nsToTicks(20.0)); // sequence-bound
}

TEST(Bank, ClosedPageEveryAccessPaysFullCycle)
{
    const DramTimings t = hmcGen2Timings();
    Bank bank;
    const auto first =
        bank.access(t, PagePolicy::Closed, 0, /*row=*/7, 128, false);
    // Same row immediately after: closed page means no hit.
    const auto second =
        bank.access(t, PagePolicy::Closed, 0, 7, 128, false);
    EXPECT_FALSE(first.rowHit);
    EXPECT_FALSE(second.rowHit);
    EXPECT_GE(second.dataReady, first.bankFree);
    EXPECT_EQ(bank.rowHits(), 0u);
}

TEST(Bank, ClosedPageServiceRateMatchesCalibration)
{
    // The 1-bank access pattern sustains ~1/(52 ns) accesses at
    // 128 B, which the calibration maps to ~3 GB/s raw (Fig. 7).
    const DramTimings t = hmcGen2Timings();
    Bank bank;
    Tick free = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i)
        free = bank.access(t, PagePolicy::Closed, 0, i, 128, false)
                   .bankFree;
    const double ns_per_access = ticksToNs(free) / n;
    EXPECT_GT(ns_per_access, 45.0);
    EXPECT_LT(ns_per_access, 60.0);
}

TEST(Bank, OpenPageHitsSkipActivate)
{
    const DramTimings t = ddr4Timings();
    Bank bank;
    const auto miss = bank.access(t, PagePolicy::Open, 0, 3, 64, false);
    EXPECT_FALSE(miss.rowHit);
    const auto hit =
        bank.access(t, PagePolicy::Open, miss.bankFree, 3, 64, false);
    EXPECT_TRUE(hit.rowHit);
    // The hit's data comes back faster than the miss's did.
    EXPECT_LT(hit.dataReady - miss.bankFree, miss.dataReady);
    EXPECT_EQ(bank.rowHits(), 1u);
}

TEST(Bank, OpenPageConflictPaysPrecharge)
{
    const DramTimings t = ddr4Timings();
    Bank bank;
    bank.access(t, PagePolicy::Open, 0, 3, 64, false);
    Bank fresh;
    const auto cold = fresh.access(t, PagePolicy::Open, 0, 5, 64, false);
    const auto conflict =
        bank.access(t, PagePolicy::Open, 0, 5, 64, false);
    // Conflict = precharge + activate; cold = activate only.
    EXPECT_GT(conflict.dataReady - 0, cold.dataReady - 0);
    EXPECT_FALSE(conflict.rowHit);
}

TEST(Bank, WritesPayWriteRecovery)
{
    const DramTimings t = hmcGen2Timings();
    Bank rd_bank, wr_bank;
    const auto rd =
        rd_bank.access(t, PagePolicy::Closed, 0, 0, 128, false);
    const auto wr =
        wr_bank.access(t, PagePolicy::Closed, 0, 0, 128, true);
    EXPECT_GT(wr.bankFree, rd.bankFree);
}

TEST(Bank, AccessesSerializeOnTheBank)
{
    const DramTimings t = hmcGen2Timings();
    Bank bank;
    const auto a = bank.access(t, PagePolicy::Closed, 0, 0, 32, false);
    const auto b = bank.access(t, PagePolicy::Closed, 0, 1, 32, false);
    const auto c = bank.access(t, PagePolicy::Closed, 0, 2, 32, false);
    EXPECT_GE(b.dataReady, a.bankFree);
    EXPECT_GE(c.dataReady, b.bankFree);
}

TEST(Bank, RefreshBlocksAndClosesRow)
{
    const DramTimings t = ddr4Timings();
    Bank bank;
    bank.access(t, PagePolicy::Open, 0, 9, 64, false);
    const Tick refreshed = bank.refresh(t, 0);
    EXPECT_GE(refreshed, t.tRfc);
    // Row was closed by the refresh: same row is no longer a hit.
    const auto after =
        bank.access(t, PagePolicy::Open, refreshed, 9, 64, false);
    EXPECT_FALSE(after.rowHit);
}

TEST(Bank, ResetClearsState)
{
    const DramTimings t = hmcGen2Timings();
    Bank bank;
    bank.access(t, PagePolicy::Closed, 0, 0, 128, false);
    bank.reset();
    EXPECT_EQ(bank.accesses(), 0u);
    EXPECT_EQ(bank.busyTime(), 0u);
    const auto res = bank.access(t, PagePolicy::Closed, 0, 0, 32, false);
    EXPECT_EQ(res.dataReady, t.tRcd + t.tCl);
}

TEST(Bank, BusyTimeTracksOccupancy)
{
    const DramTimings t = hmcGen2Timings();
    Bank bank;
    const auto res = bank.access(t, PagePolicy::Closed, 0, 0, 128, false);
    EXPECT_EQ(bank.busyTime(), res.bankFree);
}

/** Closed-page latency must be independent of address ordering. */
class ClosedPageOrderInvariance
    : public ::testing::TestWithParam<Bytes>
{
};

TEST_P(ClosedPageOrderInvariance, LinearAndStridedCostTheSame)
{
    const Bytes size = GetParam();
    const DramTimings t = hmcGen2Timings();
    Bank linear_bank, strided_bank;
    Tick linear_done = 0, strided_done = 0;
    for (int i = 0; i < 500; ++i) {
        linear_done = linear_bank
                          .access(t, PagePolicy::Closed, 0,
                                  static_cast<std::uint32_t>(i), size,
                                  false)
                          .bankFree;
        strided_done = strided_bank
                           .access(t, PagePolicy::Closed, 0,
                                   static_cast<std::uint32_t>(i * 977),
                                   size, false)
                           .bankFree;
    }
    EXPECT_EQ(linear_done, strided_done);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClosedPageOrderInvariance,
                         ::testing::Values(16u, 32u, 64u, 128u));

} // namespace
} // namespace hmcsim
