/**
 * @file
 * hmcsim-lint engine tests: every rule proven to fire on a seeded
 * fixture at an exact file:line, every suppression form proven to
 * hold, and the live src/ tree proven clean (the meta-test CI relies
 * on).
 *
 * Fixture sources live in tests/lint_fixtures/; they are linted, not
 * compiled. HMCSIM_LINT_FIXTURES_DIR and HMCSIM_LINT_SRC_DIR are
 * injected by tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

using hmcsim::lint::Finding;
using hmcsim::lint::formatFindings;
using hmcsim::lint::formatRuleTable;
using hmcsim::lint::lintFile;
using hmcsim::lint::lintPath;
using hmcsim::lint::listRules;
using hmcsim::lint::prepareFile;

std::string
fixture(const std::string &name)
{
    return std::string(HMCSIM_LINT_FIXTURES_DIR) + "/" + name;
}

/** Machine-format output of linting one fixture. */
std::string
machineOutput(const std::string &name)
{
    return formatFindings(lintPath(fixture(name)), /*machine=*/true,
                          /*fix_suggestions=*/false);
}

/** Expected `file:line:rule` line for a fixture finding. */
std::string
expect(const std::string &name, int line, const std::string &rule)
{
    return fixture(name) + ":" + std::to_string(line) + ":" + rule +
           "\n";
}

TEST(LintRules, NondeterminismFiresPerSeededLine)
{
    EXPECT_EQ(machineOutput("nondeterminism.cc"),
              expect("nondeterminism.cc", 10, "nondeterminism") +
                  expect("nondeterminism.cc", 11, "nondeterminism") +
                  expect("nondeterminism.cc", 12, "nondeterminism"));
}

TEST(LintRules, UnorderedIterationFires)
{
    EXPECT_EQ(machineOutput("unordered_iteration.cc"),
              expect("unordered_iteration.cc", 11,
                     "unordered-iteration"));
}

TEST(LintRules, PointerKeyedOrderFires)
{
    EXPECT_EQ(machineOutput("pointer_keyed_order.cc"),
              expect("pointer_keyed_order.cc", 8,
                     "pointer-keyed-order") +
                  expect("pointer_keyed_order.cc", 9,
                         "pointer-keyed-order"));
}

TEST(LintRules, HotStdFunctionFiresOnlyWithTag)
{
    EXPECT_EQ(machineOutput("hot_std_function.cc"),
              expect("hot_std_function.cc", 6, "hot-std-function"));
}

TEST(LintRules, HotCheckFiresButDcheckDoesNot)
{
    // Line 10 is HMCSIM_DCHECK and must stay silent.
    EXPECT_EQ(machineOutput("hot_check.cc"),
              expect("hot_check.cc", 9, "hot-check"));
}

TEST(LintRules, HexfloatFiresOnDecimalButNotHexFormat)
{
    // Line 10 formats with %a and must stay silent.
    EXPECT_EQ(machineOutput("hexfloat.cc"),
              expect("hexfloat.cc", 9, "hexfloat-persistence"));
}

TEST(LintRules, MutexUnguardedFiresOnlyOnUnannotatedMutex)
{
    // Line 7 declares a mutex with a GUARDED_BY member; only the
    // line-9 mutex is naked.
    EXPECT_EQ(machineOutput("mutex_unguarded.cc"),
              expect("mutex_unguarded.cc", 9, "mutex-unguarded"));
}

TEST(LintRules, DeprecatedDdrEntryFiresOnBothEntryPoints)
{
    // Lines 12-13 call the two deprecated standalone entry points;
    // the comment mention on line 4 must stay silent.
    EXPECT_EQ(machineOutput("deprecated_ddr_entry.cc"),
              expect("deprecated_ddr_entry.cc", 12,
                     "deprecated-ddr-entry") +
                  expect("deprecated_ddr_entry.cc", 13,
                         "deprecated-ddr-entry"));
}

TEST(LintRules, SnapshotSafeFiresInsideTaggedStructOnly)
{
    // Lines 9-11 are unannotated pointer/iterator members of the
    // tagged struct; the value member (8), the member function (12),
    // the annotated pointer (13), and the untagged struct (18) all
    // stay silent.
    EXPECT_EQ(machineOutput("snapshot_unsafe.cc"),
              expect("snapshot_unsafe.cc", 9, "snapshot-safe") +
                  expect("snapshot_unsafe.cc", 10, "snapshot-safe") +
                  expect("snapshot_unsafe.cc", 11, "snapshot-safe"));
}

TEST(LintRules, BackendHotPathFiresOnUntaggedBackendFile)
{
    EXPECT_EQ(machineOutput("plain_backend.cc"),
              expect("plain_backend.cc", 1, "backend-hot-path"));
}

TEST(LintRules, BackendHotPathIgnoresTaggedAndUnrelatedFiles)
{
    using hmcsim::lint::lintFile;
    EXPECT_TRUE(
        lintFile("src/mem/nvm_backend.cc",
                 "// lint:file(hot-path) -- per-packet accept()\n"
                 "int x;\n")
            .empty());
    EXPECT_TRUE(lintFile("src/mem/backend.cc", "int x;\n").empty());
}

TEST(LintSuppressions, DeprecatedDdrShimFilesAllowlisted)
{
    // The shim definition files are exempt via the built-in
    // allowlist; the same text anywhere else fires.
    const std::string call = "measureDdrPattern(cfg, true, 64, 8, 1);\n";
    EXPECT_TRUE(
        lintFile("repo/src/baseline/ddr_channel.cc", call).empty());
    EXPECT_TRUE(
        lintFile("repo/src/host/experiment.hh", call).empty());
    EXPECT_EQ(lintFile("repo/src/hmc/device.cc", call).size(), 1U);
}

TEST(LintSuppressions, SameLineAndCommentAboveAllow)
{
    EXPECT_EQ(machineOutput("suppressed.cc"), "");
}

TEST(LintSuppressions, AllowFilePragma)
{
    EXPECT_EQ(machineOutput("allow_file.cc"), "");
}

TEST(LintSuppressions, TagGatingKeepsUntaggedFilesClean)
{
    EXPECT_EQ(machineOutput("untagged_ok.cc"), "");
}

TEST(LintSuppressions, BuiltinShimAllowlist)
{
    // The wall-clock shim reads steady_clock::now() but is exempt
    // from `nondeterminism` via the engine's built-in allowlist --
    // matched by path suffix, no pragma in the shim itself.
    const std::string shim = "steady_clock::now();\n";
    EXPECT_TRUE(lintFile("repo/src/sim/wallclock.hh", shim).empty());
    EXPECT_EQ(lintFile("repo/src/sim/other.hh", shim).size(), 1U);
}

TEST(LintEngine, CommentsAndStringsNeverFire)
{
    const std::string content = "// rand() in a comment\n"
                                "/* std::random_device too */\n"
                                "const char *s = \"time()\";\n"
                                "const char *r = R\"(rand())\";\n";
    EXPECT_TRUE(lintFile("x.cc", content).empty());
}

TEST(LintEngine, EveryRuleHasAFiringFixture)
{
    const std::vector<std::string> fixtures = {
        "nondeterminism.cc",     "unordered_iteration.cc",
        "pointer_keyed_order.cc", "hot_std_function.cc",
        "hot_check.cc",          "hexfloat.cc",
        "mutex_unguarded.cc",    "deprecated_ddr_entry.cc",
        "plain_backend.cc",      "snapshot_unsafe.cc"};
    std::set<std::string> fired;
    for (const std::string &name : fixtures)
        for (const Finding &f : lintPath(fixture(name)))
            fired.insert(f.rule);
    for (const auto &rule : listRules())
        EXPECT_TRUE(fired.count(rule.id))
            << "rule without a firing fixture: " << rule.id;
}

TEST(LintEngine, FileTagsParsed)
{
    const auto ctx =
        prepareFile("x.cc", "// lint:file(hot-path, persistence)\n");
    EXPECT_TRUE(ctx.tags.count("hot-path"));
    EXPECT_TRUE(ctx.tags.count("persistence"));
}

TEST(LintEngine, FixSuggestionsCarryRuleTableText)
{
    const auto findings = lintPath(fixture("hot_check.cc"));
    ASSERT_EQ(findings.size(), 1U);
    const std::string out =
        formatFindings(findings, /*machine=*/false,
                       /*fix_suggestions=*/true);
    EXPECT_NE(out.find("fix: "), std::string::npos);
    EXPECT_NE(out.find("HMCSIM_DCHECK"), std::string::npos);
}

TEST(LintEngine, RuleTableListsEveryRule)
{
    const std::string table = formatRuleTable();
    for (const auto &rule : listRules()) {
        EXPECT_NE(table.find(rule.id), std::string::npos) << rule.id;
        EXPECT_FALSE(rule.summary.empty()) << rule.id;
        EXPECT_FALSE(rule.rationale.empty()) << rule.id;
        EXPECT_FALSE(rule.suggestion.empty()) << rule.id;
    }
}

/**
 * The meta-test: the live model tree lints clean. A failure message
 * includes the human-format findings, so a CI log names the offending
 * file, line, rule, and fix without re-running anything.
 */
TEST(LintTree, LiveSourceTreeIsClean)
{
    const auto findings = lintPath(HMCSIM_LINT_SRC_DIR);
    EXPECT_TRUE(findings.empty())
        << formatFindings(findings, /*machine=*/false,
                          /*fix_suggestions=*/true);
}

} // namespace
