/**
 * @file
 * Unit tests for the HMC module: Table I structural configs (Eq. 1),
 * the Fig. 3 address mapping and its page-layout consequences, the
 * vault controller (BLP, 10 GB/s bus), and device-level routing.
 */

#include <gtest/gtest.h>

#include <set>

#include "hmc/address_mapper.hh"
#include "hmc/config.hh"
#include "hmc/device.hh"
#include "hmc/vault_controller.hh"

namespace hmcsim
{
namespace
{

// ---- Table I / Eq. 1 -------------------------------------------------

TEST(HmcConfig, Gen1Structure)
{
    const HmcConfig c = HmcConfig::gen1();
    EXPECT_EQ(c.capacity, 512u * mib);
    EXPECT_EQ(c.numBanks(), 128u);
    EXPECT_EQ(c.banksPerVault(), 8u);
    EXPECT_EQ(c.bankBytes(), 4u * mib);
    EXPECT_EQ(c.partitionBytes(), 8u * mib);
    EXPECT_EQ(c.vaultsPerQuadrant(), 4u);
}

TEST(HmcConfig, Gen2Equation1)
{
    // Eq. 1: 8 layers x 16 partitions/layer x 2 banks/partition = 256.
    const HmcConfig c = HmcConfig::gen2_4GB();
    EXPECT_EQ(c.numBanks(),
              c.numDramLayers * c.partitionsPerLayer *
                  c.banksPerPartition);
    EXPECT_EQ(c.numBanks(), 256u);
    EXPECT_EQ(c.banksPerVault(), 16u);
    EXPECT_EQ(c.bankBytes(), 16u * mib);
    EXPECT_EQ(c.partitionBytes(), 32u * mib);
}

TEST(HmcConfig, Gen2_2GBHalvesLayersNotBanksPerPartition)
{
    const HmcConfig c = HmcConfig::gen2_2GB();
    EXPECT_EQ(c.numBanks(), 128u);
    EXPECT_EQ(c.bankBytes(), 16u * mib);
}

TEST(HmcConfig, Hmc2DoublesVaults)
{
    const HmcConfig c = HmcConfig::hmc2_4GB();
    EXPECT_EQ(c.numVaults, 32u);
    EXPECT_EQ(c.vaultsPerQuadrant(), 8u);
    EXPECT_EQ(c.bankBytes(), 16u * mib);
    const HmcConfig c8 = HmcConfig::hmc2_8GB();
    EXPECT_EQ(c8.numBanks(), 512u);
}

TEST(HmcConfig, CapacityConsistency)
{
    for (const HmcConfig &c :
         {HmcConfig::gen1(), HmcConfig::gen2_2GB(), HmcConfig::gen2_4GB(),
          HmcConfig::hmc2_4GB(), HmcConfig::hmc2_8GB()}) {
        // layers x layer-size must equal the advertised capacity.
        const Bytes from_layers = static_cast<Bytes>(c.numDramLayers) *
                                  c.dramLayerGbits * gib / 8;
        EXPECT_EQ(from_layers, c.capacity) << c.name;
        EXPECT_EQ(c.bankBytes() * c.numBanks(), c.capacity) << c.name;
    }
}

// ---- Address mapping (Fig. 3) ----------------------------------------

class MapperTest : public ::testing::Test
{
  protected:
    HmcConfig cfg = HmcConfig::gen2_4GB();
    AddressMapper mapper{cfg, MaxBlockSize::B128};
};

TEST_F(MapperTest, FieldPositionsFor128B)
{
    // Fig. 3a: [3:0] ignored, [6:4] in-block, [10:7] vault, [14:11]
    // bank.
    EXPECT_EQ(mapper.vaultShift(), 7u);
    EXPECT_EQ(mapper.bankShift(), 11u);
    EXPECT_EQ(mapper.rowShift(), 15u);
    EXPECT_EQ(mapper.vaultBits(), 4u);
    EXPECT_EQ(mapper.bankBits(), 4u);
    EXPECT_EQ(mapper.addressBits(), 32u);
}

TEST_F(MapperTest, FieldPositionsShiftWithMaxBlock)
{
    // Fig. 3b: 64 B -> vault at bit 6; Fig. 3c: 32 B -> vault at 5.
    const AddressMapper m64(cfg, MaxBlockSize::B64);
    EXPECT_EQ(m64.vaultShift(), 6u);
    EXPECT_EQ(m64.bankShift(), 10u);
    const AddressMapper m32(cfg, MaxBlockSize::B32);
    EXPECT_EQ(m32.vaultShift(), 5u);
    EXPECT_EQ(m32.bankShift(), 9u);
    const AddressMapper m16(cfg, MaxBlockSize::B16);
    EXPECT_EQ(m16.vaultShift(), 4u);
    EXPECT_EQ(m16.bankShift(), 8u);
}

TEST_F(MapperTest, SequentialBlocksSpreadAcrossVaultsFirst)
{
    // Low-order interleave: consecutive 128 B blocks visit all 16
    // vaults before the bank changes.
    std::set<unsigned> vaults;
    for (Addr block = 0; block < 16; ++block) {
        const DecodedAddress d = mapper.decode(block * 128);
        vaults.insert(d.vault);
        EXPECT_EQ(d.bank, 0u);
    }
    EXPECT_EQ(vaults.size(), 16u);
    // The 17th block wraps to vault 0, bank... still bank 0? No: bank
    // field is the next 4 bits, so block 16 lands in bank 1.
    EXPECT_EQ(mapper.decode(16 * 128).vault, 0u);
    EXPECT_EQ(mapper.decode(16 * 128).bank, 1u);
}

TEST_F(MapperTest, QuadrantIsHighVaultBits)
{
    for (unsigned v = 0; v < 16; ++v) {
        const DecodedAddress d =
            mapper.decode(static_cast<Addr>(v) << mapper.vaultShift());
        EXPECT_EQ(d.vault, v);
        EXPECT_EQ(d.quadrant, v / 4);
    }
}

TEST_F(MapperTest, HighOrderBitsIgnored)
{
    // The request header has a 34-bit field but a 4 GB cube only
    // implements 32 bits; bits 32-33 must be ignored.
    const Addr base = 0x12345678;
    const DecodedAddress a = mapper.decode(base);
    const DecodedAddress b = mapper.decode(base | (Addr(3) << 32));
    EXPECT_EQ(a.vault, b.vault);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
}

TEST_F(MapperTest, OsPageSpansTwoBanksAcrossAllVaults)
{
    // Sec. II-C: a 4 KB OS page is allocated in two banks across all
    // vaults (128 B max block size).
    EXPECT_EQ(mapper.regionVaultSpan(0, 4096), 16u);
    EXPECT_EQ(mapper.regionBankSpan(0, 4096), 32u); // 2 banks x 16
}

TEST_F(MapperTest, SmallerMaxBlockRaisesPageBlp)
{
    // Footnote 6: reducing the max block size increases BLP within a
    // single page.
    const AddressMapper m32(cfg, MaxBlockSize::B32);
    EXPECT_GT(m32.regionBankSpan(0, 4096), mapper.regionBankSpan(0, 4096));
}

TEST_F(MapperTest, OneHundredTwentyEightPagesForFullBlp)
{
    // Sec. II-C: 16 vaults x 8 page slots = 128 serially allocated
    // pages reach maximum BLP. Page i and page i+128 collide on the
    // same banks.
    const DecodedAddress first = mapper.decode(0);
    const DecodedAddress wrap = mapper.decode(128 * 4096);
    EXPECT_EQ(first.vault, wrap.vault);
    EXPECT_EQ(first.bank, wrap.bank);
    // ...and eight consecutive pages cover every (vault, bank) pair:
    // each page claims a disjoint bank pair in every vault, so eight
    // pages keep all 256 banks busy.
    std::set<std::pair<unsigned, unsigned>> covered;
    for (Addr page = 0; page < 8; ++page) {
        for (Addr a = page * 4096; a < (page + 1) * 4096; a += 128) {
            const DecodedAddress d = mapper.decode(a);
            covered.emplace(d.vault, d.bank);
        }
    }
    EXPECT_EQ(covered.size(), 256u);
}

TEST_F(MapperTest, RowAndColumnReconstructBankLocalAddress)
{
    const DecodedAddress d = mapper.decode(0x3A5F0);
    EXPECT_LT(d.column, 256u);
    // Two addresses 256 B apart in bank-local space differ in row.
    const Addr same_bank_stride = Addr(1) << mapper.rowShift();
    const DecodedAddress d2 = mapper.decode(0x3A5F0 + 2 * same_bank_stride);
    EXPECT_EQ(d2.vault, d.vault);
    EXPECT_EQ(d2.bank, d.bank);
    EXPECT_EQ(d2.row, d.row + 1); // 2 x 128 B groups = one 256 B row
}

// ---- Vault controller -------------------------------------------------

Packet
makeRequest(Command cmd, unsigned bank, std::uint32_t row, Bytes payload)
{
    Packet pkt;
    pkt.cmd = cmd;
    pkt.bank = static_cast<std::uint8_t>(bank);
    pkt.row = row;
    pkt.payload = payload;
    pkt.addr = 0;
    return pkt;
}

TEST(VaultController, SingleBankSerializes)
{
    VaultConfig cfg;
    VaultController vault(cfg);
    const Tick t1 = vault.service(makeRequest(Command::Read, 0, 0, 128), 0);
    const Tick t2 = vault.service(makeRequest(Command::Read, 0, 1, 128), 0);
    EXPECT_GT(t2, t1);
    EXPECT_GE(t2 - t1, cfg.timings.rowCycle() / 2);
}

TEST(VaultController, DistinctBanksOverlap)
{
    VaultConfig cfg;
    VaultController same(cfg), diff(cfg);
    Tick same_done = 0, diff_done = 0;
    for (int i = 0; i < 8; ++i) {
        same_done =
            same.service(makeRequest(Command::Read, 0, i, 128), 0);
        diff_done =
            diff.service(makeRequest(Command::Read, i, 0, 128), 0);
    }
    EXPECT_LT(diff_done, same_done); // BLP wins
}

TEST(VaultController, BusCapsNearTenGBps)
{
    VaultConfig cfg;
    VaultController vault(cfg);
    // Saturate all 16 banks with 128 B reads.
    const int n = 4000;
    Tick done = 0;
    for (int i = 0; i < n; ++i)
        done = vault.service(
            makeRequest(Command::Read, i % 16, i, 128), 0);
    // Raw-accounting bandwidth: each 128 B read moves 160 link bytes.
    const double raw_gbps =
        toGBps(bytesPerSecond(static_cast<Bytes>(n) * 160, done));
    EXPECT_NEAR(raw_gbps, 10.0, 0.5);
}

TEST(VaultController, MisalignedAccessWastesABeat)
{
    VaultConfig cfg;
    VaultController aligned(cfg), misaligned(cfg);
    Tick a_done = 0, m_done = 0;
    for (int i = 0; i < 1000; ++i) {
        Packet a = makeRequest(Command::Read, i % 16, i, 32);
        a.addr = 0;
        Packet m = makeRequest(Command::Read, i % 16, i, 32);
        m.addr = 16; // starts mid-beat
        a_done = aligned.service(a, 0);
        m_done = misaligned.service(m, 0);
    }
    EXPECT_GT(m_done, a_done);
}

TEST(VaultController, StatsCountPerCommand)
{
    VaultConfig cfg;
    VaultController vault(cfg);
    vault.service(makeRequest(Command::Read, 0, 0, 128), 0);
    vault.service(makeRequest(Command::Write, 1, 0, 64), 0);
    vault.service(makeRequest(Command::Atomic, 2, 0, 16), 0);
    EXPECT_EQ(vault.stats().reads, 1u);
    EXPECT_EQ(vault.stats().writes, 1u);
    EXPECT_EQ(vault.stats().atomics, 1u);
    EXPECT_EQ(vault.stats().payloadBytes, 128u + 64u + 16u);
}

TEST(VaultController, ClosedPageMeansNoRowHits)
{
    VaultConfig cfg;
    VaultController vault(cfg);
    for (int i = 0; i < 10; ++i)
        vault.service(makeRequest(Command::Read, 0, 42, 128), 0);
    EXPECT_EQ(vault.stats().rowHits, 0u);
}

TEST(VaultController, OpenPagePolicyCountsRowHits)
{
    VaultConfig cfg;
    cfg.policy = PagePolicy::Open;
    VaultController vault(cfg);
    for (int i = 0; i < 10; ++i)
        vault.service(makeRequest(Command::Read, 0, 42, 128), 0);
    EXPECT_EQ(vault.stats().rowHits, 9u);
}

// ---- Device ------------------------------------------------------------

TEST(HmcDevice, DecodesAndRoutes)
{
    HmcDeviceConfig cfg;
    HmcDevice device(cfg);
    Packet pkt;
    pkt.cmd = Command::Read;
    pkt.payload = 128;
    pkt.addr = Addr(5) << device.mapper().vaultShift(); // vault 5
    pkt.link = 0;
    const Tick done = device.handleRequest(pkt, 1000);
    EXPECT_GT(done, 1000u);
    EXPECT_EQ(pkt.vault, 5u);
    EXPECT_EQ(pkt.quadrant, 1u);
    EXPECT_EQ(device.stats().requests, 1u);
}

TEST(HmcDevice, RemoteQuadrantCostsMore)
{
    HmcDeviceConfig cfg;
    HmcDevice local_dev(cfg), remote_dev(cfg);
    Packet local;
    local.cmd = Command::Read;
    local.payload = 128;
    local.addr = 0; // vault 0, quadrant 0
    local.link = 0; // enters at quadrant 0
    Packet remote = local;
    remote.addr = Addr(15) << local_dev.mapper().vaultShift(); // quad 3
    const Tick t_local = local_dev.handleRequest(local, 0);
    const Tick t_remote = remote_dev.handleRequest(remote, 0);
    EXPECT_GT(t_remote, t_local);
    EXPECT_EQ(t_remote - t_local, 2 * cfg.quadrantHopLatency);
    EXPECT_EQ(local_dev.stats().localQuadrantHits, 1u);
    EXPECT_EQ(remote_dev.stats().localQuadrantHits, 0u);
}

TEST(HmcDevice, ThermalShutdownFlagsResponses)
{
    HmcDeviceConfig cfg;
    HmcDevice device(cfg);
    device.setThermalShutdown(true);
    Packet pkt;
    pkt.cmd = Command::Write;
    pkt.payload = 64;
    pkt.addr = 0x1000;
    device.handleRequest(pkt, 0);
    EXPECT_TRUE(pkt.thermalFailure);
}

TEST(HmcDevice, PayloadAccounting)
{
    HmcDeviceConfig cfg;
    HmcDevice device(cfg);
    Packet rd;
    rd.cmd = Command::Read;
    rd.payload = 128;
    Packet wr;
    wr.cmd = Command::Write;
    wr.payload = 64;
    device.handleRequest(rd, 0);
    device.handleRequest(wr, 0);
    EXPECT_EQ(device.stats().readPayloadBytes, 128u);
    EXPECT_EQ(device.stats().writePayloadBytes, 64u);
}

TEST(HmcDevice, VaultCountMatchesStructure)
{
    HmcDeviceConfig cfg;
    cfg.structure = HmcConfig::hmc2_4GB();
    HmcDevice device(cfg);
    EXPECT_EQ(device.numVaults(), 32u);
}

TEST(HmcDevice, ResetClearsStats)
{
    HmcDeviceConfig cfg;
    HmcDevice device(cfg);
    Packet pkt;
    pkt.cmd = Command::Read;
    pkt.payload = 128;
    device.handleRequest(pkt, 0);
    device.reset();
    EXPECT_EQ(device.stats().requests, 0u);
    EXPECT_FALSE(device.inThermalShutdown());
}

} // namespace
} // namespace hmcsim
