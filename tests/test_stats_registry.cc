/**
 * @file
 * Tests for the named-statistics registry and its wiring into the
 * simulated platform's components.
 */

#include <gtest/gtest.h>

#include "host/ac510.hh"
#include "sim/stat_registry.hh"

namespace hmcsim
{
namespace
{

TEST(StatRegistry, AddAndRead)
{
    StatRegistry reg;
    std::uint64_t counter = 7;
    reg.addValue("a.b.counter", "a test counter", &counter);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_TRUE(reg.has("a.b.counter"));
    EXPECT_DOUBLE_EQ(reg.value("a.b.counter"), 7.0);
    counter = 42;
    EXPECT_DOUBLE_EQ(reg.value("a.b.counter"), 42.0);
}

TEST(StatRegistry, CallbackStats)
{
    StatRegistry reg;
    int calls = 0;
    reg.add("lazy", "computed on demand", [&calls] {
        ++calls;
        return 3.5;
    });
    EXPECT_EQ(calls, 0);
    EXPECT_DOUBLE_EQ(reg.value("lazy"), 3.5);
    EXPECT_EQ(calls, 1);
}

TEST(StatRegistry, DuplicateNamesRejected)
{
    StatRegistry reg;
    reg.add("x", "", [] { return 0.0; });
    EXPECT_DEATH(reg.add("x", "", [] { return 0.0; }), "duplicate");
}

TEST(StatRegistry, UnknownNameFatal)
{
    StatRegistry reg;
    EXPECT_DEATH(reg.value("nope"), "unknown");
}

TEST(StatRegistry, PrefixMatching)
{
    StatRegistry reg;
    reg.add("sys.hmc.reads", "", [] { return 1.0; });
    reg.add("sys.hmc.writes", "", [] { return 2.0; });
    reg.add("sys.ctrl.retries", "", [] { return 3.0; });
    EXPECT_EQ(reg.matching("sys.hmc.").size(), 2u);
    EXPECT_EQ(reg.matching("sys.").size(), 3u);
    EXPECT_EQ(reg.matching("other").size(), 0u);
    // Sorted by name.
    const auto hmc = reg.matching("sys.hmc.");
    EXPECT_EQ(hmc[0]->name, "sys.hmc.reads");
    EXPECT_EQ(hmc[1]->name, "sys.hmc.writes");
}

TEST(StatRegistry, TextDumpContainsNamesValuesDescriptions)
{
    StatRegistry reg;
    reg.add("alpha", "first stat", [] { return 1.25; });
    const std::string text = reg.dumpText();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.25"), std::string::npos);
    EXPECT_NE(text.find("# first stat"), std::string::npos);
}

TEST(StatRegistry, CsvDump)
{
    StatRegistry reg;
    reg.add("b", "", [] { return 2.0; });
    reg.add("a", "", [] { return 1.0; });
    const std::string csv = reg.dumpCsv();
    // Header + sorted rows.
    EXPECT_EQ(csv, "stat,value\na,1\nb,2\n");
}

TEST(StatPathTest, Composition)
{
    const StatPath root("system");
    EXPECT_EQ((root / "hmc" / "vault3" / "reads").str(),
              "system.hmc.vault3.reads");
    const StatPath empty("");
    EXPECT_EQ((empty / "top").str(), "top");
}

TEST(StatRegistry, PlatformRegistersFullHierarchy)
{
    Ac510Config cfg;
    Ac510Module module(cfg);
    StatRegistry reg;
    module.registerStats(reg, StatPath("system"));

    // Controller, device, 16 vaults, 9 ports all present.
    EXPECT_TRUE(reg.has("system.controller.requests_submitted"));
    EXPECT_TRUE(reg.has("system.hmc.requests"));
    EXPECT_TRUE(reg.has("system.hmc.vault0.reads"));
    EXPECT_TRUE(reg.has("system.hmc.vault15.refreshes"));
    EXPECT_TRUE(reg.has("system.port0.reads_issued"));
    EXPECT_TRUE(reg.has("system.port8.read_latency_avg_ns"));
    EXPECT_GT(reg.size(), 100u);
}

TEST(StatRegistry, PlatformStatsTrackActivity)
{
    Ac510Config cfg;
    cfg.numPorts = 2;
    cfg.port.requestBudget = 50;
    Ac510Module module(cfg);
    StatRegistry reg;
    module.registerStats(reg, StatPath("sys"));

    EXPECT_DOUBLE_EQ(reg.value("sys.hmc.requests"), 0.0);
    module.start();
    module.runToCompletion();
    EXPECT_DOUBLE_EQ(reg.value("sys.hmc.requests"), 100.0);
    EXPECT_DOUBLE_EQ(reg.value("sys.controller.responses_delivered"),
                     100.0);
    EXPECT_DOUBLE_EQ(reg.value("sys.port0.reads_completed"), 50.0);
    EXPECT_GT(reg.value("sys.port0.read_latency_avg_ns"), 500.0);

    // Vault counters sum to the device total.
    double vault_reads = 0.0;
    for (const StatEntry *entry : reg.matching("sys.hmc.vault")) {
        if (entry->name.find(".reads") != std::string::npos)
            vault_reads += entry->value();
    }
    EXPECT_DOUBLE_EQ(vault_reads, 100.0);
}

} // namespace
} // namespace hmcsim
