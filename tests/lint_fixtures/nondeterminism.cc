// Seeded violations for the `nondeterminism` rule: hardware entropy,
// hidden-global rand(), and a host clock read, one per line.
#include <chrono>
#include <cstdlib>
#include <random>

unsigned long
entropy()
{
    std::random_device rd;
    unsigned long bits = rd() ^ static_cast<unsigned long>(rand());
    const auto t = std::chrono::steady_clock::now();
    (void)t;
    return bits;
}
