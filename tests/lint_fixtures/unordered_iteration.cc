// Seeded violation for `unordered-iteration`: range-for over an
// unordered_map feeding an accumulator (digest-order hazard).
#include <cstdint>
#include <unordered_map>

std::uint64_t
sumAll(const std::unordered_map<std::uint64_t, std::uint64_t> &)
{
    std::unordered_map<std::uint64_t, std::uint64_t> counts;
    std::uint64_t sum = 0;
    for (const auto &kv : counts)
        sum += kv.second;
    return sum;
}
