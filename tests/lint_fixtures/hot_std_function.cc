// lint:file(hot-path)
// Seeded violation for `hot-std-function`: a heap-allocating callable
// in a file tagged event-hot.
#include <functional>

std::function<void()> deferred;
