// lint:allow-file(nondeterminism) -- fixture exercises the whole-file
// suppression form (the shape the built-in shim allowlist takes).
#include <cstdlib>

int
noisy()
{
    return rand();
}
