// Seeded violation for `deprecated-ddr-entry`: a new caller of the
// standalone DDR baseline entry points instead of selecting the ddr4
// backend through the experiment config. The mention in this comment
// of measureDdrPattern must stay silent.
#include "baseline/ddr_channel.hh"
#include "host/experiment.hh"

void
probe(const hmcsim::DdrChannelConfig &ddr,
      const hmcsim::ExperimentConfig &cfg)
{
    (void)hmcsim::measureDdrPattern(ddr, true, 64, 8, 1000);
    (void)hmcsim::runDdrBaselineExperiment(cfg);
}
