// Seeded violation for `mutex-unguarded`: `naked` protects nothing
// the analysis can see; `mutex` (annotated member below) is fine.
#include "hmcsim/annotations.hh"

class Shared
{
    hmcsim::Mutex mutex;
    int value GUARDED_BY(mutex) = 0;
    std::mutex naked;
};
