// Seeded snapshot-safe violations: members of a tagged struct that
// hold addresses or iterators into the source simulator without a
// relocation note. Linted, never compiled.
struct Dummy;

struct PendingEntry // lint:snapshot-state
{
    unsigned long at = 0;
    Dummy *target;
    int *cursor = nullptr;
    SlotList::iterator pos;
    void relocate(Dummy *d) { target = d; }
    Dummy *noted; // lint:allow(snapshot-safe, relocated through the fork fixup map)
};

struct Unmarked
{
    Dummy *fine;
};
