// Seeded violation for `backend-hot-path`: a storage-engine
// implementation (filename ends in _backend.cc) with no
// lint:allow-style hot-path file tag. The rule reports line 1.
#include "mem/backend.hh"

int
backendStub()
{
    return 0;
}
