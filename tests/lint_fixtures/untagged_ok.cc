// Tag gating: std::function and HMCSIM_CHECK are fine in a file NOT
// tagged hot-path, and %g is fine outside persistence files. This
// fixture must produce zero findings.
#include <cstdio>
#include <functional>

#include "sim/check.hh"

std::function<void()> callback;

void
report(char *buf, unsigned long n, double v)
{
    HMCSIM_CHECK(n > 0, "empty buffer");
    std::snprintf(buf, n, "%g", v);
}
