// lint:file(persistence)
// Seeded violation for `hexfloat-persistence`: decimal float
// formatting in a persistence file. The %a line below must NOT fire.
#include <cstdio>

void
persist(char *buf, unsigned long n, double v)
{
    std::snprintf(buf, n, "%.17g", v);
    std::snprintf(buf, n, "%a", v);
}
