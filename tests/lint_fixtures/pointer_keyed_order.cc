// Seeded violation for `pointer-keyed-order`: a std::map sorted by
// object address -- deterministic-looking, ASLR-ordered in truth.
#include <map>
#include <set>

struct Vault;

std::map<Vault *, int> occupancy;
std::set<const Vault *> visited;
