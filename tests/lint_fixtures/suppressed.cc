// Suppression forms: same-line lint:allow and comment-above
// lint:allow. Every seeded violation below is excused, so this
// fixture must produce zero findings.
#include <cstdlib>

int
sameLine()
{
    return rand(); // lint:allow(nondeterminism) fixture exercises same-line form
}

int
commentAbove()
{
    // lint:allow(nondeterminism) fixture exercises comment-above form
    return rand();
}
