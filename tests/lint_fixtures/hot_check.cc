// lint:file(hot-path)
// Seeded violation for `hot-check`: a release-build check in a file
// tagged event-hot (should be HMCSIM_DCHECK).
#include "sim/check.hh"

void
step(int occupancy, int depth)
{
    HMCSIM_CHECK(occupancy <= depth, "queue over depth");
    HMCSIM_DCHECK(occupancy >= 0, "negative occupancy");
}
