/**
 * @file
 * Stress and fuzz tests: randomized system configurations run briefly
 * while global invariants are asserted. These catch interactions the
 * directed tests miss (odd sizes x patterns x mixes x hardware
 * knobs).
 */

#include <gtest/gtest.h>

#include "gups/patterns.hh"
#include "host/experiment.hh"
#include "sim/random.hh"

namespace hmcsim
{
namespace
{

/** Draw a random but valid experiment configuration. */
ExperimentConfig
randomConfig(Xoshiro256StarStar &rng)
{
    ExperimentConfig cfg;
    cfg.seed = rng.next();

    const Bytes sizes[] = {16, 32, 48, 64, 80, 96, 112, 128};
    cfg.requestSize = sizes[rng.nextBounded(8)];

    const RequestMix mixes[] = {RequestMix::ReadOnly,
                                RequestMix::WriteOnly,
                                RequestMix::ReadModifyWrite,
                                RequestMix::Atomic};
    cfg.mix = mixes[rng.nextBounded(4)];

    cfg.mode = rng.nextBounded(2) ? AddressingMode::Linear
                                  : AddressingMode::Random;
    cfg.numPorts = 1 + static_cast<unsigned>(rng.nextBounded(9));

    const MaxBlockSize blocks[] = {MaxBlockSize::B16, MaxBlockSize::B32,
                                   MaxBlockSize::B64, MaxBlockSize::B128};
    cfg.device.maxBlock = blocks[rng.nextBounded(4)];

    const MappingScheme schemes[] = {MappingScheme::VaultFirst,
                                     MappingScheme::BankFirst,
                                     MappingScheme::ContiguousVault};
    cfg.device.mapping = schemes[rng.nextBounded(3)];

    if (rng.nextBounded(2)) {
        cfg.device.vault.refreshEnabled = true;
        cfg.device.vault.refreshMultiplier =
            1.0 + rng.nextDouble() * 3.0;
    }
    if (rng.nextBounded(3) == 0)
        cfg.controller.bitErrorRate = 1e-8 * (1 + rng.nextBounded(100));
    if (rng.nextBounded(4) == 0)
        cfg.device.vault.policy = PagePolicy::Open;

    const AddressMapper mapper(cfg.device.structure, cfg.device.maxBlock,
                               256, cfg.device.mapping);
    if (rng.nextBounded(2)) {
        cfg.pattern = vaultPattern(
            mapper, 1u << rng.nextBounded(mapper.vaultBits() + 1));
    } else {
        cfg.pattern = bankPattern(
            mapper, 1u << rng.nextBounded(mapper.bankBits() + 1));
    }

    cfg.warmup = 20 * tickUs;
    cfg.measure = 100 * tickUs;
    return cfg;
}

class FuzzedConfigs : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzedConfigs, InvariantsHoldUnderRandomConfigs)
{
    Xoshiro256StarStar rng(0xF022 + GetParam());
    const ExperimentConfig cfg = randomConfig(rng);
    const MeasurementResult m = runExperiment(cfg);

    // Something ran, nothing exceeded physics.
    EXPECT_GT(m.mrps, 0.0) << cfg.pattern.name;
    EXPECT_LT(m.rawGBps, 60.0);
    // Latencies are physical (sub-infrastructure values impossible).
    if (m.readLatencyNs.count() > 0) {
        EXPECT_GT(m.readLatencyNs.min(), 300.0);
        // Epsilon: with perfectly regular traffic all samples are
        // equal and the running mean can differ from max by an ulp.
        EXPECT_GE(m.readLatencyNs.max(), m.readLatencyNs.mean() - 1e-6);
        EXPECT_GE(m.readLatencyNs.mean(), m.readLatencyNs.min() - 1e-6);
    }
    if (m.writeLatencyNs.count() > 0) {
        EXPECT_GT(m.writeLatencyNs.min(), 300.0);
    }
    // Byte accounting matches request counts.
    const double bytes_per_req = m.rawGBps * 1000.0 / m.mrps;
    EXPECT_GE(bytes_per_req, 47.0);   // >= atomic transaction
    EXPECT_LE(bytes_per_req, 161.0);  // <= 128 B transaction
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedConfigs, ::testing::Range(0, 24));

TEST(StressDrain, RandomConfigsAlwaysDrainCompletely)
{
    Xoshiro256StarStar rng(0xD2A1);
    for (int trial = 0; trial < 8; ++trial) {
        const ExperimentConfig cfg = randomConfig(rng);
        Ac510Config sys;
        sys.numPorts = cfg.numPorts;
        sys.port.mix = cfg.mix;
        sys.port.requestSize = cfg.requestSize;
        sys.port.mode = cfg.mode;
        sys.port.mask = cfg.pattern.mask;
        sys.port.antiMask = cfg.pattern.antiMask;
        sys.device = cfg.device;
        sys.controller = cfg.controller;
        sys.seed = cfg.seed;
        Ac510Module module(sys);
        module.start();
        module.runUntil(150 * tickUs);
        module.stop();
        module.runToCompletion();
        EXPECT_TRUE(module.allPortsIdle()) << "trial " << trial;
        const GupsPortStats agg = module.aggregateStats();
        EXPECT_EQ(agg.readsIssued, agg.readsCompleted);
        EXPECT_EQ(agg.writesIssued, agg.writesCompleted);
        EXPECT_EQ(module.controller().stats().requestsSubmitted,
                  module.controller().stats().responsesDelivered);
    }
}

TEST(StressEventQueue, ManyInterleavedSchedules)
{
    EventQueue queue;
    Xoshiro256StarStar rng(0xE0E0);
    std::uint64_t fired = 0;
    Tick last = 0;
    // Events randomly re-schedule follow-ups; ordering must hold.
    for (int i = 0; i < 2000; ++i) {
        queue.schedule(rng.nextBounded(1000000), [&] {
            EXPECT_GE(queue.now(), last);
            last = queue.now();
            ++fired;
            if (fired % 3 == 0) {
                queue.scheduleIn(rng.nextBounded(1000) + 1, [&] {
                    EXPECT_GE(queue.now(), last);
                    last = queue.now();
                    ++fired;
                });
            }
        });
    }
    queue.runToCompletion();
    EXPECT_GE(fired, 2000u);
    EXPECT_EQ(queue.pending(), 0u);
}

TEST(StressRegulator, AdmissionOrderIndependentTotals)
{
    // Total busy time depends only on the byte sum, not on the
    // arrival pattern.
    Xoshiro256StarStar rng(0xAB);
    ThroughputRegulator burst(10e9), spread(10e9);
    double total = 0.0;
    for (int i = 0; i < 500; ++i) {
        const double bytes = 16.0 * (1 + rng.nextBounded(10));
        total += bytes;
        burst.admit(0, bytes);
        spread.admit(i * 1000, bytes);
    }
    EXPECT_EQ(burst.busyTime(), spread.busyTime());
    EXPECT_NEAR(static_cast<double>(burst.busyTime()),
                total / 10e9 * 1e12, 1000.0);
}

TEST(PowerModelExtras, LinkSleepSavings)
{
    const PowerModel model;
    // Always busy: nothing to reclaim.
    EXPECT_DOUBLE_EQ(model.linkSleepSavings(1.0, 2), 0.0);
    // Fully idle: standby minus sleep floor, per link.
    const double full = model.linkSleepSavings(0.0, 2);
    EXPECT_NEAR(full,
                2 * model.params().linkStandbyW *
                    (1.0 - model.params().linkSleepFraction),
                1e-12);
    // Monotonic in idleness and links.
    EXPECT_LT(model.linkSleepSavings(0.5, 2), full);
    EXPECT_LT(model.linkSleepSavings(0.0, 1), full);
}

} // namespace
} // namespace hmcsim
