/**
 * @file
 * Bit-identity and allocation tests for the batched latency-stats
 * flush (TickLatencyBatch) and the windowed GUPS address issue:
 *
 *  - every digest-observable field (count, sum, min, max, mean, all
 *    histogram bins, underflow/overflow/total) must be bit-identical
 *    between the per-sample path and the buffered flush, including at
 *    exact bin boundaries and for histograms that reject the integer
 *    tick plan;
 *  - variance is chunk-combined (Chan et al.), so it is numerically
 *    equal, not bit-equal (docs/performance.md);
 *  - %a hexfloat formatting of the flushed sum/mean round-trips to
 *    the same bits (the structured sinks print doubles this way);
 *  - the steady-state flush and the issue-window refill perform zero
 *    heap allocations (counting operator new, as in
 *    test_event_queue.cc).
 */

#include <gtest/gtest.h>

#include <cstdlib>

// GCC pairs the replaced operator new with the library operator
// delete across inlining and misreports the malloc/free replacement
// pattern below as mismatched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
#include <cstdio>
#include <cstring>
#include <new>
#include <vector>

#include "gups/address_generator.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

// ---------------------------------------------------------------------
// Global allocation counter: every operator new in this binary is
// counted so tests can assert that a steady-state region performs no
// heap allocation at all. Single-threaded by the test contract.
// ---------------------------------------------------------------------

namespace
{
std::size_t g_allocations = 0;
}

void *
operator new(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hmcsim
{
namespace
{

std::uint64_t
bitsOf(double v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/** The GUPS read-latency histogram shape: 1000 bins of 100 ns over
 *  [0, 100000) -- bin width 100000 ticks, eligible for the integer
 *  tick plan. */
Histogram
gupsShapedHistogram()
{
    return Histogram(0.0, 100000.0, 1000);
}

/** A latency stream mixing random ticks with every boundary hazard:
 *  exact bin edges, one tick either side, zero, and ticks beyond the
 *  histogram range (overflow bucket). */
std::vector<Tick>
hazardStream(std::size_t random_count, std::uint64_t seed)
{
    std::vector<Tick> ticks;
    ticks.push_back(0);
    for (std::uint64_t k = 1; k <= 1000; k += 97) {
        ticks.push_back(k * 100000);
        ticks.push_back(k * 100000 - 1);
        ticks.push_back(k * 100000 + 1);
    }
    ticks.push_back(100000000);     // == hi: first overflow tick
    ticks.push_back(100000000 - 1); // last in-range tick
    ticks.push_back(130000000);     // deep overflow
    Xoshiro256StarStar rng(seed);
    for (std::size_t i = 0; i < random_count; ++i)
        ticks.push_back(rng.nextBounded(130000000));
    return ticks;
}

struct Accumulated
{
    SampleStats stats;
    Histogram hist = gupsShapedHistogram();
};

/** Reference: the pre-batching per-sample path. */
Accumulated
perSample(const std::vector<Tick> &ticks)
{
    Accumulated a;
    for (const Tick t : ticks) {
        const double v = ticksToNs(t);
        a.stats.sample(v);
        a.hist.sample(v);
    }
    return a;
}

/** Shipping path: buffer ticks, flush on full and once at the end. */
Accumulated
batched(const std::vector<Tick> &ticks)
{
    Accumulated a;
    TickLatencyBatch batch;
    for (const Tick t : ticks) {
        if (batch.push(t))
            batch.flushInto(a.stats, &a.hist);
    }
    batch.flushInto(a.stats, &a.hist);
    return a;
}

void
expectPinnedFieldsIdentical(const Accumulated &ref, const Accumulated &got)
{
    EXPECT_EQ(ref.stats.count(), got.stats.count());
    EXPECT_EQ(bitsOf(ref.stats.sum()), bitsOf(got.stats.sum()));
    EXPECT_EQ(bitsOf(ref.stats.mean()), bitsOf(got.stats.mean()));
    EXPECT_EQ(bitsOf(ref.stats.min()), bitsOf(got.stats.min()));
    EXPECT_EQ(bitsOf(ref.stats.max()), bitsOf(got.stats.max()));
    EXPECT_EQ(ref.hist.totalSamples(), got.hist.totalSamples());
    EXPECT_EQ(ref.hist.underflow(), got.hist.underflow());
    EXPECT_EQ(ref.hist.overflow(), got.hist.overflow());
    for (std::size_t b = 0; b < ref.hist.numBins(); ++b)
        ASSERT_EQ(ref.hist.binCount(b), got.hist.binCount(b)) << "bin " << b;
}

TEST(StatsBatch, PinnedFieldsBitIdentical)
{
    const std::vector<Tick> ticks = hazardStream(20000, 0x5EED);
    expectPinnedFieldsIdentical(perSample(ticks), batched(ticks));
}

TEST(StatsBatch, EveryBoundaryTickBinsIdentically)
{
    // All 1000 bin edges and their neighbours, no randomness: the
    // reciprocal-multiply bin(t) must match floating-point binning on
    // each exact edge.
    std::vector<Tick> ticks;
    for (std::uint64_t k = 0; k <= 1000; ++k)
        for (const std::int64_t d : {-1, 0, 1})
            if (static_cast<std::int64_t>(k * 100000) + d >= 0)
                ticks.push_back(k * 100000 + static_cast<std::uint64_t>(d));
    expectPinnedFieldsIdentical(perSample(ticks), batched(ticks));
}

TEST(StatsBatch, PartialAndInterleavedFlushes)
{
    // Two streams (read/write) interleaved irregularly, with flushes
    // landing at many different partial fill levels.
    const std::vector<Tick> ticks = hazardStream(5000, 0xFEED);
    Accumulated refA;
    Accumulated refB;
    Accumulated gotA;
    Accumulated gotB;
    TickLatencyBatch batchA;
    TickLatencyBatch batchB;
    Xoshiro256StarStar pick(7);
    for (const Tick t : ticks) {
        const double v = ticksToNs(t);
        if (pick.nextBounded(3) != 0) {
            refA.stats.sample(v);
            refA.hist.sample(v);
            if (batchA.push(t))
                batchA.flushInto(gotA.stats, &gotA.hist);
            // Stat reads mid-run force partial flushes.
            if (pick.nextBounded(64) == 0)
                batchA.flushInto(gotA.stats, &gotA.hist);
        } else {
            refB.stats.sample(v);
            refB.hist.sample(v);
            if (batchB.push(t))
                batchB.flushInto(gotB.stats, &gotB.hist);
        }
    }
    batchA.flushInto(gotA.stats, &gotA.hist);
    batchB.flushInto(gotB.stats, &gotB.hist);
    expectPinnedFieldsIdentical(refA, gotA);
    expectPinnedFieldsIdentical(refB, gotB);
}

TEST(StatsBatch, FlushWithoutHistogram)
{
    const std::vector<Tick> ticks = hazardStream(3000, 0xABC);
    SampleStats ref;
    for (const Tick t : ticks)
        ref.sample(ticksToNs(t));
    SampleStats got;
    TickLatencyBatch batch;
    for (const Tick t : ticks) {
        if (batch.push(t))
            batch.flushInto(got);
    }
    batch.flushInto(got);
    EXPECT_EQ(ref.count(), got.count());
    EXPECT_EQ(bitsOf(ref.sum()), bitsOf(got.sum()));
    EXPECT_EQ(bitsOf(ref.min()), bitsOf(got.min()));
    EXPECT_EQ(bitsOf(ref.max()), bitsOf(got.max()));
}

TEST(StatsBatch, PlanRejectedHistogramStaysIdentical)
{
    // Width 99.7 ns is not a whole multiple of 125 ps, so the tick
    // plan must be rejected and the flush must fall back to the
    // per-sample floating-point probe -- still bit-identical.
    const std::vector<Tick> ticks = hazardStream(4000, 0xDEF);
    SampleStats ref_stats;
    Histogram ref_hist(0.0, 997.0, 10);
    for (const Tick t : ticks) {
        const double v = ticksToNs(t);
        ref_stats.sample(v);
        ref_hist.sample(v);
    }
    SampleStats got_stats;
    Histogram got_hist(0.0, 997.0, 10);
    TickLatencyBatch batch;
    for (const Tick t : ticks) {
        if (batch.push(t))
            batch.flushInto(got_stats, &got_hist);
    }
    batch.flushInto(got_stats, &got_hist);
    EXPECT_EQ(bitsOf(ref_stats.sum()), bitsOf(got_stats.sum()));
    EXPECT_EQ(ref_hist.overflow(), got_hist.overflow());
    for (std::size_t b = 0; b < ref_hist.numBins(); ++b)
        ASSERT_EQ(ref_hist.binCount(b), got_hist.binCount(b)) << "bin " << b;
}

TEST(StatsBatch, VarianceChunkCombineIsNumericallyEqual)
{
    const std::vector<Tick> ticks = hazardStream(20000, 0x42);
    const Accumulated ref = perSample(ticks);
    const Accumulated got = batched(ticks);
    ASSERT_GT(ref.stats.variance(), 0.0);
    EXPECT_NEAR(got.stats.variance(), ref.stats.variance(),
                ref.stats.variance() * 1e-9);
    EXPECT_NEAR(got.stats.stddev(), ref.stats.stddev(),
                ref.stats.stddev() * 1e-9);
}

TEST(StatsBatch, HexfloatRoundTripPreservesFlushedBits)
{
    // The structured sinks serialize doubles with %a; a flushed sum
    // and mean must survive the print/parse round trip bit-exactly.
    const std::vector<Tick> ticks = hazardStream(10000, 0x77);
    const Accumulated got = batched(ticks);
    for (const double v : {got.stats.sum(), got.stats.mean(),
                           got.stats.min(), got.stats.max()}) {
        char text[64];
        std::snprintf(text, sizeof(text), "%a", v);
        double parsed = 0.0;
        ASSERT_EQ(std::sscanf(text, "%la", &parsed), 1);
        EXPECT_EQ(bitsOf(v), bitsOf(parsed)) << text;
    }
}

TEST(StatsBatch, SampleBatchMatchesPerSamplePinnedFields)
{
    std::vector<double> values;
    Xoshiro256StarStar rng(9);
    for (int i = 0; i < 5000; ++i)
        values.push_back(rng.nextDouble() * 1e5);
    SampleStats ref;
    for (const double v : values)
        ref.sample(v);
    SampleStats got;
    got.sampleBatch(values.data(), values.size());
    EXPECT_EQ(ref.count(), got.count());
    EXPECT_EQ(bitsOf(ref.sum()), bitsOf(got.sum()));
    EXPECT_EQ(bitsOf(ref.min()), bitsOf(got.min()));
    EXPECT_EQ(bitsOf(ref.max()), bitsOf(got.max()));
    EXPECT_NEAR(got.variance(), ref.variance(), ref.variance() * 1e-9);
}

TEST(StatsBatch, ClearDropsBufferedSamples)
{
    SampleStats stats;
    TickLatencyBatch batch;
    batch.push(123456);
    batch.push(654321);
    EXPECT_EQ(batch.size(), 2u);
    batch.clear();
    EXPECT_TRUE(batch.empty());
    batch.flushInto(stats);
    EXPECT_EQ(stats.count(), 0u);
}

// ---------------------------------------------------------------------
// Zero-allocation guards: the per-packet steady state must never
// touch the heap (ISSUE: operator-new-counting guards extended to the
// stats flush and the GUPS issue window).
// ---------------------------------------------------------------------

TEST(StatsBatch, FlushIsAllocationFree)
{
    SampleStats stats;
    Histogram hist = gupsShapedHistogram();
    TickLatencyBatch batch;
    Xoshiro256StarStar rng(31);

    const std::size_t before = g_allocations;
    for (int round = 0; round < 8; ++round) {
        for (std::size_t i = 0; i < TickLatencyBatch::capacity; ++i) {
            if (batch.push(rng.nextBounded(130000000)))
                batch.flushInto(stats, &hist);
        }
        batch.flushInto(stats, &hist);
    }
    EXPECT_EQ(g_allocations, before);
    EXPECT_EQ(stats.count(), 8u * TickLatencyBatch::capacity);
}

TEST(StatsBatch, IssueWindowRefillIsAllocationFree)
{
    AddressGeneratorConfig cfg;
    cfg.mode = AddressingMode::Random;
    cfg.requestSize = 128;
    cfg.capacity = 4 * gib;
    AddressGenerator gen(cfg, 0x1234);

    Addr window[32];
    const std::size_t before = g_allocations;
    for (int refill = 0; refill < 64; ++refill) {
        gen.fill(window, 32);
        for (const Addr a : window)
            ASSERT_LT(a, cfg.capacity);
    }
    EXPECT_EQ(g_allocations, before);

    cfg.mode = AddressingMode::Linear;
    AddressGenerator lin(cfg, 0x1234);
    const std::size_t before_linear = g_allocations;
    for (int refill = 0; refill < 64; ++refill)
        lin.fill(window, 32);
    EXPECT_EQ(g_allocations, before_linear);
}

TEST(StatsBatch, WindowedFillMatchesPerCallStream)
{
    // The refill must consume the RNG exactly as 32 next() calls
    // would: a windowed port and a per-call port see the same stream.
    AddressGeneratorConfig cfg;
    cfg.mode = AddressingMode::Random;
    cfg.requestSize = 128;
    cfg.capacity = 4 * gib;
    AddressGenerator per_call(cfg, 0x9999);
    AddressGenerator windowed(cfg, 0x9999);
    Addr window[32];
    for (int refill = 0; refill < 16; ++refill) {
        windowed.fill(window, 32);
        for (const Addr a : window)
            ASSERT_EQ(a, per_call.next());
    }
}

} // namespace
} // namespace hmcsim
