/**
 * @file
 * Randomized differential test for the precompiled address-decode
 * plan: AddressMapper::decode() (shift/mask tables built once in the
 * constructor) must agree field-for-field with decodeReference() (the
 * textbook div/mod formulation) on every address, across schemes,
 * block sizes, row sizes -- including the non-power-of-two row and
 * quadrant geometries that exercise the plan's divide fallbacks.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hmc/address_mapper.hh"
#include "hmc/config.hh"
#include "sim/random.hh"

namespace hmcsim
{
namespace
{

void
expectSameDecode(const AddressMapper &mapper, Addr addr)
{
    const DecodedAddress plan = mapper.decode(addr);
    const DecodedAddress ref = mapper.decodeReference(addr);
    ASSERT_EQ(plan.quadrant, ref.quadrant) << "addr 0x" << std::hex << addr;
    ASSERT_EQ(plan.vault, ref.vault) << "addr 0x" << std::hex << addr;
    ASSERT_EQ(plan.bank, ref.bank) << "addr 0x" << std::hex << addr;
    ASSERT_EQ(plan.row, ref.row) << "addr 0x" << std::hex << addr;
    ASSERT_EQ(plan.column, ref.column) << "addr 0x" << std::hex << addr;
}

/** Edge addresses worth probing in every geometry: field boundaries,
 *  the capacity edge, and values above the implemented bits (the
 *  header carries more bits than the device decodes). */
std::vector<Addr>
edgeAddresses(const HmcConfig &cfg)
{
    std::vector<Addr> edges = {0, 1, 15, 16, 17, 127, 128, 129};
    for (unsigned bit = 4; bit < 40; ++bit) {
        edges.push_back((Addr(1) << bit) - 1);
        edges.push_back(Addr(1) << bit);
        edges.push_back((Addr(1) << bit) + 1);
    }
    edges.push_back(cfg.capacity - 1);
    edges.push_back(cfg.capacity);
    edges.push_back(cfg.capacity + 16);
    edges.push_back(~Addr(0));
    return edges;
}

void
differentialSweep(const HmcConfig &cfg, std::uint64_t seed)
{
    constexpr std::size_t randomAddresses = 10000;
    const MappingScheme schemes[] = {MappingScheme::VaultFirst,
                                     MappingScheme::BankFirst,
                                     MappingScheme::ContiguousVault};
    const MaxBlockSize blocks[] = {MaxBlockSize::B16, MaxBlockSize::B32,
                                   MaxBlockSize::B64, MaxBlockSize::B128};
    // 256 B is the HMC row; 1024 checks a wider power of two; 192
    // forces the row div/mod fallback (non-power-of-two).
    const Bytes rowSizes[] = {256, 1024, 192};

    Xoshiro256StarStar rng(seed);
    for (const MappingScheme scheme : schemes) {
        for (const MaxBlockSize block : blocks) {
            for (const Bytes row_bytes : rowSizes) {
                const AddressMapper mapper(cfg, block, row_bytes, scheme);
                SCOPED_TRACE(testing::Message()
                             << cfg.name << " " << mappingSchemeName(scheme)
                             << " block=" << static_cast<unsigned>(block)
                             << " row=" << row_bytes);
                for (const Addr a : edgeAddresses(cfg))
                    expectSameDecode(mapper, a);
                for (std::size_t i = 0; i < randomAddresses; ++i)
                    expectSameDecode(mapper, rng.next());
            }
        }
    }
}

TEST(AddressPlan, Gen2_4GBDifferential)
{
    differentialSweep(HmcConfig::gen2_4GB(), 0xA11CE);
}

TEST(AddressPlan, Gen1Differential)
{
    differentialSweep(HmcConfig::gen1(), 0xB0B);
}

TEST(AddressPlan, Gen2_2GBDifferential)
{
    differentialSweep(HmcConfig::gen2_2GB(), 0xCAFE);
}

TEST(AddressPlan, NonPowerOfTwoQuadrantFallback)
{
    // Degenerate quadrant count: 16 vaults / 3 quadrants truncates to
    // 5 vaults per quadrant, which is not a power of two, so the plan
    // must take its quadrant divide fallback instead of a shift.
    HmcConfig cfg = HmcConfig::gen2_4GB();
    cfg.numQuadrants = 3;
    differentialSweep(cfg, 0xD1CE);
}

TEST(AddressPlan, SequentialBlocksAgree)
{
    // A dense linear walk (every 16 B block of the first 4 MB) hits
    // each carry boundary between the block, vault, and bank fields.
    const AddressMapper mapper(HmcConfig::gen2_4GB());
    for (Addr a = 0; a < 4 * mib; a += 16)
        expectSameDecode(mapper, a);
}

} // namespace
} // namespace hmcsim
