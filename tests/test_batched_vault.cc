/**
 * @file
 * Differential tests for batched vault stepping: the batched
 * QueuedVaultController (eager timeline booking + single armed timer
 * + MemoryBackend::stepBatch) must reproduce the event-driven micro
 * model's completion stream exactly for per-bank-state backends, and
 * the backends' acceptBatch() must match a loop of virtual accept()
 * calls bit for bit (the differential reference the interface doc
 * promises).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "hmc/queued_vault.hh"
#include "mem/nvm_backend.hh"
#include "sim/random.hh"

namespace hmcsim
{
namespace
{

Packet
request(Command cmd, unsigned bank, std::uint32_t row, Addr addr = 0,
        Bytes payload = 128)
{
    Packet pkt;
    pkt.cmd = cmd;
    pkt.payload = payload;
    pkt.bank = static_cast<std::uint8_t>(bank);
    pkt.row = row;
    pkt.addr = addr;
    return pkt;
}

/** Completion stream of one vault mode: (packet id -> done tick). */
std::vector<Tick>
runVault(const QueuedVaultConfig &cfg,
         const std::vector<std::pair<Tick, Packet>> &arrivals,
         QueuedVaultStats *stats_out = nullptr)
{
    EventQueue queue;
    std::vector<std::pair<std::uint64_t, Tick>> done;
    QueuedVaultController vault(
        cfg, queue, [&done](const Packet &pkt, Tick at) {
            done.emplace_back(pkt.id, at);
        });

    std::vector<Packet> stamped;
    stamped.reserve(arrivals.size());
    std::uint64_t id = 0;
    for (const auto &[when, pkt] : arrivals) {
        (void)when;
        stamped.push_back(pkt);
        stamped.back().id = id++;
    }
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const Packet *pkt = &stamped[i];
        QueuedVaultController *vault_ptr = &vault;
        queue.schedule(arrivals[i].first, [vault_ptr, pkt] {
            ASSERT_TRUE(vault_ptr->offer(*pkt));
        });
    }
    queue.runToCompletion();

    if (stats_out)
        *stats_out = vault.stats();
    std::vector<Tick> by_id(done.size(), 0);
    for (const auto &[pkt_id, at] : done)
        by_id.at(pkt_id) = at;
    return by_id;
}

/** Micro vs batched on one schedule: completions must match exactly. */
void
expectModesIdentical(VaultConfig base,
                     const std::vector<std::pair<Tick, Packet>> &arrivals)
{
    QueuedVaultConfig micro;
    micro.base = base;
    QueuedVaultConfig batched = micro;
    batched.batched = true;

    QueuedVaultStats micro_stats, batched_stats;
    const std::vector<Tick> micro_done =
        runVault(micro, arrivals, &micro_stats);
    const std::vector<Tick> batched_done =
        runVault(batched, arrivals, &batched_stats);

    ASSERT_EQ(micro_done.size(), batched_done.size());
    for (std::size_t i = 0; i < micro_done.size(); ++i)
        ASSERT_EQ(micro_done[i], batched_done[i]) << "request " << i;
    EXPECT_EQ(micro_stats.accepted, batched_stats.accepted);
    EXPECT_EQ(micro_stats.completed, batched_stats.completed);
    EXPECT_EQ(micro_stats.busBusy, batched_stats.busBusy);
}

/** Heavy mixed random schedule over @p banks banks. */
std::vector<std::pair<Tick, Packet>>
randomSchedule(unsigned banks, int n, std::uint64_t seed,
               bool with_writes, Tick spacing = 2000)
{
    Xoshiro256StarStar rng(seed);
    std::vector<std::pair<Tick, Packet>> arrivals;
    for (int i = 0; i < n; ++i) {
        const Command cmd =
            with_writes && rng.nextBounded(3) == 0 ? Command::Write
                                                   : Command::Read;
        arrivals.emplace_back(
            static_cast<Tick>(i) * spacing,
            request(cmd, static_cast<unsigned>(rng.nextBounded(banks)),
                    static_cast<std::uint32_t>(rng.nextBounded(4096)),
                    rng.nextBounded(1u << 20) * 32));
    }
    return arrivals;
}

TEST(BatchedVault, SingleBankHmcMatchesMicroExactly)
{
    VaultConfig base;
    expectModesIdentical(base, randomSchedule(1, 2000, 11, true));
}

TEST(BatchedVault, SingleBankDdr4MatchesMicroExactly)
{
    // DDR4's shared tFAW regulator sees accepts in call order, so
    // only single-bank schedules are order-invariant between modes.
    VaultConfig base;
    base.backend.kind = BackendKind::Ddr4;
    expectModesIdentical(base, randomSchedule(1, 1500, 13, true));
}

TEST(BatchedVault, SingleBankNvmMatchesMicroExactly)
{
    VaultConfig base;
    base.backend.kind = BackendKind::Nvm;
    expectModesIdentical(base, randomSchedule(1, 1500, 17, true));
}

TEST(BatchedVault, MultiBankHmcSaturatedMatchesMicroExactly)
{
    VaultConfig base;
    expectModesIdentical(base, randomSchedule(16, 4000, 5, false));
}

TEST(BatchedVault, MultiBankHmcMixedWritesMatchMicroExactly)
{
    VaultConfig base;
    expectModesIdentical(base, randomSchedule(16, 4000, 7, true));
}

TEST(BatchedVault, MultiBankNvmDrainMatchesMicroExactly)
{
    // Finite NVM write ring: admission stalls on the oldest drain,
    // and the batched mode retires entries through stepBatch() while
    // the micro mode relies on the inline slot-reuse fallback -- the
    // timing must not care which path did the bookkeeping.
    VaultConfig base;
    base.backend.kind = BackendKind::Nvm;
    expectModesIdentical(base, randomSchedule(8, 3000, 23, true, 800));
}

TEST(BatchedVault, AtomicLatencyAppliesIdentically)
{
    VaultConfig base;
    std::vector<std::pair<Tick, Packet>> arrivals;
    for (int i = 0; i < 400; ++i) {
        arrivals.emplace_back(
            i * 1500,
            request(i % 3 == 0 ? Command::Atomic : Command::Read,
                    static_cast<unsigned>(i % 16),
                    static_cast<std::uint32_t>(i), 0, 16));
    }
    expectModesIdentical(base, arrivals);
}

TEST(BatchedVault, RefreshHorizonMatchesMicroExactly)
{
    // Long quiet gaps force refresh catch-up through stepBatch() in
    // batched mode vs lazily inside accept() in micro mode; the
    // catch-up contract says results are identical either way.
    VaultConfig base;
    std::vector<std::pair<Tick, Packet>> arrivals;
    Xoshiro256StarStar rng(29);
    Tick when = 0;
    for (int i = 0; i < 600; ++i) {
        when += (i % 50 == 0) ? 5 * tickUs : 3000;
        arrivals.emplace_back(
            when,
            request(Command::Read,
                    static_cast<unsigned>(rng.nextBounded(16)),
                    static_cast<std::uint32_t>(rng.nextBounded(4096))));
    }
    expectModesIdentical(base, arrivals);
}

TEST(BatchedVault, CheckersHoldUnderInvariantSweep)
{
    QueuedVaultConfig cfg;
    cfg.batched = true;
    EventQueue queue;
    std::uint64_t completed = 0;
    QueuedVaultController vault(
        cfg, queue, [&completed](const Packet &, Tick) { ++completed; });
    CheckerRegistry checkers;
    vault.registerCheckers(checkers, "vault");
    queue.setCheckers(&checkers, 1);

    const auto arrivals = randomSchedule(16, 1000, 31, true);
    std::vector<Packet> stamped;
    for (const auto &[when, pkt] : arrivals) {
        (void)when;
        stamped.push_back(pkt);
    }
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const Packet *pkt = &stamped[i];
        QueuedVaultController *vault_ptr = &vault;
        queue.schedule(arrivals[i].first,
                       [vault_ptr, pkt] { vault_ptr->offer(*pkt); });
    }
    queue.runToCompletion();
    EXPECT_EQ(completed, arrivals.size());
}

TEST(BatchedVault, NvmStepBatchRetiresDrainRing)
{
    // Satellite check: the batched drain path actually runs. A write
    // burst deep enough to wrap the ring forces retirements; in
    // batched mode most of them happen inside stepBatch() (the timer
    // body), and the conservation invariant drained + queued == writes
    // must hold on the live counters at every event.
    QueuedVaultConfig cfg;
    cfg.base.backend.kind = BackendKind::Nvm;
    cfg.batched = true;
    EventQueue queue;
    std::uint64_t completed = 0;
    QueuedVaultController vault(
        cfg, queue, [&completed](const Packet &, Tick) { ++completed; });
    CheckerRegistry checkers;
    vault.registerCheckers(checkers, "vault");
    queue.setCheckers(&checkers, 1);
    const int n = 200;
    std::vector<Packet> stamped;
    stamped.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        stamped.push_back(
            request(Command::Write, 0, static_cast<std::uint32_t>(i)));
    for (int i = 0; i < n; ++i) {
        const Packet *pkt = &stamped[static_cast<std::size_t>(i)];
        QueuedVaultController *vault_ptr = &vault;
        queue.schedule(static_cast<Tick>(i) * 500,
                       [vault_ptr, pkt] { vault_ptr->offer(*pkt); });
    }
    queue.runToCompletion();
    EXPECT_EQ(completed, static_cast<std::uint64_t>(n));

    const auto &nvm = static_cast<const NvmBackend &>(vault.backend());
    EXPECT_GT(nvm.drainedWrites(), 0u);
    EXPECT_EQ(nvm.drainedWrites() + nvm.queuedWrites(),
              static_cast<std::uint64_t>(n));
}

/** acceptBatch (devirtualized loop) vs virtual accept(), bit for bit. */
void
expectAcceptBatchMatches(BackendKind kind)
{
    VaultConfig base;
    base.backend.kind = kind;
    const BackendEnvironment env{base.numBanks, base.timings,
                                 base.policy, base.refreshEnabled,
                                 base.refreshMultiplier};
    auto reference = makeMemoryBackend(env, base.backend);
    auto batched = makeMemoryBackend(env, base.backend);

    Xoshiro256StarStar rng(41);
    std::vector<Packet> pkts;
    std::vector<Tick> readys;
    Tick ready = 1000;
    for (int i = 0; i < 500; ++i) {
        pkts.push_back(request(
            rng.nextBounded(4) == 0 ? Command::Write : Command::Read,
            static_cast<unsigned>(rng.nextBounded(base.numBanks)),
            static_cast<std::uint32_t>(rng.nextBounded(4096)),
            rng.nextBounded(1u << 16) * 32));
        ready += rng.nextBounded(4000);
        readys.push_back(ready);
    }

    std::vector<BatchAccess> batch(pkts.size());
    for (std::size_t i = 0; i < pkts.size(); ++i) {
        batch[i].pkt = &pkts[i];
        batch[i].ready = readys[i];
    }
    batched->acceptBatch(batch.data(), batch.size());

    for (std::size_t i = 0; i < pkts.size(); ++i) {
        const BankAccessResult ref =
            reference->accept(pkts[i], readys[i]);
        EXPECT_EQ(ref.start, batch[i].res.start) << i;
        EXPECT_EQ(ref.dataReady, batch[i].res.dataReady) << i;
        EXPECT_EQ(ref.bankFree, batch[i].res.bankFree) << i;
        EXPECT_EQ(ref.rowHit, batch[i].res.rowHit) << i;
    }
}

TEST(AcceptBatch, HmcDramMatchesVirtualLoop)
{
    expectAcceptBatchMatches(BackendKind::HmcDram);
}

TEST(AcceptBatch, Ddr4MatchesVirtualLoop)
{
    expectAcceptBatchMatches(BackendKind::Ddr4);
}

TEST(AcceptBatch, NvmMatchesVirtualLoop)
{
    expectAcceptBatchMatches(BackendKind::Nvm);
}

} // namespace
} // namespace hmcsim
