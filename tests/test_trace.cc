/**
 * @file
 * Tests for the trace substrate: parsing/formatting, synthetic
 * generators, and replay against the simulated platform.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gups/trace.hh"
#include "host/trace_replay.hh"

namespace hmcsim
{
namespace
{

// ---- Parsing ------------------------------------------------------------

TEST(TraceParse, BasicRecords)
{
    const Trace t = parseTraceString("R 0x100 128\n"
                                     "W 4096 64\n"
                                     "A 0x2000\n");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].op, Command::Read);
    EXPECT_EQ(t[0].addr, 0x100u);
    EXPECT_EQ(t[0].size, 128u);
    EXPECT_EQ(t[1].op, Command::Write);
    EXPECT_EQ(t[1].addr, 4096u);
    EXPECT_EQ(t[2].op, Command::Atomic);
    EXPECT_EQ(t[2].size, 16u);
}

TEST(TraceParse, CommentsAndBlanksIgnored)
{
    const Trace t = parseTraceString("# header\n"
                                     "\n"
                                     "R 0 16  # trailing comment\n"
                                     "   \n");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].size, 16u);
}

TEST(TraceParse, LowercaseOps)
{
    const Trace t = parseTraceString("r 0 16\nw 16 16\na 32\n");
    EXPECT_EQ(t.size(), 3u);
}

TEST(TraceParse, RejectsBadOps)
{
    EXPECT_DEATH(parseTraceString("X 0 16\n"), "unknown op");
}

TEST(TraceParse, RejectsBadSizes)
{
    EXPECT_DEATH(parseTraceString("R 0 24\n"), "bad size");
    EXPECT_DEATH(parseTraceString("R 0 256\n"), "bad size");
    EXPECT_DEATH(parseTraceString("R 0 0\n"), "bad size");
}

TEST(TraceParse, RoundTripsThroughFormat)
{
    const Trace t = parseTraceString("R 0x100 128\nW 0x200 64\nA 0x300\n");
    const Trace again = parseTraceString(formatTrace(t));
    ASSERT_EQ(again.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(again[i].op, t[i].op);
        EXPECT_EQ(again[i].addr, t[i].addr);
        EXPECT_EQ(again[i].size, t[i].size);
    }
}

// ---- Generators ------------------------------------------------------------

TEST(TraceGen, UniformCoversFootprint)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 20000;
    cfg.footprint = 1 * mib;
    const Trace t = uniformTrace(cfg);
    EXPECT_EQ(t.size(), 20000u);
    std::set<Addr> addrs;
    for (const TraceEntry &e : t) {
        EXPECT_LT(e.addr, 1u * mib);
        EXPECT_EQ(e.addr % 128, 0u);
        addrs.insert(e.addr);
    }
    // 8192 slots, 20000 draws: nearly all slots touched.
    EXPECT_GT(addrs.size(), 7000u);
}

TEST(TraceGen, WriteFractionRespected)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 20000;
    cfg.writeFraction = 0.3;
    const Trace t = uniformTrace(cfg);
    int writes = 0;
    for (const TraceEntry &e : t)
        writes += e.op == Command::Write;
    EXPECT_NEAR(writes / 20000.0, 0.3, 0.02);
}

TEST(TraceGen, StridedWalksTheFootprint)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 100;
    cfg.requestSize = 64;
    const Trace t = stridedTrace(cfg, 64);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i].addr, i * 64);
}

TEST(TraceGen, StridedWrapsAtFootprint)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 10;
    cfg.requestSize = 128;
    cfg.footprint = 512;
    const Trace t = stridedTrace(cfg, 128);
    EXPECT_EQ(t[4].addr, 0u); // wrapped after 4 slots
}

TEST(TraceGen, ZipfSkewsTowardHotObjects)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 50000;
    const Trace skewed = zipfTrace(cfg, 1.2, 1000);
    std::map<Addr, int> counts;
    for (const TraceEntry &e : skewed)
        ++counts[e.addr];
    // The hottest object dominates under alpha = 1.2.
    int hottest = 0;
    for (const auto &[addr, count] : counts)
        hottest = std::max(hottest, count);
    EXPECT_GT(hottest, 50000 / 100); // > 1 % to one object
    // alpha = 0 degenerates to uniform: hottest object ~ 1/1000.
    const Trace flat = zipfTrace(cfg, 0.0, 1000);
    counts.clear();
    for (const TraceEntry &e : flat)
        ++counts[e.addr];
    int flat_hottest = 0;
    for (const auto &[addr, count] : counts)
        flat_hottest = std::max(flat_hottest, count);
    EXPECT_LT(flat_hottest, hottest / 4);
}

TEST(TraceGen, PointerChaseVisitsDistinctSlots)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 4096;
    cfg.footprint = 4096 * 128;
    const Trace t = pointerChaseTrace(cfg);
    std::set<Addr> addrs;
    for (const TraceEntry &e : t)
        addrs.insert(e.addr);
    EXPECT_EQ(addrs.size(), 4096u); // a permutation: no repeats
}

TEST(TraceGen, Deterministic)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 100;
    const Trace a = uniformTrace(cfg);
    const Trace b = uniformTrace(cfg);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].addr, b[i].addr);
}

// ---- Replay ------------------------------------------------------------------

TEST(TraceReplay, DrainsEveryRecord)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 5000;
    const Trace t = uniformTrace(cfg);
    const TraceReplayResult r = replayTrace(t);
    EXPECT_EQ(r.latencyNs.count(), 5000u);
    EXPECT_GT(r.rawGBps, 0.0);
    EXPECT_GT(r.elapsed, 0u);
}

TEST(TraceReplay, DependentChainIsLatencyBound)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 2000;
    const Trace chase = pointerChaseTrace(cfg);
    TraceReplayConfig serial;
    serial.maxOutstanding = 1;
    const TraceReplayResult r = replayTrace(chase, serial);
    // One request at a time: throughput = 1 / round-trip.
    const double expected_mrps = 1000.0 / r.latencyNs.mean();
    EXPECT_NEAR(r.mrps, expected_mrps, expected_mrps * 0.15);
    // And far below what a 64-deep window achieves.
    const TraceReplayResult wide = replayTrace(chase);
    EXPECT_GT(wide.mrps, r.mrps * 10.0);
}

TEST(TraceReplay, WindowScalesThroughput)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 8000;
    const Trace t = uniformTrace(cfg);
    double prev = 0.0;
    for (unsigned window : {1u, 4u, 16u, 64u}) {
        TraceReplayConfig rc;
        rc.maxOutstanding = window;
        const double gbps = replayTrace(t, rc).rawGBps;
        EXPECT_GT(gbps, prev);
        prev = gbps;
    }
}

TEST(TraceReplay, MixedTraceAccounting)
{
    const Trace t = parseTraceString("R 0 128\nW 128 128\nA 256\n");
    const TraceReplayResult r = replayTrace(t);
    EXPECT_EQ(r.latencyNs.count(), 3u);
    // 160 + 160 + 48 raw bytes over the elapsed time.
    const double expected_raw = 368.0;
    EXPECT_NEAR(r.rawGBps * ticksToSeconds(r.elapsed) * 1e9,
                expected_raw, 1.0);
}

TEST(TraceReplay, HotSpotTraceIsSlowerThanUniform)
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 20000;
    const Trace uniform = uniformTrace(cfg);
    // Extreme skew: effectively one hot 128 B object -> one bank.
    const Trace hot = zipfTrace(cfg, 3.0, 1000);
    const double u = replayTrace(uniform).rawGBps;
    const double h = replayTrace(hot).rawGBps;
    EXPECT_LT(h, u * 0.5);
}

} // namespace
} // namespace hmcsim
