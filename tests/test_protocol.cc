/**
 * @file
 * Unit tests for the packet protocol: Table II flit arithmetic, raw-
 * byte accounting, effective-bandwidth math, CRC, and the tag pool.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "protocol/crc.hh"
#include "protocol/packet.hh"
#include "protocol/tag_pool.hh"

namespace hmcsim
{
namespace
{

// ---- Table II -------------------------------------------------------

TEST(PacketSizes, ReadRequestIsOneFlit)
{
    for (Bytes payload = 16; payload <= 128; payload += 16)
        EXPECT_EQ(requestFlits(Command::Read, payload), 1u);
}

TEST(PacketSizes, WriteResponseIsOneFlit)
{
    for (Bytes payload = 16; payload <= 128; payload += 16)
        EXPECT_EQ(responseFlits(Command::Write, payload), 1u);
}

TEST(PacketSizes, ReadResponseCarriesDataPlusOverhead)
{
    EXPECT_EQ(responseFlits(Command::Read, 16), 2u);
    EXPECT_EQ(responseFlits(Command::Read, 32), 3u);
    EXPECT_EQ(responseFlits(Command::Read, 64), 5u);
    EXPECT_EQ(responseFlits(Command::Read, 128), 9u);
}

TEST(PacketSizes, WriteRequestCarriesDataPlusOverhead)
{
    EXPECT_EQ(requestFlits(Command::Write, 16), 2u);
    EXPECT_EQ(requestFlits(Command::Write, 128), 9u);
}

TEST(PacketSizes, TableIIRange)
{
    // "Total Size: 1 flit requests, 2~9 flit responses" for reads.
    for (Bytes payload = 16; payload <= 128; payload += 16) {
        const unsigned resp = responseFlits(Command::Read, payload);
        EXPECT_GE(resp, 2u);
        EXPECT_LE(resp, 9u);
        const unsigned wreq = requestFlits(Command::Write, payload);
        EXPECT_GE(wreq, 2u);
        EXPECT_LE(wreq, 9u);
    }
}

TEST(PacketSizes, NonPowerOfTwoPayloadsRoundUpToFlits)
{
    EXPECT_EQ(dataFlits(48), 3u);
    EXPECT_EQ(dataFlits(80), 5u);
    EXPECT_EQ(dataFlits(112), 7u);
    EXPECT_EQ(dataFlits(1), 1u);
    EXPECT_EQ(dataFlits(0), 0u);
}

TEST(PacketSizes, TransactionByteAccounting)
{
    // Read 128 B: 1-flit request + 9-flit response = 160 B on the
    // links; this is the paper's "raw bandwidth" accounting unit.
    EXPECT_EQ(transactionBytes(Command::Read, 128), 160u);
    EXPECT_EQ(transactionBytes(Command::Write, 128), 160u);
    EXPECT_EQ(transactionBytes(Command::Read, 32), 64u);
    EXPECT_EQ(transactionBytes(Command::Read, 16), 48u);
}

TEST(PacketSizes, EffectiveBandwidthFractions)
{
    // Sec. IV-D: 128 B -> 89 %, 16 B -> 50 %.
    EXPECT_NEAR(effectiveBandwidthFraction(128), 128.0 / 144.0, 1e-12);
    EXPECT_NEAR(effectiveBandwidthFraction(16), 0.5, 1e-12);
    // Monotonically increasing in payload.
    double prev = 0.0;
    for (Bytes payload = 16; payload <= 128; payload += 16) {
        const double f = effectiveBandwidthFraction(payload);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(Packet, HelperMethodsMatchFreeFunctions)
{
    Packet pkt;
    pkt.cmd = Command::Write;
    pkt.payload = 96;
    EXPECT_EQ(pkt.reqFlits(), requestFlits(Command::Write, 96));
    EXPECT_EQ(pkt.respBytes(), responseBytes(Command::Write, 96));
}

TEST(Packet, Names)
{
    EXPECT_STREQ(commandName(Command::Read), "READ");
    EXPECT_STREQ(requestMixName(RequestMix::ReadModifyWrite), "rw");
    EXPECT_STREQ(requestMixName(RequestMix::WriteOnly), "wo");
}

// ---- CRC ------------------------------------------------------------

TEST(Crc32, DeterministicAndDataDependent)
{
    const char a[] = "hybrid memory cube";
    const char b[] = "hybrid memory cubf";
    EXPECT_EQ(Crc32::compute(a, sizeof(a)), Crc32::compute(a, sizeof(a)));
    EXPECT_NE(Crc32::compute(a, sizeof(a)), Crc32::compute(b, sizeof(b)));
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const unsigned char data[64] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    Crc32 crc;
    crc.update(data, 10);
    crc.update(data + 10, 54);
    EXPECT_EQ(crc.value(), Crc32::compute(data, 64));
}

TEST(Crc32, ResetRestartsComputation)
{
    const unsigned char data[16] = {0xAB};
    Crc32 crc;
    crc.update(data, 16);
    const std::uint32_t first = crc.value();
    crc.reset();
    crc.update(data, 16);
    EXPECT_EQ(crc.value(), first);
}

TEST(Crc32, DetectsSingleBitFlipsInAFlit)
{
    unsigned char flit[16] = {0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC,
                              0xDE, 0xF0, 0x11, 0x22, 0x33, 0x44,
                              0x55, 0x66, 0x77, 0x88};
    const std::uint32_t good = Crc32::compute(flit, sizeof(flit));
    for (int byte = 0; byte < 16; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            flit[byte] ^= static_cast<unsigned char>(1 << bit);
            EXPECT_NE(Crc32::compute(flit, sizeof(flit)), good)
                << "undetected flip at byte " << byte << " bit " << bit;
            flit[byte] ^= static_cast<unsigned char>(1 << bit);
        }
    }
}

TEST(Crc32, EmptyInput)
{
    EXPECT_EQ(Crc32::compute(nullptr, 0), Crc32().value());
}

// ---- Tag pool --------------------------------------------------------

TEST(TagPool, StartsFull)
{
    TagPool pool(64);
    EXPECT_TRUE(pool.available());
    EXPECT_EQ(pool.capacity(), 64u);
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(TagPool, ExhaustsAtDepth)
{
    TagPool pool(64);
    std::set<std::uint16_t> tags;
    for (int i = 0; i < 64; ++i)
        tags.insert(pool.allocate());
    EXPECT_EQ(tags.size(), 64u); // all distinct
    EXPECT_FALSE(pool.available());
    EXPECT_EQ(pool.inUse(), 64u);
}

TEST(TagPool, ReleaseMakesTagAvailableAgain)
{
    TagPool pool(2);
    const auto t0 = pool.allocate();
    const auto t1 = pool.allocate();
    EXPECT_FALSE(pool.available());
    pool.release(t0);
    EXPECT_TRUE(pool.available());
    const auto t2 = pool.allocate();
    EXPECT_EQ(t2, t0);
    pool.release(t1);
    pool.release(t2);
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(TagPool, TagsAreInRange)
{
    TagPool pool(16);
    for (int i = 0; i < 16; ++i)
        EXPECT_LT(pool.allocate(), 16u);
}

class TagPoolChurn : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TagPoolChurn, AllocateReleaseCyclesPreserveCapacity)
{
    const unsigned depth = GetParam();
    TagPool pool(depth);
    for (int cycle = 0; cycle < 100; ++cycle) {
        std::vector<std::uint16_t> held;
        for (unsigned i = 0; i < depth; ++i)
            held.push_back(pool.allocate());
        EXPECT_FALSE(pool.available());
        for (auto tag : held)
            pool.release(tag);
        EXPECT_EQ(pool.inUse(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, TagPoolChurn,
                         ::testing::Values(1u, 2u, 8u, 64u, 256u));

} // namespace
} // namespace hmcsim
