/**
 * @file
 * Tests of the invariant-checker subsystem itself: each checker must
 * fire on a deliberately seeded violation and stay quiet on a healthy
 * system. Checkers are the safety net for every other refactor, so
 * they get direct coverage here.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/timings.hh"
#include "hmc/queued_vault.hh"
#include "host/ac510.hh"
#include "host/experiment.hh"
#include "link/flow_control.hh"
#include "protocol/tag_pool.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"

namespace hmcsim
{
namespace
{

/** Collects violation dumps instead of aborting. */
struct CapturingRegistry
{
    CheckerRegistry registry;
    std::vector<std::string> reports;

    CapturingRegistry()
    {
        registry.setFailureHandler(
            [this](const std::string &report) {
                reports.push_back(report);
            });
    }
};

// ---------------------------------------------------------------------------
// CheckerRegistry mechanics
// ---------------------------------------------------------------------------

TEST(CheckerRegistry, QuietCheckersReportNothing)
{
    CapturingRegistry cap;
    cap.registry.addLambda("always.ok",
                           [](Tick) { return std::string(); });
    cap.registry.runAll(123);
    EXPECT_TRUE(cap.reports.empty());
    EXPECT_EQ(cap.registry.checksRun(), 1u);
    EXPECT_EQ(cap.registry.violations(), 0u);
}

TEST(CheckerRegistry, ViolationDumpNamesCheckerAndTick)
{
    CapturingRegistry cap;
    cap.registry.addLambda("healthy", [](Tick) { return std::string(); });
    cap.registry.addLambda("broken.counter", [](Tick) {
        return std::string("count went negative");
    });
    cap.registry.runAll(4567);

    ASSERT_EQ(cap.reports.size(), 1u);
    EXPECT_NE(cap.reports[0].find("tick 4567"), std::string::npos);
    EXPECT_NE(cap.reports[0].find("broken.counter"), std::string::npos);
    EXPECT_NE(cap.reports[0].find("count went negative"),
              std::string::npos);
    // The dump lists sibling checker status for context.
    EXPECT_NE(cap.reports[0].find("healthy"), std::string::npos);
    EXPECT_EQ(cap.registry.violations(), 1u);
}

// ---------------------------------------------------------------------------
// Event-queue time monotonicity
// ---------------------------------------------------------------------------

TEST(EventQueueInvariants, PastTickScheduleDies)
{
    EventQueue queue;
    queue.schedule(100, [] {});
    queue.runToCompletion();
    ASSERT_EQ(queue.now(), 100u);
    // Enqueueing an event before now() is the seeded violation: the
    // always-on check must abort the process.
    EXPECT_DEATH(queue.schedule(50, [] {}),
                 "scheduling event in the past");
}

TEST(EventQueueInvariants, CheckersRunAtDrainPoints)
{
    EventQueue queue;
    CapturingRegistry cap;
    std::uint64_t sweeps = 0;
    cap.registry.addLambda("count.sweeps", [&sweeps](Tick) {
        ++sweeps;
        return std::string();
    });
    queue.setCheckers(&cap.registry, 1);

    queue.schedule(10, [] {});
    queue.schedule(20, [] {});
    queue.runToCompletion();
    // One sweep per executed event plus one at the final drain.
    EXPECT_EQ(sweeps, 3u);
}

TEST(EventQueueInvariants, CheckEveryNThrottlesSweeps)
{
    EventQueue queue;
    CapturingRegistry cap;
    std::uint64_t sweeps = 0;
    cap.registry.addLambda("count.sweeps", [&sweeps](Tick) {
        ++sweeps;
        return std::string();
    });
    queue.setCheckers(&cap.registry, 4);

    for (Tick t = 1; t <= 8; ++t)
        queue.schedule(t, [] {});
    queue.runToCompletion();
    // Two throttled sweeps (after events 4 and 8) plus the drain.
    EXPECT_EQ(sweeps, 3u);
}

TEST(EventQueueInvariants, ViolationFiresAtOffendingTick)
{
    EventQueue queue;
    CapturingRegistry cap;
    bool broken = false;
    cap.registry.addLambda("trip.wire", [&broken](Tick) {
        return broken ? std::string("tripped") : std::string();
    });
    queue.setCheckers(&cap.registry, 1);

    queue.schedule(10, [] {});
    queue.schedule(20, [&broken] { broken = true; });
    queue.schedule(30, [] {});
    queue.runToCompletion();

    // The sweep after the tick-20 event catches the violation there,
    // not at 30 and not at the end of the run.
    ASSERT_FALSE(cap.reports.empty());
    EXPECT_NE(cap.reports[0].find("tick 20"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flow-control token conservation
// ---------------------------------------------------------------------------

TEST(TokenInvariants, ConservationHoldsThroughTraffic)
{
    TokenFlowControl fc(64);
    std::uint64_t in_flight = 0;
    TokenConservationChecker checker("link0.tokens", fc,
                                     [&in_flight] { return in_flight; });

    ASSERT_TRUE(fc.consume(9));
    in_flight += 9;
    ASSERT_TRUE(fc.consume(5));
    in_flight += 5;
    EXPECT_EQ(checker.check(0), "");

    fc.returnTokens(9);
    in_flight -= 9;
    EXPECT_EQ(checker.check(0), "");
}

TEST(TokenInvariants, LeakedTokensFire)
{
    TokenFlowControl fc(64);
    std::uint64_t in_flight = 0;
    TokenConservationChecker checker("link0.tokens", fc,
                                     [&in_flight] { return in_flight; });

    // Seeded violation: consume tokens without accounting the packet
    // as in flight -- the model "lost" 9 flits of credit.
    ASSERT_TRUE(fc.consume(9));
    const std::string report = checker.check(0);
    EXPECT_NE(report.find("token conservation broken"),
              std::string::npos);
    EXPECT_NE(report.find("leaked"), std::string::npos);
}

TEST(TokenInvariants, DuplicatedTokensFire)
{
    TokenFlowControl fc(64);
    // Seeded violation: claim flits are in flight that never consumed
    // tokens (the dual bug: returning credit twice).
    TokenConservationChecker checker("link0.tokens", fc,
                                     [] { return std::uint64_t(7); });
    const std::string report = checker.check(0);
    EXPECT_NE(report.find("duplicated"), std::string::npos);
}

TEST(TokenInvariants, OverReturnDies)
{
    TokenFlowControl fc(8);
    ASSERT_TRUE(fc.consume(4));
    EXPECT_DEATH(fc.returnTokens(5),
                 "token return exceeds buffer capacity");
}

// ---------------------------------------------------------------------------
// Tag pool: leaks and live-tag reuse
// ---------------------------------------------------------------------------

TEST(TagPoolInvariants, HealthyPoolValidates)
{
    TagPool pool(8);
    const std::uint16_t a = pool.allocate();
    const std::uint16_t b = pool.allocate();
    EXPECT_EQ(pool.validate(), "");
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.validate(), "");
}

TEST(TagPoolInvariants, LiveTagReuseFires)
{
    TagPool pool(8);
    std::uint64_t outstanding = 0;
    TagPoolChecker checker("port0.tags", pool,
                           [&outstanding] { return outstanding; });

    const std::uint16_t tag = pool.allocate();
    ++outstanding;
    EXPECT_EQ(checker.check(0), "");

    // Seeded violation: the response handler releases a tag while the
    // request is still counted outstanding -- the next allocate()
    // would hand the same identity to two live reads.
    pool.release(tag);
    const std::string report = checker.check(0);
    EXPECT_NE(report.find("tag accounting mismatch"), std::string::npos);
    EXPECT_NE(report.find("tag reuse"), std::string::npos);
}

TEST(TagPoolInvariants, TagLeakFires)
{
    TagPool pool(8);
    std::uint64_t outstanding = 0;
    TagPoolChecker checker("port0.tags", pool,
                           [&outstanding] { return outstanding; });

    // Seeded violation: a tag is allocated but the owner forgot the
    // request (e.g. dropped the packet without releasing) -- the pool
    // slowly drains and the port chokes.
    (void)pool.allocate();
    const std::string report = checker.check(0);
    EXPECT_NE(report.find("tag leak"), std::string::npos);
}

TEST(TagPoolInvariants, DoubleReleaseDies)
{
    TagPool pool(4);
    std::vector<std::uint16_t> tags;
    for (int i = 0; i < 4; ++i)
        tags.push_back(pool.allocate());
    pool.release(tags[0]);
    pool.release(tags[1]);
    pool.release(tags[2]);
    pool.release(tags[3]);
    EXPECT_DEATH(pool.release(tags[0]), "double release");
}

// ---------------------------------------------------------------------------
// Bank state-machine legality
// ---------------------------------------------------------------------------

TEST(BankInvariants, ClosedPageStaysLegalUnderTraffic)
{
    Bank bank;
    const DramTimings t = hmcGen2Timings();
    Tick ready = 0;
    for (std::uint32_t row = 0; row < 16; ++row) {
        const BankAccessResult res =
            bank.access(t, PagePolicy::Closed, ready, row, 32,
                        row % 2 == 0);
        ready = res.bankFree;
        EXPECT_EQ(bank.validate(PagePolicy::Closed), "");
    }
}

TEST(BankInvariants, OpenRowUnderClosedPolicyFires)
{
    Bank bank;
    const DramTimings t = hmcGen2Timings();
    // Seeded violation: drive the bank with open-page semantics (the
    // row stays open) while the vault believes it runs closed-page.
    bank.access(t, PagePolicy::Open, 0, 7, 32, false);
    const std::string report = bank.validate(PagePolicy::Closed);
    EXPECT_NE(report.find("left row 7 open"), std::string::npos);

    BankStateChecker checker(
        "vault0.banks", PagePolicy::Closed,
        [&bank]() -> const std::vector<Bank> & {
            static std::vector<Bank> banks;
            banks.assign(1, bank);
            return banks;
        });
    EXPECT_NE(checker.check(0).find("bank 0"), std::string::npos);
}

TEST(BankInvariants, OpenPageRowStateIsLegal)
{
    Bank bank;
    const DramTimings t = hmcGen2Timings();
    bank.access(t, PagePolicy::Open, 0, 7, 32, false);
    EXPECT_EQ(bank.validate(PagePolicy::Open), "");
}

// ---------------------------------------------------------------------------
// Vault queue occupancy bounds
// ---------------------------------------------------------------------------

TEST(VaultInvariants, QueuedVaultStaysWithinBounds)
{
    EventQueue queue;
    QueuedVaultConfig cfg;
    cfg.perBankQueueDepth = 4;
    cfg.busQueueLimit = 4;
    std::uint64_t completed = 0;
    QueuedVaultController vault(
        cfg, queue, [&completed](const Packet &, Tick) { ++completed; });

    CapturingRegistry cap;
    vault.registerCheckers(cap.registry, "vault0");
    queue.setCheckers(&cap.registry, 1);

    for (unsigned i = 0; i < 64; ++i) {
        Packet pkt;
        pkt.id = i;
        pkt.cmd = Command::Read;
        pkt.addr = i * 256;
        pkt.bank = i % cfg.base.numBanks;
        pkt.row = i;
        pkt.payload = 32;
        vault.offer(pkt);
        queue.runUntil(queue.now() + 1000);
    }
    queue.runToCompletion();

    EXPECT_TRUE(cap.reports.empty()) << cap.reports.front();
    EXPECT_GT(completed, 0u);
    EXPECT_GT(cap.registry.checksRun(), 0u);
}

TEST(VaultInvariants, AnalyticVaultCheckersStayQuiet)
{
    VaultConfig cfg;
    VaultController vault(cfg);
    CapturingRegistry cap;
    vault.registerCheckers(cap.registry, "vault0");

    Packet pkt;
    pkt.cmd = Command::Read;
    pkt.payload = 128;
    for (unsigned i = 0; i < 32; ++i) {
        pkt.bank = i % cfg.numBanks;
        pkt.row = i;
        vault.service(pkt, i * 1000);
    }
    cap.registry.runAll(100000);
    EXPECT_TRUE(cap.reports.empty()) << cap.reports.front();
}

// ---------------------------------------------------------------------------
// Full system: a healthy run never trips a checker
// ---------------------------------------------------------------------------

TEST(SystemInvariants, FullSystemRunIsClean)
{
    Ac510Config sys;
    sys.numPorts = 4;
    sys.port.mix = RequestMix::ReadModifyWrite;
    Ac510Module module(sys);

    // Force the full sweep on regardless of build type, capturing
    // instead of aborting so a regression reports nicely.
    module.enableInvariantChecks(8);
    std::vector<std::string> reports;
    module.checkers().setFailureHandler(
        [&reports](const std::string &r) { reports.push_back(r); });

    module.start();
    module.runUntil(50 * tickUs);
    module.stop();
    module.runToCompletion();

    EXPECT_TRUE(reports.empty()) << reports.front();
    EXPECT_GT(module.checkers().checksRun(), 0u);
    EXPECT_GT(module.aggregateStats().readsCompleted, 0u);
}

TEST(SystemInvariants, FlowControlledSystemRunIsClean)
{
    Ac510Config sys;
    sys.numPorts = 9;
    // Engage the token flow-control path with a tight buffer so the
    // stop signal actually asserts during the run.
    sys.controller.inputBufferFlits = 32;
    Ac510Module module(sys);

    module.enableInvariantChecks(4);
    std::vector<std::string> reports;
    module.checkers().setFailureHandler(
        [&reports](const std::string &r) { reports.push_back(r); });

    module.start();
    module.runUntil(50 * tickUs);
    module.stop();
    module.runToCompletion();

    EXPECT_TRUE(reports.empty()) << reports.front();
    EXPECT_GT(module.controller().stats().flowControlStalls, 0u);
}

// ---------------------------------------------------------------------------
// Determinism self-check
// ---------------------------------------------------------------------------

TEST(SelfCheck, BackToBackRunsAreBitIdentical)
{
    ExperimentConfig cfg;
    cfg.numPorts = 2;
    cfg.warmup = 5 * tickUs;
    cfg.measure = 20 * tickUs;
    const SelfCheckResult res = runSelfCheck(cfg);
    EXPECT_TRUE(res.identical())
        << "first mismatch: " << res.firstMismatch;
    EXPECT_GT(res.numStats, 0u);
    EXPECT_EQ(res.digestFirst, res.digestSecond);
}

TEST(SelfCheck, DigestIsSensitiveToValues)
{
    StatRegistry a;
    double va = 1.0;
    a.addValue("x", "", &va);
    const std::uint64_t d1 = a.digest();
    va = 2.0;
    const std::uint64_t d2 = a.digest();
    EXPECT_NE(d1, d2);
}

TEST(SelfCheck, DigestIgnoresRegistrationOrder)
{
    double x = 3.5, y = -7.25;
    StatRegistry a;
    a.addValue("alpha", "", &x);
    a.addValue("beta", "", &y);
    StatRegistry b;
    b.addValue("beta", "", &y);
    b.addValue("alpha", "", &x);
    EXPECT_EQ(a.digest(), b.digest());
}

} // namespace
} // namespace hmcsim
