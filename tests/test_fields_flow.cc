/**
 * @file
 * Tests for the bit-level packet fields and the link-layer flow
 * control / retry machinery.
 */

#include <gtest/gtest.h>

#include <set>

#include "link/flow_control.hh"
#include "protocol/fields.hh"
#include "sim/random.hh"

namespace hmcsim
{
namespace
{

// ---- Header/tail encoding ------------------------------------------------

TEST(Fields, HeaderRoundTrip)
{
    RequestHeader h;
    h.cub = 5;
    h.adrs = 0x3FFFFFFFFULL; // all 34 bits
    h.tag = 0x7FF;
    h.lng = 9;
    h.cmd = 0x37;
    const RequestHeader back = decodeRequestHeader(encodeRequestHeader(h));
    EXPECT_EQ(back.cub, h.cub);
    EXPECT_EQ(back.adrs, h.adrs);
    EXPECT_EQ(back.tag, h.tag);
    EXPECT_EQ(back.lng, h.lng);
    EXPECT_EQ(back.cmd, h.cmd);
}

TEST(Fields, HeaderRoundTripFuzz)
{
    Xoshiro256StarStar rng(21);
    for (int i = 0; i < 2000; ++i) {
        RequestHeader h;
        h.cub = static_cast<std::uint8_t>(rng.nextBounded(8));
        h.adrs = rng.nextBounded(1ULL << 34);
        h.tag = static_cast<std::uint16_t>(rng.nextBounded(2048));
        h.lng = static_cast<std::uint8_t>(rng.nextBounded(32));
        h.cmd = static_cast<std::uint8_t>(rng.nextBounded(128));
        const RequestHeader back =
            decodeRequestHeader(encodeRequestHeader(h));
        ASSERT_EQ(back.adrs, h.adrs);
        ASSERT_EQ(back.tag, h.tag);
        ASSERT_EQ(back.cmd, h.cmd);
        ASSERT_EQ(back.lng, h.lng);
        ASSERT_EQ(back.cub, h.cub);
    }
}

TEST(Fields, TailRoundTrip)
{
    PacketTail t;
    t.crc = 0xDEADBEEF;
    t.rtc = 31;
    t.slid = 7;
    t.seq = 5;
    t.frp = 200;
    t.rrp = 100;
    const PacketTail back = decodePacketTail(encodePacketTail(t));
    EXPECT_EQ(back.crc, t.crc);
    EXPECT_EQ(back.rtc, t.rtc);
    EXPECT_EQ(back.slid, t.slid);
    EXPECT_EQ(back.seq, t.seq);
    EXPECT_EQ(back.frp, t.frp);
    EXPECT_EQ(back.rrp, t.rrp);
}

TEST(Fields, FieldsDoNotOverlap)
{
    // Setting one field must not perturb others.
    RequestHeader zero{0, 0, 0, 0, 0};
    RequestHeader only_tag = zero;
    only_tag.tag = 0x7FF;
    const std::uint64_t bits = encodeRequestHeader(only_tag);
    const RequestHeader back = decodeRequestHeader(bits);
    EXPECT_EQ(back.tag, 0x7FF);
    EXPECT_EQ(back.adrs, 0u);
    EXPECT_EQ(back.cmd, 0u);
    EXPECT_EQ(back.cub, 0u);
}

TEST(Fields, CommandCodes)
{
    EXPECT_EQ(commandCode(Command::Read, 16), CommandCode::RD16);
    EXPECT_EQ(static_cast<std::uint8_t>(commandCode(Command::Read, 128)),
              static_cast<std::uint8_t>(CommandCode::RD16) + 7);
    EXPECT_EQ(commandCode(Command::Write, 16), CommandCode::WR16);
    EXPECT_EQ(commandCode(Command::Atomic, 16),
              CommandCode::Atomic2Add8);
}

TEST(Fields, CommandCodeRoundTrip)
{
    for (Command cmd :
         {Command::Read, Command::Write, Command::Atomic}) {
        for (Bytes payload = 16; payload <= 128; payload += 16) {
            if (cmd == Command::Atomic && payload != 16)
                continue;
            const auto code = static_cast<std::uint8_t>(
                commandCode(cmd, payload));
            EXPECT_EQ(commandClass(code), cmd);
            EXPECT_EQ(payloadForCode(code), payload);
        }
    }
}

TEST(Fields, MakeRequestHeaderFromPacket)
{
    Packet pkt;
    pkt.cmd = Command::Write;
    pkt.addr = 0x12345678;
    pkt.payload = 64;
    pkt.tag = 42;
    const RequestHeader h = makeRequestHeader(pkt, 2);
    EXPECT_EQ(h.adrs, 0x12345678u);
    EXPECT_EQ(h.tag, 42u);
    EXPECT_EQ(h.lng, 5u); // 1 + 4 data flits
    EXPECT_EQ(commandClass(h.cmd), Command::Write);
    EXPECT_EQ(h.cub, 2u);
}

TEST(Fields, CrcDistinguishesPackets)
{
    Packet a;
    a.id = 1;
    a.addr = 0x1000;
    a.payload = 128;
    Packet b = a;
    b.id = 2;
    const std::uint64_t ha = encodeRequestHeader(makeRequestHeader(a));
    const std::uint64_t hb = encodeRequestHeader(makeRequestHeader(b));
    EXPECT_NE(packetCrc(a, ha), packetCrc(b, hb));
    // Same packet -> same CRC.
    EXPECT_EQ(packetCrc(a, ha), packetCrc(a, ha));
}

// ---- Token flow control ----------------------------------------------------

TEST(TokenFlow, ConsumeAndReturn)
{
    TokenFlowControl fc(16);
    EXPECT_TRUE(fc.consume(9));
    EXPECT_EQ(fc.tokens(), 7u);
    EXPECT_FALSE(fc.consume(9)); // insufficient: stop signal
    EXPECT_EQ(fc.tokens(), 7u);  // nothing consumed on failure
    fc.returnTokens(9);
    EXPECT_TRUE(fc.consume(9));
}

TEST(TokenFlow, StopsAtZero)
{
    TokenFlowControl fc(4);
    EXPECT_TRUE(fc.consume(4));
    EXPECT_TRUE(fc.stopped());
    fc.returnTokens(1);
    EXPECT_FALSE(fc.stopped());
}

TEST(TokenFlow, OverReturnIsFatal)
{
    TokenFlowControl fc(4);
    EXPECT_DEATH(fc.returnTokens(1), "exceeds buffer capacity");
}

TEST(TokenFlow, ConservationUnderChurn)
{
    TokenFlowControl fc(64);
    Xoshiro256StarStar rng(3);
    unsigned in_flight = 0;
    for (int i = 0; i < 10000; ++i) {
        const unsigned flits = 1 + rng.nextBounded(9);
        if (fc.consume(flits)) {
            in_flight += flits;
        } else if (in_flight > 0) {
            fc.returnTokens(in_flight);
            in_flight = 0;
        }
        EXPECT_EQ(fc.tokens() + in_flight, 64u);
    }
}

// ---- Retry buffer ------------------------------------------------------------

TEST(RetryBufferTest, SequenceNumbersWrapAt8)
{
    RetryBuffer buf(32);
    for (int i = 0; i < 20; ++i) {
        const std::uint8_t seq =
            buf.push(static_cast<std::uint64_t>(i), 2);
        EXPECT_EQ(seq, i % 8);
    }
}

TEST(RetryBufferTest, AcknowledgeReleasesInOrder)
{
    RetryBuffer buf(8);
    for (int i = 0; i < 5; ++i)
        buf.push(i, 1);
    EXPECT_EQ(buf.occupancy(), 5u);
    // Ack through the third packet (pointers 0,1,2).
    EXPECT_EQ(buf.acknowledge(2), 3u);
    EXPECT_EQ(buf.occupancy(), 2u);
    EXPECT_EQ(buf.acknowledge(4), 2u);
    EXPECT_EQ(buf.occupancy(), 0u);
}

TEST(RetryBufferTest, PointerWraparound)
{
    RetryBuffer buf(4);
    // Push/ack 300 packets: pointers wrap the 8-bit space.
    for (int i = 0; i < 300; ++i) {
        buf.push(i, 1);
        EXPECT_EQ(buf.acknowledge(buf.lastPointer()), 1u);
    }
    EXPECT_EQ(buf.occupancy(), 0u);
}

TEST(RetryBufferTest, RetryReplaysFromFailurePointOnward)
{
    RetryBuffer buf(8);
    std::uint8_t seqs[5];
    for (int i = 0; i < 5; ++i)
        seqs[i] = buf.push(100 + i, 2);
    // Packet 2 failed CRC: replay 2, 3, 4 in order.
    const auto replay = buf.retryFrom(seqs[2]);
    ASSERT_EQ(replay.size(), 3u);
    EXPECT_EQ(replay[0].packetId, 102u);
    EXPECT_EQ(replay[1].packetId, 103u);
    EXPECT_EQ(replay[2].packetId, 104u);
    EXPECT_EQ(buf.retransmissions(), 3u);
    // The entries stay buffered until acknowledged.
    EXPECT_EQ(buf.occupancy(), 5u);
}

TEST(RetryBufferTest, FullBufferBlocksTransmit)
{
    RetryBuffer buf(2);
    buf.push(0, 1);
    buf.push(1, 1);
    EXPECT_FALSE(buf.hasSpace());
    buf.acknowledge(buf.lastPointer());
    EXPECT_TRUE(buf.hasSpace());
}

TEST(RetryBufferTest, RejectsBadDepths)
{
    EXPECT_DEATH(RetryBuffer buf(0), "1..255");
    EXPECT_DEATH(RetryBuffer buf(256), "1..255");
}

/** End-to-end protocol exchange: transmitter + receiver over a lossy
 *  wire; every packet must arrive exactly once, in order, and token
 *  accounting must balance throughout. */
TEST(LinkProtocol, LossyExchangeDeliversInOrderExactlyOnce)
{
    Xoshiro256StarStar rng(77);
    TokenFlowControl tokens(64);
    RetryBuffer retry(16);

    // The test's own mirror of what is unacknowledged on the wire.
    std::deque<RetryEntry> in_flight;
    std::vector<std::uint64_t> delivered;
    std::uint64_t next_to_send = 0;
    const std::uint64_t total = 500;

    while (delivered.size() < total) {
        // Transmit while tokens and retry space allow.
        while (next_to_send < total && retry.hasSpace() &&
               tokens.consume(2)) {
            const std::uint8_t seq = retry.push(next_to_send, 2);
            in_flight.push_back({next_to_send, seq, 2});
            ++next_to_send;
        }
        ASSERT_FALSE(in_flight.empty());
        const RetryEntry head = in_flight.front();

        if (rng.nextDouble() < 0.15) {
            // CRC failure on the oldest packet: go-back-N. The retry
            // buffer must offer exactly the unacknowledged window, in
            // order, starting at the failed sequence number.
            const auto replay = retry.retryFrom(head.seq);
            ASSERT_EQ(replay.size(), retry.occupancy());
            ASSERT_EQ(replay.front().packetId, head.packetId);
            for (std::size_t i = 0; i < replay.size(); ++i)
                ASSERT_EQ(replay[i].packetId, in_flight[i].packetId);
            continue; // resent; next iteration delivers it
        }

        // Clean delivery of the oldest packet: receiver returns its
        // tokens and acknowledges via the head's retry pointer
        // (lastPointer minus the younger in-flight packets, 8-bit
        // wrap-aware).
        delivered.push_back(head.packetId);
        const std::uint8_t head_ptr = static_cast<std::uint8_t>(
            retry.lastPointer() -
            static_cast<std::uint8_t>(retry.occupancy() - 1));
        ASSERT_EQ(retry.acknowledge(head_ptr), 1u);
        tokens.returnTokens(2);
        in_flight.pop_front();

        // Token conservation at every step.
        ASSERT_EQ(tokens.tokens() + 2 * in_flight.size(), 64u);
    }

    ASSERT_EQ(delivered.size(), total);
    for (std::uint64_t i = 0; i < total; ++i)
        EXPECT_EQ(delivered[i], i);
    EXPECT_GT(retry.retransmissions(), 0u);
}

} // namespace
} // namespace hmcsim
