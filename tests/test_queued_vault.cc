/**
 * @file
 * Tests for the event-driven queued vault, including cross-validation
 * against the analytic VaultController.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "hmc/queued_vault.hh"
#include "hmc/vault_controller.hh"
#include "sim/random.hh"

namespace hmcsim
{
namespace
{

Packet
read128(unsigned bank, std::uint32_t row, Addr addr = 0)
{
    Packet pkt;
    pkt.cmd = Command::Read;
    pkt.payload = 128;
    pkt.bank = static_cast<std::uint8_t>(bank);
    pkt.row = row;
    pkt.addr = addr;
    return pkt;
}

/** Drive both models with the same arrival schedule; return the
 *  completion times of each. */
struct CrossRun
{
    std::vector<Tick> analytic;
    std::vector<Tick> queued;
};

CrossRun
crossValidate(const std::vector<std::pair<Tick, Packet>> &arrivals)
{
    CrossRun out;

    // Analytic model: completions computed at arrival.
    VaultConfig cfg;
    VaultController analytic(cfg);
    for (const auto &[when, pkt] : arrivals)
        out.analytic.push_back(analytic.service(pkt, when));

    // Queued model: completions delivered by events.
    EventQueue queue;
    QueuedVaultConfig qcfg;
    qcfg.base = cfg;
    std::vector<std::pair<std::uint64_t, Tick>> done;
    QueuedVaultController queued(
        qcfg, queue, [&done](const Packet &pkt, Tick at) {
            done.emplace_back(pkt.id, at);
        });
    // Arrival packets live outside the event captures: a by-value
    // Packet no longer fits the Event inline budget (sim/event.hh).
    std::vector<Packet> stamped;
    stamped.reserve(arrivals.size());
    std::uint64_t id = 0;
    for (const auto &[when, pkt] : arrivals) {
        (void)when;
        stamped.push_back(pkt);
        stamped.back().id = id++;
    }
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const Packet *pkt = &stamped[i];
        queue.schedule(arrivals[i].first, [&queued, pkt] {
            ASSERT_TRUE(queued.offer(*pkt));
        });
    }
    queue.runToCompletion();

    out.queued.resize(done.size());
    for (const auto &[pkt_id, at] : done)
        out.queued.at(pkt_id) = at;
    return out;
}

TEST(QueuedVault, SingleBankMatchesAnalyticExactly)
{
    std::vector<std::pair<Tick, Packet>> arrivals;
    for (int i = 0; i < 200; ++i)
        arrivals.emplace_back(i * 1000, read128(0, i));
    const CrossRun run = crossValidate(arrivals);
    ASSERT_EQ(run.analytic.size(), run.queued.size());
    for (std::size_t i = 0; i < run.analytic.size(); ++i)
        EXPECT_EQ(run.analytic[i], run.queued[i]) << "request " << i;
}

TEST(QueuedVault, PerBankSerializedMatchesAnalyticExactly)
{
    // Round-robin across banks with arrivals spaced so data-ready
    // order equals arrival order: both models must agree exactly.
    std::vector<std::pair<Tick, Packet>> arrivals;
    for (int i = 0; i < 256; ++i)
        arrivals.emplace_back(i * 60000, read128(i % 16, i / 16));
    const CrossRun run = crossValidate(arrivals);
    for (std::size_t i = 0; i < run.analytic.size(); ++i)
        EXPECT_EQ(run.analytic[i], run.queued[i]) << "request " << i;
}

TEST(QueuedVault, SaturatedRandomThroughputWithinTolerance)
{
    // Mixed random traffic at saturation: bus-arbitration order
    // differs between the models, but sustained throughput must
    // agree within a few percent.
    Xoshiro256StarStar rng(5);
    std::vector<std::pair<Tick, Packet>> arrivals;
    for (int i = 0; i < 4000; ++i) {
        arrivals.emplace_back(
            i * 2000, read128(static_cast<unsigned>(rng.nextBounded(16)),
                              static_cast<std::uint32_t>(
                                  rng.nextBounded(4096)),
                              rng.nextBounded(1u << 20) * 32));
    }
    const CrossRun run = crossValidate(arrivals);
    const Tick analytic_end =
        *std::max_element(run.analytic.begin(), run.analytic.end());
    const Tick queued_end =
        *std::max_element(run.queued.begin(), run.queued.end());
    const double ratio = static_cast<double>(analytic_end) /
                         static_cast<double>(queued_end);
    EXPECT_NEAR(ratio, 1.0, 0.03);
}

TEST(QueuedVault, FiniteQueueBackpressures)
{
    EventQueue queue;
    QueuedVaultConfig cfg;
    cfg.perBankQueueDepth = 4;
    unsigned completed = 0;
    QueuedVaultController vault(
        cfg, queue, [&completed](const Packet &, Tick) { ++completed; });

    // Flood bank 0 at time zero: depth 4 plus the one in service.
    unsigned accepted = 0;
    for (int i = 0; i < 20; ++i)
        accepted += vault.offer(read128(0, i));
    EXPECT_LT(accepted, 20u);
    EXPECT_GE(accepted, 4u);
    EXPECT_EQ(vault.stats().rejected, 20u - accepted);
    queue.runToCompletion();
    EXPECT_EQ(completed, accepted);
}

TEST(QueuedVault, QueueDrainsAndReaccepts)
{
    EventQueue queue;
    QueuedVaultConfig cfg;
    cfg.perBankQueueDepth = 2;
    QueuedVaultController vault(cfg, queue,
                                [](const Packet &, Tick) {});
    for (int i = 0; i < 3; ++i)
        vault.offer(read128(0, i));
    EXPECT_FALSE(vault.offer(read128(0, 99)));
    queue.runToCompletion();
    EXPECT_EQ(vault.queueDepth(0), 0u);
    EXPECT_TRUE(vault.offer(read128(0, 100)));
}

TEST(QueuedVault, BusBusyTimeMatchesWorkDone)
{
    EventQueue queue;
    QueuedVaultConfig cfg;
    QueuedVaultController vault(cfg, queue,
                                [](const Packet &, Tick) {});
    const int n = 50;
    for (int i = 0; i < n; ++i)
        vault.offer(read128(i % 16, 0));
    queue.runToCompletion();
    // Each 128 B read moves 4 data beats + 1 command beat = 160 bus
    // bytes at 10 GB/s = 16 ns.
    EXPECT_EQ(vault.stats().busBusy,
              static_cast<Tick>(n) * nsToTicks(16.0));
    EXPECT_EQ(vault.stats().completed, static_cast<std::uint64_t>(n));
}

TEST(QueuedVault, BusStageBackpressureBoundsOccupancy)
{
    // With a finite bank-to-bus stage, a saturating source cannot
    // pile unbounded work between the banks and the bus.
    EventQueue queue;
    QueuedVaultConfig cfg;
    cfg.perBankQueueDepth = 8;
    cfg.busQueueLimit = 4;
    std::uint64_t completed = 0;
    double residence_sum = 0.0;
    QueuedVaultController *vault_ptr = nullptr;
    std::function<void()> refill;
    QueuedVaultController vault(
        cfg, queue, [&](const Packet &pkt, Tick at) {
            ++completed;
            residence_sum += ticksToUs(at - pkt.tVaultArrive);
            refill();
        });
    vault_ptr = &vault;
    refill = [&] {
        for (unsigned b = 0; b < 8; ++b) {
            Packet pkt;
            pkt.cmd = Command::Read;
            pkt.payload = 128;
            pkt.bank = static_cast<std::uint8_t>(b);
            pkt.row = static_cast<std::uint32_t>(completed + b);
            vault_ptr->offer(pkt);
        }
    };
    queue.schedule(0, refill);
    queue.runUntil(500 * tickUs);
    ASSERT_GT(completed, 1000u);
    // Mean residence stays bounded (queue depth x service), far from
    // the unbounded growth an infinite stage would show.
    EXPECT_LT(residence_sum / static_cast<double>(completed), 5.0);
}

TEST(QueuedVault, DistinctBanksOverlapLikeAnalytic)
{
    // 8 requests to 8 banks complete far sooner than 8 to one bank.
    EventQueue q1, q2;
    QueuedVaultConfig cfg;
    Tick last_spread = 0, last_single = 0;
    QueuedVaultController spread(
        cfg, q1, [&](const Packet &, Tick at) { last_spread = at; });
    QueuedVaultController single(
        cfg, q2, [&](const Packet &, Tick at) { last_single = at; });
    for (int i = 0; i < 8; ++i) {
        spread.offer(read128(i, 0));
        single.offer(read128(0, i));
    }
    q1.runToCompletion();
    q2.runToCompletion();
    EXPECT_LT(last_spread, last_single);
}

} // namespace
} // namespace hmcsim
