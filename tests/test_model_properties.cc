/**
 * @file
 * Parameterized property suites over the models: address-mapper
 * uniformity for every (max block, scheme) combination, thermal
 * closed-form vs transient agreement over a (cooling, power) grid,
 * and experiment determinism across request mixes.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "hmc/address_mapper.hh"
#include "host/experiment.hh"
#include "sim/random.hh"
#include "thermal/thermal_model.hh"

namespace hmcsim
{
namespace
{

// ---- Mapper uniformity over (max block, scheme) -------------------------

struct MapperParam
{
    MaxBlockSize maxBlock;
    MappingScheme scheme;
};

class MapperUniformity : public ::testing::TestWithParam<MapperParam>
{
};

TEST_P(MapperUniformity, RandomAddressesSpreadEvenly)
{
    const MapperParam p = GetParam();
    const HmcConfig cfg = HmcConfig::gen2_4GB();
    const AddressMapper mapper(cfg, p.maxBlock, 256, p.scheme);
    Xoshiro256StarStar rng(33);

    std::map<unsigned, unsigned> vault_counts;
    const int n = 64000;
    for (int i = 0; i < n; ++i) {
        const DecodedAddress d = mapper.decode(
            rng.nextBounded(cfg.capacity / 16) * 16);
        ++vault_counts[d.vault];
    }
    ASSERT_EQ(vault_counts.size(), 16u);
    // Chi-square-lite: every vault within 10 % of the fair share.
    for (const auto &[vault, count] : vault_counts) {
        EXPECT_NEAR(static_cast<double>(count), n / 16.0, n / 16.0 * 0.1)
            << "vault " << vault;
    }
}

TEST_P(MapperUniformity, DecodeIsAFunctionOfImplementedBits)
{
    const MapperParam p = GetParam();
    const HmcConfig cfg = HmcConfig::gen2_4GB();
    const AddressMapper mapper(cfg, p.maxBlock, 256, p.scheme);
    Xoshiro256StarStar rng(44);
    for (int i = 0; i < 3000; ++i) {
        const Addr addr = rng.nextBounded(cfg.capacity);
        const DecodedAddress a = mapper.decode(addr);
        const DecodedAddress b = mapper.decode(addr | (Addr(0x3) << 32));
        ASSERT_EQ(a.vault, b.vault);
        ASSERT_EQ(a.bank, b.bank);
        ASSERT_EQ(a.row, b.row);
        ASSERT_EQ(a.column, b.column);
    }
}

TEST_P(MapperUniformity, BankLocalAddressesNeverExceedBankSize)
{
    const MapperParam p = GetParam();
    const HmcConfig cfg = HmcConfig::gen2_4GB();
    const AddressMapper mapper(cfg, p.maxBlock, 256, p.scheme);
    const Bytes rows_per_bank = cfg.bankBytes() / 256;
    Xoshiro256StarStar rng(55);
    for (int i = 0; i < 3000; ++i) {
        const DecodedAddress d =
            mapper.decode(rng.nextBounded(cfg.capacity));
        ASSERT_LT(d.row, rows_per_bank);
        ASSERT_LT(d.column, 256u);
    }
}

std::string
mapperName(const ::testing::TestParamInfo<MapperParam> &info)
{
    std::string name =
        "B" + std::to_string(static_cast<unsigned>(info.param.maxBlock));
    switch (info.param.scheme) {
      case MappingScheme::VaultFirst:
        name += "_vaultfirst";
        break;
      case MappingScheme::BankFirst:
        name += "_bankfirst";
        break;
      case MappingScheme::ContiguousVault:
        name += "_contig";
        break;
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, MapperUniformity,
    ::testing::Values(
        MapperParam{MaxBlockSize::B16, MappingScheme::VaultFirst},
        MapperParam{MaxBlockSize::B32, MappingScheme::VaultFirst},
        MapperParam{MaxBlockSize::B64, MappingScheme::VaultFirst},
        MapperParam{MaxBlockSize::B128, MappingScheme::VaultFirst},
        MapperParam{MaxBlockSize::B128, MappingScheme::BankFirst},
        MapperParam{MaxBlockSize::B32, MappingScheme::BankFirst},
        MapperParam{MaxBlockSize::B128, MappingScheme::ContiguousVault},
        MapperParam{MaxBlockSize::B16, MappingScheme::ContiguousVault}),
    mapperName);

// ---- Thermal closed form vs transient over a grid --------------------------

struct ThermalParam
{
    unsigned cooling;
    double powerW;
};

class ThermalGrid : public ::testing::TestWithParam<ThermalParam>
{
};

TEST_P(ThermalGrid, TransientSettlesOnTheClosedForm)
{
    const ThermalParam p = GetParam();
    const ThermalModel model(coolingConfig(p.cooling));
    const double target =
        model.steadyState(p.powerW, RequestMix::ReadOnly).temperatureC;
    double temp = coolingConfig(p.cooling).idleTemperatureC;
    for (int s = 0; s < 400; ++s)
        temp = model.step(temp, p.powerW, 1.0);
    EXPECT_NEAR(temp, target, 0.05)
        << "Cfg" << p.cooling << " @ " << p.powerW << " W";
}

std::string
thermalName(const ::testing::TestParamInfo<ThermalParam> &info)
{
    return "Cfg" + std::to_string(info.param.cooling) + "_" +
           std::to_string(static_cast<int>(info.param.powerW * 10)) +
           "dW";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThermalGrid,
    ::testing::Values(ThermalParam{1, 0.5}, ThermalParam{1, 4.0},
                      ThermalParam{2, 2.0}, ThermalParam{2, 7.0},
                      ThermalParam{3, 1.0}, ThermalParam{3, 6.0},
                      ThermalParam{4, 0.5}, ThermalParam{4, 3.0}),
    thermalName);

// ---- Experiment determinism across mixes -----------------------------------

class MixDeterminism : public ::testing::TestWithParam<RequestMix>
{
};

TEST_P(MixDeterminism, IdenticalSeedsIdenticalResults)
{
    ExperimentConfig cfg;
    cfg.mix = GetParam();
    cfg.measure = 150 * tickUs;
    cfg.seed = 777;
    const MeasurementResult a = runExperiment(cfg);
    const MeasurementResult b = runExperiment(cfg);
    EXPECT_DOUBLE_EQ(a.rawGBps, b.rawGBps);
    EXPECT_DOUBLE_EQ(a.mrps, b.mrps);
    EXPECT_DOUBLE_EQ(a.readLatencyNs.mean(), b.readLatencyNs.mean());
    EXPECT_DOUBLE_EQ(a.writeLatencyNs.mean(), b.writeLatencyNs.mean());
}

TEST_P(MixDeterminism, DifferentSeedsSameSteadyState)
{
    // Bandwidth is a property of the configuration, not the seed: two
    // different random streams must land on the same steady state.
    ExperimentConfig a_cfg;
    a_cfg.mix = GetParam();
    a_cfg.measure = 300 * tickUs;
    a_cfg.seed = 1;
    ExperimentConfig b_cfg = a_cfg;
    b_cfg.seed = 999;
    const double a = runExperiment(a_cfg).rawGBps;
    const double b = runExperiment(b_cfg).rawGBps;
    EXPECT_NEAR(a, b, a * 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, MixDeterminism,
    ::testing::Values(RequestMix::ReadOnly, RequestMix::WriteOnly,
                      RequestMix::ReadModifyWrite, RequestMix::Atomic),
    [](const ::testing::TestParamInfo<RequestMix> &info) {
        return std::string(requestMixName(info.param));
    });

} // namespace
} // namespace hmcsim
