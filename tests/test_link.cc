/**
 * @file
 * Unit tests for the link layer: Eq. 2 peak-bandwidth arithmetic,
 * throughput-regulator queuing behavior, and link-direction latency.
 */

#include <gtest/gtest.h>

#include "link/link.hh"
#include "sim/types.hh"

namespace hmcsim
{
namespace
{

TEST(LinkConfig, Equation2PeakBandwidth)
{
    // 2 links x 8 lanes x 15 Gbps x 2 (full duplex) = 60 GB/s.
    LinkConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.peakBidirectionalBytesPerSecond(), 60e9);
    EXPECT_DOUBLE_EQ(cfg.rawLinkBytesPerSecond(), 15e9);
}

TEST(LinkConfig, FourLinkFullWidthConfiguration)
{
    LinkConfig cfg;
    cfg.numLinks = 4;
    cfg.lanesPerLink = 16;
    cfg.gbpsPerLane = 10.0;
    // 4 x 16 x 10 Gbps x 2 = 1280 Gbps = 160 GB/s.
    EXPECT_DOUBLE_EQ(cfg.peakBidirectionalBytesPerSecond(), 160e9);
}

TEST(LinkConfig, EfficiencyDeratesEffectiveRate)
{
    LinkConfig cfg;
    cfg.protocolEfficiency = 0.5;
    EXPECT_DOUBLE_EQ(cfg.effectiveLinkBytesPerSecond(), 7.5e9);
}

TEST(ThroughputRegulator, IdleResourceAddsOnlyServiceTime)
{
    ThroughputRegulator reg(1e9); // 1 byte per ns
    const Tick done = reg.admit(1000, 100.0);
    EXPECT_EQ(done, 1000u + 100u * tickNs);
}

TEST(ThroughputRegulator, BackToBackLoadsQueue)
{
    ThroughputRegulator reg(1e9);
    const Tick first = reg.admit(0, 50.0);
    const Tick second = reg.admit(0, 50.0);
    EXPECT_EQ(first, 50u * tickNs);
    EXPECT_EQ(second, 100u * tickNs); // waited for the first
}

TEST(ThroughputRegulator, GapsDrainTheQueue)
{
    ThroughputRegulator reg(1e9);
    reg.admit(0, 10.0);
    // Arrives long after the first finished: no queuing.
    const Tick done = reg.admit(1000 * tickNs, 10.0);
    EXPECT_EQ(done, 1010u * tickNs);
}

TEST(ThroughputRegulator, SustainedRateMatchesConfigured)
{
    ThroughputRegulator reg(10e9); // 10 GB/s
    Tick done = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        done = reg.admit(0, 160.0);
    const double gbps =
        toGBps(bytesPerSecond(static_cast<Bytes>(n) * 160, done));
    EXPECT_NEAR(gbps, 10.0, 0.01);
}

TEST(ThroughputRegulator, BusyTimeAccumulates)
{
    ThroughputRegulator reg(1e9);
    reg.admit(0, 100.0);
    reg.admit(500 * tickNs, 100.0);
    EXPECT_EQ(reg.busyTime(), 200u * tickNs);
}

TEST(ThroughputRegulator, ResetClearsHistory)
{
    ThroughputRegulator reg(1e9);
    reg.admit(0, 1000.0);
    reg.reset();
    EXPECT_EQ(reg.horizon(), 0u);
    EXPECT_EQ(reg.admit(0, 10.0), 10u * tickNs);
}

TEST(LinkDirection, TransmitIncludesPropagation)
{
    LinkConfig cfg; // 15 GB/s raw per link
    LinkDirection dir(cfg, nsToTicks(100.0));
    // 150 bytes at 15 GB/s = 10 ns serialization + 100 ns propagation.
    const Tick done = dir.transmit(0, 150);
    EXPECT_EQ(done, nsToTicks(110.0));
}

TEST(LinkDirection, PerPacketOverheadCharged)
{
    LinkConfig cfg;
    cfg.perPacketOverheadBytes = 30;
    LinkDirection dir(cfg, 0);
    EXPECT_EQ(dir.wireBytes(150), 180u);
    const Tick done = dir.transmit(0, 150);
    EXPECT_EQ(done, nsToTicks(12.0)); // 180 B at 15 GB/s
}

TEST(LinkDirection, SerializesConcurrentPackets)
{
    LinkConfig cfg;
    LinkDirection dir(cfg, 0);
    const Tick a = dir.transmit(0, 150);
    const Tick b = dir.transmit(0, 150);
    EXPECT_EQ(b, 2 * a); // second waits for the wire
}

class RegulatorRateSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RegulatorRateSweep, ThroughputNeverExceedsRate)
{
    const double rate = GetParam();
    ThroughputRegulator reg(rate);
    Tick done = 0;
    Bytes total = 0;
    for (int i = 0; i < 1000; ++i) {
        done = reg.admit(0, 128.0);
        total += 128;
    }
    const double achieved = bytesPerSecond(total, done);
    EXPECT_LE(achieved, rate * 1.001);
    EXPECT_GE(achieved, rate * 0.98);
}

INSTANTIATE_TEST_SUITE_P(Rates, RegulatorRateSweep,
                         ::testing::Values(1e9, 7.5e9, 10e9, 15e9,
                                           30e9));

} // namespace
} // namespace hmcsim
