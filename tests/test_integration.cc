/**
 * @file
 * Integration tests: full-system experiments crossing every module,
 * checking the paper's headline behaviors end to end.
 */

#include <gtest/gtest.h>

#include "gups/patterns.hh"
#include "host/experiment.hh"

namespace hmcsim
{
namespace
{

const AddressMapper &
mapper()
{
    static const AddressMapper m(HmcConfig::gen2_4GB(),
                                 MaxBlockSize::B128);
    return m;
}

MeasurementResult
quickRun(const AccessPattern &pattern, RequestMix mix, Bytes size,
         unsigned ports = maxGupsPorts)
{
    ExperimentConfig cfg;
    cfg.pattern = pattern;
    cfg.mix = mix;
    cfg.requestSize = size;
    cfg.numPorts = ports;
    cfg.warmup = 50 * tickUs;
    cfg.measure = 300 * tickUs;
    return runExperiment(cfg);
}

TEST(Integration, DistributedReadBandwidthNearPaper)
{
    const MeasurementResult m =
        quickRun(vaultPattern(mapper(), 16), RequestMix::ReadOnly, 128);
    // Paper Fig. 7: ~22 GB/s raw; accept the calibrated 19-23 window.
    EXPECT_GT(m.rawGBps, 18.0);
    EXPECT_LT(m.rawGBps, 24.0);
}

TEST(Integration, RequestTypeOrdering)
{
    const AccessPattern p = vaultPattern(mapper(), 16);
    const double ro = quickRun(p, RequestMix::ReadOnly, 128).rawGBps;
    const double wo = quickRun(p, RequestMix::WriteOnly, 128).rawGBps;
    const double rw =
        quickRun(p, RequestMix::ReadModifyWrite, 128).rawGBps;
    // Fig. 7: rw > ro > wo, rw ~2x wo.
    EXPECT_GT(rw, ro);
    EXPECT_GT(ro, wo);
    EXPECT_NEAR(rw / wo, 2.0, 0.45);
}

TEST(Integration, VaultBandwidthCap)
{
    // Any single-vault pattern is bounded by ~10 GB/s (Sec. IV-A).
    for (Bytes size : {32u, 64u, 128u}) {
        const MeasurementResult m =
            quickRun(vaultPattern(mapper(), 1), RequestMix::ReadOnly,
                     size);
        EXPECT_LE(m.rawGBps, 10.5) << size;
        EXPECT_GE(m.rawGBps, 8.0) << size;
    }
}

TEST(Integration, EightBanksSaturateAVault)
{
    // Fig. 7: beyond 8 banks, more banks do not help.
    const double b8 =
        quickRun(bankPattern(mapper(), 8), RequestMix::ReadOnly, 128)
            .rawGBps;
    const double v1 =
        quickRun(vaultPattern(mapper(), 1), RequestMix::ReadOnly, 128)
            .rawGBps;
    EXPECT_NEAR(b8, v1, 0.5);
    // ...but 2 -> 4 banks still roughly doubles.
    const double b2 =
        quickRun(bankPattern(mapper(), 2), RequestMix::ReadOnly, 128)
            .rawGBps;
    const double b4 =
        quickRun(bankPattern(mapper(), 4), RequestMix::ReadOnly, 128)
            .rawGBps;
    EXPECT_NEAR(b4 / b2, 1.65, 0.4);
}

TEST(Integration, HighLoadLatencyFollowsLittlesLaw)
{
    // With all 9x64 tags outstanding, avg latency ~= 576 / throughput.
    const MeasurementResult m =
        quickRun(bankPattern(mapper(), 1), RequestMix::ReadOnly, 128);
    const double expected_us = 576.0 / m.readMrps;
    EXPECT_NEAR(m.readLatencyNs.mean() / 1000.0, expected_us,
                expected_us * 0.10);
}

TEST(Integration, HighLoadLatencyIsManyTimesLowLoad)
{
    // Sec. IV-E3: high-load average is ~12x the low-load average.
    const MeasurementResult high =
        quickRun(vaultPattern(mapper(), 16), RequestMix::ReadOnly, 128);
    StreamExperimentConfig low;
    low.requestsPerStream = 2;
    low.repetitions = 16;
    const double low_avg = runStreamExperiment(low).mean();
    const double ratio = high.readLatencyNs.mean() / low_avg;
    EXPECT_GT(ratio, 4.0);
    EXPECT_LT(ratio, 20.0);
}

TEST(Integration, LinearEqualsRandomUnderClosedPage)
{
    const AccessPattern p = vaultPattern(mapper(), 16);
    ExperimentConfig lin;
    lin.pattern = p;
    lin.mode = AddressingMode::Linear;
    lin.measure = 300 * tickUs;
    ExperimentConfig rnd = lin;
    rnd.mode = AddressingMode::Random;
    const double l = runExperiment(lin).rawGBps;
    const double r = runExperiment(rnd).rawGBps;
    EXPECT_NEAR(l / r, 1.0, 0.08);
}

TEST(Integration, OpenPageAblationRewardsLinearLocality)
{
    // Ablation of the paper's closed-page design choice: force the
    // vaults to open-page and confine linear traffic to one bank so
    // consecutive requests hit the same 256 B row.
    ExperimentConfig cfg;
    cfg.pattern = bankPattern(mapper(), 1);
    cfg.mode = AddressingMode::Linear;
    cfg.numPorts = 1;
    cfg.measure = 300 * tickUs;
    const double closed = runExperiment(cfg).rawGBps;
    cfg.device.vault.policy = PagePolicy::Open;
    const double open = runExperiment(cfg).rawGBps;
    EXPECT_GT(open, closed * 1.5);
}

TEST(Integration, SmallerMaxBlockSpreadsASinglePageWider)
{
    // Mode-register ablation (footnote 5/6): with 32 B max blocks, a
    // single 4 KB page reaches more banks, so single-page traffic is
    // faster than under 128 B max blocks.
    // Confine traffic to vault 0's slice of one 4 KB page so the
    // number of banks the page touches is the binding resource: 2
    // banks under 128 B max blocks vs 8 banks under 32 B max blocks.
    auto one_page_one_vault = [](const AddressMapper &m) {
        return AccessPattern{
            "one page, vault 0",
            ~Addr(0xFFF) | bitRangeMask(m.vaultShift(),
                                        m.vaultShift() + 3),
            0, 1, 0};
    };
    ExperimentConfig cfg;
    cfg.requestSize = 32;
    cfg.measure = 300 * tickUs;
    cfg.pattern = one_page_one_vault(mapper());
    const double blocks128 = runExperiment(cfg).rawGBps;
    cfg.device.maxBlock = MaxBlockSize::B32;
    cfg.pattern = one_page_one_vault(
        AddressMapper(HmcConfig::gen2_4GB(), MaxBlockSize::B32));
    const double blocks32 = runExperiment(cfg).rawGBps;
    EXPECT_GT(blocks32, blocks128 * 1.2);
}

TEST(Integration, ThermalShutdownPropagatesToResponses)
{
    Ac510Config sys;
    sys.numPorts = 1;
    sys.port.requestBudget = 5;
    Ac510Module module(sys);
    module.device().setThermalShutdown(true);
    module.start();
    module.runToCompletion();
    EXPECT_EQ(module.aggregateStats().thermalFailures, 5u);
}

TEST(Integration, RemoteQuadrantTrafficIsSlowerThanLocal)
{
    // Low-load single reads from port 0 (link 0, quadrant 0): a vault
    // in quadrant 3 answers two crossbar hops later than vault 0.
    StreamExperimentConfig local;
    local.requestsPerStream = 1;
    local.repetitions = 32;
    local.pattern =
        AccessPattern{"quad0", bitRangeMask(7, 10), 0, 1, 16};
    StreamExperimentConfig remote = local;
    remote.pattern = AccessPattern{
        "quad3", bitRangeMask(7, 10), Addr(12) << 7, 1, 16};
    const SampleStats lm = runStreamExperiment(local);
    const SampleStats rm = runStreamExperiment(remote);
    const HmcDeviceConfig dev;
    EXPECT_NEAR(rm.min() - lm.min(),
                2.0 * ticksToNs(dev.quadrantHopLatency), 1.0);
}

TEST(Integration, Hmc2ConfigRunsAndScalesVaults)
{
    // The simulator is not hard-wired to HMC 1.1: an HMC 2.0 cube
    // (32 vaults) accepts the same traffic.
    ExperimentConfig cfg;
    cfg.device.structure = HmcConfig::hmc2_4GB();
    cfg.measure = 200 * tickUs;
    const MeasurementResult m = runExperiment(cfg);
    EXPECT_GT(m.rawGBps, 15.0);
}

// ---- Property sweeps ----------------------------------------------------

struct SweepParam
{
    RequestMix mix;
    Bytes size;
    unsigned vaults;
};

class ExperimentPropertySweep
    : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(ExperimentPropertySweep, Invariants)
{
    const SweepParam p = GetParam();
    ExperimentConfig cfg;
    cfg.pattern = vaultPattern(mapper(), p.vaults);
    cfg.mix = p.mix;
    cfg.requestSize = p.size;
    cfg.warmup = 50 * tickUs;
    cfg.measure = 200 * tickUs;
    const MeasurementResult m = runExperiment(cfg);

    // Work happened.
    EXPECT_GT(m.rawGBps, 0.1);
    // Raw bandwidth can never exceed the Eq. 2 peak.
    EXPECT_LT(m.rawGBps, 60.0);
    // Single-vault traffic respects the vault bound.
    if (p.vaults == 1) {
        EXPECT_LE(m.rawGBps, 10.5);
    }
    // Latency is at least the infrastructure minimum.
    if (p.mix != RequestMix::WriteOnly) {
        EXPECT_GT(m.readLatencyNs.min(), 400.0);
    }
    // Mix semantics.
    if (p.mix == RequestMix::ReadOnly) {
        EXPECT_DOUBLE_EQ(m.writeMrps, 0.0);
    } else if (p.mix == RequestMix::WriteOnly) {
        EXPECT_DOUBLE_EQ(m.readMrps, 0.0);
    } else {
        EXPECT_NEAR(m.readMrps / m.writeMrps, 1.0, 0.1);
    }
    // Payload accounting consistent with request counts.
    const double expected_read_payload =
        m.readMrps * 1e6 * static_cast<double>(p.size) / 1e9;
    EXPECT_NEAR(m.readPayloadGBps, expected_read_payload,
                expected_read_payload * 0.01 + 0.01);
}

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    return std::string(requestMixName(info.param.mix)) + "_" +
           std::to_string(info.param.size) + "B_" +
           std::to_string(info.param.vaults) + "v";
}

INSTANTIATE_TEST_SUITE_P(
    MixSizePattern, ExperimentPropertySweep,
    ::testing::Values(
        SweepParam{RequestMix::ReadOnly, 128, 16},
        SweepParam{RequestMix::ReadOnly, 32, 16},
        SweepParam{RequestMix::ReadOnly, 64, 1},
        SweepParam{RequestMix::ReadOnly, 16, 4},
        SweepParam{RequestMix::WriteOnly, 128, 16},
        SweepParam{RequestMix::WriteOnly, 64, 1},
        SweepParam{RequestMix::WriteOnly, 32, 2},
        SweepParam{RequestMix::ReadModifyWrite, 128, 16},
        SweepParam{RequestMix::ReadModifyWrite, 64, 8},
        SweepParam{RequestMix::ReadModifyWrite, 32, 1}),
    sweepName);

} // namespace
} // namespace hmcsim
