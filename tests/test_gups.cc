/**
 * @file
 * Unit tests for the GUPS firmware model: address generation with
 * mask/anti-mask registers, access-pattern construction, and port
 * behavior (tag limits, credits, rw dependency, monitoring).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "gups/address_generator.hh"
#include "gups/gups_port.hh"
#include "gups/patterns.hh"
#include "hmc/address_mapper.hh"

namespace hmcsim
{
namespace
{

AddressGeneratorConfig
genCfg(AddressingMode mode, Bytes size, Addr mask = 0, Addr anti = 0)
{
    AddressGeneratorConfig cfg;
    cfg.mode = mode;
    cfg.requestSize = size;
    cfg.capacity = 4 * gib;
    cfg.mask = mask;
    cfg.antiMask = anti;
    return cfg;
}

TEST(AddressGenerator, LinearStridesByRequestSize)
{
    AddressGenerator gen(genCfg(AddressingMode::Linear, 128), 1);
    EXPECT_EQ(gen.next(), 0u);
    EXPECT_EQ(gen.next(), 128u);
    EXPECT_EQ(gen.next(), 256u);
}

TEST(AddressGenerator, LinearWrapsAtCapacity)
{
    AddressGeneratorConfig cfg = genCfg(AddressingMode::Linear, 128);
    cfg.capacity = 512;
    AddressGenerator gen(cfg, 1);
    gen.next();
    gen.next();
    gen.next();
    EXPECT_EQ(gen.next(), 384u);
    EXPECT_EQ(gen.next(), 0u); // wrapped
}

TEST(AddressGenerator, LinearStartOffset)
{
    AddressGeneratorConfig cfg = genCfg(AddressingMode::Linear, 64);
    cfg.linearStart = 8192;
    AddressGenerator gen(cfg, 1);
    EXPECT_EQ(gen.next(), 8192u);
    EXPECT_EQ(gen.next(), 8256u);
}

TEST(AddressGenerator, RandomIsDeterministicPerSeed)
{
    AddressGenerator a(genCfg(AddressingMode::Random, 64), 99);
    AddressGenerator b(genCfg(AddressingMode::Random, 64), 99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(AddressGenerator, RandomStaysInCapacity)
{
    AddressGeneratorConfig cfg = genCfg(AddressingMode::Random, 128);
    cfg.capacity = 1 * mib;
    AddressGenerator gen(cfg, 5);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(gen.next(), 1u * mib);
}

TEST(AddressGenerator, AlignmentRules)
{
    // Multiples of 32 B align to 32; 16 B-granular sizes align to 16.
    AddressGenerator g128(genCfg(AddressingMode::Random, 128), 2);
    EXPECT_EQ(g128.alignment(), 32u);
    AddressGenerator g48(genCfg(AddressingMode::Random, 48), 2);
    EXPECT_EQ(g48.alignment(), 16u);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(g128.next() % 32, 0u);
        EXPECT_EQ(g48.next() % 16, 0u);
    }
}

TEST(AddressGenerator, MaskForcesBitsToZero)
{
    const Addr mask = bitRangeMask(7, 14);
    AddressGenerator gen(genCfg(AddressingMode::Random, 128, mask), 3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(gen.next() & mask, 0u);
}

TEST(AddressGenerator, AntiMaskForcesBitsToOne)
{
    const Addr anti = Addr(1) << 20;
    AddressGenerator gen(genCfg(AddressingMode::Random, 128, 0, anti), 3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(gen.next() & anti, anti);
}

TEST(AddressGenerator, RejectsBadSizes)
{
    EXPECT_DEATH(
        { AddressGenerator gen(genCfg(AddressingMode::Random, 24), 1); },
        "multiple of 16");
}

// ---- Patterns ---------------------------------------------------------

class PatternTest : public ::testing::Test
{
  protected:
    HmcConfig cfg = HmcConfig::gen2_4GB();
    AddressMapper mapper{cfg, MaxBlockSize::B128};
};

TEST_F(PatternTest, BankPatternConfinesTraffic)
{
    for (unsigned banks : {1u, 2u, 4u, 8u}) {
        const AccessPattern p = bankPattern(mapper, banks);
        AddressGenerator gen(
            genCfg(AddressingMode::Random, 128, p.mask, p.antiMask), 7);
        std::set<std::pair<unsigned, unsigned>> seen;
        for (int i = 0; i < 5000; ++i) {
            const DecodedAddress d = mapper.decode(gen.next());
            EXPECT_EQ(d.vault, 0u);
            EXPECT_LT(d.bank, banks);
            seen.emplace(d.vault, d.bank);
        }
        EXPECT_EQ(seen.size(), banks); // and it covers all of them
    }
}

TEST_F(PatternTest, VaultPatternConfinesTraffic)
{
    for (unsigned vaults : {1u, 2u, 4u, 8u, 16u}) {
        const AccessPattern p = vaultPattern(mapper, vaults);
        AddressGenerator gen(
            genCfg(AddressingMode::Random, 128, p.mask, p.antiMask), 7);
        std::set<unsigned> seen_vaults;
        std::set<unsigned> seen_banks;
        for (int i = 0; i < 5000; ++i) {
            const DecodedAddress d = mapper.decode(gen.next());
            EXPECT_LT(d.vault, vaults);
            seen_vaults.insert(d.vault);
            seen_banks.insert(d.bank);
        }
        EXPECT_EQ(seen_vaults.size(), vaults);
        EXPECT_EQ(seen_banks.size(), 16u); // all banks per vault
    }
}

TEST_F(PatternTest, SpansReported)
{
    EXPECT_EQ(bankPattern(mapper, 4).bankSpan, 4u);
    EXPECT_EQ(bankPattern(mapper, 4).vaultSpan, 1u);
    EXPECT_EQ(vaultPattern(mapper, 8).vaultSpan, 8u);
    EXPECT_EQ(vaultPattern(mapper, 8).bankSpan, 128u);
}

TEST_F(PatternTest, PaperAxisOrdering)
{
    const auto axis = paperPatternAxis(mapper);
    ASSERT_EQ(axis.size(), 9u);
    EXPECT_EQ(axis.front().name, "16 vaults");
    EXPECT_EQ(axis[4].name, "1 vault");
    EXPECT_EQ(axis.back().name, "1 bank");
}

TEST_F(PatternTest, Fig6MaskPositions)
{
    const auto sweep = fig6MaskSweep(mapper);
    ASSERT_EQ(sweep.size(), 7u);
    EXPECT_EQ(sweep[0].name, "24-31");
    EXPECT_EQ(sweep[2].name, "7-14");
    // Mask 7-14 kills all vault and bank bits: one bank of one vault.
    EXPECT_EQ(sweep[2].vaultSpan, 1u);
    EXPECT_EQ(sweep[2].bankSpan, 1u);
    // Mask 3-10 keeps bank bits free: one vault, all banks.
    EXPECT_EQ(sweep[3].vaultSpan, 1u);
    EXPECT_EQ(sweep[3].bankSpan, 16u);
    // Mask 2-9 frees the top vault bit: two vaults.
    EXPECT_EQ(sweep[4].vaultSpan, 2u);
}

TEST_F(PatternTest, BitRangeMask)
{
    EXPECT_EQ(bitRangeMask(0, 7), 0xFFu);
    EXPECT_EQ(bitRangeMask(7, 14), 0x7F80u);
    EXPECT_EQ(bitRangeMask(4, 4), 0x10u);
}

// ---- GupsPort ---------------------------------------------------------

struct PortHarness
{
    EventQueue queue;
    std::vector<Packet> submitted;
    std::unique_ptr<GupsPort> port;

    explicit PortHarness(GupsPortConfig cfg, unsigned id = 0)
    {
        port = std::make_unique<GupsPort>(
            id, cfg, 4 * gib, queue,
            [this](Packet &&pkt) { submitted.push_back(pkt); }, 1);
    }

    /** Respond to the i-th submitted packet at the current time. */
    void
    respond(std::size_t i)
    {
        Packet pkt = submitted.at(i);
        pkt.tResponse = queue.now();
        port->onResponse(pkt);
    }
};

GupsPortConfig
portCfg(RequestMix mix, unsigned tag_depth = 64)
{
    GupsPortConfig cfg;
    cfg.mix = mix;
    cfg.requestSize = 128;
    cfg.tagPoolDepth = tag_depth;
    return cfg;
}

TEST(GupsPort, StopsAtTagPoolDepth)
{
    PortHarness h(portCfg(RequestMix::ReadOnly, 8));
    h.port->start();
    h.queue.runUntil(1 * tickMs);
    EXPECT_EQ(h.submitted.size(), 8u); // blocked on tags
    EXPECT_EQ(h.port->outstanding(), 8u);
    EXPECT_FALSE(h.port->idle());
}

TEST(GupsPort, ResponseFreesTagAndResumesIssuing)
{
    PortHarness h(portCfg(RequestMix::ReadOnly, 4));
    h.port->start();
    h.queue.runUntil(100 * tickUs);
    ASSERT_EQ(h.submitted.size(), 4u);
    h.respond(0);
    h.queue.runUntil(200 * tickUs);
    EXPECT_EQ(h.submitted.size(), 5u);
    EXPECT_EQ(h.port->stats().readsCompleted, 1u);
}

TEST(GupsPort, IssueRateIsOnePerCycle)
{
    GupsPortConfig cfg = portCfg(RequestMix::ReadOnly, 64);
    PortHarness h(cfg);
    h.port->start();
    // After 10 cycles it must have issued at most ceil(10)+1 and at
    // least floor(10) requests (one per 5333 ps).
    h.queue.runUntil(10 * 5333);
    EXPECT_GE(h.submitted.size(), 10u);
    EXPECT_LE(h.submitted.size(), 11u);
}

TEST(GupsPort, WriteOnlyUsesWriteCredits)
{
    GupsPortConfig cfg = portCfg(RequestMix::WriteOnly);
    cfg.writeCreditDepth = 6;
    PortHarness h(cfg);
    h.port->start();
    h.queue.runUntil(1 * tickMs);
    EXPECT_EQ(h.submitted.size(), 6u);
    for (const Packet &pkt : h.submitted)
        EXPECT_EQ(pkt.cmd, Command::Write);
    h.respond(0);
    h.queue.runUntil(2 * tickMs);
    EXPECT_EQ(h.submitted.size(), 7u);
}

TEST(GupsPort, ReadModifyWriteIssuesDependentWrite)
{
    PortHarness h(portCfg(RequestMix::ReadModifyWrite, 2));
    h.port->start();
    h.queue.runUntil(100 * tickUs);
    ASSERT_EQ(h.submitted.size(), 2u); // two reads outstanding
    const Addr read_addr = h.submitted[0].addr;
    h.respond(0);
    h.queue.runUntil(200 * tickUs);
    // The freed tag allows one more read AND the dependent write.
    ASSERT_GE(h.submitted.size(), 4u);
    bool found_write = false;
    for (std::size_t i = 2; i < h.submitted.size(); ++i) {
        if (h.submitted[i].cmd == Command::Write) {
            EXPECT_EQ(h.submitted[i].addr, read_addr);
            found_write = true;
        }
    }
    EXPECT_TRUE(found_write);
}

TEST(GupsPort, BudgetLimitsGeneratedOps)
{
    GupsPortConfig cfg = portCfg(RequestMix::ReadOnly);
    cfg.requestBudget = 5;
    PortHarness h(cfg);
    h.port->start();
    h.queue.runUntil(1 * tickMs);
    EXPECT_EQ(h.submitted.size(), 5u);
    EXPECT_TRUE(h.port->budgetExhausted());
    // Draining the responses leaves the port idle.
    for (std::size_t i = 0; i < 5; ++i)
        h.respond(i);
    h.queue.runUntil(2 * tickMs);
    EXPECT_EQ(h.submitted.size(), 5u);
    EXPECT_TRUE(h.port->idle());
}

TEST(GupsPort, MonitorsLatency)
{
    PortHarness h(portCfg(RequestMix::ReadOnly, 1));
    h.port->start();
    h.queue.runUntil(10 * tickUs); // one read outstanding
    ASSERT_EQ(h.submitted.size(), 1u);
    h.queue.runUntil(20 * tickUs);
    h.respond(0);
    const SampleStats &lat = h.port->stats().readLatencyNs;
    EXPECT_EQ(lat.count(), 1u);
    // Issued at t=0, answered at 20 us.
    EXPECT_NEAR(lat.mean(), 20000.0, 1.0);
}

TEST(GupsPort, RawByteAccounting)
{
    PortHarness h(portCfg(RequestMix::ReadOnly, 2));
    h.port->start();
    h.queue.runUntil(10 * tickUs);
    h.respond(0);
    h.respond(1);
    // Two 128 B reads: 2 x 160 raw bytes.
    EXPECT_EQ(h.port->stats().rawBytes, 320u);
    EXPECT_EQ(h.port->stats().readPayloadBytes, 256u);
}

TEST(GupsPort, ThermalFailureCounted)
{
    PortHarness h(portCfg(RequestMix::ReadOnly, 1));
    h.port->start();
    h.queue.runUntil(10 * tickUs);
    Packet pkt = h.submitted.at(0);
    pkt.thermalFailure = true;
    h.port->onResponse(pkt);
    EXPECT_EQ(h.port->stats().thermalFailures, 1u);
}

TEST(GupsPort, StopPreventsFurtherIssues)
{
    PortHarness h(portCfg(RequestMix::ReadOnly, 4));
    h.port->start();
    h.queue.runUntil(10 * tickUs);
    h.port->stop();
    const std::size_t n = h.submitted.size();
    h.respond(0);
    h.queue.runUntil(1 * tickMs);
    EXPECT_EQ(h.submitted.size(), n); // response did not restart it
}

TEST(GupsPort, PortsUseTheirAssignedLink)
{
    for (unsigned id : {0u, 4u, 5u, 8u}) {
        PortHarness h(portCfg(RequestMix::ReadOnly, 1), id);
        h.port->start();
        h.queue.runUntil(10 * tickUs);
        ASSERT_EQ(h.submitted.size(), 1u);
        EXPECT_EQ(h.submitted[0].link, id < 5 ? 0u : 1u);
        EXPECT_EQ(h.submitted[0].port, id);
    }
}

TEST(GupsPort, ResetStatsClearsMonitoring)
{
    PortHarness h(portCfg(RequestMix::ReadOnly, 2));
    h.port->start();
    h.queue.runUntil(10 * tickUs);
    h.respond(0);
    h.port->resetStats();
    EXPECT_EQ(h.port->stats().readsCompleted, 0u);
    EXPECT_EQ(h.port->stats().rawBytes, 0u);
    EXPECT_EQ(h.port->stats().readLatencyNs.count(), 0u);
}

} // namespace
} // namespace hmcsim
