/**
 * @file
 * Tests for multi-cube chaining: CUB-field addressing, hop latency,
 * ring routing, and rerouting around failed cubes.
 */

#include <gtest/gtest.h>

#include "hmc/chain.hh"

namespace hmcsim
{
namespace
{

CubeChainConfig
chainCfg(unsigned cubes)
{
    CubeChainConfig cfg;
    cfg.numCubes = cubes;
    return cfg;
}

Packet
readAt(Addr addr)
{
    Packet pkt;
    pkt.cmd = Command::Read;
    pkt.payload = 128;
    pkt.addr = addr;
    return pkt;
}

TEST(CubeChain, CapacityScalesWithCubes)
{
    CubeChain chain(chainCfg(4));
    EXPECT_EQ(chain.capacity(), 16ull * gib);
    EXPECT_EQ(chain.numCubes(), 4u);
}

TEST(CubeChain, CubFieldSelectsCube)
{
    CubeChain chain(chainCfg(4));
    EXPECT_EQ(chain.targetCube(0), 0u);
    EXPECT_EQ(chain.targetCube(4ull * gib), 1u);
    EXPECT_EQ(chain.targetCube(13ull * gib), 3u);
}

TEST(CubeChain, RejectsBadCubeCounts)
{
    EXPECT_DEATH(CubeChain(chainCfg(0)), "1..8");
    EXPECT_DEATH(CubeChain(chainCfg(9)), "1..8");
}

TEST(CubeChain, LocalCubeHasNoHopCost)
{
    CubeChain chain(chainCfg(4));
    Packet pkt = readAt(0);
    ChainRouteInfo route;
    chain.handleRequest(pkt, 0, &route);
    EXPECT_TRUE(route.reachable);
    EXPECT_EQ(route.hops, 0u);
    EXPECT_FALSE(route.rerouted);
}

TEST(CubeChain, LatencyGrowsWithHops)
{
    // 8 cubes: host at cube 0 and cube 7; cubes 1,2,3 get
    // progressively farther from the front (and 4+ flips to the back
    // side of the ring).
    CubeChain chain(chainCfg(8));
    Tick prev = 0;
    for (unsigned target = 0; target <= 3; ++target) {
        Packet pkt = readAt(target * 4ull * gib);
        ChainRouteInfo route;
        const Tick done = chain.handleRequest(pkt, 0, &route);
        EXPECT_EQ(route.hops, target);
        EXPECT_GT(done, prev);
        prev = done;
    }
}

TEST(CubeChain, RingUsesTheShorterSide)
{
    CubeChain chain(chainCfg(8));
    // Cube 7 is adjacent to the back attach point: 0 hops.
    Packet pkt = readAt(7ull * 4 * gib);
    ChainRouteInfo route;
    chain.handleRequest(pkt, 0, &route);
    EXPECT_EQ(route.hops, 0u);
    // Cube 5: 2 hops from the back vs 5 from the front.
    Packet pkt5 = readAt(5ull * 4 * gib);
    chain.handleRequest(pkt5, 0, &route);
    EXPECT_EQ(route.hops, 2u);
}

TEST(CubeChain, FailedIntermediateCubeReroutes)
{
    CubeChain chain(chainCfg(4));
    // Normally cube 1 is 1 hop from the front.
    Packet before = readAt(4ull * gib);
    ChainRouteInfo route;
    chain.handleRequest(before, 0, &route);
    EXPECT_EQ(route.hops, 1u);
    EXPECT_FALSE(route.rerouted);

    // Fail cube 0: the front path is blocked; cube 1 is reachable
    // the long way (2 hops from the back).
    chain.setCubeFailed(0, true);
    EXPECT_TRUE(chain.reachable(1));
    Packet after = readAt(4ull * gib);
    chain.handleRequest(after, 0, &route);
    EXPECT_TRUE(route.reachable);
    EXPECT_TRUE(route.rerouted);
    EXPECT_EQ(route.hops, 2u);
    EXPECT_EQ(chain.reroutedRequests(), 1u);
    EXPECT_FALSE(after.thermalFailure); // data still intact elsewhere
}

TEST(CubeChain, FailedTargetStillAnswersWithFailureFlag)
{
    CubeChain chain(chainCfg(2));
    chain.setCubeFailed(1, true);
    Packet pkt = readAt(4ull * gib);
    ChainRouteInfo route;
    chain.handleRequest(pkt, 0, &route);
    EXPECT_TRUE(route.reachable); // the package responds...
    EXPECT_TRUE(pkt.thermalFailure); // ...but flags its shutdown
}

TEST(CubeChain, DoubleFailureIsolatesMiddleCubes)
{
    CubeChain chain(chainCfg(5));
    chain.setCubeFailed(1, true);
    chain.setCubeFailed(3, true);
    // Cube 2 is walled off from both sides.
    EXPECT_FALSE(chain.reachable(2));
    EXPECT_TRUE(chain.reachable(0));
    EXPECT_TRUE(chain.reachable(4));
    Packet pkt = readAt(2ull * 4 * gib);
    ChainRouteInfo route;
    chain.handleRequest(pkt, 0, &route);
    EXPECT_FALSE(route.reachable);
    EXPECT_TRUE(pkt.thermalFailure);
    EXPECT_EQ(chain.unreachableRequests(), 1u);
}

TEST(CubeChain, RecoveryRestoresTheShortPath)
{
    CubeChain chain(chainCfg(4));
    chain.setCubeFailed(0, true);
    chain.setCubeFailed(0, false);
    Packet pkt = readAt(4ull * gib);
    ChainRouteInfo route;
    chain.handleRequest(pkt, 0, &route);
    EXPECT_EQ(route.hops, 1u);
    EXPECT_FALSE(route.rerouted);
}

TEST(CubeChain, InterCubeLinksSerializeTraffic)
{
    CubeChain chain(chainCfg(2));
    // Two concurrent requests for cube 1 share one inter-cube link:
    // the second's response is strictly later.
    Packet a = readAt(4ull * gib);
    Packet b = readAt(4ull * gib + (1u << 20));
    const Tick ta = chain.handleRequest(a, 0);
    const Tick tb = chain.handleRequest(b, 0);
    EXPECT_GT(tb, ta);
}

TEST(CubeChain, StatsRegisterHierarchy)
{
    CubeChain chain(chainCfg(3));
    StatRegistry reg;
    chain.registerStats(reg, StatPath("chain"));
    EXPECT_TRUE(reg.has("chain.unreachable_requests"));
    EXPECT_TRUE(reg.has("chain.cube0.requests"));
    EXPECT_TRUE(reg.has("chain.cube2.vault15.reads"));
}

TEST(CubeChain, SingleCubeDegeneratesToDevice)
{
    CubeChain chain(chainCfg(1));
    Packet pkt = readAt(0x1000);
    ChainRouteInfo route;
    const Tick done = chain.handleRequest(pkt, 0, &route);
    EXPECT_TRUE(route.reachable);
    EXPECT_EQ(route.hops, 0u);
    EXPECT_GT(done, 0u);
}

} // namespace
} // namespace hmcsim
