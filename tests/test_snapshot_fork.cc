/**
 * @file
 * Fork determinism: a simulator snapshotted after warm-up and forked
 * per sweep point must be indistinguishable -- bit for bit -- from
 * cold-starting every point. Covers the three vault backends, serial
 * vs pooled sweeps, composition with the result cache, invariant
 * checkers across a snapshot/restore cycle, and concurrent forks of
 * one warm module (the TSan job runs this binary on the runner
 * thread pool).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "host/experiment.hh"
#include "runner/config_digest.hh"
#include "runner/result_cache.hh"
#include "runner/sweep.hh"

namespace hmcsim
{
namespace
{

ExperimentConfig
smallConfig(BackendKind kind, RequestMix mix = RequestMix::ReadModifyWrite)
{
    ExperimentConfig cfg;
    cfg.mix = mix;
    cfg.numPorts = 3;
    cfg.warmup = 20 * tickUs;
    cfg.measure = 40 * tickUs;
    cfg.seed = 99;
    cfg.device.vault.backend.kind = kind;
    return cfg;
}

/** Cold and warm-start runs of @p cfg must agree exactly. */
void
expectForkMatchesCold(const ExperimentConfig &cfg)
{
    RunArtifacts cold_art;
    const MeasurementResult cold = runExperiment(cfg, {}, &cold_art);

    const WarmStart warm = prepareWarmStart(cfg);
    RunArtifacts fork_art;
    const MeasurementResult forked =
        runExperimentFrom(warm, cfg, &fork_art);

    EXPECT_EQ(cold_art.statDigest, fork_art.statDigest);
    EXPECT_EQ(cold.rawGBps, forked.rawGBps);
    EXPECT_EQ(cold.mrps, forked.mrps);
    EXPECT_EQ(cold.readLatencyNs.count(), forked.readLatencyNs.count());
    EXPECT_EQ(cold.readLatencyNs.mean(), forked.readLatencyNs.mean());
    EXPECT_EQ(cold.readLatencyP99Ns, forked.readLatencyP99Ns);
}

TEST(SnapshotFork, HmcDramForkMatchesColdStart)
{
    expectForkMatchesCold(smallConfig(BackendKind::HmcDram));
}

TEST(SnapshotFork, Ddr4ForkMatchesColdStart)
{
    expectForkMatchesCold(smallConfig(BackendKind::Ddr4));
}

TEST(SnapshotFork, NvmForkMatchesColdStart)
{
    expectForkMatchesCold(
        smallConfig(BackendKind::Nvm, RequestMix::WriteOnly));
}

TEST(SnapshotFork, OneWarmupServesManyMeasureWindows)
{
    // The warm-start use case: one warm-up, several measurement
    // windows, each bit-identical to its own cold run.
    ExperimentConfig base = smallConfig(BackendKind::HmcDram);
    const WarmStart warm = prepareWarmStart(base);
    for (const Tick measure :
         {10 * tickUs, 30 * tickUs, 60 * tickUs}) {
        ExperimentConfig cfg = base;
        cfg.measure = measure;
        RunArtifacts cold_art, fork_art;
        const MeasurementResult cold =
            runExperiment(cfg, {}, &cold_art);
        const MeasurementResult forked =
            runExperimentFrom(warm, cfg, &fork_art);
        EXPECT_EQ(cold_art.statDigest, fork_art.statDigest)
            << "measure " << measure;
        EXPECT_EQ(cold.mrps, forked.mrps);
    }
}

TEST(SnapshotFork, WarmupDigestSeparatesWarmupsOnly)
{
    const ExperimentConfig base = smallConfig(BackendKind::HmcDram);
    ExperimentConfig other_measure = base;
    other_measure.measure = base.measure * 2;
    EXPECT_EQ(warmupDigest(base), warmupDigest(other_measure));

    ExperimentConfig other_seed = base;
    other_seed.seed = base.seed + 1;
    EXPECT_NE(warmupDigest(base), warmupDigest(other_seed));

    ExperimentConfig other_mix = base;
    other_mix.mix = RequestMix::ReadOnly;
    EXPECT_NE(warmupDigest(base), warmupDigest(other_mix));

    // And the measure window still matters for the full identity.
    EXPECT_NE(configDigest(base), configDigest(other_measure));
}

/** Axes whose points share warm-ups (same seed, measure-only axis). */
SweepAxes
warmableAxes(BackendKind kind)
{
    SweepAxes axes;
    axes.base = smallConfig(kind);
    axes.base.warmup = 15 * tickUs;
    axes.measures = {10 * tickUs, 20 * tickUs, 30 * tickUs,
                     40 * tickUs};
    axes.mixes = {RequestMix::ReadOnly, RequestMix::ReadModifyWrite};
    return axes;
}

std::vector<std::uint64_t>
sweepDigests(const SweepAxes &axes, bool warm_start, unsigned jobs,
             ResultCache *cache = nullptr)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.warmStart = warm_start;
    opts.deriveSeeds = false; // measure-axis sharing needs same seeds
    opts.cache = cache;
    SweepRunner runner(opts);
    const std::vector<SweepPointResult> results = runner.run(axes);
    std::vector<std::uint64_t> digests;
    for (const SweepPointResult &point : results)
        digests.push_back(point.statDigest);
    return digests;
}

TEST(SnapshotFork, WarmSweepMatchesColdSweepAllBackends)
{
    for (const BackendKind kind :
         {BackendKind::HmcDram, BackendKind::Ddr4, BackendKind::Nvm}) {
        const SweepAxes axes = warmableAxes(kind);
        const auto cold = sweepDigests(axes, false, 1);
        const auto warm = sweepDigests(axes, true, 1);
        ASSERT_EQ(cold, warm)
            << "backend " << static_cast<int>(kind);
    }
}

TEST(SnapshotFork, WarmSweepIsJobsInvariant)
{
    const SweepAxes axes = warmableAxes(BackendKind::HmcDram);
    const auto serial = sweepDigests(axes, true, 1);
    const auto pooled = sweepDigests(axes, true, 8);
    EXPECT_EQ(serial, pooled);
}

TEST(SnapshotFork, WarmSweepComposesWithResultCache)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "hmcsim_fork_cache";
    std::filesystem::remove_all(dir);
    ResultCache cache(dir.string());
    const SweepAxes axes = warmableAxes(BackendKind::HmcDram);

    const auto cold = sweepDigests(axes, false, 2);
    const auto warm_fill = sweepDigests(axes, true, 2, &cache);
    EXPECT_EQ(cold, warm_fill);

    // Second pass: every point served from the cache, same digests.
    SweepOptions opts;
    opts.jobs = 2;
    opts.warmStart = true;
    opts.deriveSeeds = false;
    opts.cache = &cache;
    SweepRunner runner(opts);
    const auto results = runner.run(axes);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_TRUE(results[i].fromCache) << i;
        EXPECT_EQ(results[i].statDigest, cold[i]) << i;
    }
    std::filesystem::remove_all(dir);
}

TEST(SnapshotFork, CheckersHoldAcrossSnapshotRestore)
{
    // Satellite: the invariant checkers -- including NVM endurance
    // and drain conservation -- must hold on a restored twin, both
    // immediately after the fork and while it keeps running.
    ExperimentConfig cfg =
        smallConfig(BackendKind::Nvm, RequestMix::WriteOnly);
    const WarmStart warm = prepareWarmStart(cfg);

    auto fork = warm.module->fork();
    fork->enableInvariantChecks(16);
    fork->runUntil(cfg.warmup + cfg.measure);

    // And the source it was cloned from is untouched: running it
    // forward produces the digest a never-forked run produces.
    StatRegistry registry;
    warm.module->registerStats(registry, StatPath("system"));
    warm.module->resetPortStats();
    warm.module->runUntil(cfg.warmup + cfg.measure);
    RunArtifacts cold_art;
    runExperiment(cfg, {}, &cold_art);
    EXPECT_EQ(registry.digest(), cold_art.statDigest);
}

TEST(SnapshotFork, ConcurrentForksOfOneWarmModule)
{
    // fork() is read-only on the source: many threads forking (and
    // running) copies of one quiescent warm module must neither race
    // (TSan job) nor diverge.
    const ExperimentConfig cfg = smallConfig(BackendKind::HmcDram);
    const WarmStart warm = prepareWarmStart(cfg);
    RunArtifacts reference;
    runExperiment(cfg, {}, &reference);

    constexpr int numThreads = 4;
    std::vector<std::uint64_t> digests(numThreads, 0);
    std::vector<std::thread> threads;
    for (int i = 0; i < numThreads; ++i) {
        threads.emplace_back([&, i] {
            RunArtifacts art;
            runExperimentFrom(warm, cfg, &art);
            digests[static_cast<std::size_t>(i)] = art.statDigest;
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (const std::uint64_t digest : digests)
        EXPECT_EQ(digest, reference.statDigest);
}

} // namespace
} // namespace hmcsim
