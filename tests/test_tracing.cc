/**
 * @file
 * Tests for the packet-lifecycle tracing subsystem (src/trace/) and
 * the RunOptions/RunArtifacts experiment API around it:
 *
 *  - the telescoping invariant (stage durations sum exactly to the
 *    end-to-end round trip), including the thermal-refusal fallback;
 *  - deterministic id-keyed sampling;
 *  - the Chrome trace-event stream shape and jobs-invariance of a
 *    traced sweep (jobs 1 vs jobs 8 byte-identical);
 *  - the zero-cost contract: with tracing disabled the stat-registry
 *    digest is bit-identical to the legacy (pre-RunOptions) API, and
 *    the low-load stream breakdown reconstructs the measured
 *    end-to-end latency within 1 %.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "gups/patterns.hh"
#include "host/experiment.hh"
#include "runner/sweep.hh"
#include "trace/lifecycle.hh"
#include "trace/trace_sink.hh"

namespace
{

using namespace hmcsim;

// ---------------------------------------------------------------------
// lifecycleSpans: the telescoping decomposition
// ---------------------------------------------------------------------

Packet
stampedPacket()
{
    Packet pkt;
    pkt.id = 42;
    pkt.cmd = Command::Read;
    pkt.payload = 128;
    pkt.tIssued = 1000;
    pkt.tLinkTx = 3000;
    pkt.tVaultArrive = 9000;
    pkt.tBankStart = 12000;
    pkt.tDramDone = 40000;
    pkt.tResponse = 52000;
    return pkt;
}

TEST(LifecycleSpans, StagesTelescopeToEndToEnd)
{
    const Packet pkt = stampedPacket();
    const auto spans = lifecycleSpans(pkt);

    // Consecutive spans share their boundary stamp...
    ASSERT_EQ(spans.size(), numLifecycleStages);
    EXPECT_EQ(spans.front().begin, pkt.tIssued);
    for (unsigned i = 1; i < numLifecycleStages; ++i)
        EXPECT_EQ(spans[i].begin, spans[i - 1].end);
    EXPECT_EQ(spans.back().end, pkt.tResponse);

    // ...so the durations sum to the round trip exactly, in ticks.
    Tick sum = 0;
    for (const StageSpan &span : spans)
        sum += span.duration();
    EXPECT_EQ(sum, pkt.tResponse - pkt.tIssued);
}

TEST(LifecycleSpans, StageBoundariesMatchTimestamps)
{
    const Packet pkt = stampedPacket();
    const auto spans = lifecycleSpans(pkt);

    const auto at = [&spans](LifecycleStage s) {
        return spans[static_cast<unsigned>(s)];
    };
    EXPECT_EQ(at(LifecycleStage::CtrlTx).begin, pkt.tIssued);
    EXPECT_EQ(at(LifecycleStage::CtrlTx).end, pkt.tLinkTx);
    EXPECT_EQ(at(LifecycleStage::Link).end, pkt.tVaultArrive);
    EXPECT_EQ(at(LifecycleStage::VaultQueue).end, pkt.tBankStart);
    EXPECT_EQ(at(LifecycleStage::Bank).end, pkt.tDramDone);
    EXPECT_EQ(at(LifecycleStage::Response).end, pkt.tResponse);
}

TEST(LifecycleSpans, ThermalRefusalCollapsesBankStage)
{
    // A cube in thermal shutdown answers without touching a bank:
    // tBankStart stays 0. The Bank span must collapse to zero length
    // (charged to VaultQueue) and the telescoping must survive.
    Packet pkt = stampedPacket();
    pkt.thermalFailure = true;
    pkt.tBankStart = 0;

    const auto spans = lifecycleSpans(pkt);
    EXPECT_EQ(spans[static_cast<unsigned>(LifecycleStage::Bank)]
                  .duration(),
              0u);
    Tick sum = 0;
    for (const StageSpan &span : spans)
        sum += span.duration();
    EXPECT_EQ(sum, pkt.tResponse - pkt.tIssued);
}

TEST(LifecycleSpans, StageNamesAreStable)
{
    // The names are part of the stat/JSON surface; renaming them
    // breaks downstream tooling and the determinism digest.
    EXPECT_STREQ(lifecycleStageName(LifecycleStage::CtrlTx), "ctrl_tx");
    EXPECT_STREQ(lifecycleStageName(LifecycleStage::Link), "link");
    EXPECT_STREQ(lifecycleStageName(LifecycleStage::VaultQueue),
                 "vault_queue");
    EXPECT_STREQ(lifecycleStageName(LifecycleStage::Bank), "bank");
    EXPECT_STREQ(lifecycleStageName(LifecycleStage::Response),
                 "response");
}

// ---------------------------------------------------------------------
// PacketTracer: aggregation and sampling
// ---------------------------------------------------------------------

TEST(PacketTracer, AggregatesStageAndEndToEndStats)
{
    TraceConfig cfg;
    cfg.enabled = true;
    PacketTracer tracer(cfg);

    const Packet pkt = stampedPacket();
    tracer.record(pkt);
    tracer.record(pkt);

    const StageBreakdown &b = tracer.breakdown();
    EXPECT_TRUE(b.enabled);
    EXPECT_EQ(tracer.recorded(), 2u);
    EXPECT_EQ(b.endToEndNs.count(), 2u);
    EXPECT_DOUBLE_EQ(b.endToEndNs.mean(),
                     ticksToNs(pkt.tResponse - pkt.tIssued));
    EXPECT_DOUBLE_EQ(b.stage(LifecycleStage::Bank).mean(),
                     ticksToNs(pkt.tDramDone - pkt.tBankStart));
    // Telescoping carries over to the aggregate means.
    EXPECT_NEAR(b.stageMeanSumNs(), b.endToEndNs.mean(), 1e-9);

    tracer.resetStats();
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.breakdown().endToEndNs.count(), 0u);
}

TEST(PacketTracer, SamplingIsDeterministicAndIdKeyed)
{
    // Pure function of (id, period): same inputs, same verdict.
    for (std::uint64_t id = 0; id < 256; ++id) {
        EXPECT_EQ(PacketTracer::sampled(id, 4),
                  PacketTracer::sampled(id, 4));
        EXPECT_TRUE(PacketTracer::sampled(id, 1));
        EXPECT_FALSE(PacketTracer::sampled(id, 0));
    }

    // 1-in-N sampling hits roughly 1/N of a dense id range; the hash
    // decorrelates it from id arithmetic, so just bound the rate.
    unsigned hits = 0;
    for (std::uint64_t id = 0; id < 4096; ++id)
        hits += PacketTracer::sampled(id, 8) ? 1 : 0;
    EXPECT_GT(hits, 4096u / 8 / 2);
    EXPECT_LT(hits, 4096u / 8 * 2);
}

TEST(PacketTracer, SinkReceivesOnlySampledPackets)
{
    class CountingSink final : public PacketTraceSink
    {
      public:
        void packet(const Packet &) override { ++num; }
        unsigned num = 0;
    };

    CountingSink sink;
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.samplePeriod = 4;
    cfg.sink = &sink;
    PacketTracer tracer(cfg);

    unsigned expected = 0;
    for (std::uint64_t id = 0; id < 512; ++id) {
        Packet pkt = stampedPacket();
        pkt.id = id;
        tracer.record(pkt);
        expected += PacketTracer::sampled(id, 4) ? 1 : 0;
    }
    // Aggregates cover every packet; the sink only the sampled ones.
    EXPECT_EQ(tracer.recorded(), 512u);
    EXPECT_EQ(sink.num, expected);
}

// ---------------------------------------------------------------------
// ChromeTraceBuffer: the event-stream shape
// ---------------------------------------------------------------------

TEST(ChromeTrace, BufferEmitsOneEventPerStage)
{
    ChromeTraceBuffer buffer;
    buffer.packet(stampedPacket());

    const std::string &events = buffer.events();
    // One complete ("ph":"X") event per stage, comma-prefixed so the
    // fragments concatenate directly into a JSON array body.
    EXPECT_EQ(events.rfind(",\n{", 0), 0u);
    std::size_t count = 0;
    for (std::size_t pos = events.find("\"ph\":\"X\"");
         pos != std::string::npos;
         pos = events.find("\"ph\":\"X\"", pos + 1))
        ++count;
    EXPECT_EQ(count, numLifecycleStages);
    for (unsigned i = 0; i < numLifecycleStages; ++i) {
        const std::string name = std::string("\"name\":\"") +
            lifecycleStageName(static_cast<LifecycleStage>(i)) + "\"";
        EXPECT_NE(events.find(name), std::string::npos) << name;
    }

    buffer.reset();
    EXPECT_TRUE(buffer.events().empty());
}

TEST(ChromeTrace, WriterWrapsEventsIntoOneDocument)
{
    ChromeTraceBuffer buffer;
    buffer.packet(stampedPacket());

    std::ostringstream out;
    writeChromeTrace(out, buffer.events());
    const std::string doc = out.str();
    EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ns\""),
              std::string::npos);

    // An empty stream must still be a valid document.
    std::ostringstream empty;
    writeChromeTrace(empty, "");
    EXPECT_NE(empty.str().find("\"traceEvents\":["), std::string::npos);
}

// ---------------------------------------------------------------------
// Experiment integration: reconstruction, digests, jobs-invariance
// ---------------------------------------------------------------------

ExperimentConfig
shortConfig()
{
    ExperimentConfig cfg;
    const AddressMapper mapper(cfg.device.structure, cfg.device.maxBlock,
                               256, cfg.device.mapping);
    cfg.pattern = vaultPattern(mapper, 16);
    cfg.warmup = 2 * tickUs;
    cfg.measure = 20 * tickUs;
    return cfg;
}

TEST(TracedExperiment, BreakdownReconstructsEndToEndLatency)
{
    RunOptions opts;
    opts.trace.enabled = true;
    opts.trace.samplePeriod = 0; // aggregate only
    RunArtifacts artifacts;
    const MeasurementResult res =
        runExperiment(shortConfig(), opts, &artifacts);

    ASSERT_TRUE(res.stages.enabled);
    ASSERT_GT(res.stages.endToEndNs.count(), 0u);
    // The stage means telescope to the traced end-to-end mean...
    EXPECT_NEAR(res.stages.stageMeanSumNs(),
                res.stages.endToEndNs.mean(),
                1e-6 * res.stages.endToEndNs.mean());
    // ...and the traced population is the measured one: its mean must
    // match the port-measured read latency (same packets, ro mix).
    EXPECT_NEAR(res.stages.endToEndNs.mean(), res.readLatencyNs.mean(),
                0.01 * res.readLatencyNs.mean());
    // Artifacts carry the same aggregate.
    EXPECT_EQ(artifacts.stages.endToEndNs.count(),
              res.stages.endToEndNs.count());
}

TEST(TracedExperiment, LowLoadStreamBreakdownWithinOnePercent)
{
    // The acceptance gate: a single in-flight read decomposes into
    // stages whose sum reconstructs the end-to-end latency within 1 %
    // (here it is exact by construction; the gate allows rounding).
    StreamExperimentConfig cfg;
    const AddressMapper mapper(cfg.device.structure, cfg.device.maxBlock,
                               256, cfg.device.mapping);
    cfg.pattern = vaultPattern(mapper, 16);
    cfg.requestsPerStream = 1;
    cfg.repetitions = 32;

    RunOptions opts;
    opts.trace.enabled = true;
    opts.trace.samplePeriod = 0;
    RunArtifacts artifacts;
    const SampleStats latency =
        runStreamExperiment(cfg, opts, &artifacts);

    ASSERT_TRUE(artifacts.stages.enabled);
    EXPECT_EQ(artifacts.stages.endToEndNs.count(), latency.count());
    EXPECT_NEAR(artifacts.stages.stageMeanSumNs(), latency.mean(),
                0.01 * latency.mean());
    // At one in-flight request nothing queues: the vault-queue stage
    // must be a small fraction of the round trip.
    EXPECT_LT(artifacts.stages.stage(LifecycleStage::VaultQueue).mean(),
              0.2 * latency.mean());
}

TEST(TracedExperiment, DisabledTracingDigestMatchesLegacyApi)
{
    // The zero-cost contract, digest half: with tracing off the new
    // RunOptions API must register the exact same stats as the
    // pre-tracing API, so the determinism digest is unchanged.
    const ExperimentConfig cfg = shortConfig();

    std::uint64_t legacy = 0;
    runExperiment(cfg, &legacy); // deprecated overload

    RunArtifacts artifacts;
    runExperiment(cfg, RunOptions{}, &artifacts);

    ASSERT_NE(legacy, 0u);
    EXPECT_EQ(legacy, artifacts.statDigest);
}

TEST(TracedExperiment, EnabledTracingIsDeterministic)
{
    // Tracer stats join the registry, so the digest changes -- but it
    // must change to the same value every run.
    const ExperimentConfig cfg = shortConfig();
    RunOptions opts;
    opts.trace.enabled = true;

    RunArtifacts a, b;
    runExperiment(cfg, opts, &a);
    runExperiment(cfg, opts, &b);
    EXPECT_EQ(a.statDigest, b.statDigest);

    std::uint64_t untraced = 0;
    runExperiment(cfg, &untraced);
    EXPECT_NE(a.statDigest, untraced);
}

TEST(TracedSweep, JobsOneAndEightProduceIdenticalTraces)
{
    SweepAxes axes;
    axes.base = shortConfig();
    axes.base.measure = 10 * tickUs;
    const AddressMapper mapper(axes.base.device.structure,
                               axes.base.device.maxBlock, 256,
                               axes.base.device.mapping);
    axes.patterns = {vaultPattern(mapper, 16), vaultPattern(mapper, 4)};
    axes.sizes = {128, 32};

    const auto runWith = [&axes](unsigned jobs) {
        SweepOptions opts;
        opts.jobs = jobs;
        opts.trace.enabled = true;
        opts.trace.samplePeriod = 8;
        SweepRunner runner(opts);
        return runner.run(axes);
    };

    const auto serial = runWith(1);
    const auto parallel = runWith(8);
    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(serial.size(), parallel.size());

    const std::string joinedSerial = joinTraceEvents(serial);
    EXPECT_FALSE(joinedSerial.empty());
    EXPECT_EQ(joinedSerial, joinTraceEvents(parallel));
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].traceJson, parallel[i].traceJson);
        EXPECT_EQ(serial[i].statDigest, parallel[i].statDigest);
        EXPECT_FALSE(serial[i].fromCache);
    }
}

} // namespace
