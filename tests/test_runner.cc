/**
 * @file
 * Tests for the parallel sweep orchestration subsystem (src/runner/):
 * thread-pool execution and exception propagation, config-digest
 * stability/sensitivity, result-cache hit/miss/eviction and disk
 * round trips, and the headline determinism contract -- a 12-point
 * sweep at --jobs 1 and --jobs 8 produces bit-identical
 * MeasurementResult values and identical StatRegistry digests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <set>
#include <stdexcept>

#include "runner/config_digest.hh"
#include "runner/result_cache.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"

namespace
{

using namespace hmcsim;

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, ExecutesEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numWorkers(), 4u);

    std::atomic<int> executed{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([&executed] { ++executed; }));
    for (std::future<void> &future : futures)
        future.get();
    EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPool, DrainsQueueOnDestruction)
{
    std::atomic<int> executed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&executed] { ++executed; });
        // No explicit wait: the destructor must run every queued task.
    }
    EXPECT_EQ(executed.load(), 32);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures)
{
    ThreadPool pool(2);
    std::future<void> bad =
        pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);

    // The pool survives a throwing task.
    std::atomic<int> executed{0};
    pool.submit([&executed] { ++executed; }).get();
    EXPECT_EQ(executed.load(), 1);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(100);
    pool.parallelFor(100, [&hits](std::size_t i) { ++hits[i]; });
    for (const std::atomic<int> &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    EXPECT_THROW(pool.parallelFor(16,
                                  [&executed](std::size_t i) {
                                      ++executed;
                                      if (i == 3)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    // All indices still ran: one failure never tears the batch.
    EXPECT_EQ(executed.load(), 16);
}

// ---------------------------------------------------------------------
// Config digest
// ---------------------------------------------------------------------

ExperimentConfig
digestTestConfig()
{
    ExperimentConfig cfg;
    cfg.warmup = 10 * tickUs;
    cfg.measure = 50 * tickUs;
    return cfg;
}

TEST(ConfigDigest, StableAcrossAssignmentOrder)
{
    // The digest hashes a canonical serialization, so two configs
    // whose fields were populated in opposite orders (and a copy)
    // hash identically.
    ExperimentConfig a = digestTestConfig();
    a.requestSize = 64;
    a.mix = RequestMix::ReadModifyWrite;
    a.numPorts = 4;

    ExperimentConfig b = digestTestConfig();
    b.numPorts = 4;
    b.mix = RequestMix::ReadModifyWrite;
    b.requestSize = 64;

    EXPECT_EQ(configDigest(a), configDigest(b));
    const ExperimentConfig c = a;
    EXPECT_EQ(configDigest(a), configDigest(c));
}

TEST(ConfigDigest, EveryFieldChangesTheDigest)
{
    const ExperimentConfig base = digestTestConfig();
    const std::uint64_t ref = configDigest(base);

    auto mutated = [&base](auto &&mutate) {
        ExperimentConfig cfg = base;
        mutate(cfg);
        return configDigest(cfg);
    };

    std::set<std::uint64_t> digests{ref};
    digests.insert(
        mutated([](ExperimentConfig &c) { c.requestSize = 32; }));
    digests.insert(
        mutated([](ExperimentConfig &c) { c.mix = RequestMix::Atomic; }));
    digests.insert(mutated(
        [](ExperimentConfig &c) { c.mode = AddressingMode::Linear; }));
    digests.insert(mutated([](ExperimentConfig &c) { c.numPorts = 3; }));
    digests.insert(mutated([](ExperimentConfig &c) { c.seed = 99; }));
    digests.insert(
        mutated([](ExperimentConfig &c) { c.measure = 60 * tickUs; }));
    digests.insert(mutated([](ExperimentConfig &c) {
        c.pattern.mask = c.pattern.mask ^ 0x80;
    }));
    digests.insert(mutated([](ExperimentConfig &c) {
        c.device.mapping = MappingScheme::BankFirst;
    }));
    digests.insert(mutated([](ExperimentConfig &c) {
        c.controller.bitErrorRate = 1e-12;
    }));
    digests.insert(mutated([](ExperimentConfig &c) {
        c.device.vault.timings.tRcd += 1;
    }));
    digests.insert(mutated([](ExperimentConfig &c) {
        c.device.vault.backend.kind = BackendKind::Nvm;
    }));
    digests.insert(mutated([](ExperimentConfig &c) {
        c.device.vault.backend.nvmWriteLatency += 1;
    }));
    // All 13 distinct: no mutation collided with another or with ref.
    EXPECT_EQ(digests.size(), 13u);
}

TEST(ConfigDigest, SeedExcludedOnRequest)
{
    ExperimentConfig a = digestTestConfig();
    ExperimentConfig b = a;
    b.seed = a.seed + 1;
    EXPECT_NE(configDigest(a), configDigest(b));
    EXPECT_EQ(configDigest(a, false), configDigest(b, false));
}

TEST(SeedDerivation, ContentAddressedAndNonZero)
{
    const ExperimentConfig base = digestTestConfig();
    // Same content + same sweep seed -> same derived seed; the
    // pre-set seed field is irrelevant.
    ExperimentConfig reseeded = base;
    reseeded.seed = 12345;
    EXPECT_EQ(deriveSeed(7, base), deriveSeed(7, reseeded));
    EXPECT_NE(deriveSeed(7, base), deriveSeed(8, base));
    EXPECT_NE(deriveSeed(7, base), 0u);

    ExperimentConfig other = base;
    other.requestSize = 32;
    EXPECT_NE(deriveSeed(7, base), deriveSeed(7, other));

    EXPECT_EQ(withDerivedSeed(base, 7).seed, deriveSeed(7, base));
}

// ---------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------

CachedResult
fakeResult(double gbps)
{
    CachedResult value;
    value.result.patternName = "16 vaults";
    value.result.mix = RequestMix::ReadOnly;
    value.result.requestSize = 128;
    value.result.rawGBps = gbps;
    value.result.mrps = gbps * 7.8125;
    value.result.readLatencyNs.sample(650.25);
    value.result.readLatencyNs.sample(1333.125);
    value.statDigest = 0xDEADBEEFCAFEF00DULL;
    return value;
}

bool
bitIdentical(const MeasurementResult &a, const MeasurementResult &b)
{
    const auto eq = [](double x, double y) {
        return std::memcmp(&x, &y, sizeof(double)) == 0;
    };
    const auto statsEq = [&eq](const SampleStats &x,
                               const SampleStats &y) {
        const SampleStats::Raw rx = x.raw();
        const SampleStats::Raw ry = y.raw();
        return rx.count == ry.count && eq(rx.sum, ry.sum) &&
               eq(rx.min, ry.min) && eq(rx.max, ry.max) &&
               eq(rx.welfordMean, ry.welfordMean) &&
               eq(rx.welfordM2, ry.welfordM2);
    };
    return a.patternName == b.patternName && a.mix == b.mix &&
           a.requestSize == b.requestSize && eq(a.rawGBps, b.rawGBps) &&
           eq(a.mrps, b.mrps) && eq(a.readMrps, b.readMrps) &&
           eq(a.writeMrps, b.writeMrps) &&
           eq(a.readPayloadGBps, b.readPayloadGBps) &&
           eq(a.writePayloadGBps, b.writePayloadGBps) &&
           statsEq(a.readLatencyNs, b.readLatencyNs) &&
           statsEq(a.writeLatencyNs, b.writeLatencyNs) &&
           eq(a.readLatencyP50Ns, b.readLatencyP50Ns) &&
           eq(a.readLatencyP99Ns, b.readLatencyP99Ns) &&
           eq(a.readLatencyP999Ns, b.readLatencyP999Ns);
}

TEST(ResultCache, HitMissAccounting)
{
    ResultCache cache;
    EXPECT_FALSE(cache.lookup(1).has_value());
    cache.store(1, fakeResult(20.0));
    const auto hit = cache.lookup(1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(bitIdentical(hit->result, fakeResult(20.0).result));
    EXPECT_EQ(hit->statDigest, 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed)
{
    ResultCache cache("", 3);
    cache.store(1, fakeResult(1.0));
    cache.store(2, fakeResult(2.0));
    cache.store(3, fakeResult(3.0));
    // Touch 1 so 2 becomes the LRU entry, then overflow.
    EXPECT_TRUE(cache.lookup(1).has_value());
    cache.store(4, fakeResult(4.0));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_FALSE(cache.lookup(2).has_value());
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_TRUE(cache.lookup(3).has_value());
    EXPECT_TRUE(cache.lookup(4).has_value());
}

TEST(ResultCache, SerializationRoundTripsBitExactly)
{
    CachedResult value = fakeResult(21.337);
    // Awkward doubles: negative zero, subnormal-ish, many digits.
    value.result.writeMrps = -0.0;
    value.result.readLatencyP99Ns = 1234.5678901234567;
    value.result.readLatencyP999Ns = 9876.5432109876543;
    const auto parsed =
        ResultCache::deserialize(ResultCache::serialize(value));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(bitIdentical(parsed->result, value.result));
    EXPECT_EQ(parsed->statDigest, value.statDigest);

    EXPECT_FALSE(ResultCache::deserialize("garbage").has_value());
    // Pre-p999 (v1) entries on disk are rejected as clean misses.
    EXPECT_FALSE(
        ResultCache::deserialize("hmcsim-result v1\nnope").has_value());
    // Pre-backend (v2) entries carry digests from the v1 config
    // serialization; they too must become clean misses.
    EXPECT_FALSE(
        ResultCache::deserialize("hmcsim-result v2\nnope").has_value());
}

TEST(ResultCache, PersistsAcrossInstances)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "hmcsim_test_result_cache";
    std::filesystem::remove_all(dir);

    {
        ResultCache cache(dir.string());
        cache.store(42, fakeResult(9.5));
    }
    ResultCache fresh(dir.string());
    const auto hit = fresh.lookup(42);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(bitIdentical(hit->result, fakeResult(9.5).result));
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Sweep determinism
// ---------------------------------------------------------------------

/** 12 points (4 patterns x 3 sizes), short windows for test speed. */
SweepAxes
testAxes()
{
    static const AddressMapper mapper(HmcConfig::gen2_4GB(),
                                      MaxBlockSize::B128);
    SweepAxes axes;
    axes.patterns = {vaultPattern(mapper, 16), vaultPattern(mapper, 4),
                     vaultPattern(mapper, 1), bankPattern(mapper, 2)};
    axes.mixes = {RequestMix::ReadOnly};
    axes.sizes = {128, 64, 32};
    axes.base.warmup = 10 * tickUs;
    axes.base.measure = 50 * tickUs;
    return axes;
}

TEST(SweepRunner, AxisExpansionIsCanonical)
{
    const std::vector<ExperimentConfig> points = testAxes().expand();
    ASSERT_EQ(points.size(), 12u);
    // Patterns outermost, sizes innermost.
    EXPECT_EQ(points[0].pattern.name, "16 vaults");
    EXPECT_EQ(points[0].requestSize, 128u);
    EXPECT_EQ(points[2].requestSize, 32u);
    EXPECT_EQ(points[3].pattern.name, "4 vaults");
}

TEST(SweepRunner, ParallelBitIdenticalToSerial)
{
    SweepOptions serial;
    serial.jobs = 1;
    const std::vector<SweepPointResult> one =
        SweepRunner(serial).run(testAxes());

    SweepOptions parallel;
    parallel.jobs = 8;
    const std::vector<SweepPointResult> eight =
        SweepRunner(parallel).run(testAxes());

    ASSERT_EQ(one.size(), 12u);
    ASSERT_EQ(eight.size(), 12u);
    for (std::size_t i = 0; i < one.size(); ++i) {
        SCOPED_TRACE(one[i].result.patternName + " / " +
                     std::to_string(one[i].result.requestSize));
        EXPECT_EQ(one[i].digest, eight[i].digest);
        EXPECT_EQ(one[i].config.seed, eight[i].config.seed);
        // The full simulated counter state matched bit-for-bit...
        EXPECT_EQ(one[i].statDigest, eight[i].statDigest);
        // ...and so does every derived measurement field.
        EXPECT_TRUE(bitIdentical(one[i].result, eight[i].result));
    }
}

TEST(SweepRunner, SinkOutputIndependentOfJobCount)
{
    const auto jsonl = [](unsigned jobs) {
        std::ostringstream out;
        JsonLinesSink sink(out);
        SweepOptions opts;
        opts.jobs = jobs;
        opts.sinks = {&sink};
        SweepRunner(opts).run(testAxes());
        return out.str();
    };
    const std::string serial = jsonl(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, jsonl(4));
}

TEST(SweepRunner, CacheShortCircuitsRepeatedRuns)
{
    ResultCache cache;
    SweepOptions opts;
    opts.jobs = 4;
    opts.cache = &cache;

    const std::vector<SweepPointResult> first =
        SweepRunner(opts).run(testAxes());
    for (const SweepPointResult &point : first)
        EXPECT_FALSE(point.fromCache);

    const std::vector<SweepPointResult> second =
        SweepRunner(opts).run(testAxes());
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < second.size(); ++i) {
        EXPECT_TRUE(second[i].fromCache);
        EXPECT_EQ(second[i].statDigest, first[i].statDigest);
        EXPECT_TRUE(
            bitIdentical(second[i].result, first[i].result));
    }
    EXPECT_EQ(cache.hits(), first.size());
}

} // namespace
