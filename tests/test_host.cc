/**
 * @file
 * Unit tests for the host layer: controller calibration arithmetic,
 * the Fig. 14 stage breakdowns, AC-510 assembly, and the experiment
 * runner plumbing.
 */

#include <gtest/gtest.h>

#include "host/ac510.hh"
#include "host/calibration.hh"
#include "host/experiment.hh"
#include "host/hmc_controller.hh"

namespace hmcsim
{
namespace
{

TEST(Calibration, FixedLatenciesMatchPaperFigure14)
{
    const ControllerCalibration cal;
    // 34 pipeline cycles at 187.5 MHz ~= 181 ns before serialization.
    EXPECT_NEAR(ticksToNs(cal.txFixedLatency()), 181.3, 1.0);
    EXPECT_NEAR(ticksToNs(cal.rxFixedLatency()), 160.0, 1.0);
}

TEST(Calibration, LinkConfigsDerateTheRawRate)
{
    const ControllerCalibration cal;
    EXPECT_NEAR(cal.txLinkConfig().effectiveLinkBytesPerSecond(),
                cal.txBytesPerSecondPerLink, 1.0);
    EXPECT_NEAR(cal.rxLinkConfig().effectiveLinkBytesPerSecond(),
                cal.rxBytesPerSecondPerLink, 1.0);
    EXPECT_LT(cal.txLinkConfig().protocolEfficiency, 1.0);
    EXPECT_LT(cal.rxLinkConfig().protocolEfficiency, 1.0);
}

TEST(Controller, TxBreakdownSumsNearPaperValue)
{
    Ac510Config sys;
    Ac510Module module(sys);
    double total = 0.0;
    for (const StageLatency &s :
         module.controller().txStageBreakdown(144))
        total += s.ns;
    // Paper: up to 54 cycles / ~287 ns on the TX path.
    EXPECT_NEAR(total, 287.0, 15.0);
}

TEST(Controller, RxBreakdownSumsNearPaperValue)
{
    Ac510Config sys;
    Ac510Module module(sys);
    double total = 0.0;
    for (const StageLatency &s :
         module.controller().rxStageBreakdown(144))
        total += s.ns;
    EXPECT_NEAR(total, 260.0, 15.0);
}

TEST(Controller, InfrastructureLatencyNearPaper547)
{
    Ac510Config sys;
    Ac510Module module(sys);
    const double infra = module.controller().infrastructureLatencyNs(
        requestBytes(Command::Read, 128),
        responseBytes(Command::Read, 128));
    EXPECT_NEAR(infra, 547.0, 30.0);
}

TEST(Controller, BiggerPacketsSpendLongerOnTheWire)
{
    Ac510Config sys;
    Ac510Module module(sys);
    const auto &ctrl = module.controller();
    double tx_small = 0.0, tx_large = 0.0;
    for (const auto &s : ctrl.txStageBreakdown(32))
        tx_small += s.ns;
    for (const auto &s : ctrl.txStageBreakdown(144))
        tx_large += s.ns;
    EXPECT_GT(tx_large, tx_small);
}

TEST(Ac510, RejectsBadPortCounts)
{
    Ac510Config sys;
    sys.numPorts = 0;
    EXPECT_DEATH({ Ac510Module module(sys); }, "1..9");
    Ac510Config sys10;
    sys10.numPorts = 10;
    EXPECT_DEATH({ Ac510Module module(sys10); }, "1..9");
}

TEST(Ac510, RunsAndDeliversResponses)
{
    Ac510Config sys;
    sys.numPorts = 2;
    sys.port.requestBudget = 10;
    Ac510Module module(sys);
    module.start();
    module.runToCompletion();
    const GupsPortStats agg = module.aggregateStats();
    EXPECT_EQ(agg.readsIssued, 20u);
    EXPECT_EQ(agg.readsCompleted, 20u);
    EXPECT_TRUE(module.allPortsIdle());
}

TEST(Ac510, ConservationNoResponseLeaks)
{
    Ac510Config sys;
    sys.numPorts = maxGupsPorts;
    Ac510Module module(sys);
    module.start();
    module.runUntil(200 * tickUs);
    module.stop();
    module.runToCompletion(); // drain
    const GupsPortStats agg = module.aggregateStats();
    EXPECT_EQ(agg.readsIssued, agg.readsCompleted);
    EXPECT_TRUE(module.allPortsIdle());
    EXPECT_EQ(module.controller().stats().requestsSubmitted,
              module.controller().stats().responsesDelivered);
    EXPECT_EQ(module.device().stats().requests, agg.readsIssued);
}

TEST(Experiment, MeasurementFieldsConsistent)
{
    ExperimentConfig cfg;
    cfg.measure = 200 * tickUs;
    const MeasurementResult m = runExperiment(cfg);
    EXPECT_GT(m.rawGBps, 0.0);
    EXPECT_GT(m.readMrps, 0.0);
    EXPECT_DOUBLE_EQ(m.writeMrps, 0.0); // read-only
    EXPECT_NEAR(m.mrps, m.readMrps + m.writeMrps, 1e-9);
    // Raw bytes per request = 160 for 128 B reads.
    EXPECT_NEAR(m.rawGBps * 1000.0 / m.mrps, 160.0, 1.0);
    EXPECT_GT(m.readLatencyNs.min(), 500.0); // > infrastructure
}

TEST(Experiment, SeedReproducibility)
{
    ExperimentConfig cfg;
    cfg.measure = 100 * tickUs;
    cfg.seed = 1234;
    const MeasurementResult a = runExperiment(cfg);
    const MeasurementResult b = runExperiment(cfg);
    EXPECT_DOUBLE_EQ(a.rawGBps, b.rawGBps);
    EXPECT_DOUBLE_EQ(a.readLatencyNs.mean(), b.readLatencyNs.mean());
}

TEST(Experiment, TrafficSummaryMatchesMeasurement)
{
    ExperimentConfig cfg;
    cfg.mix = RequestMix::ReadModifyWrite;
    cfg.measure = 200 * tickUs;
    const MeasurementResult m = runExperiment(cfg);
    const TrafficSummary t = m.traffic();
    EXPECT_DOUBLE_EQ(t.rawGBps, m.rawGBps);
    EXPECT_GT(t.readPayloadGBps, 0.0);
    EXPECT_GT(t.writePayloadGBps, 0.0);
    // rw: one write per read.
    EXPECT_NEAR(t.readMrps, t.writeMrps, t.readMrps * 0.05);
}

TEST(Experiment, ThermalExperimentSolvesFixedPoint)
{
    ExperimentConfig cfg;
    cfg.measure = 200 * tickUs;
    const ThermalExperimentResult r =
        runThermalExperiment(cfg, coolingConfig(1));
    EXPECT_GT(r.powerThermal.temperatureC,
              coolingConfig(1).idleTemperatureC);
    EXPECT_FALSE(r.powerThermal.failure);
    EXPECT_GT(r.powerThermal.systemW, 100.0);
}

TEST(Experiment, StreamReturnsOneLatencyPerRequest)
{
    StreamExperimentConfig cfg;
    cfg.requestsPerStream = 7;
    cfg.repetitions = 3;
    const SampleStats lat = runStreamExperiment(cfg);
    EXPECT_EQ(lat.count(), 21u);
    EXPECT_GT(lat.min(), 0.0);
    EXPECT_GE(lat.max(), lat.mean());
}

TEST(Experiment, StreamLatencyGrowsWithStreamSize)
{
    StreamExperimentConfig small;
    small.requestsPerStream = 2;
    small.repetitions = 16;
    StreamExperimentConfig large;
    large.requestsPerStream = 28;
    large.repetitions = 16;
    EXPECT_GT(runStreamExperiment(large).max(),
              runStreamExperiment(small).max());
}

TEST(Experiment, TailLatencyPercentilesAreOrdered)
{
    ExperimentConfig cfg;
    cfg.measure = 200 * tickUs;
    const MeasurementResult m = runExperiment(cfg);
    EXPECT_GT(m.readLatencyP50Ns, m.readLatencyNs.min() * 0.9);
    EXPECT_GE(m.readLatencyP99Ns, m.readLatencyP50Ns);
    EXPECT_LE(m.readLatencyP99Ns, m.readLatencyNs.max() * 1.1);
    // The mean sits between the median and the max.
    EXPECT_LT(m.readLatencyP50Ns, m.readLatencyNs.max());
}

TEST(Experiment, PortsScaleOfferedLoad)
{
    ExperimentConfig one;
    one.numPorts = 1;
    one.measure = 200 * tickUs;
    ExperimentConfig nine;
    nine.numPorts = 9;
    nine.measure = 200 * tickUs;
    const MeasurementResult m1 = runExperiment(one);
    const MeasurementResult m9 = runExperiment(nine);
    EXPECT_GT(m9.rawGBps, m1.rawGBps);
}

} // namespace
} // namespace hmcsim
