/**
 * @file
 * Graph analytics on HMC: host-side vs in-memory updates.
 *
 * The paper cites GraphPIM (instruction-level PIM offloading for
 * graph frameworks) as a motivating direction. This example builds
 * one BFS-like frontier expansion over a synthetic graph in CSR form
 * and expresses it two ways against the simulated cube:
 *
 *  - host-side: read each vertex's adjacency block, then
 *    read-modify-write every touched neighbor's state word;
 *  - PIM-style: read the adjacency block, then issue one atomic
 *    update per neighbor (the update logic runs in the vault).
 *
 * The traffic difference is exactly the offload argument: atomics
 * cut the per-neighbor link traffic from 2 x (16 B + overhead)
 * packets with data both ways to a 48 B round trip.
 */

#include <cstdio>

#include "analysis/table.hh"
#include "gups/trace.hh"
#include "host/trace_replay.hh"
#include "sim/random.hh"

using namespace hmcsim;

namespace
{

struct GraphParams
{
    std::size_t frontierVertices = 4000;
    unsigned avgDegree = 8;
    Bytes adjacencyBlock = 128; ///< one max-block of edges per read
    Bytes graphFootprint = 2 * gib;
};

/** Build the frontier-expansion trace. */
Trace
buildTrace(const GraphParams &g, bool use_atomics, std::uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    Trace trace;
    const Bytes slots = g.graphFootprint / g.adjacencyBlock;
    for (std::size_t v = 0; v < g.frontierVertices; ++v) {
        // Adjacency list read (CSR row): one 128 B block.
        trace.push_back({Command::Read,
                         rng.nextBounded(slots) * g.adjacencyBlock,
                         g.adjacencyBlock});
        // Touch each neighbor's 16 B state word.
        const unsigned degree =
            1 + static_cast<unsigned>(rng.nextBounded(2 * g.avgDegree));
        for (unsigned e = 0; e < degree; ++e) {
            const Addr state =
                rng.nextBounded(g.graphFootprint / 16) * 16;
            if (use_atomics) {
                trace.push_back({Command::Atomic, state, 16});
            } else {
                trace.push_back({Command::Read, state, 16});
                trace.push_back({Command::Write, state, 16});
            }
        }
    }
    return trace;
}

} // namespace

int
main()
{
    const GraphParams graph;
    std::printf("BFS frontier expansion: %zu vertices, ~%u neighbors "
                "each, CSR adjacency in a %llu MB graph\n\n",
                graph.frontierVertices, graph.avgDegree,
                static_cast<unsigned long long>(graph.graphFootprint /
                                                mib));

    const Trace host_trace = buildTrace(graph, false, 11);
    const Trace pim_trace = buildTrace(graph, true, 11);

    TextTable table({"Strategy", "Requests", "Raw GB/s",
                     "Edges M/s", "Drain ms", "Link bytes/edge"});
    double host_ms = 0.0, pim_ms = 0.0;
    for (int pim = 0; pim <= 1; ++pim) {
        const Trace &trace = pim ? pim_trace : host_trace;
        TraceReplayConfig cfg;
        cfg.maxOutstanding = 128;
        const TraceReplayResult r = replayTrace(trace, cfg);
        const double edges =
            static_cast<double>(host_trace.size() -
                                graph.frontierVertices) /
            2.0; // host trace has read+write per edge
        const double ms = ticksToUs(r.elapsed) / 1000.0;
        (pim ? pim_ms : host_ms) = ms;
        const double raw_bytes =
            r.rawGBps * ticksToSeconds(r.elapsed) * 1e9;
        table.addRow({pim ? "PIM atomics" : "host rw",
                      strfmt("%zu", trace.size()),
                      strfmt("%.1f", r.rawGBps),
                      strfmt("%.1f", edges / ms / 1000.0),
                      strfmt("%.2f", ms),
                      strfmt("%.0f", raw_bytes / edges)});
    }
    table.print();

    std::printf("\nOffloading the neighbor updates into the cube "
                "finishes the frontier %.2fx faster and moves less "
                "link data per edge -- the GraphPIM-style win the "
                "paper's PIM discussion anticipates. The thermal "
                "caveat from Sec. IV-C still applies: in-memory "
                "updates are write-heavy, so the 75 C bound governs "
                "sustained operation (see examples/thermal_budget).\n",
                host_ms / pim_ms);
    return 0;
}
