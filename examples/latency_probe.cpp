/**
 * @file
 * Latency probe: where does a memory reference spend its time?
 *
 * Uses the controller's Fig. 14 stage breakdown plus stream-GUPS
 * measurements to print an annotated round-trip budget for a single
 * read, then shows how queueing inflates it as load rises -- the
 * low-load-to-high-load story of Secs. IV-E2 and IV-E3.
 */

#include <cstdio>

#include "analysis/table.hh"
#include "host/experiment.hh"

using namespace hmcsim;

int
main()
{
    Ac510Config sys;
    Ac510Module module(sys);
    const HmcController &ctrl = module.controller();

    const Bytes size = 128;
    std::printf("Round-trip budget for one %llu B read\n\n",
                static_cast<unsigned long long>(size));

    TextTable table({"Path", "Stage", "ns"});
    for (const StageLatency &s :
         ctrl.txStageBreakdown(requestBytes(Command::Read, size)))
        table.addRow({"TX", s.name, strfmt("%.1f", s.ns)});
    table.addRow({"HMC", "quadrant routing + vault + DRAM + response",
                  "(measured below)"});
    for (const StageLatency &s :
         ctrl.rxStageBreakdown(responseBytes(Command::Read, size)))
        table.addRow({"RX", s.name, strfmt("%.1f", s.ns)});
    table.print();

    const double infra = ctrl.infrastructureLatencyNs(
        requestBytes(Command::Read, size),
        responseBytes(Command::Read, size));

    // Measure the minimum end-to-end latency with a single read.
    StreamExperimentConfig one;
    one.requestsPerStream = 1;
    one.requestSize = size;
    one.repetitions = 64;
    const double min_rtt = runStreamExperiment(one).min();

    std::printf("\ninfrastructure (FPGA + links): %7.0f ns\n", infra);
    std::printf("inside the cube:               %7.0f ns\n",
                min_rtt - infra);
    std::printf("minimum round trip:            %7.0f ns\n\n", min_rtt);

    // Now inflate it with load.
    std::printf("Queueing under load (random %llu B reads, 16 "
                "vaults):\n\n",
                static_cast<unsigned long long>(size));
    TextTable load({"Load", "Avg latency ns", "x minimum"});
    StreamExperimentConfig burst;
    burst.requestSize = size;
    burst.repetitions = 32;
    burst.requestsPerStream = 28;
    const double low = runStreamExperiment(burst).mean();
    load.addRow({"28-read burst, one port", strfmt("%.0f", low),
                 strfmt("%.1fx", low / min_rtt)});

    ExperimentConfig high;
    high.requestSize = size;
    const MeasurementResult m = runExperiment(high);
    load.addRow({"full-scale GUPS (9 ports x 64 tags)",
                 strfmt("%.0f", m.readLatencyNs.mean()),
                 strfmt("%.1fx", m.readLatencyNs.mean() / min_rtt)});
    load.print();

    std::printf("\nAt full load the 576 outstanding reads queue behind "
                "one another: latency is Little's law (576 / %.0f "
                "MRPS = %.0f ns), not DRAM time.\n",
                m.readMrps, 576.0 / m.readMrps * 1000.0);
    return 0;
}
