/**
 * @file
 * Data-layout case study: where should a streaming application place
 * its arrays inside an HMC?
 *
 * The paper's Sec. IV-D recommendation: do not allocate sequentially
 * within a vault (the 10 GB/s vault bound and the closed-page policy
 * make locality worthless); stripe data across vaults and banks and
 * use 128 B requests to amortize the one-flit packet overhead.
 *
 * This example measures four candidate layouts for the same streaming
 * kernel and prints the achieved bandwidth and effective (payload)
 * bandwidth, reproducing the reasoning behind insights (i)-(iii) of
 * the paper's conclusion.
 */

#include <cstdio>

#include "analysis/table.hh"
#include "host/experiment.hh"

using namespace hmcsim;

namespace
{

struct Layout
{
    const char *name;
    const char *description;
    AccessPattern pattern;
    Bytes requestSize;
};

MeasurementResult
run(const Layout &layout)
{
    ExperimentConfig cfg;
    cfg.pattern = layout.pattern;
    cfg.requestSize = layout.requestSize;
    cfg.mode = AddressingMode::Linear; // a streaming kernel
    cfg.mix = RequestMix::ReadOnly;
    return runExperiment(cfg);
}

} // namespace

int
main()
{
    const AddressMapper mapper(HmcConfig::gen2_4GB(),
                               MaxBlockSize::B128);

    const Layout layouts[] = {
        {"vault-sequential / 32B",
         "array packed into one vault, small requests",
         vaultPattern(mapper, 1), 32},
        {"vault-sequential / 128B",
         "array packed into one vault, full-block requests",
         vaultPattern(mapper, 1), 128},
        {"striped / 32B", "array striped across all 16 vaults",
         vaultPattern(mapper, 16), 32},
        {"striped / 128B",
         "array striped across all 16 vaults, full-block requests",
         vaultPattern(mapper, 16), 128},
    };

    std::printf("Streaming-kernel data layout study (linear reads, "
                "full-scale GUPS)\n\n");
    TextTable table({"Layout", "Raw GB/s", "Payload GB/s",
                     "Efficiency", "Avg latency us"});
    double best = 0.0;
    const char *best_name = nullptr;
    for (const Layout &layout : layouts) {
        const MeasurementResult m = run(layout);
        const double payload = m.readPayloadGBps;
        table.addRow({layout.name, strfmt("%.1f", m.rawGBps),
                      strfmt("%.1f", payload),
                      strfmt("%.0f%%",
                             effectiveBandwidthFraction(
                                 layout.requestSize) *
                                 100.0),
                      strfmt("%.2f", m.readLatencyNs.mean() / 1000.0)});
        if (payload > best) {
            best = payload;
            best_name = layout.name;
        }
    }
    table.print();

    std::printf("\nBest layout: %s (%.1f GB/s of payload).\n", best_name,
                best);
    std::printf("Paper's guidance confirmed: stripe across vaults "
                "(avoid the 10 GB/s vault bound) and use 128 B "
                "requests (%.0f%% effective bandwidth vs %.0f%% at "
                "16 B).\n",
                effectiveBandwidthFraction(128) * 100.0,
                effectiveBandwidthFraction(16) * 100.0);
    return 0;
}
