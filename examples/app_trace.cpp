/**
 * @file
 * Replaying an application trace.
 *
 * Shows the trace workflow end to end: load a trace from a file (or
 * fall back to an embedded one), replay it against the simulated
 * AC-510 + HMC platform at two dependence windows, and print the
 * measurements. Usage:
 *
 *     ./app_trace [trace-file]
 */

#include <cstdio>
#include <fstream>

#include "analysis/table.hh"
#include "gups/trace.hh"
#include "host/trace_replay.hh"

using namespace hmcsim;

namespace
{

/** A small embedded demo trace: a hash-table batch lookup -- random
 *  128 B bucket reads, each followed by a 16 B atomic counter bump. */
Trace
demoTrace()
{
    SyntheticTraceConfig cfg;
    cfg.numEntries = 20000;
    cfg.requestSize = 128;
    cfg.footprint = 1 * gib;
    Trace lookups = uniformTrace(cfg);
    Trace trace;
    trace.reserve(lookups.size() * 2);
    for (const TraceEntry &lookup : lookups) {
        trace.push_back(lookup);
        trace.push_back({Command::Atomic, lookup.addr, 16});
    }
    return trace;
}

} // namespace

int
main(int argc, char **argv)
{
    Trace trace;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        trace = parseTrace(in);
        std::printf("loaded %zu records from %s\n\n", trace.size(),
                    argv[1]);
    } else {
        trace = demoTrace();
        std::printf("no trace file given; using the embedded "
                    "hash-table demo (%zu records)\n\n",
                    trace.size());
    }

    TextTable table({"Issue window", "Raw GB/s", "Payload GB/s", "MRPS",
                     "Avg lat us", "Drain time ms"});
    for (unsigned window : {1u, 8u, 64u}) {
        TraceReplayConfig cfg;
        cfg.maxOutstanding = window;
        const TraceReplayResult r = replayTrace(trace, cfg);
        table.addRow({strfmt("%u outstanding", window),
                      strfmt("%.2f", r.rawGBps),
                      strfmt("%.2f", r.payloadGBps),
                      strfmt("%.1f", r.mrps),
                      strfmt("%.2f", r.latencyNs.mean() / 1000.0),
                      strfmt("%.2f", ticksToUs(r.elapsed) / 1000.0)});
    }
    table.print();

    std::printf("\nThe window is the knob applications control: "
                "expose independent requests (prefetch, batch, hash "
                "multiple keys) and the packet-switched HMC overlaps "
                "them; serialize and you pay the full ~0.7 us round "
                "trip per access.\n");
    return 0;
}
