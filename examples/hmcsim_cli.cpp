/**
 * @file
 * hmcsim_cli -- run any paper-style experiment from the command line.
 *
 * Subcommands (`hmcsim_cli <command> --help` prints the same text):
 *
 *     run        one experiment + power/thermal solve (the default:
 *                a bare flag list is treated as `run` for backwards
 *                compatibility, including the legacy --selfcheck flag)
 *     sweep      a parallel multi-point campaign with structured sinks
 *     selfcheck  determinism probe: run the config twice, compare
 *                bit-exact stat-registry digests
 *     trace      one traced experiment: per-stage latency table plus
 *                a Chrome/Perfetto JSON stream of sampled lifecycles
 *
 * Every subcommand spells the shared knobs identically: --seed,
 * --out, --jobs (where jobs make sense), and the experiment flags
 * below. `run` and `sweep` accept --trace-out/--trace-sample to
 * attach the lifecycle tracer (docs/observability.md).
 */

#include <signal.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dist/coordinator.hh"
#include "dist/store.hh"
#include "dist/worker.hh"
#include "host/experiment.hh"
#include "host/trace_replay.hh"
#include "mem/backend.hh"
#include "runner/result_cache.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "service/fleet.hh"
#include "sim/stat_registry.hh"
#include "trace/lifecycle.hh"
#include "trace/trace_sink.hh"

using namespace hmcsim;

namespace
{

void
printHelp(std::FILE *out)
{
    std::fputs(
        "usage: hmcsim_cli [run] [options]        one experiment\n"
        "       hmcsim_cli sweep [options]        parallel campaign\n"
        "       hmcsim_cli selfcheck [options]    determinism probe\n"
        "       hmcsim_cli trace [options]        traced experiment\n"
        "       hmcsim_cli serve [options]        streaming request "
        "service\n"
        "       hmcsim_cli worker [options]       distributed sweep "
        "worker\n"
        "\n"
        "experiment options (all commands):\n"
        "  --mix ro|wo|rw|atomic      request mix          (default ro)\n"
        "  --size N                   request bytes        (default 128)\n"
        "  --vaults N                 vault pattern 1..16  (default 16)\n"
        "  --banks N                  bank pattern 1..16 (in vault 0)\n"
        "  --ports N                  active GUPS ports    (default 9)\n"
        "  --linear                   linear addressing  (default random)\n"
        "  --measure-us N             measurement window\n"
        "  --warmup-us N              warm-up window\n"
        "  --maxblock 16|32|64|128    mode register        (default 128)\n"
        "  --mapping vault|bank|contig  interleave scheme\n"
        "  --ber X                    lane bit error rate  (default 0)\n"
        "  --refresh X                refresh multiplier   (default off)\n"
        "  --backend hmc|ddr4|nvm     vault storage engine (default hmc;\n"
        "                             docs/backends.md)\n"
        "  --seed S                   experiment/campaign seed "
        "(default 1)\n"
        "\n"
        "run options:\n"
        "  --cooling 1..4             Table III config     (default 1)\n"
        "  --csv                      machine-readable one-line output\n"
        "  --out FILE                 write the CSV line to FILE "
        "(\"-\" = stdout; implies --csv)\n"
        "  --stats [prefix]           dump the component statistics\n"
        "  --trace FILE [--window N]  replay a trace file instead\n"
        "  --selfcheck                legacy spelling of `selfcheck`\n"
        "\n"
        "sweep options:\n"
        "  --jobs N                   concurrent jobs      "
        "(default: cores)\n"
        "  --axis K=V1,V2,...         sweep axis, repeatable; K is one\n"
        "                             of vaults, banks, mix, size, mode,\n"
        "                             ports, backend, measure_us\n"
        "                             (default: paper pattern axis, ro,\n"
        "                             128 B, hmc)\n"
        "  --warm-start               share one warm-up per group of\n"
        "                             points differing only in measure\n"
        "                             window (fork after warm-up)\n"
        "  --same-seeds               keep caller seeds instead of\n"
        "                             deriving per-point seeds (lets a\n"
        "                             measure_us axis share warm-ups)\n"
        "  --out FILE                 JSON-lines results   "
        "(\"-\" = stdout)\n"
        "  --csv-out FILE             CSV results\n"
        "  --cache DIR                persistent result cache\n"
        "  --store DIR                shared cross-process result "
        "store\n"
        "                             (claims divide work between\n"
        "                             processes; docs/runner.md)\n"
        "  --workers unix:P|tcp:H:P   coordinate remote `worker`\n"
        "                             processes instead of running\n"
        "                             locally (output stays byte-\n"
        "                             identical to --jobs 1)\n"
        "  --timing                   include wall-clock metadata\n"
        "                             (nondeterministic; off for diffs)\n"
        "\n"
        "worker options (serves one `sweep --workers` coordinator):\n"
        "  --connect unix:P|tcp:H:P   coordinator address (required)\n"
        "  --jobs N                   local simulation threads\n"
        "  --store DIR                shared result store to consult\n"
        "                             and feed\n"
        "  --batch N                  points per lease  (default: jobs)\n"
        "\n"
        "serve options (docs/service.md has the line protocol):\n"
        "  --in FILE                  request script (default stdin)\n"
        "  --out FILE                 JSONL results  (default stdout)\n"
        "  --jobs N                   default worker count\n"
        "  --cache DIR                persistent result cache for\n"
        "                             `sweep` requests\n"
        "  --store DIR                shared cross-process result store\n"
        "                             consulted before simulating\n"
        "  requests, one per line ('#' comments, blank lines ok):\n"
        "    sweep k=v ...            one sweep point; keys mix, size,\n"
        "                             vaults, banks, ports, mode,\n"
        "                             backend, measure_us, warmup_us,\n"
        "                             seed\n"
        "    traffic k=v ...          one fleet run; keys nodes,\n"
        "                             requests, arrival, rate,\n"
        "                             burst_rate, calm_us, burst_us,\n"
        "                             trace, router, hot_fraction,\n"
        "                             keys, size, vaults, seed, jobs\n"
        "    quit | shutdown          end the session (sinks flushed;\n"
        "                             SIGINT/EOF flush too)\n"
        "\n"
        "tracing options (run, sweep, trace):\n"
        "  --trace-out FILE           Chrome/Perfetto JSON "
        "(\"-\" = stdout; `trace` also accepts --out)\n"
        "  --trace-sample N           emit 1-in-N sampled packets "
        "(default 64; 1 = all)\n"
        "\n"
        "examples:\n"
        "  hmcsim_cli run --mix rw --banks 2 --size 32\n"
        "  hmcsim_cli sweep --jobs 4 --axis size=128,64,32 --out -\n"
        "  hmcsim_cli trace --vaults 16 --out lifecycle.json\n"
        "  hmcsim_cli selfcheck --seed 7\n",
        out);
}

[[noreturn]] void
usage()
{
    printHelp(stderr);
    std::exit(2);
}

const char *
next(int argc, char **argv, int &i)
{
    if (++i >= argc)
        usage();
    return argv[i];
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::istringstream in(list);
    std::string item;
    while (std::getline(in, item, ','))
        out.push_back(item);
    return out;
}

/** Experiment flags every subcommand accepts, plus the pattern
 *  selection that resolves to cfg.pattern once parsing is done. */
struct ExperimentFlags
{
    ExperimentConfig cfg;
    unsigned vaults = 16;
    unsigned banks = 0;

    /** Resolve --vaults/--banks into cfg.pattern. */
    void
    resolvePattern()
    {
        const AddressMapper mapper(cfg.device.structure,
                                   cfg.device.maxBlock, 256,
                                   cfg.device.mapping);
        cfg.pattern = banks ? bankPattern(mapper, banks)
                            : vaultPattern(mapper, vaults);
    }
};

/**
 * The shared flag-parsing helper: consume one experiment flag at
 * argv[i]. Returns false (leaving @p i untouched) when the flag
 * belongs to the calling subcommand instead.
 */
bool
parseExperimentFlag(ExperimentFlags &f, int argc, char **argv, int &i)
{
    const std::string arg = argv[i];
    if (arg == "--mix") {
        const std::string mix = next(argc, argv, i);
        if (mix == "ro")
            f.cfg.mix = RequestMix::ReadOnly;
        else if (mix == "wo")
            f.cfg.mix = RequestMix::WriteOnly;
        else if (mix == "rw")
            f.cfg.mix = RequestMix::ReadModifyWrite;
        else if (mix == "atomic")
            f.cfg.mix = RequestMix::Atomic;
        else
            usage();
    } else if (arg == "--size") {
        f.cfg.requestSize =
            std::strtoull(next(argc, argv, i), nullptr, 0);
    } else if (arg == "--vaults") {
        f.vaults = static_cast<unsigned>(
            std::strtoul(next(argc, argv, i), nullptr, 0));
        f.banks = 0;
    } else if (arg == "--banks") {
        f.banks = static_cast<unsigned>(
            std::strtoul(next(argc, argv, i), nullptr, 0));
    } else if (arg == "--ports") {
        f.cfg.numPorts = static_cast<unsigned>(
            std::strtoul(next(argc, argv, i), nullptr, 0));
    } else if (arg == "--linear") {
        f.cfg.mode = AddressingMode::Linear;
    } else if (arg == "--measure-us") {
        f.cfg.measure =
            std::strtoull(next(argc, argv, i), nullptr, 0) * tickUs;
    } else if (arg == "--warmup-us") {
        f.cfg.warmup =
            std::strtoull(next(argc, argv, i), nullptr, 0) * tickUs;
    } else if (arg == "--maxblock") {
        f.cfg.device.maxBlock = static_cast<MaxBlockSize>(
            std::strtoul(next(argc, argv, i), nullptr, 0));
    } else if (arg == "--mapping") {
        const std::string scheme = next(argc, argv, i);
        if (scheme == "vault")
            f.cfg.device.mapping = MappingScheme::VaultFirst;
        else if (scheme == "bank")
            f.cfg.device.mapping = MappingScheme::BankFirst;
        else if (scheme == "contig")
            f.cfg.device.mapping = MappingScheme::ContiguousVault;
        else
            usage();
    } else if (arg == "--ber") {
        f.cfg.controller.bitErrorRate =
            std::strtod(next(argc, argv, i), nullptr);
    } else if (arg == "--refresh") {
        f.cfg.device.vault.refreshEnabled = true;
        f.cfg.device.vault.refreshMultiplier =
            std::strtod(next(argc, argv, i), nullptr);
    } else if (arg == "--backend") {
        if (!parseBackendKind(next(argc, argv, i),
                              f.cfg.device.vault.backend.kind))
            usage();
    } else if (arg == "--seed") {
        f.cfg.seed = std::strtoull(next(argc, argv, i), nullptr, 0);
    } else {
        return false;
    }
    return true;
}

/** Tracing flags shared by run, sweep, and trace. */
struct TraceFlags
{
    std::string outPath;
    std::uint64_t samplePeriod = 64;
};

bool
parseTraceFlag(TraceFlags &t, int argc, char **argv, int &i)
{
    const std::string arg = argv[i];
    if (arg == "--trace-out") {
        t.outPath = next(argc, argv, i);
    } else if (arg == "--trace-sample") {
        t.samplePeriod =
            std::strtoull(next(argc, argv, i), nullptr, 0);
    } else {
        return false;
    }
    return true;
}

/** Open @p path for writing ("-" = stdout); exits on failure. */
std::ostream *
openOut(const std::string &path, std::ofstream &file)
{
    if (path == "-")
        return &std::cout;
    file.open(path);
    if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    return &file;
}

void
printStageTable(std::FILE *out, const StageBreakdown &b)
{
    std::fprintf(out,
                 "stage breakdown (%llu lifecycles):\n"
                 "  %-12s %10s %9s %9s %9s %7s\n",
                 static_cast<unsigned long long>(b.endToEndNs.count()),
                 "stage", "count", "avg ns", "min ns", "max ns",
                 "share");
    const double end_to_end = b.endToEndNs.mean();
    for (unsigned i = 0; i < numLifecycleStages; ++i) {
        const SampleStats &s = b.stageNs[i];
        std::fprintf(
            out, "  %-12s %10llu %9.1f %9.1f %9.1f %6.1f%%\n",
            lifecycleStageName(static_cast<LifecycleStage>(i)),
            static_cast<unsigned long long>(s.count()), s.mean(),
            s.min(), s.max(),
            end_to_end > 0.0 ? 100.0 * s.mean() / end_to_end : 0.0);
    }
    std::fprintf(out, "  %-12s %10llu %9.1f %9.1f %9.1f %6.1f%%\n",
                 "end-to-end",
                 static_cast<unsigned long long>(b.endToEndNs.count()),
                 b.endToEndNs.mean(), b.endToEndNs.min(),
                 b.endToEndNs.max(), end_to_end > 0.0 ? 100.0 : 0.0);
}

int
runSelfCheck(ExperimentFlags flags)
{
    // Two back-to-back runs of the configured workload must be
    // bit-identical; keep the window short, the point is identity
    // rather than statistics.
    flags.resolvePattern();
    ExperimentConfig cfg = flags.cfg;
    cfg.warmup = 10 * tickUs;
    if (cfg.measure > 100 * tickUs)
        cfg.measure = 100 * tickUs;
    const SelfCheckResult r = hmcsim::runSelfCheck(cfg);
    std::printf("selfcheck    : %zu stats, digests %016llx / "
                "%016llx\n",
                r.numStats,
                static_cast<unsigned long long>(r.digestFirst),
                static_cast<unsigned long long>(r.digestSecond));
    if (r.identical()) {
        std::printf("determinism  : ok (runs bit-identical)\n");
        return 0;
    }
    std::fprintf(stderr,
                 "determinism  : FAILED, first mismatch at '%s'\n",
                 r.firstMismatch.c_str());
    return 1;
}

/** The `selfcheck` subcommand: experiment flags only. */
int
runSelfCheckCommand(int argc, char **argv, int first)
{
    ExperimentFlags flags;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(stdout);
            return 0;
        }
        if (!parseExperimentFlag(flags, argc, argv, i))
            usage();
    }
    return runSelfCheck(flags);
}

/** The `trace` subcommand: one traced run, stage table + JSON. */
int
runTraceCommand(int argc, char **argv, int first)
{
    ExperimentFlags flags;
    // Tracing wants a short window: 100 us of full-scale GUPS already
    // records thousands of lifecycles.
    flags.cfg.warmup = 10 * tickUs;
    flags.cfg.measure = 100 * tickUs;
    TraceFlags trace;
    trace.outPath = "-";

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(stdout);
            return 0;
        }
        if (arg == "--out") {
            trace.outPath = next(argc, argv, i);
            continue;
        }
        if (parseTraceFlag(trace, argc, argv, i))
            continue;
        if (!parseExperimentFlag(flags, argc, argv, i))
            usage();
    }
    flags.resolvePattern();

    ChromeTraceBuffer buffer;
    RunOptions opts;
    opts.trace.enabled = true;
    opts.trace.samplePeriod = trace.samplePeriod;
    opts.trace.sink = &buffer;
    RunArtifacts artifacts;
    const MeasurementResult m =
        runExperiment(flags.cfg, opts, &artifacts);

    std::ofstream file;
    std::ostream *out = openOut(trace.outPath, file);
    writeChromeTrace(*out, buffer.events());
    out->flush();

    // The table goes to stderr so `--out -` still pipes clean JSON.
    std::fprintf(stderr, "pattern      : %s (%s, %llu B, %u ports)\n",
                 m.patternName.c_str(), requestMixName(m.mix),
                 static_cast<unsigned long long>(m.requestSize),
                 flags.cfg.numPorts);
    std::fprintf(stderr, "raw bandwidth: %.2f GB/s  (%.1f MRPS)\n",
                 m.rawGBps, m.mrps);
    printStageTable(stderr, m.stages);
    std::fprintf(stderr,
                 "trace        : %s (1-in-%llu sampling, digest "
                 "%016llx)\n",
                 trace.outPath.c_str(),
                 static_cast<unsigned long long>(trace.samplePeriod),
                 static_cast<unsigned long long>(artifacts.statDigest));
    return 0;
}

/**
 * The `sweep` subcommand: expand --axis specs into a campaign, run it
 * across --jobs workers, and emit structured results.
 */
int
runSweepCommand(int argc, char **argv, int first)
{
    SweepAxes axes;
    SweepOptions opts;
    ExperimentFlags base;
    TraceFlags trace;
    std::vector<unsigned> vaultAxis;
    std::vector<unsigned> bankAxis;
    std::string outPath;
    std::string csvPath;
    std::string cacheDir;
    std::string storeDir;
    std::string workersSpec;
    bool timing = false;
    base.cfg.warmup = 10 * tickUs;
    base.cfg.measure = 100 * tickUs;

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(stdout);
            return 0;
        }
        if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(next(argc, argv, i), nullptr, 0));
        } else if (arg == "--seed") {
            opts.sweepSeed =
                std::strtoull(next(argc, argv, i), nullptr, 0);
        } else if (arg == "--out") {
            outPath = next(argc, argv, i);
        } else if (arg == "--csv-out") {
            csvPath = next(argc, argv, i);
        } else if (arg == "--cache") {
            cacheDir = next(argc, argv, i);
        } else if (arg == "--store") {
            storeDir = next(argc, argv, i);
        } else if (arg == "--workers") {
            workersSpec = next(argc, argv, i);
        } else if (arg == "--warm-start") {
            opts.warmStart = true;
        } else if (arg == "--same-seeds") {
            opts.deriveSeeds = false;
        } else if (arg == "--timing") {
            timing = true;
        } else if (parseTraceFlag(trace, argc, argv, i)) {
            // handled
        } else if (arg == "--axis") {
            const std::string spec = next(argc, argv, i);
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos)
                usage();
            const std::string key = spec.substr(0, eq);
            const std::vector<std::string> values =
                splitCommas(spec.substr(eq + 1));
            if (values.empty())
                usage();
            for (const std::string &value : values) {
                if (key == "vaults") {
                    vaultAxis.push_back(static_cast<unsigned>(
                        std::strtoul(value.c_str(), nullptr, 0)));
                } else if (key == "banks") {
                    bankAxis.push_back(static_cast<unsigned>(
                        std::strtoul(value.c_str(), nullptr, 0)));
                } else if (key == "size") {
                    axes.sizes.push_back(
                        std::strtoull(value.c_str(), nullptr, 0));
                } else if (key == "ports") {
                    axes.ports.push_back(static_cast<unsigned>(
                        std::strtoul(value.c_str(), nullptr, 0)));
                } else if (key == "mix") {
                    if (value == "ro")
                        axes.mixes.push_back(RequestMix::ReadOnly);
                    else if (value == "wo")
                        axes.mixes.push_back(RequestMix::WriteOnly);
                    else if (value == "rw")
                        axes.mixes.push_back(
                            RequestMix::ReadModifyWrite);
                    else if (value == "atomic")
                        axes.mixes.push_back(RequestMix::Atomic);
                    else
                        usage();
                } else if (key == "mode") {
                    if (value == "random")
                        axes.modes.push_back(AddressingMode::Random);
                    else if (value == "linear")
                        axes.modes.push_back(AddressingMode::Linear);
                    else
                        usage();
                } else if (key == "backend") {
                    BackendKind kind;
                    if (!parseBackendKind(value, kind))
                        usage();
                    axes.backends.push_back(kind);
                } else if (key == "measure_us") {
                    axes.measures.push_back(
                        std::strtoull(value.c_str(), nullptr, 0) *
                        tickUs);
                } else {
                    usage();
                }
            }
        } else if (parseExperimentFlag(base, argc, argv, i)) {
            // Experiment flags season every point's base config.
        } else {
            usage();
        }
    }
    axes.base = base.cfg;

    const AddressMapper mapper(axes.base.device.structure,
                               axes.base.device.maxBlock, 256,
                               axes.base.device.mapping);
    for (const unsigned vaults : vaultAxis)
        axes.patterns.push_back(vaultPattern(mapper, vaults));
    for (const unsigned banks : bankAxis)
        axes.patterns.push_back(bankPattern(mapper, banks));
    if (axes.patterns.empty())
        axes.patterns = paperPatternAxis(mapper);

    if (!storeDir.empty() && !cacheDir.empty()) {
        std::fprintf(stderr,
                     "--store and --cache are exclusive; the store "
                     "already persists results\n");
        return 1;
    }
    std::unique_ptr<SharedResultStore> store;
    std::unique_ptr<ClaimedResultStorage> claimed;
    std::unique_ptr<ResultCache> cache;
    if (!storeDir.empty()) {
        store = std::make_unique<SharedResultStore>(
            SharedResultStore::Options{storeDir, 300});
        if (workersSpec.empty()) {
            // Local sweep over a shared store: claims make concurrent
            // processes on the same grid divide the points between
            // them instead of simulating everything twice.
            claimed = std::make_unique<ClaimedResultStorage>(*store);
            cache = std::make_unique<ResultCache>(*claimed);
        } else {
            // Coordinator mode: consult the store but never claim --
            // leasing and claiming are the workers' job.
            cache = std::make_unique<ResultCache>(*store);
        }
        opts.cache = cache.get();
    } else if (!cacheDir.empty()) {
        cache = std::make_unique<ResultCache>(cacheDir);
        opts.cache = cache.get();
    }

    if (!trace.outPath.empty()) {
        opts.trace.enabled = true;
        opts.trace.samplePeriod = trace.samplePeriod;
    }

    std::ofstream outFile;
    std::unique_ptr<JsonLinesSink> jsonSink;
    if (!outPath.empty()) {
        std::ostream *stream = &std::cout;
        if (outPath != "-") {
            outFile.open(outPath);
            if (!outFile) {
                std::fprintf(stderr, "cannot open %s\n",
                             outPath.c_str());
                return 1;
            }
            stream = &outFile;
        }
        jsonSink = std::make_unique<JsonLinesSink>(*stream, timing);
        opts.sinks.push_back(jsonSink.get());
    }

    std::ofstream csvFile;
    std::unique_ptr<CsvSink> csvSink;
    if (!csvPath.empty()) {
        csvFile.open(csvPath);
        if (!csvFile) {
            std::fprintf(stderr, "cannot open %s\n", csvPath.c_str());
            return 1;
        }
        csvSink = std::make_unique<CsvSink>(csvFile, timing);
        opts.sinks.push_back(csvSink.get());
    }

    if (!workersSpec.empty() && !trace.outPath.empty()) {
        std::fprintf(stderr,
                     "--trace-out needs the simulators in-process; "
                     "drop --workers or the trace flags\n");
        return 1;
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<SweepPointResult> results;
    DistSweepStats dist;
    if (!workersSpec.empty()) {
        DistSweepOptions distOpts;
        distOpts.listenSpec = workersSpec;
        distOpts.sweep = opts;
        results = runDistributedSweep(axes, distOpts, &dist);
    } else {
        SweepRunner runner(opts);
        results = runner.run(axes);
    }
    const auto stop = std::chrono::steady_clock::now();

    if (!trace.outPath.empty()) {
        std::ofstream traceFile;
        std::ostream *traceStream = openOut(trace.outPath, traceFile);
        writeChromeTrace(*traceStream, joinTraceEvents(results));
        traceStream->flush();
    }

    std::size_t cached = 0;
    for (const SweepPointResult &point : results)
        cached += point.fromCache ? 1 : 0;
    if (!workersSpec.empty()) {
        std::fprintf(stderr,
                     "sweep: %zu points (%zu simulated, %zu cached), "
                     "%u workers, %.2f s\n",
                     results.size(), dist.simulated, cached,
                     dist.workersSeen,
                     std::chrono::duration<double>(stop - start)
                         .count());
    } else {
        const unsigned jobs =
            opts.jobs ? opts.jobs : ThreadPool::hardwareConcurrency();
        std::fprintf(
            stderr,
            "sweep: %zu points (%zu cached), %u jobs, %.2f s\n",
            results.size(), cached, jobs,
            std::chrono::duration<double>(stop - start).count());
    }
    return 0;
}

/** The `worker` subcommand: serve one `sweep --workers` coordinator. */
int
runWorkerCommand(int argc, char **argv, int first)
{
    WorkerOptions opts;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(stdout);
            return 0;
        }
        if (arg == "--connect") {
            opts.connectSpec = next(argc, argv, i);
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(next(argc, argv, i), nullptr, 0));
        } else if (arg == "--store") {
            opts.storeDir = next(argc, argv, i);
        } else if (arg == "--batch") {
            opts.batch = static_cast<unsigned>(
                std::strtoul(next(argc, argv, i), nullptr, 0));
        } else if (arg == "--throttle-ms") {
            opts.throttleMs = static_cast<unsigned>(
                std::strtoul(next(argc, argv, i), nullptr, 0));
        } else if (arg == "--die-after") {
            opts.dieAfter = static_cast<int>(
                std::strtol(next(argc, argv, i), nullptr, 0));
        } else {
            usage();
        }
    }
    if (opts.connectSpec.empty()) {
        std::fprintf(stderr, "worker: --connect is required\n");
        return 1;
    }
    return runWorker(opts);
}

/** The `run` subcommand -- also the legacy flag-style entry point. */
int
runRunCommand(int argc, char **argv, int first)
{
    ExperimentFlags flags;
    TraceFlags trace;
    unsigned cooling = 1;
    bool csv = false;
    bool selfcheck = false;
    bool dump_stats = false;
    std::string out_path;
    std::string stats_prefix;
    std::string replay_file;
    unsigned replay_window = 64;

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(stdout);
            return 0;
        }
        if (arg == "--cooling") {
            cooling = static_cast<unsigned>(
                std::strtoul(next(argc, argv, i), nullptr, 0));
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--out") {
            out_path = next(argc, argv, i);
            csv = true;
        } else if (arg == "--selfcheck") {
            selfcheck = true;
        } else if (arg == "--stats") {
            dump_stats = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                stats_prefix = argv[++i];
        } else if (arg == "--trace") {
            replay_file = next(argc, argv, i);
        } else if (arg == "--window") {
            replay_window = static_cast<unsigned>(
                std::strtoul(next(argc, argv, i), nullptr, 0));
        } else if (parseTraceFlag(trace, argc, argv, i)) {
            // handled
        } else if (!parseExperimentFlag(flags, argc, argv, i)) {
            usage();
        }
    }

    if (selfcheck)
        return runSelfCheck(flags);

    ExperimentConfig &cfg = flags.cfg;

    if (!replay_file.empty()) {
        std::ifstream in(replay_file);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n",
                         replay_file.c_str());
            return 1;
        }
        const Trace replay = parseTrace(in);
        TraceReplayConfig rc;
        rc.maxOutstanding = replay_window;
        rc.device = cfg.device;
        rc.controller = cfg.controller;
        const TraceReplayResult r = replayTrace(replay, rc);
        std::printf("trace        : %s (%zu records, window %u)\n",
                    replay_file.c_str(), replay.size(), replay_window);
        std::printf("raw bandwidth: %.2f GB/s (payload %.2f)\n",
                    r.rawGBps, r.payloadGBps);
        std::printf("request rate : %.1f MRPS\n", r.mrps);
        std::printf("latency      : avg %.0f ns  min %.0f  max %.0f\n",
                    r.latencyNs.mean(), r.latencyNs.min(),
                    r.latencyNs.max());
        std::printf("drain time   : %.3f ms\n",
                    ticksToUs(r.elapsed) / 1000.0);
        return 0;
    }

    if (dump_stats) {
        // Run the configured workload on a raw module and dump every
        // registered counter.
        flags.resolvePattern();
        Ac510Config sys;
        sys.numPorts = cfg.numPorts;
        sys.port.mix = cfg.mix;
        sys.port.requestSize = cfg.requestSize;
        sys.port.mode = cfg.mode;
        sys.port.mask = cfg.pattern.mask;
        sys.port.antiMask = cfg.pattern.antiMask;
        sys.device = cfg.device;
        sys.controller = cfg.controller;
        sys.seed = cfg.seed;
        Ac510Module module(sys);
        StatRegistry registry;
        module.registerStats(registry, StatPath("system"));
        module.start();
        module.runUntil(cfg.warmup + cfg.measure);
        for (const StatEntry *entry :
             registry.matching(stats_prefix.empty() ? "system"
                                                    : stats_prefix)) {
            std::printf("%-44s %.6g\n", entry->name.c_str(),
                        entry->value());
        }
        return 0;
    }

    flags.resolvePattern();

    const bool tracing = !trace.outPath.empty();
    ChromeTraceBuffer buffer;
    RunOptions opts;
    if (tracing) {
        opts.trace.enabled = true;
        opts.trace.samplePeriod = trace.samplePeriod;
        opts.trace.sink = &buffer;
    }

    const ThermalExperimentResult r = runThermalExperiment(
        cfg, coolingConfig(cooling), PowerParams{}, ThermalParams{},
        opts);
    const MeasurementResult &m = r.measurement;
    const PowerThermalResult &pt = r.powerThermal;

    if (tracing) {
        std::ofstream traceFile;
        std::ostream *traceStream = openOut(trace.outPath, traceFile);
        writeChromeTrace(*traceStream, buffer.events());
        traceStream->flush();
    }

    if (csv) {
        std::FILE *out = stdout;
        if (!out_path.empty() && out_path != "-") {
            out = std::fopen(out_path.c_str(), "w");
            if (!out) {
                std::fprintf(stderr, "cannot open %s\n",
                             out_path.c_str());
                return 1;
            }
        }
        std::fprintf(out,
                     "pattern,mix,size,ports,mode,cooling,raw_gbps,"
                     "mrps,lat_avg_ns,lat_min_ns,lat_max_ns,temp_c,"
                     "system_w,failure\n");
        std::fprintf(out,
                     "%s,%s,%llu,%u,%s,Cfg%u,%.3f,%.2f,%.0f,%.0f,"
                     "%.0f,%.1f,%.1f,%d\n",
                     m.patternName.c_str(), requestMixName(m.mix),
                     static_cast<unsigned long long>(m.requestSize),
                     cfg.numPorts, addressingModeName(cfg.mode),
                     cooling, m.rawGBps, m.mrps,
                     m.readLatencyNs.mean(), m.readLatencyNs.min(),
                     m.readLatencyNs.max(), pt.temperatureC,
                     pt.systemW, pt.failure ? 1 : 0);
        if (out != stdout)
            std::fclose(out);
        if (tracing)
            printStageTable(stderr, m.stages);
        return 0;
    }

    std::printf("pattern      : %s (%s, %s)\n", m.patternName.c_str(),
                requestMixName(m.mix), addressingModeName(cfg.mode));
    std::printf("request size : %llu B (%u ports)\n",
                static_cast<unsigned long long>(m.requestSize),
                cfg.numPorts);
    std::printf("raw bandwidth: %.2f GB/s  (%.1f MRPS)\n", m.rawGBps,
                m.mrps);
    if (m.readLatencyNs.count() > 0) {
        std::printf("read latency : avg %.0f ns  min %.0f  max %.0f\n",
                    m.readLatencyNs.mean(), m.readLatencyNs.min(),
                    m.readLatencyNs.max());
    }
    if (m.writeLatencyNs.count() > 0) {
        std::printf("write latency: avg %.0f ns\n",
                    m.writeLatencyNs.mean());
    }
    if (tracing)
        printStageTable(stdout, m.stages);
    std::printf("thermal      : %.1f C in %s (%s)\n", pt.temperatureC,
                coolingConfig(cooling).name.c_str(),
                pt.failure ? "THERMAL FAILURE" : "ok");
    std::printf("system power : %.1f W (HMC dynamic %.2f W, leakage "
                "%.2f W)\n",
                pt.systemW, pt.hmcDynamicW, pt.leakageW);
    return 0;
}

/** Split a request line into whitespace-separated tokens. */
std::vector<std::string>
splitTokens(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string token;
    while (in >> token)
        out.push_back(token);
    return out;
}

/** Split "key=value"; false when there is no '='. */
bool
splitKeyValue(const std::string &token, std::string &key,
              std::string &value)
{
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos)
        return false;
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

/**
 * One `sweep` request: a single campaign point run through the same
 * SweepRunner path as the batch subcommand (same derived seed, same
 * cache key, same JSONL bytes), streamed through @p sink.
 */
bool
serveSweepRequest(const std::vector<std::string> &tokens,
                  JsonLinesSink &sink, ResultCache *cache,
                  unsigned jobs)
{
    ExperimentFlags flags;
    flags.cfg.warmup = 10 * tickUs;
    flags.cfg.measure = 100 * tickUs;
    std::uint64_t sweepSeed = 1;

    for (std::size_t t = 1; t < tokens.size(); ++t) {
        std::string key, value;
        if (!splitKeyValue(tokens[t], key, value)) {
            std::fprintf(stderr, "serve: bad token '%s'\n",
                         tokens[t].c_str());
            return false;
        }
        if (key == "mix") {
            if (value == "ro")
                flags.cfg.mix = RequestMix::ReadOnly;
            else if (value == "wo")
                flags.cfg.mix = RequestMix::WriteOnly;
            else if (value == "rw")
                flags.cfg.mix = RequestMix::ReadModifyWrite;
            else if (value == "atomic")
                flags.cfg.mix = RequestMix::Atomic;
            else
                return false;
        } else if (key == "size") {
            flags.cfg.requestSize =
                std::strtoull(value.c_str(), nullptr, 0);
        } else if (key == "vaults") {
            flags.vaults = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
            flags.banks = 0;
        } else if (key == "banks") {
            flags.banks = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        } else if (key == "ports") {
            flags.cfg.numPorts = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        } else if (key == "mode") {
            if (value == "random")
                flags.cfg.mode = AddressingMode::Random;
            else if (value == "linear")
                flags.cfg.mode = AddressingMode::Linear;
            else
                return false;
        } else if (key == "measure_us") {
            flags.cfg.measure =
                std::strtoull(value.c_str(), nullptr, 0) * tickUs;
        } else if (key == "warmup_us") {
            flags.cfg.warmup =
                std::strtoull(value.c_str(), nullptr, 0) * tickUs;
        } else if (key == "backend") {
            if (!parseBackendKind(value,
                                  flags.cfg.device.vault.backend.kind))
                return false;
        } else if (key == "seed") {
            sweepSeed = std::strtoull(value.c_str(), nullptr, 0);
        } else {
            std::fprintf(stderr, "serve: unknown sweep key '%s'\n",
                         key.c_str());
            return false;
        }
    }
    flags.resolvePattern();

    SweepOptions opts;
    opts.jobs = jobs;
    opts.sweepSeed = sweepSeed;
    opts.cache = cache;
    opts.sinks.push_back(&sink);
    SweepRunner runner(opts);
    runner.run(std::vector<ExperimentConfig>{flags.cfg});
    return true;
}

/**
 * One `traffic` request: an open-loop fleet run (service/fleet.hh).
 * Streams one node line per node plus the aggregate line.
 */
bool
serveTrafficRequest(const std::vector<std::string> &tokens,
                    std::ostream &out, unsigned jobs)
{
    FleetConfig cfg;
    cfg.jobs = jobs;
    unsigned vaults = 16;

    for (std::size_t t = 1; t < tokens.size(); ++t) {
        std::string key, value;
        if (!splitKeyValue(tokens[t], key, value)) {
            std::fprintf(stderr, "serve: bad token '%s'\n",
                         tokens[t].c_str());
            return false;
        }
        if (key == "nodes") {
            cfg.numNodes = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        } else if (key == "requests") {
            cfg.requests = std::strtoull(value.c_str(), nullptr, 0);
        } else if (key == "arrival") {
            if (!parseArrivalKind(value, cfg.arrival.kind))
                return false;
        } else if (key == "rate") {
            cfg.arrival.ratePerSec = std::strtod(value.c_str(), nullptr);
        } else if (key == "burst_rate") {
            cfg.arrival.burstRatePerSec =
                std::strtod(value.c_str(), nullptr);
        } else if (key == "calm_us") {
            cfg.arrival.meanCalmTicks =
                std::strtoull(value.c_str(), nullptr, 0) * tickUs;
        } else if (key == "burst_us") {
            cfg.arrival.meanBurstTicks =
                std::strtoull(value.c_str(), nullptr, 0) * tickUs;
        } else if (key == "trace") {
            if (!parseDiurnalTrace(value, cfg.arrival.trace)) {
                std::fprintf(stderr, "serve: bad trace '%s'\n",
                             value.c_str());
                return false;
            }
        } else if (key == "router") {
            if (!parseRouterPolicy(value, cfg.router))
                return false;
        } else if (key == "hot_fraction") {
            cfg.hotFraction = std::strtod(value.c_str(), nullptr);
        } else if (key == "keys") {
            cfg.numKeys = std::strtoull(value.c_str(), nullptr, 0);
        } else if (key == "size") {
            cfg.node.requestSize =
                std::strtoull(value.c_str(), nullptr, 0);
        } else if (key == "vaults") {
            vaults = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        } else if (key == "seed") {
            cfg.seed = std::strtoull(value.c_str(), nullptr, 0);
        } else if (key == "jobs") {
            cfg.jobs = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        } else {
            std::fprintf(stderr, "serve: unknown traffic key '%s'\n",
                         key.c_str());
            return false;
        }
    }
    if (cfg.numNodes == 0) {
        std::fprintf(stderr, "serve: traffic needs nodes >= 1\n");
        return false;
    }
    const AddressMapper mapper(cfg.node.device.structure,
                               cfg.node.device.maxBlock, 256,
                               cfg.node.device.mapping);
    cfg.node.pattern = vaultPattern(mapper, vaults);

    const FleetResult res = runFleet(cfg);
    for (unsigned n = 0; n < cfg.numNodes; ++n)
        out << serviceNodeJsonl(n, res.nodes[n]) << '\n';
    out << serviceAggregateJsonl(cfg.numNodes, res.aggregate) << '\n';
    out.flush();
    std::fprintf(
        stderr,
        "serve: traffic %u nodes, %llu requests, %.2f MRPS aggregate\n",
        cfg.numNodes, static_cast<unsigned long long>(cfg.requests),
        res.aggregate.throughputMrps());
    return true;
}

/** Set by SIGINT so the serve loop can exit through its flush path. */
volatile std::sig_atomic_t gServeInterrupted = 0;

extern "C" void
serveSigint(int)
{
    gServeInterrupted = 1;
}

/**
 * The `serve` subcommand: a long-running session reading one request
 * per line from --in (default stdin) and streaming JSONL results to
 * --out as each request completes (docs/service.md).
 */
int
runServeCommand(int argc, char **argv, int first)
{
    std::string inPath;
    std::string outPath = "-";
    std::string cacheDir;
    std::string storeDir;
    unsigned jobs = 0;

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(stdout);
            return 0;
        }
        if (arg == "--in") {
            inPath = next(argc, argv, i);
        } else if (arg == "--out") {
            outPath = next(argc, argv, i);
        } else if (arg == "--cache") {
            cacheDir = next(argc, argv, i);
        } else if (arg == "--store") {
            storeDir = next(argc, argv, i);
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(argc, argv, i), nullptr, 0));
        } else {
            usage();
        }
    }
    if (!storeDir.empty() && !cacheDir.empty()) {
        std::fprintf(stderr,
                     "--store and --cache are exclusive; the store "
                     "already persists results\n");
        return 1;
    }

    std::ifstream inFile;
    std::istream *in = &std::cin;
    if (!inPath.empty() && inPath != "-") {
        inFile.open(inPath);
        if (!inFile) {
            std::fprintf(stderr, "cannot open %s\n", inPath.c_str());
            return 1;
        }
        in = &inFile;
    }
    std::ofstream outFile;
    std::ostream *out = openOut(outPath, outFile);

    // The in-memory cache spans the whole session even without
    // --cache: a repeated sweep request is served, not re-simulated.
    // With --store it tiers onto the shared cross-process store, so
    // points another process already ran are served without
    // simulating.
    std::unique_ptr<SharedResultStore> store;
    std::unique_ptr<ClaimedResultStorage> claimed;
    std::unique_ptr<ResultCache> cache;
    if (!storeDir.empty()) {
        store = std::make_unique<SharedResultStore>(
            SharedResultStore::Options{storeDir, 300});
        claimed = std::make_unique<ClaimedResultStorage>(*store);
        cache = std::make_unique<ResultCache>(*claimed);
    } else {
        cache = std::make_unique<ResultCache>(cacheDir);
    }
    JsonLinesSink sink(*out);
    sink.setStreaming(true);

    // SIGINT must not kill the process mid-line: the handler sets a
    // flag and (no SA_RESTART) the blocking getline fails with EINTR,
    // so the loop exits through the same flush path as EOF/quit.
    gServeInterrupted = 0;
    struct sigaction sa = {};
    struct sigaction prev = {};
    sa.sa_handler = serveSigint;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGINT, &sa, &prev);

    std::uint64_t served = 0;
    std::uint64_t failed = 0;
    std::string line;
    while (!gServeInterrupted && std::getline(*in, line)) {
        const std::vector<std::string> tokens = splitTokens(line);
        if (tokens.empty() || tokens[0][0] == '#')
            continue;
        if (tokens[0] == "quit" || tokens[0] == "shutdown")
            break;
        bool ok = false;
        if (tokens[0] == "sweep")
            ok = serveSweepRequest(tokens, sink, cache.get(), jobs);
        else if (tokens[0] == "traffic")
            ok = serveTrafficRequest(tokens, *out, jobs);
        else
            std::fprintf(stderr, "serve: unknown request '%s'\n",
                         tokens[0].c_str());
        ++(ok ? served : failed);
    }
    // Every exit path -- quit/shutdown verb, input EOF, SIGINT --
    // lands here: close the JSONL array state and push buffered
    // bytes out before the process goes away. The caches persist at
    // store() time, so results are already durable.
    sink.finish();
    out->flush();
    ::sigaction(SIGINT, &prev, nullptr);
    if (gServeInterrupted)
        std::fprintf(stderr, "serve: interrupted, flushing\n");
    std::fprintf(stderr,
                 "serve: session done, %llu served, %llu failed "
                 "(%llu cache hits)\n",
                 static_cast<unsigned long long>(served),
                 static_cast<unsigned long long>(failed),
                 static_cast<unsigned long long>(cache->hits()));
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "run")
        return runRunCommand(argc, argv, 2);
    if (cmd == "sweep")
        return runSweepCommand(argc, argv, 2);
    if (cmd == "selfcheck")
        return runSelfCheckCommand(argc, argv, 2);
    if (cmd == "trace")
        return runTraceCommand(argc, argv, 2);
    if (cmd == "serve")
        return runServeCommand(argc, argv, 2);
    if (cmd == "worker")
        return runWorkerCommand(argc, argv, 2);
    if (cmd == "--help" || cmd == "-h") {
        printHelp(stdout);
        return 0;
    }
    // Legacy flag-style invocation (and no arguments at all) is `run`.
    return runRunCommand(argc, argv, 1);
}
