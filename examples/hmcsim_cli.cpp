/**
 * @file
 * hmcsim_cli -- run any paper-style experiment from the command line.
 *
 *     hmcsim_cli sweep [sweep options]   run a parallel campaign
 *       --jobs N                   concurrent jobs      (default: cores)
 *       --axis K=V1,V2,...         sweep axis, repeatable; K is one of
 *                                  vaults, banks, mix, size, mode,
 *                                  ports (default: the paper's
 *                                  pattern axis, ro, 128 B)
 *       --seed S                   campaign seed        (default 1)
 *       --measure-us N / --warmup-us N   per-point windows
 *       --out FILE                 JSON-lines results ("-" = stdout)
 *       --csv-out FILE             CSV results
 *       --cache DIR                persistent result cache
 *       --timing                   include wall-clock metadata
 *                                  (nondeterministic; off for diffs)
 *
 *     hmcsim_cli [options]
 *       --mix ro|wo|rw|atomic      request mix          (default ro)
 *       --size N                   request bytes        (default 128)
 *       --vaults N                 vault pattern 1..16
 *       --banks N                  bank pattern 1..16 (within vault 0)
 *       --ports N                  active GUPS ports    (default 9)
 *       --linear                   linear addressing    (default random)
 *       --cooling 1..4             Table III config     (default 1)
 *       --measure-us N             window length        (default 1000)
 *       --maxblock 16|32|64|128    mode register        (default 128)
 *       --mapping vault|bank|contig  interleave scheme
 *       --ber X                    lane bit error rate  (default 0)
 *       --refresh X                refresh multiplier   (default off)
 *       --csv                      machine-readable one-line output
 *       --stats [prefix]           dump the component statistics
 *       --trace FILE [--window N]  replay a trace file instead
 *       --selfcheck                determinism self-check: run the
 *                                  config twice (short window) and
 *                                  compare stat-registry digests
 *
 * Examples:
 *     hmcsim_cli --mix rw
 *     hmcsim_cli --banks 2 --size 32 --ports 4 --cooling 3
 *     hmcsim_cli --mapping contig --linear --csv
 *     hmcsim_cli --stats system.hmc.vault0
 *     hmcsim_cli --trace workload.trc --window 32
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "host/experiment.hh"
#include "host/trace_replay.hh"
#include "runner/result_cache.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "sim/stat_registry.hh"

using namespace hmcsim;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--mix ro|wo|rw|atomic] [--size N] "
                 "[--vaults N | --banks N] [--ports N] [--linear] "
                 "[--cooling 1..4] [--measure-us N] [--maxblock N] "
                 "[--mapping vault|bank|contig] [--ber X] "
                 "[--refresh X] [--csv] [--selfcheck]\n",
                 argv0);
    std::exit(2);
}

const char *
next(int argc, char **argv, int &i)
{
    if (++i >= argc)
        usage(argv[0]);
    return argv[i];
}

[[noreturn]] void
sweepUsage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s sweep [--jobs N] [--axis K=V1,V2,...] "
                 "[--seed S] [--measure-us N] [--warmup-us N] "
                 "[--out FILE] [--csv-out FILE] [--cache DIR] "
                 "[--timing]\n"
                 "axes: vaults, banks, mix, size, mode, ports\n",
                 argv0);
    std::exit(2);
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::istringstream in(list);
    std::string item;
    while (std::getline(in, item, ','))
        out.push_back(item);
    return out;
}

/**
 * The `sweep` subcommand: expand --axis specs into a campaign, run it
 * across --jobs workers, and emit structured results.
 */
int
runSweepCommand(int argc, char **argv)
{
    SweepAxes axes;
    SweepOptions opts;
    std::vector<unsigned> vaultAxis;
    std::vector<unsigned> bankAxis;
    std::string outPath;
    std::string csvPath;
    std::string cacheDir;
    bool timing = false;
    axes.base.warmup = 10 * tickUs;
    axes.base.measure = 100 * tickUs;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(next(argc, argv, i), nullptr, 0));
        } else if (arg == "--seed") {
            opts.sweepSeed =
                std::strtoull(next(argc, argv, i), nullptr, 0);
        } else if (arg == "--measure-us") {
            axes.base.measure =
                std::strtoull(next(argc, argv, i), nullptr, 0) * tickUs;
        } else if (arg == "--warmup-us") {
            axes.base.warmup =
                std::strtoull(next(argc, argv, i), nullptr, 0) * tickUs;
        } else if (arg == "--out") {
            outPath = next(argc, argv, i);
        } else if (arg == "--csv-out") {
            csvPath = next(argc, argv, i);
        } else if (arg == "--cache") {
            cacheDir = next(argc, argv, i);
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--axis") {
            const std::string spec = next(argc, argv, i);
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos)
                sweepUsage(argv[0]);
            const std::string key = spec.substr(0, eq);
            const std::vector<std::string> values =
                splitCommas(spec.substr(eq + 1));
            if (values.empty())
                sweepUsage(argv[0]);
            for (const std::string &value : values) {
                if (key == "vaults") {
                    vaultAxis.push_back(static_cast<unsigned>(
                        std::strtoul(value.c_str(), nullptr, 0)));
                } else if (key == "banks") {
                    bankAxis.push_back(static_cast<unsigned>(
                        std::strtoul(value.c_str(), nullptr, 0)));
                } else if (key == "size") {
                    axes.sizes.push_back(
                        std::strtoull(value.c_str(), nullptr, 0));
                } else if (key == "ports") {
                    axes.ports.push_back(static_cast<unsigned>(
                        std::strtoul(value.c_str(), nullptr, 0)));
                } else if (key == "mix") {
                    if (value == "ro")
                        axes.mixes.push_back(RequestMix::ReadOnly);
                    else if (value == "wo")
                        axes.mixes.push_back(RequestMix::WriteOnly);
                    else if (value == "rw")
                        axes.mixes.push_back(
                            RequestMix::ReadModifyWrite);
                    else if (value == "atomic")
                        axes.mixes.push_back(RequestMix::Atomic);
                    else
                        sweepUsage(argv[0]);
                } else if (key == "mode") {
                    if (value == "random")
                        axes.modes.push_back(AddressingMode::Random);
                    else if (value == "linear")
                        axes.modes.push_back(AddressingMode::Linear);
                    else
                        sweepUsage(argv[0]);
                } else {
                    sweepUsage(argv[0]);
                }
            }
        } else {
            sweepUsage(argv[0]);
        }
    }

    const AddressMapper mapper(axes.base.device.structure,
                               axes.base.device.maxBlock, 256,
                               axes.base.device.mapping);
    for (const unsigned vaults : vaultAxis)
        axes.patterns.push_back(vaultPattern(mapper, vaults));
    for (const unsigned banks : bankAxis)
        axes.patterns.push_back(bankPattern(mapper, banks));
    if (axes.patterns.empty())
        axes.patterns = paperPatternAxis(mapper);

    std::unique_ptr<ResultCache> cache;
    if (!cacheDir.empty()) {
        cache = std::make_unique<ResultCache>(cacheDir);
        opts.cache = cache.get();
    }

    std::ofstream outFile;
    std::unique_ptr<JsonLinesSink> jsonSink;
    if (!outPath.empty()) {
        std::ostream *stream = &std::cout;
        if (outPath != "-") {
            outFile.open(outPath);
            if (!outFile) {
                std::fprintf(stderr, "cannot open %s\n",
                             outPath.c_str());
                return 1;
            }
            stream = &outFile;
        }
        jsonSink = std::make_unique<JsonLinesSink>(*stream, timing);
        opts.sinks.push_back(jsonSink.get());
    }

    std::ofstream csvFile;
    std::unique_ptr<CsvSink> csvSink;
    if (!csvPath.empty()) {
        csvFile.open(csvPath);
        if (!csvFile) {
            std::fprintf(stderr, "cannot open %s\n", csvPath.c_str());
            return 1;
        }
        csvSink = std::make_unique<CsvSink>(csvFile, timing);
        opts.sinks.push_back(csvSink.get());
    }

    SweepRunner runner(opts);
    const auto start = std::chrono::steady_clock::now();
    const std::vector<SweepPointResult> results = runner.run(axes);
    const auto stop = std::chrono::steady_clock::now();

    std::size_t cached = 0;
    for (const SweepPointResult &point : results)
        cached += point.fromCache ? 1 : 0;
    const unsigned jobs =
        opts.jobs ? opts.jobs : ThreadPool::hardwareConcurrency();
    std::fprintf(
        stderr, "sweep: %zu points (%zu cached), %u jobs, %.2f s\n",
        results.size(), cached, jobs,
        std::chrono::duration<double>(stop - start).count());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return runSweepCommand(argc, argv);

    ExperimentConfig cfg;
    unsigned cooling = 1;
    unsigned vaults = 16;
    unsigned banks = 0;
    bool csv = false;
    bool selfcheck = false;
    bool dump_stats = false;
    std::string stats_prefix;
    std::string trace_file;
    unsigned trace_window = 64;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--mix") {
            const std::string mix = next(argc, argv, i);
            if (mix == "ro")
                cfg.mix = RequestMix::ReadOnly;
            else if (mix == "wo")
                cfg.mix = RequestMix::WriteOnly;
            else if (mix == "rw")
                cfg.mix = RequestMix::ReadModifyWrite;
            else if (mix == "atomic")
                cfg.mix = RequestMix::Atomic;
            else
                usage(argv[0]);
        } else if (arg == "--size") {
            cfg.requestSize = std::strtoull(next(argc, argv, i), nullptr, 0);
        } else if (arg == "--vaults") {
            vaults = std::strtoul(next(argc, argv, i), nullptr, 0);
            banks = 0;
        } else if (arg == "--banks") {
            banks = std::strtoul(next(argc, argv, i), nullptr, 0);
        } else if (arg == "--ports") {
            cfg.numPorts = std::strtoul(next(argc, argv, i), nullptr, 0);
        } else if (arg == "--linear") {
            cfg.mode = AddressingMode::Linear;
        } else if (arg == "--cooling") {
            cooling = std::strtoul(next(argc, argv, i), nullptr, 0);
        } else if (arg == "--measure-us") {
            cfg.measure =
                std::strtoull(next(argc, argv, i), nullptr, 0) * tickUs;
        } else if (arg == "--maxblock") {
            cfg.device.maxBlock = static_cast<MaxBlockSize>(
                std::strtoul(next(argc, argv, i), nullptr, 0));
        } else if (arg == "--mapping") {
            const std::string scheme = next(argc, argv, i);
            if (scheme == "vault")
                cfg.device.mapping = MappingScheme::VaultFirst;
            else if (scheme == "bank")
                cfg.device.mapping = MappingScheme::BankFirst;
            else if (scheme == "contig")
                cfg.device.mapping = MappingScheme::ContiguousVault;
            else
                usage(argv[0]);
        } else if (arg == "--ber") {
            cfg.controller.bitErrorRate =
                std::strtod(next(argc, argv, i), nullptr);
        } else if (arg == "--refresh") {
            cfg.device.vault.refreshEnabled = true;
            cfg.device.vault.refreshMultiplier =
                std::strtod(next(argc, argv, i), nullptr);
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--selfcheck") {
            selfcheck = true;
        } else if (arg == "--stats") {
            dump_stats = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                stats_prefix = argv[++i];
        } else if (arg == "--trace") {
            trace_file = next(argc, argv, i);
        } else if (arg == "--window") {
            trace_window = std::strtoul(next(argc, argv, i), nullptr, 0);
        } else {
            usage(argv[0]);
        }
    }

    if (selfcheck) {
        // Two back-to-back runs of the configured workload must be
        // bit-identical; keep the window short, the point is identity
        // rather than statistics.
        const AddressMapper m(cfg.device.structure, cfg.device.maxBlock,
                              256, cfg.device.mapping);
        cfg.pattern = banks ? bankPattern(m, banks)
                            : vaultPattern(m, vaults);
        cfg.warmup = 10 * tickUs;
        if (cfg.measure > 100 * tickUs)
            cfg.measure = 100 * tickUs;
        const SelfCheckResult r = runSelfCheck(cfg);
        std::printf("selfcheck    : %zu stats, digests %016llx / "
                    "%016llx\n",
                    r.numStats,
                    static_cast<unsigned long long>(r.digestFirst),
                    static_cast<unsigned long long>(r.digestSecond));
        if (r.identical()) {
            std::printf("determinism  : ok (runs bit-identical)\n");
            return 0;
        }
        std::fprintf(stderr,
                     "determinism  : FAILED, first mismatch at '%s'\n",
                     r.firstMismatch.c_str());
        return 1;
    }

    if (!trace_file.empty()) {
        std::ifstream in(trace_file);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", trace_file.c_str());
            return 1;
        }
        const Trace trace = parseTrace(in);
        TraceReplayConfig rc;
        rc.maxOutstanding = trace_window;
        rc.device = cfg.device;
        rc.controller = cfg.controller;
        const TraceReplayResult r = replayTrace(trace, rc);
        std::printf("trace        : %s (%zu records, window %u)\n",
                    trace_file.c_str(), trace.size(), trace_window);
        std::printf("raw bandwidth: %.2f GB/s (payload %.2f)\n",
                    r.rawGBps, r.payloadGBps);
        std::printf("request rate : %.1f MRPS\n", r.mrps);
        std::printf("latency      : avg %.0f ns  min %.0f  max %.0f\n",
                    r.latencyNs.mean(), r.latencyNs.min(),
                    r.latencyNs.max());
        std::printf("drain time   : %.3f ms\n",
                    ticksToUs(r.elapsed) / 1000.0);
        return 0;
    }

    if (dump_stats) {
        // Run the configured workload on a raw module and dump every
        // registered counter.
        const AddressMapper m(cfg.device.structure, cfg.device.maxBlock,
                              256, cfg.device.mapping);
        Ac510Config sys;
        sys.numPorts = cfg.numPorts;
        sys.port.mix = cfg.mix;
        sys.port.requestSize = cfg.requestSize;
        sys.port.mode = cfg.mode;
        const AccessPattern pat = banks ? bankPattern(m, banks)
                                        : vaultPattern(m, vaults);
        sys.port.mask = pat.mask;
        sys.port.antiMask = pat.antiMask;
        sys.device = cfg.device;
        sys.controller = cfg.controller;
        Ac510Module module(sys);
        StatRegistry registry;
        module.registerStats(registry, StatPath("system"));
        module.start();
        module.runUntil(cfg.warmup + cfg.measure);
        for (const StatEntry *entry :
             registry.matching(stats_prefix.empty() ? "system"
                                                    : stats_prefix)) {
            std::printf("%-44s %.6g\n", entry->name.c_str(),
                        entry->value());
        }
        return 0;
    }

    const AddressMapper mapper(cfg.device.structure, cfg.device.maxBlock,
                               256, cfg.device.mapping);
    cfg.pattern = banks ? bankPattern(mapper, banks)
                        : vaultPattern(mapper, vaults);

    const ThermalExperimentResult r =
        runThermalExperiment(cfg, coolingConfig(cooling));
    const MeasurementResult &m = r.measurement;
    const PowerThermalResult &pt = r.powerThermal;

    if (csv) {
        std::printf("pattern,mix,size,ports,mode,cooling,raw_gbps,mrps,"
                    "lat_avg_ns,lat_min_ns,lat_max_ns,temp_c,system_w,"
                    "failure\n");
        std::printf("%s,%s,%llu,%u,%s,Cfg%u,%.3f,%.2f,%.0f,%.0f,%.0f,"
                    "%.1f,%.1f,%d\n",
                    m.patternName.c_str(), requestMixName(m.mix),
                    static_cast<unsigned long long>(m.requestSize),
                    cfg.numPorts, addressingModeName(cfg.mode), cooling,
                    m.rawGBps, m.mrps, m.readLatencyNs.mean(),
                    m.readLatencyNs.min(), m.readLatencyNs.max(),
                    pt.temperatureC, pt.systemW, pt.failure ? 1 : 0);
        return 0;
    }

    std::printf("pattern      : %s (%s, %s)\n", m.patternName.c_str(),
                requestMixName(m.mix), addressingModeName(cfg.mode));
    std::printf("request size : %llu B (%u ports)\n",
                static_cast<unsigned long long>(m.requestSize),
                cfg.numPorts);
    std::printf("raw bandwidth: %.2f GB/s  (%.1f MRPS)\n", m.rawGBps,
                m.mrps);
    if (m.readLatencyNs.count() > 0) {
        std::printf("read latency : avg %.0f ns  min %.0f  max %.0f\n",
                    m.readLatencyNs.mean(), m.readLatencyNs.min(),
                    m.readLatencyNs.max());
    }
    if (m.writeLatencyNs.count() > 0) {
        std::printf("write latency: avg %.0f ns\n",
                    m.writeLatencyNs.mean());
    }
    std::printf("thermal      : %.1f C in %s (%s)\n", pt.temperatureC,
                coolingConfig(cooling).name.c_str(),
                pt.failure ? "THERMAL FAILURE" : "ok");
    std::printf("system power : %.1f W (HMC dynamic %.2f W, leakage "
                "%.2f W)\n",
                pt.systemW, pt.hmcDynamicW, pt.leakageW);
    return 0;
}
