/**
 * @file
 * Quickstart: build the AC-510 + HMC system, run a full-scale GUPS
 * read-only workload across the whole cube, and print the headline
 * numbers (bandwidth, request rate, latency, power, temperature).
 */

#include <cstdio>

#include "host/experiment.hh"

using namespace hmcsim;

int
main()
{
    // 1. Describe the experiment: 9 GUPS ports issuing random 128 B
    //    reads over all 16 vaults (the paper's most distributed
    //    pattern), measured for 1 ms of simulated time.
    ExperimentConfig cfg;
    cfg.mix = RequestMix::ReadOnly;
    cfg.requestSize = 128;
    cfg.numPorts = maxGupsPorts;

    // 2. Run it under the strongest cooling configuration (Cfg1).
    const ThermalExperimentResult r =
        runThermalExperiment(cfg, coolingConfig(1));

    // 3. Report.
    const MeasurementResult &m = r.measurement;
    std::printf("workload          : %s, %s, %llu B requests\n",
                m.patternName.c_str(), requestMixName(m.mix),
                static_cast<unsigned long long>(m.requestSize));
    std::printf("raw bandwidth     : %.1f GB/s\n", m.rawGBps);
    std::printf("request rate      : %.0f MRPS\n", m.mrps);
    std::printf("read latency      : avg %.0f ns (min %.0f, max %.0f)\n",
                m.readLatencyNs.mean(), m.readLatencyNs.min(),
                m.readLatencyNs.max());
    std::printf("HMC dynamic power : %.2f W\n",
                r.powerThermal.hmcDynamicW);
    std::printf("system power      : %.1f W\n", r.powerThermal.systemW);
    std::printf("HMC temperature   : %.1f C (%s)\n",
                r.powerThermal.temperatureC,
                r.powerThermal.failure ? "THERMAL FAILURE" : "ok");
    return 0;
}
