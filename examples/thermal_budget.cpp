/**
 * @file
 * PIM thermal-budget study: how much bandwidth can a workload sustain
 * in each cooling environment before the cube hits its reliability
 * bound?
 *
 * This is the design question behind the paper's Sec. IV-C: a
 * processing-in-memory deployment raises ambient heat, and sustained
 * operation can push the HMC past 85 C (reads) or ~75 C (writes),
 * shutting it down and losing its contents. For each Table III
 * cooling configuration and request mix, we search the access-pattern
 * axis for the highest-bandwidth workload that still runs, and report
 * the resulting thermal headroom.
 */

#include <cstdio>

#include "analysis/table.hh"
#include "host/experiment.hh"

using namespace hmcsim;

namespace
{

struct MixInfo
{
    RequestMix mix;
    const char *label;
};

constexpr MixInfo mixes[] = {
    {RequestMix::ReadOnly, "read-only"},
    {RequestMix::WriteOnly, "write-only"},
    {RequestMix::ReadModifyWrite, "read-modify-write"},
};

} // namespace

int
main()
{
    const AddressMapper mapper(HmcConfig::gen2_4GB(),
                               MaxBlockSize::B128);
    const auto axis = paperPatternAxis(mapper);
    const PowerModel power;

    std::printf("Sustainable bandwidth per cooling environment "
                "(reliability bounds: 85 C reads, 75 C writes)\n\n");
    TextTable table({"Cooling", "Mix", "Safe BW GB/s", "Temp C",
                     "Headroom C", "Throttled?"});

    for (unsigned c = 1; c <= 4; ++c) {
        const CoolingConfig &cooling = coolingConfig(c);
        for (const MixInfo &mi : mixes) {
            // Walk from the most to the least distributed pattern and
            // keep the fastest workload that stays under the bound.
            double safe_bw = 0.0;
            double safe_temp = cooling.idleTemperatureC;
            bool throttled = false;
            for (const AccessPattern &p : axis) {
                ExperimentConfig cfg;
                cfg.pattern = p;
                cfg.mix = mi.mix;
                cfg.measure = 300 * tickUs;
                const MeasurementResult m = runExperiment(cfg);
                const PowerThermalResult pt =
                    power.solve(m.traffic(), mi.mix, cooling);
                if (!pt.failure) {
                    safe_bw = m.rawGBps;
                    safe_temp = pt.temperatureC;
                    break;
                }
                throttled = true;
            }
            const double limit =
                ThermalModel::temperatureLimit(mi.mix);
            table.addRow({cooling.name, mi.label,
                          strfmt("%.1f", safe_bw),
                          strfmt("%.1f", safe_temp),
                          strfmt("%.1f", limit - safe_temp),
                          throttled ? "yes" : "no"});
        }
    }
    table.print();

    std::printf("\nReading the table: where \"Throttled?\" is yes, the "
                "full-bandwidth workload exceeded the bound and the "
                "deployment must either restrict its access pattern "
                "or buy the next cooling tier (see "
                "bench_fig12_cooling_power for the W-per-GB/s "
                "trade).\n");
    return 0;
}
