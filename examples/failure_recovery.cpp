/**
 * @file
 * Thermal-failure timeline: drive a write-heavy workload in a weak
 * cooling environment, watch the transient temperature cross the
 * write reliability bound, and walk through the paper's recovery
 * procedure (Sec. IV-C): cool down, reset the HMC, reset the FPGA
 * transceivers, re-initialize, and restore lost data from a
 * checkpoint.
 */

#include <cstdio>

#include "host/experiment.hh"

using namespace hmcsim;

int
main()
{
    // 1. Characterize the workload: write-only, fully distributed.
    ExperimentConfig cfg;
    cfg.mix = RequestMix::WriteOnly;
    const MeasurementResult m = runExperiment(cfg);
    const PowerModel power;
    const double dyn = power.hmcDynamicPower(m.traffic());
    std::printf("workload: %s %s, %.1f GB/s raw, %.2f W of HMC "
                "dynamic power\n\n",
                m.patternName.c_str(), requestMixName(cfg.mix),
                m.rawGBps, dyn);

    // 2. Run the transient thermal model in Cfg3 (the environment the
    //    paper saw write-only traffic fail in).
    const CoolingConfig &cooling = coolingConfig(3);
    const ThermalModel thermal(cooling);
    const double limit =
        ThermalModel::temperatureLimit(RequestMix::WriteOnly);

    double temp = cooling.idleTemperatureC;
    double failure_time = -1.0;
    std::printf("transient in %s (idle %.1f C, write bound %.0f C):\n",
                cooling.name.c_str(), cooling.idleTemperatureC, limit);
    for (int t = 0; t <= 200; t += 5) {
        if (t % 25 == 0)
            std::printf("  t=%3ds  T=%.1f C%s\n", t, temp,
                        temp > limit ? "  ** OVER BOUND **" : "");
        if (temp > limit && failure_time < 0.0)
            failure_time = t;
        temp = thermal.step(temp, dyn, 5.0);
    }

    if (failure_time < 0.0) {
        std::printf("\nno failure: workload is sustainable here.\n");
        return 0;
    }

    // 3. The cube shuts down; responses flag the failure to the host.
    std::printf("\n>> thermal shutdown at ~t=%.0fs. Stored data is "
                "lost; in-flight responses carry the failure flag in "
                "their header/tail.\n\n",
                failure_time);
    Ac510Config probe_cfg;
    probe_cfg.numPorts = 1;
    probe_cfg.port.requestBudget = 3;
    Ac510Module probe(probe_cfg);
    probe.device().setThermalShutdown(true);
    probe.start();
    probe.runToCompletion();
    std::printf("host view: %llu of 3 probe reads returned "
                "thermal-failure responses\n\n",
                static_cast<unsigned long long>(
                    probe.aggregateStats().thermalFailures));

    // 4. Recovery procedure (paper Sec. IV-C), with a cooldown solved
    //    by the same transient model at idle power.
    std::printf("recovery procedure:\n");
    double cool = temp;
    double cooldown = 0.0;
    while (cool > cooling.idleTemperatureC + 2.0) {
        cool = thermal.step(cool, 0.0, 1.0);
        cooldown += 1.0;
    }
    std::printf("  1. cool down to %.1f C           : ~%.0f s\n", cool,
                cooldown);
    std::printf("  2. reset HMC                     : link retraining\n");
    std::printf("  3. reset FPGA transceivers       : SerDes "
                "recalibration\n");
    std::printf("  4. initialize HMC + FPGA         : mode registers, "
                "GUPS ports\n");
    std::printf("  5. restore data from checkpoint  : DRAM contents "
                "were lost\n\n");

    // 5. The fix: either stronger cooling or a throttled pattern.
    const PowerThermalResult fixed = power.solve(
        m.traffic(), RequestMix::WriteOnly, coolingConfig(1));
    std::printf("with Cfg1 cooling the same workload settles at "
                "%.1f C (%s) -- the cooling-power cost of that choice "
                "is quantified by bench_fig12_cooling_power.\n",
                fixed.temperatureC, fixed.failure ? "still fails" : "safe");
    return 0;
}
