/**
 * @file
 * Ablation: where should an allocator place a 256 MB array?
 *
 * The paper's Sec. IV-D warning: "a streaming application that
 * exhibits linear references should not allocate data sequentially
 * within a vault", because (i) a vault's internal bandwidth is
 * 10 GB/s and (ii) closed-page DRAM gives successive addresses no
 * locality reward anyway. This bench takes one 256 MB array (address
 * bits 28-31 masked to zero) and maps it two ways:
 *
 *  - vault-first (the HMC default, Fig. 3): the array's 16 B blocks
 *    interleave across all 16 vaults;
 *  - contiguous-vault: the vault is chosen by the top address bits,
 *    so the whole array lands inside vault 0.
 *
 * Both linear and random traffic are measured; the bank-first
 * variant (vault/bank fields swapped in the low bits) is included
 * for completeness.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    MappingScheme scheme;
    AddressingMode mode;
    double gbps;
    double latencyUs;
};

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        for (MappingScheme scheme :
             {MappingScheme::VaultFirst, MappingScheme::BankFirst,
              MappingScheme::ContiguousVault}) {
            for (AddressingMode mode :
                 {AddressingMode::Linear, AddressingMode::Random}) {
                ExperimentConfig cfg;
                // One 256 MB array: bits 28-31 forced to zero.
                cfg.pattern = AccessPattern{"256MB array",
                                            bitRangeMask(28, 31), 0, 0,
                                            0};
                cfg.mode = mode;
                cfg.device.mapping = scheme;
                const MeasurementResult m = runExperiment(cfg);
                out.push_back({scheme, mode, m.rawGBps,
                               m.readLatencyNs.mean() / 1000.0});
            }
        }
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nAblation: mapping a 256 MB array (128 B reads, "
                "full-scale GUPS)\n\n");
    TextTable table({"Mapping", "Addressing", "Raw GB/s",
                     "Avg latency us"});
    for (const Row &r : results()) {
        table.addRow({mappingSchemeName(r.scheme),
                      addressingModeName(r.mode),
                      strfmt("%.1f", r.gbps),
                      strfmt("%.2f", r.latencyUs)});
    }
    table.print();

    const auto &rows = results();
    std::printf("\nThe interleaved mappings sustain %.1f GB/s; "
                "allocating the array contiguously inside one vault "
                "caps it at %.1f GB/s (%.1fx worse) and %.1fx the "
                "latency -- the paper's insight (ii)/(iii): stripe "
                "across vaults, don't chase locality.\n\n",
                rows[0].gbps, rows[4].gbps, rows[0].gbps / rows[4].gbps,
                rows[4].latencyUs / rows[0].latencyUs);
}

void
BM_AblationMapping(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["vaultfirst_linear_GBps"] = rows[0].gbps;
    state.counters["bankfirst_linear_GBps"] = rows[2].gbps;
    state.counters["contiguous_linear_GBps"] = rows[4].gbps;
    state.counters["contiguous_random_GBps"] = rows[5].gbps;
}
BENCHMARK(BM_AblationMapping);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
