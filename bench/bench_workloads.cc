/**
 * @file
 * Workload characterization on the simulated HMC: the application
 * shapes the paper's introduction motivates (random updates, streams,
 * skewed key-value access, pointer chasing) replayed as traces.
 *
 * This extends the paper's synthetic GUPS sweep toward "real
 * application" behavior: the frequency, size, and coverage of
 * accesses determine performance (Sec. II-C), and dependence depth
 * determines how much of the latency hierarchy an application feels.
 */

#include <benchmark/benchmark.h>

#include "analysis/table.hh"
#include "gups/trace.hh"
#include "host/trace_replay.hh"
#include "runner/thread_pool.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;

struct Row
{
    const char *name;
    unsigned window;
    TraceReplayResult result;
};

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        SyntheticTraceConfig base;
        base.numEntries = 60000;
        base.requestSize = 128;

        // Stage the workload list first, then replay every trace
        // concurrently on the runner's thread pool (each replay is an
        // isolated simulation; see the threading contract in
        // host/ac510.hh). Rows keep their slot, so the printed table
        // is identical to the serial version.
        std::vector<Row> out;
        auto stage = [&out](const char *name, Trace trace,
                            unsigned window) {
            out.push_back({name, window, {}});
            return trace;
        };

        std::vector<Trace> traces;
        traces.push_back(
            stage("GUPS (uniform random)", uniformTrace(base), 64));
        traces.push_back(
            stage("stream (dense linear)", stridedTrace(base, 128), 64));

        SyntheticTraceConfig strided = base;
        traces.push_back(stage("strided (4 KB stride)",
                               stridedTrace(strided, 4096), 64));

        SyntheticTraceConfig mixed = base;
        mixed.writeFraction = 0.5;
        traces.push_back(stage("update-heavy (50% writes)",
                               uniformTrace(mixed), 64));

        traces.push_back(stage("key-value (zipf 0.99, 64K keys)",
                               zipfTrace(base, 0.99, 65536), 64));
        traces.push_back(stage("hot-key (zipf 1.5, 1K keys)",
                               zipfTrace(base, 1.5, 1024), 64));

        SyntheticTraceConfig chase = base;
        chase.numEntries = 4000;
        chase.footprint = 64 * mib;
        traces.push_back(stage("pointer chase (dependent)",
                               pointerChaseTrace(chase), 1));

        ThreadPool pool;
        pool.parallelFor(traces.size(), [&](std::size_t i) {
            TraceReplayConfig rc;
            rc.maxOutstanding = out[i].window;
            out[i].result = replayTrace(traces[i], rc);
        });
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nWorkload characterization: application-shaped "
                "traces on the AC-510 + HMC platform\n\n");
    TextTable table({"Workload", "Window", "Raw GB/s", "Payload GB/s",
                     "MRPS", "Avg lat us"});
    for (const Row &r : results()) {
        table.addRow({r.name, strfmt("%u", r.window),
                      strfmt("%.1f", r.result.rawGBps),
                      strfmt("%.1f", r.result.payloadGBps),
                      strfmt("%.0f", r.result.mrps),
                      strfmt("%.2f",
                             r.result.latencyNs.mean() / 1000.0)});
    }
    table.print();

    const auto &rows = results();
    std::printf("\nTakeaways: parallel-friendly shapes (uniform, "
                "stream, mild zipf) all ride the link bound; extreme "
                "key skew (%.1f GB/s) collapses onto few banks; a "
                "dependent chase sees the full round trip per hop "
                "(%.2f us => %.0fx slower than GUPS).\n\n",
                rows[5].result.rawGBps,
                rows[6].result.latencyNs.mean() / 1000.0,
                rows[0].result.mrps / rows[6].result.mrps);
}

void
BM_Workloads(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["gups_GBps"] = rows[0].result.rawGBps;
    state.counters["stream_GBps"] = rows[1].result.rawGBps;
    state.counters["hotkey_GBps"] = rows[5].result.rawGBps;
    state.counters["chase_Mrps"] = rows[6].result.mrps;
}
BENCHMARK(BM_Workloads);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
