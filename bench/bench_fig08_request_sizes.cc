/**
 * @file
 * Fig. 8 reproduction: read-only bandwidth and million-requests-per-
 * second (MRPS) for 128 / 64 / 32 B request sizes across the pattern
 * axis.
 *
 * Paper shapes to reproduce:
 *  - bandwidth is nearly flat across request sizes (DRAM timing and
 *    link bandwidth bound, not FPGA buffering);
 *  - for distributed patterns the 32 B MRPS is roughly double the
 *    128 B MRPS;
 *  - for targeted patterns (1-2 banks) MRPS is similar across sizes
 *    (the bank row cycle dominates).
 */

#include <benchmark/benchmark.h>

#include <array>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

constexpr std::array<Bytes, 3> sizes = {128, 64, 32};

struct Fig8Results
{
    std::vector<std::string> patterns;
    std::vector<std::array<double, 3>> gbps;
    std::vector<std::array<double, 3>> mrps;
};

const Fig8Results &
results()
{
    static const Fig8Results r = [] {
        Fig8Results out;
        // Pattern x size grid as one parallel campaign; canonical
        // order puts the three sizes of pattern i at [3i, 3i+3).
        SweepAxes axes;
        axes.patterns = patternAxis();
        axes.mixes = {RequestMix::ReadOnly};
        axes.sizes.assign(sizes.begin(), sizes.end());
        const std::vector<MeasurementResult> points = measureSweep(axes);
        for (std::size_t i = 0; i < axes.patterns.size(); ++i) {
            out.patterns.push_back(axes.patterns[i].name);
            std::array<double, 3> bw{};
            std::array<double, 3> rate{};
            for (std::size_t s = 0; s < sizes.size(); ++s) {
                bw[s] = points[i * 3 + s].rawGBps;
                rate[s] = points[i * 3 + s].mrps;
            }
            out.gbps.push_back(bw);
            out.mrps.push_back(rate);
        }
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig8Results &r = results();
    std::printf("\nFig. 8: read-only bandwidth and request rate vs "
                "request size (random)\n\n");
    TextTable table({"Access pattern", "128B GB/s", "64B GB/s",
                     "32B GB/s", "128B MRPS", "64B MRPS", "32B MRPS"});
    for (std::size_t i = 0; i < r.patterns.size(); ++i) {
        table.addRow({r.patterns[i],
                      strfmt("%.1f", r.gbps[i][0]),
                      strfmt("%.1f", r.gbps[i][1]),
                      strfmt("%.1f", r.gbps[i][2]),
                      strfmt("%.0f", r.mrps[i][0]),
                      strfmt("%.0f", r.mrps[i][1]),
                      strfmt("%.0f", r.mrps[i][2])});
    }
    table.print();

    std::printf("\nShape checks: 16-vault MRPS(32B)/MRPS(128B) = %.2f "
                "(paper ~2); 2-bank MRPS(32B)/MRPS(128B) = %.2f "
                "(paper ~1)\n\n",
                r.mrps.front()[2] / r.mrps.front()[0],
                r.mrps[r.mrps.size() - 2][2] /
                    r.mrps[r.mrps.size() - 2][0]);
}

void
BM_Fig08_RequestSizes(benchmark::State &state)
{
    const Fig8Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["gbps_128B_16vaults"] = r.gbps.front()[0];
    state.counters["gbps_32B_16vaults"] = r.gbps.front()[2];
    state.counters["mrps_128B_16vaults"] = r.mrps.front()[0];
    state.counters["mrps_32B_16vaults"] = r.mrps.front()[2];
}
BENCHMARK(BM_Fig08_RequestSizes);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
