/**
 * @file
 * Extension bench: link power management vs duty cycle.
 *
 * The paper's conclusion (vi): "to attain high bandwidth, optimized
 * low-power mechanisms should be integrated with proper cooling
 * solutions", and its introduction notes the SerDes circuits consume
 * ~43 % of HMC power. Trained links burn standby power even when no
 * packets flow; this bench sweeps the traffic duty cycle of a bursty
 * workload and quantifies what link sleep states reclaim -- in watts
 * and in the temperature headroom that matters for Sec. IV-C's
 * thermal bounds -- against the wake-latency cost.
 */

#include <benchmark/benchmark.h>

#include "analysis/table.hh"
#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    double duty;
    double rawGBps;       ///< average over the period
    double powerNoPm;     ///< system W, links always on
    double powerPm;       ///< system W, idle links sleep
    double tempNoPm;      ///< deg C in Cfg3
    double tempPm;
    double wakePenaltyNs; ///< added to the first access of a burst
};

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        const PowerModel power;
        // Full-rate traffic summary (ro, 128 B, 16 vaults).
        const MeasurementResult peak =
            measure(vaultPattern(defaultMapper(), 16),
                    RequestMix::ReadOnly, 128);
        const CoolingConfig &cfg3 = coolingConfig(3);

        for (double duty : {1.0, 0.75, 0.5, 0.25, 0.1, 0.02}) {
            // A duty-cycled burst moves duty x the traffic on average.
            TrafficSummary t = peak.traffic();
            t.rawGBps *= duty;
            t.readPayloadGBps *= duty;
            t.readMrps *= duty;

            const PowerThermalResult base =
                power.solve(t, RequestMix::ReadOnly, cfg3);
            const double savings = power.linkSleepSavings(duty, 2);

            Row row;
            row.duty = duty;
            row.rawGBps = t.rawGBps;
            row.powerNoPm = base.systemW;
            row.powerPm = base.systemW - savings;
            row.tempNoPm = base.temperatureC;
            // The reclaimed watts also cool the package.
            row.tempPm = base.temperatureC -
                         cfg3.thermalResistance * savings;
            row.wakePenaltyNs =
                duty < 1.0 ? power.params().linkWakeLatencyNs : 0.0;
            out.push_back(row);
        }
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nLink power management: bursty read traffic in Cfg3 "
                "(2 trained links)\n\n");
    TextTable table({"Duty", "Avg BW GB/s", "P always-on W", "P sleep W",
                     "Saved W", "T always-on", "T sleep",
                     "Wake cost"});
    for (const Row &r : results()) {
        table.addRow({strfmt("%.0f%%", r.duty * 100.0),
                      strfmt("%.1f", r.rawGBps),
                      strfmt("%.1f", r.powerNoPm),
                      strfmt("%.1f", r.powerPm),
                      strfmt("%.2f", r.powerNoPm - r.powerPm),
                      strfmt("%.1f C", r.tempNoPm),
                      strfmt("%.1f C", r.tempPm),
                      r.wakePenaltyNs > 0.0
                          ? strfmt("+%.0f ns/burst", r.wakePenaltyNs)
                          : std::string("-")});
    }
    table.print();
    const auto &rows = results();
    std::printf("\nAt a 2%% duty cycle, sleep states reclaim %.2f W "
                "and %.1f C of headroom for a one-time ~%.0f ns wake "
                "per burst -- the low-power integration the paper's "
                "conclusion calls for.\n\n",
                rows.back().powerNoPm - rows.back().powerPm,
                rows.back().tempNoPm - rows.back().tempPm,
                rows.back().wakePenaltyNs);
}

void
BM_LinkPower(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["saved_W_at_2pct"] =
        rows.back().powerNoPm - rows.back().powerPm;
    state.counters["saved_W_at_100pct"] =
        rows.front().powerNoPm - rows.front().powerPm;
}
BENCHMARK(BM_LinkPower);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
