/**
 * @file
 * Table I reproduction: structural properties of HMC versions.
 *
 * Prints the table the paper assembles from the HMC specifications
 * and reports the derived quantities (Eq. 1 bank count, Eq. 2 peak
 * bandwidth) as benchmark counters.
 */

#include <benchmark/benchmark.h>

#include "analysis/table.hh"
#include "hmc/config.hh"
#include "link/link.hh"

namespace
{

using namespace hmcsim;

void
printTable1()
{
    TextTable table({"Property", "HMC 1.0 (Gen1)", "HMC 1.1 (Gen2)",
                     "HMC 2.0"});
    const HmcConfig gen1 = HmcConfig::gen1();
    const HmcConfig gen2a = HmcConfig::gen2_2GB();
    const HmcConfig gen2b = HmcConfig::gen2_4GB();
    const HmcConfig hmc2a = HmcConfig::hmc2_4GB();
    const HmcConfig hmc2b = HmcConfig::hmc2_8GB();

    auto gb = [](Bytes b) {
        return strfmt("%.1f GB", static_cast<double>(b) / gib);
    };
    auto mb = [](Bytes b) {
        return strfmt("%llu MB",
                      static_cast<unsigned long long>(b / mib));
    };
    auto pair_u = [](unsigned a, unsigned b) {
        return a == b ? strfmt("%u", a) : strfmt("%u/%u", a, b);
    };

    table.addRow({"Size", gb(gen1.capacity),
                  strfmt("%.0f/%.0f GB",
                         static_cast<double>(gen2a.capacity) / gib,
                         static_cast<double>(gen2b.capacity) / gib),
                  strfmt("%.0f/%.0f GB",
                         static_cast<double>(hmc2a.capacity) / gib,
                         static_cast<double>(hmc2b.capacity) / gib)});
    table.addRow({"# DRAM Layers", strfmt("%u", gen1.numDramLayers),
                  pair_u(gen2a.numDramLayers, gen2b.numDramLayers),
                  pair_u(hmc2a.numDramLayers, hmc2b.numDramLayers)});
    table.addRow({"DRAM Layer Size", strfmt("%u Gb", gen1.dramLayerGbits),
                  strfmt("%u Gb", gen2b.dramLayerGbits),
                  pair_u(hmc2a.dramLayerGbits, hmc2b.dramLayerGbits)});
    table.addRow({"# Quadrants", strfmt("%u", gen1.numQuadrants),
                  strfmt("%u", gen2b.numQuadrants),
                  strfmt("%u", hmc2a.numQuadrants)});
    table.addRow({"# Vaults", strfmt("%u", gen1.numVaults),
                  strfmt("%u", gen2b.numVaults),
                  strfmt("%u", hmc2a.numVaults)});
    table.addRow({"Vault/Quadrant", strfmt("%u", gen1.vaultsPerQuadrant()),
                  strfmt("%u", gen2b.vaultsPerQuadrant()),
                  strfmt("%u", hmc2a.vaultsPerQuadrant())});
    table.addRow({"# Banks (Eq. 1)", strfmt("%u", gen1.numBanks()),
                  pair_u(gen2a.numBanks(), gen2b.numBanks()),
                  pair_u(hmc2a.numBanks(), hmc2b.numBanks())});
    table.addRow({"# Banks/Vault", strfmt("%u", gen1.banksPerVault()),
                  pair_u(gen2a.banksPerVault(), gen2b.banksPerVault()),
                  pair_u(hmc2a.banksPerVault(), hmc2b.banksPerVault())});
    table.addRow({"Bank Size", mb(gen1.bankBytes()), mb(gen2b.bankBytes()),
                  mb(hmc2a.bankBytes())});
    table.addRow({"Partition Size", mb(gen1.partitionBytes()),
                  mb(gen2b.partitionBytes()), mb(hmc2a.partitionBytes())});

    std::printf("\nTable I: Properties of HMC versions (derived from "
                "structural configs)\n\n");
    table.print();

    LinkConfig ac510;
    std::printf("\nEq. 2 check: 2 links x 8 lanes x 15 Gbps x 2 = "
                "%.0f GB/s peak bidirectional\n\n",
                ac510.peakBidirectionalBytesPerSecond() / 1e9);
}

void
BM_Table1(benchmark::State &state)
{
    const HmcConfig cfg = HmcConfig::gen2_4GB();
    for (auto _ : state)
        benchmark::DoNotOptimize(cfg.numBanks());
    state.counters["banks_gen2_4GB"] = cfg.numBanks();
    state.counters["banks_per_vault"] = cfg.banksPerVault();
    state.counters["bank_MB"] =
        static_cast<double>(cfg.bankBytes()) / mib;
    LinkConfig link;
    state.counters["peak_GBps"] =
        link.peakBidirectionalBytesPerSecond() / 1e9;
}
BENCHMARK(BM_Table1);

} // namespace

int
main(int argc, char **argv)
{
    printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
