/**
 * @file
 * Table II reproduction: HMC read/write request/response sizes in
 * flits, plus the effective-bandwidth arithmetic of Sec. IV-D.
 */

#include <benchmark/benchmark.h>

#include "analysis/table.hh"
#include "protocol/packet.hh"

namespace
{

using namespace hmcsim;

void
printTable2()
{
    std::printf("\nTable II: HMC read/write request/response sizes\n\n");
    TextTable table({"Data size", "RD req", "RD resp", "WR req",
                     "WR resp", "RD total", "WR total"});
    for (Bytes payload = 16; payload <= 128; payload += 16) {
        table.addRow({strfmt("%3llu B",
                             static_cast<unsigned long long>(payload)),
                      strfmt("%u flit", requestFlits(Command::Read, payload)),
                      strfmt("%u flits",
                             responseFlits(Command::Read, payload)),
                      strfmt("%u flits",
                             requestFlits(Command::Write, payload)),
                      strfmt("%u flit",
                             responseFlits(Command::Write, payload)),
                      strfmt("%llu B",
                             static_cast<unsigned long long>(
                                 transactionBytes(Command::Read, payload))),
                      strfmt("%llu B",
                             static_cast<unsigned long long>(
                                 transactionBytes(Command::Write,
                                                  payload)))});
    }
    table.print();

    std::printf("\nEffective bandwidth fraction (Sec. IV-D): "
                "128 B -> %.0f%%, 16 B -> %.0f%%\n\n",
                effectiveBandwidthFraction(128) * 100.0,
                effectiveBandwidthFraction(16) * 100.0);
}

void
BM_Table2(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(transactionBytes(Command::Read, 128));
    state.counters["rd128_total_flits"] =
        requestFlits(Command::Read, 128) + responseFlits(Command::Read, 128);
    state.counters["wr128_total_flits"] =
        requestFlits(Command::Write, 128) +
        responseFlits(Command::Write, 128);
    state.counters["eff_bw_128B_pct"] =
        effectiveBandwidthFraction(128) * 100.0;
    state.counters["eff_bw_16B_pct"] =
        effectiveBandwidthFraction(16) * 100.0;
}
BENCHMARK(BM_Table2);

} // namespace

int
main(int argc, char **argv)
{
    printTable2();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
