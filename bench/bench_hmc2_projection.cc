/**
 * @file
 * Projection: the paper's sweep on an HMC 2.0 device.
 *
 * The paper characterizes HMC 1.1 and tabulates HMC 2.0's structure
 * (Table I: 32 vaults, 8 vaults per quadrant) as the next step. This
 * bench re-runs the access-type sweep on the 2.0 configuration --
 * same two half-width links first (isolating the internal-structure
 * effect), then with the 2.0-era four-link host interface (lifting
 * the external bound).
 */

#include <benchmark/benchmark.h>

#include <array>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct DeviceRun
{
    const char *name;
    std::vector<std::string> patterns;
    std::vector<std::array<double, 3>> gbps; // ro, rw, wo
};

DeviceRun
sweep(const char *name, const HmcConfig &structure, unsigned num_links)
{
    DeviceRun run;
    run.name = name;
    const AddressMapper mapper(structure, MaxBlockSize::B128);
    const RequestMix mixes[3] = {RequestMix::ReadOnly,
                                 RequestMix::ReadModifyWrite,
                                 RequestMix::WriteOnly};
    std::vector<AccessPattern> axis;
    axis.push_back(vaultPattern(mapper, structure.numVaults));
    axis.push_back(vaultPattern(mapper, 4));
    axis.push_back(vaultPattern(mapper, 1));
    axis.push_back(bankPattern(mapper, 1));
    for (const AccessPattern &p : axis) {
        run.patterns.push_back(p.name);
        std::array<double, 3> row{};
        for (int m = 0; m < 3; ++m) {
            ExperimentConfig cfg;
            cfg.pattern = p;
            cfg.mix = mixes[m];
            cfg.device.structure = structure;
            cfg.controller.numLinks = num_links;
            row[m] = runExperiment(cfg).rawGBps;
        }
        run.gbps.push_back(row);
    }
    return run;
}

const std::vector<DeviceRun> &
results()
{
    static const std::vector<DeviceRun> runs = [] {
        std::vector<DeviceRun> out;
        out.push_back(
            sweep("HMC 1.1 4GB, 2 links", HmcConfig::gen2_4GB(), 2));
        out.push_back(
            sweep("HMC 2.0 4GB, 2 links", HmcConfig::hmc2_4GB(), 2));
        out.push_back(
            sweep("HMC 2.0 4GB, 4 links", HmcConfig::hmc2_4GB(), 4));
        return out;
    }();
    return runs;
}

void
printFigure()
{
    std::printf("\nProjection: access-type sweep on HMC 2.0 (Table I "
                "structure)\n");
    for (const DeviceRun &run : results()) {
        std::printf("\n%s\n\n", run.name);
        TextTable table({"Pattern", "ro GB/s", "rw GB/s", "wo GB/s"});
        for (std::size_t i = 0; i < run.patterns.size(); ++i) {
            table.addRow({run.patterns[i],
                          strfmt("%.1f", run.gbps[i][0]),
                          strfmt("%.1f", run.gbps[i][1]),
                          strfmt("%.1f", run.gbps[i][2])});
        }
        table.print();
    }
    const auto &runs = results();
    std::printf("\nWith two links HMC 2.0 gains little (the host "
                "interface still binds: %.1f vs %.1f GB/s ro); "
                "doubling the links lets the 32 vaults breathe "
                "(%.1f GB/s ro). The structural bound per vault "
                "(10 GB/s) is unchanged: 1-vault = %.1f GB/s on every "
                "device.\n\n",
                runs[1].gbps[0][0], runs[0].gbps[0][0],
                runs[2].gbps[0][0], runs[2].gbps[2][0]);
}

void
BM_Hmc2Projection(benchmark::State &state)
{
    const auto &runs = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&runs);
    state.counters["hmc11_2link_ro"] = runs[0].gbps[0][0];
    state.counters["hmc20_2link_ro"] = runs[1].gbps[0][0];
    state.counters["hmc20_4link_ro"] = runs[2].gbps[0][0];
}
BENCHMARK(BM_Hmc2Projection);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
