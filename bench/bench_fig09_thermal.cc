/**
 * @file
 * Fig. 9 reproduction: HMC heatsink temperature and bandwidth across
 * the access-pattern axis under the Table III cooling configurations,
 * for ro / wo / rw.
 *
 * Paper shapes to reproduce:
 *  - temperature stays flat across the first (bandwidth-saturated)
 *    patterns and drops as bandwidth drops (2 vaults .. 1 bank);
 *  - read-only never fails, even in the weakest cooling (~80 C < 85);
 *  - write-heavy mixes fail in weak cooling configs (the paper's
 *    Fig. 9b shows wo only for Cfg1-2, Fig. 9c shows rw for Cfg1-3);
 *    failed combinations print as FAIL and are excluded.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Cell
{
    double temperatureC;
    bool failure;
};

struct Fig9Results
{
    std::vector<std::string> patterns;
    // [mix] -> per pattern bandwidth
    std::vector<std::vector<double>> gbps;
    // [mix][cfg][pattern]
    std::vector<std::vector<std::vector<Cell>>> cells;
};

constexpr RequestMix mixes[3] = {RequestMix::ReadOnly,
                                 RequestMix::WriteOnly,
                                 RequestMix::ReadModifyWrite};

const Fig9Results &
results()
{
    static const Fig9Results r = [] {
        Fig9Results out;
        for (const AccessPattern &p : patternAxis())
            out.patterns.push_back(p.name);
        const PowerModel power;
        for (int m = 0; m < 3; ++m) {
            std::vector<double> bw;
            std::vector<std::vector<Cell>> per_cfg(4);
            for (const AccessPattern &p : patternAxis()) {
                const MeasurementResult meas = measure(p, mixes[m], 128);
                bw.push_back(meas.rawGBps);
                for (unsigned c = 0; c < 4; ++c) {
                    const PowerThermalResult pt = power.solve(
                        meas.traffic(), mixes[m], coolingConfig(c + 1));
                    per_cfg[c].push_back(
                        {pt.temperatureC, pt.failure});
                }
            }
            out.gbps.push_back(std::move(bw));
            out.cells.push_back(std::move(per_cfg));
        }
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig9Results &r = results();
    const char *titles[3] = {"(a) read-only", "(b) write-only",
                             "(c) read-modify-write"};
    std::printf("\nFig. 9: heatsink temperature and bandwidth per "
                "access pattern and cooling configuration\n");
    for (int m = 0; m < 3; ++m) {
        std::printf("\n%s\n\n", titles[m]);
        TextTable table({"Access pattern", "BW GB/s", "Cfg4", "Cfg3",
                         "Cfg2", "Cfg1"});
        for (std::size_t i = 0; i < r.patterns.size(); ++i) {
            std::vector<std::string> row;
            row.push_back(r.patterns[i]);
            row.push_back(strfmt("%.1f", r.gbps[m][i]));
            for (int c = 3; c >= 0; --c) {
                const Cell &cell = r.cells[m][c][i];
                row.push_back(cell.failure
                                  ? strfmt("FAIL(%.0fC)",
                                           cell.temperatureC)
                                  : strfmt("%.1f C", cell.temperatureC));
            }
            table.addRow(std::move(row));
        }
        table.print();
    }

    // Which configurations survive each mix at full load (pattern 0)?
    std::printf("\nSurviving configurations at the most distributed "
                "pattern (paper: ro all, wo Cfg1-2, rw Cfg1-3):\n");
    for (int m = 0; m < 3; ++m) {
        std::printf("  %s:", requestMixName(mixes[m]));
        for (unsigned c = 0; c < 4; ++c) {
            if (!r.cells[m][c].front().failure)
                std::printf(" Cfg%u", c + 1);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

void
BM_Fig09_Thermal(benchmark::State &state)
{
    const Fig9Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["ro_cfg4_maxT_C"] = r.cells[0][3].front().temperatureC;
    state.counters["wo_cfg3_fails"] = r.cells[1][2].front().failure;
    state.counters["rw_cfg3_fails"] = r.cells[2][2].front().failure;
    state.counters["rw_cfg4_fails"] = r.cells[2][3].front().failure;
}
BENCHMARK(BM_Fig09_Thermal);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
