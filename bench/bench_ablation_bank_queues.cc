/**
 * @file
 * Ablation: the paper's per-bank-queue conjecture, made concrete.
 *
 * Sec. IV-E4 applies Little's law at the latency saturation knee and
 * finds the occupancy for two-bank patterns to be about half that of
 * four-bank patterns, concluding "a vault controller has one queue
 * for each bank or for each DRAM layer". Our calibrated system bounds
 * outstanding traffic with the host-side tag pools instead (see
 * EXPERIMENTS.md), so that ratio does not appear end to end -- but
 * the event-driven queued vault can test the conjecture directly:
 * give each bank a finite queue, saturate k banks, and measure the
 * in-vault occupancy by Little's law. If queues are per bank, the
 * occupancy scales with k; a shared queue would not.
 */

#include <benchmark/benchmark.h>

#include "analysis/regression.hh"
#include "analysis/table.hh"
#include "hmc/queued_vault.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace
{

using namespace hmcsim;

struct Row
{
    unsigned banks;
    double throughputMrps;
    double residenceUs; ///< mean time inside the vault
    double occupancy;   ///< Little's law: X * W
};

/** Saturate @p banks banks of a queued vault and measure. */
Row
saturate(unsigned banks, unsigned queue_depth)
{
    EventQueue queue;
    QueuedVaultConfig cfg;
    cfg.perBankQueueDepth = queue_depth;
    cfg.busQueueLimit = 4; // finite bank-to-bus stage: backpressure

    Xoshiro256StarStar rng(banks * 101);
    std::uint64_t completed = 0;
    double residence_sum = 0.0;
    Tick measure_start = 200 * tickUs;

    QueuedVaultController *vault_ptr = nullptr;
    std::function<void()> top_up;

    QueuedVaultController vault(
        cfg, queue,
        [&](const Packet &pkt, Tick at) {
            if (at >= measure_start) {
                ++completed;
                residence_sum += ticksToUs(at - pkt.tVaultArrive);
            }
            top_up();
        });
    vault_ptr = &vault;

    // Greedy source: after every completion, refill every bank's
    // queue to the brim (the saturated-arrival regime of Fig. 17).
    top_up = [&]() {
        for (unsigned b = 0; b < banks; ++b) {
            while (true) {
                Packet pkt;
                pkt.cmd = Command::Read;
                pkt.payload = 128;
                pkt.bank = static_cast<std::uint8_t>(b);
                pkt.row = static_cast<std::uint32_t>(rng.next());
                if (!vault_ptr->offer(pkt))
                    break;
            }
        }
    };

    queue.schedule(0, top_up);
    queue.runUntil(1200 * tickUs);

    Row row;
    row.banks = banks;
    const double seconds = ticksToSeconds(1200 * tickUs - measure_start);
    row.throughputMrps =
        static_cast<double>(completed) / seconds / 1e6;
    row.residenceUs =
        completed ? residence_sum / static_cast<double>(completed) : 0.0;
    row.occupancy =
        littlesLawOccupancy(row.residenceUs, row.throughputMrps);
    return row;
}

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        for (unsigned banks : {1u, 2u, 4u, 8u})
            out.push_back(saturate(banks, 16));
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nPer-bank queues under saturation (queued vault "
                "model, depth 16, 128 B reads)\n\n");
    TextTable table({"Banks", "Throughput MRPS", "Residence us",
                     "Occupancy (Little)"});
    for (const Row &r : results()) {
        table.addRow({strfmt("%u", r.banks),
                      strfmt("%.1f", r.throughputMrps),
                      strfmt("%.2f", r.residenceUs),
                      strfmt("%.0f", r.occupancy)});
    }
    table.print();

    const auto &rows = results();
    std::printf("\nOccupancy scales with the bank count (2 banks / 4 "
                "banks = %.2f; the paper's measured ratio was ~0.5) "
                "because each bank contributes its own queue -- the "
                "mechanism the paper inferred from its Fig. 17 "
                "analysis. In the calibrated end-to-end system the "
                "host tag pools bound occupancy first, which is why "
                "the ratio is invisible there.\n\n",
                rows[1].occupancy / rows[2].occupancy);
}

void
BM_AblationBankQueues(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["occ_2banks"] = rows[1].occupancy;
    state.counters["occ_4banks"] = rows[2].occupancy;
    state.counters["ratio"] = rows[1].occupancy / rows[2].occupancy;
}
BENCHMARK(BM_AblationBankQueues);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
