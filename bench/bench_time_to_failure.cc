/**
 * @file
 * Extension bench: time to thermal failure, from the coupled
 * co-simulation.
 *
 * Fig. 9 reports which (mix, cooling) combinations fail; the paper's
 * methodology (200 s runs) also implies *when* they fail, which
 * matters operationally: it is the window a checkpointing scheme
 * must beat (Sec. IV-C: recovery relies on checkpoint + rollback).
 * This bench runs the transient loop for every combination and
 * reports settle temperatures or failure times.
 */

#include <benchmark/benchmark.h>

#include "analysis/table.hh"
#include "host/cosim.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;

struct Cell
{
    bool failed;
    double failureTimeS;
    double finalTempC;
};

struct Results
{
    // [mix][cooling-1]
    Cell cells[3][4];
};

constexpr RequestMix mixes[3] = {RequestMix::ReadOnly,
                                 RequestMix::WriteOnly,
                                 RequestMix::ReadModifyWrite};

const Results &
results()
{
    static const Results r = [] {
        Results out;
        for (int m = 0; m < 3; ++m) {
            for (unsigned c = 1; c <= 4; ++c) {
                CoSimConfig cfg;
                cfg.experiment.mix = mixes[m];
                cfg.experiment.warmup = 50 * tickUs;
                cfg.cooling = coolingConfig(c);
                cfg.sliceSimTime = 100 * tickUs;
                cfg.wallStepSeconds = 2.0;
                const CoSimResult res = runCoSimulation(cfg);
                out.cells[m][c - 1] = {res.failed,
                                       res.failureTimeSeconds,
                                       res.finalTemperatureC};
            }
        }
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Results &r = results();
    std::printf("\nTime to thermal failure over a 200 s run "
                "(transient co-simulation, full-bandwidth "
                "patterns)\n\n");
    TextTable table({"Mix", "Cfg1", "Cfg2", "Cfg3", "Cfg4"});
    for (int m = 0; m < 3; ++m) {
        std::vector<std::string> row = {requestMixName(mixes[m])};
        for (unsigned c = 0; c < 4; ++c) {
            const Cell &cell = r.cells[m][c];
            row.push_back(cell.failed
                              ? strfmt("FAIL @ %.0f s",
                                       cell.failureTimeS)
                              : strfmt("ok, %.1f C", cell.finalTempC));
        }
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\nOperational reading: a write-heavy PIM kernel in "
                "the weak cooling tiers has on the order of a minute "
                "before the cube shuts down and loses its contents -- "
                "checkpoint intervals must be shorter than that "
                "(cf. examples/failure_recovery).\n\n");
}

void
BM_TimeToFailure(benchmark::State &state)
{
    const Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["wo_cfg3_fail_s"] = r.cells[1][2].failureTimeS;
    state.counters["wo_cfg4_fail_s"] = r.cells[1][3].failureTimeS;
    state.counters["ro_cfg4_final_C"] = r.cells[0][3].finalTempC;
}
BENCHMARK(BM_TimeToFailure);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
