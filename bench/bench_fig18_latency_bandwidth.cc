/**
 * @file
 * Fig. 18 reproduction: read latency vs request bandwidth for every
 * access pattern and request size, swept with small-scale GUPS.
 *
 * Paper shapes to reproduce:
 *  - patterns inside one vault saturate at the ~10 GB/s vault bound;
 *  - two-vault patterns saturate near 19 GB/s (~2x a vault);
 *  - wider patterns do not reach saturation with 9 ports;
 *  - more banks => more outstanding requests before the knee (BLP),
 *    except beyond 8 banks where the vault bus takes over.
 */

#include <benchmark/benchmark.h>

#include <array>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

constexpr std::array<Bytes, 4> sizes = {16, 32, 64, 128};

struct Fig18Results
{
    std::vector<std::string> patterns;
    // [size][pattern][ports-1] -> {bandwidth, latency}
    std::vector<std::vector<std::vector<std::pair<double, double>>>>
        curves;
};

const Fig18Results &
results()
{
    static const Fig18Results r = [] {
        Fig18Results out;
        // Axis reversed vs Fig. 7: 1 bank .. 16 vaults, as the paper's
        // legend orders the series.
        std::vector<AccessPattern> axis;
        for (unsigned b = 1; b <= 8; b *= 2)
            axis.push_back(bankPattern(defaultMapper(), b));
        for (unsigned v = 1; v <= 16; v *= 2)
            axis.push_back(vaultPattern(defaultMapper(), v));
        for (const AccessPattern &p : axis)
            out.patterns.push_back(p.name);

        for (Bytes size : sizes) {
            std::vector<std::vector<std::pair<double, double>>> per_pat;
            for (const AccessPattern &p : axis) {
                std::vector<std::pair<double, double>> curve;
                for (unsigned ports = 1; ports <= maxGupsPorts;
                     ports += 2) {
                    const MeasurementResult m =
                        measure(p, RequestMix::ReadOnly, size,
                                AddressingMode::Random, ports);
                    curve.emplace_back(m.rawGBps,
                                       m.readLatencyNs.mean() / 1000.0);
                }
                per_pat.push_back(std::move(curve));
            }
            out.curves.push_back(std::move(per_pat));
        }
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig18Results &r = results();
    std::printf("\nFig. 18: read latency vs request bandwidth "
                "(small-scale GUPS, ports = 1,3,5,7,9)\n");
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        std::printf("\n(%c) size %llu B -- rows: pattern; cells: "
                    "BW GB/s @ latency us\n\n",
                    static_cast<char>('a' + s),
                    static_cast<unsigned long long>(sizes[s]));
        TextTable table({"Pattern", "1 port", "3 ports", "5 ports",
                         "7 ports", "9 ports"});
        for (std::size_t p = 0; p < r.patterns.size(); ++p) {
            std::vector<std::string> row = {r.patterns[p]};
            for (const auto &[bw, lat] : r.curves[s][p])
                row.push_back(strfmt("%.1f @ %.2f", bw, lat));
            table.addRow(std::move(row));
        }
        table.print();
    }

    // Saturation bandwidths with all ports at 128 B.
    const auto &full128 = r.curves[3];
    std::printf("\nShape checks (128 B, 9 ports): 1 vault saturates "
                "at %.1f GB/s (paper ~10), 2 vaults at %.1f GB/s "
                "(paper ~19), 16 vaults reaches %.1f GB/s without "
                "saturating.\n\n",
                full128[4].back().first, full128[5].back().first,
                full128[8].back().first);
}

void
BM_Fig18_LatencyBandwidth(benchmark::State &state)
{
    const Fig18Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["sat_1vault_GBps"] = r.curves[3][4].back().first;
    state.counters["sat_2vaults_GBps"] = r.curves[3][5].back().first;
    state.counters["bw_16vaults_GBps"] = r.curves[3][8].back().first;
}
BENCHMARK(BM_Fig18_LatencyBandwidth);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
