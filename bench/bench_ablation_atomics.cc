/**
 * @file
 * Ablation: host-side read-modify-write vs in-memory atomic updates.
 *
 * GUPS is "giga updates per second": the paper's rw mix performs each
 * update by reading 128 B to the FPGA and writing it back (320 raw
 * link bytes per update). HMC also offers atomic request commands
 * that perform the update inside the vault controller -- the seed of
 * the PIM direction the paper motivates. This bench compares the two
 * on the same update workload and reports updates/second and link
 * bytes per update.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    const char *name;
    double updatesMps;
    double rawGBps;
    double bytesPerUpdate;
    double latencyUs;
};

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        // Host-side update: rw over 128 B blocks.
        {
            ExperimentConfig cfg;
            cfg.mix = RequestMix::ReadModifyWrite;
            cfg.requestSize = 128;
            const MeasurementResult m = runExperiment(cfg);
            out.push_back({"host rw (128 B blocks)", m.writeMrps,
                           m.rawGBps, m.rawGBps * 1000.0 / m.writeMrps,
                           m.readLatencyNs.mean() / 1000.0});
        }
        // Host-side update on 16 B values (the honest GUPS grain).
        {
            ExperimentConfig cfg;
            cfg.mix = RequestMix::ReadModifyWrite;
            cfg.requestSize = 16;
            const MeasurementResult m = runExperiment(cfg);
            out.push_back({"host rw (16 B values)", m.writeMrps,
                           m.rawGBps, m.rawGBps * 1000.0 / m.writeMrps,
                           m.readLatencyNs.mean() / 1000.0});
        }
        // In-memory atomic update (16 B immediate).
        {
            ExperimentConfig cfg;
            cfg.mix = RequestMix::Atomic;
            const MeasurementResult m = runExperiment(cfg);
            out.push_back({"in-memory atomic", m.readMrps, m.rawGBps,
                           m.rawGBps * 1000.0 / m.readMrps,
                           m.readLatencyNs.mean() / 1000.0});
        }
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nAblation: GUPS updates via host rw vs in-memory "
                "atomics (16 vaults, random)\n\n");
    TextTable table({"Method", "Updates M/s", "Raw GB/s",
                     "Link bytes/update", "Avg latency us"});
    for (const Row &r : results()) {
        table.addRow({r.name, strfmt("%.0f", r.updatesMps),
                      strfmt("%.1f", r.rawGBps),
                      strfmt("%.0f", r.bytesPerUpdate),
                      strfmt("%.2f", r.latencyUs)});
    }
    table.print();

    const auto &rows = results();
    std::printf("\nAtomics deliver %.1fx the update rate of 16 B host "
                "rw while moving %.0fx fewer link bytes per update -- "
                "the data-movement argument for processing in memory "
                "(Sec. I).\n\n",
                rows[2].updatesMps / rows[1].updatesMps,
                rows[1].bytesPerUpdate / rows[2].bytesPerUpdate);
}

void
BM_AblationAtomics(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["host_rw16_Mups"] = rows[1].updatesMps;
    state.counters["atomic_Mups"] = rows[2].updatesMps;
    state.counters["atomic_bytes_per_update"] = rows[2].bytesPerUpdate;
}
BENCHMARK(BM_AblationAtomics);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
