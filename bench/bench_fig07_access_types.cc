/**
 * @file
 * Fig. 7 reproduction: raw bandwidth of ro / rw / wo 128 B random
 * accesses across the pattern axis (16 vaults down to 1 bank).
 *
 * Paper shapes to reproduce:
 *  - distributed rw > ro > wo, with rw roughly double wo (rw counts
 *    both transaction directions and both are TX-bound);
 *  - accessing more than eight banks of one vault does not raise
 *    bandwidth (the 10 GB/s vault bound);
 *  - single-bank bandwidth of a few GB/s.
 */

#include <benchmark/benchmark.h>

#include <array>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Fig7Results
{
    std::vector<std::string> patterns;
    std::vector<std::array<double, 3>> gbps; // ro, rw, wo
};

const Fig7Results &
results()
{
    static const Fig7Results r = [] {
        Fig7Results out;
        const RequestMix mixes[3] = {RequestMix::ReadOnly,
                                     RequestMix::ReadModifyWrite,
                                     RequestMix::WriteOnly};
        for (const AccessPattern &p : patternAxis()) {
            out.patterns.push_back(p.name);
            std::array<double, 3> row{};
            for (int m = 0; m < 3; ++m)
                row[m] = measure(p, mixes[m], 128).rawGBps;
            out.gbps.push_back(row);
        }
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig7Results &r = results();
    std::printf("\nFig. 7: measured HMC bandwidth for ro / rw / wo "
                "(128 B = 8 flit accesses, random)\n\n");
    TextTable table({"Access pattern", "ro GB/s", "rw GB/s", "wo GB/s"});
    for (std::size_t i = 0; i < r.patterns.size(); ++i) {
        table.addRow({r.patterns[i], strfmt("%.1f", r.gbps[i][0]),
                      strfmt("%.1f", r.gbps[i][1]),
                      strfmt("%.1f", r.gbps[i][2])});
    }
    table.print();

    const auto &dist = r.gbps.front(); // 16 vaults
    std::printf("\nShape checks (16 vaults): rw/wo = %.2f (paper ~2), "
                "rw/ro = %.2f (paper >1)\n\n",
                dist[1] / dist[2], dist[1] / dist[0]);
}

void
BM_Fig07_AccessTypes(benchmark::State &state)
{
    const Fig7Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["ro_16vaults_GBps"] = r.gbps.front()[0];
    state.counters["rw_16vaults_GBps"] = r.gbps.front()[1];
    state.counters["wo_16vaults_GBps"] = r.gbps.front()[2];
    state.counters["ro_1vault_GBps"] = r.gbps[4][0];
    state.counters["ro_1bank_GBps"] = r.gbps.back()[0];
}
BENCHMARK(BM_Fig07_AccessTypes);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
