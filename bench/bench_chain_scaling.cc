/**
 * @file
 * Extension bench: capacity scaling and fault tolerance with chained
 * cubes.
 *
 * Quantifies the two claims the paper attributes to the packet-
 * switched interface (Sec. IV-E2): scalability via the interconnect
 * (latency per additional cube hop) and package-level fault tolerance
 * via rerouting around failed packages (latency/availability before
 * and after a cube failure).
 */

#include <benchmark/benchmark.h>

#include <utility>

#include "analysis/table.hh"
#include "hmc/chain.hh"
#include "runner/thread_pool.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace
{

using namespace hmcsim;

/**
 * Average low-load read latency to one cube of a chain. Takes a fresh
 * chain so link-regulator history from earlier probes cannot leak in.
 */
double
probeLatencyNs(CubeChain &&chain, unsigned target, int samples = 200)
{
    Xoshiro256StarStar rng(17 + target);
    double total = 0.0;
    Tick t = 0;
    for (int i = 0; i < samples; ++i) {
        Packet pkt;
        pkt.cmd = Command::Read;
        pkt.payload = 128;
        pkt.addr = static_cast<Addr>(target) * 4 * gib +
                   rng.nextBounded(4ull * gib / 128) * 128;
        // Space probes out so they do not queue on each other.
        t += 5 * tickUs;
        const Tick done = chain.handleRequest(pkt, t);
        total += ticksToNs(done - t);
    }
    return total / samples;
}

struct ChainResults
{
    std::vector<double> hopLatencyNs;       // 8-cube ring, cube 0..7
    double healthyLatencyNs = 0.0;          // 4-cube ring, cube 1
    double reroutedLatencyNs = 0.0;         // same, cube 0 failed
    double unreachableFraction = 0.0;       // double failure
};

const ChainResults &
results()
{
    static const ChainResults r = [] {
        ChainResults out;
        CubeChainConfig cfg;
        cfg.numCubes = 8;
        // Every probe builds its own chain, so the ten probes are
        // independent simulations -- run them across the pool and
        // keep each result in its pre-assigned slot.
        out.hopLatencyNs.resize(8);
        CubeChainConfig cfg4;
        cfg4.numCubes = 4;
        ThreadPool pool;
        pool.parallelFor(10, [&](std::size_t job) {
            if (job < 8) {
                out.hopLatencyNs[job] = probeLatencyNs(
                    CubeChain(cfg), static_cast<unsigned>(job));
            } else if (job == 8) {
                out.healthyLatencyNs =
                    probeLatencyNs(CubeChain(cfg4), 1);
            } else {
                CubeChain degraded(cfg4);
                degraded.setCubeFailed(0, true);
                out.reroutedLatencyNs =
                    probeLatencyNs(std::move(degraded), 1);
            }
        });

        CubeChain walled(cfg4);
        walled.setCubeFailed(0, true);
        walled.setCubeFailed(2, true);
        unsigned reachable = 0;
        for (unsigned c = 0; c < 4; ++c)
            reachable += walled.reachable(c);
        out.unreachableFraction = 1.0 - reachable / 4.0;
        return out;
    }();
    return r;
}

void
printFigure()
{
    const ChainResults &r = results();
    std::printf("\nChained cubes: hop latency around an 8-cube ring "
                "(host attached at cubes 0 and 7)\n\n");
    TextTable table({"Target cube", "Hops", "Avg read latency ns"});
    const unsigned hops[8] = {0, 1, 2, 3, 3, 2, 1, 0};
    for (unsigned c = 0; c < 8; ++c)
        table.addRow({strfmt("cube %u", c), strfmt("%u", hops[c]),
                      strfmt("%.0f", r.hopLatencyNs[c])});
    table.print();

    const double per_hop =
        (r.hopLatencyNs[3] - r.hopLatencyNs[0]) / 3.0;
    std::printf("\n~%.0f ns per cube hop (pass-through + two link "
                "crossings per direction).\n",
                per_hop);
    std::printf("\nFault tolerance (4-cube ring, target cube 1):\n"
                "  healthy path (1 hop) : %.0f ns\n"
                "  cube 0 failed, rerouted the long way (2 hops): "
                "%.0f ns -- capacity retained, latency +%.0f%%\n"
                "  double failure walls off 1 of 4 cubes "
                "(%.0f%% of capacity lost, the rest keeps serving)\n\n",
                r.healthyLatencyNs, r.reroutedLatencyNs,
                (r.reroutedLatencyNs / r.healthyLatencyNs - 1.0) * 100.0,
                r.unreachableFraction * 100.0);
}

void
BM_ChainScaling(benchmark::State &state)
{
    const ChainResults &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["hop0_ns"] = r.hopLatencyNs[0];
    state.counters["hop3_ns"] = r.hopLatencyNs[3];
    state.counters["rerouted_ns"] = r.reroutedLatencyNs;
}
BENCHMARK(BM_ChainScaling);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
