/**
 * @file
 * Extension bench: raw bandwidth vs read ratio.
 *
 * The paper's related-work section recounts that both HMCSim
 * (Rosenfeld) and the OpenHMC measurements (Schmidt et al.) find
 * maximum link efficiency at a read ratio between roughly 53 % and
 * 66 %: pure reads waste the TX direction, pure writes waste RX, and
 * a read-weighted mix balances the asymmetric request/response sizes.
 * We reproduce that crossover by configuring the nine GUPS ports
 * heterogeneously (k ports reading, 9-k writing) and sweeping k.
 */

#include <benchmark/benchmark.h>

#include "analysis/table.hh"
#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    unsigned readPorts;
    double readRatio; ///< fraction of completed requests that read
    double gbps;
};

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        for (unsigned readers = 0; readers <= maxGupsPorts; ++readers) {
            Ac510Config sys;
            sys.perPort.resize(maxGupsPorts);
            for (unsigned p = 0; p < maxGupsPorts; ++p) {
                // Spread the readers evenly over the ports (and thus
                // both links) rather than clustering them.
                const bool is_reader =
                    (p + 1) * readers / maxGupsPorts !=
                    p * readers / maxGupsPorts;
                sys.perPort[p].mix = is_reader
                                         ? RequestMix::ReadOnly
                                         : RequestMix::WriteOnly;
                sys.perPort[p].requestSize = 128;
            }
            Ac510Module module(sys);
            module.start();
            module.runUntil(100 * tickUs);
            module.resetPortStats();
            module.runUntil(1100 * tickUs);
            const GupsPortStats agg = module.aggregateStats();
            const double reads =
                static_cast<double>(agg.readsCompleted);
            const double writes =
                static_cast<double>(agg.writesCompleted);
            Row row;
            row.readPorts = readers;
            row.readRatio =
                reads + writes > 0 ? reads / (reads + writes) : 0.0;
            row.gbps =
                toGBps(static_cast<double>(agg.rawBytes) / 1e-3);
            out.push_back(row);
        }
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nRead-ratio sweep: k read-only ports + (9-k) "
                "write-only ports, 128 B random over 16 vaults\n\n");
    TextTable table({"Read ports", "Read ratio", "Raw GB/s"});
    double best = 0.0;
    double best_ratio = 0.0;
    for (const Row &r : results()) {
        table.addRow({strfmt("%u/9", r.readPorts),
                      strfmt("%.0f%%", r.readRatio * 100.0),
                      strfmt("%.1f", r.gbps)});
        if (r.gbps > best) {
            best = r.gbps;
            best_ratio = r.readRatio;
        }
    }
    table.print();
    std::printf("\nPeak %.1f GB/s at a %.0f%% read ratio. Prior "
                "studies the paper cites (HMCSim, OpenHMC) place the "
                "optimum between 53%% and 66%% reads; pure reads "
                "leave the TX direction idle, pure writes leave RX "
                "idle.\n\n",
                best, best_ratio * 100.0);
}

void
BM_ReadRatio(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    double best = 0.0, best_ratio = 0.0;
    for (const Row &r : rows) {
        if (r.gbps > best) {
            best = r.gbps;
            best_ratio = r.readRatio;
        }
    }
    state.counters["peak_GBps"] = best;
    state.counters["peak_read_ratio_pct"] = best_ratio * 100.0;
    state.counters["pure_read_GBps"] = rows.back().gbps;
    state.counters["pure_write_GBps"] = rows.front().gbps;
}
BENCHMARK(BM_ReadRatio);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
