/**
 * @file
 * Fig. 10 reproduction: average system (wall) power per access
 * pattern and cooling configuration, for ro / wo / rw.
 *
 * Paper shapes to reproduce:
 *  - power rises with bandwidth;
 *  - at the same bandwidth, weaker cooling costs more power (the
 *    power-temperature coupling through leakage);
 *  - the absolute range sits a few watts above the 100 W machine
 *    idle (the paper plots 104-118 W).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

constexpr RequestMix mixes[3] = {RequestMix::ReadOnly,
                                 RequestMix::WriteOnly,
                                 RequestMix::ReadModifyWrite};

struct Fig10Results
{
    std::vector<std::string> patterns;
    std::vector<std::vector<double>> gbps;           // [mix][pattern]
    std::vector<std::vector<std::vector<double>>> watts; // [mix][cfg][pat]
    std::vector<std::vector<std::vector<bool>>> fails;
};

const Fig10Results &
results()
{
    static const Fig10Results r = [] {
        Fig10Results out;
        for (const AccessPattern &p : patternAxis())
            out.patterns.push_back(p.name);
        const PowerModel power;
        for (int m = 0; m < 3; ++m) {
            std::vector<double> bw;
            std::vector<std::vector<double>> per_cfg(4);
            std::vector<std::vector<bool>> fail(4);
            for (const AccessPattern &p : patternAxis()) {
                const MeasurementResult meas = measure(p, mixes[m], 128);
                bw.push_back(meas.rawGBps);
                for (unsigned c = 0; c < 4; ++c) {
                    const PowerThermalResult pt = power.solve(
                        meas.traffic(), mixes[m], coolingConfig(c + 1));
                    per_cfg[c].push_back(pt.systemW);
                    fail[c].push_back(pt.failure);
                }
            }
            out.gbps.push_back(std::move(bw));
            out.watts.push_back(std::move(per_cfg));
            out.fails.push_back(std::move(fail));
        }
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig10Results &r = results();
    const char *titles[3] = {"(a) read-only", "(b) write-only",
                             "(c) read-modify-write"};
    std::printf("\nFig. 10: average system power per access pattern "
                "and cooling configuration (W)\n");
    for (int m = 0; m < 3; ++m) {
        std::printf("\n%s\n\n", titles[m]);
        TextTable table({"Access pattern", "BW GB/s", "Cfg4", "Cfg3",
                         "Cfg2", "Cfg1"});
        for (std::size_t i = 0; i < r.patterns.size(); ++i) {
            std::vector<std::string> row;
            row.push_back(r.patterns[i]);
            row.push_back(strfmt("%.1f", r.gbps[m][i]));
            for (int c = 3; c >= 0; --c) {
                row.push_back(r.fails[m][c][i]
                                  ? std::string("FAIL")
                                  : strfmt("%.1f", r.watts[m][c][i]));
            }
            table.addRow(std::move(row));
        }
        table.print();
    }

    // Coupling check: same workload, weaker cooling -> more watts.
    const double cfg1 = r.watts[0][0].front();
    const double cfg4 = r.watts[0][3].front();
    std::printf("\nCoupling check (ro, 16 vaults): Cfg1 %.1f W vs "
                "Cfg4 %.1f W (+%.1f W from leakage at higher "
                "temperature)\n\n",
                cfg1, cfg4, cfg4 - cfg1);
}

void
BM_Fig10_Power(benchmark::State &state)
{
    const Fig10Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["ro_cfg1_W"] = r.watts[0][0].front();
    state.counters["ro_cfg4_W"] = r.watts[0][3].front();
    state.counters["wo_cfg1_W"] = r.watts[1][0].front();
    state.counters["rw_cfg1_W"] = r.watts[2][0].front();
}
BENCHMARK(BM_Fig10_Power);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
