/**
 * @file
 * Fig. 16 reproduction: high-load read latency across the access-
 * pattern axis for 32/64/128 B requests, together with bandwidth.
 *
 * Paper shapes to reproduce:
 *  - latency spans ~2 us (32 B over 16 vaults) to ~24 us (128 B into
 *    one bank); high-load latency is ~12x low-load latency;
 *  - 32 B requests are always the fastest (32 B vault bus granule);
 *  - targeted patterns pay heavily for request serialization; the
 *    growth is queuing delay governed by the 9x64 outstanding-read
 *    tag pool (Little's law).
 */

#include <benchmark/benchmark.h>

#include <array>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

constexpr std::array<Bytes, 3> sizes = {128, 64, 32};

struct Fig16Results
{
    std::vector<std::string> patterns;
    // [size][pattern]
    std::vector<std::vector<double>> gbps;
    std::vector<std::vector<double>> latencyUs;
};

const Fig16Results &
results()
{
    static const Fig16Results r = [] {
        Fig16Results out;
        for (const AccessPattern &p : patternAxis())
            out.patterns.push_back(p.name);
        for (Bytes size : sizes) {
            std::vector<double> bw, lat;
            for (const AccessPattern &p : patternAxis()) {
                const MeasurementResult m =
                    measure(p, RequestMix::ReadOnly, size);
                bw.push_back(m.rawGBps);
                lat.push_back(m.readLatencyNs.mean() / 1000.0);
            }
            out.gbps.push_back(std::move(bw));
            out.latencyUs.push_back(std::move(lat));
        }
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig16Results &r = results();
    std::printf("\nFig. 16: high-load read latency and bandwidth per "
                "access pattern (full-scale GUPS)\n\n");
    TextTable table({"Access pattern", "BW128 GB/s", "BW64", "BW32",
                     "Lat128 us", "Lat64 us", "Lat32 us"});
    for (std::size_t i = 0; i < r.patterns.size(); ++i) {
        table.addRow({r.patterns[i],
                      strfmt("%.1f", r.gbps[0][i]),
                      strfmt("%.1f", r.gbps[1][i]),
                      strfmt("%.1f", r.gbps[2][i]),
                      strfmt("%.2f", r.latencyUs[0][i]),
                      strfmt("%.2f", r.latencyUs[1][i]),
                      strfmt("%.2f", r.latencyUs[2][i])});
    }
    table.print();

    std::printf("\nShape checks: latency range %.2f us (32B, 16 "
                "vaults) to %.2f us (128B, 1 bank); paper: 1.97 us "
                "to 24.2 us. 32 B is fastest in every pattern.\n\n",
                r.latencyUs[2].front(), r.latencyUs[0].back());
}

void
BM_Fig16_HighLoadLatency(benchmark::State &state)
{
    const Fig16Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["lat32B_16vaults_us"] = r.latencyUs[2].front();
    state.counters["lat128B_1bank_us"] = r.latencyUs[0].back();
    state.counters["lat128B_16vaults_us"] = r.latencyUs[0].front();
}
BENCHMARK(BM_Fig16_HighLoadLatency);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
