/**
 * @file
 * Fig. 14 reproduction: latency deconstruction of the HMC controller
 * transmit (TX) and receive (RX) paths on the FPGA.
 *
 * Paper numbers to reproduce: ~54 cycles / ~287 ns on the TX path for
 * a 128 B request, ~260 ns on the RX path, ~547 ns total
 * infrastructure latency, and ~125 ns spent inside the HMC at low
 * load.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Fig14Results
{
    std::vector<StageLatency> tx;
    std::vector<StageLatency> rx;
    double txTotalNs = 0.0;
    double rxTotalNs = 0.0;
    double infraNs = 0.0;
    double minRoundTripNs = 0.0; ///< Measured via a 1-request stream.
    double inHmcNs = 0.0;
};

const Fig14Results &
results()
{
    static const Fig14Results r = [] {
        Fig14Results out;
        // Build a system only to query the controller's breakdown.
        Ac510Config sys;
        Ac510Module module(sys);
        const HmcController &ctrl = module.controller();

        const Bytes req = requestBytes(Command::Write, 128); // 9 flits
        const Bytes resp = responseBytes(Command::Read, 128);
        out.tx = ctrl.txStageBreakdown(req);
        out.rx = ctrl.rxStageBreakdown(resp);
        for (const auto &s : out.tx)
            out.txTotalNs += s.ns;
        for (const auto &s : out.rx)
            out.rxTotalNs += s.ns;
        out.infraNs = ctrl.infrastructureLatencyNs(
            requestBytes(Command::Read, 128), resp);

        // Measure the actual minimum round trip with a single read.
        StreamExperimentConfig stream;
        stream.requestsPerStream = 1;
        stream.requestSize = 128;
        stream.repetitions = 128;
        const SampleStats lat = runStreamExperiment(stream);
        out.minRoundTripNs = lat.min();
        out.inHmcNs = out.minRoundTripNs - out.infraNs;
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig14Results &r = results();
    std::printf("\nFig. 14: TX-path deconstruction (128 B request, "
                "187.5 MHz FPGA)\n\n");
    TextTable tx({"Stage", "Cycles", "ns"});
    for (const auto &s : r.tx)
        tx.addRow({s.name, s.cycles ? strfmt("%u", s.cycles) : "-",
                   strfmt("%.1f", s.ns)});
    tx.addRow({"TOTAL TX", "-", strfmt("%.1f", r.txTotalNs)});
    tx.print();

    std::printf("\nRX-path deconstruction (128 B response)\n\n");
    TextTable rx({"Stage", "Cycles", "ns"});
    for (const auto &s : r.rx)
        rx.addRow({s.name, s.cycles ? strfmt("%u", s.cycles) : "-",
                   strfmt("%.1f", s.ns)});
    rx.addRow({"TOTAL RX", "-", strfmt("%.1f", r.rxTotalNs)});
    rx.print();

    std::printf("\nInfrastructure round-trip (read request + 128 B "
                "response): %.0f ns (paper: ~547 ns)\n",
                r.infraNs);
    std::printf("Measured minimum 128 B read round trip: %.0f ns; "
                "time inside the HMC: %.0f ns (paper: ~125 ns "
                "average)\n\n",
                r.minRoundTripNs, r.inHmcNs);
}

void
BM_Fig14_TxPath(benchmark::State &state)
{
    const Fig14Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["tx_total_ns"] = r.txTotalNs;
    state.counters["rx_total_ns"] = r.rxTotalNs;
    state.counters["infra_ns"] = r.infraNs;
    state.counters["in_hmc_ns"] = r.inHmcNs;
}
BENCHMARK(BM_Fig14_TxPath);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
