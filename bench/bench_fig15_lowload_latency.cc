/**
 * @file
 * Fig. 15 reproduction: low-load latency measured with stream GUPS.
 * Streams of 2..28 read requests for sizes 16/32/64/128 B; average,
 * minimum, and maximum latency per stream size.
 *
 * Paper shapes to reproduce:
 *  - latency grows with the number of requests in the stream, faster
 *    for larger packets (a 28x128 B stream is ~1.5x a 28x16 B one);
 *  - 2-request streams cost nearly the same at every size;
 *  - minimum latency is flat in the stream size; growth comes from
 *    the maximum (interference in the logic layer);
 *  - minimum latency of 128 B packets is tens of ns above 16 B.
 */

#include <benchmark/benchmark.h>

#include <array>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

constexpr std::array<Bytes, 4> sizes = {16, 32, 64, 128};

struct Point
{
    double minUs, avgUs, maxUs;
};

struct Fig15Results
{
    std::vector<unsigned> streamSizes;
    // [size][stream index]
    std::vector<std::vector<Point>> points;
};

const Fig15Results &
results()
{
    static const Fig15Results r = [] {
        Fig15Results out;
        for (unsigned n = 2; n <= 28; n += 2)
            out.streamSizes.push_back(n);
        for (Bytes size : sizes) {
            std::vector<Point> series;
            for (unsigned n : out.streamSizes) {
                StreamExperimentConfig cfg;
                cfg.requestsPerStream = n;
                cfg.requestSize = size;
                cfg.repetitions = 48;
                const SampleStats lat = runStreamExperiment(cfg);
                series.push_back({lat.min() / 1000.0,
                                  lat.mean() / 1000.0,
                                  lat.max() / 1000.0});
            }
            out.points.push_back(std::move(series));
        }
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig15Results &r = results();
    std::printf("\nFig. 15: low-load latency vs number of read "
                "requests in a stream (us)\n");
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        std::printf("\n(%c) size %llu B\n\n",
                    static_cast<char>('a' + s),
                    static_cast<unsigned long long>(sizes[s]));
        TextTable table({"# reads", "min us", "avg us", "max us"});
        for (std::size_t i = 0; i < r.streamSizes.size(); ++i) {
            const Point &p = r.points[s][i];
            table.addRow({strfmt("%u", r.streamSizes[i]),
                          strfmt("%.3f", p.minUs),
                          strfmt("%.3f", p.avgUs),
                          strfmt("%.3f", p.maxUs)});
        }
        table.print();
    }

    const Point &small28 = r.points[0].back();
    const Point &large28 = r.points[3].back();
    std::printf("\nShape checks: avg(28x128B)/avg(28x16B) = %.2f "
                "(paper ~1.5); min128B - min16B = %.0f ns (paper "
                "~56 ns); min latency flat in stream size: %.3f -> "
                "%.3f us\n\n",
                large28.avgUs / small28.avgUs,
                (r.points[3].front().minUs - r.points[0].front().minUs) *
                    1000.0,
                r.points[3].front().minUs, r.points[3].back().minUs);
}

void
BM_Fig15_LowLoadLatency(benchmark::State &state)
{
    const Fig15Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["min_16B_ns"] = r.points[0].front().minUs * 1000.0;
    state.counters["min_128B_ns"] = r.points[3].front().minUs * 1000.0;
    state.counters["avg28_128B_over_16B"] =
        r.points[3].back().avgUs / r.points[0].back().avgUs;
}
BENCHMARK(BM_Fig15_LowLoadLatency);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
