/**
 * @file
 * Fig. 6 reproduction: bandwidth under an eight-bit address mask
 * applied at various bit positions, for ro / rw / wo 128 B random
 * accesses.
 *
 * Paper shape to reproduce: bandwidth is lowest when the mask covers
 * bits 7-14 (all traffic lands in bank 0 of vault 0), recovers as the
 * mask moves to lower positions (more vaults become reachable), and
 * drops sharply from mask 2-9 to mask 3-10 for ro/rw because 3-10
 * confines traffic to a single vault (10 GB/s internal bound).
 */

#include <benchmark/benchmark.h>

#include <array>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Fig6Results
{
    std::vector<AccessPattern> sweep;
    // [pattern][mix] raw GB/s for ro, rw, wo.
    std::vector<std::array<double, 3>> gbps;
};

const Fig6Results &
results()
{
    static const Fig6Results r = [] {
        Fig6Results out;
        out.sweep = fig6MaskSweep(defaultMapper());
        // One parallel campaign over the whole mask x mix grid; the
        // runner returns results in canonical axis order (pattern
        // outermost, then mix), so row i covers points [3i, 3i+3).
        SweepAxes axes;
        axes.patterns = out.sweep;
        axes.mixes = {RequestMix::ReadOnly, RequestMix::ReadModifyWrite,
                      RequestMix::WriteOnly};
        axes.sizes = {128};
        const std::vector<MeasurementResult> points = measureSweep(axes);
        for (std::size_t i = 0; i < out.sweep.size(); ++i) {
            std::array<double, 3> row{};
            for (std::size_t m = 0; m < 3; ++m)
                row[m] = points[i * 3 + m].rawGBps;
            out.gbps.push_back(row);
        }
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig6Results &r = results();
    std::printf("\nFig. 6: eight-bit mask applied to various bit "
                "positions (128 B random, full-scale GUPS)\n");
    std::printf("Bit positions forced to zero vs raw bandwidth "
                "(GB/s)\n\n");
    TextTable table({"Mask", "Reaches", "ro", "rw", "wo"});
    for (std::size_t i = 0; i < r.sweep.size(); ++i) {
        const AccessPattern &p = r.sweep[i];
        table.addRow({p.name,
                      strfmt("%u vaults / %u banks", p.vaultSpan,
                             p.bankSpan),
                      strfmt("%.1f", r.gbps[i][0]),
                      strfmt("%.1f", r.gbps[i][1]),
                      strfmt("%.1f", r.gbps[i][2])});
    }
    table.print();
    std::printf("\n");
}

void
BM_Fig06_MaskSweep(benchmark::State &state)
{
    const Fig6Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    // Headline shape checks as counters.
    state.counters["ro_unmasked_GBps"] = r.gbps[0][0];      // 24-31
    state.counters["ro_1bank_GBps"] = r.gbps[2][0];         // 7-14
    state.counters["ro_1vault_GBps"] = r.gbps[3][0];        // 3-10
    state.counters["ro_2vaults_GBps"] = r.gbps[4][0];       // 2-9
}
BENCHMARK(BM_Fig06_MaskSweep);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
