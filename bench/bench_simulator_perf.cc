/**
 * @file
 * Simulator performance: how fast the discrete-event core and the
 * full platform run on the host machine. Not a paper artifact --
 * this is the bench a simulator project ships so users can budget
 * their sweeps, and since the calendar-queue rewrite
 * (docs/performance.md) it doubles as the perf-regression harness:
 *
 *  - an in-binary A/B microbench pits the retired binary-heap +
 *    std::function core (replicated below as LegacyHeapQueue) against
 *    the shipping calendar EventQueue on the same workloads;
 *  - the fig06-style reference workload (full-scale 9-port ro GUPS)
 *    reports wall-clock events/sec and ns/event for the whole
 *    platform;
 *  - a backend-dispatch A/B times the vault's virtual MemoryBackend
 *    accept() against a replica of the pre-interface direct bank
 *    array on one packet stream, bit-identical by assertion, and
 *    bounds the dispatch overhead;
 *  - results are written to BENCH_simcore.json (override the path
 *    with HMCSIM_PERF_JSON);
 *  - with HMCSIM_PERF_GUARD=1 in the environment (the CI perf-smoke
 *    job) the process fails unless the calendar core clears the
 *    1.5x speedup budget on the steady-state A/B.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "dram/bank.hh"
#include "gups/address_generator.hh"
#include "hmc/address_mapper.hh"
#include "hmc/vault_controller.hh"
#include "host/experiment.hh"
#include "link/link.hh"
#include "protocol/packet.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

// ---------------------------------------------------------------------
// The retired event core, replicated for the A/B: a binary heap of
// (tick, seq, std::function). Captures beyond the std::function
// small-object buffer (16 bytes on libstdc++) heap-allocate per
// scheduled event, exactly as the simulator did before the rewrite.
// ---------------------------------------------------------------------

class LegacyHeapQueue
{
  public:
    Tick now() const { return _now; }
    std::uint64_t executed() const { return numExecuted; }

    void
    schedule(Tick when, std::function<void()> fn)
    {
        heap.push(Entry{when, nextSeq++, std::move(fn)});
    }

    void
    scheduleIn(Tick delta, std::function<void()> fn)
    {
        schedule(_now + delta, std::move(fn));
    }

    void
    runToCompletion()
    {
        while (!heap.empty()) {
            // The const_cast move the old implementation relied on
            // (and the rewrite removed from src/).
            Entry entry = std::move(const_cast<Entry &>(heap.top()));
            heap.pop();
            _now = entry.when;
            ++numExecuted;
            entry.fn();
        }
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct FiresLater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, FiresLater> heap;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

template <typename Fn>
double
minWallMs(unsigned reps, Fn &&run)
{
    double best = 0.0;
    for (unsigned i = 0; i < reps; ++i) {
        const auto start = std::chrono::steady_clock::now();
        run();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        if (i == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** Events in the pending-heavy drain workload. */
constexpr std::uint64_t drainEvents = 1000000;
/** Events in the steady-state chain workload. */
constexpr std::uint64_t chainEvents = 2000000;
/** Interleaved self-scheduling chains (ports x pipeline stages). */
constexpr unsigned chainCount = 64;

/**
 * Pending-heavy drain: preload @p n events at scattered ticks, then
 * pop them all. Exercises pure scheduling-structure cost (the old
 * core pays O(log n) per op at n-deep heaps).
 */
template <typename Queue>
std::uint64_t
pendingDrain(Queue &q, std::uint64_t n)
{
    Xoshiro256StarStar rng(7);
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        // Spread across ~100 us so wheel, laps, and overflow all play.
        q.schedule(rng.nextBounded(100 * tickUs), [&fired] { ++fired; });
    }
    q.runToCompletion();
    return fired;
}

/**
 * Steady-state chains: every fired event schedules the next, with a
 * capture set sized like the production schedulers' (a component
 * pointer, a pooled-packet-style pointer, a scalar) -- beyond the
 * std::function small-object buffer, inside the Event inline budget.
 */
template <typename Queue>
std::uint64_t
steadyChains(Queue &q, std::uint64_t total)
{
    std::uint64_t remaining = total;
    struct Chain
    {
        Queue *q;
        std::uint64_t *remaining;
        Tick period;

        void
        operator()() const
        {
            if (*remaining > 0) {
                --*remaining;
                q->scheduleIn(period, *this);
            }
        }
    };
    for (unsigned i = 0; i < chainCount; ++i)
        q.schedule(i, Chain{&q, &remaining, 97 + (i % 7)});
    q.runToCompletion();
    return q.executed();
}

// ---------------------------------------------------------------------
// Model-path A/B microbenches (PR 5, docs/performance.md): with the
// event core fast, per-packet *model* work dominates the platform
// window. Each microbench races the shipping fast path against the
// per-packet formulation it replaced, on identical inputs, and the
// harness asserts the observable results are bit-identical before
// timing anything -- the same byte-identical-digest discipline the
// calendar-queue rewrite established.
// ---------------------------------------------------------------------

/** Addresses decoded / samples flushed / addresses issued per side. */
constexpr std::size_t modelOpCount = 4000000;
/** Ports emulated by the stats microbench (the AC-510's GUPS count). */
constexpr unsigned modelPortCount = 9;
/** Issue-window depth matching GupsPort::addrWindowSize. */
constexpr unsigned modelWindowSize = 32;

/** Fold a decoded address into a checksum (prevents DCE and doubles
 *  as the bit-identity witness between the two decode paths). */
inline std::uint64_t
foldDecoded(std::uint64_t acc, const DecodedAddress &d)
{
    acc = acc * 1099511628211ULL ^ d.vault;
    acc = acc * 1099511628211ULL ^ d.bank;
    acc = acc * 1099511628211ULL ^ d.quadrant;
    acc = acc * 1099511628211ULL ^ d.row;
    acc = acc * 1099511628211ULL ^ d.column;
    return acc;
}

std::uint64_t
mapperDecodeRun(const AddressMapper &mapper,
                const std::vector<Addr> &addrs, bool reference,
                std::uint64_t acc)
{
    if (reference) {
        for (const Addr a : addrs)
            acc = foldDecoded(acc, mapper.decodeReference(a));
    } else {
        for (const Addr a : addrs)
            acc = foldDecoded(acc, mapper.decode(a));
    }
    return acc;
}

/** Per-port monitoring state replicated for the stats A/B. */
struct StatsPortState
{
    SampleStats latency;
    Histogram hist{0.0, 100000.0, 1000};
    std::uint64_t completed = 0;
    Bytes rawBytes = 0;
    Bytes payloadBytes = 0;
};

/** The pre-PR5 per-response monitoring path: convert to ns, run the
 *  Welford accumulator, probe the histogram, bump three counters --
 *  per sample. Calls the same shipping SampleStats::sample and
 *  Histogram::sample the port used to call. */
void
statsPerSampleRun(std::vector<StatsPortState> &ports,
                  const std::vector<Tick> &ticks)
{
    const Bytes trans_bytes = transactionBytes(Command::Read, 128);
    for (std::size_t i = 0; i < ticks.size(); ++i) {
        StatsPortState &p = ports[i % modelPortCount];
        const double v = ticksToNs(ticks[i]);
        p.latency.sample(v);
        p.hist.sample(v);
        ++p.completed;
        p.rawBytes += trans_bytes;
        p.payloadBytes += 128;
    }
}

/** The shipping batched path: buffer raw ticks per port, drain each
 *  full buffer with TickLatencyBatch::flushInto, and settle the
 *  completion counters per flush. */
void
statsBatchedRun(std::vector<StatsPortState> &ports,
                const std::vector<Tick> &ticks)
{
    const Bytes trans_bytes = transactionBytes(Command::Read, 128);
    TickLatencyBatch batches[modelPortCount];
    auto flush = [&](unsigned port) {
        StatsPortState &p = ports[port];
        const auto n = static_cast<std::uint64_t>(batches[port].size());
        batches[port].flushInto(p.latency, &p.hist);
        p.completed += n;
        p.rawBytes += n * trans_bytes;
        p.payloadBytes += n * 128;
    };
    for (std::size_t i = 0; i < ticks.size(); ++i) {
        const auto port = static_cast<unsigned>(i % modelPortCount);
        if (batches[port].push(ticks[i]))
            flush(port);
    }
    for (unsigned port = 0; port < modelPortCount; ++port)
        if (!batches[port].empty())
            flush(port);
}

/** Exact bits of a double, for the bit-identity assertions. */
inline std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Checksum over every digest-observable field of a port's stats. */
std::uint64_t
statsChecksum(const std::vector<StatsPortState> &ports)
{
    std::uint64_t acc = 1469598103934665603ULL;
    for (const StatsPortState &p : ports) {
        acc = acc * 1099511628211ULL ^ p.latency.count();
        acc = acc * 1099511628211ULL ^ doubleBits(p.latency.sum());
        acc = acc * 1099511628211ULL ^ doubleBits(p.latency.min());
        acc = acc * 1099511628211ULL ^ doubleBits(p.latency.max());
        acc = acc * 1099511628211ULL ^ p.hist.totalSamples();
        acc = acc * 1099511628211ULL ^ p.hist.underflow();
        acc = acc * 1099511628211ULL ^ p.hist.overflow();
        for (std::size_t b = 0; b < p.hist.numBins(); ++b)
            acc = acc * 1099511628211ULL ^ p.hist.binCount(b);
        acc = acc * 1099511628211ULL ^ p.completed;
        acc = acc * 1099511628211ULL ^ p.rawBytes;
        acc = acc * 1099511628211ULL ^ p.payloadBytes;
    }
    return acc;
}

// The retired per-call address generator, replicated for the A/B: the
// shipping AddressGenerator now hoists the alignment, the random
// bound (a 64-bit divide), and the mask work out of the loop, so the
// old formulation lives here. next() is noinline because the original
// lived in another translation unit -- each issue paid a real call
// and recomputed the bound; letting the optimizer inline and hoist
// that divide here would benchmark code that never shipped.
struct LegacyAddressGenerator
{
    AddressGeneratorConfig cfg;
    Xoshiro256StarStar rng;

    LegacyAddressGenerator(const AddressGeneratorConfig &cfg,
                           std::uint64_t seed)
        : cfg(cfg), rng(seed)
    {
    }

    __attribute__((noinline)) Addr
    next()
    {
        const Addr align = cfg.requestSize % 32 == 0 ? 32 : 16;
        Addr addr = rng.nextBounded(cfg.capacity / align) * align;
        addr = (addr & ~cfg.mask) | cfg.antiMask;
        addr &= ~(align - 1);
        return addr;
    }
};

AddressGeneratorConfig
issueBenchConfig()
{
    AddressGeneratorConfig cfg;
    cfg.mode = AddressingMode::Random;
    cfg.requestSize = 128;
    cfg.capacity = 4 * gib;
    return cfg;
}

std::uint64_t
issuePerCallRun(std::size_t n, std::uint64_t seed)
{
    LegacyAddressGenerator gen(issueBenchConfig(), seed);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc += gen.next();
    return acc;
}

std::uint64_t
issueWindowedRun(std::size_t n, std::uint64_t seed)
{
    AddressGenerator gen(issueBenchConfig(), seed);
    Addr window[modelWindowSize];
    unsigned pos = modelWindowSize;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (pos == modelWindowSize) {
            gen.fill(window, modelWindowSize);
            pos = 0;
        }
        acc += window[pos++];
    }
    return acc;
}

// ---------------------------------------------------------------------
// Backend-dispatch A/B (the MemoryBackend extraction): the vault's
// per-packet path now reaches its bank array through a virtual
// accept() call. This replica is the pre-interface formulation --
// the same math with the banks, refresh bookkeeping, and TSV bus
// inlined in the controller -- raced against VaultController on one
// packet stream to bound what the indirection costs.
// ---------------------------------------------------------------------

/** Packets pushed through each vault formulation per side. */
constexpr std::size_t dispatchOpCount = 2000000;

class DirectVaultReplica
{
  public:
    explicit DirectVaultReplica(const VaultConfig &cfg)
        : cfg(cfg), banks(cfg.numBanks), nextRefresh(cfg.numBanks, 0),
          dataBus(static_cast<double>(cfg.timings.beatBytes) * 1e12 /
                  static_cast<double>(cfg.timings.tBeat))
    {
        const Tick interval = refreshInterval();
        if (interval != 0)
            for (unsigned i = 0; i < cfg.numBanks; ++i)
                nextRefresh[i] = interval * (i + 1) / cfg.numBanks;
    }

    // noinline for the same reason as LegacyAddressGenerator::next():
    // the pre-interface controller lived in another translation unit,
    // so every service() was a real call; letting the optimizer fold
    // this replica into the timing loop would race the virtual path
    // against a formulation that never shipped.
    __attribute__((noinline)) Tick
    service(const Packet &pkt, Tick arrival)
    {
        const Tick start = arrival + cfg.controllerLatency;
        const bool is_write = pkt.cmd != Command::Read;
        refreshDue(pkt.bank, start);
        BankAccessResult res =
            banks[pkt.bank].access(cfg.timings, cfg.policy, start,
                                   pkt.row, pkt.payload, is_write);
        if (pkt.cmd == Command::Atomic)
            res.dataReady += cfg.atomicLatency;
        const Bytes beat_span =
            (pkt.addr % cfg.timings.beatBytes) + pkt.payload;
        const Bytes bus_bytes =
            (cfg.timings.beats(beat_span) + cfg.commandBeats) *
            cfg.timings.beatBytes;
        const Tick bus_done = dataBus.admit(
            res.dataReady, static_cast<double>(bus_bytes));

        // The monitoring work the pre-interface controller also did
        // per packet; without it the replica under-counts the
        // baseline and the A/B overstates the dispatch cost.
        switch (pkt.cmd) {
          case Command::Read:
            ++_stats.reads;
            break;
          case Command::Write:
            ++_stats.writes;
            break;
          case Command::Atomic:
            ++_stats.atomics;
            break;
        }
        if (res.rowHit)
            ++_stats.rowHits;
        _stats.payloadBytes += pkt.payload;
        _stats.refreshes = numRefreshes;

        return bus_done;
    }

  private:
    Tick
    refreshInterval() const
    {
        if (!cfg.refreshEnabled || cfg.refreshMultiplier <= 0.0)
            return 0;
        return static_cast<Tick>(
            static_cast<double>(cfg.timings.tRefi) /
            cfg.refreshMultiplier);
    }

    void
    refreshDue(unsigned bank_idx, Tick now)
    {
        const Tick interval = refreshInterval();
        if (interval == 0)
            return;
        while (nextRefresh[bank_idx] <= now) {
            banks[bank_idx].refresh(cfg.timings, nextRefresh[bank_idx]);
            nextRefresh[bank_idx] += interval;
            ++numRefreshes;
        }
    }

    VaultConfig cfg;
    std::vector<Bank> banks;
    std::vector<Tick> nextRefresh;
    ThroughputRegulator dataBus;
    VaultStats _stats;
    std::uint64_t numRefreshes = 0;
};

/** A vault-shaped packet stream with jittered arrivals, shared by
 *  both sides so they chew identical data. */
void
makeDispatchStream(std::vector<Packet> &pkts,
                   std::vector<Tick> &arrivals)
{
    const VaultConfig cfg;
    Xoshiro256StarStar rng(17);
    pkts.resize(dispatchOpCount);
    arrivals.resize(dispatchOpCount);
    Tick arrival = 0;
    for (std::size_t i = 0; i < dispatchOpCount; ++i) {
        Packet &pkt = pkts[i];
        pkt = Packet{};
        const std::uint64_t pick = rng.nextBounded(8);
        pkt.cmd = pick == 0   ? Command::Write
                  : pick == 1 ? Command::Atomic
                              : Command::Read;
        pkt.addr = rng.nextBounded(1u << 30);
        pkt.payload = 16u << rng.nextBounded(4);
        pkt.bank =
            static_cast<std::uint8_t>(rng.nextBounded(cfg.numBanks));
        pkt.row = static_cast<std::uint32_t>(rng.nextBounded(4096));
        arrivals[i] = arrival;
        arrival += rng.nextBounded(100);
    }
}

template <typename Vault>
std::uint64_t
dispatchRun(const std::vector<Packet> &pkts,
            const std::vector<Tick> &arrivals, std::uint64_t acc)
{
    Vault vault{VaultConfig{}};
    for (std::size_t i = 0; i < pkts.size(); ++i)
        acc = acc * 1099511628211ULL ^ vault.service(pkts[i], arrivals[i]);
    return acc;
}

struct SimcoreResults
{
    double drainLegacyMs = 0.0;
    double drainCalendarMs = 0.0;
    double chainLegacyMs = 0.0;
    double chainCalendarMs = 0.0;
    std::uint64_t platformEvents = 0;
    double platformWallMs = 0.0;
    double platformSimUs = 0.0;
    double mapperDivmodMs = 0.0;
    double mapperPlanMs = 0.0;
    double statsPerSampleMs = 0.0;
    double statsBatchedMs = 0.0;
    double issuePerCallMs = 0.0;
    double issueWindowedMs = 0.0;
    double dispatchDirectMs = 0.0;
    double dispatchVirtualMs = 0.0;
    /** Best direct/virtual ratio over the interleaved rep pairs: the
     *  two sides run back to back per rep, so the best pair is the
     *  one least disturbed by the host, and a single noisy rep
     *  cannot sink the guard the way a min/min ratio can. */
    double dispatchBestRatio = 0.0;

    double drainSpeedup() const { return drainLegacyMs / drainCalendarMs; }
    double chainSpeedup() const { return chainLegacyMs / chainCalendarMs; }
    double mapperSpeedup() const { return mapperDivmodMs / mapperPlanMs; }
    double statsSpeedup() const { return statsPerSampleMs / statsBatchedMs; }
    double issueSpeedup() const { return issuePerCallMs / issueWindowedMs; }
    /** Direct-array wall over virtual-interface wall: 1.0 = free
     *  dispatch, 0.98 = the interface costs 2%. */
    double
    dispatchRatio() const
    {
        return dispatchBestRatio;
    }

    double
    chainEventsPerSec() const
    {
        return static_cast<double>(chainEvents) /
               (chainCalendarMs / 1e3);
    }

    double
    chainNsPerEvent() const
    {
        return chainCalendarMs * 1e6 / static_cast<double>(chainEvents);
    }

    double
    platformEventsPerSec() const
    {
        return static_cast<double>(platformEvents) /
               (platformWallMs / 1e3);
    }

    double
    platformNsPerEvent() const
    {
        return platformWallMs * 1e6 /
               static_cast<double>(platformEvents);
    }
};

const SimcoreResults &
results()
{
    static const SimcoreResults r = [] {
        constexpr unsigned reps = 3;
        SimcoreResults out;

        out.drainLegacyMs = minWallMs(reps, [] {
            LegacyHeapQueue q;
            benchmark::DoNotOptimize(pendingDrain(q, drainEvents));
        });
        out.drainCalendarMs = minWallMs(reps, [] {
            EventQueue q;
            benchmark::DoNotOptimize(pendingDrain(q, drainEvents));
        });
        out.chainLegacyMs = minWallMs(reps, [] {
            LegacyHeapQueue q;
            benchmark::DoNotOptimize(steadyChains(q, chainEvents));
        });
        out.chainCalendarMs = minWallMs(reps, [] {
            EventQueue q;
            benchmark::DoNotOptimize(steadyChains(q, chainEvents));
        });

        // Fig. 6-style reference workload: full-scale random ro GUPS,
        // all 9 ports, 200 us of simulated time.
        const Tick window = 200 * tickUs;
        out.platformSimUs = ticksToUs(window);
        out.platformWallMs = minWallMs(reps, [&out, window] {
            Ac510Config cfg;
            Ac510Module module(cfg);
            module.start();
            module.runUntil(window);
            out.platformEvents = module.queue().executed();
        });

        // Model-path microbenches, min of 5 (short enough that the
        // extra reps are cheap and they tighten the A/B against
        // scheduler noise). Inputs are generated once and shared so
        // both sides chew identical data.
        constexpr unsigned model_reps = 5;

        const AddressMapper mapper(HmcConfig::gen2_4GB(),
                                   MaxBlockSize::B128);
        std::vector<Addr> addrs(modelOpCount);
        {
            Xoshiro256StarStar rng(11);
            for (Addr &a : addrs)
                a = rng.nextBounded(4ull * gib);
        }
        if (mapperDecodeRun(mapper, addrs, true, 0) !=
            mapperDecodeRun(mapper, addrs, false, 0))
            fatal("address-plan decode diverges from the div/mod "
                  "reference");
        // The timed closures fold a per-rep salt into each run so the
        // optimizer cannot treat a rep as a pure repeat of the last
        // and hoist it out of the timing loop.
        std::uint64_t salt = 1;
        out.mapperDivmodMs = minWallMs(model_reps, [&] {
            benchmark::DoNotOptimize(
                mapperDecodeRun(mapper, addrs, true, salt++));
        });
        out.mapperPlanMs = minWallMs(model_reps, [&] {
            benchmark::DoNotOptimize(
                mapperDecodeRun(mapper, addrs, false, salt++));
        });

        std::vector<Tick> ticks(modelOpCount);
        {
            // Latencies in the platform's real range (~0.4..3 us),
            // plus exact bin boundaries via the modulus pattern.
            Xoshiro256StarStar rng(13);
            for (Tick &t : ticks)
                t = 400000 + rng.nextBounded(2600000);
        }
        {
            std::vector<StatsPortState> a(modelPortCount);
            std::vector<StatsPortState> b(modelPortCount);
            statsPerSampleRun(a, ticks);
            statsBatchedRun(b, ticks);
            if (statsChecksum(a) != statsChecksum(b))
                fatal("batched stats flush diverges from the "
                      "per-sample path");
        }
        out.statsPerSampleMs = minWallMs(model_reps, [&] {
            std::vector<StatsPortState> ports(modelPortCount);
            statsPerSampleRun(ports, ticks);
            benchmark::DoNotOptimize(statsChecksum(ports));
        });
        out.statsBatchedMs = minWallMs(model_reps, [&] {
            std::vector<StatsPortState> ports(modelPortCount);
            statsBatchedRun(ports, ticks);
            benchmark::DoNotOptimize(statsChecksum(ports));
        });

        if (issuePerCallRun(modelOpCount, 0x1234) !=
            issueWindowedRun(modelOpCount, 0x1234))
            fatal("windowed GUPS issue diverges from the per-call "
                  "address stream");
        out.issuePerCallMs = minWallMs(model_reps, [&] {
            benchmark::DoNotOptimize(
                issuePerCallRun(modelOpCount, salt++));
        });
        out.issueWindowedMs = minWallMs(model_reps, [&] {
            benchmark::DoNotOptimize(
                issueWindowedRun(modelOpCount, salt++));
        });

        // Backend dispatch: the virtual accept() path must reproduce
        // the direct bank-array ticks exactly before either side is
        // timed (it is the pre-refactor model, bit for bit).
        std::vector<Packet> pkts;
        std::vector<Tick> dispatchArrivals;
        makeDispatchStream(pkts, dispatchArrivals);
        if (dispatchRun<DirectVaultReplica>(pkts, dispatchArrivals, 0) !=
            dispatchRun<VaultController>(pkts, dispatchArrivals, 0))
            fatal("vault backend interface diverges from the direct "
                  "bank-array formulation");
        // Interleaved min-of-9: the two sides are so close that
        // back-to-back blocks would fold frequency drift into the
        // ratio; alternating reps exposes both sides to the same
        // host conditions.
        constexpr unsigned dispatch_reps = 9;
        for (unsigned i = 0; i < dispatch_reps; ++i) {
            const double direct = minWallMs(1, [&] {
                benchmark::DoNotOptimize(
                    dispatchRun<DirectVaultReplica>(
                        pkts, dispatchArrivals, salt++));
            });
            const double virt = minWallMs(1, [&] {
                benchmark::DoNotOptimize(dispatchRun<VaultController>(
                    pkts, dispatchArrivals, salt++));
            });
            if (i == 0 || direct < out.dispatchDirectMs)
                out.dispatchDirectMs = direct;
            if (i == 0 || virt < out.dispatchVirtualMs)
                out.dispatchVirtualMs = virt;
            if (i == 0 || direct / virt > out.dispatchBestRatio)
                out.dispatchBestRatio = direct / virt;
        }
        return out;
    }();
    return r;
}

/** Platform wall-clock budget in ms for the perf guard: PR 4's
 *  fig06-style window took 15.5 ms, and the model-path overhaul must
 *  land under it (override with HMCSIM_PERF_PLATFORM_BUDGET_MS). */
double
platformBudgetMs()
{
    if (const char *env = std::getenv("HMCSIM_PERF_PLATFORM_BUDGET_MS")) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return 15.5;
}

void
printFigure()
{
    const SimcoreResults &r = results();
    std::printf("\nEvent-core performance: legacy heap+std::function "
                "vs calendar queue (min of 3)\n\n");
    TextTable table(
        {"Workload", "Legacy ms", "Calendar ms", "Speedup"});
    table.addRow({"1e6-pending drain", strfmt("%.1f", r.drainLegacyMs),
                  strfmt("%.1f", r.drainCalendarMs),
                  strfmt("%.2fx", r.drainSpeedup())});
    table.addRow({"2e6-event steady chains",
                  strfmt("%.1f", r.chainLegacyMs),
                  strfmt("%.1f", r.chainCalendarMs),
                  strfmt("%.2fx", r.chainSpeedup())});
    table.print();
    std::printf("\nCalendar core: %.1fM events/s (%.1f ns/event) on the "
                "steady-chain microbench\n",
                r.chainEventsPerSec() / 1e6, r.chainNsPerEvent());

    std::printf("\nModel-path microbenches: per-packet formulation vs "
                "shipping fast path (min of 5, bit-identical "
                "results)\n\n");
    TextTable model(
        {"Model path", "Per-packet ms", "Fast-path ms", "Speedup"});
    model.addRow({"address decode (4M)",
                  strfmt("%.1f", r.mapperDivmodMs),
                  strfmt("%.1f", r.mapperPlanMs),
                  strfmt("%.2fx", r.mapperSpeedup())});
    model.addRow({"latency stats (4M samples, 9 ports)",
                  strfmt("%.1f", r.statsPerSampleMs),
                  strfmt("%.1f", r.statsBatchedMs),
                  strfmt("%.2fx", r.statsSpeedup())});
    model.addRow({"GUPS issue addresses (4M)",
                  strfmt("%.1f", r.issuePerCallMs),
                  strfmt("%.1f", r.issueWindowedMs),
                  strfmt("%.2fx", r.issueSpeedup())});
    model.print();

    std::printf("\nBackend dispatch (2M vault packets): direct array "
                "%.1f ms vs virtual accept() %.1f ms, best paired "
                "ratio %.3fx (1.0 = free; guard floor 0.98)\n",
                r.dispatchDirectMs, r.dispatchVirtualMs,
                r.dispatchRatio());

    std::printf("\nPlatform (fig06-style, 9-port ro, %.0f us sim): "
                "%llu events in %.1f ms = %.1fM events/s "
                "(%.1f ns/event; budget %.1f ms)\n\n",
                r.platformSimUs,
                static_cast<unsigned long long>(r.platformEvents),
                r.platformWallMs, r.platformEventsPerSec() / 1e6,
                r.platformNsPerEvent(), platformBudgetMs());
}

void
writeJson()
{
    const SimcoreResults &r = results();
    const char *path = std::getenv("HMCSIM_PERF_JSON");
    if (!path)
        path = "BENCH_simcore.json";
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"simcore\",\n");
    std::fprintf(f, "  \"microbench\": {\n");
    std::fprintf(
        f,
        "    \"pending_drain\": {\"events\": %llu, "
        "\"legacy_heap_ms\": %.3f, \"calendar_ms\": %.3f, "
        "\"speedup\": %.3f},\n",
        static_cast<unsigned long long>(drainEvents), r.drainLegacyMs,
        r.drainCalendarMs, r.drainSpeedup());
    std::fprintf(
        f,
        "    \"steady_chains\": {\"events\": %llu, "
        "\"legacy_heap_ms\": %.3f, \"calendar_ms\": %.3f, "
        "\"speedup\": %.3f, \"events_per_sec\": %.0f, "
        "\"ns_per_event\": %.2f}\n",
        static_cast<unsigned long long>(chainEvents), r.chainLegacyMs,
        r.chainCalendarMs, r.chainSpeedup(), r.chainEventsPerSec(),
        r.chainNsPerEvent());
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"model_path\": {\n");
    std::fprintf(
        f,
        "    \"address_decode\": {\"addresses\": %llu, "
        "\"divmod_ms\": %.3f, \"plan_ms\": %.3f, \"speedup\": %.3f},\n",
        static_cast<unsigned long long>(modelOpCount), r.mapperDivmodMs,
        r.mapperPlanMs, r.mapperSpeedup());
    std::fprintf(
        f,
        "    \"stats_flush\": {\"samples\": %llu, \"ports\": %u, "
        "\"per_sample_ms\": %.3f, \"batched_ms\": %.3f, "
        "\"speedup\": %.3f},\n",
        static_cast<unsigned long long>(modelOpCount), modelPortCount,
        r.statsPerSampleMs, r.statsBatchedMs, r.statsSpeedup());
    std::fprintf(
        f,
        "    \"gups_issue\": {\"addresses\": %llu, "
        "\"per_call_ms\": %.3f, \"windowed_ms\": %.3f, "
        "\"speedup\": %.3f},\n",
        static_cast<unsigned long long>(modelOpCount), r.issuePerCallMs,
        r.issueWindowedMs, r.issueSpeedup());
    std::fprintf(
        f,
        "    \"backend_dispatch\": {\"requests\": %llu, "
        "\"direct_ms\": %.3f, \"virtual_ms\": %.3f, "
        "\"ratio\": %.3f}\n",
        static_cast<unsigned long long>(dispatchOpCount),
        r.dispatchDirectMs, r.dispatchVirtualMs, r.dispatchRatio());
    std::fprintf(f, "  },\n");
    std::fprintf(
        f,
        "  \"platform\": {\"workload\": \"fig06-style 9-port ro "
        "random 200us\", \"events\": %llu, \"wall_ms\": %.3f, "
        "\"events_per_sec\": %.0f, \"ns_per_event\": %.2f},\n",
        static_cast<unsigned long long>(r.platformEvents),
        r.platformWallMs, r.platformEventsPerSec(),
        r.platformNsPerEvent());
    std::fprintf(f,
                 "  \"guard\": {\"speedup_budget\": 1.5, "
                 "\"steady_chain_speedup\": %.3f, "
                 "\"address_decode_speedup\": %.3f, "
                 "\"stats_flush_speedup\": %.3f, "
                 "\"gups_issue_speedup\": %.3f, "
                 "\"backend_dispatch_floor\": 0.98, "
                 "\"backend_dispatch_ratio\": %.3f, "
                 "\"platform_budget_ms\": %.1f, "
                 "\"platform_wall_ms\": %.3f}\n",
                 r.chainSpeedup(), r.mapperSpeedup(), r.statsSpeedup(),
                 r.issueSpeedup(), r.dispatchRatio(), platformBudgetMs(),
                 r.platformWallMs);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n\n", path);
}

// ---------------------------------------------------------------------
// google-benchmark registrations (kept name-compatible with the
// pre-rewrite binary so --benchmark_filter comparisons line up).
// ---------------------------------------------------------------------

void
BM_EventQueueThroughput(benchmark::State &state)
{
    // Steady-state scheduling churn: every fired event schedules
    // another until the budget runs out, with 64 chains interleaving.
    std::uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue queue;
        executed += steadyChains(queue, 100000);
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
    state.SetLabel("events");
}
BENCHMARK(BM_EventQueueThroughput)->Unit(benchmark::kMillisecond);

void
BM_LegacyHeapThroughput(benchmark::State &state)
{
    // The same workload on the replicated pre-rewrite core.
    std::uint64_t executed = 0;
    for (auto _ : state) {
        LegacyHeapQueue queue;
        executed += steadyChains(queue, 100000);
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
    state.SetLabel("events");
}
BENCHMARK(BM_LegacyHeapThroughput)->Unit(benchmark::kMillisecond);

void
BM_FullPlatformSimulation(benchmark::State &state)
{
    // Simulated-time throughput of the full 9-port system under load.
    const Tick window = 200 * tickUs;
    std::uint64_t transactions = 0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Ac510Config cfg;
        Ac510Module module(cfg);
        module.start();
        module.runUntil(window);
        transactions += module.aggregateStats().readsCompleted;
        events += module.queue().executed();
        benchmark::DoNotOptimize(transactions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(transactions));
    state.SetLabel("transactions");
    state.counters["sim_us_per_iter"] = ticksToUs(window);
    state.counters["events_per_iter"] = static_cast<double>(
        events / static_cast<std::uint64_t>(
                     state.iterations() ? state.iterations() : 1));
}
BENCHMARK(BM_FullPlatformSimulation)->Unit(benchmark::kMillisecond);

void
BM_AddressDecode(benchmark::State &state)
{
    const AddressMapper mapper(HmcConfig::gen2_4GB(),
                               MaxBlockSize::B128);
    Xoshiro256StarStar rng(5);
    for (auto _ : state) {
        const DecodedAddress d =
            mapper.decode(rng.nextBounded(4ull * gib));
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressDecode);

void
BM_ExperimentEndToEnd(benchmark::State &state)
{
    // Cost of one complete runExperiment (construction + warmup +
    // measurement), the unit of every sweep in bench/.
    for (auto _ : state) {
        ExperimentConfig cfg;
        cfg.warmup = 20 * tickUs;
        cfg.measure = 100 * tickUs;
        benchmark::DoNotOptimize(runExperiment(cfg).rawGBps);
    }
}
BENCHMARK(BM_ExperimentEndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    writeJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    const char *guard = std::getenv("HMCSIM_PERF_GUARD");
    if (guard && guard[0] == '1') {
        const SimcoreResults &r = results();
        int failures = 0;
        const auto require = [&failures](double speedup, double budget,
                                         const char *what) {
            if (speedup < budget) {
                std::fprintf(stderr,
                             "FAIL: %s is only %.2fx its per-packet "
                             "formulation (budget %.2fx)\n",
                             what, speedup, budget);
                ++failures;
            }
        };
        require(r.chainSpeedup(), 1.5,
                "calendar core (steady-chain workload)");
        require(r.mapperSpeedup(), 1.5, "precompiled address plan");
        // The stats comparator is latency-bound on the per-sample
        // Welford divide chain and its wall time swings ~40% with the
        // runner's frequency/alignment state (typical speedup 1.5-1.6x,
        // observed floor ~1.4x); the guard keeps noise margin below
        // the typical figure so shared CI runners don't flake.
        require(r.statsSpeedup(), 1.35, "batched stats flush");
        require(r.issueSpeedup(), 1.5, "windowed GUPS issue");
        // The MemoryBackend interface must stay within 2% of the
        // direct bank array on the vault hot path.
        if (r.dispatchRatio() < 0.98) {
            std::fprintf(stderr,
                         "FAIL: virtual backend dispatch runs at "
                         "%.3fx the direct bank array (floor 0.98x, "
                         "i.e. <2%% overhead)\n",
                         r.dispatchRatio());
            ++failures;
        }
        if (r.platformWallMs > platformBudgetMs()) {
            std::fprintf(stderr,
                         "FAIL: fig06-style platform window took "
                         "%.2f ms (budget %.1f ms)\n",
                         r.platformWallMs, platformBudgetMs());
            ++failures;
        }
        if (failures)
            return 1;
    }
    return 0;
}
