/**
 * @file
 * Simulator performance: how fast the discrete-event core and the
 * full platform run on the host machine. Not a paper artifact --
 * this is the bench a simulator project ships so users can budget
 * their sweeps, and since the calendar-queue rewrite
 * (docs/performance.md) it doubles as the perf-regression harness:
 *
 *  - an in-binary A/B microbench pits the retired binary-heap +
 *    std::function core (replicated below as LegacyHeapQueue) against
 *    the shipping calendar EventQueue on the same workloads;
 *  - the fig06-style reference workload (full-scale 9-port ro GUPS)
 *    reports wall-clock events/sec and ns/event for the whole
 *    platform;
 *  - results are written to BENCH_simcore.json (override the path
 *    with HMCSIM_PERF_JSON);
 *  - with HMCSIM_PERF_GUARD=1 in the environment (the CI perf-smoke
 *    job) the process fails unless the calendar core clears the
 *    1.5x speedup budget on the steady-state A/B.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "host/experiment.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

// ---------------------------------------------------------------------
// The retired event core, replicated for the A/B: a binary heap of
// (tick, seq, std::function). Captures beyond the std::function
// small-object buffer (16 bytes on libstdc++) heap-allocate per
// scheduled event, exactly as the simulator did before the rewrite.
// ---------------------------------------------------------------------

class LegacyHeapQueue
{
  public:
    Tick now() const { return _now; }
    std::uint64_t executed() const { return numExecuted; }

    void
    schedule(Tick when, std::function<void()> fn)
    {
        heap.push(Entry{when, nextSeq++, std::move(fn)});
    }

    void
    scheduleIn(Tick delta, std::function<void()> fn)
    {
        schedule(_now + delta, std::move(fn));
    }

    void
    runToCompletion()
    {
        while (!heap.empty()) {
            // The const_cast move the old implementation relied on
            // (and the rewrite removed from src/).
            Entry entry = std::move(const_cast<Entry &>(heap.top()));
            heap.pop();
            _now = entry.when;
            ++numExecuted;
            entry.fn();
        }
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct FiresLater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, FiresLater> heap;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

template <typename Fn>
double
minWallMs(unsigned reps, Fn &&run)
{
    double best = 0.0;
    for (unsigned i = 0; i < reps; ++i) {
        const auto start = std::chrono::steady_clock::now();
        run();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        if (i == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** Events in the pending-heavy drain workload. */
constexpr std::uint64_t drainEvents = 1000000;
/** Events in the steady-state chain workload. */
constexpr std::uint64_t chainEvents = 2000000;
/** Interleaved self-scheduling chains (ports x pipeline stages). */
constexpr unsigned chainCount = 64;

/**
 * Pending-heavy drain: preload @p n events at scattered ticks, then
 * pop them all. Exercises pure scheduling-structure cost (the old
 * core pays O(log n) per op at n-deep heaps).
 */
template <typename Queue>
std::uint64_t
pendingDrain(Queue &q, std::uint64_t n)
{
    Xoshiro256StarStar rng(7);
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        // Spread across ~100 us so wheel, laps, and overflow all play.
        q.schedule(rng.nextBounded(100 * tickUs), [&fired] { ++fired; });
    }
    q.runToCompletion();
    return fired;
}

/**
 * Steady-state chains: every fired event schedules the next, with a
 * capture set sized like the production schedulers' (a component
 * pointer, a pooled-packet-style pointer, a scalar) -- beyond the
 * std::function small-object buffer, inside the Event inline budget.
 */
template <typename Queue>
std::uint64_t
steadyChains(Queue &q, std::uint64_t total)
{
    std::uint64_t remaining = total;
    struct Chain
    {
        Queue *q;
        std::uint64_t *remaining;
        Tick period;

        void
        operator()() const
        {
            if (*remaining > 0) {
                --*remaining;
                q->scheduleIn(period, *this);
            }
        }
    };
    for (unsigned i = 0; i < chainCount; ++i)
        q.schedule(i, Chain{&q, &remaining, 97 + (i % 7)});
    q.runToCompletion();
    return q.executed();
}

struct SimcoreResults
{
    double drainLegacyMs = 0.0;
    double drainCalendarMs = 0.0;
    double chainLegacyMs = 0.0;
    double chainCalendarMs = 0.0;
    std::uint64_t platformEvents = 0;
    double platformWallMs = 0.0;
    double platformSimUs = 0.0;

    double drainSpeedup() const { return drainLegacyMs / drainCalendarMs; }
    double chainSpeedup() const { return chainLegacyMs / chainCalendarMs; }

    double
    chainEventsPerSec() const
    {
        return static_cast<double>(chainEvents) /
               (chainCalendarMs / 1e3);
    }

    double
    chainNsPerEvent() const
    {
        return chainCalendarMs * 1e6 / static_cast<double>(chainEvents);
    }

    double
    platformEventsPerSec() const
    {
        return static_cast<double>(platformEvents) /
               (platformWallMs / 1e3);
    }

    double
    platformNsPerEvent() const
    {
        return platformWallMs * 1e6 /
               static_cast<double>(platformEvents);
    }
};

const SimcoreResults &
results()
{
    static const SimcoreResults r = [] {
        constexpr unsigned reps = 3;
        SimcoreResults out;

        out.drainLegacyMs = minWallMs(reps, [] {
            LegacyHeapQueue q;
            benchmark::DoNotOptimize(pendingDrain(q, drainEvents));
        });
        out.drainCalendarMs = minWallMs(reps, [] {
            EventQueue q;
            benchmark::DoNotOptimize(pendingDrain(q, drainEvents));
        });
        out.chainLegacyMs = minWallMs(reps, [] {
            LegacyHeapQueue q;
            benchmark::DoNotOptimize(steadyChains(q, chainEvents));
        });
        out.chainCalendarMs = minWallMs(reps, [] {
            EventQueue q;
            benchmark::DoNotOptimize(steadyChains(q, chainEvents));
        });

        // Fig. 6-style reference workload: full-scale random ro GUPS,
        // all 9 ports, 200 us of simulated time.
        const Tick window = 200 * tickUs;
        out.platformSimUs = ticksToUs(window);
        out.platformWallMs = minWallMs(reps, [&out, window] {
            Ac510Config cfg;
            Ac510Module module(cfg);
            module.start();
            module.runUntil(window);
            out.platformEvents = module.queue().executed();
        });
        return out;
    }();
    return r;
}

void
printFigure()
{
    const SimcoreResults &r = results();
    std::printf("\nEvent-core performance: legacy heap+std::function "
                "vs calendar queue (min of 3)\n\n");
    TextTable table(
        {"Workload", "Legacy ms", "Calendar ms", "Speedup"});
    table.addRow({"1e6-pending drain", strfmt("%.1f", r.drainLegacyMs),
                  strfmt("%.1f", r.drainCalendarMs),
                  strfmt("%.2fx", r.drainSpeedup())});
    table.addRow({"2e6-event steady chains",
                  strfmt("%.1f", r.chainLegacyMs),
                  strfmt("%.1f", r.chainCalendarMs),
                  strfmt("%.2fx", r.chainSpeedup())});
    table.print();
    std::printf("\nCalendar core: %.1fM events/s (%.1f ns/event) on the "
                "steady-chain microbench\n",
                r.chainEventsPerSec() / 1e6, r.chainNsPerEvent());
    std::printf("Platform (fig06-style, 9-port ro, %.0f us sim): "
                "%llu events in %.1f ms = %.1fM events/s "
                "(%.1f ns/event)\n\n",
                r.platformSimUs,
                static_cast<unsigned long long>(r.platformEvents),
                r.platformWallMs, r.platformEventsPerSec() / 1e6,
                r.platformNsPerEvent());
}

void
writeJson()
{
    const SimcoreResults &r = results();
    const char *path = std::getenv("HMCSIM_PERF_JSON");
    if (!path)
        path = "BENCH_simcore.json";
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"simcore\",\n");
    std::fprintf(f, "  \"microbench\": {\n");
    std::fprintf(
        f,
        "    \"pending_drain\": {\"events\": %llu, "
        "\"legacy_heap_ms\": %.3f, \"calendar_ms\": %.3f, "
        "\"speedup\": %.3f},\n",
        static_cast<unsigned long long>(drainEvents), r.drainLegacyMs,
        r.drainCalendarMs, r.drainSpeedup());
    std::fprintf(
        f,
        "    \"steady_chains\": {\"events\": %llu, "
        "\"legacy_heap_ms\": %.3f, \"calendar_ms\": %.3f, "
        "\"speedup\": %.3f, \"events_per_sec\": %.0f, "
        "\"ns_per_event\": %.2f}\n",
        static_cast<unsigned long long>(chainEvents), r.chainLegacyMs,
        r.chainCalendarMs, r.chainSpeedup(), r.chainEventsPerSec(),
        r.chainNsPerEvent());
    std::fprintf(f, "  },\n");
    std::fprintf(
        f,
        "  \"platform\": {\"workload\": \"fig06-style 9-port ro "
        "random 200us\", \"events\": %llu, \"wall_ms\": %.3f, "
        "\"events_per_sec\": %.0f, \"ns_per_event\": %.2f},\n",
        static_cast<unsigned long long>(r.platformEvents),
        r.platformWallMs, r.platformEventsPerSec(),
        r.platformNsPerEvent());
    std::fprintf(f,
                 "  \"guard\": {\"speedup_budget\": 1.5, "
                 "\"steady_chain_speedup\": %.3f}\n",
                 r.chainSpeedup());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n\n", path);
}

// ---------------------------------------------------------------------
// google-benchmark registrations (kept name-compatible with the
// pre-rewrite binary so --benchmark_filter comparisons line up).
// ---------------------------------------------------------------------

void
BM_EventQueueThroughput(benchmark::State &state)
{
    // Steady-state scheduling churn: every fired event schedules
    // another until the budget runs out, with 64 chains interleaving.
    std::uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue queue;
        executed += steadyChains(queue, 100000);
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
    state.SetLabel("events");
}
BENCHMARK(BM_EventQueueThroughput)->Unit(benchmark::kMillisecond);

void
BM_LegacyHeapThroughput(benchmark::State &state)
{
    // The same workload on the replicated pre-rewrite core.
    std::uint64_t executed = 0;
    for (auto _ : state) {
        LegacyHeapQueue queue;
        executed += steadyChains(queue, 100000);
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
    state.SetLabel("events");
}
BENCHMARK(BM_LegacyHeapThroughput)->Unit(benchmark::kMillisecond);

void
BM_FullPlatformSimulation(benchmark::State &state)
{
    // Simulated-time throughput of the full 9-port system under load.
    const Tick window = 200 * tickUs;
    std::uint64_t transactions = 0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Ac510Config cfg;
        Ac510Module module(cfg);
        module.start();
        module.runUntil(window);
        transactions += module.aggregateStats().readsCompleted;
        events += module.queue().executed();
        benchmark::DoNotOptimize(transactions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(transactions));
    state.SetLabel("transactions");
    state.counters["sim_us_per_iter"] = ticksToUs(window);
    state.counters["events_per_iter"] = static_cast<double>(
        events / static_cast<std::uint64_t>(
                     state.iterations() ? state.iterations() : 1));
}
BENCHMARK(BM_FullPlatformSimulation)->Unit(benchmark::kMillisecond);

void
BM_AddressDecode(benchmark::State &state)
{
    const AddressMapper mapper(HmcConfig::gen2_4GB(),
                               MaxBlockSize::B128);
    Xoshiro256StarStar rng(5);
    for (auto _ : state) {
        const DecodedAddress d =
            mapper.decode(rng.nextBounded(4ull * gib));
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressDecode);

void
BM_ExperimentEndToEnd(benchmark::State &state)
{
    // Cost of one complete runExperiment (construction + warmup +
    // measurement), the unit of every sweep in bench/.
    for (auto _ : state) {
        ExperimentConfig cfg;
        cfg.warmup = 20 * tickUs;
        cfg.measure = 100 * tickUs;
        benchmark::DoNotOptimize(runExperiment(cfg).rawGBps);
    }
}
BENCHMARK(BM_ExperimentEndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    writeJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    const char *guard = std::getenv("HMCSIM_PERF_GUARD");
    if (guard && guard[0] == '1' &&
        results().chainSpeedup() < 1.5) {
        std::fprintf(stderr,
                     "FAIL: calendar core is only %.2fx the legacy "
                     "heap on the steady-chain workload (budget "
                     "1.5x)\n",
                     results().chainSpeedup());
        return 1;
    }
    return 0;
}
