/**
 * @file
 * Simulator performance: how fast the discrete-event core and the
 * full platform run on the host machine. Not a paper artifact --
 * this is the bench a simulator project ships so users can budget
 * their sweeps.
 */

#include <benchmark/benchmark.h>

#include <functional>

#include "host/experiment.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace
{

using namespace hmcsim;

void
BM_EventQueueThroughput(benchmark::State &state)
{
    // Steady-state heap churn: every fired event schedules another
    // until the budget runs out, with 64 chains interleaving.
    std::uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue queue;
        std::uint64_t remaining = 100000;
        std::function<void()> tick = [&]() {
            if (remaining > 0) {
                --remaining;
                queue.scheduleIn(100, tick);
            }
        };
        for (int i = 0; i < 64; ++i)
            queue.schedule(static_cast<Tick>(i), tick);
        queue.runToCompletion();
        executed += queue.executed();
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
    state.SetLabel("events");
}
BENCHMARK(BM_EventQueueThroughput)->Unit(benchmark::kMillisecond);

void
BM_FullPlatformSimulation(benchmark::State &state)
{
    // Simulated-time throughput of the full 9-port system under load.
    const Tick window = 200 * tickUs;
    std::uint64_t transactions = 0;
    for (auto _ : state) {
        Ac510Config cfg;
        Ac510Module module(cfg);
        module.start();
        module.runUntil(window);
        transactions += module.aggregateStats().readsCompleted;
        benchmark::DoNotOptimize(transactions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(transactions));
    state.SetLabel("transactions");
    state.counters["sim_us_per_iter"] = ticksToUs(window);
}
BENCHMARK(BM_FullPlatformSimulation)->Unit(benchmark::kMillisecond);

void
BM_AddressDecode(benchmark::State &state)
{
    const AddressMapper mapper(HmcConfig::gen2_4GB(),
                               MaxBlockSize::B128);
    Xoshiro256StarStar rng(5);
    for (auto _ : state) {
        const DecodedAddress d =
            mapper.decode(rng.nextBounded(4ull * gib));
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressDecode);

void
BM_ExperimentEndToEnd(benchmark::State &state)
{
    // Cost of one complete runExperiment (construction + warmup +
    // measurement), the unit of every sweep in bench/.
    for (auto _ : state) {
        ExperimentConfig cfg;
        cfg.warmup = 20 * tickUs;
        cfg.measure = 100 * tickUs;
        benchmark::DoNotOptimize(runExperiment(cfg).rawGBps);
    }
}
BENCHMARK(BM_ExperimentEndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
