/**
 * @file
 * Simulator performance: how fast the discrete-event core and the
 * full platform run on the host machine. Not a paper artifact --
 * this is the bench a simulator project ships so users can budget
 * their sweeps, and since the calendar-queue rewrite
 * (docs/performance.md) it doubles as the perf-regression harness:
 *
 *  - an in-binary A/B microbench pits the retired binary-heap +
 *    std::function core (replicated below as LegacyHeapQueue) against
 *    the shipping calendar EventQueue on the same workloads;
 *  - the fig06-style reference workload (full-scale 9-port ro GUPS)
 *    reports wall-clock events/sec and ns/event for the whole
 *    platform;
 *  - a backend-dispatch A/B times the vault's virtual MemoryBackend
 *    accept() against a replica of the pre-interface direct bank
 *    array on one packet stream, bit-identical by assertion, and
 *    bounds the dispatch overhead;
 *  - a batch-step A/B races the queued reference vault's per-event
 *    micro model against its time-stepped batched mode on a
 *    bank-bound schedule, completion streams bit-identical by
 *    assertion;
 *  - a snapshot-fork A/B races a cold 12-point measure-axis sweep
 *    against the same sweep served from one warmed, forked simulator
 *    (SweepOptions::warmStart), stat digests bit-identical by
 *    assertion;
 *  - results are written to BENCH_simcore.json (override the path
 *    with HMCSIM_PERF_JSON);
 *  - with HMCSIM_PERF_GUARD=1 in the environment (the CI perf-smoke
 *    job) the process fails unless the calendar core clears the
 *    1.5x speedup budget on the steady-state A/B.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "dram/bank.hh"
#include "gups/address_generator.hh"
#include "hmc/address_mapper.hh"
#include "hmc/queued_vault.hh"
#include "hmc/vault_controller.hh"
#include "host/experiment.hh"
#include "link/link.hh"
#include "protocol/packet.hh"
#include "runner/sweep.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

// ---------------------------------------------------------------------
// The retired event core, replicated for the A/B: a binary heap of
// (tick, seq, std::function). Captures beyond the std::function
// small-object buffer (16 bytes on libstdc++) heap-allocate per
// scheduled event, exactly as the simulator did before the rewrite.
// ---------------------------------------------------------------------

class LegacyHeapQueue
{
  public:
    Tick now() const { return _now; }
    std::uint64_t executed() const { return numExecuted; }

    void
    schedule(Tick when, std::function<void()> fn)
    {
        heap.push(Entry{when, nextSeq++, std::move(fn)});
    }

    void
    scheduleIn(Tick delta, std::function<void()> fn)
    {
        schedule(_now + delta, std::move(fn));
    }

    void
    runToCompletion()
    {
        while (!heap.empty()) {
            // The const_cast move the old implementation relied on
            // (and the rewrite removed from src/).
            Entry entry = std::move(const_cast<Entry &>(heap.top()));
            heap.pop();
            _now = entry.when;
            ++numExecuted;
            entry.fn();
        }
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct FiresLater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, FiresLater> heap;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

template <typename Fn>
double
minWallMs(unsigned reps, Fn &&run)
{
    double best = 0.0;
    for (unsigned i = 0; i < reps; ++i) {
        const auto start = std::chrono::steady_clock::now();
        run();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        if (i == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** Events in the pending-heavy drain workload. */
constexpr std::uint64_t drainEvents = 1000000;
/** Events in the steady-state chain workload. */
constexpr std::uint64_t chainEvents = 2000000;
/** Interleaved self-scheduling chains (ports x pipeline stages). */
constexpr unsigned chainCount = 64;

/**
 * Pending-heavy drain: preload @p n events at scattered ticks, then
 * pop them all. Exercises pure scheduling-structure cost (the old
 * core pays O(log n) per op at n-deep heaps).
 */
template <typename Queue>
std::uint64_t
pendingDrain(Queue &q, std::uint64_t n)
{
    Xoshiro256StarStar rng(7);
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        // Spread across ~100 us so wheel, laps, and overflow all play.
        q.schedule(rng.nextBounded(100 * tickUs), [&fired] { ++fired; });
    }
    q.runToCompletion();
    return fired;
}

/**
 * Steady-state chains: every fired event schedules the next, with a
 * capture set sized like the production schedulers' (a component
 * pointer, a pooled-packet-style pointer, a scalar) -- beyond the
 * std::function small-object buffer, inside the Event inline budget.
 */
template <typename Queue>
std::uint64_t
steadyChains(Queue &q, std::uint64_t total)
{
    std::uint64_t remaining = total;
    struct Chain
    {
        Queue *q;
        std::uint64_t *remaining;
        Tick period;

        void
        operator()() const
        {
            if (*remaining > 0) {
                --*remaining;
                q->scheduleIn(period, *this);
            }
        }
    };
    for (unsigned i = 0; i < chainCount; ++i)
        q.schedule(i, Chain{&q, &remaining, 97 + (i % 7)});
    q.runToCompletion();
    return q.executed();
}

// ---------------------------------------------------------------------
// Model-path A/B microbenches (PR 5, docs/performance.md): with the
// event core fast, per-packet *model* work dominates the platform
// window. Each microbench races the shipping fast path against the
// per-packet formulation it replaced, on identical inputs, and the
// harness asserts the observable results are bit-identical before
// timing anything -- the same byte-identical-digest discipline the
// calendar-queue rewrite established.
// ---------------------------------------------------------------------

/** Addresses decoded / samples flushed / addresses issued per side. */
constexpr std::size_t modelOpCount = 4000000;
/** Ports emulated by the stats microbench (the AC-510's GUPS count). */
constexpr unsigned modelPortCount = 9;
/** Issue-window depth matching GupsPort::addrWindowSize. */
constexpr unsigned modelWindowSize = 32;

/** Fold a decoded address into a checksum (prevents DCE and doubles
 *  as the bit-identity witness between the two decode paths). */
inline std::uint64_t
foldDecoded(std::uint64_t acc, const DecodedAddress &d)
{
    acc = acc * 1099511628211ULL ^ d.vault;
    acc = acc * 1099511628211ULL ^ d.bank;
    acc = acc * 1099511628211ULL ^ d.quadrant;
    acc = acc * 1099511628211ULL ^ d.row;
    acc = acc * 1099511628211ULL ^ d.column;
    return acc;
}

std::uint64_t
mapperDecodeRun(const AddressMapper &mapper,
                const std::vector<Addr> &addrs, bool reference,
                std::uint64_t acc)
{
    if (reference) {
        for (const Addr a : addrs)
            acc = foldDecoded(acc, mapper.decodeReference(a));
    } else {
        for (const Addr a : addrs)
            acc = foldDecoded(acc, mapper.decode(a));
    }
    return acc;
}

/** Per-port monitoring state replicated for the stats A/B. */
struct StatsPortState
{
    SampleStats latency;
    Histogram hist{0.0, 100000.0, 1000};
    std::uint64_t completed = 0;
    Bytes rawBytes = 0;
    Bytes payloadBytes = 0;
};

/** The pre-PR5 per-response monitoring path: convert to ns, run the
 *  Welford accumulator, probe the histogram, bump three counters --
 *  per sample. Calls the same shipping SampleStats::sample and
 *  Histogram::sample the port used to call. */
void
statsPerSampleRun(std::vector<StatsPortState> &ports,
                  const std::vector<Tick> &ticks)
{
    const Bytes trans_bytes = transactionBytes(Command::Read, 128);
    for (std::size_t i = 0; i < ticks.size(); ++i) {
        StatsPortState &p = ports[i % modelPortCount];
        const double v = ticksToNs(ticks[i]);
        p.latency.sample(v);
        p.hist.sample(v);
        ++p.completed;
        p.rawBytes += trans_bytes;
        p.payloadBytes += 128;
    }
}

/** The shipping batched path: buffer raw ticks per port, drain each
 *  full buffer with TickLatencyBatch::flushInto, and settle the
 *  completion counters per flush. */
void
statsBatchedRun(std::vector<StatsPortState> &ports,
                const std::vector<Tick> &ticks)
{
    const Bytes trans_bytes = transactionBytes(Command::Read, 128);
    TickLatencyBatch batches[modelPortCount];
    auto flush = [&](unsigned port) {
        StatsPortState &p = ports[port];
        const auto n = static_cast<std::uint64_t>(batches[port].size());
        batches[port].flushInto(p.latency, &p.hist);
        p.completed += n;
        p.rawBytes += n * trans_bytes;
        p.payloadBytes += n * 128;
    };
    for (std::size_t i = 0; i < ticks.size(); ++i) {
        const auto port = static_cast<unsigned>(i % modelPortCount);
        if (batches[port].push(ticks[i]))
            flush(port);
    }
    for (unsigned port = 0; port < modelPortCount; ++port)
        if (!batches[port].empty())
            flush(port);
}

/** Exact bits of a double, for the bit-identity assertions. */
inline std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Checksum over every digest-observable field of a port's stats. */
std::uint64_t
statsChecksum(const std::vector<StatsPortState> &ports)
{
    std::uint64_t acc = 1469598103934665603ULL;
    for (const StatsPortState &p : ports) {
        acc = acc * 1099511628211ULL ^ p.latency.count();
        acc = acc * 1099511628211ULL ^ doubleBits(p.latency.sum());
        acc = acc * 1099511628211ULL ^ doubleBits(p.latency.min());
        acc = acc * 1099511628211ULL ^ doubleBits(p.latency.max());
        acc = acc * 1099511628211ULL ^ p.hist.totalSamples();
        acc = acc * 1099511628211ULL ^ p.hist.underflow();
        acc = acc * 1099511628211ULL ^ p.hist.overflow();
        for (std::size_t b = 0; b < p.hist.numBins(); ++b)
            acc = acc * 1099511628211ULL ^ p.hist.binCount(b);
        acc = acc * 1099511628211ULL ^ p.completed;
        acc = acc * 1099511628211ULL ^ p.rawBytes;
        acc = acc * 1099511628211ULL ^ p.payloadBytes;
    }
    return acc;
}

// The retired per-call address generator, replicated for the A/B: the
// shipping AddressGenerator now hoists the alignment, the random
// bound (a 64-bit divide), and the mask work out of the loop, so the
// old formulation lives here. next() is noinline because the original
// lived in another translation unit -- each issue paid a real call
// and recomputed the bound; letting the optimizer inline and hoist
// that divide here would benchmark code that never shipped.
struct LegacyAddressGenerator
{
    AddressGeneratorConfig cfg;
    Xoshiro256StarStar rng;

    LegacyAddressGenerator(const AddressGeneratorConfig &cfg,
                           std::uint64_t seed)
        : cfg(cfg), rng(seed)
    {
    }

    __attribute__((noinline)) Addr
    next()
    {
        const Addr align = cfg.requestSize % 32 == 0 ? 32 : 16;
        Addr addr = rng.nextBounded(cfg.capacity / align) * align;
        addr = (addr & ~cfg.mask) | cfg.antiMask;
        addr &= ~(align - 1);
        return addr;
    }
};

AddressGeneratorConfig
issueBenchConfig()
{
    AddressGeneratorConfig cfg;
    cfg.mode = AddressingMode::Random;
    cfg.requestSize = 128;
    cfg.capacity = 4 * gib;
    return cfg;
}

std::uint64_t
issuePerCallRun(std::size_t n, std::uint64_t seed)
{
    LegacyAddressGenerator gen(issueBenchConfig(), seed);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc += gen.next();
    return acc;
}

std::uint64_t
issueWindowedRun(std::size_t n, std::uint64_t seed)
{
    AddressGenerator gen(issueBenchConfig(), seed);
    Addr window[modelWindowSize];
    unsigned pos = modelWindowSize;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (pos == modelWindowSize) {
            gen.fill(window, modelWindowSize);
            pos = 0;
        }
        acc += window[pos++];
    }
    return acc;
}

// ---------------------------------------------------------------------
// Backend-dispatch A/B (the MemoryBackend extraction): the vault's
// per-packet path now reaches its bank array through a virtual
// accept() call. This replica is the pre-interface formulation --
// the same math with the banks, refresh bookkeeping, and TSV bus
// inlined in the controller -- raced against VaultController on one
// packet stream to bound what the indirection costs.
// ---------------------------------------------------------------------

/** Packets pushed through each vault formulation per side. */
constexpr std::size_t dispatchOpCount = 2000000;

class DirectVaultReplica
{
  public:
    explicit DirectVaultReplica(const VaultConfig &cfg)
        : cfg(cfg), banks(cfg.numBanks), nextRefresh(cfg.numBanks, 0),
          dataBus(static_cast<double>(cfg.timings.beatBytes) * 1e12 /
                  static_cast<double>(cfg.timings.tBeat))
    {
        const Tick interval = refreshInterval();
        if (interval != 0)
            for (unsigned i = 0; i < cfg.numBanks; ++i)
                nextRefresh[i] = interval * (i + 1) / cfg.numBanks;
    }

    // noinline for the same reason as LegacyAddressGenerator::next():
    // the pre-interface controller lived in another translation unit,
    // so every service() was a real call; letting the optimizer fold
    // this replica into the timing loop would race the virtual path
    // against a formulation that never shipped.
    __attribute__((noinline)) Tick
    service(const Packet &pkt, Tick arrival)
    {
        const Tick start = arrival + cfg.controllerLatency;
        const bool is_write = pkt.cmd != Command::Read;
        refreshDue(pkt.bank, start);
        BankAccessResult res =
            banks[pkt.bank].access(cfg.timings, cfg.policy, start,
                                   pkt.row, pkt.payload, is_write);
        if (pkt.cmd == Command::Atomic)
            res.dataReady += cfg.atomicLatency;
        const Bytes beat_span =
            (pkt.addr % cfg.timings.beatBytes) + pkt.payload;
        const Bytes bus_bytes =
            (cfg.timings.beats(beat_span) + cfg.commandBeats) *
            cfg.timings.beatBytes;
        const Tick bus_done = dataBus.admit(
            res.dataReady, static_cast<double>(bus_bytes));

        // The monitoring work the pre-interface controller also did
        // per packet; without it the replica under-counts the
        // baseline and the A/B overstates the dispatch cost.
        switch (pkt.cmd) {
          case Command::Read:
            ++_stats.reads;
            break;
          case Command::Write:
            ++_stats.writes;
            break;
          case Command::Atomic:
            ++_stats.atomics;
            break;
        }
        if (res.rowHit)
            ++_stats.rowHits;
        _stats.payloadBytes += pkt.payload;
        _stats.refreshes = numRefreshes;

        return bus_done;
    }

  private:
    Tick
    refreshInterval() const
    {
        if (!cfg.refreshEnabled || cfg.refreshMultiplier <= 0.0)
            return 0;
        return static_cast<Tick>(
            static_cast<double>(cfg.timings.tRefi) /
            cfg.refreshMultiplier);
    }

    void
    refreshDue(unsigned bank_idx, Tick now)
    {
        const Tick interval = refreshInterval();
        if (interval == 0)
            return;
        while (nextRefresh[bank_idx] <= now) {
            banks[bank_idx].refresh(cfg.timings, nextRefresh[bank_idx]);
            nextRefresh[bank_idx] += interval;
            ++numRefreshes;
        }
    }

    VaultConfig cfg;
    std::vector<Bank> banks;
    std::vector<Tick> nextRefresh;
    ThroughputRegulator dataBus;
    VaultStats _stats;
    std::uint64_t numRefreshes = 0;
};

/** A vault-shaped packet stream with jittered arrivals, shared by
 *  both sides so they chew identical data. */
void
makeDispatchStream(std::vector<Packet> &pkts,
                   std::vector<Tick> &arrivals)
{
    const VaultConfig cfg;
    Xoshiro256StarStar rng(17);
    pkts.resize(dispatchOpCount);
    arrivals.resize(dispatchOpCount);
    Tick arrival = 0;
    for (std::size_t i = 0; i < dispatchOpCount; ++i) {
        Packet &pkt = pkts[i];
        pkt = Packet{};
        const std::uint64_t pick = rng.nextBounded(8);
        pkt.cmd = pick == 0   ? Command::Write
                  : pick == 1 ? Command::Atomic
                              : Command::Read;
        pkt.addr = rng.nextBounded(1u << 30);
        pkt.payload = 16u << rng.nextBounded(4);
        pkt.bank =
            static_cast<std::uint8_t>(rng.nextBounded(cfg.numBanks));
        pkt.row = static_cast<std::uint32_t>(rng.nextBounded(4096));
        arrivals[i] = arrival;
        arrival += rng.nextBounded(100);
    }
}

template <typename Vault>
std::uint64_t
dispatchRun(const std::vector<Packet> &pkts,
            const std::vector<Tick> &arrivals, std::uint64_t acc)
{
    Vault vault{VaultConfig{}};
    for (std::size_t i = 0; i < pkts.size(); ++i)
        acc = acc * 1099511628211ULL ^ vault.service(pkts[i], arrivals[i]);
    return acc;
}

// ---------------------------------------------------------------------
// Batch-step A/B (the batched vault stepping): the queued reference
// vault's micro mode spends three-plus events per request (bank done,
// coalesced grant, bus completion); the batched mode books each
// request's bank timeline at offer time against the SoA bank-free
// array, sequences the TSV bus from a (data-ready, age) heap, and
// advances everything -- including MemoryBackend::stepBatch -- under
// one armed timer. Both modes grant the bus by (data-ready, age), so
// on a per-bank-state backend the completion streams are bit
// identical; the harness asserts that before timing either side.
//
// The workload is closed-loop: a fixed window of outstanding requests
// (the host-side tag pool the unbounded-queue assumption points at),
// each completion offering the next. That keeps every bank queue deep
// -- the vault machinery, not the feed, dominates -- while bounding
// the backlog the way the real host does. Offers made inside the
// completion callback land at identical ticks in identical age order
// in both modes (completions are bit-identical), so the differential
// still holds and is still asserted.
// ---------------------------------------------------------------------

/** Requests pushed through each vault mode per side. */
constexpr std::size_t batchStepRequests = 200000;
/** Outstanding-request window (the emulated host tag pool). */
constexpr unsigned batchStepWindow = 2048;

std::vector<Packet>
makeBatchStepRequests()
{
    const VaultConfig vault_cfg;
    std::vector<Packet> pkts(batchStepRequests);
    Xoshiro256StarStar rng(37);
    for (std::size_t i = 0; i < batchStepRequests; ++i) {
        Packet &pkt = pkts[i];
        pkt = Packet{};
        pkt.id = i;
        pkt.cmd = rng.nextBounded(3) == 0 ? Command::Write
                                          : Command::Read;
        pkt.bank = static_cast<std::uint8_t>(
            rng.nextBounded(vault_cfg.numBanks));
        pkt.row = static_cast<std::uint32_t>(rng.nextBounded(4096));
        pkt.addr = rng.nextBounded(1u << 20) * 32;
        pkt.payload = 128;
    }
    return pkts;
}

/** Run one vault mode over the shared request list and fold every
 *  completion tick into a checksum (the bit-identity witness). */
std::uint64_t
batchStepRun(const std::vector<Packet> &pkts, bool batched,
             std::uint64_t acc)
{
    QueuedVaultConfig cfg;
    cfg.batched = batched;
    EventQueue queue;
    std::vector<Tick> done(pkts.size(), 0);
    std::size_t next = 0;
    QueuedVaultController *vault_ptr = nullptr;
    QueuedVaultController vault(
        cfg, queue,
        [&done, &next, &pkts, &vault_ptr](const Packet &pkt, Tick at) {
            done[pkt.id] = at;
            if (next < pkts.size())
                vault_ptr->offer(pkts[next++]);
        });
    vault_ptr = &vault;
    queue.schedule(0, [&vault, &pkts, &next] {
        while (next < batchStepWindow && next < pkts.size())
            vault.offer(pkts[next++]);
    });
    queue.runToCompletion();
    for (const Tick t : done) {
        if (t == 0)
            fatal("reference vault dropped a request");
        acc = acc * 1099511628211ULL ^ t;
    }
    return acc;
}

// ---------------------------------------------------------------------
// Snapshot-fork A/B (copy-on-write simulator fork): a measure-axis
// sweep re-simulates one identical warm-up per point when run cold;
// warm-start mode (SweepOptions::warmStart) simulates it once and
// serves every window from a fork of the parked module
// (Ac510Module::fork via runExperimentFrom). Results and stat digests
// are bit-identical either way -- asserted before timing -- so the
// A/B isolates pure warm-up amortization on one worker.
// ---------------------------------------------------------------------

/** Windows on the measure axis (the canonical warm-start sweep). */
constexpr unsigned forkSweepPoints = 12;

SweepAxes
forkSweepAxes()
{
    SweepAxes axes;
    axes.base.warmup = 40 * tickUs;
    for (unsigned i = 0; i < forkSweepPoints; ++i)
        axes.measures.push_back((4 + 2 * i) * tickUs);
    return axes;
}

/** One-worker sweep over the fork axes; returns the per-point stat
 *  digests folded with the measured bandwidth bits (witness + DCE
 *  anchor). deriveSeeds is off so the measure axis shares one
 *  warm-up (the documented warm-start pairing). */
std::uint64_t
forkSweepRun(bool warm_start, std::uint64_t acc)
{
    SweepOptions opts;
    opts.jobs = 1;
    opts.sweepSeed = benchSweepSeed;
    opts.deriveSeeds = false;
    opts.warmStart = warm_start;
    SweepRunner runner(opts);
    for (const SweepPointResult &point : runner.run(forkSweepAxes())) {
        acc = acc * 1099511628211ULL ^ point.statDigest;
        acc = acc * 1099511628211ULL ^ doubleBits(point.result.rawGBps);
    }
    return acc;
}

struct SimcoreResults
{
    double drainLegacyMs = 0.0;
    double drainCalendarMs = 0.0;
    double chainLegacyMs = 0.0;
    double chainCalendarMs = 0.0;
    std::uint64_t platformEvents = 0;
    double platformWallMs = 0.0;
    double platformSimUs = 0.0;
    double mapperDivmodMs = 0.0;
    double mapperPlanMs = 0.0;
    double statsPerSampleMs = 0.0;
    double statsBatchedMs = 0.0;
    double issuePerCallMs = 0.0;
    double issueWindowedMs = 0.0;
    double dispatchDirectMs = 0.0;
    double dispatchVirtualMs = 0.0;
    /** Best direct/virtual ratio over the interleaved rep pairs: the
     *  two sides run back to back per rep, so the best pair is the
     *  one least disturbed by the host, and a single noisy rep
     *  cannot sink the guard the way a min/min ratio can. */
    double dispatchBestRatio = 0.0;
    double batchMicroMs = 0.0;
    double batchBatchedMs = 0.0;
    /** Best micro/batched ratio over interleaved rep pairs (same
     *  rationale as dispatchBestRatio: noise-robust guard input). */
    double batchBestRatio = 0.0;
    /** Best per-call/windowed ratio over interleaved rep pairs. */
    double issueBestRatio = 0.0;
    /** Best per-sample/batched ratio over interleaved rep pairs. */
    double statsBestRatio = 0.0;
    double forkColdMs = 0.0;
    double forkWarmMs = 0.0;

    double drainSpeedup() const { return drainLegacyMs / drainCalendarMs; }
    double chainSpeedup() const { return chainLegacyMs / chainCalendarMs; }
    double mapperSpeedup() const { return mapperDivmodMs / mapperPlanMs; }
    double statsSpeedup() const { return statsBestRatio; }
    double issueSpeedup() const { return issueBestRatio; }
    double batchSpeedup() const { return batchBestRatio; }
    double forkSpeedup() const { return forkColdMs / forkWarmMs; }
    /** Direct-array wall over virtual-interface wall: 1.0 = free
     *  dispatch, 0.98 = the interface costs 2%. */
    double
    dispatchRatio() const
    {
        return dispatchBestRatio;
    }

    double
    chainEventsPerSec() const
    {
        return static_cast<double>(chainEvents) /
               (chainCalendarMs / 1e3);
    }

    double
    chainNsPerEvent() const
    {
        return chainCalendarMs * 1e6 / static_cast<double>(chainEvents);
    }

    double
    platformEventsPerSec() const
    {
        return static_cast<double>(platformEvents) /
               (platformWallMs / 1e3);
    }

    double
    platformNsPerEvent() const
    {
        return platformWallMs * 1e6 /
               static_cast<double>(platformEvents);
    }
};

const SimcoreResults &
results()
{
    static const SimcoreResults r = [] {
        constexpr unsigned reps = 3;
        SimcoreResults out;

        out.drainLegacyMs = minWallMs(reps, [] {
            LegacyHeapQueue q;
            benchmark::DoNotOptimize(pendingDrain(q, drainEvents));
        });
        out.drainCalendarMs = minWallMs(reps, [] {
            EventQueue q;
            benchmark::DoNotOptimize(pendingDrain(q, drainEvents));
        });
        out.chainLegacyMs = minWallMs(reps, [] {
            LegacyHeapQueue q;
            benchmark::DoNotOptimize(steadyChains(q, chainEvents));
        });
        out.chainCalendarMs = minWallMs(reps, [] {
            EventQueue q;
            benchmark::DoNotOptimize(steadyChains(q, chainEvents));
        });

        // Fig. 6-style reference workload: full-scale random ro GUPS,
        // all 9 ports, 200 us of simulated time. Min of 7: one rep is
        // ~15 ms, so the extra reps are free, and the platform wall
        // clock is the guard metric most exposed to host scheduling
        // noise (observed min-of-3 spread on a shared runner: several
        // ms around the ~14 ms floor).
        constexpr unsigned platform_reps = 7;
        const Tick window = 200 * tickUs;
        out.platformSimUs = ticksToUs(window);
        out.platformWallMs = minWallMs(platform_reps, [&out, window] {
            Ac510Config cfg;
            Ac510Module module(cfg);
            module.start();
            module.runUntil(window);
            out.platformEvents = module.queue().executed();
        });

        // Model-path microbenches, min of 5 (short enough that the
        // extra reps are cheap and they tighten the A/B against
        // scheduler noise). Inputs are generated once and shared so
        // both sides chew identical data.
        constexpr unsigned model_reps = 5;

        const AddressMapper mapper(HmcConfig::gen2_4GB(),
                                   MaxBlockSize::B128);
        std::vector<Addr> addrs(modelOpCount);
        {
            Xoshiro256StarStar rng(11);
            for (Addr &a : addrs)
                a = rng.nextBounded(4ull * gib);
        }
        if (mapperDecodeRun(mapper, addrs, true, 0) !=
            mapperDecodeRun(mapper, addrs, false, 0))
            fatal("address-plan decode diverges from the div/mod "
                  "reference");
        // The timed closures fold a per-rep salt into each run so the
        // optimizer cannot treat a rep as a pure repeat of the last
        // and hoist it out of the timing loop.
        std::uint64_t salt = 1;
        out.mapperDivmodMs = minWallMs(model_reps, [&] {
            benchmark::DoNotOptimize(
                mapperDecodeRun(mapper, addrs, true, salt++));
        });
        out.mapperPlanMs = minWallMs(model_reps, [&] {
            benchmark::DoNotOptimize(
                mapperDecodeRun(mapper, addrs, false, salt++));
        });

        std::vector<Tick> ticks(modelOpCount);
        {
            // Latencies in the platform's real range (~0.4..3 us),
            // plus exact bin boundaries via the modulus pattern.
            Xoshiro256StarStar rng(13);
            for (Tick &t : ticks)
                t = 400000 + rng.nextBounded(2600000);
        }
        {
            std::vector<StatsPortState> a(modelPortCount);
            std::vector<StatsPortState> b(modelPortCount);
            statsPerSampleRun(a, ticks);
            statsBatchedRun(b, ticks);
            if (statsChecksum(a) != statsChecksum(b))
                fatal("batched stats flush diverges from the "
                      "per-sample path");
        }
        // Interleaved rep pairs (the dispatch A/B's recipe): the
        // per-sample side is latency-bound on the Welford divide
        // chain, so host frequency drift between back-to-back blocks
        // folds straight into a per-side min-of-N ratio.
        for (unsigned i = 0; i < model_reps; ++i) {
            const double per_sample = minWallMs(1, [&] {
                std::vector<StatsPortState> ports(modelPortCount);
                statsPerSampleRun(ports, ticks);
                benchmark::DoNotOptimize(statsChecksum(ports));
            });
            const double batched_ms = minWallMs(1, [&] {
                std::vector<StatsPortState> ports(modelPortCount);
                statsBatchedRun(ports, ticks);
                benchmark::DoNotOptimize(statsChecksum(ports));
            });
            if (i == 0 || per_sample < out.statsPerSampleMs)
                out.statsPerSampleMs = per_sample;
            if (i == 0 || batched_ms < out.statsBatchedMs)
                out.statsBatchedMs = batched_ms;
            if (i == 0 ||
                per_sample / batched_ms > out.statsBestRatio)
                out.statsBestRatio = per_sample / batched_ms;
        }

        if (issuePerCallRun(modelOpCount, 0x1234) !=
            issueWindowedRun(modelOpCount, 0x1234))
            fatal("windowed GUPS issue diverges from the per-call "
                  "address stream");
        // Interleaved rep pairs (the dispatch A/B's recipe): the two
        // sides are close enough that host frequency drift between
        // back-to-back blocks would fold straight into the ratio.
        for (unsigned i = 0; i < model_reps; ++i) {
            const double per_call = minWallMs(1, [&] {
                benchmark::DoNotOptimize(
                    issuePerCallRun(modelOpCount, salt++));
            });
            const double windowed = minWallMs(1, [&] {
                benchmark::DoNotOptimize(
                    issueWindowedRun(modelOpCount, salt++));
            });
            if (i == 0 || per_call < out.issuePerCallMs)
                out.issuePerCallMs = per_call;
            if (i == 0 || windowed < out.issueWindowedMs)
                out.issueWindowedMs = windowed;
            if (i == 0 || per_call / windowed > out.issueBestRatio)
                out.issueBestRatio = per_call / windowed;
        }

        // Backend dispatch: the virtual accept() path must reproduce
        // the direct bank-array ticks exactly before either side is
        // timed (it is the pre-refactor model, bit for bit).
        std::vector<Packet> pkts;
        std::vector<Tick> dispatchArrivals;
        makeDispatchStream(pkts, dispatchArrivals);
        if (dispatchRun<DirectVaultReplica>(pkts, dispatchArrivals, 0) !=
            dispatchRun<VaultController>(pkts, dispatchArrivals, 0))
            fatal("vault backend interface diverges from the direct "
                  "bank-array formulation");
        // Interleaved min-of-9: the two sides are so close that
        // back-to-back blocks would fold frequency drift into the
        // ratio; alternating reps exposes both sides to the same
        // host conditions.
        constexpr unsigned dispatch_reps = 9;
        for (unsigned i = 0; i < dispatch_reps; ++i) {
            const double direct = minWallMs(1, [&] {
                benchmark::DoNotOptimize(
                    dispatchRun<DirectVaultReplica>(
                        pkts, dispatchArrivals, salt++));
            });
            const double virt = minWallMs(1, [&] {
                benchmark::DoNotOptimize(dispatchRun<VaultController>(
                    pkts, dispatchArrivals, salt++));
            });
            if (i == 0 || direct < out.dispatchDirectMs)
                out.dispatchDirectMs = direct;
            if (i == 0 || virt < out.dispatchVirtualMs)
                out.dispatchVirtualMs = virt;
            if (i == 0 || direct / virt > out.dispatchBestRatio)
                out.dispatchBestRatio = direct / virt;
        }

        // Batch-step A/B: completion streams must be bit-identical
        // before either vault mode is timed (same (data-ready, age)
        // bus arbitration, docs/performance.md). Interleaved rep
        // pairs, best ratio, like the dispatch A/B.
        const std::vector<Packet> batch_pkts = makeBatchStepRequests();
        if (batchStepRun(batch_pkts, false, 0) !=
            batchStepRun(batch_pkts, true, 0))
            fatal("batched vault stepping diverges from the "
                  "event-driven micro model");
        constexpr unsigned batch_reps = 5;
        for (unsigned i = 0; i < batch_reps; ++i) {
            const double micro = minWallMs(1, [&] {
                benchmark::DoNotOptimize(
                    batchStepRun(batch_pkts, false, salt++));
            });
            const double stepped = minWallMs(1, [&] {
                benchmark::DoNotOptimize(
                    batchStepRun(batch_pkts, true, salt++));
            });
            if (i == 0 || micro < out.batchMicroMs)
                out.batchMicroMs = micro;
            if (i == 0 || stepped < out.batchBatchedMs)
                out.batchBatchedMs = stepped;
            if (i == 0 || micro / stepped > out.batchBestRatio)
                out.batchBestRatio = micro / stepped;
        }

        // Snapshot-fork A/B: the warmed sweep must reproduce the cold
        // sweep's stat digests bit for bit before timing.
        if (forkSweepRun(false, 0) != forkSweepRun(true, 0))
            fatal("warm-start fork sweep diverges from the cold "
                  "sweep");
        out.forkColdMs = minWallMs(reps, [&] {
            benchmark::DoNotOptimize(forkSweepRun(false, salt++));
        });
        out.forkWarmMs = minWallMs(reps, [&] {
            benchmark::DoNotOptimize(forkSweepRun(true, salt++));
        });
        return out;
    }();
    return r;
}

/** Platform wall-clock budget in ms for the perf guard (override with
 *  HMCSIM_PERF_PLATFORM_BUDGET_MS). Re-baselined from PR 4's 15.5 ms:
 *  the same binary's min-of-N swings between ~13 and ~17 ms run to
 *  run on a shared runner, so the budget sits above the observed
 *  noise band while still failing on any real (>25%) hot-path
 *  regression. */
double
platformBudgetMs()
{
    if (const char *env = std::getenv("HMCSIM_PERF_PLATFORM_BUDGET_MS")) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return 18.0;
}

void
printFigure()
{
    const SimcoreResults &r = results();
    std::printf("\nEvent-core performance: legacy heap+std::function "
                "vs calendar queue (min of 3)\n\n");
    TextTable table(
        {"Workload", "Legacy ms", "Calendar ms", "Speedup"});
    table.addRow({"1e6-pending drain", strfmt("%.1f", r.drainLegacyMs),
                  strfmt("%.1f", r.drainCalendarMs),
                  strfmt("%.2fx", r.drainSpeedup())});
    table.addRow({"2e6-event steady chains",
                  strfmt("%.1f", r.chainLegacyMs),
                  strfmt("%.1f", r.chainCalendarMs),
                  strfmt("%.2fx", r.chainSpeedup())});
    table.print();
    std::printf("\nCalendar core: %.1fM events/s (%.1f ns/event) on the "
                "steady-chain microbench\n",
                r.chainEventsPerSec() / 1e6, r.chainNsPerEvent());

    std::printf("\nModel-path microbenches: per-packet formulation vs "
                "shipping fast path (min of 5, bit-identical "
                "results)\n\n");
    TextTable model(
        {"Model path", "Per-packet ms", "Fast-path ms", "Speedup"});
    model.addRow({"address decode (4M)",
                  strfmt("%.1f", r.mapperDivmodMs),
                  strfmt("%.1f", r.mapperPlanMs),
                  strfmt("%.2fx", r.mapperSpeedup())});
    model.addRow({"latency stats (4M samples, 9 ports)",
                  strfmt("%.1f", r.statsPerSampleMs),
                  strfmt("%.1f", r.statsBatchedMs),
                  strfmt("%.2fx", r.statsSpeedup())});
    model.addRow({"GUPS issue addresses (4M)",
                  strfmt("%.1f", r.issuePerCallMs),
                  strfmt("%.1f", r.issueWindowedMs),
                  strfmt("%.2fx", r.issueSpeedup())});
    model.print();

    std::printf("\nBackend dispatch (2M vault packets): direct array "
                "%.1f ms vs virtual accept() %.1f ms, best paired "
                "ratio %.3fx (1.0 = free; guard floor 0.98)\n",
                r.dispatchDirectMs, r.dispatchVirtualMs,
                r.dispatchRatio());

    std::printf("\nBatched vault stepping (%zu closed-loop requests, "
                "window %u, bit-identical completions): micro %.1f ms "
                "vs batched %.1f ms, best paired speedup %.2fx\n",
                batchStepRequests, batchStepWindow, r.batchMicroMs,
                r.batchBatchedMs, r.batchSpeedup());

    std::printf("\nSnapshot-fork warm start (%u-point measure-axis "
                "sweep, one worker, bit-identical digests): cold "
                "%.1f ms vs warmed %.1f ms = %.2fx\n",
                forkSweepPoints, r.forkColdMs, r.forkWarmMs,
                r.forkSpeedup());

    std::printf("\nPlatform (fig06-style, 9-port ro, %.0f us sim): "
                "%llu events in %.1f ms = %.1fM events/s "
                "(%.1f ns/event; budget %.1f ms)\n\n",
                r.platformSimUs,
                static_cast<unsigned long long>(r.platformEvents),
                r.platformWallMs, r.platformEventsPerSec() / 1e6,
                r.platformNsPerEvent(), platformBudgetMs());
}

void
writeJson()
{
    const SimcoreResults &r = results();
    const char *path = std::getenv("HMCSIM_PERF_JSON");
    if (!path)
        path = "BENCH_simcore.json";
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"simcore\",\n");
    std::fprintf(f, "  \"microbench\": {\n");
    std::fprintf(
        f,
        "    \"pending_drain\": {\"events\": %llu, "
        "\"legacy_heap_ms\": %.3f, \"calendar_ms\": %.3f, "
        "\"speedup\": %.3f},\n",
        static_cast<unsigned long long>(drainEvents), r.drainLegacyMs,
        r.drainCalendarMs, r.drainSpeedup());
    std::fprintf(
        f,
        "    \"steady_chains\": {\"events\": %llu, "
        "\"legacy_heap_ms\": %.3f, \"calendar_ms\": %.3f, "
        "\"speedup\": %.3f, \"events_per_sec\": %.0f, "
        "\"ns_per_event\": %.2f}\n",
        static_cast<unsigned long long>(chainEvents), r.chainLegacyMs,
        r.chainCalendarMs, r.chainSpeedup(), r.chainEventsPerSec(),
        r.chainNsPerEvent());
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"model_path\": {\n");
    std::fprintf(
        f,
        "    \"address_decode\": {\"addresses\": %llu, "
        "\"divmod_ms\": %.3f, \"plan_ms\": %.3f, \"speedup\": %.3f},\n",
        static_cast<unsigned long long>(modelOpCount), r.mapperDivmodMs,
        r.mapperPlanMs, r.mapperSpeedup());
    std::fprintf(
        f,
        "    \"stats_flush\": {\"samples\": %llu, \"ports\": %u, "
        "\"per_sample_ms\": %.3f, \"batched_ms\": %.3f, "
        "\"speedup\": %.3f},\n",
        static_cast<unsigned long long>(modelOpCount), modelPortCount,
        r.statsPerSampleMs, r.statsBatchedMs, r.statsSpeedup());
    std::fprintf(
        f,
        "    \"gups_issue\": {\"addresses\": %llu, "
        "\"per_call_ms\": %.3f, \"windowed_ms\": %.3f, "
        "\"speedup\": %.3f},\n",
        static_cast<unsigned long long>(modelOpCount), r.issuePerCallMs,
        r.issueWindowedMs, r.issueSpeedup());
    std::fprintf(
        f,
        "    \"backend_dispatch\": {\"requests\": %llu, "
        "\"direct_ms\": %.3f, \"virtual_ms\": %.3f, "
        "\"ratio\": %.3f}\n",
        static_cast<unsigned long long>(dispatchOpCount),
        r.dispatchDirectMs, r.dispatchVirtualMs, r.dispatchRatio());
    std::fprintf(f, "  },\n");
    std::fprintf(
        f,
        "  \"batch_step\": {\"requests\": %llu, \"window\": %u, "
        "\"micro_ms\": %.3f, \"batched_ms\": %.3f, "
        "\"speedup\": %.3f},\n",
        static_cast<unsigned long long>(batchStepRequests),
        batchStepWindow, r.batchMicroMs, r.batchBatchedMs,
        r.batchSpeedup());
    std::fprintf(
        f,
        "  \"snapshot_fork\": {\"points\": %u, \"jobs\": 1, "
        "\"warmup_us\": 40, \"cold_ms\": %.3f, \"warm_ms\": %.3f, "
        "\"speedup\": %.3f},\n",
        forkSweepPoints, r.forkColdMs, r.forkWarmMs, r.forkSpeedup());
    std::fprintf(
        f,
        "  \"platform\": {\"workload\": \"fig06-style 9-port ro "
        "random 200us\", \"events\": %llu, \"wall_ms\": %.3f, "
        "\"events_per_sec\": %.0f, \"ns_per_event\": %.2f},\n",
        static_cast<unsigned long long>(r.platformEvents),
        r.platformWallMs, r.platformEventsPerSec(),
        r.platformNsPerEvent());
    std::fprintf(f,
                 "  \"guard\": {\"speedup_budget\": 1.5, "
                 "\"steady_chain_speedup\": %.3f, "
                 "\"address_decode_speedup\": %.3f, "
                 "\"stats_flush_speedup\": %.3f, "
                 "\"gups_issue_speedup\": %.3f, "
                 "\"batch_step_speedup\": %.3f, "
                 "\"snapshot_fork_speedup\": %.3f, "
                 "\"backend_dispatch_floor\": 0.98, "
                 "\"backend_dispatch_ratio\": %.3f, "
                 "\"platform_budget_ms\": %.1f, "
                 "\"platform_wall_ms\": %.3f}\n",
                 r.chainSpeedup(), r.mapperSpeedup(), r.statsSpeedup(),
                 r.issueSpeedup(), r.batchSpeedup(), r.forkSpeedup(),
                 r.dispatchRatio(), platformBudgetMs(),
                 r.platformWallMs);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n\n", path);
}

// ---------------------------------------------------------------------
// google-benchmark registrations (kept name-compatible with the
// pre-rewrite binary so --benchmark_filter comparisons line up).
// ---------------------------------------------------------------------

void
BM_EventQueueThroughput(benchmark::State &state)
{
    // Steady-state scheduling churn: every fired event schedules
    // another until the budget runs out, with 64 chains interleaving.
    std::uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue queue;
        executed += steadyChains(queue, 100000);
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
    state.SetLabel("events");
}
BENCHMARK(BM_EventQueueThroughput)->Unit(benchmark::kMillisecond);

void
BM_LegacyHeapThroughput(benchmark::State &state)
{
    // The same workload on the replicated pre-rewrite core.
    std::uint64_t executed = 0;
    for (auto _ : state) {
        LegacyHeapQueue queue;
        executed += steadyChains(queue, 100000);
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
    state.SetLabel("events");
}
BENCHMARK(BM_LegacyHeapThroughput)->Unit(benchmark::kMillisecond);

void
BM_FullPlatformSimulation(benchmark::State &state)
{
    // Simulated-time throughput of the full 9-port system under load.
    const Tick window = 200 * tickUs;
    std::uint64_t transactions = 0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Ac510Config cfg;
        Ac510Module module(cfg);
        module.start();
        module.runUntil(window);
        transactions += module.aggregateStats().readsCompleted;
        events += module.queue().executed();
        benchmark::DoNotOptimize(transactions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(transactions));
    state.SetLabel("transactions");
    state.counters["sim_us_per_iter"] = ticksToUs(window);
    state.counters["events_per_iter"] = static_cast<double>(
        events / static_cast<std::uint64_t>(
                     state.iterations() ? state.iterations() : 1));
}
BENCHMARK(BM_FullPlatformSimulation)->Unit(benchmark::kMillisecond);

void
BM_AddressDecode(benchmark::State &state)
{
    const AddressMapper mapper(HmcConfig::gen2_4GB(),
                               MaxBlockSize::B128);
    Xoshiro256StarStar rng(5);
    for (auto _ : state) {
        const DecodedAddress d =
            mapper.decode(rng.nextBounded(4ull * gib));
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressDecode);

void
BM_ExperimentEndToEnd(benchmark::State &state)
{
    // Cost of one complete runExperiment (construction + warmup +
    // measurement), the unit of every sweep in bench/.
    for (auto _ : state) {
        ExperimentConfig cfg;
        cfg.warmup = 20 * tickUs;
        cfg.measure = 100 * tickUs;
        benchmark::DoNotOptimize(runExperiment(cfg).rawGBps);
    }
}
BENCHMARK(BM_ExperimentEndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    writeJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    const char *guard = std::getenv("HMCSIM_PERF_GUARD");
    if (guard && guard[0] == '1') {
        const SimcoreResults &r = results();
        int failures = 0;
        const auto require = [&failures](double speedup, double budget,
                                         const char *what) {
            if (speedup < budget) {
                std::fprintf(stderr,
                             "FAIL: %s is only %.2fx its per-packet "
                             "formulation (budget %.2fx)\n",
                             what, speedup, budget);
                ++failures;
            }
        };
        require(r.chainSpeedup(), 1.5,
                "calendar core (steady-chain workload)");
        require(r.mapperSpeedup(), 1.5, "precompiled address plan");
        // The stats comparator is latency-bound on the per-sample
        // Welford divide chain and its wall time swings ~40% with the
        // runner's frequency/alignment state (typical speedup
        // 1.5-1.6x). Guarded on the best interleaved pair
        // (statsBestRatio), which still bottoms out near ~1.18x on a
        // shared runner whose divide latency hides the batching win;
        // the budget sits under that floor -- the regression this
        // guard exists for (batched path no faster than per-sample)
        // reads ~1.0x.
        require(r.statsSpeedup(), 1.1, "batched stats flush");
        // The issue comparator is guarded on the best interleaved
        // pair (see issueBestRatio) and still swings 1.4-2.1x run to
        // run: both sides are a tight rng-and-mask loop whose wall
        // time tracks the runner's frequency state. Budget re-based
        // below the observed floor (was 1.5, tuned on a runner that
        // measured 1.74x) so the guard catches a real fast-path
        // regression without flaking on drift.
        require(r.issueSpeedup(), 1.3, "windowed GUPS issue");
        require(r.batchSpeedup(), 1.5,
                "batched vault stepping (bank-bound workload)");
        require(r.forkSpeedup(), 1.5,
                "snapshot-fork warmed sweep (per worker)");
        // The MemoryBackend interface must stay within 2% of the
        // direct bank array on the vault hot path.
        if (r.dispatchRatio() < 0.98) {
            std::fprintf(stderr,
                         "FAIL: virtual backend dispatch runs at "
                         "%.3fx the direct bank array (floor 0.98x, "
                         "i.e. <2%% overhead)\n",
                         r.dispatchRatio());
            ++failures;
        }
        if (r.platformWallMs > platformBudgetMs()) {
            std::fprintf(stderr,
                         "FAIL: fig06-style platform window took "
                         "%.2f ms (budget %.1f ms)\n",
                         r.platformWallMs, platformBudgetMs());
            ++failures;
        }
        if (failures)
            return 1;
    }
    return 0;
}
