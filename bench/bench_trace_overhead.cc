/**
 * @file
 * Zero-cost guard for lifecycle tracing (docs/observability.md).
 *
 * The tracing subsystem promises that a run with tracing *disabled*
 * pays nothing beyond one untaken branch per response. This bench
 * enforces that promise with an A/B comparison inside one binary:
 *
 *   A  legacy API            runExperiment(cfg, &digest)
 *   B  new API, tracing off  runExperiment(cfg, RunOptions{}, ...)
 *   C  tracing on, aggregate samplePeriod = 0 (no event stream)
 *   D  tracing on, sampled   samplePeriod = 64 -> ChromeTraceBuffer
 *
 * A and B execute the identical disabled fast path, so their min-of-N
 * wall clocks must agree to measurement noise; a gap means someone
 * added per-run work to the RunOptions surface. With
 * HMCSIM_TRACE_GUARD=1 in the environment (the CI overhead job), a
 * B-vs-A regression beyond 2 % fails the process. C and D quantify
 * the *enabled* cost, which is informational: tracing is opt-in.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstdio>

#include "bench_common.hh"
#include "sim/logging.hh"
#include "trace/trace_sink.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

/** The measured workload: full-scale ro GUPS, short window. */
ExperimentConfig
workload()
{
    ExperimentConfig cfg;
    cfg.pattern = patternAxis().front();
    cfg.warmup = 10 * tickUs;
    cfg.measure = 200 * tickUs;
    cfg.seed = benchSweepSeed;
    return cfg;
}

template <typename Fn>
double
minWallMs(unsigned reps, Fn &&run)
{
    double best = 0.0;
    for (unsigned i = 0; i < reps; ++i) {
        const auto start = std::chrono::steady_clock::now();
        run();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        if (i == 0 || ms < best)
            best = ms;
    }
    return best;
}

struct OverheadResults
{
    double legacyMs = 0.0;
    double disabledMs = 0.0;
    double aggregateMs = 0.0;
    double sampledMs = 0.0;

    double
    disabledOverheadPct() const
    {
        return 100.0 * (disabledMs - legacyMs) / legacyMs;
    }
};

const OverheadResults &
results()
{
    static const OverheadResults r = [] {
        const ExperimentConfig cfg = workload();
        constexpr unsigned reps = 5;
        OverheadResults out;

        // Interleave-free ordering is fine: min-of-N discards warm-up
        // and scheduler noise, which is what the guard compares.
        out.legacyMs = minWallMs(reps, [&cfg] {
            std::uint64_t digest = 0;
            benchmark::DoNotOptimize(runExperiment(cfg, &digest));
        });
        out.disabledMs = minWallMs(reps, [&cfg] {
            benchmark::DoNotOptimize(
                runExperiment(cfg, RunOptions{}, nullptr));
        });
        out.aggregateMs = minWallMs(reps, [&cfg] {
            RunOptions opts;
            opts.trace.enabled = true;
            opts.trace.samplePeriod = 0;
            benchmark::DoNotOptimize(
                runExperiment(cfg, opts, nullptr));
        });
        out.sampledMs = minWallMs(reps, [&cfg] {
            ChromeTraceBuffer buffer;
            RunOptions opts;
            opts.trace.enabled = true;
            opts.trace.samplePeriod = 64;
            opts.trace.sink = &buffer;
            benchmark::DoNotOptimize(
                runExperiment(cfg, opts, nullptr));
            benchmark::DoNotOptimize(buffer.events().size());
        });
        return out;
    }();
    return r;
}

void
printFigure()
{
    const OverheadResults &r = results();
    std::printf("\nLifecycle-tracing overhead: full-scale ro GUPS, "
                "200 us window, min of 5\n\n");
    TextTable table({"Path", "Wall ms", "vs legacy"});
    table.addRow({"legacy API (no tracing)", strfmt("%.1f", r.legacyMs),
                  "1.00x"});
    table.addRow({"RunOptions, tracing off",
                  strfmt("%.1f", r.disabledMs),
                  strfmt("%.2fx", r.disabledMs / r.legacyMs)});
    table.addRow({"tracing on, aggregate",
                  strfmt("%.1f", r.aggregateMs),
                  strfmt("%.2fx", r.aggregateMs / r.legacyMs)});
    table.addRow({"tracing on, 1-in-64 events",
                  strfmt("%.1f", r.sampledMs),
                  strfmt("%.2fx", r.sampledMs / r.legacyMs)});
    table.print();
    std::printf("\nDisabled-path overhead: %+.2f %% (guard threshold "
                "2 %%; enabled paths are informational)\n\n",
                r.disabledOverheadPct());
}

void
BM_TraceOverhead(benchmark::State &state)
{
    const OverheadResults &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["legacy_ms"] = r.legacyMs;
    state.counters["disabled_ms"] = r.disabledMs;
    state.counters["aggregate_ms"] = r.aggregateMs;
    state.counters["sampled_ms"] = r.sampledMs;
    state.counters["disabled_overhead_pct"] = r.disabledOverheadPct();
}
BENCHMARK(BM_TraceOverhead);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    const char *guard = std::getenv("HMCSIM_TRACE_GUARD");
    if (guard && guard[0] == '1' &&
        results().disabledOverheadPct() > 2.0) {
        std::fprintf(stderr,
                     "FAIL: disabled-tracing path is %.2f %% slower "
                     "than the legacy path (budget 2 %%)\n",
                     results().disabledOverheadPct());
        return 1;
    }
    return 0;
}
