/**
 * @file
 * Ablation: refresh-rate sensitivity.
 *
 * Sec. I of the paper notes that high temperature triggers more
 * frequent refresh, which costs both bandwidth and power. The
 * calibrated baseline folds nominal refresh into its DRAM rates; this
 * bench turns the explicit refresh engine on and sweeps the rate
 * multiplier (1x nominal, 2x hot, 4x stress) for a bank-bound pattern
 * (where refresh competes directly with accesses) and a distributed
 * pattern (where the link bound hides most of it).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    const char *pattern;
    double multiplier; // 0 = engine off
    double gbps;
    double refreshesPerMs;
};

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        const AccessPattern pats[2] = {bankPattern(defaultMapper(), 1),
                                       vaultPattern(defaultMapper(), 16)};
        const char *names[2] = {"1 bank", "16 vaults"};
        for (int p = 0; p < 2; ++p) {
            for (double mult : {0.0, 1.0, 2.0, 4.0}) {
                ExperimentConfig cfg;
                cfg.pattern = pats[p];
                cfg.device.vault.refreshEnabled = mult > 0.0;
                cfg.device.vault.refreshMultiplier =
                    mult > 0.0 ? mult : 1.0;
                const MeasurementResult m = runExperiment(cfg);

                // Re-run on a raw module to read refresh counters.
                Ac510Config sys;
                sys.port.mask = pats[p].mask;
                sys.device = cfg.device;
                Ac510Module module(sys);
                module.start();
                module.runUntil(1 * tickMs);
                std::uint64_t refreshes = 0;
                for (unsigned v = 0; v < module.device().numVaults();
                     ++v)
                    refreshes +=
                        module.device().vault(v).stats().refreshes;
                out.push_back({names[p], mult, m.rawGBps,
                               static_cast<double>(refreshes)});
            }
        }
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nAblation: refresh rate vs bandwidth (128 B random "
                "reads)\n\n");
    TextTable table({"Pattern", "Refresh", "Raw GB/s", "Refreshes/ms",
                     "vs no-refresh"});
    double base = 0.0;
    for (const Row &r : results()) {
        if (r.multiplier == 0.0)
            base = r.gbps;
        table.addRow({r.pattern,
                      r.multiplier == 0.0
                          ? std::string("off")
                          : strfmt("%.0fx", r.multiplier),
                      strfmt("%.2f", r.gbps),
                      strfmt("%.0f", r.refreshesPerMs),
                      strfmt("%+.1f%%", (r.gbps / base - 1.0) * 100.0)});
    }
    table.print();
    std::printf("\nBank-bound traffic loses bandwidth roughly in "
                "proportion to tRFC/tREFI per doubling; distributed "
                "traffic hides refresh behind the link bound until "
                "the rate is extreme. This is the refresh side of the "
                "paper's temperature story (Sec. I).\n\n");
}

void
BM_AblationRefresh(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["bank_off_GBps"] = rows[0].gbps;
    state.counters["bank_4x_GBps"] = rows[3].gbps;
    state.counters["dist_off_GBps"] = rows[4].gbps;
    state.counters["dist_4x_GBps"] = rows[7].gbps;
}
BENCHMARK(BM_AblationRefresh);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
