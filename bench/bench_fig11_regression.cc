/**
 * @file
 * Fig. 11 reproduction: linear-regression fits of (a) temperature and
 * (b) system power against bandwidth in Cfg2, per request type.
 *
 * Paper shapes to reproduce:
 *  - all slopes positive;
 *  - temperature rises ~3 C (ro) and ~4 C (rw) from 5 to 20 GB/s;
 *  - wo has the steepest temperature slope;
 *  - device power rises ~2 W from 5 to 20 GB/s.
 */

#include <benchmark/benchmark.h>

#include "analysis/regression.hh"
#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

constexpr RequestMix mixes[3] = {RequestMix::ReadOnly,
                                 RequestMix::WriteOnly,
                                 RequestMix::ReadModifyWrite};

struct Fig11Results
{
    LinearFit tempFit[3];
    LinearFit powerFit[3];
};

const Fig11Results &
results()
{
    static const Fig11Results r = [] {
        Fig11Results out;
        const PowerModel power;
        const CoolingConfig &cfg2 = coolingConfig(2);
        for (int m = 0; m < 3; ++m) {
            std::vector<double> bw, temps, watts;
            for (const AccessPattern &p : patternAxis()) {
                const MeasurementResult meas = measure(p, mixes[m], 128);
                const PowerThermalResult pt =
                    power.solve(meas.traffic(), mixes[m], cfg2);
                if (pt.failure)
                    continue; // Cfg2 fails nothing; kept for safety.
                bw.push_back(meas.rawGBps);
                temps.push_back(pt.temperatureC);
                watts.push_back(pt.systemW);
            }
            out.tempFit[m] = linearFit(bw, temps);
            out.powerFit[m] = linearFit(bw, watts);
        }
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig11Results &r = results();
    std::printf("\nFig. 11: temperature/power vs bandwidth linear "
                "fits in Cfg2\n\n");
    TextTable table({"Type", "T slope C/(GB/s)", "T @5GB/s", "T @20GB/s",
                     "dT 5->20", "P slope W/(GB/s)", "dP 5->20", "R^2(T)"});
    for (int m = 0; m < 3; ++m) {
        const LinearFit &t = r.tempFit[m];
        const LinearFit &p = r.powerFit[m];
        table.addRow({requestMixName(mixes[m]),
                      strfmt("%.3f", t.slope),
                      strfmt("%.1f C", t.at(5.0)),
                      strfmt("%.1f C", t.at(20.0)),
                      strfmt("%.1f C", t.at(20.0) - t.at(5.0)),
                      strfmt("%.3f", p.slope),
                      strfmt("%.1f W", p.at(20.0) - p.at(5.0)),
                      strfmt("%.2f", t.r2)});
    }
    table.print();
    std::printf("\nPaper: dT(ro) ~3 C, dT(rw) ~4 C over 5->20 GB/s; wo "
                "steepest; dP ~2 W.\n\n");
}

void
BM_Fig11_Regression(benchmark::State &state)
{
    const Fig11Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["ro_dT_5to20_C"] =
        r.tempFit[0].at(20.0) - r.tempFit[0].at(5.0);
    state.counters["rw_dT_5to20_C"] =
        r.tempFit[2].at(20.0) - r.tempFit[2].at(5.0);
    state.counters["wo_T_slope"] = r.tempFit[1].slope;
    state.counters["ro_dP_5to20_W"] =
        r.powerFit[0].at(20.0) - r.powerFit[0].at(5.0);
}
BENCHMARK(BM_Fig11_Regression);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
