/**
 * @file
 * Orchestration microbench: wall-clock of a fixed 12-point sweep at
 * 1 / 2 / 4 / 8 jobs, plus the multi-process section -- the same
 * campaign run by an in-process coordinator with N forked worker
 * processes over a shared result store (docs/runner.md), cold and
 * then shared-store-warm (the warm rerun must simulate nothing).
 *
 * The figure benches track what the simulator computes; this bench
 * tracks how fast the runner computes it, so later orchestration PRs
 * (multi-cube campaigns, calibration search, regression farms) can
 * show their speedup against a recorded baseline. The sweep is the
 * same shape as the determinism test in tests/test_runner.cc: four
 * patterns x three request sizes with a short measurement window.
 *
 * Splices a "dist" section into BENCH_simcore.json (HMCSIM_PERF_JSON
 * overrides the path); with HMCSIM_PERF_GUARD=1 the process fails if
 * the distributed JSONL diverges from the local serial bytes or the
 * warm rerun simulated anything.
 */

#include <benchmark/benchmark.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>

#include "bench_common.hh"
#include "dist/coordinator.hh"
#include "dist/store.hh"
#include "dist/worker.hh"
#include "runner/result_cache.hh"
#include "runner/sink.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

/** The 12-point campaign: 4 patterns x 3 sizes, short windows. */
SweepAxes
scalingAxes()
{
    SweepAxes axes;
    const std::vector<AccessPattern> &all = patternAxis();
    axes.patterns.assign(all.begin(), all.begin() + 4);
    axes.mixes = {RequestMix::ReadOnly};
    axes.sizes = {128, 64, 32};
    axes.base.warmup = 10 * tickUs;
    axes.base.measure = 200 * tickUs;
    return axes;
}

double
sweepWallMs(unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.sweepSeed = benchSweepSeed;
    SweepRunner runner(opts);
    const auto start = std::chrono::steady_clock::now();
    runner.run(scalingAxes());
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

struct ScalingResults
{
    double wallMs[4]; // jobs 1, 2, 4, 8
};

const ScalingResults &
results()
{
    static const ScalingResults r = [] {
        ScalingResults out{};
        const unsigned jobs[4] = {1, 2, 4, 8};
        for (int i = 0; i < 4; ++i)
            out.wallMs[i] = sweepWallMs(jobs[i]);
        return out;
    }();
    return r;
}

// ---------------------------------------------------------------------
// Multi-process section: coordinator + forked local workers
// ---------------------------------------------------------------------

constexpr unsigned distWorkers = 3;

struct DistResults
{
    double coldMs = 0.0;
    double warmMs = 0.0;
    std::uint64_t warmSimulated = 0;
    bool byteIdentical = false;
};

std::string
serialJsonl()
{
    std::ostringstream out;
    JsonLinesSink sink(out);
    SweepOptions opts;
    opts.jobs = 1;
    opts.sweepSeed = benchSweepSeed;
    opts.sinks = {&sink};
    SweepRunner(opts).run(scalingAxes());
    return out.str();
}

/** Fork a worker process that retries the connect until the
 *  coordinator listens, serves it to drain, then exits. */
pid_t
forkWorker(const std::string &connectSpec, const std::string &storeDir)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    WorkerOptions w;
    w.connectSpec = connectSpec;
    w.jobs = 1;
    w.storeDir = storeDir;
    for (int tries = 0; tries < 1000; ++tries) {
        if (runWorker(w) == 0)
            ::_exit(0);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ::_exit(1);
}

const DistResults &
distResults()
{
    static const DistResults r = [] {
        DistResults out{};
        const std::filesystem::path dir =
            std::filesystem::temp_directory_path() /
            "hmcsim_bench_dist_store";
        std::filesystem::remove_all(dir);
        const std::filesystem::path sock =
            std::filesystem::temp_directory_path() /
            "hmcsim_bench_dist.sock";
        std::filesystem::remove(sock);
        const std::string spec = "unix:" + sock.string();

        const auto coordinate = [&](double &wall_ms,
                                    DistSweepStats &stats,
                                    bool with_workers) {
            // The coordinator consults the store but never claims;
            // claiming is the workers' job.
            SharedResultStore store({dir.string(), 300});
            ResultCache cache(store);
            std::ostringstream text;
            JsonLinesSink sink(text);
            DistSweepOptions opts;
            opts.listenSpec = spec;
            opts.sweep.sweepSeed = benchSweepSeed;
            opts.sweep.cache = &cache;
            opts.sweep.sinks = {&sink};

            std::vector<pid_t> workers;
            if (with_workers)
                for (unsigned i = 0; i < distWorkers; ++i)
                    workers.push_back(forkWorker(spec, dir.string()));

            const auto start = std::chrono::steady_clock::now();
            runDistributedSweep(scalingAxes(), opts, &stats);
            const auto stop = std::chrono::steady_clock::now();
            wall_ms = std::chrono::duration<double, std::milli>(
                          stop - start)
                          .count();
            for (const pid_t pid : workers) {
                int status = 0;
                ::waitpid(pid, &status, 0);
            }
            return text.str();
        };

        DistSweepStats cold;
        const std::string coldJsonl =
            coordinate(out.coldMs, cold, true);

        // Shared-store-warm rerun: every point is already in the
        // store, so the coordinator never even listens.
        DistSweepStats warm;
        const std::string warmJsonl =
            coordinate(out.warmMs, warm, false);
        out.warmSimulated = warm.simulated;

        const std::string local = serialJsonl();
        out.byteIdentical =
            coldJsonl == local && warmJsonl == local;
        std::filesystem::remove_all(dir);
        return out;
    }();
    return r;
}

void
printFigure()
{
    const ScalingResults &r = results();
    std::printf("\nSweep orchestration scaling: 12-point campaign "
                "(4 patterns x 3 sizes)\n");
    std::printf("Hardware threads: %u (speedup is bounded by "
                "min(jobs, hardware threads))\n\n",
                ThreadPool::hardwareConcurrency());
    TextTable table({"Jobs", "Wall ms", "Speedup"});
    const unsigned jobs[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
        table.addRow({strfmt("%u", jobs[i]),
                      strfmt("%.0f", r.wallMs[i]),
                      strfmt("%.2fx", r.wallMs[0] / r.wallMs[i])});
    }
    table.print();
    std::printf("\nResults are bit-identical at every job count (the "
                "runner's determinism contract); only the wall clock "
                "changes.\n\n");

    const DistResults &d = distResults();
    std::printf("Multi-process: coordinator + %u forked workers over "
                "a shared result store\n\n",
                distWorkers);
    TextTable dist({"Run", "Wall ms", "vs local 1j"});
    dist.addRow({"local --jobs 1", strfmt("%.0f", r.wallMs[0]), "1.00x"});
    dist.addRow({"dist cold", strfmt("%.0f", d.coldMs),
                 strfmt("%.2fx", r.wallMs[0] / d.coldMs)});
    dist.addRow({"dist store-warm", strfmt("%.2f", d.warmMs),
                 strfmt("%.0fx", r.wallMs[0] / d.warmMs)});
    dist.print();
    std::printf("\nDistributed JSONL %s the local serial bytes; warm "
                "rerun simulated %llu point(s).\n\n",
                d.byteIdentical ? "matches" : "DIVERGES FROM",
                static_cast<unsigned long long>(d.warmSimulated));
}

/**
 * Splice the "dist" section into the perf-harness JSON
 * (BENCH_simcore.json): read what the earlier benches wrote, strip
 * the closing brace, append. Standalone when the file is absent.
 */
void
writeJson()
{
    const ScalingResults &r = results();
    const DistResults &d = distResults();
    const char *path = std::getenv("HMCSIM_PERF_JSON");
    if (!path)
        path = "BENCH_simcore.json";

    std::string existing;
    if (std::FILE *in = std::fopen(path, "r")) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
            existing.append(buf, n);
        std::fclose(in);
        while (!existing.empty() &&
               (existing.back() == '\n' || existing.back() == ' '))
            existing.pop_back();
        if (!existing.empty() && existing.back() == '}')
            existing.pop_back();
        else
            existing.clear(); // malformed; start fresh
    }

    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n", path);
        return;
    }
    if (existing.empty())
        std::fprintf(f, "{\n");
    else
        std::fprintf(f, "%s,\n", existing.c_str());
    std::fprintf(
        f,
        "  \"dist\": {\"points\": 12, \"workers\": %u, "
        "\"local_1j_ms\": %.3f, \"cold_ms\": %.3f, "
        "\"store_warm_ms\": %.3f, \"warm_simulated\": %llu, "
        "\"byte_identical\": %s}\n",
        distWorkers, r.wallMs[0], d.coldMs, d.warmMs,
        static_cast<unsigned long long>(d.warmSimulated),
        d.byteIdentical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (dist section)\n\n", path);
}

void
BM_RunnerScaling(benchmark::State &state)
{
    const ScalingResults &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["wall_1j_ms"] = r.wallMs[0];
    state.counters["wall_4j_ms"] = r.wallMs[2];
    state.counters["speedup_2j"] = r.wallMs[0] / r.wallMs[1];
    state.counters["speedup_4j"] = r.wallMs[0] / r.wallMs[2];
    state.counters["speedup_8j"] = r.wallMs[0] / r.wallMs[3];
    state.counters["hw_threads"] = ThreadPool::hardwareConcurrency();

    const DistResults &d = distResults();
    state.counters["dist_cold_ms"] = d.coldMs;
    state.counters["dist_warm_ms"] = d.warmMs;
}
BENCHMARK(BM_RunnerScaling);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    writeJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    const char *guard = std::getenv("HMCSIM_PERF_GUARD");
    if (guard && guard[0] == '1') {
        const DistResults &d = distResults();
        if (!d.byteIdentical) {
            std::fprintf(stderr,
                         "FAIL: distributed sweep output diverges "
                         "from the local serial bytes\n");
            return 1;
        }
        if (d.warmSimulated != 0) {
            std::fprintf(stderr,
                         "FAIL: shared-store-warm rerun simulated "
                         "%llu point(s) (expected 0)\n",
                         static_cast<unsigned long long>(
                             d.warmSimulated));
            return 1;
        }
    }
    return 0;
}
