/**
 * @file
 * Orchestration microbench: wall-clock of a fixed 12-point sweep at
 * 1 / 2 / 4 / 8 jobs.
 *
 * The figure benches track what the simulator computes; this bench
 * tracks how fast the runner computes it, so later orchestration PRs
 * (multi-cube campaigns, calibration search, regression farms) can
 * show their speedup against a recorded baseline. The sweep is the
 * same shape as the determinism test in tests/test_runner.cc: four
 * patterns x three request sizes with a short measurement window.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

/** The 12-point campaign: 4 patterns x 3 sizes, short windows. */
SweepAxes
scalingAxes()
{
    SweepAxes axes;
    const std::vector<AccessPattern> &all = patternAxis();
    axes.patterns.assign(all.begin(), all.begin() + 4);
    axes.mixes = {RequestMix::ReadOnly};
    axes.sizes = {128, 64, 32};
    axes.base.warmup = 10 * tickUs;
    axes.base.measure = 200 * tickUs;
    return axes;
}

double
sweepWallMs(unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.sweepSeed = benchSweepSeed;
    SweepRunner runner(opts);
    const auto start = std::chrono::steady_clock::now();
    runner.run(scalingAxes());
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

struct ScalingResults
{
    double wallMs[4]; // jobs 1, 2, 4, 8
};

const ScalingResults &
results()
{
    static const ScalingResults r = [] {
        ScalingResults out{};
        const unsigned jobs[4] = {1, 2, 4, 8};
        for (int i = 0; i < 4; ++i)
            out.wallMs[i] = sweepWallMs(jobs[i]);
        return out;
    }();
    return r;
}

void
printFigure()
{
    const ScalingResults &r = results();
    std::printf("\nSweep orchestration scaling: 12-point campaign "
                "(4 patterns x 3 sizes)\n");
    std::printf("Hardware threads: %u (speedup is bounded by "
                "min(jobs, hardware threads))\n\n",
                ThreadPool::hardwareConcurrency());
    TextTable table({"Jobs", "Wall ms", "Speedup"});
    const unsigned jobs[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
        table.addRow({strfmt("%u", jobs[i]),
                      strfmt("%.0f", r.wallMs[i]),
                      strfmt("%.2fx", r.wallMs[0] / r.wallMs[i])});
    }
    table.print();
    std::printf("\nResults are bit-identical at every job count (the "
                "runner's determinism contract); only the wall clock "
                "changes.\n\n");
}

void
BM_RunnerScaling(benchmark::State &state)
{
    const ScalingResults &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["wall_1j_ms"] = r.wallMs[0];
    state.counters["wall_4j_ms"] = r.wallMs[2];
    state.counters["speedup_2j"] = r.wallMs[0] / r.wallMs[1];
    state.counters["speedup_4j"] = r.wallMs[0] / r.wallMs[2];
    state.counters["speedup_8j"] = r.wallMs[0] / r.wallMs[3];
    state.counters["hw_threads"] = ThreadPool::hardwareConcurrency();
}
BENCHMARK(BM_RunnerScaling);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
