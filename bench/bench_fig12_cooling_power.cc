/**
 * @file
 * Fig. 12 reproduction: cooling power required to hold the HMC at a
 * fixed temperature as bandwidth grows, per request type.
 *
 * The paper derives this by combining the Table III cooling powers
 * (19.32/15.9/13.9/10.78 W) with linear regressions over the Fig. 9
 * measurements; we invert our calibrated thermal model the same way.
 * Shape to reproduce: every iso-temperature line rises with
 * bandwidth; on average ~1.5 W of extra cooling per +16 GB/s.
 */

#include <benchmark/benchmark.h>

#include <cmath>

#include "analysis/regression.hh"
#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

constexpr RequestMix mixes[3] = {RequestMix::ReadOnly,
                                 RequestMix::WriteOnly,
                                 RequestMix::ReadModifyWrite};
// Iso-temperature lines per subfigure, as in the paper's panels.
const std::vector<std::vector<double>> isoTemps = {
    {50, 55, 60, 65, 70}, // ro
    {45, 50},             // wo
    {45, 50, 55},         // rw
};

struct Fig12Results
{
    // [mix]: bandwidth grid and per-iso-temp cooling power rows.
    std::vector<std::vector<double>> bwGrid;
    std::vector<std::vector<std::vector<double>>> coolingW;
    double avgSlopePer16GBps = 0.0;
};

const Fig12Results &
results()
{
    static const Fig12Results r = [] {
        Fig12Results out;
        const PowerModel power;
        std::vector<double> slopes;
        for (int m = 0; m < 3; ++m) {
            // Traffic summaries along the pattern axis give realistic
            // payload mixes at each bandwidth point.
            std::vector<double> bws;
            std::vector<TrafficSummary> traffics;
            for (const AccessPattern &p : patternAxis()) {
                const MeasurementResult meas = measure(p, mixes[m], 128);
                bws.push_back(meas.rawGBps);
                traffics.push_back(meas.traffic());
            }
            out.bwGrid.push_back(bws);

            std::vector<std::vector<double>> rows;
            for (double iso : isoTemps[m]) {
                std::vector<double> row;
                std::vector<double> fit_x, fit_y;
                for (std::size_t i = 0; i < bws.size(); ++i) {
                    const double w =
                        power.requiredCoolingPower(traffics[i], iso);
                    row.push_back(w);
                    if (!std::isnan(w)) {
                        fit_x.push_back(bws[i]);
                        fit_y.push_back(w);
                    }
                }
                if (fit_x.size() >= 2)
                    slopes.push_back(linearFit(fit_x, fit_y).slope);
                rows.push_back(std::move(row));
            }
            out.coolingW.push_back(std::move(rows));
        }
        double sum = 0.0;
        for (double s : slopes)
            sum += s;
        out.avgSlopePer16GBps =
            slopes.empty() ? 0.0 : 16.0 * sum / slopes.size();
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig12Results &r = results();
    const char *titles[3] = {"(a) read-only", "(b) write-only",
                             "(c) read-modify-write"};
    std::printf("\nFig. 12: required cooling power (W) to hold a "
                "target temperature vs bandwidth\n");
    for (int m = 0; m < 3; ++m) {
        std::printf("\n%s\n\n", titles[m]);
        std::vector<std::string> headers = {"BW GB/s"};
        for (double iso : isoTemps[m])
            headers.push_back(strfmt("%.0f C", iso));
        TextTable table(std::move(headers));
        for (std::size_t i = 0; i < r.bwGrid[m].size(); ++i) {
            std::vector<std::string> row = {
                strfmt("%.1f", r.bwGrid[m][i])};
            for (std::size_t t = 0; t < isoTemps[m].size(); ++t) {
                const double w = r.coolingW[m][t][i];
                row.push_back(std::isnan(w) ? std::string("--")
                                            : strfmt("%.1f", w));
            }
            table.addRow(std::move(row));
        }
        table.print();
    }
    std::printf("\nAverage extra cooling power per +16 GB/s: %.2f W "
                "(paper: ~1.5 W)\n\n",
                r.avgSlopePer16GBps);
}

void
BM_Fig12_CoolingPower(benchmark::State &state)
{
    const Fig12Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["avg_coolingW_per_16GBps"] = r.avgSlopePer16GBps;
}
BENCHMARK(BM_Fig12_CoolingPower);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
