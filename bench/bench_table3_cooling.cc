/**
 * @file
 * Table III reproduction: the four cooling configurations with their
 * fan settings, computed cooling powers, and idle HMC temperatures,
 * plus the model's idle steady state (which must reproduce the
 * measured idle temperatures by construction).
 */

#include <benchmark/benchmark.h>

#include "analysis/table.hh"
#include "thermal/thermal_model.hh"

namespace
{

using namespace hmcsim;

void
printTable3()
{
    std::printf("\nTable III: experiment cooling configurations\n\n");
    TextTable table({"Configuration", "Voltage", "Current",
                     "Fan distance", "Cooling power", "Idle temp",
                     "Model idle", "R_th (fit)"});
    for (const CoolingConfig &cfg : coolingConfigs()) {
        const ThermalModel model(cfg);
        const double idle =
            model.steadyState(0.0, RequestMix::ReadOnly).temperatureC;
        table.addRow({cfg.name, strfmt("%.1f V", cfg.fanVoltage),
                      strfmt("%.2f A", cfg.fanCurrent),
                      strfmt("%.0f cm", cfg.fanDistanceCm),
                      strfmt("%.2f W", cfg.coolingPowerW),
                      strfmt("%.1f C", cfg.idleTemperatureC),
                      strfmt("%.1f C", idle),
                      strfmt("%.2f C/W", cfg.thermalResistance)});
    }
    table.print();
    std::printf("\nReliability bounds: %.0f C (read-intensive), "
                "%.0f C (write-heavy)\n\n",
                readTemperatureLimitC, writeTemperatureLimitC);
}

void
BM_Table3(benchmark::State &state)
{
    const CoolingConfig &cfg2 = coolingConfig(2);
    const ThermalModel model(cfg2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model.steadyState(3.0, RequestMix::ReadOnly).temperatureC);
    state.counters["cfg1_idle_C"] = coolingConfig(1).idleTemperatureC;
    state.counters["cfg4_idle_C"] = coolingConfig(4).idleTemperatureC;
    state.counters["cfg1_cooling_W"] = coolingConfig(1).coolingPowerW;
    state.counters["cfg4_cooling_W"] = coolingConfig(4).coolingPowerW;
}
BENCHMARK(BM_Table3);

} // namespace

int
main(int argc, char **argv)
{
    printTable3();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
