/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench follows the same pattern: run the paper's sweep once
 * (cached), print the same rows/series the paper reports, and expose
 * headline values as google-benchmark counters.
 *
 * Since PR 2 the sweeps route through the parallel SweepRunner
 * (src/runner/): multi-point benches expand their axes into one job
 * list and measure it across all cores, and every per-point seed --
 * serial or parallel -- derives from benchSweepSeed and the config's
 * content digest, so printed values are identical at any job count.
 */

#ifndef HMCSIM_BENCH_COMMON_HH
#define HMCSIM_BENCH_COMMON_HH

#include <string>
#include <utility>
#include <vector>

#include "analysis/table.hh"
#include "host/experiment.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"

namespace hmcsim::benchutil
{

/** The mapper used to build the paper's access patterns. */
inline const AddressMapper &
defaultMapper()
{
    static const AddressMapper mapper(HmcConfig::gen2_4GB(),
                                      MaxBlockSize::B128);
    return mapper;
}

/** The paper's canonical pattern axis (16 vaults .. 1 bank). */
inline const std::vector<AccessPattern> &
patternAxis()
{
    static const std::vector<AccessPattern> axis =
        paperPatternAxis(defaultMapper());
    return axis;
}

/** Campaign seed every bench sweep derives its per-point seeds from. */
inline constexpr std::uint64_t benchSweepSeed = 1;

/** One full-scale GUPS measurement point with default hardware. */
inline ExperimentConfig
pointConfig(const AccessPattern &pattern, RequestMix mix, Bytes size,
            AddressingMode mode = AddressingMode::Random,
            unsigned ports = maxGupsPorts)
{
    ExperimentConfig cfg;
    cfg.pattern = pattern;
    cfg.mix = mix;
    cfg.requestSize = size;
    cfg.mode = mode;
    cfg.numPorts = ports;
    return cfg;
}

/**
 * Measure @p points through the sweep runner and return the results
 * in input order. @p jobs 0 = all hardware threads.
 */
inline std::vector<MeasurementResult>
measureSweep(std::vector<ExperimentConfig> points, unsigned jobs = 0)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.sweepSeed = benchSweepSeed;
    SweepRunner runner(opts);
    std::vector<MeasurementResult> out;
    for (SweepPointResult &point : runner.run(std::move(points)))
        out.push_back(std::move(point.result));
    return out;
}

/** Expand @p axes (windows/device from axes.base) and measure. */
inline std::vector<MeasurementResult>
measureSweep(const SweepAxes &axes, unsigned jobs = 0)
{
    return measureSweep(axes.expand(), jobs);
}

/**
 * Run one full-scale GUPS measurement with default hardware. Routes
 * through the runner's serial path, so the seed derivation (and thus
 * the printed value) matches the same point inside any parallel
 * sweep.
 */
inline MeasurementResult
measure(const AccessPattern &pattern, RequestMix mix, Bytes size,
        AddressingMode mode = AddressingMode::Random,
        unsigned ports = maxGupsPorts)
{
    return measureSweep({pointConfig(pattern, mix, size, mode, ports)},
                        1)
        .front();
}

} // namespace hmcsim::benchutil

#endif // HMCSIM_BENCH_COMMON_HH
