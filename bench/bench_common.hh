/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench follows the same pattern: run the paper's sweep once
 * (cached), print the same rows/series the paper reports, and expose
 * headline values as google-benchmark counters.
 */

#ifndef HMCSIM_BENCH_COMMON_HH
#define HMCSIM_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "analysis/table.hh"
#include "host/experiment.hh"

namespace hmcsim::benchutil
{

/** The mapper used to build the paper's access patterns. */
inline const AddressMapper &
defaultMapper()
{
    static const AddressMapper mapper(HmcConfig::gen2_4GB(),
                                      MaxBlockSize::B128);
    return mapper;
}

/** The paper's canonical pattern axis (16 vaults .. 1 bank). */
inline const std::vector<AccessPattern> &
patternAxis()
{
    static const std::vector<AccessPattern> axis =
        paperPatternAxis(defaultMapper());
    return axis;
}

/** Run one full-scale GUPS measurement with default hardware. */
inline MeasurementResult
measure(const AccessPattern &pattern, RequestMix mix, Bytes size,
        AddressingMode mode = AddressingMode::Random,
        unsigned ports = maxGupsPorts)
{
    ExperimentConfig cfg;
    cfg.pattern = pattern;
    cfg.mix = mix;
    cfg.requestSize = size;
    cfg.mode = mode;
    cfg.numPorts = ports;
    return runExperiment(cfg);
}

} // namespace hmcsim::benchutil

#endif // HMCSIM_BENCH_COMMON_HH
