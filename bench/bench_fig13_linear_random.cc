/**
 * @file
 * Fig. 13 reproduction: read-only bandwidth for linear vs random
 * addressing across request sizes, for 16-vault and 1-vault patterns,
 * plus the open-page DDR baseline contrast of Sec. IV-D.
 *
 * Paper shapes to reproduce:
 *  - with the closed-page policy, linear and random bandwidth are
 *    nearly identical (random marginally ahead: fewer conflicts on
 *    shared resources);
 *  - bandwidth grows from 16 B to 128 B requests (packet overhead
 *    amortization and 32 B DRAM bus efficiency);
 *  - on an open-page DDR channel, linear traffic wins big through
 *    row-buffer hits -- the locality advantage HMC deliberately gives
 *    up (closed page, 256 B rows).
 */

#include <benchmark/benchmark.h>

#include "baseline/ddr_channel.hh"
#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

constexpr Bytes sizes[] = {128, 112, 96, 80, 64, 48, 32, 16};

struct Fig13Results
{
    // [pattern 0=16v,1=1v][mode 0=linear,1=random][size]
    double gbps[2][2][8];
    DdrMeasurement ddrLinear, ddrRandom;
};

const Fig13Results &
results()
{
    static const Fig13Results r = [] {
        Fig13Results out{};
        const AccessPattern pats[2] = {vaultPattern(defaultMapper(), 16),
                                       vaultPattern(defaultMapper(), 1)};
        for (int p = 0; p < 2; ++p) {
            for (int mode = 0; mode < 2; ++mode) {
                for (int s = 0; s < 8; ++s) {
                    out.gbps[p][mode][s] =
                        measure(pats[p], RequestMix::ReadOnly, sizes[s],
                                mode == 0 ? AddressingMode::Linear
                                          : AddressingMode::Random)
                            .rawGBps;
                }
            }
        }
        // Baseline: open-page DDR4 channel, 64 B requests at modest
        // concurrency (8 in flight) so row-buffer locality matters.
        const DdrChannelConfig ddr;
        out.ddrLinear = measureDdrPattern(ddr, true, 64, 8, 200000);
        out.ddrRandom = measureDdrPattern(ddr, false, 64, 8, 200000);
        return out;
    }();
    return r;
}

void
printFigure()
{
    const Fig13Results &r = results();
    std::printf("\nFig. 13: HMC bandwidth for random vs linear "
                "read-only requests (closed page)\n\n");
    std::vector<std::string> headers = {"Pattern", "Mode"};
    for (Bytes s : sizes)
        headers.push_back(strfmt("%lluB",
                                 static_cast<unsigned long long>(s)));
    TextTable table(std::move(headers));
    const char *pat_names[2] = {"16 vaults", "1 vault"};
    const char *mode_names[2] = {"linear", "random"};
    for (int p = 0; p < 2; ++p) {
        for (int mode = 0; mode < 2; ++mode) {
            std::vector<std::string> row = {pat_names[p],
                                            mode_names[mode]};
            for (int s = 0; s < 8; ++s)
                row.push_back(strfmt("%.1f", r.gbps[p][mode][s]));
            table.addRow(std::move(row));
        }
    }
    table.print();

    std::printf("\nBaseline contrast (open-page DDR4-like channel, "
                "64 B reads):\n");
    std::printf("  linear: %.1f GB/s, row-hit rate %.0f%%, "
                "avg latency %.0f ns\n",
                r.ddrLinear.gbps, r.ddrLinear.rowHitRate * 100.0,
                r.ddrLinear.avgLatencyNs);
    std::printf("  random: %.1f GB/s, row-hit rate %.0f%%, "
                "avg latency %.0f ns\n",
                r.ddrRandom.gbps, r.ddrRandom.rowHitRate * 100.0,
                r.ddrRandom.avgLatencyNs);
    std::printf("\nHMC linear/random ratio at 128 B (16 vaults): %.3f "
                "(paper ~1); DDR linear/random: %.2f (open-page "
                "locality)\n\n",
                r.gbps[0][0][0] / r.gbps[0][1][0],
                r.ddrLinear.gbps / r.ddrRandom.gbps);
}

void
BM_Fig13_LinearRandom(benchmark::State &state)
{
    const Fig13Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["hmc_linear_128B"] = r.gbps[0][0][0];
    state.counters["hmc_random_128B"] = r.gbps[0][1][0];
    state.counters["hmc_random_16B"] = r.gbps[0][1][7];
    state.counters["ddr_linear_over_random"] =
        r.ddrLinear.gbps / r.ddrRandom.gbps;
}
BENCHMARK(BM_Fig13_LinearRandom);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
