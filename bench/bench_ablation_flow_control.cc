/**
 * @file
 * Ablation: cube input-buffer size (token-based flow control).
 *
 * The Fig. 14 request flow-control unit pauses request generation
 * when the cube's link input buffer runs out of tokens. The measured
 * system never shows this limit (the 9x64 read tag pools bind first),
 * so the calibrated model leaves it unlimited; this bench engages it
 * and sweeps the buffer size to show the regimes: token-starved
 * (throughput ~= tokens/RTT), transition, and tag-limited (the
 * paper's operating point).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    unsigned bufferFlits; // per link; 0 = unlimited
    double roGBps;
    double roLatUs;
    double woGBps;
    double stallsPerMreq;
};

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        for (unsigned flits : {8u, 16u, 32u, 64u, 128u, 256u, 0u}) {
            Row row;
            row.bufferFlits = flits;

            ExperimentConfig ro;
            ro.controller.inputBufferFlits = flits;
            ro.measure = 500 * tickUs;
            const MeasurementResult ro_m = runExperiment(ro);
            row.roGBps = ro_m.rawGBps;
            row.roLatUs = ro_m.readLatencyNs.mean() / 1000.0;

            ExperimentConfig wo = ro;
            wo.mix = RequestMix::WriteOnly;
            row.woGBps = runExperiment(wo).rawGBps;

            // Count stalls on a raw module.
            Ac510Config sys = makeSystemConfig(ro);
            Ac510Module module(sys);
            module.start();
            module.runUntil(500 * tickUs);
            const double mreq =
                static_cast<double>(
                    module.aggregateStats().readsCompleted) /
                1e6;
            row.stallsPerMreq =
                mreq > 0 ? static_cast<double>(
                               module.controller()
                                   .stats()
                                   .flowControlStalls) /
                               mreq
                         : 0.0;
            out.push_back(row);
        }
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nAblation: cube input-buffer tokens per link "
                "(128 B random, 16 vaults)\n\n");
    TextTable table({"Buffer flits", "ro GB/s", "ro lat us", "wo GB/s",
                     "Stalls/Mreq"});
    for (const Row &r : results()) {
        table.addRow({r.bufferFlits ? strfmt("%u", r.bufferFlits)
                                    : std::string("unlimited"),
                      strfmt("%.1f", r.roGBps),
                      strfmt("%.2f", r.roLatUs),
                      strfmt("%.1f", r.woGBps),
                      strfmt("%.0f", r.stallsPerMreq)});
    }
    table.print();

    const auto &rows = results();
    std::printf("\nSmall buffers throttle throughput to roughly "
                "tokens/RTT (and hit 9-flit write requests %.1fx "
                "harder than 1-flit reads at 8 flits: %.1f vs %.1f "
                "GB/s); beyond ~%u flits per link the tag pools bind "
                "first and the stop signal goes quiet -- consistent "
                "with the paper's measurements never exposing the "
                "input buffer.\n\n",
                rows[0].roGBps / std::max(rows[0].woGBps, 0.1),
                rows[0].woGBps, rows[0].roGBps, 256u);
}

void
BM_AblationFlowControl(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["ro_8flits_GBps"] = rows[0].roGBps;
    state.counters["ro_unlimited_GBps"] = rows.back().roGBps;
    state.counters["stalls_8flits_per_Mreq"] = rows[0].stallsPerMreq;
}
BENCHMARK(BM_AblationFlowControl);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
