/**
 * @file
 * Fleet service throughput: host-side cost of serving an open-loop
 * request stream across a 16-node fleet (src/service/,
 * docs/service.md). Not a paper artifact -- this is the bench that
 * tells a user how many simulated service requests per wall second
 * the subsystem sustains, and it doubles as the service entry of the
 * perf-regression harness:
 *
 *  - a 16-node, 100k-request MMPP campaign is served serially
 *    (--jobs 1) and in parallel (hardware concurrency), and the two
 *    aggregate digests are asserted byte-identical before anything is
 *    timed (the determinism contract is a precondition of the
 *    numbers meaning anything);
 *  - the parallel wall time and requests/sec are appended as a
 *    "service" section to BENCH_simcore.json (HMCSIM_PERF_JSON
 *    overrides the path) next to the simcore sections
 *    bench_simulator_perf.cc writes;
 *  - with HMCSIM_PERF_GUARD=1 the process fails when the parallel
 *    fleet run exceeds its wall budget
 *    (HMCSIM_PERF_SERVICE_BUDGET_MS overrides the default).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hh"
#include "service/fleet.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

/** The acceptance-scale campaign: 16 nodes, 100k open-loop requests
 *  of bursty (MMPP) traffic, keyed routing. */
FleetConfig
campaignConfig(unsigned jobs)
{
    FleetConfig cfg;
    cfg.numNodes = 16;
    cfg.requests = 100000;
    cfg.arrival.kind = ArrivalKind::Mmpp;
    cfg.arrival.ratePerSec = 2e7;
    cfg.arrival.burstRatePerSec = 8e7;
    cfg.router = RouterPolicy::Keyed;
    cfg.seed = 2026;
    cfg.jobs = jobs;
    return cfg;
}

struct ServiceResults
{
    std::uint64_t requests = 0;
    double serialWallMs = 0.0;
    double parallelWallMs = 0.0;
    double aggregateMrps = 0.0;
    double sojournP50Ns = 0.0;
    double sojournP99Ns = 0.0;
    double sojournP999Ns = 0.0;
    std::uint64_t aggregateDigest = 0;

    double speedup() const { return serialWallMs / parallelWallMs; }

    /** Simulated service requests completed per wall second, on the
     *  parallel run. */
    double
    requestsPerWallSec() const
    {
        return static_cast<double>(requests) / (parallelWallMs / 1e3);
    }
};

template <typename Fn>
double
wallMs(Fn &&run)
{
    const auto start = std::chrono::steady_clock::now();
    run();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

const ServiceResults &
results()
{
    static const ServiceResults r = [] {
        ServiceResults out;

        FleetResult serial;
        out.serialWallMs =
            wallMs([&] { serial = runFleet(campaignConfig(1)); });
        FleetResult parallel;
        out.parallelWallMs =
            wallMs([&] { parallel = runFleet(campaignConfig(0)); });

        // Byte identity before timing means anything: the parallel
        // fleet must reproduce the serial one exactly.
        if (serial.aggregate.digest() != parallel.aggregate.digest())
            fatal("parallel fleet diverges from the serial run");
        for (std::size_t n = 0; n < serial.nodes.size(); ++n) {
            if (serial.nodes[n].digest() != parallel.nodes[n].digest())
                fatal("node %zu diverges between --jobs 1 and "
                      "parallel",
                      n);
        }

        out.requests = parallel.aggregate.requests;
        out.aggregateMrps = parallel.aggregate.throughputMrps();
        out.sojournP50Ns = parallel.aggregate.sojournP50Ns();
        out.sojournP99Ns = parallel.aggregate.sojournP99Ns();
        out.sojournP999Ns = parallel.aggregate.sojournP999Ns();
        out.aggregateDigest = parallel.aggregate.digest();
        return out;
    }();
    return r;
}

/** Parallel-run wall budget in ms for the perf guard (override with
 *  HMCSIM_PERF_SERVICE_BUDGET_MS). The campaign takes ~1-2 s on a
 *  2020s laptop core count; the budget leaves headroom for loaded CI
 *  runners while still catching an order-of-magnitude regression. */
double
serviceBudgetMs()
{
    if (const char *env =
            std::getenv("HMCSIM_PERF_SERVICE_BUDGET_MS")) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return 20000.0;
}

void
printFigure()
{
    const ServiceResults &r = results();
    std::printf("\nFleet service throughput (16 nodes, %llu open-loop "
                "MMPP requests, keyed routing)\n\n",
                static_cast<unsigned long long>(r.requests));
    TextTable table({"Run", "Wall ms", "Requests/wall-s"});
    table.addRow({"--jobs 1", strfmt("%.0f", r.serialWallMs),
                  strfmt("%.0f", static_cast<double>(r.requests) /
                                     (r.serialWallMs / 1e3))});
    table.addRow({"parallel", strfmt("%.0f", r.parallelWallMs),
                  strfmt("%.0f", r.requestsPerWallSec())});
    table.print();
    std::printf("\nParallel speedup %.2fx; aggregate %.2f MRPS "
                "simulated; sojourn p50/p99/p999 = %.0f/%.0f/%.0f ns; "
                "aggregate digest %016llx (byte-identical across "
                "--jobs by construction)\n\n",
                r.speedup(), r.aggregateMrps, r.sojournP50Ns,
                r.sojournP99Ns, r.sojournP999Ns,
                static_cast<unsigned long long>(r.aggregateDigest));
}

/**
 * Append the "service" section to the perf-harness JSON
 * (BENCH_simcore.json): read the file bench_simulator_perf.cc wrote,
 * strip the closing brace, splice the section in. When the file does
 * not exist yet the section is written standalone, so the bench also
 * works outside the perf-smoke pipeline.
 */
void
writeJson()
{
    const ServiceResults &r = results();
    const char *path = std::getenv("HMCSIM_PERF_JSON");
    if (!path)
        path = "BENCH_simcore.json";

    std::string existing;
    if (std::FILE *in = std::fopen(path, "r")) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
            existing.append(buf, n);
        std::fclose(in);
        // Strip trailing whitespace and the closing brace.
        while (!existing.empty() &&
               (existing.back() == '\n' || existing.back() == ' '))
            existing.pop_back();
        if (!existing.empty() && existing.back() == '}')
            existing.pop_back();
        else
            existing.clear(); // malformed; start fresh
    }

    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n", path);
        return;
    }
    if (existing.empty())
        std::fprintf(f, "{\n");
    else
        std::fprintf(f, "%s,\n", existing.c_str());
    std::fprintf(
        f,
        "  \"service\": {\"nodes\": 16, \"requests\": %llu, "
        "\"serial_wall_ms\": %.3f, \"parallel_wall_ms\": %.3f, "
        "\"parallel_speedup\": %.3f, "
        "\"requests_per_wall_sec\": %.0f, "
        "\"aggregate_mrps\": %.3f, "
        "\"sojourn_p50_ns\": %.1f, \"sojourn_p99_ns\": %.1f, "
        "\"sojourn_p999_ns\": %.1f, "
        "\"aggregate_digest\": \"%016llx\", "
        "\"budget_wall_ms\": %.1f}\n",
        static_cast<unsigned long long>(r.requests), r.serialWallMs,
        r.parallelWallMs, r.speedup(), r.requestsPerWallSec(),
        r.aggregateMrps, r.sojournP50Ns, r.sojournP99Ns,
        r.sojournP999Ns,
        static_cast<unsigned long long>(r.aggregateDigest),
        serviceBudgetMs());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (service section)\n\n", path);
}

void
BM_FleetServe(benchmark::State &state)
{
    // One full parallel fleet campaign per iteration.
    for (auto _ : state) {
        const FleetResult res = runFleet(campaignConfig(0));
        benchmark::DoNotOptimize(res.aggregate.requests);
    }
    const ServiceResults &r = results();
    state.counters["requests_per_wall_s"] = r.requestsPerWallSec();
    state.counters["sojourn_p999_ns"] = r.sojournP999Ns;
}
BENCHMARK(BM_FleetServe)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    writeJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    const char *guard = std::getenv("HMCSIM_PERF_GUARD");
    if (guard && guard[0] == '1') {
        const ServiceResults &r = results();
        if (r.parallelWallMs > serviceBudgetMs()) {
            std::fprintf(stderr,
                         "FAIL: 16-node fleet campaign took %.0f ms "
                         "(budget %.0f ms)\n",
                         r.parallelWallMs, serviceBudgetMs());
            return 1;
        }
    }
    return 0;
}
