/**
 * @file
 * Extension bench: HMC vs a conventional DDR4 channel.
 *
 * The paper's introduction frames HMC against processor-centric
 * DIMM-based memory. This bench makes the trade concrete on our two
 * substrates: a DDR4-2400-like open-page channel (19.2 GB/s peak,
 * large rows, row-buffer locality) vs the simulated HMC (two
 * half-width links, 16 vaults, closed page). Four workload shapes:
 * dense linear streams, random accesses, both at low and high
 * concurrency.
 */

#include <benchmark/benchmark.h>

#include "analysis/table.hh"
#include "baseline/ddr_channel.hh"
#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    const char *workload;
    double ddrGBps;
    double ddrLatNs;
    double hmcGBps;
    double hmcLatNs;
};

/** HMC side: replay the matching shape with a bounded window. */
MeasurementResult
hmcRun(bool linear, unsigned ports)
{
    ExperimentConfig cfg;
    cfg.mode = linear ? AddressingMode::Linear : AddressingMode::Random;
    cfg.requestSize = 64;
    cfg.numPorts = ports;
    cfg.measure = 500 * tickUs;
    return runExperiment(cfg);
}

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        const DdrChannelConfig ddr;

        struct Shape
        {
            const char *name;
            bool linear;
            unsigned ddrOutstanding;
            unsigned hmcPorts;
        };
        const Shape shapes[] = {
            {"linear, low concurrency (4)", true, 4, 1},
            {"random, low concurrency (4)", false, 4, 1},
            {"linear, high concurrency", true, 64, 9},
            {"random, high concurrency", false, 64, 9},
        };
        for (const Shape &shape : shapes) {
            const DdrMeasurement d = measureDdrPattern(
                ddr, shape.linear, 64, shape.ddrOutstanding, 200000);
            const MeasurementResult h =
                hmcRun(shape.linear, shape.hmcPorts);
            // Compare payload movement: the DDR number is payload-only.
            out.push_back({shape.name, d.gbps, d.avgLatencyNs,
                           h.readPayloadGBps, h.readLatencyNs.mean()});
        }
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nHMC vs DDR4 channel (64 B reads; payload GB/s)\n\n");
    TextTable table({"Workload", "DDR4 GB/s", "DDR4 lat ns",
                     "HMC GB/s", "HMC lat ns"});
    for (const Row &r : results()) {
        table.addRow({r.workload, strfmt("%.1f", r.ddrGBps),
                      strfmt("%.0f", r.ddrLatNs),
                      strfmt("%.1f", r.hmcGBps),
                      strfmt("%.0f", r.hmcLatNs)});
    }
    table.print();

    const auto &rows = results();
    std::printf("\nThe trade the paper describes: DDR wins idle "
                "latency (%.0f vs %.0f ns -- HMC pays ~547 ns of "
                "packet infrastructure) while HMC wins concurrent "
                "bandwidth (%.1f vs %.1f GB/s on high-concurrency "
                "random traffic, %.1fx) by exposing 256-bank "
                "parallelism behind packet-switched links.\n\n",
                rows[1].ddrLatNs, rows[1].hmcLatNs, rows[3].hmcGBps,
                rows[3].ddrGBps, rows[3].hmcGBps / rows[3].ddrGBps);
}

void
BM_BaselineDdr(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["ddr_random_hi_GBps"] = rows[3].ddrGBps;
    state.counters["hmc_random_hi_GBps"] = rows[3].hmcGBps;
    state.counters["ddr_lat_lo_ns"] = rows[1].ddrLatNs;
    state.counters["hmc_lat_lo_ns"] = rows[1].hmcLatNs;
}
BENCHMARK(BM_BaselineDdr);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
