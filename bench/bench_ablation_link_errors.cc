/**
 * @file
 * Ablation: lane bit-error rate vs bandwidth and latency.
 *
 * The HMC packet protocol spends a flit of CRC/sequence overhead per
 * packet precisely to enable link-level retry (Sec. II-B). This bench
 * sweeps the lane BER and shows the retry machinery converting lane
 * errors into bandwidth/latency degradation instead of data loss --
 * the "package-level fault tolerance" the paper credits the packet-
 * switched interface with (Sec. IV-E2).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    double ber;
    double gbps;
    double latencyUs;
    double retriesPerMreq;
};

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        for (double ber : {0.0, 1e-9, 1e-7, 1e-6, 5e-6}) {
            Ac510Config sys;
            sys.controller.bitErrorRate = ber;
            Ac510Module module(sys);
            module.start();
            module.runUntil(100 * tickUs);
            module.resetPortStats();
            const std::uint64_t retries0 =
                module.controller().linkRetries();
            module.runUntil(1100 * tickUs);
            const GupsPortStats agg = module.aggregateStats();
            const double seconds = 1e-3;
            const double gbps =
                toGBps(static_cast<double>(agg.rawBytes) / seconds);
            const double mreq =
                static_cast<double>(agg.readsCompleted) / 1e6;
            out.push_back(
                {ber, gbps, agg.readLatencyNs.mean() / 1000.0,
                 static_cast<double>(module.controller().linkRetries() -
                                     retries0) /
                     mreq});
        }
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nAblation: lane bit-error rate (128 B random reads, "
                "16 vaults)\n\n");
    TextTable table({"BER", "Raw GB/s", "Avg latency us",
                     "Retries per Mreq"});
    for (const Row &r : results()) {
        table.addRow({r.ber == 0.0 ? std::string("0")
                                   : strfmt("%.0e", r.ber),
                      strfmt("%.2f", r.gbps),
                      strfmt("%.2f", r.latencyUs),
                      strfmt("%.0f", r.retriesPerMreq)});
    }
    table.print();
    std::printf("\nRetries remain invisible below ~1e-7 BER, then "
                "start costing bandwidth; data integrity is never "
                "compromised (every corrupted packet is caught by CRC "
                "and resent).\n\n");
}

void
BM_AblationLinkErrors(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["clean_GBps"] = rows[0].gbps;
    state.counters["ber5e6_GBps"] = rows.back().gbps;
    state.counters["ber5e6_retries_per_Mreq"] =
        rows.back().retriesPerMreq;
}
BENCHMARK(BM_AblationLinkErrors);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
