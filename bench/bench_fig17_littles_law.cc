/**
 * @file
 * Fig. 17 reproduction: latency vs request bandwidth for four-bank
 * and two-bank access patterns, swept with small-scale GUPS (1..9
 * active ports), plus the paper's Little's-law analysis of the vault
 * controller at the saturation point.
 *
 * Paper shapes to reproduce:
 *  - latency saturates beyond a knee bandwidth that depends on the
 *    packet size;
 *  - applying Little's law at the knee yields an occupancy that is
 *    constant across packet sizes, and the two-bank occupancy is
 *    about half the four-bank occupancy (per-bank queuing).
 */

#include <benchmark/benchmark.h>

#include <array>

#include "analysis/regression.hh"
#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

constexpr std::array<Bytes, 4> sizes = {16, 32, 64, 128};

struct Curve
{
    Bytes size;
    std::vector<LatencyBandwidthPoint> points;
    double kneeOccupancy = 0.0; ///< requests in flight at the knee
};

struct Fig17Results
{
    std::vector<Curve> fourBanks;
    std::vector<Curve> twoBanks;
};

std::vector<Curve>
sweepPattern(const AccessPattern &pattern)
{
    std::vector<Curve> curves;
    for (Bytes size : sizes) {
        Curve c;
        c.size = size;
        for (unsigned ports = 1; ports <= maxGupsPorts; ++ports) {
            const MeasurementResult m =
                measure(pattern, RequestMix::ReadOnly, size,
                        AddressingMode::Random, ports);
            c.points.push_back(
                {m.rawGBps, m.readLatencyNs.mean() / 1000.0});
        }
        const std::size_t knee = saturationKnee(c.points, 2.0);
        c.kneeOccupancy = littlesLawOccupancy(
            c.points[knee].latencyUs,
            c.points[knee].bandwidthGBps * 1000.0 /
                static_cast<double>(transactionBytes(Command::Read,
                                                     size)));
        curves.push_back(std::move(c));
    }
    return curves;
}

const Fig17Results &
results()
{
    static const Fig17Results r = [] {
        Fig17Results out;
        out.fourBanks = sweepPattern(bankPattern(defaultMapper(), 4));
        out.twoBanks = sweepPattern(bankPattern(defaultMapper(), 2));
        return out;
    }();
    return r;
}

void
printCurves(const char *title, const std::vector<Curve> &curves)
{
    std::printf("\n%s\n\n", title);
    std::vector<std::string> headers = {"ports"};
    for (const Curve &c : curves) {
        headers.push_back(strfmt("BW%lluB",
                                 static_cast<unsigned long long>(c.size)));
        headers.push_back(strfmt("Lat%lluB us",
                                 static_cast<unsigned long long>(c.size)));
    }
    TextTable table(std::move(headers));
    for (unsigned p = 0; p < maxGupsPorts; ++p) {
        std::vector<std::string> row = {strfmt("%u", p + 1)};
        for (const Curve &c : curves) {
            row.push_back(strfmt("%.2f", c.points[p].bandwidthGBps));
            row.push_back(strfmt("%.2f", c.points[p].latencyUs));
        }
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\nLittle's-law occupancy at the saturation knee "
                "(requests in flight):");
    for (const Curve &c : curves)
        std::printf("  %lluB: %.0f",
                    static_cast<unsigned long long>(c.size),
                    c.kneeOccupancy);
    std::printf("\n");
}

void
printFigure()
{
    const Fig17Results &r = results();
    std::printf("\nFig. 17: latency vs request bandwidth, small-scale "
                "GUPS (1..9 ports)\n");
    printCurves("(a) four banks within a vault", r.fourBanks);
    printCurves("(b) two banks within a vault", r.twoBanks);

    double occ4 = 0.0, occ2 = 0.0;
    for (const Curve &c : r.fourBanks)
        occ4 += c.kneeOccupancy / r.fourBanks.size();
    for (const Curve &c : r.twoBanks)
        occ2 += c.kneeOccupancy / r.twoBanks.size();
    std::printf("\nMean knee occupancy: 4 banks %.0f, 2 banks %.0f "
                "(ratio %.2f).\n"
                "Reproduced: latency saturates at a size-dependent "
                "bandwidth and the knee occupancy is constant across "
                "packet sizes (the paper's \"constant number\").\n"
                "Known divergence: the paper infers a ~2x occupancy "
                "ratio between 4- and 2-bank patterns and conjectures "
                "per-bank queues in the vault controller; our flow "
                "control is bounded only by the 9x64 read tag pool, "
                "so both patterns show the same occupancy (see "
                "EXPERIMENTS.md).\n\n",
                occ4, occ2, occ4 / occ2);
}

void
BM_Fig17_LittlesLaw(benchmark::State &state)
{
    const Fig17Results &r = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&r);
    state.counters["occ_4banks_128B"] = r.fourBanks.back().kneeOccupancy;
    state.counters["occ_2banks_128B"] = r.twoBanks.back().kneeOccupancy;
}
BENCHMARK(BM_Fig17_LittlesLaw);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
