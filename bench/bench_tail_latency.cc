// lint:file(persistence) -- rows are also emitted as machine-readable JSONL: %a hexfloat only (console cells via fmtCell).
/**
 * @file
 * Extension bench: tail latency (p50/p99/p999) across the
 * access-pattern axis.
 *
 * The paper reports min/avg/max (the GUPS monitoring registers); a
 * modern deployment also budgets against percentiles. This companion
 * to Figs. 15/16 reports the median, 99th, and 99.9th percentile of
 * the read round trip per access pattern, at high load and at a
 * moderated load (3 ports), showing where the tail detaches from the
 * median.
 *
 * Besides the console table, every row is written as one JSONL object
 * with doubles in %a hexfloat (bit-exact round trip, the persistence
 * convention of runner/result_cache.cc) to HMCSIM_TAIL_JSONL when
 * that env var names a path.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    std::string pattern;
    double p50Full, p99Full, p999Full, maxFull;
    double p50Light, p99Light, p999Light;
};

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        // Pattern x ports grid as one parallel campaign: canonical
        // order interleaves (9 ports, 3 ports) per pattern.
        SweepAxes axes;
        axes.patterns = patternAxis();
        axes.mixes = {RequestMix::ReadOnly};
        axes.sizes = {128};
        axes.ports = {maxGupsPorts, 3};
        const std::vector<MeasurementResult> points = measureSweep(axes);
        for (std::size_t i = 0; i < axes.patterns.size(); ++i) {
            const MeasurementResult &full = points[i * 2];
            const MeasurementResult &light = points[i * 2 + 1];
            out.push_back({axes.patterns[i].name,
                           full.readLatencyP50Ns / 1000.0,
                           full.readLatencyP99Ns / 1000.0,
                           full.readLatencyP999Ns / 1000.0,
                           full.readLatencyNs.max() / 1000.0,
                           light.readLatencyP50Ns / 1000.0,
                           light.readLatencyP99Ns / 1000.0,
                           light.readLatencyP999Ns / 1000.0});
        }
        return out;
    }();
    return rows;
}

/** Human-readable table cell; display only, never parsed back. */
std::string
fmtCell(double v)
{
    return strfmt("%.2f", v); // lint:allow(hexfloat-persistence) console table cell, not persisted
}

/** Machine-readable double: %a hexfloat round-trips every bit. */
std::string
fmtHexDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** One JSONL object per row, doubles as hexfloat strings. */
void
writeJsonl(std::FILE *out)
{
    for (const Row &r : results()) {
        std::fprintf(out,
                     "{\"pattern\":\"%s\""
                     ",\"p50_full_us\":\"%s\",\"p99_full_us\":\"%s\""
                     ",\"p999_full_us\":\"%s\",\"max_full_us\":\"%s\""
                     ",\"p50_light_us\":\"%s\",\"p99_light_us\":\"%s\""
                     ",\"p999_light_us\":\"%s\"}\n",
                     r.pattern.c_str(), fmtHexDouble(r.p50Full).c_str(),
                     fmtHexDouble(r.p99Full).c_str(),
                     fmtHexDouble(r.p999Full).c_str(),
                     fmtHexDouble(r.maxFull).c_str(),
                     fmtHexDouble(r.p50Light).c_str(),
                     fmtHexDouble(r.p99Light).c_str(),
                     fmtHexDouble(r.p999Light).c_str());
    }
}

void
printFigure()
{
    std::printf("\nTail latency per access pattern (128 B reads; "
                "us)\n\n");
    TextTable table({"Pattern", "p50 (9p)", "p99 (9p)", "p999 (9p)",
                     "max (9p)", "p50 (3p)", "p99 (3p)", "p999 (3p)"});
    for (const Row &r : results()) {
        table.addRow({r.pattern, fmtCell(r.p50Full), fmtCell(r.p99Full),
                      fmtCell(r.p999Full), fmtCell(r.maxFull),
                      fmtCell(r.p50Light), fmtCell(r.p99Light),
                      fmtCell(r.p999Light)});
    }
    table.print();

    const auto &rows = results();
    std::printf("\nUnder tag-pool-saturated load the distribution is "
                "tight where the bottleneck is shared uniformly "
                "(p99/p50 = %s at 16 vaults: every request waits "
                "the same queue). The tail detaches on *mixed-"
                "residency* patterns -- p99/p50 = %s at 2 vaults "
                "and %s at 2 banks, where a request's cost depends "
                "on which vault/bank it drew. p999 pushes further "
                "into the same patterns (%s vs %s us at 2 banks).\n\n",
                fmtCell(rows.front().p99Full / rows.front().p50Full)
                    .c_str(),
                fmtCell(rows[3].p99Full / rows[3].p50Full).c_str(),
                fmtCell(rows[7].p99Full / rows[7].p50Full).c_str(),
                fmtCell(rows[7].p999Full).c_str(),
                fmtCell(rows[7].p99Full).c_str());

    if (const char *path = std::getenv("HMCSIM_TAIL_JSONL")) {
        std::FILE *out = std::fopen(path, "w");
        if (out) {
            writeJsonl(out);
            std::fclose(out);
            std::printf("tail-latency JSONL: %s\n", path);
        } else {
            std::fprintf(stderr, "cannot open %s\n", path);
        }
    }
}

void
BM_TailLatency(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["p50_16v_us"] = rows.front().p50Full;
    state.counters["p99_16v_us"] = rows.front().p99Full;
    state.counters["p999_16v_us"] = rows.front().p999Full;
    state.counters["p99_1bank_us"] = rows.back().p99Full;
    state.counters["p999_1bank_us"] = rows.back().p999Full;
}
BENCHMARK(BM_TailLatency);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
