/**
 * @file
 * Extension bench: tail latency (p50/p99) across the access-pattern
 * axis.
 *
 * The paper reports min/avg/max (the GUPS monitoring registers); a
 * modern deployment also budgets against percentiles. This companion
 * to Figs. 15/16 reports the median and 99th percentile of the read
 * round trip per access pattern, at high load and at a moderated
 * load (3 ports), showing where the tail detaches from the median.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    std::string pattern;
    double p50Full, p99Full, maxFull;
    double p50Light, p99Light;
};

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;
        // Pattern x ports grid as one parallel campaign: canonical
        // order interleaves (9 ports, 3 ports) per pattern.
        SweepAxes axes;
        axes.patterns = patternAxis();
        axes.mixes = {RequestMix::ReadOnly};
        axes.sizes = {128};
        axes.ports = {maxGupsPorts, 3};
        const std::vector<MeasurementResult> points = measureSweep(axes);
        for (std::size_t i = 0; i < axes.patterns.size(); ++i) {
            const MeasurementResult &full = points[i * 2];
            const MeasurementResult &light = points[i * 2 + 1];
            out.push_back({axes.patterns[i].name,
                           full.readLatencyP50Ns / 1000.0,
                           full.readLatencyP99Ns / 1000.0,
                           full.readLatencyNs.max() / 1000.0,
                           light.readLatencyP50Ns / 1000.0,
                           light.readLatencyP99Ns / 1000.0});
        }
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nTail latency per access pattern (128 B reads; "
                "us)\n\n");
    TextTable table({"Pattern", "p50 (9 ports)", "p99 (9 ports)",
                     "max (9 ports)", "p50 (3 ports)",
                     "p99 (3 ports)"});
    for (const Row &r : results()) {
        table.addRow({r.pattern, strfmt("%.2f", r.p50Full),
                      strfmt("%.2f", r.p99Full),
                      strfmt("%.2f", r.maxFull),
                      strfmt("%.2f", r.p50Light),
                      strfmt("%.2f", r.p99Light)});
    }
    table.print();

    const auto &rows = results();
    std::printf("\nUnder tag-pool-saturated load the distribution is "
                "tight where the bottleneck is shared uniformly "
                "(p99/p50 = %.2f at 16 vaults: every request waits "
                "the same queue). The tail detaches on *mixed-"
                "residency* patterns -- p99/p50 = %.2f at 2 vaults "
                "and %.2f at 2 banks, where a request's cost depends "
                "on which vault/bank it drew.\n\n",
                rows.front().p99Full / rows.front().p50Full,
                rows[3].p99Full / rows[3].p50Full,
                rows[7].p99Full / rows[7].p50Full);
}

void
BM_TailLatency(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["p50_16v_us"] = rows.front().p50Full;
    state.counters["p99_16v_us"] = rows.front().p99Full;
    state.counters["p99_1bank_us"] = rows.back().p99Full;
}
BENCHMARK(BM_TailLatency);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
