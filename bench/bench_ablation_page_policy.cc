/**
 * @file
 * Ablation: HMC's closed-page policy vs an open-page alternative.
 *
 * Sec. II-C/IV-D: HMC closes rows after every access because its
 * small 256 B rows and enormous bank count make row-buffer locality
 * a poor bet, and open rows cost standby power. This bench flips the
 * vaults to open-page and measures who would have benefited: linear
 * streams confined to few banks (the only shape with real row
 * locality) vs the distributed traffic HMC is designed for.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace hmcsim;
using namespace hmcsim::benchutil;

struct Row
{
    const char *workload;
    double closedGBps;
    double openGBps;
    double openRowHitPct;
};

/** Row-buffer hit rate across all vaults after a run. */
double
rowHitPct(const ExperimentConfig &cfg)
{
    Ac510Config sys = makeSystemConfig(cfg);
    Ac510Module module(sys);
    module.start();
    module.runUntil(400 * tickUs);
    std::uint64_t hits = 0, total = 0;
    for (unsigned v = 0; v < module.device().numVaults(); ++v) {
        const VaultStats &s = module.device().vault(v).stats();
        hits += s.rowHits;
        total += s.reads + s.writes + s.atomics;
    }
    return total ? 100.0 * static_cast<double>(hits) /
                       static_cast<double>(total)
                 : 0.0;
}

const std::vector<Row> &
results()
{
    static const std::vector<Row> rows = [] {
        std::vector<Row> out;

        struct Shape
        {
            const char *name;
            AccessPattern pattern;
            AddressingMode mode;
            Bytes size;
            unsigned ports;
        };
        const Shape shapes[] = {
            {"linear, 1 bank, 1 port", bankPattern(defaultMapper(), 1),
             AddressingMode::Linear, 128, 1},
            {"linear, 1 vault", vaultPattern(defaultMapper(), 1),
             AddressingMode::Linear, 128, 9},
            {"linear, 16 vaults", vaultPattern(defaultMapper(), 16),
             AddressingMode::Linear, 128, 9},
            {"random, 16 vaults", vaultPattern(defaultMapper(), 16),
             AddressingMode::Random, 128, 9},
        };
        for (const Shape &shape : shapes) {
            ExperimentConfig cfg;
            cfg.pattern = shape.pattern;
            cfg.mode = shape.mode;
            cfg.requestSize = shape.size;
            cfg.numPorts = shape.ports;
            cfg.measure = 400 * tickUs;
            const double closed = runExperiment(cfg).rawGBps;
            cfg.device.vault.policy = PagePolicy::Open;
            const double open = runExperiment(cfg).rawGBps;
            out.push_back(
                {shape.name, closed, open, rowHitPct(cfg)});
        }
        return out;
    }();
    return rows;
}

void
printFigure()
{
    std::printf("\nAblation: closed-page (HMC default) vs open-page "
                "vaults\n\n");
    TextTable table({"Workload", "Closed GB/s", "Open GB/s",
                     "Open-page row hits", "Open/closed"});
    for (const Row &r : results()) {
        table.addRow({r.workload, strfmt("%.1f", r.closedGBps),
                      strfmt("%.1f", r.openGBps),
                      strfmt("%.0f%%", r.openRowHitPct),
                      strfmt("%.2fx", r.openGBps / r.closedGBps)});
    }
    table.print();

    const auto &rows = results();
    std::printf("\nOpen page only pays where traffic camps on a row "
                "(%.1fx on the single-bank stream, %.0f%% hits); the "
                "distributed patterns HMC targets see no benefit "
                "(%.2fx at 16 vaults: a 256 B row holds just two "
                "blocks, and the link bound hides the rest) -- the "
                "quantitative case for the paper's insight (iii): "
                "don't chase spatial locality.\n\n",
                rows[0].openGBps / rows[0].closedGBps,
                rows[0].openRowHitPct,
                rows[3].openGBps / rows[3].closedGBps);
}

void
BM_AblationPagePolicy(benchmark::State &state)
{
    const auto &rows = results();
    for (auto _ : state)
        benchmark::DoNotOptimize(&rows);
    state.counters["open_gain_1bank"] =
        rows[0].openGBps / rows[0].closedGBps;
    state.counters["open_gain_16vaults"] =
        rows[3].openGBps / rows[3].closedGBps;
}
BENCHMARK(BM_AblationPagePolicy);

} // namespace

int
main(int argc, char **argv)
{
    hmcsim::setInformEnabled(false);
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
