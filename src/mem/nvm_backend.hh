/**
 * @file
 * PCM/NVM storage tier behind the vault interface.
 *
 * Models the three properties that distinguish a phase-change (or
 * similar resistive) tier from DRAM:
 *
 *  - Asymmetric timing: array reads take nvmReadLatency; array writes
 *    occupy the bank for nvmWriteLatency, several times longer.
 *  - Write-queue drain: each bank fronts its array with a small write
 *    queue. A write acknowledges toward the vault after nvmWriteAck
 *    (once buffered) and drains into the array in the background;
 *    admission stalls only when the queue is full, i.e. the oldest of
 *    the last nvmWriteQueueDepth writes has not drained yet. Reads
 *    are serviced from the array and wait behind the drain.
 *  - Endurance accounting: per-bank write counters (NVM cells wear
 *    out) registered as stats, with an invariant checker proving the
 *    per-bank counts always sum to the accepted write total.
 *
 * No refresh: non-volatile cells keep their state unpowered.
 */

#ifndef HMCSIM_MEM_NVM_BACKEND_HH
#define HMCSIM_MEM_NVM_BACKEND_HH

#include <cstdint>
#include <vector>

#include "mem/backend.hh"

namespace hmcsim
{

/** PCM-like tier: asymmetric timing, write drain, endurance. */
class NvmBackend final : public MemoryBackend
{
  public:
    NvmBackend(const BackendEnvironment &env,
               const MemoryBackendConfig &cfg);

    BackendKind kind() const override { return BackendKind::Nvm; }

    BankAccessResult accept(const Packet &pkt, Tick ready) override;

    /**
     * Bulk write-queue drain retirement (the batched stepping
     * interface): walk every bank's drain ring from its oldest
     * pending entry and retire all drains completed by @p until, in
     * one SoA pass, instead of retiring one entry at a time on slot
     * reuse inside accept(). Retirement is pure bookkeeping -- the
     * timing arithmetic in accept() reads the ring directly -- so the
     * access tuples are byte-identical whether or not stepBatch runs
     * (differential-tested in tests/test_backend.cc).
     */
    void stepBatch(Tick until) override;

    /** Batched accept: per-request virtual dispatch hoisted out; the
     *  per-entry arithmetic is exactly accept()'s, in array order. */
    void acceptBatch(BatchAccess *batch, std::size_t n) override;

    void restoreFrom(const MemoryBackend &src) override;

    unsigned
    numBanks() const override
    {
        return static_cast<unsigned>(banks.size());
    }
    /** The vault data bus in front of the tier keeps its geometry. */
    const DramTimings &timings() const override { return busTimings; }
    double busBytesPerSecond() const override;

    void registerStats(StatRegistry &registry,
                       const StatPath &path) const override;
    void registerCheckers(CheckerRegistry &registry,
                          const std::string &name) const override;

    void reset() override;

    /** Endurance: writes absorbed by bank @p idx so far. */
    std::uint64_t
    bankWrites(unsigned idx) const
    {
        return banks.at(idx).writes;
    }

    /** Writes whose background drain has been retired (stepBatch or
     *  slot-reuse fallback). Internal bookkeeping, deliberately not a
     *  registered stat: retirement points depend on when stepBatch
     *  runs, which must never be digest-observable. */
    std::uint64_t drainedWrites() const { return totalDrained; }

    /** Writes admitted but not yet retired from the drain rings. */
    std::uint64_t
    queuedWrites() const
    {
        std::uint64_t queued = 0;
        for (const BankState &bank : banks)
            queued += bank.queued;
        return queued;
    }

  private:
    struct BankState // lint:snapshot-state
    {
        /** When the array finishes its current read or write drain. */
        Tick arrayFree = 0;
        /** Ring cursor into this bank's drain-done slots. */
        std::size_t head = 0;
        /** Oldest not-yet-retired drain entry (ring cursor). */
        std::size_t tail = 0;
        /** Entries between tail and head: admitted, not retired. */
        unsigned queued = 0;
        /** Endurance counter: writes absorbed by this bank. */
        std::uint64_t writes = 0;
        /** Writes whose drain has been retired for this bank. */
        std::uint64_t drained = 0;
    };

    Tick &drainSlot(std::size_t bank_idx, std::size_t slot);

    DramTimings busTimings;
    Tick readLatency;
    Tick writeLatency;
    Tick writeAck;
    unsigned queueDepth;
    std::vector<BankState> banks;
    /** numBanks x queueDepth ring of write drain-completion ticks. */
    std::vector<Tick> drainDone;
    std::uint64_t totalReads = 0;
    std::uint64_t totalWrites = 0;
    std::uint64_t totalDrained = 0;
};

} // namespace hmcsim

#endif // HMCSIM_MEM_NVM_BACKEND_HH
