/**
 * @file
 * Pluggable vault-storage backends.
 *
 * The paper's central comparison -- HMC's closed-page stacked DRAM
 * against conventional DDR channels -- used to live in two disjoint
 * code paths (hmc/queued_vault.* vs baseline/ddr_channel.*). The
 * MemoryBackend interface extracts the storage-engine seam from the
 * vault access path so what sits behind a vault is a per-config
 * choice: the HMC DRAM bank array (default, byte-identical to the
 * pre-interface model), an open-page DDR4 channel, or a PCM/NVM tier
 * with asymmetric read/write timing and endurance accounting.
 *
 * Contract (docs/backends.md): the vault controller charges its own
 * pipeline latency and TSV-bus time; a backend models only the
 * storage array. accept() maps the decoded packet onto its internal
 * geometry, books array time, and reports the BankAccessResult tuple
 * {dataReady, bankFree, rowHit, start}.
 */

#ifndef HMCSIM_MEM_BACKEND_HH
#define HMCSIM_MEM_BACKEND_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "dram/timings.hh"
#include "mem/access_result.hh"
#include "protocol/packet.hh"
#include "sim/check.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Which storage engine sits behind a vault. */
enum class BackendKind : std::uint8_t
{
    HmcDram = 0, ///< Closed-page stacked-DRAM bank array (default).
    Ddr4 = 1,    ///< Open-page DDR4 channel (the baseline organization).
    Nvm = 2,     ///< PCM-like tier: asymmetric timing, write-queue
                 ///< drain, per-bank endurance accounting.
};

/** Stable lowercase name ("hmc", "ddr4", "nvm") for CLI/sinks. */
const char *backendName(BackendKind kind);

/** Parse a backendName() string; false when unrecognized. */
bool parseBackendKind(const std::string &name, BackendKind &out);

/**
 * Backend selection plus per-kind model parameters. Lives inside
 * VaultConfig so it reaches every experiment through
 * ExperimentConfig::device; all fields are part of the canonical
 * config digest (runner/config_digest.cc, "hmcsim.experiment.v2").
 */
struct MemoryBackendConfig
{
    BackendKind kind = BackendKind::HmcDram;

    // ---- Ddr4 ----------------------------------------------------------
    /** Array timings of the DDR4 backend (large rows, open page). */
    DramTimings ddrTimings = ddr4Timings();
    /** Row-buffer policy of the DDR4 backend. Open by default -- the
     *  conventional organization; Closed turns the same channel into
     *  the paper's "what if a DIMM closed pages like HMC" ablation. */
    PagePolicy ddrPolicy = PagePolicy::Open;
    /** DDR4-2400 x64 channel data bus. */
    double ddrBusBytesPerSecond = 19.2e9;
    /** Four-activate window: at most ddrActivatesPerFaw row
     *  activations per ddrTFaw across the rank. */
    Tick ddrTFaw = nsToTicks(30.0);
    unsigned ddrActivatesPerFaw = 4;

    // ---- Nvm -----------------------------------------------------------
    /** Array read latency (PCM reads are several times DRAM's). */
    Tick nvmReadLatency = nsToTicks(120.0);
    /** Array write (SET/RESET drain) occupancy per write. */
    Tick nvmWriteLatency = nsToTicks(400.0);
    /** Buffered-write acknowledge: a write completes toward the vault
     *  as soon as it lands in the per-bank write queue. */
    Tick nvmWriteAck = nsToTicks(8.0);
    /** Per-bank write-queue entries; admission stalls when the oldest
     *  queued write has not drained into the array yet. 0 disables
     *  the capacity stall (infinite queue). */
    unsigned nvmWriteQueueDepth = 8;
};

/**
 * Geometry and policy the hosting vault hands to the backend factory:
 * everything a backend inherits from its vault rather than choosing
 * itself.
 */
struct BackendEnvironment
{
    unsigned numBanks = 16;
    DramTimings timings = hmcGen2Timings();
    PagePolicy policy = PagePolicy::Closed;
    bool refreshEnabled = false;
    double refreshMultiplier = 1.0;
};

class Bank;

/**
 * One request of a batched accept: input (packet, earliest start) and
 * the access tuple the backend filled in (mem/backend.hh stepBatch /
 * acceptBatch fast path, docs/performance.md).
 */
struct BatchAccess
{
    const Packet *pkt; // lint:allow(snapshot-safe, transient batch view, never part of a snapshot)
    Tick ready = 0;
    BankAccessResult res;
};

/**
 * A vault's storage engine. Implementations are single-threaded like
 * the vault that owns them and must be deterministic: identical
 * accept() sequences produce identical results (the sweep runner's
 * byte-identity contract extends through this interface).
 */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    virtual BackendKind kind() const = 0;

    /**
     * Accept one decoded request no earlier than @p ready (the vault
     * has already charged its controller latency). The backend books
     * array time and reports the access tuple; the vault books the
     * shared TSV data bus from dataReady.
     */
    virtual BankAccessResult accept(const Packet &pkt, Tick ready) = 0;

    // ---- Batched stepping (docs/performance.md) ------------------------
    /**
     * Advance all time-driven internal state (refresh engines, write-
     * queue drains) to @p until in one bulk pass, instead of catching
     * up lazily inside each accept(). Must be idempotent and exactly
     * equivalent to the lazy catch-up: an accept() after
     * stepBatch(until) returns byte-identical results with or without
     * the call (differential-tested per backend). Backends with no
     * time-driven state keep the no-op default.
     */
    virtual void stepBatch(Tick until) { (void)until; }

    /**
     * Accept @p n requests in one call, filling each entry's `res`.
     * Semantically identical to calling accept() per entry in array
     * order -- the default does exactly that and serves as the
     * differential reference; backends override it with SoA
     * bulk-update loops (branch-free timing math over per-bank state
     * arrays).
     */
    virtual void
    acceptBatch(BatchAccess *batch, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            batch[i].res = accept(*batch[i].pkt, batch[i].ready);
    }

    /**
     * Adopt the complete mutable state of @p src for simulator fork
     * (sim/snapshot.hh). @p src is the same concrete type, built from
     * the identical environment/config; read-only on @p src. Backends
     * hold only value state (bank arrays, drain rings, counters), so
     * implementations are plain member copies.
     */
    virtual void restoreFrom(const MemoryBackend &src) = 0;

    /** Banks (or bank-equivalent partitions) the backend exposes. */
    virtual unsigned numBanks() const = 0;

    /** Beat geometry the hosting vault's data bus moves payload in. */
    virtual const DramTimings &timings() const = 0;

    /** Service rate of the vault data bus in front of this backend. */
    virtual double busBytesPerSecond() const = 0;

    // ---- Refresh hooks (DRAM-like backends only) -----------------------
    /** Advance every bank through a refresh cycle (maintenance). */
    virtual void refreshAll(Tick at) { (void)at; }
    /** Reconfigure the refresh engine (thermal feedback). */
    virtual void
    setRefresh(bool enabled, double multiplier)
    {
        (void)enabled;
        (void)multiplier;
    }
    /** Current per-bank refresh interval in ticks (0 if disabled). */
    virtual Tick refreshInterval() const { return 0; }
    /** Refresh cycles performed so far. */
    virtual std::uint64_t refreshes() const { return 0; }

    // ---- Observability hooks -------------------------------------------
    /** Register backend-specific counters under @p path. */
    virtual void
    registerStats(StatRegistry &registry, const StatPath &path) const
    {
        (void)registry;
        (void)path;
    }
    /** Register backend-specific invariants under @p name. */
    virtual void
    registerCheckers(CheckerRegistry &registry,
                     const std::string &name) const
    {
        (void)registry;
        (void)name;
    }
    /** DRAM bank state for introspection; null for backends that do
     *  not use the Bank state machine (e.g. NVM). */
    virtual const Bank *bankAt(unsigned idx) const
    {
        (void)idx;
        return nullptr;
    }

    virtual void reset() = 0;
};

/** Build the backend selected by @p cfg.kind for a vault's @p env. */
std::unique_ptr<MemoryBackend>
makeMemoryBackend(const BackendEnvironment &env,
                  const MemoryBackendConfig &cfg);

} // namespace hmcsim

#endif // HMCSIM_MEM_BACKEND_HH
