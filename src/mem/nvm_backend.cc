// lint:file(hot-path) -- backend accept() runs per packet on the model path: no std::function, HMCSIM_DCHECK-only invariants (enforced by hmcsim-lint's backend-hot-path rule).
#include "mem/nvm_backend.hh"

#include <sstream>
#include <string>

#include "sim/logging.hh"

namespace hmcsim
{

NvmBackend::NvmBackend(const BackendEnvironment &env,
                       const MemoryBackendConfig &cfg)
    : busTimings(env.timings),
      readLatency(cfg.nvmReadLatency),
      writeLatency(cfg.nvmWriteLatency),
      writeAck(cfg.nvmWriteAck),
      queueDepth(cfg.nvmWriteQueueDepth),
      banks(env.numBanks),
      drainDone(static_cast<std::size_t>(env.numBanks) *
                    (queueDepth ? queueDepth : 1),
                0)
{
    if (env.numBanks == 0)
        fatal("NVM backend needs at least one bank");
}

Tick &
NvmBackend::drainSlot(std::size_t bank_idx, std::size_t slot)
{
    return drainDone[bank_idx * queueDepth + slot];
}

double
NvmBackend::busBytesPerSecond() const
{
    return static_cast<double>(busTimings.beatBytes) * 1e12 /
           static_cast<double>(busTimings.tBeat);
}

BankAccessResult
NvmBackend::accept(const Packet &pkt, Tick ready)
{
    BankState &bank = banks.at(pkt.bank);
    // Atomics read-modify-write the cell: they wear it like a write.
    const bool is_write = pkt.cmd != Command::Read;
    BankAccessResult res;
    res.rowHit = false;

    if (is_write) {
        // Admission: the queue slot being reused belonged to the
        // write queueDepth entries ago; if it has not drained yet the
        // queue is full and the request stalls at the bank.
        Tick admit = ready;
        if (queueDepth > 0) {
            const Tick oldest = drainSlot(pkt.bank, bank.head);
            if (oldest > admit)
                admit = oldest;
        }
        // Background drain: writes enter the array one at a time, in
        // order, each occupying it for the long write latency.
        const Tick drain_start =
            admit > bank.arrayFree ? admit : bank.arrayFree;
        const Tick drain_done = drain_start + writeLatency;
        bank.arrayFree = drain_done;
        if (queueDepth > 0) {
            // Slot reuse while the ring still holds unretired entries:
            // the entry being overwritten has provably drained by
            // `admit` (admission waited for it above), so retire it
            // inline. The bulk path is stepBatch(); this fallback only
            // keeps the bookkeeping exact between stepBatch calls.
            if (bank.queued == queueDepth) {
                bank.tail = (bank.tail + 1) % queueDepth;
                --bank.queued;
                ++bank.drained;
                ++totalDrained;
            }
            drainSlot(pkt.bank, bank.head) = drain_done;
            bank.head = (bank.head + 1) % queueDepth;
            ++bank.queued;
        }
        ++bank.writes;
        ++totalWrites;
        // The vault sees the fast buffered acknowledge, not the drain.
        res.start = admit;
        res.dataReady = admit + writeAck;
        res.bankFree = res.dataReady;
    } else {
        // Reads come from the array and wait behind any drain in
        // progress -- the read-after-write penalty that makes write
        // bursts visible to read latency.
        const Tick start = ready > bank.arrayFree ? ready : bank.arrayFree;
        const Tick data_ready = start + readLatency;
        bank.arrayFree = data_ready;
        ++totalReads;
        res.start = start;
        res.dataReady = data_ready;
        res.bankFree = data_ready;
    }
    return res;
}

void
NvmBackend::stepBatch(Tick until)
{
    if (queueDepth == 0)
        return;
    // One pass over the per-bank drain rings: each ring's completion
    // ticks ascend from tail to head (drain starts chain arrayFree),
    // so retirement is a sequential cursor advance per bank.
    for (std::size_t b = 0; b < banks.size(); ++b) {
        BankState &bank = banks[b];
        while (bank.queued > 0 && drainSlot(b, bank.tail) <= until) {
            bank.tail = (bank.tail + 1) % queueDepth;
            --bank.queued;
            ++bank.drained;
            ++totalDrained;
        }
    }
}

void
NvmBackend::acceptBatch(BatchAccess *batch, std::size_t n)
{
    // The class is final, so this loop devirtualizes accept(): one
    // indirect call per batch instead of one per request, same
    // arithmetic in the same array order as the interface default.
    for (std::size_t i = 0; i < n; ++i)
        batch[i].res = accept(*batch[i].pkt, batch[i].ready);
}

void
NvmBackend::restoreFrom(const MemoryBackend &src)
{
    const auto &o = static_cast<const NvmBackend &>(src);
    HMCSIM_DCHECK(src.kind() == kind() && banks.size() == o.banks.size(),
                  "backend fork restore across mismatched engines");
    banks = o.banks;
    drainDone = o.drainDone;
    totalReads = o.totalReads;
    totalWrites = o.totalWrites;
    totalDrained = o.totalDrained;
}

void
NvmBackend::registerStats(StatRegistry &registry,
                          const StatPath &path) const
{
    registry.addValue((path / "nvm_reads").str(),
                      "array reads serviced by the NVM tier",
                      &totalReads);
    registry.addValue((path / "nvm_writes").str(),
                      "writes absorbed by the NVM tier", &totalWrites);
    for (std::size_t i = 0; i < banks.size(); ++i) {
        registry.addValue(
            (path / ("endurance_bank" + std::to_string(i))).str(),
            "endurance: writes absorbed by this bank",
            &banks[i].writes);
    }
}

void
NvmBackend::registerCheckers(CheckerRegistry &registry,
                             const std::string &name) const
{
    // Endurance conservation: per-bank wear counters must always sum
    // to the accepted write total -- a drifting sum means a write was
    // double-counted or charged to the wrong bank.
    registry.addLambda(name + ".endurance",
                       [this](Tick) -> std::string {
        std::uint64_t sum = 0;
        for (const BankState &bank : banks)
            sum += bank.writes;
        if (sum == totalWrites)
            return {};
        std::ostringstream out;
        out << "per-bank endurance counters sum to " << sum
            << " but " << totalWrites << " writes were accepted";
        return out.str();
    });
    // Drain-retirement conservation (batched stepping interface):
    // with a finite ring, every write is either still queued or has
    // been retired -- per bank and in total. Holds across a
    // snapshot/restore cycle because all cursors and counters are
    // value state (tests/test_snapshot_fork.cc re-runs this checker
    // on a restored twin).
    if (queueDepth > 0) {
        registry.addLambda(name + ".drain_conservation",
                           [this](Tick) -> std::string {
            std::uint64_t queued = 0;
            std::uint64_t drained = 0;
            for (std::size_t b = 0; b < banks.size(); ++b) {
                const BankState &bank = banks[b];
                if (bank.queued > queueDepth) {
                    std::ostringstream out;
                    out << "bank " << b << " drain ring holds "
                        << bank.queued << " entries, depth "
                        << queueDepth;
                    return out.str();
                }
                if (bank.drained + bank.queued != bank.writes) {
                    std::ostringstream out;
                    out << "bank " << b << " drain accounting: "
                        << bank.drained << " retired + " << bank.queued
                        << " queued != " << bank.writes << " writes";
                    return out.str();
                }
                queued += bank.queued;
                drained += bank.drained;
            }
            if (drained != totalDrained ||
                drained + queued != totalWrites) {
                std::ostringstream out;
                out << "drain totals: " << drained << " retired + "
                    << queued << " queued vs totals retired="
                    << totalDrained << " writes=" << totalWrites;
                return out.str();
            }
            return {};
        });
    }
}

void
NvmBackend::reset()
{
    for (BankState &bank : banks)
        bank = BankState{};
    for (Tick &slot : drainDone)
        slot = 0;
    totalReads = 0;
    totalWrites = 0;
    totalDrained = 0;
}

} // namespace hmcsim
