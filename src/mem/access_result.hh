/**
 * @file
 * The memory-backend interface's return contract.
 *
 * Every storage engine a vault can host (HMC DRAM bank array, DDR4
 * channel, NVM tier) answers an accepted request with this tuple; it
 * is what the analytic vault books its TSV bus from and what the
 * event-driven vault schedules its completion events from. Promoted
 * out of dram/bank.hh so the contract lives with the interface
 * (mem/backend.hh) instead of with one implementation.
 */

#ifndef HMCSIM_MEM_ACCESS_RESULT_HH
#define HMCSIM_MEM_ACCESS_RESULT_HH

#include "sim/types.hh"

namespace hmcsim
{

/** Outcome of one storage-array access. */
struct BankAccessResult
{
    /** When the first data beat is available on the vault bus. */
    Tick dataReady;
    /** When the bank can accept its next access. */
    Tick bankFree;
    /** Whether the access hit an open row (open-page policy only). */
    bool rowHit;
    /** When the bank actually began the access (after waiting out any
     *  earlier row cycle); feeds the packet's tBankStart lifecycle
     *  stamp. */
    Tick start = 0;
};

} // namespace hmcsim

#endif // HMCSIM_MEM_ACCESS_RESULT_HH
