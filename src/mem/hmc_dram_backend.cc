// lint:file(hot-path) -- backend accept() runs per packet on the model path: no std::function, HMCSIM_DCHECK-only invariants (enforced by hmcsim-lint's backend-hot-path rule).
#include "mem/hmc_dram_backend.hh"

#include <memory>

namespace hmcsim
{

HmcDramBackend::HmcDramBackend(const BackendEnvironment &env)
    : env(env), banks(env.numBanks), nextRefresh(env.numBanks, 0)
{
    // Stagger initial refresh deadlines so banks do not refresh in
    // lockstep (real controllers rotate REF commands).
    const Tick interval = refreshInterval();
    if (interval != 0) {
        for (unsigned i = 0; i < env.numBanks; ++i)
            nextRefresh[i] = interval * (i + 1) / env.numBanks;
    }
}

double
HmcDramBackend::busBytesPerSecond() const
{
    return static_cast<double>(env.timings.beatBytes) * 1e12 /
           static_cast<double>(env.timings.tBeat);
}

void
HmcDramBackend::setRefresh(bool enabled, double multiplier)
{
    env.refreshEnabled = enabled;
    env.refreshMultiplier = multiplier;
}

void
HmcDramBackend::refreshAll(Tick at)
{
    for (auto &bank : banks)
        bank.refresh(env.timings, at);
}

void
HmcDramBackend::registerCheckers(CheckerRegistry &registry,
                                 const std::string &name) const
{
    registry.add(std::make_unique<BankStateChecker>(
        name + ".banks", env.policy,
        [this]() -> const std::vector<Bank> & { return banks; }));
}

void
HmcDramBackend::reset()
{
    for (auto &bank : banks)
        bank.reset();
    numRefreshes = 0;
    const Tick interval = refreshInterval();
    for (unsigned i = 0; i < env.numBanks; ++i)
        nextRefresh[i] =
            interval ? interval * (i + 1) / env.numBanks : 0;
}

} // namespace hmcsim
