// lint:file(hot-path) -- backend accept() runs per packet on the model path: no std::function, HMCSIM_DCHECK-only invariants (enforced by hmcsim-lint's backend-hot-path rule).
#include "mem/ddr4_backend.hh"

#include <memory>

#include "sim/logging.hh"

namespace hmcsim
{

Ddr4Backend::Ddr4Backend(const BackendEnvironment &env,
                         const MemoryBackendConfig &cfg)
    : _timings(cfg.ddrTimings),
      policy(cfg.ddrPolicy),
      banks(env.numBanks),
      // One "byte" of this regulator = one row activation; the rate
      // enforces the tFAW average (4 ACTs / 30 ns ~ 133 M/s).
      activates(static_cast<double>(cfg.ddrActivatesPerFaw) * 1e12 /
                static_cast<double>(cfg.ddrTFaw)),
      busRate(cfg.ddrBusBytesPerSecond)
{
    if (env.numBanks == 0)
        fatal("DDR4 backend needs at least one bank");
}

BankAccessResult
Ddr4Backend::accept(const Packet &pkt, Tick ready)
{
    const bool is_write = pkt.cmd != Command::Read;
    // Row-interleaved mapping from the byte address: consecutive
    // addresses stay within a row, rows round-robin across banks.
    // This is what gives linear traffic its row-buffer locality on a
    // conventional DIMM -- the vault's decoded bank/row fields encode
    // HMC's low-order interleave, which is exactly the organization
    // this backend exists to contrast against.
    const Addr row_index = pkt.addr / _timings.rowBytes;
    const unsigned bank_idx =
        static_cast<unsigned>(row_index % banks.size());
    const auto row =
        static_cast<std::uint32_t>(row_index / banks.size());

    Tick start = ready;
    // Row misses need an activation, which the tFAW window meters.
    if (!banks[bank_idx].wouldHit(policy, row))
        start = activates.admit(start, 1.0);
    return banks[bank_idx].access(_timings, policy, start, row,
                                  pkt.payload, is_write);
}

void
Ddr4Backend::registerCheckers(CheckerRegistry &registry,
                              const std::string &name) const
{
    registry.add(std::make_unique<BankStateChecker>(
        name + ".banks", policy,
        [this]() -> const std::vector<Bank> & { return banks; }));
}

void
Ddr4Backend::reset()
{
    for (auto &bank : banks)
        bank.reset();
    activates.reset();
}

} // namespace hmcsim
