#include "mem/backend.hh"

#include "mem/ddr4_backend.hh"
#include "mem/hmc_dram_backend.hh"
#include "mem/nvm_backend.hh"
#include "sim/logging.hh"

namespace hmcsim
{

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::HmcDram:
        return "hmc";
      case BackendKind::Ddr4:
        return "ddr4";
      case BackendKind::Nvm:
        return "nvm";
    }
    return "unknown";
}

bool
parseBackendKind(const std::string &name, BackendKind &out)
{
    if (name == "hmc" || name == "dram" || name == "hmc-dram") {
        out = BackendKind::HmcDram;
        return true;
    }
    if (name == "ddr4" || name == "ddr") {
        out = BackendKind::Ddr4;
        return true;
    }
    if (name == "nvm" || name == "pcm") {
        out = BackendKind::Nvm;
        return true;
    }
    return false;
}

std::unique_ptr<MemoryBackend>
makeMemoryBackend(const BackendEnvironment &env,
                  const MemoryBackendConfig &cfg)
{
    switch (cfg.kind) {
      case BackendKind::HmcDram:
        return std::make_unique<HmcDramBackend>(env);
      case BackendKind::Ddr4:
        return std::make_unique<Ddr4Backend>(env, cfg);
      case BackendKind::Nvm:
        return std::make_unique<NvmBackend>(env, cfg);
    }
    fatal("unknown memory backend kind %u",
          static_cast<unsigned>(cfg.kind));
    return nullptr;
}

} // namespace hmcsim
