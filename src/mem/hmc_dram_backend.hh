/**
 * @file
 * The default vault storage: a closed-page HMC stacked-DRAM bank
 * array with a staggered per-bank refresh engine.
 *
 * This is the pre-interface VaultController storage model moved
 * behind MemoryBackend verbatim -- same refresh catch-up, same
 * Bank::access arithmetic, same bus-rate expression -- so the default
 * configuration keeps the selfcheck digest and sweep JSONL
 * byte-identical (docs/performance.md rule; the differential test in
 * tests/test_backend.cc pins this).
 */

#ifndef HMCSIM_MEM_HMC_DRAM_BACKEND_HH
#define HMCSIM_MEM_HMC_DRAM_BACKEND_HH

#include <cstdint>
#include <vector>

#include "dram/bank.hh"
#include "mem/backend.hh"

namespace hmcsim
{

/** Closed-page HMC DRAM bank array (the paper's organization). */
class HmcDramBackend final : public MemoryBackend
{
  public:
    explicit HmcDramBackend(const BackendEnvironment &env);

    BackendKind kind() const override { return BackendKind::HmcDram; }

    // accept() and its refresh helpers are defined inline below: the
    // vault controller devirtualizes the default backend and calls
    // them directly per packet, and bench_simulator_perf's dispatch
    // guard holds the interface to <2% over the pre-interface model
    // -- which needs these on the inlining path, not behind a call.
    BankAccessResult
    accept(const Packet &pkt, Tick ready) override
    {
        // Atomics modify in place: they occupy the bank like a write
        // (the vault charges the ALU latency on top of dataReady).
        const bool is_write = pkt.cmd != Command::Read;
        HMCSIM_DCHECK(pkt.bank < banks.size(),
                      "decoded bank %u out of range",
                      static_cast<unsigned>(pkt.bank));
        refreshDue(pkt.bank, ready);
        return banks[pkt.bank].access(env.timings, env.policy, ready,
                                      pkt.row, pkt.payload, is_write);
    }

    /**
     * Bulk refresh catch-up for every bank at once (the batched-vault
     * fast path): equivalent to the lazy refreshDue() inside accept()
     * because catch-up is idempotent and monotone in `now` -- any
     * refresh applied here (nextRefresh <= until) would also have been
     * applied by the next accept() at ready >= until, so subsequent
     * accepts return byte-identical tuples either way.
     */
    void
    stepBatch(Tick until) override
    {
        const Tick interval = refreshInterval();
        if (interval == 0)
            return;
        for (std::size_t b = 0; b < banks.size(); ++b)
            refreshDue(static_cast<unsigned>(b), until);
    }

    /**
     * Batched accept: the per-request virtual dispatch and the
     * refresh-engine enable check are hoisted out of the loop; the
     * per-entry arithmetic is exactly accept()'s, in array order.
     */
    void
    acceptBatch(BatchAccess *batch, std::size_t n) override
    {
        const Tick interval = refreshInterval();
        for (std::size_t i = 0; i < n; ++i) {
            const Packet &pkt = *batch[i].pkt;
            const Tick ready = batch[i].ready;
            const bool is_write = pkt.cmd != Command::Read;
            HMCSIM_DCHECK(pkt.bank < banks.size(),
                          "decoded bank %u out of range",
                          static_cast<unsigned>(pkt.bank));
            if (interval != 0) {
                while (nextRefresh[pkt.bank] <= ready) {
                    banks[pkt.bank].refresh(env.timings,
                                            nextRefresh[pkt.bank]);
                    nextRefresh[pkt.bank] += interval;
                    ++numRefreshes;
                }
            }
            batch[i].res =
                banks[pkt.bank].access(env.timings, env.policy, ready,
                                       pkt.row, pkt.payload, is_write);
        }
    }

    void
    restoreFrom(const MemoryBackend &src) override
    {
        const auto &o = static_cast<const HmcDramBackend &>(src);
        HMCSIM_DCHECK(src.kind() == kind() &&
                          banks.size() == o.banks.size(),
                      "backend fork restore across mismatched engines");
        env = o.env;
        banks = o.banks;
        nextRefresh = o.nextRefresh;
        numRefreshes = o.numRefreshes;
    }

    unsigned
    numBanks() const override
    {
        return static_cast<unsigned>(banks.size());
    }
    const DramTimings &timings() const override { return env.timings; }
    double busBytesPerSecond() const override;

    void refreshAll(Tick at) override;
    void setRefresh(bool enabled, double multiplier) override;
    Tick
    refreshInterval() const override
    {
        if (!env.refreshEnabled || env.refreshMultiplier <= 0.0)
            return 0;
        return static_cast<Tick>(
            static_cast<double>(env.timings.tRefi) /
            env.refreshMultiplier);
    }
    std::uint64_t refreshes() const override { return numRefreshes; }

    void registerCheckers(CheckerRegistry &registry,
                          const std::string &name) const override;
    const Bank *
    bankAt(unsigned idx) const override
    {
        return &banks.at(idx);
    }

    void reset() override;

  private:
    /** Catch the bank up on refreshes due by @p now. */
    void
    refreshDue(unsigned bank_idx, Tick now)
    {
        const Tick interval = refreshInterval();
        if (interval == 0)
            return;
        while (nextRefresh[bank_idx] <= now) {
            banks[bank_idx].refresh(env.timings,
                                    nextRefresh[bank_idx]);
            nextRefresh[bank_idx] += interval;
            ++numRefreshes;
        }
    }

    BackendEnvironment env;
    std::vector<Bank> banks;
    /** Next scheduled refresh per bank (staggered at start). */
    std::vector<Tick> nextRefresh;
    std::uint64_t numRefreshes = 0;
};

} // namespace hmcsim

#endif // HMCSIM_MEM_HMC_DRAM_BACKEND_HH
