/**
 * @file
 * DDR4-channel storage behind the vault interface.
 *
 * The conventional-DIMM organization the paper contrasts HMC against
 * (Secs. I, II-C, IV-D): open page policy, large rows with
 * row-interleaved mapping (consecutive addresses fill a row before
 * moving to the next bank), and a tFAW activate window that caps
 * row-missing traffic. This is the same arithmetic as the standalone
 * baseline channel (src/baseline/ddr_channel.*, now a thin wrapper
 * over this class), unified behind MemoryBackend so every sweep,
 * bench, and fleet-service scenario can run against it.
 */

#ifndef HMCSIM_MEM_DDR4_BACKEND_HH
#define HMCSIM_MEM_DDR4_BACKEND_HH

#include <vector>

#include "dram/bank.hh"
#include "link/link.hh"
#include "mem/backend.hh"

namespace hmcsim
{

/** Open-page DDR4 channel as a vault storage engine. */
class Ddr4Backend final : public MemoryBackend
{
  public:
    Ddr4Backend(const BackendEnvironment &env,
                const MemoryBackendConfig &cfg);

    BackendKind kind() const override { return BackendKind::Ddr4; }

    BankAccessResult accept(const Packet &pkt, Tick ready) override;

    /** Batched accept: the class is final, so the loop devirtualizes
     *  accept() -- same arithmetic, same (accept-call) order. The
     *  shared tFAW regulator makes that order significant across
     *  banks, exactly as for the per-access path (docs/backends.md). */
    void
    acceptBatch(BatchAccess *batch, std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            batch[i].res = accept(*batch[i].pkt, batch[i].ready);
    }

    void
    restoreFrom(const MemoryBackend &src) override
    {
        const auto &o = static_cast<const Ddr4Backend &>(src);
        HMCSIM_DCHECK(src.kind() == kind() &&
                          banks.size() == o.banks.size(),
                      "backend fork restore across mismatched engines");
        banks = o.banks;
        activates = o.activates;
    }

    unsigned
    numBanks() const override
    {
        return static_cast<unsigned>(banks.size());
    }
    const DramTimings &timings() const override { return _timings; }
    double busBytesPerSecond() const override { return busRate; }

    void registerCheckers(CheckerRegistry &registry,
                          const std::string &name) const override;
    const Bank *
    bankAt(unsigned idx) const override
    {
        return &banks.at(idx);
    }

    void reset() override;

  private:
    DramTimings _timings;
    PagePolicy policy;
    std::vector<Bank> banks;
    /** Rate limiter standing in for the tFAW rolling window. */
    ThroughputRegulator activates;
    double busRate;
};

} // namespace hmcsim

#endif // HMCSIM_MEM_DDR4_BACKEND_HH
