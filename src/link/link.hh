/**
 * @file
 * External SerDes link model (HMC 1.1, Sec. II-B of the paper).
 *
 * Each external link is a bundle of 8 (half-width) or 16 (full-width)
 * full-duplex lanes at 10/12.5/15 Gbps per lane. The AC-510 uses two
 * half-width links at 15 Gbps, giving the Eq. 2 peak of 60 GB/s
 * bidirectional (30 GB/s per direction).
 *
 * A direction of a link is modeled as a serial resource: packets
 * occupy the wire for bytes/rate seconds in arrival order. Protocol
 * efficiency (scrambling, lane training gaps, retry-buffer headroom)
 * and a fixed per-packet link-layer overhead derate the raw lane rate;
 * both are calibration constants surfaced in LinkConfig.
 */

#ifndef HMCSIM_LINK_LINK_HH
#define HMCSIM_LINK_LINK_HH

#include <cstdint>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Static description of one external link bundle. */
struct LinkConfig
{
    /** Number of external links on the device (2 or 4 for HMC 1.x). */
    unsigned numLinks = 2;
    /** Lanes per link: 8 = half width, 16 = full width. */
    unsigned lanesPerLink = 8;
    /** Per-lane signaling rate in Gbps: 10, 12.5 or 15. */
    double gbpsPerLane = 15.0;
    /**
     * Fraction of the raw lane rate available to packet bytes after
     * protocol framing/scrambling. 1.0 = ideal.
     */
    double protocolEfficiency = 1.0;
    /**
     * Extra link-layer bytes charged per packet (lane-crossing
     * alignment, retry pointer bookkeeping). Zero = ideal.
     */
    Bytes perPacketOverheadBytes = 0;
    /**
     * Bit error rate of the lanes. A corrupted packet fails its CRC
     * at the receiver and is resent from the retry buffer (HMC's
     * link-level retry protocol); each retry re-occupies the wire and
     * pays @ref retryTurnaround. Zero = error-free (default).
     */
    double bitErrorRate = 0.0;
    /** Retry-buffer turnaround: error detection, retry pointer
     *  exchange, and re-serialization setup. */
    Tick retryTurnaround = nsToTicks(100.0);

    /** Raw one-direction bandwidth of a single link in bytes/s. */
    double
    rawLinkBytesPerSecond() const
    {
        return lanesPerLink * gbpsPerLane * 1e9 / 8.0;
    }

    /**
     * Peak bidirectional bandwidth across all links in bytes/s
     * (Eq. 2: 2 links x 8 lanes x 15 Gbps x 2 = 60 GB/s).
     */
    double
    peakBidirectionalBytesPerSecond() const
    {
        return numLinks * rawLinkBytesPerSecond() * 2.0;
    }

    /** Effective one-direction rate of a single link in bytes/s. */
    double
    effectiveLinkBytesPerSecond() const
    {
        return rawLinkBytesPerSecond() * protocolEfficiency;
    }
};

/**
 * A serial resource with a fixed service rate in bytes/second.
 *
 * admit() computes when a load of a given size finishes transmission
 * if it arrives at a given time, and advances the busy horizon. This
 * models any bandwidth-limited pipe: a link direction, the FPGA
 * controller's flit datapath, or a vault's TSV data bus.
 */
class ThroughputRegulator
{
  public:
    /** @param bytes_per_second Service rate; must be positive. */
    explicit ThroughputRegulator(double bytes_per_second);

    /**
     * Occupy the resource with @p bytes arriving at @p ready.
     * @return Tick at which the last byte has been transmitted.
     */
    Tick admit(Tick ready, double bytes);

    /**
     * When the resource next becomes free (lower bound; later admits
     * can only push it further out).
     */
    Tick horizon() const { return static_cast<Tick>(busyUntil); }

    /** Time the resource has spent busy, for utilization stats. */
    Tick busyTime() const { return static_cast<Tick>(_busyTime); }

    /** Service rate in bytes per second. */
    double rate() const { return 1e12 / psPerByte; }

    /** Forget all history. */
    void reset();

  private:
    double psPerByte;
    double busyUntil = 0.0;
    double _busyTime = 0.0;
};

/**
 * One direction of one external link: serialization latency plus the
 * shared-wire occupancy.
 */
class LinkDirection
{
  public:
    /**
     * @param cfg Link bundle configuration.
     * @param propagation_delay Fixed wire/SerDes flight time added to
     *        every packet (board trace + clock-domain crossings).
     * @param seed Seed for the error-injection stream (only used when
     *        cfg.bitErrorRate > 0).
     */
    LinkDirection(const LinkConfig &cfg, Tick propagation_delay,
                  std::uint64_t seed = 0x5EED);

    /**
     * Transmit a packet of @p packet_bytes arriving at @p ready.
     * Corrupted transmissions (per the configured bit error rate) are
     * resent from the retry buffer until one passes CRC.
     * @return Tick at which the packet is fully received at the far
     *         end (serialization + retries + propagation).
     */
    Tick transmit(Tick ready, Bytes packet_bytes);

    /** Bytes actually charged to the wire for a packet. */
    Bytes
    wireBytes(Bytes packet_bytes) const
    {
        return packet_bytes + overhead;
    }

    /** Packets that needed at least one retry. */
    std::uint64_t retries() const { return numRetries; }

    Tick busyTime() const { return wire.busyTime(); }
    void reset();

  private:
    /** True when this transmission attempt is corrupted. */
    bool corrupted(Bytes packet_bytes);

    /** Corruption probability of a @p packet_bytes packet, computed
     *  once per distinct size and cached (it depends only on the bit
     *  count and the configured BER). */
    double errorProbability(Bytes packet_bytes);

    LinkConfig cfg;
    ThroughputRegulator wire;
    Tick propagation;
    Bytes overhead;
    Xoshiro256StarStar rng;
    std::uint64_t numRetries = 0;
    /** p_err cache indexed by packet size; NaN = not yet computed.
     *  Packets are at most 17 flits (~272 B), so the vector stays
     *  tiny and is only populated when bitErrorRate > 0. */
    std::vector<double> errorProbBySize;
};

} // namespace hmcsim

#endif // HMCSIM_LINK_LINK_HH
