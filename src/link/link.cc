// lint:file(hot-path) -- event-core file: allocation-free callables (no std::function) and HMCSIM_DCHECK-only invariants, enforced by hmcsim-lint.
#include "link/link.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace hmcsim
{

ThroughputRegulator::ThroughputRegulator(double bytes_per_second)
    : psPerByte(1e12 / bytes_per_second)
{
    if (bytes_per_second <= 0.0)
        fatal("ThroughputRegulator rate must be positive");
}

Tick
ThroughputRegulator::admit(Tick ready, double bytes)
{
    const double start = std::max(static_cast<double>(ready), busyUntil);
    const double service = bytes * psPerByte;
    busyUntil = start + service;
    _busyTime += service;
    return static_cast<Tick>(busyUntil);
}

void
ThroughputRegulator::reset()
{
    busyUntil = 0.0;
    _busyTime = 0.0;
}

LinkDirection::LinkDirection(const LinkConfig &cfg, Tick propagation_delay,
                             std::uint64_t seed)
    : cfg(cfg),
      wire(cfg.effectiveLinkBytesPerSecond()),
      propagation(propagation_delay),
      overhead(cfg.perPacketOverheadBytes),
      rng(seed)
{
}

double
LinkDirection::errorProbability(Bytes packet_bytes)
{
    if (packet_bytes >= errorProbBySize.size())
        errorProbBySize.resize(packet_bytes + 1,
                               std::numeric_limits<double>::quiet_NaN());
    double &slot = errorProbBySize[packet_bytes];
    if (std::isnan(slot)) {
        // Probability any of the packet's bits flips. Computed with
        // exactly the expression the per-packet path used, so cached
        // and uncached values are bit-identical.
        const double bits =
            static_cast<double>(wireBytes(packet_bytes)) * 8.0;
        slot = 1.0 - std::pow(1.0 - cfg.bitErrorRate, bits);
    }
    return slot;
}

bool
LinkDirection::corrupted(Bytes packet_bytes)
{
    // Error-free links skip the cache and the RNG entirely, exactly
    // like the pre-cache fast path.
    if (cfg.bitErrorRate <= 0.0)
        return false;
    return rng.nextDouble() < errorProbability(packet_bytes);
}

Tick
LinkDirection::transmit(Tick ready, Bytes packet_bytes)
{
    const double bytes = static_cast<double>(wireBytes(packet_bytes));
    Tick done = wire.admit(ready, bytes);
    bool retried = false;
    // Link-level retry: a CRC failure at the receiver triggers a
    // resend from the retry buffer. Bounded only by the (vanishing)
    // probability of repeated corruption.
    while (corrupted(packet_bytes)) {
        retried = true;
        done = wire.admit(done + cfg.retryTurnaround, bytes);
    }
    if (retried)
        ++numRetries;
    return done + propagation;
}

void
LinkDirection::reset()
{
    wire.reset();
    numRetries = 0;
}

} // namespace hmcsim
