/**
 * @file
 * Link-level flow control and retry machinery (Sec. II-B: "The
 * header and tail ensure packet integrity and proper flow control").
 *
 * Two cooperating mechanisms from the HMC link protocol:
 *
 *  - TokenFlowControl: the receiver advertises input-buffer space in
 *    flits; the transmitter consumes a token per flit sent and gets
 *    tokens back via the RTC field of returning packets' tails. When
 *    tokens run out the transmitter must pause -- this is the "stop
 *    signal" of the controller's request flow-control unit (Fig. 14).
 *
 *  - RetryBuffer: every transmitted packet is held, sequence-
 *    numbered, until the far end acknowledges it via the FRP/RRP
 *    retry pointers. A CRC error triggers retransmission of
 *    everything from the failed packet onward (go-back-N), preserving
 *    order without data loss.
 */

#ifndef HMCSIM_LINK_FLOW_CONTROL_HH
#define HMCSIM_LINK_FLOW_CONTROL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Credit-based flow control in flit units. */
class TokenFlowControl
{
  public:
    /** @param buffer_flits Receiver input-buffer capacity. */
    explicit TokenFlowControl(unsigned buffer_flits)
        : capacity(buffer_flits), available(buffer_flits)
    {
    }

    /** Tokens currently available to the transmitter. */
    unsigned tokens() const { return available; }
    unsigned bufferCapacity() const { return capacity; }

    /** Can a packet of @p flits be sent right now? */
    bool canSend(unsigned flits) const { return flits <= available; }

    /**
     * Consume tokens for a transmitted packet.
     * @return false (and consume nothing) when insufficient -- the
     *         caller must assert its stop signal.
     */
    bool
    consume(unsigned flits)
    {
        if (!canSend(flits))
            return false;
        available -= flits;
        return true;
    }

    /** Return tokens announced by a received packet's RTC field. */
    void
    returnTokens(unsigned flits)
    {
        HMCSIM_CHECK(available + flits <= capacity,
                     "token return exceeds buffer capacity "
                     "(available=%u returned=%u capacity=%u)",
                     available, flits, capacity);
        available += flits;
    }

    /** Tokens currently held by in-flight packets. */
    unsigned outstanding() const { return capacity - available; }

    /** True when the transmitter is blocked for a min-size packet. */
    bool stopped() const { return available == 0; }

  private:
    unsigned capacity;
    unsigned available;
};

/** One packet held for possible retransmission. */
struct RetryEntry
{
    std::uint64_t packetId;
    std::uint8_t seq;    ///< 3-bit sequence number.
    unsigned flits;
};

/**
 * Go-back-N retry buffer with 3-bit sequence numbers and 8-bit retry
 * pointers, as carried in the packet tail.
 */
class RetryBuffer
{
  public:
    /** @param depth Maximum unacknowledged packets (< 256). */
    explicit RetryBuffer(unsigned depth = 32) : depth(depth)
    {
        if (depth == 0 || depth >= 256)
            fatal("retry buffer depth must be 1..255");
    }

    /** True when another packet can be transmitted. */
    bool hasSpace() const { return entries.size() < depth; }

    /** Unacknowledged packets currently held. */
    std::size_t occupancy() const { return entries.size(); }

    /**
     * Record a transmitted packet.
     * @return The sequence number to stamp into its tail.
     */
    std::uint8_t
    push(std::uint64_t packet_id, unsigned flits)
    {
        HMCSIM_CHECK(hasSpace(), "retry buffer overflow (depth=%u)",
                     depth);
        const std::uint8_t seq = nextSeq;
        nextSeq = static_cast<std::uint8_t>((nextSeq + 1) & 0x7);
        entries.push_back({packet_id, seq, flits});
        const std::uint8_t frp = nextPointer;
        nextPointer = static_cast<std::uint8_t>(nextPointer + 1);
        pointers.push_back(frp);
        return seq;
    }

    /** Retry pointer of the most recently pushed packet (FRP). */
    std::uint8_t
    lastPointer() const
    {
        HMCSIM_CHECK(!pointers.empty(),
                     "FRP requested with no packets in flight");
        return pointers.back();
    }

    /**
     * Acknowledge everything up to and including retry pointer
     * @p rrp (carried in a returning packet's tail).
     * @return Number of packets released.
     */
    unsigned
    acknowledge(std::uint8_t rrp)
    {
        unsigned released = 0;
        while (!pointers.empty()) {
            const std::uint8_t front = pointers.front();
            // Wrap-aware "front <= rrp" on 8-bit circular space.
            const std::uint8_t distance =
                static_cast<std::uint8_t>(rrp - front);
            if (distance < 128) {
                pointers.pop_front();
                entries.pop_front();
                ++released;
            } else {
                break;
            }
        }
        return released;
    }

    /**
     * A CRC error was detected at the receiver on sequence @p seq:
     * everything from that packet onward must be resent, in order.
     * @return The retransmission list (oldest first).
     */
    std::vector<RetryEntry>
    retryFrom(std::uint8_t seq)
    {
        std::vector<RetryEntry> replay;
        bool found = false;
        for (const RetryEntry &entry : entries) {
            found = found || entry.seq == seq;
            if (found)
                replay.push_back(entry);
        }
        HMCSIM_CHECK(found || entries.empty(),
                     "retry for unknown sequence number %u",
                     static_cast<unsigned>(seq));
        numRetries += replay.size();
        return replay;
    }

    /** Total packets ever retransmitted. */
    std::uint64_t retransmissions() const { return numRetries; }

  private:
    unsigned depth;
    std::uint8_t nextSeq = 0;
    std::uint8_t nextPointer = 0;
    std::deque<RetryEntry> entries;
    std::deque<std::uint8_t> pointers;
    std::uint64_t numRetries = 0;
};

/**
 * Conservation law of credit-based flow control: every token is either
 * available to the transmitter or held by an in-flight packet, so
 *
 *     tokens() + in_flight_flits() == bufferCapacity()
 *
 * at every drain point. The in-flight count must come from independent
 * bookkeeping (the transmitter counts flits it consumed and has not
 * yet seen returned); a mismatch means tokens leaked or were returned
 * twice -- exactly the class of bug that shows up as a slowly
 * throttling (or over-committing) link thousands of events later.
 */
class TokenConservationChecker : public InvariantChecker
{
  public:
    using InFlightFn = std::function<std::uint64_t()>;

    /**
     * @param name Checker name for diagnostics.
     * @param fc The token counter to audit (must outlive the checker).
     * @param in_flight Independent count of flits currently holding
     *        tokens.
     */
    TokenConservationChecker(std::string name, const TokenFlowControl &fc,
                             InFlightFn in_flight)
        : InvariantChecker(std::move(name)), fc(fc),
          inFlight(std::move(in_flight))
    {
    }

    std::string
    check(Tick) const override
    {
        const std::uint64_t held = inFlight();
        const std::uint64_t sum = fc.tokens() + held;
        if (sum == fc.bufferCapacity())
            return {};
        std::ostringstream out;
        out << "token conservation broken: available=" << fc.tokens()
            << " + in_flight=" << held << " = " << sum
            << " != capacity=" << fc.bufferCapacity()
            << (sum < fc.bufferCapacity() ? " (tokens leaked)"
                                          : " (tokens duplicated)");
        return out.str();
    }

  private:
    const TokenFlowControl &fc;
    InFlightFn inFlight;
};

} // namespace hmcsim

#endif // HMCSIM_LINK_FLOW_CONTROL_HH
