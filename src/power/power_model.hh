/**
 * @file
 * HMC + system power model (Sec. IV-C, Figs. 10-12).
 *
 * The measurement setup reports wall power of the whole machine:
 * 100 W idle, plus the FPGA (constant across experiments by design),
 * plus the HMC. HMC power is decomposed into:
 *
 *  - link energy proportional to raw bytes serialized (SerDes circuits
 *    consume a large share of HMC power [3]-[5]);
 *  - read-path energy proportional to read payload bandwidth plus a
 *    small per-request command cost;
 *  - write-path energy that grows *superlinearly* with write payload
 *    bandwidth. The paper measures write-only traffic to be the most
 *    temperature-sensitive and to fail in cooling environments where
 *    the (higher-bandwidth) read-modify-write mix survives, while
 *    admitting "we could not assert the reason behind this". A
 *    quadratic write term phenomenologically reproduces that ordering:
 *    sustained write duty concentrates heating in the DRAM layers, so
 *    effective write power rises faster than write bandwidth.
 *  - leakage that grows with temperature (coupled via ThermalModel).
 */

#ifndef HMCSIM_POWER_POWER_MODEL_HH
#define HMCSIM_POWER_POWER_MODEL_HH

#include "protocol/packet.hh"
#include "sim/types.hh"
#include "thermal/thermal_model.hh"

namespace hmcsim
{

/** Sustained traffic rates of one workload, in paper units. */
struct TrafficSummary
{
    /** Raw link bandwidth (request+response bytes incl. overhead),
     *  GB/s -- the quantity the paper plots. */
    double rawGBps = 0.0;
    /** Read payload bandwidth, GB/s. */
    double readPayloadGBps = 0.0;
    /** Write payload bandwidth, GB/s. */
    double writePayloadGBps = 0.0;
    /** Read requests per second, millions. */
    double readMrps = 0.0;
    /** Write requests per second, millions. */
    double writeMrps = 0.0;
};

/** Power-model coefficients (see DESIGN.md calibration notes). */
struct PowerParams
{
    /** W per GB/s of raw link traffic (SerDes + packet processing). */
    double linkPerGBps = 0.02;
    /** W per GB/s of read payload (array + TSV read energy). */
    double readPerGBps = 0.08;
    /** W per Mreq/s of read commands (row activate overhead). */
    double readPerMrps = 0.005;
    /** W per GB/s of write payload (linear part). */
    double writePerGBps = 0.0;
    /** Coefficient of the superlinear write term (W per
     *  (GB/s)^writeNonlinearExponent of write payload). */
    double writeNonlinearCoeff = 0.00348;
    /** Exponent of the superlinear write term. */
    double writeNonlinearExponent = 3.0;
    /** FPGA power above system idle; constant across experiments. */
    double fpgaActiveW = 6.0;
    /** Machine idle power (paper: 100 W). */
    double systemIdleW = 100.0;

    // Link power management (paper conclusion (vi): high bandwidth
    // needs "optimized low-power mechanisms"). The SerDes lanes burn
    // standby power whenever trained, even with no traffic; HMC's
    // power-state management can put idle links to sleep at the cost
    // of a wake latency.
    /** Standby power per trained link (both directions), W. This sits
     *  inside the measured idle baseline; it only becomes visible
     *  when sleep states reclaim it. */
    double linkStandbyW = 0.9;
    /** Fraction of standby power still drawn in sleep mode. */
    double linkSleepFraction = 0.1;
    /** Link wake latency out of sleep (spec-order ~1 us), charged to
     *  the first access of an idle period. */
    double linkWakeLatencyNs = 1000.0;
};

/** Full power/thermal solution for one workload + cooling config. */
struct PowerThermalResult
{
    /** HMC bandwidth-driven power (W). */
    double hmcDynamicW;
    /** Temperature-dependent leakage at the solution (W). */
    double leakageW;
    /** Wall power: idle + FPGA + HMC dynamic + leakage (W). */
    double systemW;
    /** Steady-state heatsink temperature (deg C). */
    double temperatureC;
    /** Thermal failure (cube shutdown, data loss). */
    bool failure;
};

/** The coupled power/thermal evaluator. */
class PowerModel
{
  public:
    explicit PowerModel(const PowerParams &params = PowerParams{});

    /** Bandwidth-driven HMC power for a traffic mix (no leakage). */
    double hmcDynamicPower(const TrafficSummary &traffic) const;

    /**
     * Solve the coupled steady state for a workload under a cooling
     * configuration.
     */
    PowerThermalResult solve(const TrafficSummary &traffic,
                             RequestMix mix,
                             const CoolingConfig &cooling,
                             const ThermalParams &thermal =
                                 ThermalParams{}) const;

    /**
     * Power reclaimed by putting idle links to sleep, given the
     * fraction of time the links carry traffic.
     *
     * @param duty_cycle Fraction of time the link is active (0..1).
     * @param num_links Trained links.
     * @return Watts saved relative to always-on standby.
     */
    double linkSleepSavings(double duty_cycle, unsigned num_links) const;

    /**
     * Cooling power required to hold @p target_temp_c for a workload
     * (Fig. 12). Interpolates thermal resistance and idle temperature
     * across the Table III configurations as functions of cooling
     * power, then bisects. Returns NaN when even the strongest
     * interpolated cooling cannot reach the target.
     */
    double requiredCoolingPower(const TrafficSummary &traffic,
                                double target_temp_c,
                                const ThermalParams &thermal =
                                    ThermalParams{}) const;

    const PowerParams &params() const { return _params; }

  private:
    PowerParams _params;
};

/**
 * Interpolate a Table III-like cooling configuration for an arbitrary
 * cooling power (clamped mild extrapolation at the ends).
 */
CoolingConfig interpolateCooling(double cooling_power_w);

} // namespace hmcsim

#endif // HMCSIM_POWER_POWER_MODEL_HH
