#include "power/power_model.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace hmcsim
{

PowerModel::PowerModel(const PowerParams &params) : _params(params)
{
}

double
PowerModel::hmcDynamicPower(const TrafficSummary &traffic) const
{
    const PowerParams &p = _params;
    double power = 0.0;
    power += p.linkPerGBps * traffic.rawGBps;
    power += p.readPerGBps * traffic.readPayloadGBps;
    power += p.readPerMrps * traffic.readMrps;
    power += p.writePerGBps * traffic.writePayloadGBps;
    if (traffic.writePayloadGBps > 0.0) {
        power += p.writeNonlinearCoeff *
                 std::pow(traffic.writePayloadGBps,
                          p.writeNonlinearExponent);
    }
    return power;
}

PowerThermalResult
PowerModel::solve(const TrafficSummary &traffic, RequestMix mix,
                  const CoolingConfig &cooling,
                  const ThermalParams &thermal) const
{
    const double dynamic = hmcDynamicPower(traffic);
    const ThermalModel model(cooling, thermal);
    const ThermalResult t = model.steadyState(dynamic, mix);

    // Wall-meter leakage: grows with absolute temperature (the
    // power/temperature coupling of Fig. 10), referenced to the
    // strongest-cooling idle point.
    const double metered_leak =
        std::max(0.0, thermal.leakagePerDegC *
                          (t.temperatureC - thermal.globalLeakageRefC));

    PowerThermalResult res;
    res.hmcDynamicW = dynamic;
    res.leakageW = metered_leak;
    res.systemW = _params.systemIdleW + _params.fpgaActiveW + dynamic +
                  metered_leak;
    res.temperatureC = t.temperatureC;
    res.failure = t.failure;
    return res;
}

double
PowerModel::linkSleepSavings(double duty_cycle,
                             unsigned num_links) const
{
    const double idle = std::clamp(1.0 - duty_cycle, 0.0, 1.0);
    return _params.linkStandbyW * num_links * idle *
           (1.0 - _params.linkSleepFraction);
}

CoolingConfig
interpolateCooling(double cooling_power_w)
{
    // Table III rows ordered by decreasing cooling power (Cfg1..Cfg4).
    const auto &cfgs = coolingConfigs();
    const double hi = cfgs.front().coolingPowerW;
    const double lo = cfgs.back().coolingPowerW;
    const double w = std::clamp(cooling_power_w, lo - 2.0, hi + 4.0);

    // Find the bracketing pair (piecewise linear in cooling power).
    std::size_t upper = 0;
    while (upper + 2 < cfgs.size() &&
           w < cfgs[upper + 1].coolingPowerW) {
        ++upper;
    }
    const CoolingConfig &a = cfgs[upper];     // stronger cooling
    const CoolingConfig &b = cfgs[upper + 1]; // weaker cooling
    const double span = a.coolingPowerW - b.coolingPowerW;
    const double f = span > 0.0 ? (w - b.coolingPowerW) / span : 0.0;

    CoolingConfig out;
    out.name = "interp";
    out.coolingPowerW = w;
    out.fanVoltage = b.fanVoltage + f * (a.fanVoltage - b.fanVoltage);
    out.fanCurrent = b.fanCurrent + f * (a.fanCurrent - b.fanCurrent);
    out.fanDistanceCm =
        b.fanDistanceCm + f * (a.fanDistanceCm - b.fanDistanceCm);
    out.idleTemperatureC =
        b.idleTemperatureC + f * (a.idleTemperatureC - b.idleTemperatureC);
    out.thermalResistance =
        b.thermalResistance + f * (a.thermalResistance - b.thermalResistance);
    // Keep extrapolated values physical.
    out.thermalResistance = std::max(0.1, out.thermalResistance);
    out.idleTemperatureC = std::max(25.0, out.idleTemperatureC);
    return out;
}

double
PowerModel::requiredCoolingPower(const TrafficSummary &traffic,
                                 double target_temp_c,
                                 const ThermalParams &thermal) const
{
    const double dynamic = hmcDynamicPower(traffic);

    auto temperature_at = [&](double w) {
        const ThermalModel model(interpolateCooling(w), thermal);
        // The iso-temperature lines of Fig. 12 are drawn irrespective
        // of the failure bound, so use the read limit here.
        return model.steadyState(dynamic, RequestMix::ReadOnly)
            .temperatureC;
    };

    double lo = 8.0;   // weakest cooling considered
    double hi = 24.0;  // strongest cooling considered
    if (temperature_at(hi) > target_temp_c)
        return std::numeric_limits<double>::quiet_NaN();
    if (temperature_at(lo) <= target_temp_c)
        return lo;
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (temperature_at(mid) > target_temp_c)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace hmcsim
