#include "dram/timings.hh"

namespace hmcsim
{

const char *
pagePolicyName(PagePolicy policy)
{
    return policy == PagePolicy::Closed ? "closed-page" : "open-page";
}

DramTimings
hmcGen2Timings()
{
    DramTimings t;
    t.tRcd = nsToTicks(13.0);
    t.tCl = nsToTicks(13.0);
    t.tRp = nsToTicks(13.0);
    t.tRas = nsToTicks(27.0);
    t.tWr = nsToTicks(14.0);
    // Vault TSV data bus: 32 B granularity at 10 GB/s -> 3.2 ns/beat.
    t.tBeat = nsToTicks(3.2);
    t.beatBytes = 32;
    t.rowBytes = 256;
    return t;
}

DramTimings
ddr4Timings()
{
    DramTimings t;
    t.tRcd = nsToTicks(13.75);
    t.tCl = nsToTicks(13.75);
    t.tRp = nsToTicks(13.75);
    t.tRas = nsToTicks(32.0);
    t.tWr = nsToTicks(15.0);
    // DDR4-2400 x64 channel: 32 B move in a BL4 chunk ~ 1.67 ns.
    t.tBeat = nsToTicks(1.67);
    t.beatBytes = 32;
    t.rowBytes = 1024;
    return t;
}

} // namespace hmcsim
