/**
 * @file
 * A single DRAM bank modeled as a busy-until resource with row state.
 *
 * The bank serializes its own accesses (one row cycle at a time) but
 * different banks of a vault overlap freely -- that overlap is the
 * bank-level parallelism (BLP) the paper's access patterns probe.
 */

#ifndef HMCSIM_DRAM_BANK_HH
#define HMCSIM_DRAM_BANK_HH

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dram/timings.hh"
#include "mem/access_result.hh"
#include "sim/check.hh"
#include "sim/types.hh"

namespace hmcsim
{
// BankAccessResult now lives in mem/access_result.hh: it is the
// MemoryBackend interface's return contract, shared by every storage
// engine, not a Bank implementation detail.

/** DRAM bank state machine. */
class Bank
{
  public:
    Bank() = default;

    /**
     * Perform an access.
     *
     * Closed page: every access activates, transfers, precharges.
     * Open page: a row hit skips activate and the row stays open; a
     * miss precharges the old row first.
     *
     * @param t Timing parameters.
     * @param policy Row-buffer policy.
     * @param ready Earliest time the command can start at the bank.
     * @param row Target row index.
     * @param bytes Access size (for data-transfer beats).
     * @param is_write Writes pay write-recovery before precharge.
     * @return Data-ready and bank-free times.
     */
    BankAccessResult access(const DramTimings &t, PagePolicy policy,
                            Tick ready, std::uint32_t row, Bytes bytes,
                            bool is_write);

    /** Block the bank for a refresh cycle starting no earlier than
     *  @p ready; any open row is closed. */
    Tick refresh(const DramTimings &t, Tick ready);

    /** Would an access to @p row hit the open row buffer? Always
     *  false under the closed-page policy. */
    bool
    wouldHit(PagePolicy policy, std::uint32_t row) const
    {
        return policy == PagePolicy::Open && rowOpen && openRow == row;
    }

    /** Statistics: accesses serviced. */
    std::uint64_t accesses() const { return numAccesses; }
    /** Statistics: open-page row hits. */
    std::uint64_t rowHits() const { return numRowHits; }
    /** Busy time accumulated, for utilization. */
    Tick busyTime() const { return _busyTime; }

    /**
     * Audit the state machine against the configured row policy.
     * Closed-page banks must never hold a row open between accesses,
     * accumulated busy time cannot exceed the busy horizon (busy
     * intervals never overlap), and row hits cannot outnumber
     * accesses. @return Empty when legal, else a report.
     */
    std::string
    validate(PagePolicy policy) const
    {
        std::ostringstream out;
        if (policy == PagePolicy::Closed && rowOpen) {
            out << "closed-page bank left row " << openRow << " open";
            return out.str();
        }
        if (policy == PagePolicy::Closed && numRowHits > 0) {
            out << "closed-page bank recorded " << numRowHits
                << " row hits";
            return out.str();
        }
        if (_busyTime > busyUntil) {
            out << "busy time " << _busyTime
                << " exceeds busy horizon " << busyUntil
                << " (overlapping row cycles)";
            return out.str();
        }
        if (numRowHits > numAccesses) {
            out << numRowHits << " row hits for only " << numAccesses
                << " accesses";
            return out.str();
        }
        return {};
    }

    void reset();

  private:
    Tick busyUntil = 0;
    bool rowOpen = false;
    std::uint32_t openRow = 0;
    std::uint64_t numAccesses = 0;
    std::uint64_t numRowHits = 0;
    Tick _busyTime = 0;
};

/**
 * Invariant checker over a set of banks (one vault's worth): each
 * bank's state machine must stay legal for the vault's row policy.
 * The banks are referenced through an accessor so the checker tracks
 * the owner's live container even if it reallocates.
 */
class BankStateChecker : public InvariantChecker
{
  public:
    using BanksFn = std::function<const std::vector<Bank> &()>;

    BankStateChecker(std::string name, PagePolicy policy, BanksFn banks)
        : InvariantChecker(std::move(name)), policy(policy),
          banks(std::move(banks))
    {
    }

    std::string
    check(Tick) const override
    {
        const std::vector<Bank> &set = banks();
        for (std::size_t i = 0; i < set.size(); ++i) {
            std::string report = set[i].validate(policy);
            if (!report.empty()) {
                std::ostringstream out;
                out << "bank " << i << ": " << report;
                return out.str();
            }
        }
        return {};
    }

  private:
    PagePolicy policy;
    BanksFn banks;
};

} // namespace hmcsim

#endif // HMCSIM_DRAM_BANK_HH
