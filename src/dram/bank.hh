/**
 * @file
 * A single DRAM bank modeled as a busy-until resource with row state.
 *
 * The bank serializes its own accesses (one row cycle at a time) but
 * different banks of a vault overlap freely -- that overlap is the
 * bank-level parallelism (BLP) the paper's access patterns probe.
 */

#ifndef HMCSIM_DRAM_BANK_HH
#define HMCSIM_DRAM_BANK_HH

#include <cstdint>

#include "dram/timings.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Outcome of one bank access. */
struct BankAccessResult
{
    /** When the first data beat is available on the vault bus. */
    Tick dataReady;
    /** When the bank can accept its next access. */
    Tick bankFree;
    /** Whether the access hit an open row (open-page policy only). */
    bool rowHit;
};

/** DRAM bank state machine. */
class Bank
{
  public:
    Bank() = default;

    /**
     * Perform an access.
     *
     * Closed page: every access activates, transfers, precharges.
     * Open page: a row hit skips activate and the row stays open; a
     * miss precharges the old row first.
     *
     * @param t Timing parameters.
     * @param policy Row-buffer policy.
     * @param ready Earliest time the command can start at the bank.
     * @param row Target row index.
     * @param bytes Access size (for data-transfer beats).
     * @param is_write Writes pay write-recovery before precharge.
     * @return Data-ready and bank-free times.
     */
    BankAccessResult access(const DramTimings &t, PagePolicy policy,
                            Tick ready, std::uint32_t row, Bytes bytes,
                            bool is_write);

    /** Block the bank for a refresh cycle starting no earlier than
     *  @p ready; any open row is closed. */
    Tick refresh(const DramTimings &t, Tick ready);

    /** Would an access to @p row hit the open row buffer? Always
     *  false under the closed-page policy. */
    bool
    wouldHit(PagePolicy policy, std::uint32_t row) const
    {
        return policy == PagePolicy::Open && rowOpen && openRow == row;
    }

    /** Statistics: accesses serviced. */
    std::uint64_t accesses() const { return numAccesses; }
    /** Statistics: open-page row hits. */
    std::uint64_t rowHits() const { return numRowHits; }
    /** Busy time accumulated, for utilization. */
    Tick busyTime() const { return _busyTime; }

    void reset();

  private:
    Tick busyUntil = 0;
    bool rowOpen = false;
    std::uint32_t openRow = 0;
    std::uint64_t numAccesses = 0;
    std::uint64_t numRowHits = 0;
    Tick _busyTime = 0;
};

} // namespace hmcsim

#endif // HMCSIM_DRAM_BANK_HH
