/**
 * @file
 * DRAM timing parameters for the dies stacked inside an HMC.
 *
 * HMC DRAM arrays behave like conventional DRAM banks with a 256 B row
 * and a 32 B data-bus granularity per vault (Sec. II-C). Under the
 * closed-page policy every access pays the full activate/column/
 * precharge sequence; the paper's vault-level numbers (one bank
 * sustains a few GB/s, a vault saturates between 4 and 8 banks) follow
 * from a ~45 ns row cycle.
 */

#ifndef HMCSIM_DRAM_TIMINGS_HH
#define HMCSIM_DRAM_TIMINGS_HH

#include "sim/types.hh"

namespace hmcsim
{

/** Row-buffer management policy. */
enum class PagePolicy
{
    Closed, ///< Precharge after every access (HMC default, Sec. II-C).
    Open,   ///< Leave the row open; hits skip activate+precharge.
};

const char *pagePolicyName(PagePolicy policy);

/** Timing parameters, all in ticks (ps). */
struct DramTimings
{
    Tick tRcd = nsToTicks(13.0);  ///< Activate to column command.
    Tick tCl = nsToTicks(13.0);   ///< Column command to first data.
    Tick tRp = nsToTicks(13.0);   ///< Precharge time.
    Tick tRas = nsToTicks(27.0);  ///< Activate to precharge minimum.
    Tick tWr = nsToTicks(14.0);   ///< Write recovery before precharge.
    Tick tCcd = nsToTicks(5.0);   ///< Column-to-column command spacing.
    /** Time to move one 32 B beat over the vault TSV data bus. */
    Tick tBeat = nsToTicks(1.6);
    /** Beat granularity of the vault data bus. */
    Bytes beatBytes = 32;
    /** DRAM row (page) size: 256 B in HMC vs 512-2048 B in DDR4. */
    Bytes rowBytes = 256;
    /** Refresh interval per bank (tREFI-equivalent). */
    Tick tRefi = nsToTicks(7800.0);
    /** Refresh cycle time. */
    Tick tRfc = nsToTicks(160.0);

    /** Number of data-bus beats a @p bytes access needs. */
    unsigned
    beats(Bytes bytes) const
    {
        return static_cast<unsigned>((bytes + beatBytes - 1) / beatBytes);
    }

    /**
     * Row cycle time: minimum spacing of two activates to the same
     * bank (max of tRAS and the command sequence) plus precharge.
     */
    Tick
    rowCycle() const
    {
        const Tick sequence = tRcd + tCl;
        return (sequence > tRas ? sequence : tRas) + tRp;
    }
};

/** HMC 1.1 (Gen2) die timings used throughout the reproduction. */
DramTimings hmcGen2Timings();

/**
 * DDR4-2400-like timings for the baseline DIMM comparison: larger
 * rows, similar core latencies, faster burst transfers.
 */
DramTimings ddr4Timings();

} // namespace hmcsim

#endif // HMCSIM_DRAM_TIMINGS_HH
