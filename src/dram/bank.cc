// lint:file(hot-path) -- event-core file: allocation-free callables (no std::function) and HMCSIM_DCHECK-only invariants, enforced by hmcsim-lint.
#include "dram/bank.hh"

#include <algorithm>

namespace hmcsim
{

BankAccessResult
Bank::access(const DramTimings &t, PagePolicy policy, Tick ready,
             std::uint32_t row, Bytes bytes, bool is_write)
{
    const Tick start = std::max(ready, busyUntil);
    const Tick transfer = t.tBeat * t.beats(bytes);

    Tick data_ready = 0;
    Tick bank_free = 0;
    bool hit = false;

    if (policy == PagePolicy::Closed) {
        // ACT -> RD/WR -> data -> PRE. The activate sequence must also
        // respect tRAS before the precharge may start.
        const Tick column_done = start + t.tRcd + t.tCl + transfer;
        data_ready = start + t.tRcd + t.tCl;
        Tick pre_start = column_done;
        if (is_write)
            pre_start += t.tWr;
        pre_start = std::max(pre_start, start + t.tRas);
        bank_free = pre_start + t.tRp;
    } else {
        hit = rowOpen && openRow == row;
        Tick act_done;
        if (hit) {
            act_done = start; // Row already open: column access only.
        } else if (rowOpen) {
            // Conflict: precharge the old row, then activate.
            act_done = start + t.tRp + t.tRcd;
        } else {
            act_done = start + t.tRcd;
        }
        data_ready = act_done + t.tCl;
        // Column commands pipeline: the bank accepts the next command
        // after tCCD (or once the data burst is off the bus); tCL is
        // latency, not occupancy.
        bank_free = act_done + std::max(t.tCcd, transfer);
        if (is_write)
            bank_free += t.tWr;
        rowOpen = true;
        openRow = row;
    }

    ++numAccesses;
    if (hit)
        ++numRowHits;
    _busyTime += bank_free - start;
    busyUntil = bank_free;
    return {data_ready, bank_free, hit, start};
}

Tick
Bank::refresh(const DramTimings &t, Tick ready)
{
    const Tick start = std::max(ready, busyUntil);
    busyUntil = start + t.tRfc;
    _busyTime += t.tRfc;
    rowOpen = false;
    return busyUntil;
}

void
Bank::reset()
{
    busyUntil = 0;
    rowOpen = false;
    openRow = 0;
    numAccesses = 0;
    numRowHits = 0;
    _busyTime = 0;
}

} // namespace hmcsim
