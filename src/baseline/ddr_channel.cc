#include "baseline/ddr_channel.hh"

#include <algorithm>
#include <queue>

#include "protocol/packet.hh"
#include "sim/random.hh"

namespace hmcsim
{

namespace
{
/** Map the channel config onto the shared DDR4 storage engine. */
MemoryBackendConfig
backendFor(const DdrChannelConfig &cfg)
{
    MemoryBackendConfig backend;
    backend.kind = BackendKind::Ddr4;
    backend.ddrTimings = cfg.timings;
    backend.ddrPolicy = cfg.policy;
    backend.ddrBusBytesPerSecond = cfg.busBytesPerSecond;
    backend.ddrTFaw = cfg.tFaw;
    backend.ddrActivatesPerFaw = cfg.activatesPerFaw;
    return backend;
}

BackendEnvironment
environmentFor(const DdrChannelConfig &cfg)
{
    BackendEnvironment env;
    env.numBanks = cfg.numBanks;
    env.timings = cfg.timings;
    env.policy = cfg.policy;
    return env;
}
} // namespace

DdrChannel::DdrChannel(const DdrChannelConfig &cfg)
    : cfg(cfg),
      array(makeMemoryBackend(environmentFor(cfg), backendFor(cfg))),
      bus(cfg.busBytesPerSecond)
{
}

Tick
DdrChannel::access(Addr addr, Bytes bytes, bool is_write, Tick arrival)
{
    // The backend does the row-interleaved mapping, tFAW metering, and
    // bank timing; the channel adds its fixed controller/PHY latency
    // in front and the shared data bus behind.
    Packet pkt{};
    pkt.cmd = is_write ? Command::Write : Command::Read;
    pkt.addr = addr;
    pkt.payload = bytes;
    const BankAccessResult res =
        array->accept(pkt, arrival + cfg.fixedLatency);
    const Tick done =
        bus.admit(res.dataReady, static_cast<double>(bytes));

    ++_stats.accesses;
    if (res.rowHit)
        ++_stats.rowHits;
    _stats.payloadBytes += bytes;
    return done;
}

double
DdrChannel::rowHitRate() const
{
    if (_stats.accesses == 0)
        return 0.0;
    return static_cast<double>(_stats.rowHits) /
           static_cast<double>(_stats.accesses);
}

void
DdrChannel::reset()
{
    array->reset();
    bus.reset();
    _stats = DdrChannelStats{};
}

DdrMeasurement
measureDdrPattern(const DdrChannelConfig &cfg, bool linear,
                  Bytes request_size, unsigned outstanding,
                  unsigned num_requests, std::uint64_t seed)
{
    DdrChannel channel(cfg);
    Xoshiro256StarStar rng(seed);

    // Closed-loop driver: keep `outstanding` requests in flight by
    // issuing each new request when the oldest completes.
    std::priority_queue<Tick, std::vector<Tick>,
                        std::greater<Tick>> in_flight;
    Addr cursor = 0;
    double total_latency_ns = 0.0;
    Tick last_done = 0;

    for (unsigned i = 0; i < num_requests; ++i) {
        Tick issue = 0;
        if (in_flight.size() >= outstanding) {
            issue = in_flight.top();
            in_flight.pop();
        }
        Addr addr;
        if (linear) {
            addr = cursor;
            cursor = (cursor + request_size) % cfg.capacity;
        } else {
            addr = rng.nextBounded(cfg.capacity / request_size) *
                   request_size;
        }
        const Tick done = channel.access(addr, request_size, false, issue);
        in_flight.push(done);
        total_latency_ns += ticksToNs(done - issue);
        last_done = std::max(last_done, done);
    }

    DdrMeasurement m;
    m.avgLatencyNs = total_latency_ns / num_requests;
    m.gbps = last_done > 0
                 ? toGBps(bytesPerSecond(
                       static_cast<Bytes>(num_requests) * request_size,
                       last_done))
                 : 0.0;
    m.rowHitRate = channel.rowHitRate();
    return m;
}

} // namespace hmcsim
