#include "baseline/ddr_channel.hh"

#include <algorithm>
#include <queue>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace hmcsim
{

DdrChannel::DdrChannel(const DdrChannelConfig &cfg)
    : cfg(cfg),
      banks(cfg.numBanks),
      bus(cfg.busBytesPerSecond),
      // One "byte" of this regulator = one row activation; the rate
      // enforces the tFAW average (4 ACTs / 30 ns ~ 133 M/s).
      activates(static_cast<double>(cfg.activatesPerFaw) * 1e12 /
                static_cast<double>(cfg.tFaw))
{
    if (cfg.numBanks == 0)
        fatal("DDR channel needs at least one bank");
}

Tick
DdrChannel::access(Addr addr, Bytes bytes, bool is_write, Tick arrival)
{
    // Row-interleaved mapping: consecutive addresses stay within a
    // row, rows round-robin across banks. This is what gives linear
    // traffic its row-buffer locality on a conventional DIMM.
    const Addr row_index = addr / cfg.timings.rowBytes;
    const unsigned bank_idx =
        static_cast<unsigned>(row_index % cfg.numBanks);
    const auto row =
        static_cast<std::uint32_t>(row_index / cfg.numBanks);

    Tick start = arrival + cfg.fixedLatency;
    // Row misses need an activation, which the tFAW window meters.
    if (!banks[bank_idx].wouldHit(cfg.policy, row))
        start = activates.admit(start, 1.0);
    const BankAccessResult res = banks[bank_idx].access(
        cfg.timings, cfg.policy, start, row, bytes, is_write);
    const Tick done =
        bus.admit(res.dataReady, static_cast<double>(bytes));

    ++_stats.accesses;
    if (res.rowHit)
        ++_stats.rowHits;
    _stats.payloadBytes += bytes;
    return done;
}

double
DdrChannel::rowHitRate() const
{
    if (_stats.accesses == 0)
        return 0.0;
    return static_cast<double>(_stats.rowHits) /
           static_cast<double>(_stats.accesses);
}

void
DdrChannel::reset()
{
    for (auto &bank : banks)
        bank.reset();
    bus.reset();
    activates.reset();
    _stats = DdrChannelStats{};
}

DdrMeasurement
measureDdrPattern(const DdrChannelConfig &cfg, bool linear,
                  Bytes request_size, unsigned outstanding,
                  unsigned num_requests, std::uint64_t seed)
{
    DdrChannel channel(cfg);
    Xoshiro256StarStar rng(seed);

    // Closed-loop driver: keep `outstanding` requests in flight by
    // issuing each new request when the oldest completes.
    std::priority_queue<Tick, std::vector<Tick>,
                        std::greater<Tick>> in_flight;
    Addr cursor = 0;
    double total_latency_ns = 0.0;
    Tick last_done = 0;

    for (unsigned i = 0; i < num_requests; ++i) {
        Tick issue = 0;
        if (in_flight.size() >= outstanding) {
            issue = in_flight.top();
            in_flight.pop();
        }
        Addr addr;
        if (linear) {
            addr = cursor;
            cursor = (cursor + request_size) % cfg.capacity;
        } else {
            addr = rng.nextBounded(cfg.capacity / request_size) *
                   request_size;
        }
        const Tick done = channel.access(addr, request_size, false, issue);
        in_flight.push(done);
        total_latency_ns += ticksToNs(done - issue);
        last_done = std::max(last_done, done);
    }

    DdrMeasurement m;
    m.avgLatencyNs = total_latency_ns / num_requests;
    m.gbps = last_done > 0
                 ? toGBps(bytesPerSecond(
                       static_cast<Bytes>(num_requests) * request_size,
                       last_done))
                 : 0.0;
    m.rowHitRate = channel.rowHitRate();
    return m;
}

} // namespace hmcsim
