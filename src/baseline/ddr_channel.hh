/**
 * @file
 * Baseline DDR4-like DIMM channel.
 *
 * The paper repeatedly contrasts HMC's closed-page, low-order-
 * interleaved organization against conventional JEDEC DIMMs: open
 * page policy, large rows, row-buffer locality, and a single shared
 * synchronous bus (Secs. I, II-C, IV-D). This module implements that
 * conventional organization so the contrast is measurable: linear
 * traffic enjoys row hits on DDR but gains nothing on HMC.
 *
 * The array model itself now lives in mem/ddr4_backend.* behind the
 * MemoryBackend interface (shared with the vault controllers); this
 * channel is a thin wrapper that keeps the standalone closed-loop
 * measurement API alive. New experiment code should select the
 * backend through ExperimentConfig (device.vault.backend) instead of
 * driving this wrapper -- hmcsim-lint's deprecated-ddr-entry rule
 * flags new callers.
 */

#ifndef HMCSIM_BASELINE_DDR_CHANNEL_HH
#define HMCSIM_BASELINE_DDR_CHANNEL_HH

#include <cstdint>
#include <memory>

#include "dram/timings.hh"
#include "link/link.hh"
#include "mem/backend.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Configuration of the baseline channel. */
struct DdrChannelConfig
{
    unsigned numBanks = 16;
    DramTimings timings = ddr4Timings();
    PagePolicy policy = PagePolicy::Open;
    /** Shared channel data bus (DDR4-2400 x64: 19.2 GB/s). */
    double busBytesPerSecond = 19.2e9;
    /** Controller + PHY fixed latency per access. */
    Tick fixedLatency = nsToTicks(20.0);
    /** Channel capacity. */
    Bytes capacity = 4 * gib;
    /** Four-activate window: at most @ref activatesPerFaw row
     *  activations per tFAW across the whole rank. This is what
     *  keeps random (row-missing) DDR traffic well under the bus
     *  peak on real DIMMs. */
    Tick tFaw = nsToTicks(30.0);
    unsigned activatesPerFaw = 4;
};

/** Channel statistics. */
struct DdrChannelStats
{
    std::uint64_t accesses = 0;
    std::uint64_t rowHits = 0;
    Bytes payloadBytes = 0;
};

/**
 * Analytic DDR channel: row-interleaved mapping (consecutive
 * addresses fill a row, then move to the next bank). A wrapper over
 * the Ddr4Backend storage engine plus the channel's shared data bus.
 */
class DdrChannel
{
  public:
    explicit DdrChannel(const DdrChannelConfig &cfg);

    /**
     * Service one access.
     * @param addr Byte address.
     * @param bytes Access size.
     * @param is_write Write accesses pay write recovery.
     * @param arrival Earliest start time.
     * @return Completion time (data fully transferred).
     */
    Tick access(Addr addr, Bytes bytes, bool is_write, Tick arrival);

    /** Row-buffer hit rate over all accesses so far. */
    double rowHitRate() const;

    const DdrChannelStats &stats() const { return _stats; }
    const DdrChannelConfig &config() const { return cfg; }

    void reset();

  private:
    DdrChannelConfig cfg;
    /** The array model: mapping, tFAW metering, bank timing. */
    std::unique_ptr<MemoryBackend> array;
    ThroughputRegulator bus;
    DdrChannelStats _stats;
};

/** Outcome of a baseline sweep (see measureDdrPattern). */
struct DdrMeasurement
{
    double avgLatencyNs;
    double gbps;
    double rowHitRate;
};

/**
 * Drive the channel with a simple closed-loop of @p outstanding
 * requests (linear or random addressing) and measure sustained
 * bandwidth and average latency.
 *
 * @deprecated Standalone entry point kept for the existing baseline
 * analyses; new code should sweep the ddr4 backend through the
 * unified experiment path (--axis backend=ddr4) so results carry
 * digests and flow through the caches and sinks.
 */
DdrMeasurement measureDdrPattern(const DdrChannelConfig &cfg,
                                 bool linear, Bytes request_size,
                                 unsigned outstanding,
                                 unsigned num_requests,
                                 std::uint64_t seed = 1);

} // namespace hmcsim

#endif // HMCSIM_BASELINE_DDR_CHANNEL_HH
