#include "service/fleet.hh"

#include "runner/thread_pool.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace hmcsim
{

namespace
{

/** Fixed salts decorrelating the routing hashes from each other and
 *  from the generator streams. Constants, not seeds: keyed routing is
 *  a shard map, stable across campaigns by design. */
constexpr std::uint64_t keyRouteSalt = 0x8f5c28f5c28f5c29ULL;
constexpr std::uint64_t uniformRouteSalt = 0x6b43a9b5e4b4d2c7ULL;
constexpr std::uint64_t hotCoinSalt = 0x3c79ac492ba7b653ULL;

std::uint64_t
mix64(std::uint64_t v)
{
    return splitMix64(v); // splitMix64 advances its argument; copy.
}

} // namespace

const char *
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
      case RouterPolicy::Uniform:
        return "uniform";
      case RouterPolicy::Keyed:
        return "keyed";
      case RouterPolicy::HotSpot:
        return "hotspot";
    }
    return "?";
}

bool
parseRouterPolicy(const std::string &name, RouterPolicy &out)
{
    if (name == "uniform")
        out = RouterPolicy::Uniform;
    else if (name == "keyed")
        out = RouterPolicy::Keyed;
    else if (name == "hotspot")
        out = RouterPolicy::HotSpot;
    else
        return false;
    return true;
}

unsigned
routeRequest(RouterPolicy policy, unsigned num_nodes,
             double hot_fraction, std::uint64_t key,
             std::uint64_t ordinal)
{
    if (num_nodes <= 1)
        return 0;
    switch (policy) {
      case RouterPolicy::Uniform:
        break;
      case RouterPolicy::Keyed:
        return static_cast<unsigned>(mix64(key ^ keyRouteSalt) %
                                     num_nodes);
      case RouterPolicy::HotSpot: {
        const double coin =
            static_cast<double>(mix64(ordinal ^ hotCoinSalt) >> 11) *
            0x1.0p-53;
        if (coin < hot_fraction)
            return 0;
        break;
      }
    }
    return static_cast<unsigned>(mix64(ordinal ^ uniformRouteSalt) %
                                 num_nodes);
}

std::vector<FleetRequest>
generateFleetRequests(const FleetConfig &cfg)
{
    const std::uint64_t streamSeed =
        deriveStreamSeed(cfg.seed, cfg.arrival);
    const std::unique_ptr<ArrivalModel> model =
        makeArrivalModel(cfg.arrival, streamSeed);
    // A separate generator for client keys, so key draws never
    // perturb the arrival-time stream (and vice versa).
    std::uint64_t keyState = streamSeed ^ 0x9e3779b97f4a7c15ULL;
    Xoshiro256StarStar keyRng(splitMix64(keyState));
    const std::uint64_t keys = cfg.numKeys ? cfg.numKeys : 1;

    std::vector<FleetRequest> out;
    out.reserve(cfg.requests);
    for (std::uint64_t i = 0; i < cfg.requests; ++i) {
        FleetRequest req;
        req.arrival = model->next();
        req.key = keyRng.nextBounded(keys);
        req.node = routeRequest(cfg.router, cfg.numNodes,
                                cfg.hotFraction, req.key, i);
        out.push_back(req);
    }
    return out;
}

std::uint64_t
fleetNodeSeed(const FleetConfig &cfg, unsigned node)
{
    // Content-addressed like runner/sweep.hh deriveSeed: campaign
    // seed x arrival identity x node index, never 0.
    std::uint64_t state = cfg.seed ^ arrivalConfigDigest(cfg.arrival) ^
                          ((static_cast<std::uint64_t>(node) + 1) *
                           0xd1b54a32d192ed03ULL);
    const std::uint64_t derived = splitMix64(state);
    return derived ? derived : 1;
}

FleetResult
runFleet(const FleetConfig &cfg)
{
    if (cfg.numNodes == 0)
        fatal("fleet needs at least one node");

    // Shard the stream. Arrival order is preserved within each node's
    // vector because the global stream is generated in arrival order.
    const std::vector<FleetRequest> stream =
        generateFleetRequests(cfg);
    std::vector<std::vector<Tick>> perNode(cfg.numNodes);
    for (const FleetRequest &req : stream)
        perNode[req.node].push_back(req.arrival);

    // One simulator per thread, results into pre-assigned slots
    // (the sweep runner's determinism construction).
    FleetResult res;
    res.nodes.resize(cfg.numNodes);
    ThreadPool pool(cfg.jobs ? cfg.jobs
                             : ThreadPool::hardwareConcurrency());
    pool.parallelFor(cfg.numNodes, [&](std::size_t i) {
        ServiceNodeConfig nodeCfg = cfg.node;
        nodeCfg.seed = fleetNodeSeed(cfg, static_cast<unsigned>(i));
        res.nodes[i] = runServiceNode(nodeCfg, perNode[i]).stats;
    });

    // Canonical merge order; the result is order-independent anyway
    // (service_stats.hh), belt and braces.
    for (const ServiceStats &node : res.nodes)
        res.aggregate.merge(node);
    return res;
}

} // namespace hmcsim
