/**
 * @file
 * Service-level statistics for the fleet traffic subsystem
 * (docs/service.md): per-node and aggregate throughput plus exact
 * sojourn-time quantiles.
 *
 * Sojourn time is completion - arrival, measured in integer ticks: it
 * includes the time an open-loop request queued for a free tag before
 * issue, which is exactly what a closed-loop latency measurement
 * cannot see. Quantiles come from TickQuantiles (sim/stats.hh), so
 * p50/p99/p999 name specific observed samples, and every field here
 * is digest-observable and byte-identical at any --jobs: merging is
 * commutative over the sample multiset and the fleet merges in
 * canonical node order anyway.
 */

#ifndef HMCSIM_SERVICE_SERVICE_STATS_HH
#define HMCSIM_SERVICE_SERVICE_STATS_HH

#include <cstdint>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Open-loop service statistics for one node or a whole fleet. */
struct ServiceStats
{
    /** Completed requests. */
    std::uint64_t requests = 0;
    /** Earliest arrival tick observed (maxTick when empty). */
    Tick firstArrival = maxTick;
    /** Latest completion tick observed. */
    Tick lastCompletion = 0;
    /** Integer-tick sojourn sum (exact; 100k requests at ms-scale
     *  sojourns stay far below 2^64). */
    std::uint64_t sumSojournTicks = 0;
    /** Every sojourn sample, for exact quantiles. */
    TickQuantiles sojourn;

    /** Record one completed request. */
    void record(Tick arrival, Tick completion);

    /** Fold another accumulator in (any order; see file comment). */
    void merge(const ServiceStats &other);

    /** Observed span from first arrival to last completion (s). */
    double elapsedSeconds() const;

    /** Completed-request throughput over the observed span, MRPS. */
    double throughputMrps() const;

    double meanSojournNs() const;
    double sojournP50Ns() const { return sojourn.quantileNs(0.5); }
    double sojournP99Ns() const { return sojourn.quantileNs(0.99); }
    double sojournP999Ns() const { return sojourn.quantileNs(0.999); }

    /** FNV-1a digest over counters and the sorted sojourn multiset;
     *  the fleet determinism tests compare these across --jobs. */
    std::uint64_t digest() const;
};

/**
 * One JSONL line (no trailing newline) describing a node's service
 * stats: {"type":"node","node":N,...}. Doubles print with 17
 * significant digits, the same bit-round-trip convention as the sweep
 * sinks (runner/sink.cc).
 */
std::string serviceNodeJsonl(unsigned node, const ServiceStats &stats);

/** Aggregate line: {"type":"aggregate","nodes":N,...}. */
std::string serviceAggregateJsonl(unsigned num_nodes,
                                  const ServiceStats &stats);

} // namespace hmcsim

#endif // HMCSIM_SERVICE_SERVICE_STATS_HH
