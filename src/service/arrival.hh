/**
 * @file
 * Arrival-model library for the fleet traffic service
 * (docs/service.md): generators for the open-loop request streams a
 * datacenter frontend would offer a cube.
 *
 * Three models:
 *
 *  - Poisson: memoryless arrivals at a fixed mean rate, the classic
 *    open-system null model.
 *  - MMPP: a 2-state Markov-modulated Poisson process (calm/burst)
 *    with exponentially-distributed dwell times; bursts are what
 *    detach p999 from p50 at the same mean rate.
 *  - Diurnal: a piecewise-constant rate trace (scale factors over
 *    fixed durations, cycled), modeling the day curve of a real
 *    service; arrivals are drawn by exact inversion of the
 *    non-homogeneous Poisson integral, segment by segment.
 *
 * Determinism contract: a stream is a pure function of
 * (ArrivalConfig, stream seed). Seeds derive content-addressed via
 * splitMix64(seed ^ arrivalConfigDigest(cfg)) -- the same idiom as
 * runner/sweep.hh -- so any node's stream is reproducible in
 * isolation. All floating-point work uses IEEE basic operations and
 * std::fma only (no libm calls whose last bit varies across
 * platforms), so streams are bit-identical across compilers and
 * machines; tests/test_service.cc pins golden draws.
 */

#ifndef HMCSIM_SERVICE_ARRIVAL_HH
#define HMCSIM_SERVICE_ARRIVAL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Which arrival process generates the stream. */
enum class ArrivalKind
{
    Poisson,
    Mmpp,
    Diurnal,
};

const char *arrivalKindName(ArrivalKind kind);

/** Parse "poisson" / "mmpp" / "diurnal"; false on anything else. */
bool parseArrivalKind(const std::string &name, ArrivalKind &out);

/** One piecewise-constant segment of a diurnal rate trace. */
struct DiurnalSegment
{
    /** Segment length in ticks; must be non-zero. */
    Tick duration = 0;
    /** Rate multiplier applied to ArrivalConfig::ratePerSec. */
    double rateScale = 1.0;
};

/** Configuration of one arrival stream. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Mean arrival rate (requests/second of simulated time); the
     *  calm-state rate for MMPP and the trace baseline for Diurnal. */
    double ratePerSec = 2e6;
    /** MMPP burst-state arrival rate. */
    double burstRatePerSec = 8e6;
    /** MMPP mean dwell in the calm state (ticks). */
    Tick meanCalmTicks = 50 * tickUs;
    /** MMPP mean dwell in the burst state (ticks). */
    Tick meanBurstTicks = 10 * tickUs;
    /** Diurnal rate trace, cycled forever; must be non-empty with at
     *  least one positive rateScale for the Diurnal kind. */
    std::vector<DiurnalSegment> trace;
};

/** A generator of one arrival stream. */
class ArrivalModel
{
  public:
    virtual ~ArrivalModel() = default;

    /** Absolute tick of the next arrival; non-decreasing (multiple
     *  arrivals in one tick are legal at high rates). */
    virtual Tick next() = 0;
};

/**
 * Canonical FNV-1a digest of @p cfg (the same canonical-serialization
 * idiom as runner/config_digest.hh, with its own version tag).
 */
std::uint64_t arrivalConfigDigest(const ArrivalConfig &cfg);

/**
 * Content-addressed stream seed: splitMix64(seed ^
 * arrivalConfigDigest(cfg)), never 0. Two campaigns sharing a seed
 * but differing in any arrival parameter get decorrelated streams,
 * and the stream for a given (seed, config) pair can be regenerated
 * anywhere without the rest of the fleet.
 */
std::uint64_t deriveStreamSeed(std::uint64_t seed,
                               const ArrivalConfig &cfg);

/** Build the configured model over @p stream_seed (deriveStreamSeed
 *  output). Validates the config (fatal on a nonpositive rate or an
 *  unusable diurnal trace). */
std::unique_ptr<ArrivalModel> makeArrivalModel(const ArrivalConfig &cfg,
                                               std::uint64_t stream_seed);

/**
 * Diurnal trace round-trip text form: comma-separated
 * "durationTicks:rateScale" segments with the scale in %a hexfloat,
 * so a formatted trace re-parses to bit-identical segments.
 */
std::string formatDiurnalTrace(const std::vector<DiurnalSegment> &trace);

/** Parse formatDiurnalTrace() output (also accepts plain decimal
 *  scales for hand-written traces); false on malformed input. */
bool parseDiurnalTrace(const std::string &text,
                       std::vector<DiurnalSegment> &out);

/**
 * Deterministic -ln(u) for u in (0, 1]: exponent/mantissa split plus
 * an atanh-series polynomial evaluated with std::fma, using only
 * correctly-rounded IEEE operations -- bit-identical on every
 * platform, unlike libm log(). Exposed for the tests; the arrival
 * models use it for every exponential draw.
 */
double negLogUnit(double u);

} // namespace hmcsim

#endif // HMCSIM_SERVICE_ARRIVAL_HH
