#include "service/service_stats.hh"

#include <cstdio>

namespace hmcsim
{

namespace
{

/** Shortest round-trippable decimal form (matches runner/sink.cc). */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
appendStats(std::string &out, const ServiceStats &s)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"requests\":%llu",
                  static_cast<unsigned long long>(s.requests));
    out += buf;
    out += ",\"throughput_mrps\":" + fmtDouble(s.throughputMrps());
    out += ",\"sojourn_avg_ns\":" + fmtDouble(s.meanSojournNs());
    out += ",\"sojourn_p50_ns\":" + fmtDouble(s.sojournP50Ns());
    out += ",\"sojourn_p99_ns\":" + fmtDouble(s.sojournP99Ns());
    out += ",\"sojourn_p999_ns\":" + fmtDouble(s.sojournP999Ns());
    out += ",\"sojourn_max_ns\":" +
           fmtDouble(ticksToNs(s.sojourn.maxTicks()));
    std::snprintf(buf, sizeof(buf), ",\"stat_digest\":\"%016llx\"",
                  static_cast<unsigned long long>(s.digest()));
    out += buf;
}

} // namespace

void
ServiceStats::record(Tick arrival, Tick completion)
{
    ++requests;
    if (arrival < firstArrival)
        firstArrival = arrival;
    if (completion > lastCompletion)
        lastCompletion = completion;
    sumSojournTicks += completion - arrival;
    sojourn.add(completion - arrival);
}

void
ServiceStats::merge(const ServiceStats &other)
{
    requests += other.requests;
    if (other.firstArrival < firstArrival)
        firstArrival = other.firstArrival;
    if (other.lastCompletion > lastCompletion)
        lastCompletion = other.lastCompletion;
    sumSojournTicks += other.sumSojournTicks;
    sojourn.merge(other.sojourn);
}

double
ServiceStats::elapsedSeconds() const
{
    if (requests == 0 || lastCompletion <= firstArrival)
        return 0.0;
    return ticksToSeconds(lastCompletion - firstArrival);
}

double
ServiceStats::throughputMrps() const
{
    const double seconds = elapsedSeconds();
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(requests) / seconds / 1e6;
}

double
ServiceStats::meanSojournNs() const
{
    if (requests == 0)
        return 0.0;
    return ticksToNs(sumSojournTicks) / static_cast<double>(requests);
}

std::uint64_t
ServiceStats::digest() const
{
    // FNV-1a over the counters, then fold in the sojourn multiset's
    // own digest (same idiom as StatRegistry::digest()).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(requests);
    mix(firstArrival);
    mix(lastCompletion);
    mix(sumSojournTicks);
    mix(sojourn.digest());
    return h;
}

std::string
serviceNodeJsonl(unsigned node, const ServiceStats &stats)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "{\"type\":\"node\",\"node\":%u,",
                  node);
    std::string out = buf;
    appendStats(out, stats);
    out += '}';
    return out;
}

std::string
serviceAggregateJsonl(unsigned num_nodes, const ServiceStats &stats)
{
    char buf[56];
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"aggregate\",\"nodes\":%u,", num_nodes);
    std::string out = buf;
    appendStats(out, stats);
    out += '}';
    return out;
}

} // namespace hmcsim
