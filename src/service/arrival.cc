// lint:file(persistence) -- diurnal traces round-trip through text: %a hexfloat only, enforced by hmcsim-lint.
#include "service/arrival.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace hmcsim
{

namespace
{

/**
 * Canonical FNV-1a accumulator, the same hashing idiom as
 * runner/config_digest.cc (kept local there too: the digest is
 * defined by its byte stream, not by sharing code).
 */
struct Fnv1a
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    byte(unsigned char b)
    {
        h ^= b;
        h *= 0x100000001b3ULL;
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const char *s)
    {
        for (; *s; ++s)
            byte(static_cast<unsigned char>(*s));
        byte(0);
    }
};

/** Uniform draw in (0, 1]: never 0, so negLogUnit is always finite. */
double
unitUniform(Xoshiro256StarStar &rng)
{
    return static_cast<double>((rng.next() >> 11) + 1) * 0x1.0p-53;
}

constexpr double ticksPerSecond = static_cast<double>(tickS);

/** Exponential dwell/gap in ticks with the given mean (ticks). */
double
expTicks(Xoshiro256StarStar &rng, double mean_ticks)
{
    return negLogUnit(unitUniform(rng)) * mean_ticks;
}

class PoissonArrivals final : public ArrivalModel
{
  public:
    PoissonArrivals(double rate_per_sec, std::uint64_t seed)
        : rng(seed), meanGapTicks(ticksPerSecond / rate_per_sec)
    {
    }

    Tick
    next() override
    {
        // fma keeps the rounding-offset add out of the compiler's
        // contraction reach: one correctly-rounded operation on every
        // platform (see negLogUnit).
        const double gap = std::fma(negLogUnit(unitUniform(rng)),
                                    meanGapTicks, 0.5);
        t += static_cast<Tick>(gap);
        return t;
    }

  private:
    Xoshiro256StarStar rng;
    double meanGapTicks;
    Tick t = 0;
};

/**
 * Shared core of the two piecewise-constant-rate models: spend one
 * unit-rate exponential of "work" across rate segments (the exact
 * inversion of the non-homogeneous Poisson integral). MMPP draws its
 * segment schedule randomly; Diurnal replays a fixed trace.
 */
class MmppArrivals final : public ArrivalModel
{
  public:
    MmppArrivals(const ArrivalConfig &cfg, std::uint64_t seed)
        : rng(seed)
    {
        ratePerTick[0] = cfg.ratePerSec / ticksPerSecond;
        ratePerTick[1] = cfg.burstRatePerSec / ticksPerSecond;
        meanDwellTicks[0] = static_cast<double>(cfg.meanCalmTicks);
        meanDwellTicks[1] = static_cast<double>(cfg.meanBurstTicks);
        stateEnd = drawDwellEnd();
    }

    Tick
    next() override
    {
        double work = negLogUnit(unitUniform(rng));
        for (;;) {
            const double span = static_cast<double>(stateEnd - t);
            const double capacity = span * ratePerTick[state];
            if (work < capacity) {
                const double offset = work / ratePerTick[state];
                Tick step = static_cast<Tick>(offset + 0.5);
                if (step > stateEnd - t)
                    step = stateEnd - t;
                t += step;
                return t;
            }
            work -= capacity;
            t = stateEnd;
            state ^= 1u;
            stateEnd = drawDwellEnd();
        }
    }

  private:
    Tick
    drawDwellEnd()
    {
        auto dwell =
            static_cast<Tick>(expTicks(rng, meanDwellTicks[state]) + 0.5);
        return t + (dwell ? dwell : 1);
    }

    Xoshiro256StarStar rng;
    double ratePerTick[2] = {0.0, 0.0};
    double meanDwellTicks[2] = {0.0, 0.0};
    unsigned state = 0;
    Tick t = 0;
    Tick stateEnd = 0;
};

class DiurnalArrivals final : public ArrivalModel
{
  public:
    DiurnalArrivals(const ArrivalConfig &cfg, std::uint64_t seed)
        : rng(seed),
          trace(cfg.trace),
          baseRatePerTick(cfg.ratePerSec / ticksPerSecond)
    {
        segEnd = trace.front().duration;
    }

    Tick
    next() override
    {
        double work = negLogUnit(unitUniform(rng));
        for (;;) {
            const double rate =
                baseRatePerTick * trace[segIdx].rateScale;
            const double span = static_cast<double>(segEnd - t);
            const double capacity = span * rate;
            if (rate > 0.0 && work < capacity) {
                const double offset = work / rate;
                Tick step = static_cast<Tick>(offset + 0.5);
                if (step > segEnd - t)
                    step = segEnd - t;
                t += step;
                return t;
            }
            work -= capacity;
            t = segEnd;
            segIdx = (segIdx + 1) % trace.size();
            segEnd = t + trace[segIdx].duration;
        }
    }

  private:
    Xoshiro256StarStar rng;
    std::vector<DiurnalSegment> trace;
    double baseRatePerTick;
    std::size_t segIdx = 0;
    Tick t = 0;
    Tick segEnd = 0;
};

} // namespace

double
negLogUnit(double u)
{
    // Split u = m * 2^e with m in [1, 2); then reduce m into
    // [sqrt(1/2), sqrt(2)) so the series argument stays small:
    // -ln u = -(e * ln2 + ln m).
    std::uint64_t bits;
    std::memcpy(&bits, &u, sizeof(bits));
    int e = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
    std::uint64_t mbits =
        (bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL;
    double m;
    std::memcpy(&m, &mbits, sizeof(m));
    if (m > 1.4142135623730951) {
        m *= 0.5;
        e += 1;
    }

    // ln m = 2 atanh(z), z = (m-1)/(m+1) in (-0.172, 0.172); the odd
    // series 2z * sum z^2k/(2k+1) truncated at z^15 has relative
    // error < 3e-13 -- statistical noise for arrival gaps, while the
    // explicit fma chain keeps every operation correctly rounded and
    // out of the compiler's contraction reach (-ffp-contract never
    // changes a std::fma call), so the result is bit-identical on
    // every platform.
    const double z = (m - 1.0) / (m + 1.0);
    const double z2 = z * z;
    double poly = 1.0 / 15.0;
    poly = std::fma(poly, z2, 1.0 / 13.0);
    poly = std::fma(poly, z2, 1.0 / 11.0);
    poly = std::fma(poly, z2, 1.0 / 9.0);
    poly = std::fma(poly, z2, 1.0 / 7.0);
    poly = std::fma(poly, z2, 1.0 / 5.0);
    poly = std::fma(poly, z2, 1.0 / 3.0);
    poly = std::fma(poly, z2, 1.0);
    const double lnm = 2.0 * z * poly;

    constexpr double ln2 = 0x1.62e42fefa39efp-1;
    const double r = -std::fma(static_cast<double>(e), ln2, lnm);
    // u == 1 can land on -0.0; gaps are nonnegative by definition.
    return r > 0.0 ? r : 0.0;
}

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Mmpp:
        return "mmpp";
      case ArrivalKind::Diurnal:
        return "diurnal";
    }
    return "?";
}

bool
parseArrivalKind(const std::string &name, ArrivalKind &out)
{
    if (name == "poisson")
        out = ArrivalKind::Poisson;
    else if (name == "mmpp")
        out = ArrivalKind::Mmpp;
    else if (name == "diurnal")
        out = ArrivalKind::Diurnal;
    else
        return false;
    return true;
}

std::uint64_t
arrivalConfigDigest(const ArrivalConfig &cfg)
{
    Fnv1a fnv;
    fnv.str("hmcsim.arrival.v1");
    fnv.u64(static_cast<std::uint64_t>(cfg.kind));
    fnv.f64(cfg.ratePerSec);
    fnv.f64(cfg.burstRatePerSec);
    fnv.u64(cfg.meanCalmTicks);
    fnv.u64(cfg.meanBurstTicks);
    fnv.u64(cfg.trace.size());
    for (const DiurnalSegment &seg : cfg.trace) {
        fnv.u64(seg.duration);
        fnv.f64(seg.rateScale);
    }
    return fnv.h;
}

std::uint64_t
deriveStreamSeed(std::uint64_t seed, const ArrivalConfig &cfg)
{
    std::uint64_t state = seed ^ arrivalConfigDigest(cfg);
    const std::uint64_t derived = splitMix64(state);
    return derived ? derived : 1;
}

std::unique_ptr<ArrivalModel>
makeArrivalModel(const ArrivalConfig &cfg, std::uint64_t stream_seed)
{
    if (!(cfg.ratePerSec > 0.0))
        fatal("arrival rate must be positive (got %g)", // lint:allow(hexfloat-persistence) diagnostic text, never persisted
              cfg.ratePerSec);
    switch (cfg.kind) {
      case ArrivalKind::Poisson:
        return std::make_unique<PoissonArrivals>(cfg.ratePerSec,
                                                 stream_seed);
      case ArrivalKind::Mmpp:
        if (!(cfg.burstRatePerSec > 0.0) || cfg.meanCalmTicks == 0 ||
            cfg.meanBurstTicks == 0) {
            fatal("mmpp needs positive burst rate and dwell times");
        }
        return std::make_unique<MmppArrivals>(cfg, stream_seed);
      case ArrivalKind::Diurnal: {
        bool usable = false;
        for (const DiurnalSegment &seg : cfg.trace) {
            if (seg.duration == 0)
                fatal("diurnal segment with zero duration");
            if (seg.rateScale > 0.0)
                usable = true;
        }
        if (!usable)
            fatal("diurnal trace needs at least one positive-rate "
                  "segment");
        return std::make_unique<DiurnalArrivals>(cfg, stream_seed);
      }
    }
    fatal("unknown arrival kind");
    return nullptr;
}

std::string
formatDiurnalTrace(const std::vector<DiurnalSegment> &trace)
{
    std::string out;
    char buf[80];
    for (const DiurnalSegment &seg : trace) {
        std::snprintf(buf, sizeof(buf), "%s%llu:%a",
                      out.empty() ? "" : ",",
                      static_cast<unsigned long long>(seg.duration),
                      seg.rateScale);
        out += buf;
    }
    return out;
}

bool
parseDiurnalTrace(const std::string &text,
                  std::vector<DiurnalSegment> &out)
{
    out.clear();
    const char *p = text.c_str();
    while (*p) {
        char *end = nullptr;
        DiurnalSegment seg;
        seg.duration = std::strtoull(p, &end, 10);
        if (end == p || *end != ':' || seg.duration == 0)
            return false;
        p = end + 1;
        // strtod accepts both the %a round-trip form and plain
        // decimals for hand-written traces.
        seg.rateScale = std::strtod(p, &end);
        if (end == p || seg.rateScale < 0.0)
            return false;
        out.push_back(seg);
        p = end;
        if (*p == ',')
            ++p;
        else if (*p)
            return false;
    }
    return !out.empty();
}

} // namespace hmcsim
