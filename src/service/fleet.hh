/**
 * @file
 * Fleet layer (docs/service.md): N simulated HMC nodes serving one
 * open-loop request stream, sharded by a request router.
 *
 * The stream is generated once, in arrival order, from a
 * content-addressed seed (arrival.hh); routing assigns each request a
 * node as a pure function of (policy, key, ordinal), so shard
 * membership never depends on execution order. Nodes then simulate
 * independently on the runner's ThreadPool -- one simulator per
 * thread, results written into pre-assigned slots, stats merged in
 * canonical node order -- which makes every output byte-identical at
 * any --jobs, the same construction as runner/sweep.hh.
 */

#ifndef HMCSIM_SERVICE_FLEET_HH
#define HMCSIM_SERVICE_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/arrival.hh"
#include "service/node.hh"
#include "service/service_stats.hh"

namespace hmcsim
{

/** How requests are sharded across nodes. */
enum class RouterPolicy
{
    /** Spread independent of key (hash of the request ordinal). */
    Uniform,
    /** hash(key) % nodes: every request for a key lands on one node,
     *  stable under fleet-size-preserving changes (shard affinity). */
    Keyed,
    /** A configured fraction pins to node 0; the rest spread
     *  uniformly. Models a skewed tenant. */
    HotSpot,
};

const char *routerPolicyName(RouterPolicy policy);

/** Parse "uniform" / "keyed" / "hotspot"; false on anything else. */
bool parseRouterPolicy(const std::string &name, RouterPolicy &out);

/** Fleet configuration. */
struct FleetConfig
{
    unsigned numNodes = 4;
    /** Open-loop requests generated for the whole fleet. */
    std::uint64_t requests = 100000;
    ArrivalConfig arrival;
    RouterPolicy router = RouterPolicy::Uniform;
    /** HotSpot: share of requests pinned to node 0. */
    double hotFraction = 0.25;
    /** Client-key population for keyed/hot-spot routing. */
    std::uint64_t numKeys = 1024;
    /** Campaign seed; per-stream and per-node seeds derive from it
     *  content-addressed. */
    std::uint64_t seed = 1;
    /** Concurrent node simulations; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Per-node hardware/pattern/size (its seed field is ignored;
     *  runFleet derives one per node). */
    ServiceNodeConfig node;
};

/** One generated request, already routed. */
struct FleetRequest
{
    Tick arrival = 0;
    std::uint64_t key = 0;
    unsigned node = 0;
};

/**
 * Route one request. Pure function of its arguments -- no RNG state
 * -- so a key's shard can be computed anywhere (the shard-stability
 * property tests/test_service.cc pins).
 */
unsigned routeRequest(RouterPolicy policy, unsigned num_nodes,
                      double hot_fraction, std::uint64_t key,
                      std::uint64_t ordinal);

/** Generate and route the full request stream, in arrival order. */
std::vector<FleetRequest> generateFleetRequests(const FleetConfig &cfg);

/** Content-addressed per-node seed (never 0). */
std::uint64_t fleetNodeSeed(const FleetConfig &cfg, unsigned node);

/** Outcome of one fleet run. */
struct FleetResult
{
    /** Per-node stats, indexed by node id. */
    std::vector<ServiceStats> nodes;
    /** Merge of every node in canonical order. */
    ServiceStats aggregate;
};

/** Serve the configured stream across the fleet. */
FleetResult runFleet(const FleetConfig &cfg);

} // namespace hmcsim

#endif // HMCSIM_SERVICE_FLEET_HH
