/**
 * @file
 * One fleet node: a simulated AC-510 + HMC serving an open-loop
 * request stream (docs/service.md).
 *
 * A node wraps the same host path runExperiment uses (host/ac510.hh)
 * with one GUPS port switched into arrival-driven issue
 * (gups/arrival_feed.hh): the port admits one tagged read per
 * arrival, no earlier than its arrival tick, and the node runs to
 * completion -- no warmup/measure window, every request is measured.
 * One node = one simulator = one thread (the contract in
 * host/ac510.hh); the fleet layer gives each node its own thread-pool
 * task.
 */

#ifndef HMCSIM_SERVICE_NODE_HH
#define HMCSIM_SERVICE_NODE_HH

#include <vector>

#include "host/experiment.hh"
#include "service/service_stats.hh"

namespace hmcsim
{

/**
 * Per-node configuration: the hardware/pattern/size fields every
 * experiment flavor shares, plus the addressing mode. The node's seed
 * must already be derived (fleet.hh does it content-addressed).
 */
struct ServiceNodeConfig : CommonExperimentConfig
{
    AddressingMode mode = AddressingMode::Random;
};

/** Outcome of serving one node's shard of the stream. */
struct ServiceNodeResult
{
    ServiceStats stats;
};

/**
 * Serve @p arrivals (absolute ticks, non-decreasing) on one node and
 * return its service stats. Pure function of (cfg, arrivals):
 * deterministic wherever it runs.
 */
ServiceNodeResult runServiceNode(const ServiceNodeConfig &cfg,
                                 const std::vector<Tick> &arrivals);

} // namespace hmcsim

#endif // HMCSIM_SERVICE_NODE_HH
