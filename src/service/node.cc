#include "service/node.hh"

#include "gups/arrival_feed.hh"
#include "host/ac510.hh"

namespace hmcsim
{

namespace
{

/** Feed a pre-generated arrival vector and collect sojourns. */
class VectorArrivalFeed final : public ArrivalFeed
{
  public:
    VectorArrivalFeed(const std::vector<Tick> &arrivals,
                      ServiceStats &stats)
        : arrivals(arrivals), stats(stats)
    {
    }

    Tick
    peekArrival() const override
    {
        return pos < arrivals.size() ? arrivals[pos] : maxTick;
    }

    void
    pop() override
    {
        ++pos;
    }

    void
    complete(Tick arrival, Tick completion) override
    {
        stats.record(arrival, completion);
    }

  private:
    const std::vector<Tick> &arrivals;
    ServiceStats &stats;
    std::size_t pos = 0;
};

} // namespace

ServiceNodeResult
runServiceNode(const ServiceNodeConfig &cfg,
               const std::vector<Tick> &arrivals)
{
    ServiceNodeResult res;
    VectorArrivalFeed feed(arrivals, res.stats);

    // One port per node: the feed is single-consumer, and one port's
    // tag pool (64 outstanding) is the per-node admission limit.
    Ac510Config sys;
    sys.numPorts = 1;
    sys.port.mix = RequestMix::ReadOnly;
    sys.port.requestSize = cfg.requestSize;
    sys.port.mode = cfg.mode;
    sys.port.mask = cfg.pattern.mask;
    sys.port.antiMask = cfg.pattern.antiMask;
    sys.port.arrivals = &feed;
    sys.device = cfg.device;
    sys.controller = cfg.controller;
    sys.seed = cfg.seed;

    Ac510Module module(sys);
    module.start();
    module.runToCompletion();
    return res;
}

} // namespace hmcsim
