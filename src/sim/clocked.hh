/**
 * @file
 * Clock-domain helper.
 *
 * Components in the modeled system run in different clock domains:
 * the FPGA user logic at 187.5 MHz, vault controllers at an internal
 * DRAM-side clock, and the SerDes lanes at multi-GHz bit clocks. A
 * ClockDomain converts between cycles and ticks, rounding edges the way
 * real synchronizers do (up to the next edge).
 */

#ifndef HMCSIM_SIM_CLOCKED_HH
#define HMCSIM_SIM_CLOCKED_HH

#include "sim/logging.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** A fixed-frequency clock described by its period in ticks. */
class ClockDomain
{
  public:
    /**
     * @param period_ps Clock period in picoseconds; must be non-zero.
     */
    explicit ClockDomain(Tick period_ps) : _period(period_ps)
    {
        if (_period == 0)
            fatal("ClockDomain period must be non-zero");
    }

    /** Construct from a frequency in Hz (rounds the period). */
    static ClockDomain
    fromFrequencyHz(double hz)
    {
        if (hz <= 0.0)
            fatal("ClockDomain frequency must be positive");
        return ClockDomain(static_cast<Tick>(1e12 / hz + 0.5));
    }

    /** Clock period in ticks. */
    Tick period() const { return _period; }

    /** Frequency in Hz. */
    double
    frequencyHz() const
    {
        return 1e12 / static_cast<double>(_period);
    }

    /** Duration of @p n cycles in ticks. */
    Tick cycles(std::uint64_t n) const { return _period * n; }

    /** Number of whole cycles elapsed by tick @p t. */
    std::uint64_t cycleCount(Tick t) const { return t / _period; }

    /**
     * The next clock edge at or after @p t.
     * A component receiving data mid-cycle acts on it at this edge.
     */
    Tick
    nextEdgeAtOrAfter(Tick t) const
    {
        const Tick rem = t % _period;
        return rem == 0 ? t : t + (_period - rem);
    }

  private:
    Tick _period;
};

/** The AC-510's Kintex UltraScale user clock: 187.5 MHz. */
inline ClockDomain
fpgaClock()
{
    // 187.5 MHz -> 5333.33.. ps. Round to 5333 ps; the 0.006% error is
    // far below the model's fidelity and keeps ticks integral.
    return ClockDomain(5333);
}

} // namespace hmcsim

#endif // HMCSIM_SIM_CLOCKED_HH
