// lint:file(hot-path) -- event-core file: allocation-free callables (no std::function) and HMCSIM_DCHECK-only invariants, enforced by hmcsim-lint.
/**
 * @file
 * Allocation-free event callable for the simulation hot path.
 *
 * Every scheduled event used to be a `std::function<void()>`, which
 * heap-allocates once its captures outgrow the implementation's tiny
 * inline buffer (16 bytes on libstdc++). At tens of millions of
 * events per simulated millisecond that allocation -- and the free on
 * execution -- dominates the scheduling cost. `Event` replaces it
 * with a fixed-size small-buffer-optimized callable that *never*
 * allocates: a callable that does not fit the inline budget is a
 * compile error, not a silent heap fallback.
 *
 * The inline budget (eventInlineBytes) is sized for the simulator's
 * audited capture sets -- a receiver pointer plus a pooled Packet
 * pointer plus a couple of scalars (see docs/performance.md). Big
 * state (a Packet, a config struct) must be hoisted into the owning
 * component or a pool and captured by pointer; the static_assert
 * below names the offender when someone forgets.
 *
 * Trivially-copyable captures (the common case: `this`, pooled
 * pointers, indices) take a fast path where the Event itself is
 * relocated with memcpy and destruction is a no-op. Non-trivial
 * callables (e.g. a std::function holding test scaffolding) are still
 * supported inline through a manager function, as long as they fit.
 */

#ifndef HMCSIM_SIM_EVENT_HH
#define HMCSIM_SIM_EVENT_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hmcsim
{

/** Inline capture budget of an Event, in bytes. */
constexpr std::size_t eventInlineBytes = 48;

/** Maximum capture alignment an Event supports. */
constexpr std::size_t eventInlineAlign = 16;

/**
 * A move-only, never-allocating `void()` callable.
 *
 * Empty Events are valid (and not callable); the event queue only
 * stores engaged ones.
 */
class Event
{
  public:
    /** Signature of the type-erased invoke thunk. */
    using InvokeFn = void (*)(void *);

    /**
     * The invoke thunk instantiated for callable type @p D. Exposed so
     * snapshot code (sim/snapshot.hh) can identify a stored callable
     * by comparing invokeTarget() against &invokeAs<KnownType> --
     * the per-type thunk address is the callable's runtime identity.
     */
    template <typename D>
    static void
    invokeAs(void *self)
    {
        (*static_cast<D *>(self))();
    }

    Event() = default;

    /** Wrap any callable whose captures fit the inline budget. */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, Event>>>
    Event(F &&fn) // NOLINT(google-explicit-constructor)
    {
        static_assert(std::is_invocable_r_v<void, D &>,
                      "Event callables take no arguments and return "
                      "void");
        static_assert(sizeof(D) <= eventInlineBytes,
                      "event capture exceeds the inline budget "
                      "(eventInlineBytes): hoist large state (e.g. a "
                      "Packet) into the owning component or a "
                      "PacketPool and capture a pointer instead");
        static_assert(alignof(D) <= eventInlineAlign,
                      "event capture is over-aligned for the inline "
                      "buffer");
        static_assert(std::is_nothrow_move_constructible_v<D>,
                      "event captures must be nothrow "
                      "move-constructible (the queue relocates "
                      "entries)");
        ::new (static_cast<void *>(storage)) D(std::forward<F>(fn));
        invoke_ = &invokeAs<D>;
        if constexpr (!(std::is_trivially_copyable_v<D> &&
                        std::is_trivially_destructible_v<D>)) {
            manager_ = [](Op op, void *dst, void *src) {
                switch (op) {
                  case Op::Relocate:
                    ::new (dst) D(std::move(*static_cast<D *>(src)));
                    static_cast<D *>(src)->~D();
                    break;
                  case Op::Destroy:
                    static_cast<D *>(dst)->~D();
                    break;
                }
            };
        }
    }

    Event(Event &&other) noexcept { moveFrom(other); }

    Event &
    operator=(Event &&other) noexcept
    {
        if (this != &other) {
            clear();
            moveFrom(other);
        }
        return *this;
    }

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    ~Event() { clear(); }

    /** True when a callable is stored. */
    explicit operator bool() const { return invoke_ != nullptr; }

    /** Execute the callable (must be engaged). */
    void operator()() { invoke_(storage); }

    /**
     * The stored callable's invoke thunk, its runtime type identity.
     * Compare against &invokeAs<T> to recognize a known capture type.
     */
    InvokeFn invokeTarget() const { return invoke_; }

    /**
     * True when the stored callable is trivially copyable (and thus
     * trivially destructible): its bytes can be memcpy'd into another
     * Event. Non-trivial callables carry a manager and cannot be
     * cloned byte-wise.
     */
    bool trivialCapture() const { return manager_ == nullptr; }

    /** Raw capture bytes (for snapshot cloning of trivial captures). */
    const void *captureBytes() const { return storage; }

    /**
     * Rebuild an Event from a known invoke thunk and a capture image.
     * Only valid for trivially-copyable captures -- the snapshot layer
     * verifies trivialCapture() on the source before calling this.
     */
    static Event
    fromCaptureImage(InvokeFn invoke, const void *bytes)
    {
        Event ev;
        ev.invoke_ = invoke;
        std::memcpy(ev.storage, bytes, eventInlineBytes);
        return ev;
    }

  private:
    enum class Op
    {
        Relocate,
        Destroy,
    };

    void
    clear()
    {
        if (manager_) {
            manager_(Op::Destroy, storage, nullptr);
            manager_ = nullptr;
        }
        invoke_ = nullptr;
    }

    void
    moveFrom(Event &other)
    {
        invoke_ = other.invoke_;
        manager_ = other.manager_;
        if (manager_) {
            manager_(Op::Relocate, storage, other.storage);
        } else if (invoke_) {
            std::memcpy(storage, other.storage, eventInlineBytes);
        }
        other.invoke_ = nullptr;
        other.manager_ = nullptr;
    }

    alignas(eventInlineAlign) unsigned char storage[eventInlineBytes];
    void (*invoke_)(void *) = nullptr;
    void (*manager_)(Op, void *, void *) = nullptr;
};

} // namespace hmcsim

#endif // HMCSIM_SIM_EVENT_HH
