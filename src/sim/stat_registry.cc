#include "sim/stat_registry.hh"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace hmcsim
{

void
StatRegistry::add(std::string name, std::string description, StatFn value)
{
    if (has(name))
        fatal("duplicate statistic '%s'", name.c_str());
    entries.push_back(
        {std::move(name), std::move(description), std::move(value)});
}

double
StatRegistry::value(const std::string &name) const
{
    for (const StatEntry &entry : entries) {
        if (entry.name == name)
            return entry.value();
    }
    fatal("unknown statistic '%s'", name.c_str());
}

bool
StatRegistry::has(const std::string &name) const
{
    for (const StatEntry &entry : entries) {
        if (entry.name == name)
            return true;
    }
    return false;
}

std::vector<const StatEntry *>
StatRegistry::matching(const std::string &prefix) const
{
    std::vector<const StatEntry *> out;
    for (const StatEntry &entry : entries) {
        if (entry.name.rfind(prefix, 0) == 0)
            out.push_back(&entry);
    }
    std::sort(out.begin(), out.end(),
              [](const StatEntry *a, const StatEntry *b) {
                  return a->name < b->name;
              });
    return out;
}

std::uint64_t
StatRegistry::digest() const
{
    // FNV-1a, 64-bit. Values hash by exact bit pattern (memcpy through
    // uint64) so even sub-ulp nondeterminism changes the digest.
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    const auto mix = [&hash](const unsigned char *bytes, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            hash ^= bytes[i];
            hash *= 0x100000001B3ULL;
        }
    };
    for (const StatEntry *entry : matching("")) {
        mix(reinterpret_cast<const unsigned char *>(entry->name.data()),
            entry->name.size());
        const double value = entry->value();
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(value));
        std::memcpy(&bits, &value, sizeof(bits));
        mix(reinterpret_cast<const unsigned char *>(&bits),
            sizeof(bits));
    }
    return hash;
}

std::string
StatRegistry::dumpText() const
{
    const auto sorted = matching("");
    std::size_t width = 0;
    for (const StatEntry *entry : sorted)
        width = std::max(width, entry->name.size());

    std::ostringstream out;
    for (const StatEntry *entry : sorted) {
        out << std::left << std::setw(static_cast<int>(width) + 2)
            << entry->name << std::setprecision(6) << entry->value();
        if (!entry->description.empty())
            out << "  # " << entry->description;
        out << '\n';
    }
    return out.str();
}

std::string
StatRegistry::dumpCsv() const
{
    std::ostringstream out;
    out << "stat,value\n";
    for (const StatEntry *entry : matching(""))
        out << entry->name << ',' << std::setprecision(9)
            << entry->value() << '\n';
    return out.str();
}

} // namespace hmcsim
