/**
 * @file
 * Pointer translation and event cloning for simulator snapshot/fork.
 *
 * A warmed simulator is forked by value-copying every component's
 * state into a freshly built twin (src/host/ac510.cc). Two kinds of
 * state cannot be copied bit-for-bit: pointers into the source world
 * (component `this` pointers, pooled Packet slots) and the pending
 * events that capture them. This header provides both halves:
 *
 *  - SnapshotFixup: an old-world -> new-world address map. Components
 *    and pool blocks register their source/destination extents; any
 *    pointer captured by pending state is then translated through it.
 *  - EventRelocator + cloneEventQueue(): pending events are recognized
 *    by their Event invoke thunk (sim/event.hh invokeAs<T> -- the
 *    per-type thunk address is the capture's runtime identity), their
 *    capture bytes are memcpy'd, and a per-type relocate hook rewrites
 *    the embedded pointers through the fixup map. An event whose type
 *    is not in the relocator table is fatal: forking is only supported
 *    for the audited main-path capture set (docs/performance.md).
 *
 * Everything here is read-only on the source simulator, so multiple
 * worker threads may fork the same quiescent warm module concurrently
 * (exercised by the TSan CI job).
 */

#ifndef HMCSIM_SIM_SNAPSHOT_HH
#define HMCSIM_SIM_SNAPSHOT_HH

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "sim/check.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"

namespace hmcsim
{

/**
 * Old-world -> new-world address translation for snapshot restore.
 *
 * Mappings are either single objects or contiguous ranges (e.g. a
 * PacketPool block); translate() resolves a source pointer to the
 * same offset in the destination extent. The handful of mappings a
 * simulator registers (one controller, a few ports, a few pool
 * blocks) makes a linear scan faster than any associative container,
 * and keeps iteration order deterministic.
 */
class SnapshotFixup
{
  public:
    /** Map the single object at @p from onto @p to. */
    template <typename T>
    void
    mapObject(const T *from, T *to)
    {
        mapRange(from, from + 1, to);
    }

    /** Map the extent [@p from, @p from_end) onto the extent starting
     *  at @p to (same length, same element type). */
    template <typename T>
    void
    mapRange(const T *from, const T *from_end, T *to)
    {
        ranges.push_back({reinterpret_cast<std::uintptr_t>(from),
                          reinterpret_cast<std::uintptr_t>(from_end),
                          reinterpret_cast<std::uintptr_t>(to)});
    }

    /**
     * Translate a source-world pointer into the forked world.
     * Null maps to null; an unmapped non-null pointer is fatal --
     * it would silently alias the source simulator.
     */
    template <typename T>
    T *
    translate(T *old) const
    {
        if (old == nullptr)
            return nullptr;
        const auto p = reinterpret_cast<std::uintptr_t>(old);
        for (const auto &r : ranges) {
            if (p >= r.begin && p < r.end)
                return reinterpret_cast<T *>(r.target + (p - r.begin));
        }
        HMCSIM_CHECK(false,
                     "snapshot fork: pointer %p not covered by any "
                     "registered source extent",
                     static_cast<const void *>(old));
        return nullptr;
    }

  private:
    struct Range
    {
        std::uintptr_t begin;
        std::uintptr_t end;
        std::uintptr_t target;
    };

    std::vector<Range> ranges;
};

/**
 * How to clone one known event-capture type: identified by its invoke
 * thunk, relocated by rewriting its captured pointers through the
 * fixup map. Build entries with makeEventRelocator<T>().
 */
struct EventRelocator
{
    Event::InvokeFn invoke;
    void (*relocate)(void *capture, const SnapshotFixup &fixup);
    const char *name;
};

/**
 * Relocator entry for capture type @p T, which must be trivially
 * copyable and provide `void relocate(const SnapshotFixup &)`
 * rewriting every captured pointer.
 */
template <typename T>
EventRelocator
makeEventRelocator(const char *name)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "forked event captures must be trivially copyable");
    return {&Event::invokeAs<T>,
            [](void *capture, const SnapshotFixup &fixup) {
                static_cast<T *>(capture)->relocate(fixup);
            },
            name};
}

/**
 * Re-create every pending event of @p src inside @p dst (which must
 * be freshly constructed). Clones are scheduled in ascending
 * original-seq order and the source's counters are adopted, so the
 * forked queue executes the identical (when, seq) order. Fatal on an
 * event type missing from @p relocators or on a non-trivial capture.
 */
void cloneEventQueue(const EventQueue &src, EventQueue &dst,
                     const SnapshotFixup &fixup,
                     const std::vector<EventRelocator> &relocators);

} // namespace hmcsim

#endif // HMCSIM_SIM_SNAPSHOT_HH
