/**
 * @file
 * Error and status reporting, in the spirit of gem5's base/logging.hh.
 *
 * panic()  - internal simulator invariant violated; aborts.
 * fatal()  - user/configuration error; exits with status 1.
 * warn()   - something questionable happened but simulation continues.
 * inform() - plain status message.
 *
 * Thread safety: all four are safe to call from concurrent sweep
 * workers -- each report is emitted atomically under an internal
 * mutex, and the inform() enable flag is atomic. setInformEnabled()
 * is process-global; flip it before spawning workers.
 */

#ifndef HMCSIM_SIM_LOGGING_HH
#define HMCSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace hmcsim
{

/** Abort the process after printing a printf-style message. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) after printing a printf-style message. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

// Invariant checking (the former HMCSIM_ASSERT) lives in sim/check.hh:
// HMCSIM_CHECK stays active in release builds, HMCSIM_DCHECK compiles
// out unless HMCSIM_DCHECK_ENABLED, and both report the current tick.

} // namespace hmcsim

#endif // HMCSIM_SIM_LOGGING_HH
