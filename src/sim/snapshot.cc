#include "sim/snapshot.hh"

namespace hmcsim
{

void
cloneEventQueue(const EventQueue &src, EventQueue &dst,
                const SnapshotFixup &fixup,
                const std::vector<EventRelocator> &relocators)
{
    dst.restoreBegin(src.now());
    for (const auto &view : src.pendingSnapshot()) {
        HMCSIM_CHECK(view.ev->trivialCapture(),
                     "snapshot fork: pending event holds a non-trivial "
                     "capture (seq=%llu when=%llu)",
                     static_cast<unsigned long long>(view.seq),
                     static_cast<unsigned long long>(view.when));
        const EventRelocator *handler = nullptr;
        for (const auto &r : relocators) {
            if (r.invoke == view.ev->invokeTarget()) {
                handler = &r;
                break;
            }
        }
        HMCSIM_CHECK(handler != nullptr,
                     "snapshot fork: pending event of unknown type "
                     "(seq=%llu when=%llu) -- only the audited "
                     "main-path captures can be forked",
                     static_cast<unsigned long long>(view.seq),
                     static_cast<unsigned long long>(view.when));
        alignas(eventInlineAlign) unsigned char capture[eventInlineBytes];
        std::memcpy(capture, view.ev->captureBytes(), eventInlineBytes);
        handler->relocate(capture, fixup);
        dst.schedule(view.when,
                     Event::fromCaptureImage(handler->invoke, capture));
    }
    dst.restoreFinish(src.seqCounter(), src.executed(),
                      src.eventsSinceCheckCount());
}

} // namespace hmcsim
