#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace hmcsim
{

void
SampleStats::merge(const SampleStats &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel variance combination.
    const double delta = other.welfordMean - welfordMean;
    const auto na = static_cast<double>(_count);
    const auto nb = static_cast<double>(other._count);
    const double n = na + nb;
    welfordMean += delta * nb / n;
    welfordM2 += other.welfordM2 + delta * delta * na * nb / n;
    _count += other._count;
    _sum += other._sum;
    if (other._min < _min)
        _min = other._min;
    if (other._max > _max)
        _max = other._max;
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

void
SampleStats::combineChunk(const double *values, std::size_t n)
{
    // Chunk mean and M2 with four-way partial sums (vectorizable, no
    // loop-carried divide), folded into the running accumulators by
    // the same Chan et al. combination merge() uses. This replaces
    // the per-sample Welford recurrence, whose delta/count divide is
    // a ~14-cycle loop-carried chain.
    double s0 = 0.0;
    double s1 = 0.0;
    double s2 = 0.0;
    double s3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += values[i];
        s1 += values[i + 1];
        s2 += values[i + 2];
        s3 += values[i + 3];
    }
    for (; i < n; ++i)
        s0 += values[i];
    const double cmean = (s0 + s1 + s2 + s3) / static_cast<double>(n);

    double q0 = 0.0;
    double q1 = 0.0;
    double q2 = 0.0;
    double q3 = 0.0;
    i = 0;
    for (; i + 4 <= n; i += 4) {
        const double d0 = values[i] - cmean;
        const double d1 = values[i + 1] - cmean;
        const double d2 = values[i + 2] - cmean;
        const double d3 = values[i + 3] - cmean;
        q0 += d0 * d0;
        q1 += d1 * d1;
        q2 += d2 * d2;
        q3 += d3 * d3;
    }
    for (; i < n; ++i) {
        const double d = values[i] - cmean;
        q0 += d * d;
    }
    const double cm2 = q0 + q1 + q2 + q3;

    if (_count == 0) {
        welfordMean = cmean;
        welfordM2 = cm2;
    } else {
        const double delta = cmean - welfordMean;
        const auto na = static_cast<double>(_count);
        const auto nb = static_cast<double>(n);
        const double nt = na + nb;
        welfordMean += delta * nb / nt;
        welfordM2 += cm2 + delta * delta * na * nb / nt;
    }
    _count += n;
}

void
SampleStats::sampleBatch(const double *values, std::size_t n)
{
    if (n == 0)
        return;
    // Sequential sum/min/max in array order: bit-identical to the
    // per-sample path (see the header contract).
    double acc = _sum;
    double mn = _min;
    double mx = _max;
    for (std::size_t i = 0; i < n; ++i) {
        const double v = values[i];
        acc += v;
        if (v < mn)
            mn = v;
        if (v > mx)
            mx = v;
    }
    _sum = acc;
    _min = mn;
    _max = mx;
    combineChunk(values, n);
}

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo(lo), hi(hi),
      width((hi - lo) / static_cast<double>(num_bins)),
      bins(num_bins, 0)
{
    if (num_bins == 0)
        fatal("Histogram needs at least one bin");
    if (hi <= lo)
        fatal("Histogram range must be non-empty");
    buildTickPlan();
}

void
Histogram::buildTickPlan()
{
    // bin(t) = t / widthTicks matches the floating-point path
    // fl((fl(t / 1000) - lo) / width) for every tick t when:
    //  - lo is exactly 0, so the subtraction is the identity;
    //  - the bin width is an exact integer number of ticks W that is
    //    a multiple of 125, making width = W/1000 = (W/125)/8 dyadic
    //    and hence exactly representable, as is every bin boundary
    //    product k * width below 2^53;
    //  - width * num_bins reproduces hi exactly, so the overflow
    //    predicate t >= W * num_bins coincides with v >= hi;
    //  - W * num_bins < 1e12, bounding the division's rounding error
    //    (<= num_bins * 2^-51 relative) strictly inside the distance
    //    to the nearest bin boundary.
    // Exact boundaries t = k*W land in bin k on both paths because
    // the quotient is exact. Anything else keeps tickPlan false and
    // the flush falls back to per-sample floating-point binning.
    static_assert(tickNs == 1000, "tick plan derivation assumes ps ticks");
    if (lo != 0.0 || width <= 0.0 || width >= 1e12)
        return;
    const auto w_ticks =
        static_cast<std::uint64_t>(std::llround(width * 1000.0));
    const auto nbins = static_cast<double>(bins.size());
    if (w_ticks >= 1 && w_ticks % 125 == 0 &&
        width == static_cast<double>(w_ticks) / 1000.0 &&
        width * nbins == hi &&
        static_cast<double>(w_ticks) * nbins < 1e12) {
        tickBinTicks = w_ticks;
        tickOverflowTicks =
            w_ticks * static_cast<std::uint64_t>(bins.size());
        // Rounded-up reciprocal for a divide-free, fixup-free bin(t):
        // w_ticks never divides 2^64 (it has a factor of 5^3), so
        // (2^64 - 1) / W equals floor(2^64 / W) and magic = that + 1
        // satisfies magic * W = 2^64 + e with 0 < e < W. Then
        // mulhi(t, magic) = floor(t/W + t*e / (W * 2^64)), which is
        // exactly t / W for every t below tickOverflowTicks provided
        // (tickOverflowTicks - 1) * e < 2^64 -- the worst case is
        // t = qW + (W-1), where the error term must stay under 1/W.
        // flushInto's hot loop relies on this being exact: it does a
        // single multiply-high per sample, no divide, no fixup.
        tickBinMagic = ~std::uint64_t{0} / w_ticks + 1;
        const std::uint64_t excess = tickBinMagic * w_ticks; // mod 2^64
        tickPlan = (unsigned __int128){tickOverflowTicks - 1} * excess <
                   ((unsigned __int128){1} << 64);
    }
}

void
Histogram::sample(double value)
{
    ++total;
    if (value < lo) {
        ++_underflow;
    } else if (value >= hi) {
        ++_overflow;
    } else {
        auto bin = static_cast<std::size_t>((value - lo) / width);
        if (bin >= bins.size())
            bin = bins.size() - 1; // floating point edge
        ++bins[bin];
    }
}

void
Histogram::merge(const Histogram &other)
{
    if (bins.size() != other.bins.size() || lo != other.lo ||
        hi != other.hi)
        fatal("merging histograms with different binning");
    for (std::size_t i = 0; i < bins.size(); ++i)
        bins[i] += other.bins[i];
    _underflow += other._underflow;
    _overflow += other._overflow;
    total += other.total;
}

void
Histogram::reset()
{
    for (auto &bin : bins)
        bin = 0;
    _underflow = 0;
    _overflow = 0;
    total = 0;
}

double
Histogram::binCenter(std::size_t bin) const
{
    return lo + (static_cast<double>(bin) + 0.5) * width;
}

double
Histogram::quantile(double p) const
{
    if (total == 0)
        return 0.0;
    const std::uint64_t target = quantileTargetRank(total, p);
    std::uint64_t seen = _underflow;
    if (seen > target)
        return lo;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        seen += bins[i];
        if (seen > target)
            return binCenter(i);
    }
    return hi;
}

void
TickLatencyBatch::flushInto(SampleStats &stats, Histogram *hist)
{
    const std::size_t cnt = n;
    n = 0;
    if (cnt == 0)
        return;

    // One fused pass: the tick->ns conversion divide is the only
    // divider-port operation left, and the pinned sequential sum
    // chain, the integer min/max, and the histogram increments all
    // hide under it. Splitting these into separate passes measurably
    // loses -- the passes stop overlapping and the serial sum chain
    // runs alone (docs/performance.md).
    double ns[capacity];
    double acc = stats._sum;
    Tick tmin = ~Tick{0};
    Tick tmax = 0;

    if (hist != nullptr && hist->tickPlan) {
        const std::uint64_t magic = hist->tickBinMagic;
        const std::uint64_t overflow_at = hist->tickOverflowTicks;
        std::uint64_t *bin_data = hist->bins.data();
        std::uint64_t overflowed = 0;
        for (std::size_t i = 0; i < cnt; ++i) {
            const Tick t = buf[i];
            const double v = ticksToNs(t);
            ns[i] = v;
            acc += v;
            if (t < tmin)
                tmin = t;
            if (t > tmax)
                tmax = t;
            // Underflow is impossible: t >= 0 and lo == 0. The bin
            // divide is a single multiply-high by the rounded-up
            // reciprocal, exact for every in-range tick (buildTickPlan
            // verified the precondition) -- the runtime bin width must
            // touch neither the divider unit nor a fixup multiply, or
            // the batch loses its advantage over the per-sample path.
            if (t >= overflow_at) {
                ++overflowed;
            } else {
                const auto bin = static_cast<std::uint64_t>(
                    (unsigned __int128){t} * magic >> 64);
                ++bin_data[bin];
            }
        }
        hist->_overflow += overflowed;
        hist->total += cnt;
    } else if (hist != nullptr) {
        for (std::size_t i = 0; i < cnt; ++i) {
            const Tick t = buf[i];
            const double v = ticksToNs(t);
            ns[i] = v;
            acc += v;
            if (t < tmin)
                tmin = t;
            if (t > tmax)
                tmax = t;
            hist->sample(v);
        }
    } else {
        for (std::size_t i = 0; i < cnt; ++i) {
            const Tick t = buf[i];
            const double v = ticksToNs(t);
            ns[i] = v;
            acc += v;
            if (t < tmin)
                tmin = t;
            if (t > tmax)
                tmax = t;
        }
    }

    stats._sum = acc;
    // ticksToNs is monotone non-decreasing, so converting the integer
    // extremes reproduces the per-sample floating-point comparisons.
    const double vmin = ticksToNs(tmin);
    const double vmax = ticksToNs(tmax);
    if (vmin < stats._min)
        stats._min = vmin;
    if (vmax > stats._max)
        stats._max = vmax;
    stats.combineChunk(ns, cnt);
}

void
TickQuantiles::ensureSorted() const
{
    if (sorted)
        return;
    std::sort(samples.begin(), samples.end());
    sorted = true;
}

void
TickQuantiles::merge(const TickQuantiles &other)
{
    if (other.samples.empty())
        return;
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    sorted = false;
}

Tick
TickQuantiles::quantileTicks(double p) const
{
    if (samples.empty())
        return 0;
    ensureSorted();
    std::uint64_t rank = quantileTargetRank(samples.size(), p);
    if (rank >= samples.size())
        rank = samples.size() - 1;
    return samples[rank];
}

Tick
TickQuantiles::maxTicks() const
{
    if (samples.empty())
        return 0;
    ensureSorted();
    return samples.back();
}

std::uint64_t
TickQuantiles::digest() const
{
    ensureSorted();
    // FNV-1a over the count then each sorted 64-bit tick, low byte
    // first (the same hashing idiom as StatRegistry::digest()).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(samples.size());
    for (const Tick t : samples)
        mix(t);
    return h;
}

double
BandwidthMeter::gbps() const
{
    if (stopTick <= startTick)
        return 0.0;
    return toGBps(bytesPerSecond(bytes, stopTick - startTick));
}

} // namespace hmcsim
