#include "sim/stats.hh"

#include <cmath>

#include "sim/logging.hh"

namespace hmcsim
{

void
SampleStats::merge(const SampleStats &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel variance combination.
    const double delta = other.welfordMean - welfordMean;
    const auto na = static_cast<double>(_count);
    const auto nb = static_cast<double>(other._count);
    const double n = na + nb;
    welfordMean += delta * nb / n;
    welfordM2 += other.welfordM2 + delta * delta * na * nb / n;
    _count += other._count;
    _sum += other._sum;
    if (other._min < _min)
        _min = other._min;
    if (other._max > _max)
        _max = other._max;
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo(lo), hi(hi),
      width((hi - lo) / static_cast<double>(num_bins)),
      bins(num_bins, 0)
{
    if (num_bins == 0)
        fatal("Histogram needs at least one bin");
    if (hi <= lo)
        fatal("Histogram range must be non-empty");
}

void
Histogram::sample(double value)
{
    ++total;
    if (value < lo) {
        ++_underflow;
    } else if (value >= hi) {
        ++_overflow;
    } else {
        auto bin = static_cast<std::size_t>((value - lo) / width);
        if (bin >= bins.size())
            bin = bins.size() - 1; // floating point edge
        ++bins[bin];
    }
}

void
Histogram::merge(const Histogram &other)
{
    if (bins.size() != other.bins.size() || lo != other.lo ||
        hi != other.hi)
        fatal("merging histograms with different binning");
    for (std::size_t i = 0; i < bins.size(); ++i)
        bins[i] += other.bins[i];
    _underflow += other._underflow;
    _overflow += other._overflow;
    total += other.total;
}

void
Histogram::reset()
{
    for (auto &bin : bins)
        bin = 0;
    _underflow = 0;
    _overflow = 0;
    total = 0;
}

double
Histogram::binCenter(std::size_t bin) const
{
    return lo + (static_cast<double>(bin) + 0.5) * width;
}

double
Histogram::quantile(double p) const
{
    if (total == 0)
        return 0.0;
    const auto target =
        static_cast<std::uint64_t>(p * static_cast<double>(total));
    std::uint64_t seen = _underflow;
    if (seen > target)
        return lo;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        seen += bins[i];
        if (seen > target)
            return binCenter(i);
    }
    return hi;
}

double
BandwidthMeter::gbps() const
{
    if (stopTick <= startTick)
        return 0.0;
    return toGBps(bytesPerSecond(bytes, stopTick - startTick));
}

} // namespace hmcsim
