/**
 * @file
 * Discrete-event simulation core.
 *
 * The EventQueue is a classic calendar of (tick, sequence, callback)
 * entries executed in non-decreasing tick order. Events scheduled at the
 * same tick execute in scheduling order (FIFO), which keeps component
 * pipelines deterministic.
 */

#ifndef HMCSIM_SIM_EVENT_QUEUE_HH
#define HMCSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace hmcsim
{

class CheckerRegistry;

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * A discrete-event queue with a monotonically advancing current time.
 *
 * Not thread safe; one queue per simulated system.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events currently pending. */
    std::size_t pending() const { return heap.size(); }

    /** Total number of events ever executed. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Schedule a callback at an absolute tick.
     * @param when Absolute time; must be >= now().
     * @param fn Callback to run.
     */
    void schedule(Tick when, EventFn fn);

    /** Schedule a callback @p delta ticks in the future. */
    void scheduleIn(Tick delta, EventFn fn) { schedule(_now + delta, fn); }

    /**
     * Execute the single next event (advancing time to it).
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until the queue drains or time would exceed @p limit.
     * Events exactly at @p limit are executed.
     * @return Tick at which execution stopped.
     */
    Tick runUntil(Tick limit);

    /** Run until no events remain. */
    void runToCompletion();

    /** Drop all pending events and reset time to zero. */
    void reset();

    /**
     * Attach an invariant-checker registry to this queue's drain
     * points. After every @p every_n executed events (and at the end
     * of runUntil / runToCompletion) the registry's checkers run at
     * the current tick, so a violated model invariant aborts at the
     * offending event rather than corrupting downstream statistics.
     * Pass nullptr to detach.
     */
    void setCheckers(CheckerRegistry *registry, std::uint64_t every_n = 1);

    /** The attached checker registry, or nullptr. */
    CheckerRegistry *checkers() const { return checkerRegistry; }

  private:
    /** Run attached checkers at a drain point. */
    void runCheckers();


    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
    CheckerRegistry *checkerRegistry = nullptr;
    std::uint64_t checkEveryN = 1;
    std::uint64_t eventsSinceCheck = 0;
};

} // namespace hmcsim

#endif // HMCSIM_SIM_EVENT_QUEUE_HH
