// lint:file(hot-path) -- event-core file: allocation-free callables (no std::function) and HMCSIM_DCHECK-only invariants, enforced by hmcsim-lint.
/**
 * @file
 * Discrete-event simulation core.
 *
 * The EventQueue executes (tick, sequence, callback) entries in
 * non-decreasing tick order. Events scheduled at the same tick execute
 * in scheduling order (FIFO), which keeps component pipelines
 * deterministic.
 *
 * Internally the queue is a two-level bucketed calendar rather than a
 * binary heap (docs/performance.md):
 *
 *  - a timing wheel of `numBuckets` buckets, each spanning
 *    `bucketTicks` picoseconds, holds the near future (~1 us ahead of
 *    the cursor). schedule() is an append; ordering inside the one
 *    bucket being drained costs one stable sort per bucket plus a
 *    sorted insert for same-bucket arrivals.
 *  - a sorted-run ladder holds the far future (refresh deadlines,
 *    thermal sampling, end-of-window drains): schedule() appends to an
 *    unsorted staging buffer, which is sorted wholesale into a run the
 *    first time the wheel's window touches it. Entries migrate into
 *    the wheel as the cursor advances, as sequential pops from the
 *    run backs.
 *
 * Execution order is exactly (when, seq) -- identical to the old
 * heap, so stat digests and the --selfcheck probe are unchanged.
 * Events are hmcsim::Event (sim/event.hh): fixed-size, inline-capture
 * callables, so the steady-state schedule/fire path performs no heap
 * allocation at all.
 */

#ifndef HMCSIM_SIM_EVENT_QUEUE_HH
#define HMCSIM_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/event.hh"
#include "sim/types.hh"

namespace hmcsim
{

class CheckerRegistry;

/** Callback type executed when an event fires. */
using EventFn = Event;

/**
 * A discrete-event queue with a monotonically advancing current time.
 *
 * Not thread safe; one queue per simulated system.
 */
class EventQueue
{
  public:
    /** Wheel bucket span in ticks (power of two; 1024 ps ~= 1 ns,
     *  finer than every modeled pipeline latency). */
    static constexpr Tick bucketTicks = 1024;
    /** Number of wheel buckets (power of two). The wheel spans
     *  bucketTicks * numBuckets ~= 1 us beyond the cursor; refresh
     *  (7.8 us) and thermal sampling live in the overflow heap. */
    static constexpr std::size_t numBuckets = 1024;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events currently pending. */
    std::size_t pending() const { return numPending; }

    /** Total number of events ever executed. */
    std::uint64_t executed() const { return numExecuted; }

    /** Events currently waiting in the far-future overflow ladder
     *  (observability hook for tests and the perf bench). */
    std::size_t overflowPending() const { return overflowCount; }

    /**
     * Schedule a callback at an absolute tick.
     * @param when Absolute time; must be >= now().
     * @param ev Callback to run (any callable fitting the Event
     *        inline-capture budget, see sim/event.hh).
     */
    void schedule(Tick when, Event ev);

    /** Schedule a callback @p delta ticks in the future. */
    void scheduleIn(Tick delta, Event ev)
    {
        schedule(_now + delta, std::move(ev));
    }

    /**
     * Execute the single next event (advancing time to it).
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until the queue drains or time would exceed @p limit.
     * Events exactly at @p limit are executed.
     * @return Tick at which execution stopped.
     */
    Tick runUntil(Tick limit);

    /** Run until no events remain. */
    void runToCompletion();

    /** Drop all pending events and reset time to zero. */
    void reset();

    /**
     * Attach an invariant-checker registry to this queue's drain
     * points. After every @p every_n executed events (and at the end
     * of runUntil / runToCompletion) the registry's checkers run at
     * the current tick, so a violated model invariant aborts at the
     * offending event rather than corrupting downstream statistics.
     * Pass nullptr to detach.
     */
    void setCheckers(CheckerRegistry *registry, std::uint64_t every_n = 1);

    /** The attached checker registry, or nullptr. */
    CheckerRegistry *checkers() const { return checkerRegistry; }

    // --- Snapshot/fork support (sim/snapshot.hh) -------------------
    //
    // A forked simulator rebuilds its queue by re-scheduling clones of
    // the source's pending events in ascending original-seq order:
    // relative (when, seq) order among the clones then matches the
    // source exactly, and restoreFinish() bumps the seq counter past
    // the source's so later schedules sort after every restored entry,
    // exactly as they would have in the source.

    /** Read-only view of one pending entry. */
    struct PendingView
    {
        Tick when;
        std::uint64_t seq;
        const Event *ev;
    };

    /** All pending entries, sorted ascending by seq. Views are valid
     *  until the next mutating call. */
    std::vector<PendingView> pendingSnapshot() const;

    /** The seq the next scheduled event will receive. */
    std::uint64_t seqCounter() const { return nextSeq; }

    /** Events executed since the checkers last ran. */
    std::uint64_t eventsSinceCheckCount() const { return eventsSinceCheck; }

    /**
     * Prepare an empty queue for restoring a snapshot taken at
     * @p now: sets the clock and places the calendar cursor on the
     * matching bucket so re-scheduled entries land exactly where the
     * source's calendar held them. Fatal if the queue is not empty.
     */
    void restoreBegin(Tick now);

    /** Adopt the source queue's counters after re-scheduling its
     *  pending entries (see restoreBegin). */
    void restoreFinish(std::uint64_t next_seq, std::uint64_t num_executed,
                       std::uint64_t events_since_check);

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event ev;
    };

    /** Run attached checkers at a drain point. */
    void runCheckers();

    /** Execute @p entry at its tick (shared by step/runUntil). */
    void execute(Entry &entry);

    /**
     * Locate the next event in (when, seq) order, advancing the
     * cursor past empty buckets and migrating overflow entries whose
     * tick slid under the wheel window. Returns nullptr when empty.
     * Does not advance now() or pop the event.
     */
    Entry *peekNext();

    /** Move in-window overflow entries into their wheel buckets. */
    void migrateOverflow();

    /** Sort the staging buffer into a run and fold it into the run
     *  ladder, merging runs to keep their sizes geometric. */
    void foldStagingIntoRuns();

    /** Bucket of the earliest overflow entry (staging or runs);
     *  noBucket when the overflow is empty. */
    std::uint64_t
    overflowMin() const
    {
        return stagingMinBucket < runsMinBucket ? stagingMinBucket
                                                : runsMinBucket;
    }

    /** Absolute bucket index of @p when. */
    static std::uint64_t bucketOf(Tick when) { return when / bucketTicks; }

    /** Sentinel for "no overflow entries pending". */
    static constexpr std::uint64_t noBucket = ~std::uint64_t{0};

    void
    markOccupied(std::uint64_t slot)
    {
        occupied[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    }

    void
    clearOccupied(std::uint64_t slot)
    {
        occupied[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    }

    /**
     * Absolute bucket index of the nearest occupied wheel slot after
     * the cursor (up to one full lap, so a slot holding only
     * later-lap entries resolves to cursorBucket + numBuckets), or
     * noBucket when the wheel is empty. Scans the occupancy bitmap a
     * word at a time, so sparse simulated time costs O(1) per 64
     * empty buckets instead of one loop iteration each.
     */
    std::uint64_t nextOccupiedBucket() const;

    static constexpr std::uint64_t bucketMask = numBuckets - 1;
    static_assert((numBuckets & bucketMask) == 0,
                  "numBuckets must be a power of two");
    static_assert((bucketTicks & (bucketTicks - 1)) == 0,
                  "bucketTicks must be a power of two");

    /** The wheel: bucket b holds entries whose absolute bucket index
     *  is congruent to b modulo numBuckets; lap membership is checked
     *  when a bucket drains. */
    std::vector<std::vector<Entry>> buckets;
    /** Entries of the bucket currently draining (absolute index
     *  cursorBucket), sorted by (when, seq); [drainIdx, end) remain. */
    std::vector<Entry> current;
    std::size_t drainIdx = 0;
    /** Absolute index of the bucket the cursor is on. */
    std::uint64_t cursorBucket = 0;
    /** Entries resident in wheel buckets (excluding `current`). */
    std::size_t wheelCount = 0;
    /** One bit per wheel slot: set while the slot holds entries. */
    std::array<std::uint64_t, numBuckets / 64> occupied{};
    /** Far-future entries not yet sorted: schedule() appends here in
     *  O(1) and the batch is sorted wholesale the first time the
     *  wheel's window touches it. A binary heap here costs one
     *  random-access sift-down per entry on migration, which is what
     *  made far-future preloads slow (docs/performance.md). */
    std::vector<Entry> staging;
    /** Ladder of sorted runs, each descending by (when, seq) so the
     *  earliest entry is a pop from the back. Run sizes are kept
     *  geometric by merging, bounding the ladder at O(log n) runs. */
    std::vector<std::vector<Entry>> runs;
    /** Reused merge buffer for run compaction. */
    std::vector<Entry> mergeScratch;
    /** Total entries across staging and runs. */
    std::size_t overflowCount = 0;
    /** Bucket of the earliest staging / run entry (noBucket when
     *  empty); lets the cursor advance without touching the data. */
    std::uint64_t stagingMinBucket = noBucket;
    std::uint64_t runsMinBucket = noBucket;
    std::size_t numPending = 0;

    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
    CheckerRegistry *checkerRegistry = nullptr;
    std::uint64_t checkEveryN = 1;
    std::uint64_t eventsSinceCheck = 0;
};

} // namespace hmcsim

#endif // HMCSIM_SIM_EVENT_QUEUE_HH
