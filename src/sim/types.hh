/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * The simulator counts time in integer picoseconds ("ticks"). A
 * picosecond base lets us represent every clock in the modeled system
 * exactly: the 187.5 MHz FPGA user clock (5,333.33.. ps is *not* exact,
 * so that domain uses a 3-tick-per-16ns convention, see ClockDomain),
 * 15 Gbps SerDes bit times (66.67 ps), and DRAM timing parameters.
 */

#ifndef HMCSIM_SIM_TYPES_HH
#define HMCSIM_SIM_TYPES_HH

#include <cstdint>

namespace hmcsim
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Signed tick difference. */
using TickDelta = std::int64_t;

/** One picosecond. */
constexpr Tick tickPs = 1;
/** Ticks per nanosecond. */
constexpr Tick tickNs = 1000;
/** Ticks per microsecond. */
constexpr Tick tickUs = 1000 * 1000;
/** Ticks per millisecond. */
constexpr Tick tickMs = 1000ULL * 1000 * 1000;
/** Ticks per second. */
constexpr Tick tickS = 1000ULL * 1000 * 1000 * 1000;

/** Largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Convert ticks to (double) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickNs);
}

/** Convert ticks to (double) microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickUs);
}

/** Convert ticks to (double) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickS);
}

/** Convert a floating point nanosecond value to ticks (rounded). */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tickNs) + 0.5);
}

/** Physical memory address within the cube (34-bit field in HMC). */
using Addr = std::uint64_t;

/** Bytes. */
using Bytes = std::uint64_t;

constexpr Bytes kib = 1024;
constexpr Bytes mib = 1024 * kib;
constexpr Bytes gib = 1024 * mib;

/**
 * Compute bytes/second from an amount moved over a tick interval.
 *
 * @param bytes Amount of data moved.
 * @param interval Elapsed simulated time; must be non-zero.
 * @return Throughput in bytes per second.
 */
constexpr double
bytesPerSecond(Bytes bytes, Tick interval)
{
    return static_cast<double>(bytes) / ticksToSeconds(interval);
}

/** Bytes/second expressed in GB/s (decimal gigabytes, as the paper). */
constexpr double
toGBps(double bytes_per_second)
{
    return bytes_per_second / 1e9;
}

} // namespace hmcsim

#endif // HMCSIM_SIM_TYPES_HH
