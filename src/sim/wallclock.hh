/**
 * @file
 * The one allowlisted wall-clock source in the model tree.
 *
 * Simulated behavior must never observe host time: every latency,
 * bandwidth, and digest is a pure function of the configuration and
 * seed. Host time is still legitimate for *metadata* -- the wallMs
 * column a sweep reports, cache-provenance timing -- which is opt-in
 * per sink and explicitly excluded from the determinism contract
 * (docs/runner.md). All such uses go through this shim:
 * `hmcsim-lint`'s `nondeterminism` rule forbids raw clock calls
 * anywhere else under src/, so a reviewer can audit every host-time
 * consumer by grepping for wallClockNow().
 */

#ifndef HMCSIM_SIM_WALLCLOCK_HH
#define HMCSIM_SIM_WALLCLOCK_HH

#include <chrono>
#include <cstdint>

namespace hmcsim
{

/** Opaque host-time sample; only useful to difference. */
using WallClockSample = std::chrono::steady_clock::time_point;

/** Sample the host's monotonic clock (timing metadata only). */
inline WallClockSample
wallClockNow()
{
    return std::chrono::steady_clock::now();
}

/** Milliseconds elapsed between two samples. */
inline double
wallMsBetween(WallClockSample start, WallClockSample stop)
{
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

/**
 * Seconds since the Unix epoch, from the host's real-time clock.
 *
 * Unlike WallClockSample this value is meaningful *across processes
 * and machines*: the distributed result store (dist/store.hh) stamps
 * claim records with it so any process sharing the filesystem can
 * decide whether a lease has expired. Like every host-time read it is
 * metadata only -- lease arbitration changes who simulates a point,
 * never what the point's bytes are.
 */
inline std::int64_t
wallClockEpochSeconds()
{
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace hmcsim

#endif // HMCSIM_SIM_WALLCLOCK_HH
