/**
 * @file
 * The one allowlisted wall-clock source in the model tree.
 *
 * Simulated behavior must never observe host time: every latency,
 * bandwidth, and digest is a pure function of the configuration and
 * seed. Host time is still legitimate for *metadata* -- the wallMs
 * column a sweep reports, cache-provenance timing -- which is opt-in
 * per sink and explicitly excluded from the determinism contract
 * (docs/runner.md). All such uses go through this shim:
 * `hmcsim-lint`'s `nondeterminism` rule forbids raw clock calls
 * anywhere else under src/, so a reviewer can audit every host-time
 * consumer by grepping for wallClockNow().
 */

#ifndef HMCSIM_SIM_WALLCLOCK_HH
#define HMCSIM_SIM_WALLCLOCK_HH

#include <chrono>

namespace hmcsim
{

/** Opaque host-time sample; only useful to difference. */
using WallClockSample = std::chrono::steady_clock::time_point;

/** Sample the host's monotonic clock (timing metadata only). */
inline WallClockSample
wallClockNow()
{
    return std::chrono::steady_clock::now();
}

/** Milliseconds elapsed between two samples. */
inline double
wallMsBetween(WallClockSample start, WallClockSample stop)
{
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

} // namespace hmcsim

#endif // HMCSIM_SIM_WALLCLOCK_HH
