/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Experiments must be reproducible run-to-run, so every stochastic
 * component owns an Xoshiro256StarStar generator seeded from the
 * experiment seed via SplitMix64. This mirrors the per-port LFSRs the
 * GUPS Verilog uses for random addressing.
 */

#ifndef HMCSIM_SIM_RANDOM_HH
#define HMCSIM_SIM_RANDOM_HH

#include <cstdint>

namespace hmcsim
{

/** SplitMix64 step; used for seeding and cheap hashing. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
 */
class Xoshiro256StarStar
{
  public:
    explicit Xoshiro256StarStar(std::uint64_t seed = 0x1ULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : s)
            word = splitMix64(sm);
    }

    /** Next 64 random bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        __uint128_t m =
            static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(bound);
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                m = static_cast<__uint128_t>(next()) *
                    static_cast<__uint128_t>(bound);
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace hmcsim

#endif // HMCSIM_SIM_RANDOM_HH
