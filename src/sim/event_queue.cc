#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace hmcsim
{

void
EventQueue::schedule(Tick when, EventFn fn)
{
    if (when < _now)
        panic("scheduling event in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    heap.push(Entry{when, nextSeq++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast is the
    // standard idiom here and safe because we pop immediately.
    Entry entry = std::move(const_cast<Entry &>(heap.top()));
    heap.pop();
    _now = entry.when;
    ++numExecuted;
    entry.fn();
    return true;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap.empty() && heap.top().when <= limit) {
        if (!step())
            break;
    }
    if (_now < limit)
        _now = limit;
    return _now;
}

void
EventQueue::runToCompletion()
{
    while (step()) {
    }
}

void
EventQueue::reset()
{
    heap = {};
    _now = 0;
    nextSeq = 0;
    numExecuted = 0;
}

} // namespace hmcsim
