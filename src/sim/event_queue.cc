// lint:file(hot-path) -- event-core file: allocation-free callables (no std::function) and HMCSIM_DCHECK-only invariants, enforced by hmcsim-lint.
#include "sim/event_queue.hh"

#include <algorithm>
#include <iterator>
#include <utility>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace hmcsim
{

namespace
{

/** Sort order for overflow runs: descending by (when, seq), so the
 *  entry firing earliest sits at the back and migration pops are
 *  sequential O(1). */
struct FiresLater
{
    bool
    operator()(const auto &a, const auto &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

} // namespace

EventQueue::EventQueue() : buckets(numBuckets) {}

void
EventQueue::schedule(Tick when, Event ev)
{
    // Stays a release-build check: a past-tick schedule means the
    // calendar is already corrupt, and the cost was audited into the
    // PR-4 event-core budget (docs/performance.md).
    // lint:allow(hot-check)
    HMCSIM_CHECK(when >= _now,
                 "scheduling event in the past (when=%llu now=%llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_now));
    Entry entry{when, nextSeq++, std::move(ev)};
    ++numPending;

    const std::uint64_t abs = bucketOf(when);
    if (abs == cursorBucket) {
        // Into the bucket being drained: sorted insert among the
        // not-yet-fired entries. Inserting by `when` alone keeps FIFO
        // for equal ticks because this entry carries the largest seq.
        const auto pos = std::upper_bound(
            current.begin() +
                static_cast<std::ptrdiff_t>(drainIdx),
            current.end(), when,
            [](Tick w, const Entry &e) { return w < e.when; });
        current.insert(pos, std::move(entry));
        return;
    }
    if (abs < cursorBucket) {
        // The cursor ran ahead over empty buckets (e.g. a peek past
        // the runUntil limit); pull it back. Undrained entries of the
        // old cursor bucket return to their wheel slot, where the lap
        // check will find them again.
        auto &slot = buckets[cursorBucket & bucketMask];
        for (std::size_t i = drainIdx; i < current.size(); ++i) {
            slot.push_back(std::move(current[i]));
            ++wheelCount;
        }
        if (!slot.empty())
            markOccupied(cursorBucket & bucketMask);
        current.clear();
        drainIdx = 0;
        cursorBucket = abs;
        current.push_back(std::move(entry));
        return;
    }
    if (abs < cursorBucket + numBuckets) {
        buckets[abs & bucketMask].push_back(std::move(entry));
        markOccupied(abs & bucketMask);
        ++wheelCount;
        return;
    }
    if (abs < stagingMinBucket)
        stagingMinBucket = abs;
    staging.push_back(std::move(entry));
    ++overflowCount;
}

void
EventQueue::foldStagingIntoRuns()
{
    // Sort the whole staging batch once (sequential, cache friendly)
    // and append it to the run ladder; a binary min-heap here would
    // pay one random-access sift-down per entry instead.
    std::sort(staging.begin(), staging.end(), FiresLater{});
    runs.emplace_back();
    runs.back().swap(staging);
    stagingMinBucket = noBucket;

    // Keep run sizes geometric (each at least twice the next) so an
    // adversarial schedule/advance interleave merges each entry only
    // O(log n) times instead of rescanning a flat buffer.
    while (runs.size() >= 2 &&
           runs[runs.size() - 2].size() < 2 * runs.back().size()) {
        auto &a = runs[runs.size() - 2];
        auto &b = runs.back();
        mergeScratch.clear();
        mergeScratch.reserve(a.size() + b.size());
        std::merge(std::make_move_iterator(a.begin()),
                   std::make_move_iterator(a.end()),
                   std::make_move_iterator(b.begin()),
                   std::make_move_iterator(b.end()),
                   std::back_inserter(mergeScratch), FiresLater{});
        a.swap(mergeScratch);
        runs.pop_back();
    }
}

void
EventQueue::migrateOverflow()
{
    const std::uint64_t windowEnd = cursorBucket + numBuckets;
    if (stagingMinBucket < windowEnd)
        foldStagingIntoRuns();

    // Runs are sorted descending, so every in-window entry of a run is
    // a pop from its back. Migration order across runs is irrelevant:
    // the bucket drain re-sorts by (when, seq), so execution order --
    // and therefore every stat digest -- is unchanged.
    runsMinBucket = noBucket;
    for (auto &run : runs) {
        while (!run.empty() &&
               bucketOf(run.back().when) < windowEnd) {
            Entry entry = std::move(run.back());
            run.pop_back();
            const std::uint64_t abs = bucketOf(entry.when);
            buckets[abs & bucketMask].push_back(std::move(entry));
            markOccupied(abs & bucketMask);
            ++wheelCount;
            --overflowCount;
        }
        if (!run.empty()) {
            const std::uint64_t b = bucketOf(run.back().when);
            if (b < runsMinBucket)
                runsMinBucket = b;
        }
    }
    std::erase_if(runs, [](const std::vector<Entry> &r) { return r.empty(); });
}

std::uint64_t
EventQueue::nextOccupiedBucket() const
{
    if (wheelCount == 0)
        return noBucket;
    // Ring-scan the bitmap starting one past the cursor's slot; the
    // first set bit at distance d in [1, numBuckets] is the answer.
    std::uint64_t dist = 1;
    std::uint64_t idx = (cursorBucket + 1) & bucketMask;
    std::uint64_t scanned = 0;
    while (scanned < numBuckets) {
        const std::uint64_t off = idx & 63;
        const std::uint64_t span = 64 - off;
        const std::uint64_t bits = occupied[idx >> 6] >> off;
        if (bits != 0)
            return cursorBucket + dist +
                   static_cast<std::uint64_t>(__builtin_ctzll(bits));
        idx = (idx + span) & bucketMask;
        dist += span;
        scanned += span;
    }
    // Only the cursor's own slot is occupied: its entries belong to a
    // later lap (possible after a cursor rewind).
    return cursorBucket + numBuckets;
}

EventQueue::Entry *
EventQueue::peekNext()
{
    for (;;) {
        if (drainIdx < current.size())
            return &current[drainIdx];
        if (numPending == 0)
            return nullptr;
        current.clear();
        drainIdx = 0;

        // Pull this lap's entries out of the cursor's wheel slot;
        // entries a full wheel revolution (or more) ahead stay put.
        auto &slot = buckets[cursorBucket & bucketMask];
        if (!slot.empty()) {
            std::size_t keep = 0;
            for (std::size_t i = 0; i < slot.size(); ++i) {
                if (bucketOf(slot[i].when) == cursorBucket) {
                    current.push_back(std::move(slot[i]));
                } else {
                    if (keep != i)
                        slot[keep] = std::move(slot[i]);
                    ++keep;
                }
            }
            slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(keep),
                       slot.end());
            if (slot.empty())
                clearOccupied(cursorBucket & bucketMask);
            if (!current.empty()) {
                wheelCount -= current.size();
                // Sort by (when, seq): equal ticks stay FIFO. std::sort
                // is in-place -- stable_sort would heap-allocate a merge
                // buffer on every bucket drain, breaking the
                // allocation-free steady state.
                std::sort(current.begin(), current.end(),
                          [](const Entry &a, const Entry &b) {
                              if (a.when != b.when)
                                  return a.when < b.when;
                              return a.seq < b.seq;
                          });
                continue;
            }
        }

        // Jump the cursor straight to the next bucket holding work --
        // the nearest occupied wheel slot or the earliest overflow
        // entry, whichever fires first -- instead of stepping one
        // ~1 ns bucket at a time through idle simulated time.
        const std::uint64_t wheel_next = nextOccupiedBucket();
        const std::uint64_t ovf_next = overflowMin();
        const std::uint64_t next =
            ovf_next < wheel_next ? ovf_next : wheel_next;
        HMCSIM_DCHECK(next != noBucket,
                      "pending=%llu but wheel and overflow empty",
                      static_cast<unsigned long long>(numPending));
        cursorBucket = next;
        if (ovf_next < cursorBucket + numBuckets)
            migrateOverflow();
    }
}

void
EventQueue::execute(Entry &entry)
{
    HMCSIM_DCHECK(entry.when >= _now,
                  "event time went backwards (when=%llu now=%llu)",
                  static_cast<unsigned long long>(entry.when),
                  static_cast<unsigned long long>(_now));
    _now = entry.when;
    check_detail::setCurrentTick(_now);
    ++numExecuted;
    entry.ev();
    if (checkerRegistry && ++eventsSinceCheck >= checkEveryN) {
        eventsSinceCheck = 0;
        checkerRegistry->runAll(_now);
    }
}

bool
EventQueue::step()
{
    if (peekNext() == nullptr)
        return false;
    Entry entry = std::move(current[drainIdx]);
    ++drainIdx;
    --numPending;
    execute(entry);
    return true;
}

Tick
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        Entry *next = peekNext();
        if (next == nullptr || next->when > limit)
            break;
        Entry entry = std::move(current[drainIdx]);
        ++drainIdx;
        --numPending;
        execute(entry);
    }
    if (_now < limit)
        _now = limit;
    runCheckers();
    return _now;
}

void
EventQueue::runToCompletion()
{
    while (step()) {
    }
    runCheckers();
}

void
EventQueue::setCheckers(CheckerRegistry *registry, std::uint64_t every_n)
{
    // Config-time API validation, not per-event work.
    // lint:allow(hot-check)
    HMCSIM_CHECK(every_n > 0, "checker interval must be non-zero");
    checkerRegistry = registry;
    checkEveryN = every_n;
    eventsSinceCheck = 0;
}

void
EventQueue::runCheckers()
{
    if (checkerRegistry) {
        eventsSinceCheck = 0;
        checkerRegistry->runAll(_now);
    }
}

std::vector<EventQueue::PendingView>
EventQueue::pendingSnapshot() const
{
    std::vector<PendingView> views;
    views.reserve(numPending);
    for (std::size_t i = drainIdx; i < current.size(); ++i)
        views.push_back({current[i].when, current[i].seq, &current[i].ev});
    for (const auto &slot : buckets)
        for (const auto &entry : slot)
            views.push_back({entry.when, entry.seq, &entry.ev});
    for (const auto &entry : staging)
        views.push_back({entry.when, entry.seq, &entry.ev});
    for (const auto &run : runs)
        for (const auto &entry : run)
            views.push_back({entry.when, entry.seq, &entry.ev});
    HMCSIM_DCHECK(views.size() == numPending,
                  "pending snapshot found %llu entries, counter says %llu",
                  static_cast<unsigned long long>(views.size()),
                  static_cast<unsigned long long>(numPending));
    std::sort(views.begin(), views.end(),
              [](const PendingView &a, const PendingView &b) {
                  return a.seq < b.seq;
              });
    return views;
}

void
EventQueue::restoreBegin(Tick now)
{
    // Restore-time API validation, not per-event work.
    // lint:allow(hot-check)
    HMCSIM_CHECK(numPending == 0 && numExecuted == 0,
                 "snapshot restore requires a fresh queue "
                 "(pending=%llu executed=%llu)",
                 static_cast<unsigned long long>(numPending),
                 static_cast<unsigned long long>(numExecuted));
    _now = now;
    // Without this the cursor would lap-walk from bucket zero and
    // every near-future entry would detour through the overflow
    // ladder; placing it on now()'s bucket reproduces the source
    // calendar's steady state.
    cursorBucket = bucketOf(now);
}

void
EventQueue::restoreFinish(std::uint64_t next_seq,
                          std::uint64_t num_executed,
                          std::uint64_t events_since_check)
{
    // lint:allow(hot-check)
    HMCSIM_CHECK(next_seq >= nextSeq,
                 "restored seq counter would reissue seqs "
                 "(restore=%llu local=%llu)",
                 static_cast<unsigned long long>(next_seq),
                 static_cast<unsigned long long>(nextSeq));
    nextSeq = next_seq;
    numExecuted = num_executed;
    eventsSinceCheck = events_since_check;
}

void
EventQueue::reset()
{
    for (auto &slot : buckets)
        slot.clear();
    current.clear();
    staging.clear();
    runs.clear();
    occupied.fill(0);
    stagingMinBucket = noBucket;
    runsMinBucket = noBucket;
    overflowCount = 0;
    drainIdx = 0;
    cursorBucket = 0;
    wheelCount = 0;
    numPending = 0;
    _now = 0;
    nextSeq = 0;
    numExecuted = 0;
    eventsSinceCheck = 0;
}

} // namespace hmcsim
