#include "sim/event_queue.hh"

#include <utility>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace hmcsim
{

void
EventQueue::schedule(Tick when, EventFn fn)
{
    HMCSIM_CHECK(when >= _now,
                 "scheduling event in the past (when=%llu now=%llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_now));
    heap.push(Entry{when, nextSeq++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast is the
    // standard idiom here and safe because we pop immediately.
    Entry entry = std::move(const_cast<Entry &>(heap.top()));
    heap.pop();
    HMCSIM_DCHECK(entry.when >= _now,
                  "event time went backwards (when=%llu now=%llu)",
                  static_cast<unsigned long long>(entry.when),
                  static_cast<unsigned long long>(_now));
    _now = entry.when;
    check_detail::setCurrentTick(_now);
    ++numExecuted;
    entry.fn();
    if (checkerRegistry && ++eventsSinceCheck >= checkEveryN) {
        eventsSinceCheck = 0;
        checkerRegistry->runAll(_now);
    }
    return true;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap.empty() && heap.top().when <= limit) {
        if (!step())
            break;
    }
    if (_now < limit)
        _now = limit;
    runCheckers();
    return _now;
}

void
EventQueue::runToCompletion()
{
    while (step()) {
    }
    runCheckers();
}

void
EventQueue::setCheckers(CheckerRegistry *registry, std::uint64_t every_n)
{
    HMCSIM_CHECK(every_n > 0, "checker interval must be non-zero");
    checkerRegistry = registry;
    checkEveryN = every_n;
    eventsSinceCheck = 0;
}

void
EventQueue::runCheckers()
{
    if (checkerRegistry) {
        eventsSinceCheck = 0;
        checkerRegistry->runAll(_now);
    }
}

void
EventQueue::reset()
{
    heap = {};
    _now = 0;
    nextSeq = 0;
    numExecuted = 0;
    eventsSinceCheck = 0;
}

} // namespace hmcsim
