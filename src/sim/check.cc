#include "sim/check.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "sim/logging.hh"

namespace hmcsim
{

namespace check_detail
{

namespace
{
/**
 * Tick reported in check failures; maxTick = outside a simulation.
 * thread_local: each sweep worker drives its own EventQueue, so "the
 * current tick" is a per-thread notion -- a shared global here would
 * both race and attribute one simulation's failure to another's time.
 */
thread_local Tick reportedTick = maxTick;
} // namespace

void
setCurrentTick(Tick now)
{
    reportedTick = now;
}

Tick
currentTick()
{
    return reportedTick;
}

void
checkFailed(const char *cond, const char *file, int line, const char *fmt,
            ...)
{
    char message[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(message, sizeof(message), fmt, args);
    va_end(args);

    if (reportedTick == maxTick) {
        panic("check failed: %s (%s:%d): %s", cond, file, line, message);
    } else {
        panic("check failed at tick %llu: %s (%s:%d): %s",
              static_cast<unsigned long long>(reportedTick), cond, file,
              line, message);
    }
}

} // namespace check_detail

void
CheckerRegistry::add(std::unique_ptr<InvariantChecker> checker)
{
    checkers.push_back(std::move(checker));
}

void
CheckerRegistry::addLambda(std::string name, LambdaChecker::Fn fn)
{
    add(std::make_unique<LambdaChecker>(std::move(name), std::move(fn)));
}

void
CheckerRegistry::setFailureHandler(FailureHandler handler)
{
    onFailure = std::move(handler);
}

void
CheckerRegistry::runAll(Tick now)
{
    for (const auto &checker : checkers) {
        ++numChecks;
        std::string report = checker->check(now);
        if (report.empty())
            continue;

        ++numViolations;
        std::ostringstream dump;
        dump << "invariant violated at tick " << now << "\n"
             << "  checker : " << checker->name() << "\n"
             << "  report  : " << report << "\n"
             << "  registry: " << checkers.size()
             << " checkers registered:\n";
        for (const auto &sibling : checkers) {
            const std::string sib_report = sibling->check(now);
            dump << "    [" << (sib_report.empty() ? "ok" : "FAIL")
                 << "] " << sibling->name();
            if (!sib_report.empty())
                dump << " -- " << sib_report;
            dump << "\n";
        }

        if (onFailure) {
            onFailure(dump.str());
            // A non-aborting handler (tests) keeps the simulation
            // running; stop after the first violation this sweep so
            // the handler sees one coherent dump per event.
            return;
        }
        panic("%s", dump.str().c_str());
    }
}

} // namespace hmcsim
