/**
 * @file
 * Named-statistics registry, in the spirit of gem5's stats package.
 *
 * Components register scalar statistics (values or callbacks) under
 * hierarchical names ("system.hmc.vault3.reads"); the registry dumps
 * them as aligned text or CSV. Benches and tools use this to expose
 * every counter in the simulated system without bespoke plumbing.
 */

#ifndef HMCSIM_SIM_STAT_REGISTRY_HH
#define HMCSIM_SIM_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hmcsim
{

/** Callback producing the current value of a statistic. */
using StatFn = std::function<double()>;

/** One registered statistic. */
struct StatEntry
{
    std::string name;
    std::string description;
    StatFn value;
};

/**
 * A flat registry of named statistics with hierarchical dotted names.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /**
     * Register a statistic.
     * @param name Dotted hierarchical name; must be unique.
     * @param description One-line meaning.
     * @param value Callback returning the current value.
     */
    void add(std::string name, std::string description, StatFn value);

    /** Register a statistic bound to a variable's current value. */
    template <typename T>
    void
    addValue(std::string name, std::string description, const T *var)
    {
        add(std::move(name), std::move(description),
            [var] { return static_cast<double>(*var); });
    }

    /** Number of registered statistics. */
    std::size_t size() const { return entries.size(); }

    /** Look up the current value of a statistic by exact name.
     *  Fatal when the name is unknown. */
    double value(const std::string &name) const;

    /** True if a statistic with this exact name exists. */
    bool has(const std::string &name) const;

    /** All entries whose name starts with @p prefix. */
    std::vector<const StatEntry *>
    matching(const std::string &prefix) const;

    /**
     * Order-independent fingerprint of the registry's current state:
     * an FNV-1a hash over the sorted (name, exact value bits) pairs.
     * Two runs of a deterministic simulation must produce identical
     * digests; a mismatch exposes iteration-order or uninitialized-
     * value nondeterminism that bit-exact stats comparison catches
     * but eyeballing rounded dumps does not.
     */
    std::uint64_t digest() const;

    /** Dump as aligned "name value # description" lines, sorted. */
    std::string dumpText() const;

    /** Dump as "name,value" CSV with a header row, sorted. */
    std::string dumpCsv() const;

    /** Remove all entries. */
    void clear() { entries.clear(); }

  private:
    std::vector<StatEntry> entries;
};

/**
 * Scoped name builder: makes "system.hmc" + "vault3" + "reads" style
 * composition readable at registration sites.
 */
class StatPath
{
  public:
    explicit StatPath(std::string base) : path(std::move(base)) {}

    /** Child path. */
    StatPath
    operator/(const std::string &component) const
    {
        return StatPath(path.empty() ? component
                                     : path + "." + component);
    }

    const std::string &str() const { return path; }

  private:
    std::string path;
};

} // namespace hmcsim

#endif // HMCSIM_SIM_STAT_REGISTRY_HH
