/**
 * @file
 * Invariant checking layer: always-on checks, debug-only checks, and a
 * registry of model-invariant checkers run from EventQueue drain
 * points.
 *
 * Two macro tiers replace raw assert():
 *
 *  - HMCSIM_CHECK(cond, fmt, ...): stays active in every build type.
 *    Use for cheap invariants (pointer/range/state checks) whose
 *    violation means the simulation is already corrupt. On failure it
 *    prints the condition, location, a printf-style message, and the
 *    current simulated tick, then aborts.
 *
 *  - HMCSIM_DCHECK(cond, fmt, ...): compiled out unless
 *    HMCSIM_DCHECK_ENABLED is defined (Debug builds, or any build with
 *    -DHMCSIM_ENABLE_CHECKS=ON). Use on hot paths where even a branch
 *    is too expensive for release.
 *
 * Beyond point checks, components register InvariantChecker objects
 * with a CheckerRegistry. The EventQueue runs the registry at its
 * drain points (after each executed event), so a conservation-law
 * violation -- leaked flow-control tokens, a duplicated tag, an
 * illegal bank state, an over-full vault queue -- fires at the
 * offending tick with a diagnostic dump instead of surfacing
 * thousands of events later as a bent latency curve.
 */

#ifndef HMCSIM_SIM_CHECK_HH
#define HMCSIM_SIM_CHECK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hmcsim
{

namespace check_detail
{

/** Publish the tick reported by failing checks (EventQueue calls it).
 *  The published value is thread-local: concurrent simulations each
 *  report their own time (see the threading contract in host/ac510.hh). */
void setCurrentTick(Tick now);

/** Tick most recently published on this thread; maxTick when the
 *  thread is outside a simulation. */
Tick currentTick();

/** Shared failure path of the check macros: prints and aborts. */
[[noreturn]] void checkFailed(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace check_detail

/**
 * Always-on invariant check with a printf-style message. The message
 * is only formatted on failure; the condition is always evaluated.
 */
#define HMCSIM_CHECK(cond, ...)                                           \
    do {                                                                  \
        if (__builtin_expect(!(cond), 0))                                 \
            ::hmcsim::check_detail::checkFailed(#cond, __FILE__,          \
                                                __LINE__, __VA_ARGS__);   \
    } while (0)

/** Debug-only check: condition and message both compile out. */
#ifdef HMCSIM_DCHECK_ENABLED
#define HMCSIM_DCHECK(cond, ...) HMCSIM_CHECK(cond, __VA_ARGS__)
#else
#define HMCSIM_DCHECK(cond, ...)                                          \
    do {                                                                  \
    } while (0)
#endif

/** True when HMCSIM_DCHECK and the registered checkers are active. */
constexpr bool
dchecksEnabled()
{
#ifdef HMCSIM_DCHECK_ENABLED
    return true;
#else
    return false;
#endif
}

/**
 * One registered model invariant. check() returns an empty string
 * while the invariant holds and a human-readable violation report
 * (including the offending values) when it does not.
 */
class InvariantChecker
{
  public:
    explicit InvariantChecker(std::string name) : _name(std::move(name)) {}
    virtual ~InvariantChecker() = default;

    InvariantChecker(const InvariantChecker &) = delete;
    InvariantChecker &operator=(const InvariantChecker &) = delete;

    /** Dotted component name, e.g. "system.hmc.vault3.banks". */
    const std::string &name() const { return _name; }

    /** @return Empty when the invariant holds, else a description. */
    virtual std::string check(Tick now) const = 0;

  private:
    std::string _name;
};

/** Checker wrapping a callable; the common registration shortcut. */
class LambdaChecker : public InvariantChecker
{
  public:
    using Fn = std::function<std::string(Tick)>;

    LambdaChecker(std::string name, Fn fn)
        : InvariantChecker(std::move(name)), fn(std::move(fn))
    {
    }

    std::string check(Tick now) const override { return fn(now); }

  private:
    Fn fn;
};

/**
 * The set of invariant checkers for one simulated system.
 *
 * runAll() evaluates every checker; any violation is assembled into a
 * diagnostic dump (tick, checker name, report, sibling checker
 * status) and passed to the failure handler. The default handler
 * aborts via panic(); tests install a capturing handler instead.
 */
class CheckerRegistry
{
  public:
    using FailureHandler = std::function<void(const std::string &report)>;

    CheckerRegistry() = default;
    CheckerRegistry(const CheckerRegistry &) = delete;
    CheckerRegistry &operator=(const CheckerRegistry &) = delete;

    /** Register a checker object. */
    void add(std::unique_ptr<InvariantChecker> checker);

    /** Register a callable under @p name. */
    void addLambda(std::string name, LambdaChecker::Fn fn);

    /** Number of registered checkers. */
    std::size_t size() const { return checkers.size(); }

    /**
     * Evaluate every checker at simulated time @p now. Violations are
     * reported through the failure handler (default: abort).
     */
    void runAll(Tick now);

    /** Replace the violation sink; pass nullptr to restore abort. */
    void setFailureHandler(FailureHandler handler);

    /** Total individual checker evaluations. */
    std::uint64_t checksRun() const { return numChecks; }

    /** Violations seen (only observable with a non-aborting handler). */
    std::uint64_t violations() const { return numViolations; }

    /** Remove all checkers (components re-register after a rebuild). */
    void clear() { checkers.clear(); }

  private:
    std::vector<std::unique_ptr<InvariantChecker>> checkers;
    FailureHandler onFailure;
    std::uint64_t numChecks = 0;
    std::uint64_t numViolations = 0;
};

} // namespace hmcsim

#endif // HMCSIM_SIM_CHECK_HH
