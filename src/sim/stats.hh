/**
 * @file
 * Statistics primitives used by monitoring units and benches.
 */

#ifndef HMCSIM_SIM_STATS_HH
#define HMCSIM_SIM_STATS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hmcsim
{

class TickLatencyBatch;

/**
 * Nearest-rank rule shared by every exact-quantile consumer: the
 * p-quantile of @p total ordered samples is the value with
 * zero-based rank floor(p * total). Histogram::quantile walks its
 * bins until the cumulative count exceeds this rank, and
 * TickQuantiles indexes its sorted samples with it directly, so a
 * percentile computed from raw ticks and one computed from an exact
 * integer-tick histogram agree on which sample they name.
 */
constexpr std::uint64_t
quantileTargetRank(std::uint64_t total, double p)
{
    return static_cast<std::uint64_t>(p * static_cast<double>(total));
}

/**
 * Exact quantiles over integer tick samples: keeps every sample and
 * answers quantile queries by nearest rank (quantileTargetRank) over
 * the sorted values -- no binning error, so p999 of a 100k-request
 * fleet names one specific observed sojourn time.
 *
 * merge() concatenates and re-sorts; because the answer depends only
 * on the sorted multiset, merged results are independent of merge
 * order, which is what makes fleet aggregates byte-identical at any
 * --jobs (docs/service.md).
 */
class TickQuantiles
{
  public:
    /** Record one sample. */
    void
    add(Tick value)
    {
        samples.push_back(value);
        sorted = false;
    }

    /** Fold another accumulator's samples into this one. */
    void merge(const TickQuantiles &other);

    std::uint64_t count() const { return samples.size(); }

    /** Nearest-rank p-quantile in ticks; 0 when empty. */
    Tick quantileTicks(double p) const;

    /** Nearest-rank p-quantile converted to nanoseconds. */
    double
    quantileNs(double p) const
    {
        return ticksToNs(quantileTicks(p));
    }

    /** Largest sample, or 0 when empty. */
    Tick maxTicks() const;

    /**
     * FNV-1a digest of the sorted multiset (count then each tick).
     * Pure function of the recorded samples, independent of insertion
     * and merge order.
     */
    std::uint64_t digest() const;

    void
    reset()
    {
        samples.clear();
        sorted = true;
    }

  private:
    void ensureSorted() const;

    /** Mutable so const quantile queries can sort lazily; the
     *  logical value (the multiset) never changes under const. */
    mutable std::vector<Tick> samples;
    mutable bool sorted = true;
};

/**
 * Running sample statistics: count, sum, min, max, mean, variance.
 * Variance uses Welford's online algorithm for numerical stability.
 */
class SampleStats
{
  public:
    /** Record one sample. */
    void
    sample(double value)
    {
        ++_count;
        _sum += value;
        if (value < _min)
            _min = value;
        if (value > _max)
            _max = value;
        const double delta = value - welfordMean;
        welfordMean += delta / static_cast<double>(_count);
        welfordM2 += delta * (value - welfordMean);
    }

    /**
     * Record a chunk of samples at once.
     *
     * count, sum, min, and max are updated by the same sequential
     * operations sample() performs, in array order, so those fields
     * -- and therefore mean() -- are bit-identical to calling
     * sample() per element. The variance accumulator is folded in
     * per chunk with the same Chan et al. combination merge() uses
     * (numerically equivalent to per-sample Welford, not
     * bit-identical); variance() is not part of any digest or
     * structured-output contract (docs/performance.md).
     */
    void sampleBatch(const double *values, std::size_t n);

    /** Merge another accumulator into this one. */
    void merge(const SampleStats &other);

    /** Remove all samples. */
    void
    reset()
    {
        *this = SampleStats();
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    /** Minimum sample, or 0 when empty. */
    double min() const { return _count ? _min : 0.0; }
    /** Maximum sample, or 0 when empty. */
    double max() const { return _count ? _max : 0.0; }
    /** Arithmetic mean, or 0 when empty. */
    double
    mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0.0;
    }
    /** Population variance, or 0 with fewer than two samples. */
    double
    variance() const
    {
        return _count > 1 ? welfordM2 / static_cast<double>(_count) : 0.0;
    }
    double stddev() const;

    /**
     * Exact internal state, for bit-faithful round trips through the
     * runner's result cache. min/max are the raw accumulators (+/-inf
     * when empty), not the 0-defaulted accessor values.
     */
    struct Raw
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        double welfordMean = 0.0;
        double welfordM2 = 0.0;
    };

    Raw
    raw() const
    {
        return {_count, _sum, _min, _max, welfordMean, welfordM2};
    }

    static SampleStats
    fromRaw(const Raw &raw)
    {
        SampleStats s;
        s._count = raw.count;
        s._sum = raw.sum;
        s._min = raw.min;
        s._max = raw.max;
        s.welfordMean = raw.welfordMean;
        s.welfordM2 = raw.welfordM2;
        return s;
    }

  private:
    friend class TickLatencyBatch;

    /** Fold one chunk's mean/M2 into the variance accumulators and
     *  advance the count (shared by sampleBatch and the tick flush). */
    void combineChunk(const double *values, std::size_t n);

    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
    double welfordMean = 0.0;
    double welfordM2 = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi); out-of-range samples land in
 * saturating underflow/overflow buckets.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the tracked range.
     * @param hi Exclusive upper bound; must exceed @p lo.
     * @param num_bins Number of equal-width bins; must be non-zero.
     */
    Histogram(double lo, double hi, std::size_t num_bins);

    void sample(double value);
    void reset();

    /** Merge another histogram with identical binning. */
    void merge(const Histogram &other);

    std::uint64_t binCount(std::size_t bin) const { return bins.at(bin); }
    std::size_t numBins() const { return bins.size(); }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t totalSamples() const { return total; }
    /** Center value of a bin. */
    double binCenter(std::size_t bin) const;
    /** Approximate p-quantile (0..1) from bin centers. */
    double quantile(double p) const;

  private:
    friend class TickLatencyBatch;

    /** Precompute the integer tick-domain binning plan (see
     *  TickLatencyBatch::flushInto). */
    void buildTickPlan();

    double lo;
    double hi;
    double width;
    std::vector<std::uint64_t> bins;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t total = 0;
    /** Bin width in ticks when the integer plan applies, else 0. */
    std::uint64_t tickBinTicks = 0;
    /** floor(2^64 / tickBinTicks) + 1: rounded-up reciprocal for
     *  dividing ticks by the bin width with a single multiply-high
     *  instead of a hardware divide; buildTickPlan() proves it exact
     *  for every in-range tick before enabling the plan. */
    std::uint64_t tickBinMagic = 0;
    /** tickBinTicks * numBins: first overflowing tick. */
    std::uint64_t tickOverflowTicks = 0;
    /** True when bin(t) = t / tickBinTicks is provably bit-identical
     *  to the floating-point sample() path for every tick value. */
    bool tickPlan = false;
};

/**
 * Fixed-capacity buffer of latency samples kept in the integer tick
 * domain, drained in one fused pass (TickLatencyBatch::flushInto).
 *
 * The hot per-response path used to convert ticks to ns and run two
 * double-precision Welford updates plus a histogram probe per sample;
 * buffering the raw ticks amortizes that to one tight loop per 256
 * responses with every digest-observable statistic bit-identical to
 * the per-sample path (docs/performance.md):
 *
 *  - sum: the ns values are accumulated with the same sequential
 *    additions in the same order, so sum (and mean = sum/count) is
 *    bit-identical.
 *  - min/max: computed over the integer ticks, then converted once;
 *    ticksToNs is monotone, so the results match the per-sample
 *    comparisons exactly.
 *  - histogram: when the histogram's tick plan applies (bin width an
 *    exact multiple of 125 ps, range starting at 0), bin(t) =
 *    t / widthTicks is provably equal to the floating-point binning
 *    for every tick, including exact bin boundaries; otherwise the
 *    flush falls back to the per-sample floating-point probe.
 *  - variance: folded per chunk via SampleStats::combineChunk (not
 *    digest-observable; see sampleBatch).
 *
 * No heap allocation anywhere: the buffer is inline and the flush
 * scratch is stack-resident (tests/test_stats_batch.cc enforces it
 * with counting operator new).
 */
class TickLatencyBatch
{
  public:
    /** Buffer capacity in samples (2 KB of ticks). */
    static constexpr std::size_t capacity = 256;

    /** Append one latency sample in ticks.
     *  @return true when the buffer is now full and must be flushed. */
    bool
    push(Tick latency_ticks)
    {
        buf[n++] = latency_ticks;
        return n == capacity;
    }

    std::size_t size() const { return n; }
    bool empty() const { return n == 0; }

    /** Drop buffered samples without accumulating them (stat reset). */
    void clear() { n = 0; }

    /**
     * Drain the buffer into @p stats (in nanoseconds) and, when
     * non-null, @p hist, leaving the buffer empty. See the class
     * comment for the bit-identity contract.
     */
    void flushInto(SampleStats &stats, Histogram *hist = nullptr);

  private:
    std::array<Tick, capacity> buf;
    std::size_t n = 0;
};

/**
 * Bytes-moved accumulator with start/stop windows; converts to GB/s.
 * Used for measuring bandwidth over the measurement phase only.
 */
class BandwidthMeter
{
  public:
    /** Begin a measurement window at @p now, discarding prior counts. */
    void
    start(Tick now)
    {
        startTick = now;
        bytes = 0;
        running = true;
    }

    /** End the measurement window at @p now. */
    void
    stop(Tick now)
    {
        stopTick = now;
        running = false;
    }

    /** Account @p n bytes if the window is open. */
    void
    add(Bytes n)
    {
        if (running)
            bytes += n;
    }

    Bytes totalBytes() const { return bytes; }
    Tick elapsed() const { return stopTick - startTick; }
    /** Average throughput over the window in GB/s. */
    double gbps() const;

  private:
    Tick startTick = 0;
    Tick stopTick = 0;
    Bytes bytes = 0;
    bool running = false;
};

} // namespace hmcsim

#endif // HMCSIM_SIM_STATS_HH
