#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "hmcsim/annotations.hh"

namespace hmcsim
{

namespace
{
std::atomic<bool> informEnabled{true};

/**
 * Serializes the tag/message/newline triple so concurrent sweep
 * workers (one simulator per thread, see host/ac510.hh) never
 * interleave fragments of two reports on stderr. It guards the
 * process-wide stderr stream, not a member, so no GUARDED_BY can
 * name the protected state.
 */
Mutex reportMutex; // lint:allow(mutex-unguarded)

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    MutexLock lock(reportMutex);
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

} // namespace hmcsim
