#include "dist/worker.hh"

#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "dist/net.hh"
#include "dist/protocol.hh"
#include "dist/store.hh"
#include "dist/wire.hh"
#include "runner/config_digest.hh"
#include "runner/result_cache.hh"
#include "runner/sweep.hh"
#include "sim/logging.hh"

namespace hmcsim
{

int
runWorker(const WorkerOptions &opts, WorkerStats *stats_out)
{
    ignoreSigpipe();

    NetAddress addr;
    std::string error;
    if (!parseNetAddress(opts.connectSpec, addr, error)) {
        warn("worker: %s", error.c_str());
        return 1;
    }
    const int fd = netConnect(addr, error);
    if (fd < 0) {
        warn("worker: %s", error.c_str());
        return 1;
    }

    // The shared store plugs in below the in-memory cache; claims
    // ensure one simulator per in-flight point across every process
    // sharing the store.
    std::unique_ptr<SharedResultStore> store;
    std::unique_ptr<ClaimedResultStorage> claimed;
    std::unique_ptr<ResultCache> cache;
    if (!opts.storeDir.empty()) {
        store = std::make_unique<SharedResultStore>(
            SharedResultStore::Options{opts.storeDir, 300});
        claimed = std::make_unique<ClaimedResultStorage>(*store);
        cache = std::make_unique<ResultCache>(*claimed);
    }

    if (!writeFrame(fd, formatHello(opts.jobs))) {
        warn("worker: hello failed");
        ::close(fd);
        return 1;
    }
    std::string payload;
    if (!readFrame(fd, payload)) {
        warn("worker: coordinator hung up before welcome");
        ::close(fd);
        return 1;
    }
    std::string header, body;
    splitFrame(payload, header, body);
    bool warmStart = false;
    std::size_t totalPoints = 0;
    if (!parseWelcome(header, warmStart, totalPoints)) {
        warn("worker: bad welcome '%s'", header.c_str());
        ::close(fd);
        return 1;
    }

    const unsigned batch =
        opts.batch ? opts.batch : (opts.jobs > 2 ? opts.jobs : 2);
    WorkerStats stats;
    int exitCode = 0;

    for (;;) {
        if (!writeFrame(fd, formatWant(batch)) ||
            !readFrame(fd, payload)) {
            // A hangup at the want boundary is clean: no leases are
            // outstanding, so every point this worker took has been
            // resulted. The common cause is the coordinator finishing
            // and closing just as we ask for more.
            inform("worker: coordinator closed; draining");
            break;
        }
        splitFrame(payload, header, body);
        if (isDrain(header))
            break;
        std::size_t granted = 0;
        if (!parseGranted(header, granted)) {
            warn("worker: expected granted/drain, got '%s'",
                 header.c_str());
            exitCode = 1;
            break;
        }

        std::vector<std::size_t> indices;
        std::vector<ExperimentConfig> configs;
        indices.reserve(granted);
        configs.reserve(granted);
        bool ok = true;
        for (std::size_t i = 0; i < granted && ok; ++i) {
            if (!readFrame(fd, payload)) {
                warn("worker: coordinator hung up mid-grant");
                ok = false;
                break;
            }
            splitFrame(payload, header, body);
            std::size_t index = 0;
            std::uint64_t digest = 0;
            ExperimentConfig cfg;
            if (!parsePointHeader(header, index, digest) ||
                !decodeExperimentConfig(body, cfg)) {
                warn("worker: malformed point frame");
                ok = false;
                break;
            }
            // The digest check is the codec's enforcement teeth: a
            // field dropped or bent in transit cannot hash back to
            // the coordinator's value.
            if (configDigest(cfg) != digest) {
                warn("worker: config digest mismatch on point %zu "
                     "(wire codec bug?)",
                     index);
                ok = false;
                break;
            }
            indices.push_back(index);
            configs.push_back(std::move(cfg));
        }
        if (!ok) {
            exitCode = 1;
            break;
        }

        if (opts.throttleMs)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.throttleMs));

        // Seeds arrived resolved; deriving again would double-mix.
        SweepOptions sweep;
        sweep.jobs = opts.jobs;
        sweep.deriveSeeds = false;
        sweep.warmStart = warmStart;
        sweep.cache = cache.get();
        SweepRunner runner(sweep);
        const std::vector<SweepPointResult> results =
            runner.run(configs);

        for (std::size_t i = 0; i < results.size(); ++i) {
            const SweepPointResult &point = results[i];
            const bool simulated = !point.fromCache;
            ++stats.pointsRun;
            ++(simulated ? stats.simulated : stats.fromStore);
            const std::string fields = serializeResultFields(
                {point.result, point.statDigest});
            if (!writeFrame(fd, formatResult(indices[i], simulated,
                                             fields))) {
                warn("worker: coordinator hung up mid-results");
                exitCode = 1;
                break;
            }
            if (opts.dieAfter >= 0 &&
                stats.pointsRun >=
                    static_cast<std::size_t>(opts.dieAfter)) {
                // Abrupt death on purpose: no drain, no close, leases
                // still outstanding -- the coordinator's reclaim path
                // and the store's flock release both get exercised.
                _exit(3);
            }
        }
        if (exitCode)
            break;
    }

    ::close(fd);
    inform("worker: ran %zu point(s): %zu simulated, %zu from store",
           stats.pointsRun, stats.simulated, stats.fromStore);
    if (stats_out)
        *stats_out = stats;
    return exitCode;
}

} // namespace hmcsim
