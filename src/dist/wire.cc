// lint:file(persistence) -- wire-encoded configs must round-trip bit-exactly: %a hexfloat only.
#include "dist/wire.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hmcsim
{

namespace
{

constexpr const char *kHeader = "hmcsim-config v1";

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** Percent-escape bytes that would break line or token framing. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '%' || c == '\n' || c == '\r') {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02X",
                          static_cast<unsigned char>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

bool
unescape(const std::string &s, std::string &out)
{
    out.clear();
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out += s[i];
            continue;
        }
        if (i + 2 >= s.size())
            return false;
        char hex[3] = {s[i + 1], s[i + 2], '\0'};
        char *end = nullptr;
        const long v = std::strtol(hex, &end, 16);
        if (!end || *end != '\0')
            return false;
        out += static_cast<char>(v);
        i += 2;
    }
    return true;
}

// ---- emit helpers ------------------------------------------------------

void
putU64(std::ostream &out, const char *key, std::uint64_t v)
{
    out << key << ' ' << v << '\n';
}

void
putF64(std::ostream &out, const char *key, double v)
{
    out << key << ' ' << fmtDouble(v) << '\n';
}

void
putStr(std::ostream &out, const char *key, const std::string &v)
{
    out << key << ' ' << escape(v) << '\n';
}

void
putTimings(std::ostream &out, const std::string &prefix,
           const DramTimings &t)
{
    putU64(out, (prefix + ".tRcd").c_str(), t.tRcd);
    putU64(out, (prefix + ".tCl").c_str(), t.tCl);
    putU64(out, (prefix + ".tRp").c_str(), t.tRp);
    putU64(out, (prefix + ".tRas").c_str(), t.tRas);
    putU64(out, (prefix + ".tWr").c_str(), t.tWr);
    putU64(out, (prefix + ".tCcd").c_str(), t.tCcd);
    putU64(out, (prefix + ".tBeat").c_str(), t.tBeat);
    putU64(out, (prefix + ".beatBytes").c_str(), t.beatBytes);
    putU64(out, (prefix + ".rowBytes").c_str(), t.rowBytes);
    putU64(out, (prefix + ".tRefi").c_str(), t.tRefi);
    putU64(out, (prefix + ".tRfc").c_str(), t.tRfc);
}

// ---- parse helpers -----------------------------------------------------

bool
takeLine(std::istream &in, const std::string &key, std::string &value)
{
    std::string line;
    if (!std::getline(in, line))
        return false;
    if (line.rfind(key + " ", 0) != 0)
        return false;
    value = line.substr(key.size() + 1);
    return true;
}

bool
takeU64(std::istream &in, const std::string &key, std::uint64_t &out)
{
    std::string value;
    if (!takeLine(in, key, value))
        return false;
    std::istringstream fields(value);
    return static_cast<bool>(fields >> out);
}

bool
takeU32(std::istream &in, const std::string &key, unsigned &out)
{
    std::uint64_t v = 0;
    if (!takeU64(in, key, v))
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

bool
takeBool(std::istream &in, const std::string &key, bool &out)
{
    std::uint64_t v = 0;
    if (!takeU64(in, key, v))
        return false;
    out = v != 0;
    return true;
}

bool
takeF64(std::istream &in, const std::string &key, double &out)
{
    std::string value;
    if (!takeLine(in, key, value))
        return false;
    char *end = nullptr;
    out = std::strtod(value.c_str(), &end);
    return end && *end == '\0';
}

bool
takeStr(std::istream &in, const std::string &key, std::string &out)
{
    std::string value;
    if (!takeLine(in, key, value))
        return false;
    return unescape(value, out);
}

template <typename Enum>
bool
takeEnum(std::istream &in, const std::string &key, Enum &out)
{
    std::uint64_t v = 0;
    if (!takeU64(in, key, v))
        return false;
    out = static_cast<Enum>(v);
    return true;
}

bool
takeTimings(std::istream &in, const std::string &prefix, DramTimings &t)
{
    return takeU64(in, prefix + ".tRcd", t.tRcd) &&
           takeU64(in, prefix + ".tCl", t.tCl) &&
           takeU64(in, prefix + ".tRp", t.tRp) &&
           takeU64(in, prefix + ".tRas", t.tRas) &&
           takeU64(in, prefix + ".tWr", t.tWr) &&
           takeU64(in, prefix + ".tCcd", t.tCcd) &&
           takeU64(in, prefix + ".tBeat", t.tBeat) &&
           takeU64(in, prefix + ".beatBytes", t.beatBytes) &&
           takeU64(in, prefix + ".rowBytes", t.rowBytes) &&
           takeU64(in, prefix + ".tRefi", t.tRefi) &&
           takeU64(in, prefix + ".tRfc", t.tRfc);
}

} // namespace

std::string
encodeExperimentConfig(const ExperimentConfig &cfg)
{
    std::ostringstream out;
    out << kHeader << '\n';

    putStr(out, "pattern.name", cfg.pattern.name);
    putU64(out, "pattern.mask", cfg.pattern.mask);
    putU64(out, "pattern.antiMask", cfg.pattern.antiMask);
    putU64(out, "pattern.vaultSpan", cfg.pattern.vaultSpan);
    putU64(out, "pattern.bankSpan", cfg.pattern.bankSpan);

    putU64(out, "mix", static_cast<std::uint64_t>(cfg.mix));
    putU64(out, "requestSize", cfg.requestSize);
    putU64(out, "mode", static_cast<std::uint64_t>(cfg.mode));
    putU64(out, "numPorts", cfg.numPorts);
    putU64(out, "warmup", cfg.warmup);
    putU64(out, "measure", cfg.measure);
    putU64(out, "seed", cfg.seed);

    const HmcConfig &s = cfg.device.structure;
    putStr(out, "structure.name", s.name);
    putU64(out, "structure.capacity", s.capacity);
    putU64(out, "structure.numDramLayers", s.numDramLayers);
    putU64(out, "structure.dramLayerGbits", s.dramLayerGbits);
    putU64(out, "structure.numQuadrants", s.numQuadrants);
    putU64(out, "structure.numVaults", s.numVaults);
    putU64(out, "structure.partitionsPerLayer", s.partitionsPerLayer);
    putU64(out, "structure.banksPerPartition", s.banksPerPartition);

    const VaultConfig &v = cfg.device.vault;
    putU64(out, "vault.numBanks", v.numBanks);
    putTimings(out, "vault.timings", v.timings);
    putU64(out, "vault.policy", static_cast<std::uint64_t>(v.policy));
    putU64(out, "vault.controllerLatency", v.controllerLatency);
    putU64(out, "vault.commandBeats", v.commandBeats);
    putU64(out, "vault.atomicLatency", v.atomicLatency);
    putU64(out, "vault.refreshEnabled", v.refreshEnabled ? 1 : 0);
    putF64(out, "vault.refreshMultiplier", v.refreshMultiplier);

    const MemoryBackendConfig &b = v.backend;
    putU64(out, "backend.kind", static_cast<std::uint64_t>(b.kind));
    putTimings(out, "backend.ddrTimings", b.ddrTimings);
    putU64(out, "backend.ddrPolicy",
           static_cast<std::uint64_t>(b.ddrPolicy));
    putF64(out, "backend.ddrBusBytesPerSecond", b.ddrBusBytesPerSecond);
    putU64(out, "backend.ddrTFaw", b.ddrTFaw);
    putU64(out, "backend.ddrActivatesPerFaw", b.ddrActivatesPerFaw);
    putU64(out, "backend.nvmReadLatency", b.nvmReadLatency);
    putU64(out, "backend.nvmWriteLatency", b.nvmWriteLatency);
    putU64(out, "backend.nvmWriteAck", b.nvmWriteAck);
    putU64(out, "backend.nvmWriteQueueDepth", b.nvmWriteQueueDepth);

    putU64(out, "device.maxBlock",
           static_cast<std::uint64_t>(cfg.device.maxBlock));
    putU64(out, "device.mapping",
           static_cast<std::uint64_t>(cfg.device.mapping));
    putU64(out, "device.quadrantLocalLatency",
           cfg.device.quadrantLocalLatency);
    putU64(out, "device.quadrantHopLatency",
           cfg.device.quadrantHopLatency);
    putU64(out, "device.responsePathLatency",
           cfg.device.responsePathLatency);

    const ControllerCalibration &c = cfg.controller;
    putU64(out, "controller.fpgaCyclePs", c.fpgaCyclePs);
    putU64(out, "controller.flitsToParallelCycles",
           c.flitsToParallelCycles);
    putU64(out, "controller.arbiterCycles", c.arbiterCycles);
    putU64(out, "controller.seqFlowCrcCycles", c.seqFlowCrcCycles);
    putU64(out, "controller.serdesConvertCycles",
           c.serdesConvertCycles);
    putU64(out, "controller.txPropagation", c.txPropagation);
    putU64(out, "controller.rxPropagation", c.rxPropagation);
    putU64(out, "controller.rxFixedCycles", c.rxFixedCycles);
    putU64(out, "controller.rxPerFlit", c.rxPerFlit);
    putF64(out, "controller.txBytesPerSecondPerLink",
           c.txBytesPerSecondPerLink);
    putF64(out, "controller.rxBytesPerSecondPerLink",
           c.rxBytesPerSecondPerLink);
    putU64(out, "controller.txPerPacketOverheadBytes",
           c.txPerPacketOverheadBytes);
    putU64(out, "controller.rxPerPacketOverheadBytes",
           c.rxPerPacketOverheadBytes);
    putU64(out, "controller.numLinks", c.numLinks);
    putF64(out, "controller.bitErrorRate", c.bitErrorRate);
    putU64(out, "controller.inputBufferFlits", c.inputBufferFlits);

    return out.str();
}

bool
decodeExperimentConfig(const std::string &text, ExperimentConfig &out)
{
    std::istringstream in(text);
    std::string header;
    if (!std::getline(in, header) || header != kHeader)
        return false;

    ExperimentConfig cfg;
    if (!takeStr(in, "pattern.name", cfg.pattern.name) ||
        !takeU64(in, "pattern.mask", cfg.pattern.mask) ||
        !takeU64(in, "pattern.antiMask", cfg.pattern.antiMask) ||
        !takeU32(in, "pattern.vaultSpan", cfg.pattern.vaultSpan) ||
        !takeU32(in, "pattern.bankSpan", cfg.pattern.bankSpan))
        return false;

    if (!takeEnum(in, "mix", cfg.mix) ||
        !takeU64(in, "requestSize", cfg.requestSize) ||
        !takeEnum(in, "mode", cfg.mode) ||
        !takeU32(in, "numPorts", cfg.numPorts) ||
        !takeU64(in, "warmup", cfg.warmup) ||
        !takeU64(in, "measure", cfg.measure) ||
        !takeU64(in, "seed", cfg.seed))
        return false;

    HmcConfig &s = cfg.device.structure;
    if (!takeStr(in, "structure.name", s.name) ||
        !takeU64(in, "structure.capacity", s.capacity) ||
        !takeU32(in, "structure.numDramLayers", s.numDramLayers) ||
        !takeU32(in, "structure.dramLayerGbits", s.dramLayerGbits) ||
        !takeU32(in, "structure.numQuadrants", s.numQuadrants) ||
        !takeU32(in, "structure.numVaults", s.numVaults) ||
        !takeU32(in, "structure.partitionsPerLayer",
                 s.partitionsPerLayer) ||
        !takeU32(in, "structure.banksPerPartition",
                 s.banksPerPartition))
        return false;

    VaultConfig &v = cfg.device.vault;
    if (!takeU32(in, "vault.numBanks", v.numBanks) ||
        !takeTimings(in, "vault.timings", v.timings) ||
        !takeEnum(in, "vault.policy", v.policy) ||
        !takeU64(in, "vault.controllerLatency", v.controllerLatency) ||
        !takeU32(in, "vault.commandBeats", v.commandBeats) ||
        !takeU64(in, "vault.atomicLatency", v.atomicLatency) ||
        !takeBool(in, "vault.refreshEnabled", v.refreshEnabled) ||
        !takeF64(in, "vault.refreshMultiplier", v.refreshMultiplier))
        return false;

    MemoryBackendConfig &b = v.backend;
    if (!takeEnum(in, "backend.kind", b.kind) ||
        !takeTimings(in, "backend.ddrTimings", b.ddrTimings) ||
        !takeEnum(in, "backend.ddrPolicy", b.ddrPolicy) ||
        !takeF64(in, "backend.ddrBusBytesPerSecond",
                 b.ddrBusBytesPerSecond) ||
        !takeU64(in, "backend.ddrTFaw", b.ddrTFaw) ||
        !takeU32(in, "backend.ddrActivatesPerFaw",
                 b.ddrActivatesPerFaw) ||
        !takeU64(in, "backend.nvmReadLatency", b.nvmReadLatency) ||
        !takeU64(in, "backend.nvmWriteLatency", b.nvmWriteLatency) ||
        !takeU64(in, "backend.nvmWriteAck", b.nvmWriteAck) ||
        !takeU32(in, "backend.nvmWriteQueueDepth",
                 b.nvmWriteQueueDepth))
        return false;

    if (!takeEnum(in, "device.maxBlock", cfg.device.maxBlock) ||
        !takeEnum(in, "device.mapping", cfg.device.mapping) ||
        !takeU64(in, "device.quadrantLocalLatency",
                 cfg.device.quadrantLocalLatency) ||
        !takeU64(in, "device.quadrantHopLatency",
                 cfg.device.quadrantHopLatency) ||
        !takeU64(in, "device.responsePathLatency",
                 cfg.device.responsePathLatency))
        return false;

    ControllerCalibration &c = cfg.controller;
    if (!takeU64(in, "controller.fpgaCyclePs", c.fpgaCyclePs) ||
        !takeU32(in, "controller.flitsToParallelCycles",
                 c.flitsToParallelCycles) ||
        !takeU32(in, "controller.arbiterCycles", c.arbiterCycles) ||
        !takeU32(in, "controller.seqFlowCrcCycles",
                 c.seqFlowCrcCycles) ||
        !takeU32(in, "controller.serdesConvertCycles",
                 c.serdesConvertCycles) ||
        !takeU64(in, "controller.txPropagation", c.txPropagation) ||
        !takeU64(in, "controller.rxPropagation", c.rxPropagation) ||
        !takeU32(in, "controller.rxFixedCycles", c.rxFixedCycles) ||
        !takeU64(in, "controller.rxPerFlit", c.rxPerFlit) ||
        !takeF64(in, "controller.txBytesPerSecondPerLink",
                 c.txBytesPerSecondPerLink) ||
        !takeF64(in, "controller.rxBytesPerSecondPerLink",
                 c.rxBytesPerSecondPerLink) ||
        !takeU64(in, "controller.txPerPacketOverheadBytes",
                 c.txPerPacketOverheadBytes) ||
        !takeU64(in, "controller.rxPerPacketOverheadBytes",
                 c.rxPerPacketOverheadBytes) ||
        !takeU32(in, "controller.numLinks", c.numLinks) ||
        !takeF64(in, "controller.bitErrorRate", c.bitErrorRate) ||
        !takeU32(in, "controller.inputBufferFlits",
                 c.inputBufferFlits))
        return false;

    out = std::move(cfg);
    return true;
}

} // namespace hmcsim
