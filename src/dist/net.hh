/**
 * @file
 * Socket plumbing for the distributed sweep protocol.
 *
 * Everything here is deliberately boring POSIX: a coordinator listens
 * on a Unix-domain or TCP socket (`unix:/path` / `tcp:host:port`
 * specs), workers connect, and both sides exchange length-prefixed
 * frames (4-byte little-endian length, then that many payload bytes).
 * The framing carries opaque text payloads -- protocol.hh defines
 * what is inside them -- so this layer never needs to change when the
 * protocol grows a verb.
 *
 * All calls are blocking and EINTR-safe; readFrame() returning false
 * means EOF or a hard error, which the caller treats as "peer gone"
 * (the coordinator then reclaims the peer's leases).
 */

#ifndef HMCSIM_DIST_NET_HH
#define HMCSIM_DIST_NET_HH

#include <cstdint>
#include <string>

namespace hmcsim
{

/** A parsed `unix:/path` or `tcp:host:port` address spec. */
struct NetAddress
{
    bool isUnix = true;
    /** Filesystem path of the Unix-domain socket. */
    std::string path;
    /** TCP host and service (numeric port or name). */
    std::string host;
    std::string port;
};

/** Parse an address spec; false + @p error on a malformed spec. */
bool parseNetAddress(const std::string &spec, NetAddress &out,
                     std::string &error);

/** Human-readable form of @p addr (for logs and errors). */
std::string describeNetAddress(const NetAddress &addr);

/**
 * Create a listening socket bound to @p addr (unlinking a stale Unix
 * socket path first). Returns the fd, or -1 with @p error set.
 */
int netListen(const NetAddress &addr, std::string &error);

/** Connect to @p addr. Returns the fd, or -1 with @p error set. */
int netConnect(const NetAddress &addr, std::string &error);

/** Upper bound on one frame's payload (a config is ~2 KiB). */
constexpr std::uint32_t maxFrameBytes = 16u << 20;

/**
 * Write one length-prefixed frame. Returns false on any write error
 * (including EPIPE -- callers must have SIGPIPE ignored, see
 * ignoreSigpipe()).
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Read one length-prefixed frame into @p payload. Returns false on
 * EOF, a hard error, or an oversized length prefix.
 */
bool readFrame(int fd, std::string &payload);

/**
 * Incremental frame extraction for non-blocking readers: append raw
 * bytes to @p buffer yourself, then call this until it returns false.
 * On true, one complete frame was removed from the front of @p buffer
 * into @p payload.
 */
bool extractFrame(std::string &buffer, std::string &payload);

/** Length-prefix @p payload exactly as writeFrame() would send it. */
std::string frameBytes(const std::string &payload);

/**
 * Ignore SIGPIPE process-wide so a worker vanishing mid-write surfaces
 * as an EPIPE return value instead of killing the coordinator.
 */
void ignoreSigpipe();

} // namespace hmcsim

#endif // HMCSIM_DIST_NET_HH
