#include "dist/protocol.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hmcsim
{

namespace
{

/** Token-wise "<verb> [v1] key value ..." reader. */
bool
expectToken(std::istringstream &in, const char *token)
{
    std::string word;
    return (in >> word) && word == token;
}

bool
atEnd(std::istringstream &in)
{
    std::string rest;
    return !(in >> rest);
}

} // namespace

std::string
formatHello(unsigned jobs)
{
    std::ostringstream out;
    out << "hello " << distProtocolVersion << " jobs " << jobs;
    return out.str();
}

bool
parseHello(const std::string &line, unsigned &jobs)
{
    std::istringstream in(line);
    return expectToken(in, "hello") &&
           expectToken(in, distProtocolVersion) &&
           expectToken(in, "jobs") && (in >> jobs) && atEnd(in);
}

std::string
formatWelcome(bool warm_start, std::size_t total_points)
{
    std::ostringstream out;
    out << "welcome " << distProtocolVersion << " warm "
        << (warm_start ? 1 : 0) << " points " << total_points;
    return out.str();
}

bool
parseWelcome(const std::string &line, bool &warm_start,
             std::size_t &total_points)
{
    std::istringstream in(line);
    unsigned warm = 0;
    if (!(expectToken(in, "welcome") &&
          expectToken(in, distProtocolVersion) &&
          expectToken(in, "warm") && (in >> warm) &&
          expectToken(in, "points") && (in >> total_points) &&
          atEnd(in)))
        return false;
    warm_start = warm != 0;
    return true;
}

std::string
formatWant(unsigned max_points)
{
    std::ostringstream out;
    out << "want " << max_points;
    return out.str();
}

bool
parseWant(const std::string &line, unsigned &max_points)
{
    std::istringstream in(line);
    return expectToken(in, "want") && (in >> max_points) && atEnd(in);
}

std::string
formatGranted(std::size_t count)
{
    std::ostringstream out;
    out << "granted " << count;
    return out.str();
}

bool
parseGranted(const std::string &line, std::size_t &count)
{
    std::istringstream in(line);
    return expectToken(in, "granted") && (in >> count) && atEnd(in);
}

std::string
formatDrain()
{
    return "drain";
}

bool
isDrain(const std::string &line)
{
    return line == "drain";
}

std::string
formatPoint(std::size_t index, std::uint64_t digest,
            const std::string &config_blob)
{
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(digest));
    std::ostringstream out;
    out << "point " << index << ' ' << hex << '\n' << config_blob;
    return out.str();
}

bool
parsePointHeader(const std::string &line, std::size_t &index,
                 std::uint64_t &digest)
{
    std::istringstream in(line);
    std::string hex;
    if (!(expectToken(in, "point") && (in >> index) && (in >> hex) &&
          atEnd(in)))
        return false;
    char *end = nullptr;
    digest = std::strtoull(hex.c_str(), &end, 16);
    return end && *end == '\0' && !hex.empty();
}

std::string
formatResult(std::size_t index, bool simulated,
             const std::string &fields_blob)
{
    std::ostringstream out;
    out << "result " << index << ' ' << (simulated ? 1 : 0) << '\n'
        << fields_blob;
    return out.str();
}

bool
parseResultHeader(const std::string &line, std::size_t &index,
                  bool &simulated)
{
    std::istringstream in(line);
    unsigned sim = 0;
    if (!(expectToken(in, "result") && (in >> index) && (in >> sim) &&
          atEnd(in)))
        return false;
    simulated = sim != 0;
    return true;
}

void
splitFrame(const std::string &payload, std::string &header,
           std::string &body)
{
    const std::size_t nl = payload.find('\n');
    if (nl == std::string::npos) {
        header = payload;
        body.clear();
        return;
    }
    header = payload.substr(0, nl);
    body = payload.substr(nl + 1);
}

} // namespace hmcsim
