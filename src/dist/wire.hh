/**
 * @file
 * Wire codec for ExperimentConfig.
 *
 * The coordinator ships fully-resolved configurations (derived seed
 * included) to workers, so a worker never re-derives anything -- the
 * point it simulates is byte-for-byte the point the coordinator
 * expanded. The codec therefore has to cover exactly the field set
 * configDigest() hashes (runner/config_digest.cc is the authoritative
 * enumeration): every frame carries the coordinator-computed digest,
 * and the worker recomputes configDigest() over the decoded struct
 * and refuses the point on mismatch. A codec that silently dropped or
 * defaulted a field cannot pass that check, which is what makes the
 * distributed byte-identity guarantee enforceable rather than hoped
 * for.
 *
 * Format: "hmcsim-config v1" header line, then one "key value" line
 * per field in digest order. Doubles are C99 hexfloats (%a); strings
 * are percent-escaped so embedded newlines cannot break framing.
 */

#ifndef HMCSIM_DIST_WIRE_HH
#define HMCSIM_DIST_WIRE_HH

#include <string>

#include "host/experiment.hh"

namespace hmcsim
{

/** Canonical text form of @p cfg (digest-complete, see file docs). */
std::string encodeExperimentConfig(const ExperimentConfig &cfg);

/**
 * Parse encodeExperimentConfig() output into @p out. Strict: fields
 * must appear in canonical order with a recognized header. Returns
 * false on any malformed or missing field.
 */
bool decodeExperimentConfig(const std::string &text,
                            ExperimentConfig &out);

} // namespace hmcsim

#endif // HMCSIM_DIST_WIRE_HH
