/**
 * @file
 * Shared on-disk result store for cross-process sweep execution.
 *
 * Any number of processes -- sweeps, workers, serve sessions, on one
 * machine or many sharing a filesystem -- may point at the same store
 * directory. Results are content-addressed by configDigest(), so a
 * point measured anywhere is a hit everywhere, and every operation is
 * crash-safe:
 *
 *   <dir>/objects/<hh>/<16-hex-digest>.result   completed results
 *   <dir>/claims/<16-hex-digest>.claim          in-flight claims
 *
 * Objects are sharded by the first two digest hex digits (directories
 * stay small at millions of entries) and written via temp-file +
 * atomic rename: readers see a whole entry or none. The object format
 * is "hmcsim-result v4" over the same field body ResultCache persists
 * (v3); v1-v3 entries read as clean *legacy* misses -- an old-format
 * entry can never poison a hit, it just gets re-simulated and
 * rewritten.
 *
 * Claims arbitrate who simulates an in-flight point. A claim is an
 * advisory flock(LOCK_EX) on the claim file, held for the lifetime of
 * the simulation; the file's text records the owner pid and an
 * expiry stamp (wallClockEpochSeconds() + leaseSeconds). Liveness
 * comes in two layers: a *crashed* owner's flock is released by the
 * kernel, so the next tryClaim() takes the lock over the stale record
 * (counted as stolen); a *wedged* owner that still holds the flock is
 * evicted after the lease expires by unlinking the claim path and
 * re-creating it (the dead flock stays on the orphaned inode). Claim
 * arbitration only ever changes which process simulates a point --
 * results are deterministic, so a rare double-simulation writes the
 * same bytes twice and is harmless.
 */

#ifndef HMCSIM_DIST_STORE_HH
#define HMCSIM_DIST_STORE_HH

#include <cstdint>
#include <map>
#include <string>

#include "hmcsim/annotations.hh"
#include "runner/result_cache.hh"

namespace hmcsim
{

/** Concurrency-safe result store shared between processes. */
class SharedResultStore : public ResultStorage
{
  public:
    struct Options
    {
        /** Store root; created on demand. */
        std::string dir;
        /** Claim lease length; an expired claim may be evicted even
         *  if its owner still holds the flock. */
        std::int64_t leaseSeconds = 300;
    };

    explicit SharedResultStore(Options opts);
    ~SharedResultStore() override;

    SharedResultStore(const SharedResultStore &) = delete;
    SharedResultStore &operator=(const SharedResultStore &) = delete;

    /** Load a completed result; nullopt on miss/legacy/corrupt. */
    std::optional<CachedResult> load(std::uint64_t key) override;

    /** Persist @p value (atomic rename) and release any claim this
     *  process holds on @p key. */
    void save(std::uint64_t key, const CachedResult &value) override;

    enum class ClaimOutcome
    {
        Acquired, ///< This process now owns the point.
        Busy,     ///< A live claim exists elsewhere; poll again.
    };

    /**
     * Try to become the simulator of @p key. Acquired claims are held
     * (flock + open fd) until save() or releaseClaim(). Steals dead
     * owners' claims and evicts expired ones (see file docs).
     */
    ClaimOutcome tryClaim(std::uint64_t key);

    /** Drop a held claim without saving (no-op if not held). */
    void releaseClaim(std::uint64_t key);

    /** Monotonic per-instance counters (diagnostics/tests). */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        /** v1-v3 entries encountered (clean misses). */
        std::uint64_t legacy = 0;
        /** Malformed/truncated entries skipped (clean misses). */
        std::uint64_t corrupt = 0;
        std::uint64_t saved = 0;
        std::uint64_t claimsAcquired = 0;
        /** Claims taken over from a crashed or expired owner. */
        std::uint64_t claimsStolen = 0;
    };

    Counters counters() const;

    const std::string &directory() const { return opts.dir; }

    /** On-disk object path for @p key (exposed for tests). */
    std::string objectPath(std::uint64_t key) const;
    std::string claimPath(std::uint64_t key) const;

    /** Header line of the store's object format. */
    static constexpr const char *formatHeader = "hmcsim-result v4";

  private:
    Options opts;

    mutable Mutex mutex;
    /** Held claims: key -> open, flocked claim-file fd. Ordered map:
     *  the destructor iterates it to release leftovers. */
    std::map<std::uint64_t, int> claims GUARDED_BY(mutex);
    Counters stats GUARDED_BY(mutex);
};

/**
 * ResultStorage adapter that turns a SharedResultStore into a
 * work-dividing tier for ResultCache: load() either returns the
 * stored result or *blocks until this process owns the point* --
 * waiting out a live claimant elsewhere and returning their result
 * when it lands, or stealing the claim if they die. A nullopt return
 * therefore means "you simulate it"; the subsequent save() publishes
 * the result and releases the claim. Plugged into ResultCache, this
 * makes any number of processes sweeping the same grid partition the
 * points between them with no coordinator at all.
 */
class ClaimedResultStorage : public ResultStorage
{
  public:
    /** @param poll_ms Sleep between claim polls while waiting out a
     *  live claimant. */
    explicit ClaimedResultStorage(SharedResultStore &store,
                                  unsigned poll_ms = 10);

    std::optional<CachedResult> load(std::uint64_t key) override;
    void save(std::uint64_t key, const CachedResult &value) override;

  private:
    SharedResultStore &store;
    unsigned pollMs;
};

} // namespace hmcsim

#endif // HMCSIM_DIST_STORE_HH
