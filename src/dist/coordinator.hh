/**
 * @file
 * Distributed sweep coordinator.
 *
 * runDistributedSweep() is SweepRunner::run() with the ThreadPool
 * swapped for a fleet of worker processes: it expands the canonical
 * axis grid, derives every seed up front (the same deriveSeed() the
 * single-process path uses), listens on a socket, leases batches of
 * points to whichever workers connect, and lands each result in its
 * pre-assigned canonical slot. Sinks run on the coordinator thread,
 * in canonical order, after the last slot fills -- exactly as
 * SweepRunner does -- so the merged JSONL/CSV output is byte-identical
 * to a single-process `--jobs 1` run no matter how many workers
 * served it, which ones died, or in what order leases were reclaimed
 * (docs/runner.md, "Distributed execution").
 *
 * Fault model: a worker connection dropping returns its outstanding
 * leases to the pending queue; any surviving (or future) worker picks
 * them up. The coordinator itself is single-threaded around poll(),
 * so there is no cross-thread state to corrupt.
 */

#ifndef HMCSIM_DIST_COORDINATOR_HH
#define HMCSIM_DIST_COORDINATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/sweep.hh"

namespace hmcsim
{

/** Knobs of one distributed sweep session. */
struct DistSweepOptions
{
    /** Address to listen on: `unix:/path` or `tcp:host:port`. */
    std::string listenSpec;
    /**
     * SweepRunner-compatible options. `sinks`, `cache`, `sweepSeed`,
     * `deriveSeeds`, and `warmStart` mean exactly what they mean
     * there (warmStart is forwarded to workers in the welcome);
     * `jobs` and `trace` are unused -- parallelism lives in the
     * workers, and tracing requires the single-process path.
     */
    SweepOptions sweep;
};

/** Observability counters of one coordinator run. */
struct DistSweepStats
{
    std::size_t points = 0;
    /** Points a worker actually simulated. */
    std::size_t simulated = 0;
    /** Points served from a worker's cache/shared store. */
    std::size_t fromStore = 0;
    /** Points served from the coordinator's own cache pre-pass. */
    std::size_t fromCoordinatorCache = 0;
    /** Leases returned to the queue by worker deaths. */
    std::size_t reclaimed = 0;
    /** Distinct worker connections that completed a hello. */
    unsigned workersSeen = 0;
};

/**
 * Run @p configs to completion over remote workers; results in
 * canonical (input) order, bit-identical to SweepRunner::run() on the
 * same configs and options.
 */
std::vector<SweepPointResult>
runDistributedSweep(std::vector<ExperimentConfig> configs,
                    const DistSweepOptions &opts,
                    DistSweepStats *stats = nullptr);

/** Expand @p axes and run the cross product distributed. */
std::vector<SweepPointResult>
runDistributedSweep(const SweepAxes &axes,
                    const DistSweepOptions &opts,
                    DistSweepStats *stats = nullptr);

} // namespace hmcsim

#endif // HMCSIM_DIST_COORDINATOR_HH
