#include "dist/coordinator.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <deque>
#include <list>
#include <sstream>
#include <utility>

#include "dist/net.hh"
#include "dist/protocol.hh"
#include "dist/wire.hh"
#include "runner/config_digest.hh"
#include "sim/logging.hh"

namespace hmcsim
{

namespace
{

/** One worker connection's state machine. */
struct Connection
{
    int fd = -1;
    bool helloDone = false;
    /** Raw bytes received but not yet framed. */
    std::string inBuffer;
    /** Canonical indices leased here and not yet resulted. */
    std::vector<std::size_t> outstanding;
    /** A want we could not serve yet (0 = none parked). */
    unsigned parkedWant = 0;
};

/** The whole session, single-threaded around poll(). */
struct Session
{
    const DistSweepOptions &opts;
    std::vector<ExperimentConfig> &configs;
    std::vector<std::uint64_t> digests;
    std::vector<SweepPointResult> results;
    std::vector<bool> filled;
    std::size_t numFilled = 0;
    /** Canonical indices not yet leased, lowest first (keeps
     *  warm-start groups contiguous on one worker). */
    std::deque<std::size_t> pending;
    std::list<Connection> connections;
    DistSweepStats stats;

    explicit Session(const DistSweepOptions &opts_,
                     std::vector<ExperimentConfig> &configs_)
        : opts(opts_), configs(configs_)
    {
    }

    void dropConnection(std::list<Connection>::iterator it);
    bool handleFrame(Connection &conn, const std::string &payload);
    void serveWant(Connection &conn, unsigned max_points);
    void serveParkedWants();
    bool done() const { return numFilled == results.size(); }
};

void
Session::dropConnection(std::list<Connection>::iterator it)
{
    if (!it->outstanding.empty()) {
        // Reclaim: the worker died (or quit) with leases held. The
        // points return to the queue in canonical order; whoever
        // picks them up produces the same bytes, so the output is
        // unaffected -- this path only costs wall time.
        stats.reclaimed += it->outstanding.size();
        inform("dist: reclaiming %zu lease(s) from a lost worker",
               it->outstanding.size());
        for (const std::size_t index : it->outstanding)
            pending.push_back(index);
    }
    ::close(it->fd);
    connections.erase(it);
    serveParkedWants();
}

void
Session::serveWant(Connection &conn, unsigned max_points)
{
    if (pending.empty()) {
        // Nothing to lease right now. If reclaim may still produce
        // work, park the want; the worker blocks on its read. Once
        // everything is filled the main loop sends the drain.
        conn.parkedWant = max_points ? max_points : 1;
        return;
    }
    std::size_t grant = max_points ? max_points : 1;
    if (grant > pending.size())
        grant = pending.size();

    if (!writeFrame(conn.fd, formatGranted(grant)))
        return; // Death is detected by the poll loop.
    for (std::size_t i = 0; i < grant; ++i) {
        const std::size_t index = pending.front();
        pending.pop_front();
        conn.outstanding.push_back(index);
        const std::string blob = encodeExperimentConfig(configs[index]);
        if (!writeFrame(conn.fd,
                        formatPoint(index, digests[index], blob)))
            return;
    }
    conn.parkedWant = 0;
}

void
Session::serveParkedWants()
{
    for (Connection &conn : connections) {
        if (pending.empty())
            break;
        if (conn.parkedWant)
            serveWant(conn, conn.parkedWant);
    }
}

bool
Session::handleFrame(Connection &conn, const std::string &payload)
{
    std::string header, body;
    splitFrame(payload, header, body);

    if (!conn.helloDone) {
        unsigned jobs = 0;
        if (!parseHello(header, jobs)) {
            warn("dist: bad hello '%s'; dropping connection",
                 header.c_str());
            return false;
        }
        conn.helloDone = true;
        ++stats.workersSeen;
        return writeFrame(conn.fd,
                          formatWelcome(opts.sweep.warmStart,
                                        results.size()));
    }

    unsigned want = 0;
    if (parseWant(header, want)) {
        if (done())
            return writeFrame(conn.fd, formatDrain());
        serveWant(conn, want);
        return true;
    }

    std::size_t index = 0;
    bool simulated = false;
    if (parseResultHeader(header, index, simulated)) {
        if (index >= results.size()) {
            warn("dist: result index %zu out of range", index);
            return false;
        }
        for (auto it = conn.outstanding.begin();
             it != conn.outstanding.end(); ++it) {
            if (*it == index) {
                conn.outstanding.erase(it);
                break;
            }
        }
        if (filled[index])
            return true; // Duplicate after a reclaim race: identical
                         // bytes, first landing won.
        std::istringstream in(body);
        CachedResult value;
        if (!parseResultFields(in, value)) {
            warn("dist: malformed result body for point %zu; "
                 "re-queueing",
                 index);
            pending.push_back(index);
            serveParkedWants();
            return true;
        }

        SweepPointResult &point = results[index];
        point.index = index;
        point.config = configs[index];
        point.digest = digests[index];
        point.statDigest = value.statDigest;
        point.result = value.result;
        point.fromCache = !simulated;
        filled[index] = true;
        ++numFilled;
        if (simulated)
            ++stats.simulated;
        else
            ++stats.fromStore;
        if (opts.sweep.cache)
            opts.sweep.cache->store(point.digest, value);
        return true;
    }

    warn("dist: unknown frame '%s'; dropping connection",
         header.c_str());
    return false;
}

} // namespace

std::vector<SweepPointResult>
runDistributedSweep(std::vector<ExperimentConfig> configs,
                    const DistSweepOptions &opts,
                    DistSweepStats *stats_out)
{
    ignoreSigpipe();

    // Identical front half to SweepRunner::run(): seeds derive from
    // content before any scheduling exists, so a point's identity --
    // and therefore its digest, its seed, and its result -- is fixed
    // no matter which worker eventually runs it.
    if (opts.sweep.deriveSeeds) {
        for (ExperimentConfig &cfg : configs)
            cfg.seed = deriveSeed(opts.sweep.sweepSeed, cfg);
    }

    Session session(opts, configs);
    session.results.resize(configs.size());
    session.filled.assign(configs.size(), false);
    session.digests.reserve(configs.size());
    for (const ExperimentConfig &cfg : configs)
        session.digests.push_back(configDigest(cfg));
    session.stats.points = configs.size();

    // Cache pre-pass, mirroring SweepRunner::runPoint()'s lookup: a
    // hit fills the slot locally and is never leased out.
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (opts.sweep.cache) {
            if (const auto cached =
                    opts.sweep.cache->lookup(session.digests[i])) {
                SweepPointResult &point = session.results[i];
                point.index = i;
                point.config = configs[i];
                point.digest = session.digests[i];
                point.result = cached->result;
                point.statDigest = cached->statDigest;
                point.fromCache = true;
                session.filled[i] = true;
                ++session.numFilled;
                ++session.stats.fromCoordinatorCache;
                continue;
            }
        }
        session.pending.push_back(i);
    }

    if (!session.done()) {
        NetAddress addr;
        std::string error;
        if (!parseNetAddress(opts.listenSpec, addr, error))
            fatal("dist: %s", error.c_str());
        const int listenFd = netListen(addr, error);
        if (listenFd < 0)
            fatal("dist: %s", error.c_str());
        inform("dist: coordinating %zu point(s) on %s",
               session.pending.size(),
               describeNetAddress(addr).c_str());

        while (!session.done()) {
            std::vector<pollfd> fds;
            fds.push_back({listenFd, POLLIN, 0});
            for (const Connection &conn : session.connections)
                fds.push_back({conn.fd, POLLIN, 0});

            const int ready =
                ::poll(fds.data(),
                       static_cast<nfds_t>(fds.size()), -1);
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                fatal("dist: poll failed");
            }

            if (fds[0].revents & POLLIN) {
                const int fd = ::accept(listenFd, nullptr, nullptr);
                if (fd >= 0) {
                    Connection conn;
                    conn.fd = fd;
                    session.connections.push_back(std::move(conn));
                }
            }

            // Walk connections against their recorded poll slots;
            // the list can shrink mid-walk when a peer drops.
            std::size_t slot = 1;
            for (auto it = session.connections.begin();
                 it != session.connections.end() &&
                 slot < fds.size();
                 ++slot) {
                auto cur = it++;
                const short revents = fds[slot].revents;
                if (!(revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;

                char buf[65536];
                const ssize_t got =
                    ::read(cur->fd, buf, sizeof(buf));
                if (got <= 0) {
                    if (got < 0 && (errno == EINTR ||
                                    errno == EAGAIN))
                        continue;
                    session.dropConnection(cur);
                    continue;
                }
                cur->inBuffer.append(buf,
                                     static_cast<std::size_t>(got));

                bool alive = true;
                std::string payload;
                while (alive &&
                       extractFrame(cur->inBuffer, payload))
                    alive = session.handleFrame(*cur, payload);
                if (!alive)
                    session.dropConnection(cur);
                if (session.done())
                    break;
            }
        }

        // Best-effort goodbye so workers exit instead of blocking on
        // a parked want forever.
        for (Connection &conn : session.connections) {
            writeFrame(conn.fd, formatDrain());
            ::close(conn.fd);
        }
        session.connections.clear();
        ::close(listenFd);
        if (addr.isUnix)
            ::unlink(addr.path.c_str());
    }

    // Identical back half to SweepRunner::run(): sinks on this
    // thread, canonical order, after completion.
    for (ResultSink *sink : opts.sweep.sinks) {
        for (const SweepPointResult &point : session.results)
            sink->write(point);
        sink->finish();
    }

    inform("dist: %zu point(s): %zu simulated, %zu from store, "
           "%zu from cache, %zu reclaimed, %u worker(s)",
           session.stats.points, session.stats.simulated,
           session.stats.fromStore,
           session.stats.fromCoordinatorCache,
           session.stats.reclaimed, session.stats.workersSeen);
    if (stats_out)
        *stats_out = session.stats;
    return std::move(session.results);
}

std::vector<SweepPointResult>
runDistributedSweep(const SweepAxes &axes, const DistSweepOptions &opts,
                    DistSweepStats *stats)
{
    return runDistributedSweep(axes.expand(), opts, stats);
}

} // namespace hmcsim
