#include "dist/net.hh"

#include <netdb.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hmcsim
{

namespace
{

/** write() the whole buffer, resuming on EINTR and short writes. */
bool
writeAll(int fd, const char *data, std::size_t n)
{
    std::size_t done = 0;
    while (done < n) {
        const ssize_t ret = ::write(fd, data + done, n - done);
        if (ret < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(ret);
    }
    return true;
}

/** read() exactly @p n bytes; false on EOF or error. */
bool
readAll(int fd, char *data, std::size_t n)
{
    std::size_t done = 0;
    while (done < n) {
        const ssize_t ret = ::read(fd, data + done, n - done);
        if (ret < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (ret == 0)
            return false;
        done += static_cast<std::size_t>(ret);
    }
    return true;
}

void
encodeLength(std::uint32_t n, char out[4])
{
    out[0] = static_cast<char>(n & 0xFF);
    out[1] = static_cast<char>((n >> 8) & 0xFF);
    out[2] = static_cast<char>((n >> 16) & 0xFF);
    out[3] = static_cast<char>((n >> 24) & 0xFF);
}

std::uint32_t
decodeLength(const char in[4])
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1]))
            << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2]))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]))
            << 24);
}

} // namespace

bool
parseNetAddress(const std::string &spec, NetAddress &out,
                std::string &error)
{
    if (spec.rfind("unix:", 0) == 0) {
        out.isUnix = true;
        out.path = spec.substr(5);
        if (out.path.empty()) {
            error = "empty unix socket path in '" + spec + "'";
            return false;
        }
        sockaddr_un probe{};
        if (out.path.size() >= sizeof(probe.sun_path)) {
            error = "unix socket path too long: '" + out.path + "'";
            return false;
        }
        return true;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        out.isUnix = false;
        const std::string rest = spec.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= rest.size()) {
            error = "expected tcp:host:port, got '" + spec + "'";
            return false;
        }
        out.host = rest.substr(0, colon);
        out.port = rest.substr(colon + 1);
        return true;
    }
    error = "address must start with unix: or tcp:, got '" + spec + "'";
    return false;
}

std::string
describeNetAddress(const NetAddress &addr)
{
    if (addr.isUnix)
        return "unix:" + addr.path;
    return "tcp:" + addr.host + ":" + addr.port;
}

namespace
{

int
unixSocket(const NetAddress &addr, sockaddr_un &sa, std::string &error)
{
    sa = sockaddr_un{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(),
                 sizeof(sa.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        error = std::string("socket: ") + std::strerror(errno);
    return fd;
}

} // namespace

int
netListen(const NetAddress &addr, std::string &error)
{
    if (addr.isUnix) {
        sockaddr_un sa;
        const int fd = unixSocket(addr, sa, error);
        if (fd < 0)
            return -1;
        ::unlink(addr.path.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) != 0 ||
            ::listen(fd, 64) != 0) {
            error = "bind/listen " + describeNetAddress(addr) + ": " +
                    std::strerror(errno);
            ::close(fd);
            return -1;
        }
        return fd;
    }

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    const int gai = ::getaddrinfo(addr.host.c_str(), addr.port.c_str(),
                                  &hints, &res);
    if (gai != 0) {
        error = "resolve " + describeNetAddress(addr) + ": " +
                ::gai_strerror(gai);
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 64) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        error = "bind/listen " + describeNetAddress(addr) + ": " +
                std::strerror(errno);
    return fd;
}

int
netConnect(const NetAddress &addr, std::string &error)
{
    if (addr.isUnix) {
        sockaddr_un sa;
        const int fd = unixSocket(addr, sa, error);
        if (fd < 0)
            return -1;
        if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) != 0) {
            error = "connect " + describeNetAddress(addr) + ": " +
                    std::strerror(errno);
            ::close(fd);
            return -1;
        }
        return fd;
    }

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int gai = ::getaddrinfo(addr.host.c_str(), addr.port.c_str(),
                                  &hints, &res);
    if (gai != 0) {
        error = "resolve " + describeNetAddress(addr) + ": " +
                ::gai_strerror(gai);
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        error = "connect " + describeNetAddress(addr) + ": " +
                std::strerror(errno);
    return fd;
}

std::string
frameBytes(const std::string &payload)
{
    char prefix[4];
    encodeLength(static_cast<std::uint32_t>(payload.size()), prefix);
    std::string out(prefix, 4);
    out += payload;
    return out;
}

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > maxFrameBytes)
        return false;
    const std::string bytes = frameBytes(payload);
    return writeAll(fd, bytes.data(), bytes.size());
}

bool
readFrame(int fd, std::string &payload)
{
    char prefix[4];
    if (!readAll(fd, prefix, 4))
        return false;
    const std::uint32_t n = decodeLength(prefix);
    if (n > maxFrameBytes)
        return false;
    payload.resize(n);
    return n == 0 || readAll(fd, payload.data(), n);
}

bool
extractFrame(std::string &buffer, std::string &payload)
{
    if (buffer.size() < 4)
        return false;
    const std::uint32_t n = decodeLength(buffer.data());
    if (n > maxFrameBytes) {
        // Poisoned stream; drop everything so the caller sees EOF-like
        // stall instead of looping forever on a bogus length.
        buffer.clear();
        return false;
    }
    if (buffer.size() < 4 + static_cast<std::size_t>(n))
        return false;
    payload.assign(buffer, 4, n);
    buffer.erase(0, 4 + static_cast<std::size_t>(n));
    return true;
}

void
ignoreSigpipe()
{
    ::signal(SIGPIPE, SIG_IGN);
}

} // namespace hmcsim
